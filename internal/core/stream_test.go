package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"threadfuser/internal/trace"
)

// indexedReader round-trips a trace through the v3 container and opens an
// indexed Reader over the bytes.
func indexedReader(t *testing.T, tr *trace.Trace) *trace.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.EncodeIndexed(&buf, tr); err != nil {
		t.Fatalf("encode indexed: %v", err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("open indexed reader: %v", err)
	}
	return r
}

// TestAnalyzeStreamMatchesBatch is the streaming-ingest contract: the
// pipelined decode→validate→cols→DCFG path must produce a Report deeply
// equal to the batch Analyze of the same container bytes, at every
// parallelism and with fusion both on and off.
func TestAnalyzeStreamMatchesBatch(t *testing.T) {
	for _, name := range []string{"rodinia.bfs", "other.pigz", "usuite.hdsearch.mid"} {
		tr := traceWorkload(t, name, 64)
		r := indexedReader(t, tr)
		for _, par := range []int{1, 0} {
			for _, nofuse := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/par%d/nofuse=%v", name, par, nofuse), func(t *testing.T) {
					opts := Defaults()
					opts.Parallelism = par
					opts.DisableLockstepFusion = nofuse
					want, err := Analyze(tr, opts)
					if err != nil {
						t.Fatalf("batch analyze: %v", err)
					}
					got, err := AnalyzeStream(r, opts)
					if err != nil {
						t.Fatalf("stream analyze: %v", err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("streaming report differs from batch\nbatch:  %+v\nstream: %+v", want, got)
					}
				})
			}
		}
	}
}

// TestAnalyzeStreamCached checks the cached streaming path: a first call
// misses and stores, a second call with identical content hits, and the hit
// equals the miss bit for bit.
func TestAnalyzeStreamCached(t *testing.T) {
	tr := traceWorkload(t, "rodinia.bfs", 64)
	r := indexedReader(t, tr)
	c := NewCache(t.TempDir())
	opts := Defaults()

	first, hit, err := AnalyzeStreamCached(c, r, opts)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if hit {
		t.Fatal("first call reported a cache hit on an empty cache")
	}
	second, hit, err := AnalyzeStreamCached(c, r, opts)
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if !hit {
		t.Fatal("second call missed the cache")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cache hit differs from the stored report")
	}
}

// TestSessionIngestSeedsPreparation proves Ingest's memo seeding: a sweep
// through the session after Ingest produces reports identical to batch
// Analyze without re-preparing (observed via the replay test hook counting
// exactly one replay per configuration).
func TestSessionIngestSeedsPreparation(t *testing.T) {
	tr := traceWorkload(t, "paropoly.nbody", 48)
	r := indexedReader(t, tr)
	sess := NewSession()
	st, err := sess.Ingest(r, 0)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	for _, warpSize := range []int{8, 16, 32} {
		opts := Defaults()
		opts.WarpSize = warpSize
		want, err := Analyze(tr, opts)
		if err != nil {
			t.Fatalf("batch analyze w%d: %v", warpSize, err)
		}
		got, err := sess.Analyze(st, opts)
		if err != nil {
			t.Fatalf("session analyze w%d: %v", warpSize, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("w%d: post-ingest session report differs from batch Analyze", warpSize)
		}
	}
}

// TestAnalyzeStreamSurfacesSectionErrors feeds a container whose decoded
// records fail validation and expects the streaming pipeline to reject it
// like the batch path does.
func TestAnalyzeStreamSurfacesSectionErrors(t *testing.T) {
	tr := traceWorkload(t, "rodinia.bfs", 16)
	// Corrupt one record's instruction count so ValidateThread fails.
	bad := *tr
	bad.Threads = append([]*trace.ThreadTrace(nil), tr.Threads...)
	th := *bad.Threads[3]
	th.Records = append([]trace.Record(nil), th.Records...)
	for i := range th.Records {
		if th.Records[i].Kind == trace.KindBBL {
			th.Records[i].N += 7
			break
		}
	}
	bad.Threads[3] = &th
	r := indexedReader(t, &bad)
	if _, err := AnalyzeStream(r, Defaults()); err == nil {
		t.Fatal("streaming analyze accepted a trace the batch validator rejects")
	}
}
