// Package opt models the gcc optimization levels the paper sweeps in its
// correlation study (section IV, figure 5). The paper traces each workload
// compiled at -O0/-O1/-O2/-O3 and observes that:
//
//   - O0 "exhibited a tendency to include a load or store instruction for
//     each global variable access", inflating memory transactions;
//   - O1 is the closest approximation to the GPU binary (lowest MAE);
//   - O2/O3 apply aggressive transformations — if-conversion, jump tables —
//     that "play a role in minimizing code divergence", so the analyzer
//     overestimates SIMT efficiency relative to hardware.
//
// The transforms here are semantics-preserving IR rewrites that reproduce
// those effects on the synthetic binaries:
//
//   - DemoteLocals (O0): spill every local-register write to a stack slot
//     and reload locals before reads, like unoptimized codegen;
//   - DuplicateLoads (O0): reload memory operands redundantly, modelling
//     the per-access global loads of -O0;
//   - IfConvert (O2, O3, and the "nvcc" hardware build): flatten small
//     branch diamonds into straight-line cmov code; the size budget grows
//     with the level, and GPUs themselves predicate only tiny branches.
package opt

import "threadfuser/internal/ir"

// Level is a compiler optimization level.
type Level int

const (
	O0 Level = iota
	O1
	O2
	O3
)

func (l Level) String() string {
	switch l {
	case O0:
		return "O0"
	case O1:
		return "O1"
	case O2:
		return "O2"
	case O3:
		return "O3"
	}
	return "O?"
}

// Levels lists the sweep order used by the correlation experiments.
var Levels = []Level{O0, O1, O2, O3}

// If-conversion size budgets per level (instructions per branch side).
const (
	ifBudgetO2 = 4
	ifBudgetO3 = 12
)

// IfBudget returns the per-side if-conversion instruction budget the given
// level applies (0 for levels that do not if-convert). The static melding
// matcher uses the O3 budget as its "already handled by the optimizer" line.
func IfBudget(l Level) int {
	switch l {
	case O2:
		return ifBudgetO2
	case O3:
		return ifBudgetO3
	}
	return 0
}

// Apply returns a new program compiled at the given level. The canonical
// program (as authored by internal/workloads) is treated as the -O1 build.
func Apply(p *ir.Program, lvl Level) *ir.Program {
	out := ir.Clone(p)
	switch lvl {
	case O0:
		DuplicateLoads(out)
		DemoteLocals(out)
	case O1:
		// canonical
	case O2:
		IfConvert(out, ifBudgetO2)
	case O3:
		IfConvertStores(out, ifBudgetO3)
	}
	if err := ir.Validate(out); err != nil {
		panic("opt: transform produced invalid program: " + err.Error())
	}
	return out
}

// HardwareBuild returns the "nvcc" build the lockstep oracle executes. GPU
// compilers lean on SIMT divergence rather than if-conversion for visible
// branches, so the hardware build is the canonical program unchanged; the
// gcc-style O2/O3 builds then *overestimate* efficiency relative to it,
// which is exactly the direction the paper reports for aggressive CPU
// optimization (section IV).
func HardwareBuild(p *ir.Program) *ir.Program {
	return ir.Clone(p)
}

// demotable reports whether reg is a workload local subject to -O0 stack
// spilling (r0..r9; stdlib scratch and reserved registers keep their
// register allocation even at -O0, like callee-saved temporaries).
func demotable(r ir.Reg) bool { return r < 10 }

// slot returns the stack slot used for a demoted local. Slots sit in the
// thread's red zone below SP, which the workloads never use directly.
func slot(r ir.Reg) ir.Operand {
	return ir.Mem(ir.SP, -8*int64(r)-256, 8)
}

// DemoteLocals rewrites every function so writes to local registers are
// followed by a spill to the register's stack slot, and reads of a local
// that has been spilled earlier in the same block are preceded by a reload.
// The reload is redundant (the register still holds the value), which is
// exactly what -O0 codegen produces — stack traffic without semantic change.
func DemoteLocals(p *ir.Program) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			var out []ir.Instr
			spilled := [ir.NumRegs]bool{}
			for _, in := range b.Instrs {
				// Reload spilled sources before the instruction. -O0
				// reloads on every read, so the slot stays "spilled".
				for _, r := range readRegs(&in) {
					if demotable(r) && spilled[r] {
						out = append(out, ir.Instr{Op: ir.OpMov, Dst: ir.Rg(r), Src: slot(r)})
					}
				}
				out = append(out, in)
				// Spill register destinations after the instruction.
				if !in.Op.IsTerminator() && in.Dst.Kind == ir.OpndReg && demotable(in.Dst.Reg) && writesDst(in.Op) {
					out = append(out, ir.Instr{Op: ir.OpMov, Dst: slot(in.Dst.Reg), Src: ir.Rg(in.Dst.Reg)})
					spilled[in.Dst.Reg] = true
				}
			}
			b.Instrs = out
		}
	}
}

// DuplicateLoads inserts a redundant load into a scratch register before
// every instruction with a memory source, modelling -O0's reload of every
// global/heap access.
func DuplicateLoads(p *ir.Program) {
	const scratch = ir.Reg(29)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			var out []ir.Instr
			for _, in := range b.Instrs {
				if in.Src.IsMem() && in.Op != ir.OpLea && in.Op != ir.OpLock && in.Op != ir.OpUnlock {
					out = append(out, ir.Instr{Op: ir.OpMov, Dst: ir.Rg(scratch), Src: in.Src})
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
	}
}

// writesDst reports whether the opcode writes its destination operand.
func writesDst(op ir.Opcode) bool {
	switch op {
	case ir.OpCmp, ir.OpTest, ir.OpFCmp, ir.OpNop, ir.OpLock, ir.OpUnlock, ir.OpIO, ir.OpSpin:
		return false
	}
	return true
}

// readRegs returns the registers an instruction reads (sources, memory
// address components, and read-modify-write destinations).
func readRegs(in *ir.Instr) []ir.Reg {
	var regs []ir.Reg
	add := func(r ir.Reg) { regs = append(regs, r) }
	scanOperand := func(o ir.Operand) {
		switch o.Kind {
		case ir.OpndReg:
			add(o.Reg)
		case ir.OpndMem:
			add(o.Mem.Base)
			if o.Mem.HasIndex {
				add(o.Mem.Index)
			}
		}
	}
	scanOperand(in.Src)
	switch in.Op {
	case ir.OpMov, ir.OpLea:
		// Destination is write-only; only its address registers are read.
		if in.Dst.IsMem() {
			scanOperand(in.Dst)
		}
	default:
		scanOperand(in.Dst) // RMW or compare: destination value is read
	}
	return regs
}
