// Package staticsimt is ThreadFuser's static SIMT oracle: a forward
// dataflow framework over the IR that predicts, before any trace exists,
// which branches can split warps. Where internal/core derives every
// divergence number from replaying dynamic traces, this package answers the
// same question from the program text alone — the DARM-style compiler view
// (Saumya et al.) of the hardware contract the lockstep oracle executes.
//
// The analysis runs a uniformity lattice (uniform ⊑ thread-divergent, with
// the divergence *cause* tracked as a bitmask) to a least fixpoint over the
// whole program:
//
//   - seeds: the TID register, the per-thread stack pointer, the entry
//     function's initial registers (per-thread ArgFn state), and memory
//     loads (other threads' stores are invisible statically);
//   - transfer: per-instruction joins through registers, flags and tracked
//     SP-relative stack slots; calls propagate caller state into callee
//     entries and callee exit state back to continuations;
//   - control: a sync-dependence taint — every definition inside a divergent
//     branch's influence region (the blocks reachable from its successors
//     without passing its static immediate post-dominator) is marked
//     control-divergent, so values that merely *merge* differently across
//     divergent paths are never called uniform.
//
// Every Jcc/Switch (and indirect-call selector) is then classified
// warp-uniform or potentially divergent. The classification is sound with
// respect to the dynamic replay: a branch classified uniform never records a
// warp split on any built-in workload (internal/check's "staticuniform"
// invariant enforces this), while divergent classifications may be
// conservative — the precision gap tflint's "static" pass reports.
//
// On top of the classification, the package delimits each divergent
// branch's reconvergence region via internal/ipdom over cfg.FromFunction
// static graphs, and runs a DARM-style matcher over divergent diamonds:
// arms that are isomorphic modulo register renaming are meldable, and arms
// that are speculation-safe but too large for opt.IfConvert's O3 budget are
// flagged as if-convertible beyond budget.
package staticsimt

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"threadfuser/internal/ir"
	"threadfuser/internal/opt"
)

// Uniformity is the lattice value of one register, flag set, or stack slot:
// a bitmask of divergence causes. The zero value (no causes) is warp-uniform;
// the join is bitwise OR, so causes accumulate monotonically toward the
// all-causes top.
type Uniformity uint16

const (
	// Uniform is the lattice bottom: provably equal across the co-active
	// threads of any warp.
	Uniform Uniformity = 0
	// FromTID marks values derived from the thread-id register.
	FromTID Uniformity = 1 << iota
	// FromSP marks values derived from the stack pointer, which points into
	// a per-thread stack segment.
	FromSP
	// FromArgs marks values derived from the entry function's initial
	// registers, which the per-thread ArgFn sets up and the static view
	// cannot see.
	FromArgs
	// FromMemory marks values loaded from untracked memory (shared data, or
	// stack slots the analysis lost track of).
	FromMemory
	// FromControl marks values defined under divergent control — the
	// sync-dependence taint applied inside divergent influence regions.
	FromControl
	// FromCall marks values clobbered by an indirect call whose callee set
	// diverges across threads.
	FromCall
)

// Divergent reports whether the value carries any divergence cause.
func (u Uniformity) Divergent() bool { return u != Uniform }

// causeNames is in bit order; Causes and String follow it.
var causeNames = []struct {
	bit  Uniformity
	name string
}{
	{FromTID, "tid"},
	{FromSP, "sp"},
	{FromArgs, "args"},
	{FromMemory, "memory"},
	{FromControl, "control"},
	{FromCall, "call"},
}

// Causes lists the divergence causes by name, in a fixed order.
func (u Uniformity) Causes() []string {
	if u == Uniform {
		return nil
	}
	var out []string
	for _, c := range causeNames {
		if u&c.bit != 0 {
			out = append(out, c.name)
		}
	}
	return out
}

func (u Uniformity) String() string {
	if u == Uniform {
		return "uniform"
	}
	return "divergent(" + strings.Join(u.Causes(), "|") + ")"
}

// Options configure an analysis.
type Options struct {
	// AssumeUniformEntry treats the entry function's initial registers
	// (everything except TID and SP) as warp-uniform. This matches programs
	// whose ArgFn passes identical pointers/sizes to every thread, but it is
	// an unsound assumption in general — exploration only, never used by the
	// check invariant.
	AssumeUniformEntry bool
	// MeldBudget is the per-side instruction budget separating "the O3
	// optimizer already flattens this" from "if-convertible beyond budget"
	// in meld findings. 0 uses opt's O3 budget.
	MeldBudget int
	// MeldMem, when non-nil, supplies a per-function memory-legality check
	// for the meld matcher: candidates whose arms the returned
	// opt.MeldMemCheck vetoes are dropped from Melds and counted in
	// Result.MeldsRejectedMem. This is how the static memory oracle
	// (internal/staticmem) keeps DARM-style melding from flattening a
	// diamond whose arms are individually coalesced.
	MeldMem func(fn uint32) opt.MeldMemCheck
}

// Branch is the classification of one multi-way terminator (jcc, switch, or
// an indirect call's selector).
type Branch struct {
	Block uint32 `json:"block"`
	// Kind is "jcc", "switch" or "callr".
	Kind string `json:"kind"`
	// Uniform reports the sound classification: true means no warp can ever
	// split at this terminator.
	Uniform bool `json:"uniform"`
	// Causes names the divergence sources when not uniform, in a fixed
	// order: tid, sp, args, memory, control, call.
	Causes []string `json:"causes,omitempty"`
	// Unreachable marks terminators in blocks the dataflow never reached;
	// they trivially cannot diverge.
	Unreachable bool `json:"unreachable,omitempty"`
	// Reconverge is the static immediate post-dominator — the block where a
	// split warp would reconverge (the function's block count denotes the
	// virtual exit).
	Reconverge int32 `json:"reconverge"`
	// RegionBlocks/RegionInstrs delimit a divergent branch's influence
	// region: the blocks reachable from its successors without passing the
	// reconvergence point, and their static instruction total.
	RegionBlocks []uint32 `json:"region_blocks,omitempty"`
	RegionInstrs int      `json:"region_instrs,omitempty"`
}

// Meld is one DARM-style opportunity at a divergent diamond.
type Meld struct {
	Block uint32 `json:"block"`
	// Kind is "isomorphic-arms" (the arms are identical modulo register
	// renaming and could execute as one melded region) or
	// "if-convertible-over-budget" (speculation-safe arms the O3 budget
	// rejects purely on size).
	Kind       string `json:"kind"`
	ThenBlock  uint32 `json:"then_block"`
	ElseBlock  uint32 `json:"else_block"`
	ThenInstrs int    `json:"then_instrs"`
	ElseInstrs int    `json:"else_instrs"`
	Reconverge int32  `json:"reconverge"`
	// SavedIssues estimates the warp issue slots reclaimed per divergent
	// traversal: the shorter arm's instructions no longer issue as a
	// separate serialized pass (DARM's melding saving bound).
	SavedIssues int `json:"saved_issues"`
	// NeedBudget is the per-side budget that would let opt.IfConvertStores
	// flatten the diamond (if-convertible-over-budget only).
	NeedBudget int `json:"need_budget,omitempty"`
}

// FuncResult is the oracle's verdict for one function.
type FuncResult struct {
	ID   uint32 `json:"id"`
	Name string `json:"name"`
	// Unreachable marks functions with no call path from the entry; they
	// are analyzed standalone under a worst-case entry state.
	Unreachable bool `json:"unreachable,omitempty"`
	// Branches lists every jcc/switch/callr terminator in block order.
	Branches []Branch `json:"branches,omitempty"`
	// Melds lists melding opportunities at divergent diamonds.
	Melds []Meld `json:"melds,omitempty"`
	// MemUniform/MemDivergent count static memory operands by the
	// uniformity of their effective address — the static analogue of the
	// coalescing profile (a divergent address is where transactions fan
	// out).
	MemUniform   int `json:"mem_uniform"`
	MemDivergent int `json:"mem_divergent"`
	// Influenced lists the blocks inside some divergent branch's influence
	// region — code that can execute with a split warp.
	Influenced []uint32 `json:"influenced,omitempty"`
	// DivergentContext marks functions reachable through a call made under
	// divergent control: a direct call from an influenced block, any
	// indirect call with a divergent selector, or transitively through such
	// a callee. Every instruction in them may run with a split warp even if
	// none of their own branches diverge.
	DivergentContext bool `json:"divergent_context,omitempty"`
}

// Result is the static oracle's projection for one program.
type Result struct {
	Program string       `json:"program"`
	Funcs   []FuncResult `json:"funcs"`
	// Totals across all functions.
	UniformBranches   int `json:"uniform_branches"`
	DivergentBranches int `json:"divergent_branches"`
	Meldable          int `json:"meldable"`
	// MeldsRejectedMem counts meld candidates the Options.MeldMem oracle
	// vetoed (zero when no oracle was supplied).
	MeldsRejectedMem int `json:"melds_rejected_mem,omitempty"`
	// StackEscapes reports that some stack address was stored to memory,
	// which disables stack-slot tracking program-wide.
	StackEscapes bool `json:"stack_escapes,omitempty"`

	index map[branchKey]*Branch
}

type branchKey struct {
	fn    uint32
	block uint32
}

// Class returns the classification of the terminator of the given block, if
// it is a jcc/switch/callr. Not safe for concurrent first use.
func (r *Result) Class(fn, block uint32) (*Branch, bool) {
	if r.index == nil {
		r.index = make(map[branchKey]*Branch)
		for fi := range r.Funcs {
			fr := &r.Funcs[fi]
			for bi := range fr.Branches {
				r.index[branchKey{fr.ID, fr.Branches[bi].Block}] = &fr.Branches[bi]
			}
		}
	}
	b, ok := r.index[branchKey{fn, block}]
	return b, ok
}

// UniformBlocks flattens a Result into the per-(function, block) table the
// replay engine's lockstep-fusion fast path consumes (simt.Options
// .UniformBranches): table[fn][block] is true when the oracle proved the
// block's terminator can never split a warp. Blocks with no multi-way
// terminator (fallthrough, jmp, ret, direct call) trivially cannot split and
// are true; jcc/switch/callr terminators are true only when classified
// Uniform (or never reached by the dataflow). The table is a performance
// hint, not a semantic input: replay verifies every fused window against
// every active lane, so a stale or wrong table cannot change any metric.
func UniformBlocks(p *ir.Program, r *Result) [][]bool {
	table := make([][]bool, len(p.Funcs))
	for fi, fn := range p.Funcs {
		row := make([]bool, len(fn.Blocks))
		for bi := range row {
			row[bi] = true
		}
		table[fi] = row
	}
	for i := range r.Funcs {
		fr := &r.Funcs[i]
		if int(fr.ID) >= len(table) {
			continue
		}
		row := table[fr.ID]
		for j := range fr.Branches {
			b := &fr.Branches[j]
			if int(b.Block) < len(row) {
				row[b.Block] = b.Uniform || b.Unreachable
			}
		}
	}
	return table
}

// Analyze runs the static oracle over a program. The program must be valid
// (ir.Validate); workloads and opt transforms only produce valid programs.
func Analyze(p *ir.Program, opts Options) *Result {
	if opts.MeldBudget == 0 {
		opts.MeldBudget = opt.IfBudget(opt.O3)
	}
	a := newAnalysis(p, opts)
	a.run()
	return a.result()
}

// Render writes the human-readable report. Verbose lists every branch;
// the default lists only divergent branches and meld findings.
func (r *Result) Render(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "%s: %d uniform / %d divergent branch(es), %d meld candidate(s)\n",
		r.Program, r.UniformBranches, r.DivergentBranches, r.Meldable)
	for fi := range r.Funcs {
		fr := &r.Funcs[fi]
		shown := false
		header := func() {
			if !shown {
				note := ""
				if fr.Unreachable {
					note = " (unreachable: worst-case entry)"
				}
				fmt.Fprintf(w, "  %s%s:\n", fr.Name, note)
				shown = true
			}
		}
		for bi := range fr.Branches {
			b := &fr.Branches[bi]
			if b.Uniform && !verbose {
				continue
			}
			header()
			switch {
			case b.Unreachable:
				fmt.Fprintf(w, "    b%-3d %-7s unreachable\n", b.Block, b.Kind)
			case b.Uniform:
				fmt.Fprintf(w, "    b%-3d %-7s uniform\n", b.Block, b.Kind)
			default:
				fmt.Fprintf(w, "    b%-3d %-7s divergent (%s)  region %v (%d instrs), reconverges b%d\n",
					b.Block, b.Kind, strings.Join(b.Causes, "|"), b.RegionBlocks, b.RegionInstrs, b.Reconverge)
			}
		}
		for mi := range fr.Melds {
			m := &fr.Melds[mi]
			header()
			switch m.Kind {
			case "isomorphic-arms":
				fmt.Fprintf(w, "    b%-3d meld: arms b%d/b%d isomorphic modulo renaming (%d+%d instrs, ~%d issue slots/split reclaimable)\n",
					m.Block, m.ThenBlock, m.ElseBlock, m.ThenInstrs, m.ElseInstrs, m.SavedIssues)
			case "if-convertible-over-budget":
				fmt.Fprintf(w, "    b%-3d meld: diamond b%d/b%d if-convertible with budget %d (O3 budget %d)\n",
					m.Block, m.ThenBlock, m.ElseBlock, m.NeedBudget, opt.IfBudget(opt.O3))
			}
		}
		if verbose && (fr.MemUniform+fr.MemDivergent) > 0 {
			header()
			fmt.Fprintf(w, "    mem: %d uniform-address / %d divergent-address operand(s)\n", fr.MemUniform, fr.MemDivergent)
		}
	}
}

// sortResult imposes deterministic ordering on every slice of the result.
func sortResult(r *Result) {
	sort.Slice(r.Funcs, func(i, j int) bool { return r.Funcs[i].ID < r.Funcs[j].ID })
	for fi := range r.Funcs {
		fr := &r.Funcs[fi]
		sort.Slice(fr.Branches, func(i, j int) bool { return fr.Branches[i].Block < fr.Branches[j].Block })
		sort.Slice(fr.Melds, func(i, j int) bool {
			if fr.Melds[i].Block != fr.Melds[j].Block {
				return fr.Melds[i].Block < fr.Melds[j].Block
			}
			return fr.Melds[i].Kind < fr.Melds[j].Kind
		})
		for bi := range fr.Branches {
			b := &fr.Branches[bi]
			sort.Slice(b.RegionBlocks, func(i, j int) bool { return b.RegionBlocks[i] < b.RegionBlocks[j] })
		}
	}
}
