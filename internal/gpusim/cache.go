package gpusim

// CacheConfig sizes a set-associative cache with 32-byte lines (the
// transaction granularity the whole pipeline uses).
type CacheConfig struct {
	Sets    int
	Ways    int
	Latency uint64 // hit latency in cycles
}

// Size returns the capacity in bytes.
func (c CacheConfig) Size() int { return c.Sets * c.Ways * lineSize }

const lineSize = 32

// cache is an LRU set-associative tag array. Timing is handled by the
// caller; the cache only answers hit/miss and tracks statistics.
type cache struct {
	cfg   CacheConfig
	tags  []uint64
	valid []bool
	used  []uint64 // LRU timestamps
	tick  uint64

	Hits   uint64
	Misses uint64
}

func newCache(cfg CacheConfig) *cache {
	n := cfg.Sets * cfg.Ways
	return &cache{
		cfg:   cfg,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		used:  make([]uint64, n),
	}
}

// access looks up the line containing addr, filling it on miss, and reports
// whether it hit.
func (c *cache) access(addr uint64) bool {
	c.tick++
	line := addr / lineSize
	set := int(line % uint64(c.cfg.Sets))
	base := set * c.cfg.Ways
	victim, oldest := base, ^uint64(0)
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.valid[i] && c.tags[i] == line {
			c.used[i] = c.tick
			c.Hits++
			return true
		}
		if c.used[i] < oldest {
			victim, oldest = i, c.used[i]
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.valid[victim] = true
	c.used[victim] = c.tick
	return false
}

// HitRate returns hits/(hits+misses), or 0 when idle.
func (c *cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
