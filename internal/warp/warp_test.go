package warp

import (
	"testing"
	"testing/quick"

	"threadfuser/internal/trace"
)

func mkTrace(entries []uint32) *trace.Trace {
	t := &trace.Trace{
		Program: "t",
		Funcs:   []trace.FuncInfo{{Name: "f", Blocks: []trace.BlockInfo{{NInstr: 1}, {NInstr: 1}, {NInstr: 1}, {NInstr: 1}}}},
	}
	for tid, e := range entries {
		t.Threads = append(t.Threads, &trace.ThreadTrace{TID: tid, Records: []trace.Record{
			{Kind: trace.KindCall, Callee: 0},
			{Kind: trace.KindBBL, Func: 0, Block: e, N: 1},
			{Kind: trace.KindRet},
		}})
	}
	return t
}

func uniform(n int) []uint32 { return make([]uint32, n) }

func TestRoundRobinPacking(t *testing.T) {
	ws, err := Form(mkTrace(uniform(10)), 4, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	if len(ws) != len(want) {
		t.Fatalf("warps = %d, want %d", len(ws), len(want))
	}
	for i, w := range ws {
		for j, tid := range w {
			if tid != want[i][j] {
				t.Errorf("warp %d lane %d = %d, want %d", i, j, tid, want[i][j])
			}
		}
	}
}

func TestStridedDealing(t *testing.T) {
	ws, err := Form(mkTrace(uniform(8)), 4, Strided)
	if err != nil {
		t.Fatal(err)
	}
	// 2 warps: warp 0 gets 0,2,4,6; warp 1 gets 1,3,5,7.
	want := [][]int{{0, 2, 4, 6}, {1, 3, 5, 7}}
	for i, w := range ws {
		for j, tid := range w {
			if tid != want[i][j] {
				t.Errorf("warp %d lane %d = %d, want %d", i, j, tid, want[i][j])
			}
		}
	}
}

func TestGreedyEntryGroupsByFirstBlock(t *testing.T) {
	// Threads alternate entry blocks 0,1,0,1,...: greedy must separate them.
	entries := make([]uint32, 8)
	for i := range entries {
		entries[i] = uint32(i % 2)
	}
	ws, err := Form(mkTrace(entries), 4, GreedyEntry)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("warps = %d, want 2", len(ws))
	}
	for i, w := range ws {
		first := entries[w[0]]
		for _, tid := range w {
			if entries[tid] != first {
				t.Errorf("warp %d mixes entry blocks", i)
			}
		}
	}
}

func TestFormRejectsBadWidth(t *testing.T) {
	if _, err := Form(mkTrace(uniform(4)), 0, RoundRobin); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := Form(mkTrace(uniform(4)), -3, RoundRobin); err == nil {
		t.Error("negative width accepted")
	}
}

// TestFormationIsPartition: every formation assigns each thread to exactly
// one warp, and no warp exceeds the width.
func TestFormationIsPartition(t *testing.T) {
	f := func(n uint8, width uint8, kind uint8) bool {
		threads := int(n%60) + 1
		w := int(width%16) + 1
		formation := Formation(kind % 3)
		entries := make([]uint32, threads)
		for i := range entries {
			entries[i] = uint32(i % 3)
		}
		ws, err := Form(mkTrace(entries), w, formation)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, warp := range ws {
			if len(warp) > w || len(warp) == 0 {
				return false
			}
			for _, tid := range warp {
				if seen[tid] {
					return false
				}
				seen[tid] = true
			}
		}
		return len(seen) == threads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTraceThreadSortsLast(t *testing.T) {
	tr := mkTrace(uniform(3))
	tr.Threads = append(tr.Threads, &trace.ThreadTrace{TID: 3}) // empty
	ws, err := Form(tr, 4, GreedyEntry)
	if err != nil {
		t.Fatal(err)
	}
	last := ws[len(ws)-1]
	if last[len(last)-1] != 3 {
		t.Errorf("empty-trace thread not last: %v", ws)
	}
}
