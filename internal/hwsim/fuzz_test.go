package hwsim

import (
	"math"
	"testing"

	"threadfuser/internal/core"
	"threadfuser/internal/ir"
	"threadfuser/internal/irgen"
	"threadfuser/internal/vm"
)

// prepare allocates the shared/private regions a generated program expects
// (r9 = shared read-only inputs, r8 = per-thread private scratch).
func prepare(p *vm.Process, params irgen.Params, seed int64) func(int, *vm.Thread) {
	shared := p.AllocGlobal(uint64(8 * params.SharedWords))
	for i := 0; i < params.SharedWords; i++ {
		// Deterministic pseudo-random input data.
		v := (int64(i)*2654435761 + seed*40503) % 1009
		p.WriteI64(shared+uint64(8*i), v-504)
	}
	privSize := uint64(8 * params.PrivateWords)
	privBase := p.AllocGlobal(privSize * 4096) // room for many threads
	return func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(8), int64(privBase+uint64(tid)*privSize))
		th.SetReg(ir.R(9), int64(shared))
	}
}

// TestFuzzAnalyzerMatchesOracle is the repository's strongest correctness
// check: for hundreds of randomly generated, data-dependent, lock-free
// programs, the trace-replay analyzer and the live lockstep oracle — two
// independent SIMT-stack implementations — must measure *identical*
// efficiency, lockstep counts, and coalesced transactions at every warp
// size. Any divergence-handling bug in either engine breaks the agreement.
func TestFuzzAnalyzerMatchesOracle(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 20
	}
	const threads = 16
	for seed := int64(0); seed < int64(seeds); seed++ {
		params := irgen.DefaultParams(seed)
		prog := irgen.Random(params)

		for _, ws := range []int{4, 16} {
			// Oracle path.
			hp := vm.NewProcess(prog)
			hwRes, err := Run(hp, threads, Options{WarpSize: ws}, prepare(hp, params, seed))
			if err != nil {
				t.Fatalf("seed %d warp %d: oracle: %v", seed, ws, err)
			}
			// Analyzer path.
			tp := vm.NewProcess(prog)
			tr, err := vm.TraceAll(tp, threads, vm.RunConfig{}, prepare(tp, params, seed))
			if err != nil {
				t.Fatalf("seed %d warp %d: trace: %v", seed, ws, err)
			}
			opts := core.Defaults()
			opts.WarpSize = ws
			rep, err := core.Analyze(tr, opts)
			if err != nil {
				t.Fatalf("seed %d warp %d: analyze: %v", seed, ws, err)
			}

			hwTotal := hwRes.Total()
			if rep.LockstepInstrs != hwTotal.Lockstep {
				t.Errorf("seed %d warp %d: lockstep %d != oracle %d",
					seed, ws, rep.LockstepInstrs, hwTotal.Lockstep)
			}
			if rep.TotalInstrs != hwTotal.ThreadInstrs {
				t.Errorf("seed %d warp %d: thread instrs %d != oracle %d",
					seed, ws, rep.TotalInstrs, hwTotal.ThreadInstrs)
			}
			if math.Abs(rep.Efficiency-hwRes.Efficiency()) > 1e-12 {
				t.Errorf("seed %d warp %d: efficiency %v != oracle %v",
					seed, ws, rep.Efficiency, hwRes.Efficiency())
			}
			if rep.HeapTx != hwTotal.HeapTx || rep.StackTx != hwTotal.StackTx {
				t.Errorf("seed %d warp %d: tx (%d,%d) != oracle (%d,%d)",
					seed, ws, rep.HeapTx, rep.StackTx, hwTotal.HeapTx, hwTotal.StackTx)
			}
			if rep.MemInstrs != hwTotal.MemInstrs {
				t.Errorf("seed %d warp %d: mem instrs %d != oracle %d",
					seed, ws, rep.MemInstrs, hwTotal.MemInstrs)
			}
		}
	}
}

// TestFuzzGeneratedProgramsAreValid checks the generator's own guarantees:
// programs validate, terminate quickly, and produce well-formed traces.
func TestFuzzGeneratedProgramsAreValid(t *testing.T) {
	for seed := int64(1000); seed < 1050; seed++ {
		params := irgen.DefaultParams(seed)
		params.AllowSharedStores = true
		prog := irgen.Random(params)
		if err := ir.Validate(prog); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		p := vm.NewProcess(prog)
		tr, err := vm.TraceAll(p, 8, vm.RunConfig{MaxInstrs: 2_000_000}, prepare(p, params, seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
	}
}
