#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the tfserve analysis service.
#
# Builds the binaries, traces a workload, starts a real tfserve instance,
# and proves the service round trip is faithful: the report fetched through
# `tfanalyze -server` must be byte-identical (as indented JSON) to the one
# `tfanalyze -json` computes locally. When curl is available the raw HTTP
# surface is exercised too: two identical POSTs must return byte-identical
# bodies, with the second served from the report cache. Finishes with the
# tfcheck/tfstatic -server modes and a SIGTERM graceful-shutdown check.
#
# Usage: scripts/serve_smoke.sh   (CI runs it as the "tfserve smoke" step)
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve_smoke: building binaries"
go build -o "$workdir/bin/" ./cmd/tfserve ./cmd/tftrace ./cmd/tfanalyze ./cmd/tflint ./cmd/tfcheck ./cmd/tfstatic
bin="$workdir/bin"

echo "serve_smoke: tracing workload other.pigz"
"$bin/tftrace" -workload other.pigz -index -q -o "$workdir/pigz.tft"

port="${TFSERVE_PORT:-18787}"
base="http://127.0.0.1:$port"
"$bin/tfserve" -addr "127.0.0.1:$port" -cache-dir "$workdir/cache" &
server_pid=$!

echo "serve_smoke: local analysis"
"$bin/tfanalyze" -json -trace "$workdir/pigz.tft" -warp 32 >"$workdir/local.json"

echo "serve_smoke: remote analysis via $base"
ok=
for _ in $(seq 1 50); do
	if "$bin/tfanalyze" -json -trace "$workdir/pigz.tft" -warp 32 \
		-server "$base" >"$workdir/remote.json" 2>"$workdir/remote.err"; then
		ok=1
		break
	fi
	kill -0 "$server_pid" 2>/dev/null || { echo "serve_smoke: FAIL: tfserve died" >&2; exit 1; }
	sleep 0.2
done
if [ -z "$ok" ]; then
	echo "serve_smoke: FAIL: server never answered:" >&2
	cat "$workdir/remote.err" >&2
	exit 1
fi

if ! diff -u "$workdir/local.json" "$workdir/remote.json"; then
	echo "serve_smoke: FAIL: remote report differs from local tfanalyze -json" >&2
	exit 1
fi
echo "serve_smoke: remote report matches local analysis"

if command -v curl >/dev/null 2>&1; then
	echo "serve_smoke: raw POST via curl (dedup/cache headers)"
	curl -sSf --data-binary "@$workdir/pigz.tft" -D "$workdir/h1.txt" \
		"$base/v1/analyze?warp=32" >"$workdir/curl1.json"
	curl -sSf --data-binary "@$workdir/pigz.tft" -D "$workdir/h2.txt" \
		"$base/v1/analyze?warp=32" >"$workdir/curl2.json"
	cmp "$workdir/curl1.json" "$workdir/curl2.json" || {
		echo "serve_smoke: FAIL: repeated POSTs returned different bodies" >&2
		exit 1
	}
	grep -qi '^x-tfserve-cache: hit' "$workdir/h2.txt" || {
		echo "serve_smoke: FAIL: second POST was not a cache hit" >&2
		cat "$workdir/h2.txt" >&2
		exit 1
	}
	echo "serve_smoke: repeat POST byte-identical and cache-served"
else
	echo "serve_smoke: curl not found; skipping raw-HTTP leg"
fi

# pigz's divergence findings are real warnings, so lint at -severity error
# (exit 0) and instead require the remote report to match the local one.
echo "serve_smoke: tflint -server"
"$bin/tflint" -json -severity error "$workdir/pigz.tft" >"$workdir/lint-local.json"
"$bin/tflint" -json -severity error -server "$base" "$workdir/pigz.tft" >"$workdir/lint-remote.json"
if ! diff -u "$workdir/lint-local.json" "$workdir/lint-remote.json"; then
	echo "serve_smoke: FAIL: remote lint report differs from local tflint -json" >&2
	exit 1
fi

echo "serve_smoke: tfcheck -server"
"$bin/tfcheck" -server "$base" -warps 1,8 -parallel 1,2 -q "$workdir/pigz.tft"

echo "serve_smoke: tfstatic -server"
"$bin/tfstatic" -json -workload vectoradd >"$workdir/static-local.json"
"$bin/tfstatic" -json -workload vectoradd -server "$base" >"$workdir/static-remote.json"
if ! diff -u "$workdir/static-local.json" "$workdir/static-remote.json"; then
	echo "serve_smoke: FAIL: remote static report differs from local tfstatic -json" >&2
	exit 1
fi
"$bin/tfstatic" -server "$base" -workload vectoradd -locks -q

echo "serve_smoke: graceful shutdown"
kill -TERM "$server_pid"
i=0
while kill -0 "$server_pid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "serve_smoke: FAIL: tfserve did not exit after SIGTERM" >&2; exit 1; }
	sleep 0.1
done
server_pid=

echo "serve_smoke: OK"
