package workloads

import (
	"math"
	"testing"

	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// These tests check that the synthetic workloads compute what their names
// promise: the tracer is a real interpreter, so rotate must transpose,
// vectoradd must multiply-add, pagerank must sum neighbour contributions,
// and so on. Semantic bugs here would silently distort every efficiency
// number built on top.

// runAll executes every thread of an instance and returns the process.
func runAll(t *testing.T, inst *Instance) *vm.Process {
	t.Helper()
	p, args, err := inst.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < inst.Threads(); tid++ {
		th := p.NewThread(tid)
		if args != nil {
			args(tid, th)
		}
		if _, err := th.Run(vm.RunConfig{}); err != nil {
			t.Fatalf("thread %d: %v", tid, err)
		}
	}
	return p
}

// globalsBase recovers the address of the i-th global allocation made by a
// Setup function by replaying the allocator's deterministic layout.
// Simpler: tests re-derive addresses from a fresh process seeded the same
// way, so they read back through the same ArgFn registers instead.

func TestVectorAddComputesMulAdd(t *testing.T) {
	w, _ := ByName("vectoradd")
	inst, err := w.Instantiate(Config{Seed: 9, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, args, err := inst.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	// Recover the array bases from the ArgFn.
	probe := p.NewThread(0)
	args(0, probe)
	a := uint64(probe.Reg(ir.R(0)))
	b := uint64(probe.Reg(ir.R(1)))
	c := uint64(probe.Reg(ir.R(2)))

	// Snapshot inputs before execution.
	iters := 32
	n := 8 * iters
	as := make([]float64, n)
	bs := make([]float64, n)
	for i := 0; i < n; i++ {
		as[i] = p.ReadF64(a + uint64(8*i))
		bs[i] = p.ReadF64(b + uint64(8*i))
	}
	for tid := 0; tid < 8; tid++ {
		th := p.NewThread(tid)
		args(tid, th)
		if _, err := th.Run(vm.RunConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		want := as[i] * bs[i] // c starts at 0: c = a*b + 0
		if got := p.ReadF64(c + uint64(8*i)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("c[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestRotateTransposes(t *testing.T) {
	w, _ := ByName("other.rotate")
	inst, err := w.Instantiate(Config{Seed: 4, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, args, err := inst.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	probe := p.NewThread(0)
	args(0, probe)
	src := uint64(probe.Reg(ir.R(0)))
	dst := uint64(probe.Reg(ir.R(1)))
	height := int(probe.Reg(ir.R(2)))
	width := 24

	for tid := 0; tid < height; tid++ {
		th := p.NewThread(tid)
		args(tid, th)
		if _, err := th.Run(vm.RunConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	for row := 0; row < height; row++ {
		for x := 0; x < width; x++ {
			want := p.ReadI64(src + uint64(8*(row*width+x)))
			got := p.ReadI64(dst + uint64(8*(x*height+row)))
			if got != want {
				t.Fatalf("dst[%d][%d] = %d, want src[%d][%d] = %d", x, row, got, row, x, want)
			}
		}
	}
}

func TestPageRankSumsNeighbours(t *testing.T) {
	w, _ := ByName("paropoly.pagerank")
	inst, err := w.Instantiate(Config{Seed: 6, Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	p, args, err := inst.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	probe := p.NewThread(0)
	args(0, probe)
	offsets := uint64(probe.Reg(ir.R(0)))
	edges := uint64(probe.Reg(ir.R(1)))
	rank := uint64(probe.Reg(ir.R(2)))
	outdeg := uint64(probe.Reg(ir.R(3)))
	next := uint64(probe.Reg(ir.R(4)))

	for tid := 0; tid < 16; tid++ {
		th := p.NewThread(tid)
		args(tid, th)
		if _, err := th.Run(vm.RunConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	// Recompute node 3's rank by hand.
	const node = 3
	start := p.ReadI64(offsets + 8*node)
	end := p.ReadI64(offsets + 8*(node+1))
	sum := 0.0
	for e := start; e < end; e++ {
		v := p.ReadI64(edges + uint64(8*e))
		sum += p.ReadF64(rank+uint64(8*v)) / p.ReadF64(outdeg+uint64(8*v))
	}
	want := 0.15/16.0 + 0.85*sum
	if got := p.ReadF64(next + 8*node); math.Abs(got-want) > 1e-9 {
		t.Fatalf("pagerank[3] = %v, want %v", got, want)
	}
}

func TestBFSMarksNeighboursVisited(t *testing.T) {
	w, _ := ByName("rodinia.bfs")
	inst, err := w.Instantiate(Config{Seed: 11, Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	p, args, err := inst.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	probe := p.NewThread(0)
	args(0, probe)
	offsets := uint64(probe.Reg(ir.R(0)))
	edges := uint64(probe.Reg(ir.R(1)))
	frontier := uint64(probe.Reg(ir.R(2)))
	visited := uint64(probe.Reg(ir.R(3)))

	for tid := 0; tid < 16; tid++ {
		th := p.NewThread(tid)
		args(tid, th)
		if _, err := th.Run(vm.RunConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	// Every neighbour of every frontier node must now be visited.
	for v := 0; v < 16; v++ {
		if p.ReadI64(frontier+uint64(8*v)) == 0 {
			continue
		}
		start := p.ReadI64(offsets + uint64(8*v))
		end := p.ReadI64(offsets + uint64(8*(v+1)))
		for e := start; e < end; e++ {
			n := p.ReadI64(edges + uint64(8*e))
			if p.ReadI64(visited+uint64(8*n)) == 0 {
				t.Fatalf("neighbour %d of frontier node %d not visited", n, v)
			}
		}
	}
}

func TestHDSearchVectorLengthMatchesBuckets(t *testing.T) {
	// The fixed variant pins every bucket to 10 points: each request must
	// push exactly tables*xorMasks*10 = 80 points.
	w, _ := ByName("usuite.hdsearch.mid.fixed")
	inst, err := w.Instantiate(Config{Seed: 2, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, args, err := inst.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 4; tid++ {
		th := p.NewThread(tid)
		args(tid, th)
		if _, err := th.Run(vm.RunConfig{}); err != nil {
			t.Fatal(err)
		}
		// The vector header lives on the stack at [sp-32]; len at +8.
		hdr := vm.StackTop(tid) - 32
		if got := p.ReadI64(hdr + 8); got != 80 {
			t.Fatalf("thread %d pushed %d points, want 80 (2 tables x 4 masks x 10)", tid, got)
		}
		if capv := p.ReadI64(hdr + 16); capv < 80 {
			t.Fatalf("thread %d vector capacity %d < len 80", tid, capv)
		}
	}
}

func TestMD5IsInputSensitive(t *testing.T) {
	// Different seeds must give different digests (the rounds actually
	// consume the message), and identical seeds identical digests.
	digest := func(seed int64) int64 {
		w, _ := ByName("other.md5")
		inst, err := w.Instantiate(Config{Seed: seed, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		p, args, err := inst.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		probe := p.NewThread(0)
		args(0, probe)
		out := uint64(probe.Reg(ir.R(2)))
		th := p.NewThread(0)
		args(0, th)
		if _, err := th.Run(vm.RunConfig{}); err != nil {
			t.Fatal(err)
		}
		return p.ReadI64(out)
	}
	a, b, a2 := digest(1), digest(2), digest(1)
	if a == b {
		t.Error("different messages produced the same digest")
	}
	if a != a2 {
		t.Error("same message produced different digests")
	}
}

func TestMemcachedRespectsValueLengths(t *testing.T) {
	// The response copy length is the per-request value length; verify the
	// allocator handed out enough and the copy wrote the response region.
	w, _ := ByName("usuite.mcrouter.memcached")
	inst, err := w.Instantiate(Config{Seed: 3, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := runAll(t, inst)
	// All arena bump pointers must have advanced (mallocs happened).
	advanced := 0
	for i := uint64(0); i < vm.NumArenas; i++ {
		next := p.Mem.Read(vm.ArenaStateBase+i*vm.ArenaStateStride, 8)
		if next > vm.HeapBase+i*vm.ArenaSpan {
			advanced++
		}
	}
	if advanced == 0 {
		t.Error("no arena allocations happened")
	}
}
