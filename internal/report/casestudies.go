package report

import (
	"fmt"

	"threadfuser/internal/core"
	"threadfuser/internal/stats"
	"threadfuser/internal/workloads"
)

// ---------------------------------------------------------------- Figure 7

// Fig7Func is one per-function row of the HDSearch-Midtier breakdown.
type Fig7Func struct {
	Name       string
	InstrShare float64
	Efficiency float64
}

// Fig7Data is the HDSearch-Midtier case study: the per-function breakdown
// that pinpoints getpoint, and the before/after of the SIMT-aware fix.
type Fig7Data struct {
	Funcs         []Fig7Func
	OriginalEff   float64
	FixedEff      float64
	GetpointShare float64
	GetpointEff   float64
}

// Fig7 reproduces the figure-7 analysis on usuite.hdsearch.mid and its
// fixed variant.
func Fig7(s Scale) (*Fig7Data, error) {
	w, err := workloads.ByName("usuite.hdsearch.mid")
	if err != nil {
		return nil, err
	}
	fw, err := workloads.ByName("usuite.hdsearch.mid.fixed")
	if err != nil {
		return nil, err
	}
	// The original and fixed variants are independent analyses.
	var rep, frep *core.Report
	g := s.pool()
	g.Go(func() error {
		var err error
		rep, _, _, err = analyze(w, s, 32, false)
		return err
	})
	g.Go(func() error {
		var err error
		frep, _, _, err = analyze(fw, s, 32, false)
		return err
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}
	d := &Fig7Data{OriginalEff: rep.Efficiency, FixedEff: frep.Efficiency}
	for _, f := range rep.PerFunction {
		d.Funcs = append(d.Funcs, Fig7Func{Name: f.Name, InstrShare: f.InstrShare, Efficiency: f.Efficiency})
		if f.Name == "getpoint" {
			d.GetpointShare = f.InstrShare
			d.GetpointEff = f.Efficiency
		}
	}
	return d, nil
}

// Render formats the case study.
func (d *Fig7Data) Render() string {
	t := newTable("function", "instr share", "SIMT efficiency")
	for _, f := range d.Funcs {
		t.add(f.Name, pct(f.InstrShare), pct(f.Efficiency))
	}
	return fmt.Sprintf("Figure 7: HDSearch-Midtier per-function analysis\n%s\noverall efficiency %s -> %s after pinning getpoint trip counts (paper: 7%% -> 90%%)\n",
		t.String(), pct(d.OriginalEff), pct(d.FixedEff))
}

// ---------------------------------------------------------------- Figure 8

// Fig8Row is one microservice's traced/skipped split.
type Fig8Row struct {
	Workload  string
	TracedPct float64
	IOPct     float64
	SpinPct   float64
}

// Fig8Data is the skipped-instruction distribution.
type Fig8Data struct {
	Rows    []Fig8Row
	GeoMean float64 // geometric mean of traced fractions (paper: ~90%)
}

// Fig8 measures the percentage of instructions traced versus skipped (I/O
// and lock spinning) for the microservice workloads.
func Fig8(s Scale) (*Fig8Data, error) {
	ws := workloads.Microservices()
	d := &Fig8Data{Rows: make([]Fig8Row, len(ws))}
	fracs := make([]float64, len(ws))
	g := s.pool()
	for i, w := range ws {
		i, w := i, w
		g.Go(func() error {
			rep, _, _, err := analyze(w, s, 32, false)
			if err != nil {
				return err
			}
			total := float64(rep.TotalInstrs + rep.SkippedIO + rep.SkippedSpin)
			row := Fig8Row{
				Workload:  w.Name,
				TracedPct: rep.TracedPercent,
			}
			if total > 0 {
				row.IOPct = 100 * float64(rep.SkippedIO) / total
				row.SpinPct = 100 * float64(rep.SkippedSpin) / total
			}
			fracs[i] = rep.TracedPercent / 100
			d.Rows[i] = row
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	// fracs is index-addressed, so the geometric mean sees the same
	// workload order as the serial path.
	d.GeoMean = stats.GeoMean(fracs)
	return d, nil
}

// Render formats the traced/skipped distribution.
func (d *Fig8Data) Render() string {
	t := newTable("workload", "traced", "skipped I/O", "skipped spin")
	for _, r := range d.Rows {
		t.add(r.Workload,
			fmt.Sprintf("%5.1f%%", r.TracedPct),
			fmt.Sprintf("%5.1f%%", r.IOPct),
			fmt.Sprintf("%5.1f%%", r.SpinPct))
	}
	return fmt.Sprintf("Figure 8: Traced vs skipped instructions (microservices)\n%sGEOMEAN traced: %s (paper: ~90%%)\n",
		t.String(), pct(d.GeoMean))
}

// ---------------------------------------------------------------- Figure 9

// Fig9Row compares one microservice's efficiency with and without
// intra-warp lock emulation.
type Fig9Row struct {
	Workload     string
	EffFineGrain float64 // locks assumed uncontended (default reporting)
	EffEmulated  float64 // contended critical sections serialized
}

// Fig9Data is the lock-emulation study.
type Fig9Data struct {
	Rows []Fig9Row
}

// Fig9 measures warp efficiency of the microservice workloads when
// intra-warp locking is emulated (paper figure 9; warp size 32).
func Fig9(s Scale) (*Fig9Data, error) {
	ws := workloads.Microservices()
	d := &Fig9Data{Rows: make([]Fig9Row, len(ws))}
	g := s.pool()
	for i, w := range ws {
		i, w := i, w
		g.Go(func() error {
			// Trace once; a session shares the DCFG/IPDOM products and warp
			// formation between the fine-grain and lock-emulated analyses,
			// which differ only in replay options.
			inst, err := w.Instantiate(s.config(w))
			if err != nil {
				return err
			}
			tr, err := inst.Trace()
			if err != nil {
				return err
			}
			sess := s.session()
			base, err := sess.Analyze(tr, s.options(32, false))
			if err != nil {
				return err
			}
			emu, err := sess.Analyze(tr, s.options(32, true))
			if err != nil {
				return err
			}
			d.Rows[i] = Fig9Row{
				Workload:     w.Name,
				EffFineGrain: base.Efficiency,
				EffEmulated:  emu.Efficiency,
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return d, nil
}

// Render formats the lock study.
func (d *Fig9Data) Render() string {
	t := newTable("workload", "eff (fine-grain)", "eff (locks emulated)", "drop")
	for _, r := range d.Rows {
		t.add(r.Workload, pct(r.EffFineGrain), pct(r.EffEmulated), pct(r.EffFineGrain-r.EffEmulated))
	}
	return "Figure 9: Warp efficiency with intra-warp locking emulated (warp=32)\n" + t.String()
}

// --------------------------------------------------------------- Figure 10

// Fig10Row is one workload's memory-divergence measurement.
type Fig10Row struct {
	Workload   string
	HeapTxPer  float64 // transactions per heap load/store instruction
	StackTxPer float64 // transactions per stack load/store instruction
}

// Fig10Data is the memory-divergence dataset.
type Fig10Data struct {
	Rows []Fig10Row
}

// Fig10 measures memory transactions per load/store instruction, split by
// heap and stack segment, at warp size 32 (paper figure 10).
func Fig10(s Scale) (*Fig10Data, error) {
	ws := workloads.Microservices()
	d := &Fig10Data{Rows: make([]Fig10Row, len(ws))}
	g := s.pool()
	for i, w := range ws {
		i, w := i, w
		g.Go(func() error {
			rep, _, _, err := analyze(w, s, 32, false)
			if err != nil {
				return err
			}
			d.Rows[i] = Fig10Row{
				Workload:   w.Name,
				HeapTxPer:  rep.HeapTxPerInstr,
				StackTxPer: rep.StackTxPerInstr,
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return d, nil
}

// Render formats the memory-divergence table.
func (d *Fig10Data) Render() string {
	t := newTable("workload", "heap tx/instr", "stack tx/instr")
	for _, r := range d.Rows {
		t.add(r.Workload, f2(r.HeapTxPer), f2(r.StackTxPer))
	}
	return "Figure 10: Memory transactions per load/store (warp=32; ideal is 8 for 8-byte lanes)\n" + t.String()
}

// ---------------------------------------------------------------- Table II

// Table2Data is the XAPP-vs-ThreadFuser accuracy summary. The XAPP column
// holds the numbers the paper cites for XAPP; the ThreadFuser column holds
// this reproduction's measured values.
type Table2Data struct {
	// Measured by this reproduction.
	EffMAEO1    float64 // paper: 3%
	MemMAEO1    float64 // paper: 17%
	SpeedupCorr float64 // paper: 0.97
	ExecTimeMAE float64 // paper: 33%
	// Cited from the paper for XAPP.
	XAPPExecTimeErr float64 // 26.9%
}

// Table2 assembles the accuracy comparison from the figure-5 and figure-6
// measurements.
func Table2(s Scale) (*Table2Data, error) {
	effData, err := Fig5a(s)
	if err != nil {
		return nil, err
	}
	memData, err := Fig5b(s)
	if err != nil {
		return nil, err
	}
	spdData, err := Fig6(s)
	if err != nil {
		return nil, err
	}
	d := &Table2Data{
		SpeedupCorr:     spdData.SpeedupCorrelation,
		ExecTimeMAE:     spdData.ExecTimeMAE,
		XAPPExecTimeErr: 0.269,
	}
	for _, l := range effData.Levels {
		if l.Level.String() == "O1" {
			d.EffMAEO1 = l.MAE
		}
	}
	for _, l := range memData.Levels {
		if l.Level.String() == "O1" {
			d.MemMAEO1 = l.MAE
		}
	}
	return d, nil
}

// Render formats the comparison.
func (d *Table2Data) Render() string {
	t := newTable("metric", "XAPP (cited)", "ThreadFuser (measured)", "ThreadFuser (paper)")
	t.add("input", "CPU code", "CPU MIMD traces", "CPU MIMD traces")
	t.add("analysis", "profiling, ML-based", "dynamic CFG", "dynamic CFG")
	t.add("SIMT efficiency error", "-", pct(d.EffMAEO1), " 3.0%")
	t.add("memory error", "-", pct(d.MemMAEO1), "17.0%")
	t.add("speedup projection corr", "-", f3(d.SpeedupCorr), "0.97")
	t.add("execution time error", pct(d.XAPPExecTimeErr), pct(d.ExecTimeMAE), "33.0%")
	t.add("hardware support", "only GPUs", "any SIMT hardware", "any SIMT hardware")
	return "Table II: XAPP vs ThreadFuser\n" + t.String()
}
