package ipdom

import "testing"

// TestPathologicalCFGs pins the post-dominator answers on the graph shapes
// that historically break iterative dominance solvers: irreducible loops
// (two entries into a cycle), multi-exit blocks (switch successors straight
// to returns), and single-block self-loops. Every case also runs the generic
// sanity sweep: no block is its own immediate post-dominator and the exit
// post-dominates everything.
func TestPathologicalCFGs(t *testing.T) {
	type want struct {
		block int32
		ipdom int32 // -1 means the virtual exit
	}
	cases := []struct {
		name  string
		succs [][]int
		wants []want
	}{
		{
			// 0 -> 1, 0 -> 2; 1 <-> 2 form a two-node cycle entered from
			// both sides (irreducible: neither 1 nor 2 dominates the other);
			// each can leave to 3 -> exit.
			name:  "irreducible two-entry loop",
			succs: [][]int{{1, 2}, {2, 3}, {1, 3}, {}},
			wants: []want{{0, 3}, {1, 3}, {2, 3}, {3, -1}},
		},
		{
			// The cycle can only be left from 2, so 1's chain must pass
			// through 2 even though 1 is also an entry point.
			name:  "irreducible loop, single break block",
			succs: [][]int{{1, 2}, {2}, {1, 3}, {}},
			wants: []want{{0, 2}, {1, 2}, {2, 3}, {3, -1}},
		},
		{
			// 1 is a 3-way switch: back to itself, to a return, and to a
			// second distinct return — a multi-exit block.
			name:  "multi-exit switch block",
			succs: [][]int{{1}, {1, 2, 3}, {}, {}},
			wants: []want{{0, 1}, {1, -1}, {2, -1}, {3, -1}},
		},
		{
			// A single block both self-loops and returns: the tightest
			// spin-loop shape a thread trace can produce.
			name:  "single-block self-loop",
			succs: [][]int{{0}},
			wants: []want{{0, -1}},
		},
		{
			// Self-loop in the middle of a straight line.
			name:  "self-loop on interior block",
			succs: [][]int{{1}, {1, 2}, {}},
			wants: []want{{0, 1}, {1, 2}, {2, -1}},
		},
		{
			// Nested irreducible mess: outer cycle 1<->3 entered at both 1
			// (from 0) and 3 (from 2); exit only via 3 -> 4.
			name:  "crossed entries",
			succs: [][]int{{1, 2}, {3}, {3}, {1, 4}, {}},
			wants: []want{{0, 3}, {1, 3}, {2, 3}, {3, 4}, {4, -1}},
		},
		{
			// All paths loop forever; nothing ever reaches a return. IPDom
			// falls back to the virtual exit for every block so the SIMT
			// stack still has a well-defined reconvergence point.
			name:  "no path to exit",
			succs: [][]int{{1}, {0}},
			wants: []want{{0, -1}, {1, -1}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildGraph(t, tc.succs)
			pd := Compute(g)
			exit := g.ExitNode()
			for _, w := range tc.wants {
				want := w.ipdom
				if want == -1 {
					want = exit
				}
				if got := pd.IPDom(w.block); got != want {
					t.Errorf("ipdom(%d) = %d, want %d", w.block, got, want)
				}
			}
			for b := int32(0); b < int32(len(tc.succs)); b++ {
				if pd.IPDom(b) == b {
					t.Errorf("ipdom(%d) is itself", b)
				}
				if !pd.PostDominates(exit, b) {
					t.Errorf("exit does not post-dominate %d", b)
				}
			}
		})
	}
}
