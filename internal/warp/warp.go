// Package warp groups traced CPU threads into warps for SIMT emulation.
//
// The paper's analyzer "employs a configurable batching algorithm to group
// threads into warps" (section I) and notes that "different batching
// algorithms can be explored in the process of warp formation" (section
// III). This package provides the natural round-robin batching GPUs use for
// consecutive thread ids plus two alternatives used by the ablation bench:
// strided interleaving and a greedy grouping by each thread's dynamic entry
// block, which batches threads that start on the same control path.
package warp

import (
	"fmt"
	"sort"

	"threadfuser/internal/trace"
)

// Formation selects a batching algorithm.
type Formation uint8

const (
	// RoundRobin packs consecutive thread ids: warp k holds threads
	// [k*W, (k+1)*W). This matches CUDA's thread-to-warp mapping and is
	// the paper's default.
	RoundRobin Formation = iota
	// Strided deals threads across warps like cards: thread i lands in
	// warp i % numWarps. It models a worst-case-oblivious scheduler.
	Strided
	// GreedyEntry groups threads whose traces begin with the same first
	// basic block, then packs each group round-robin. For SPMD workloads
	// it matches RoundRobin; for heterogeneous request mixes it batches
	// similar requests together.
	GreedyEntry
)

func (f Formation) String() string {
	switch f {
	case RoundRobin:
		return "round-robin"
	case Strided:
		return "strided"
	case GreedyEntry:
		return "greedy-entry"
	}
	return fmt.Sprintf("formation(%d)", uint8(f))
}

// Warp is an ordered set of thread ids executed in lockstep. A trailing
// partial warp (fewer than the warp size) is allowed, as on real hardware.
type Warp []int

// Form partitions the trace's threads into warps of the given width.
func Form(t *trace.Trace, width int, f Formation) ([]Warp, error) {
	if width <= 0 {
		return nil, fmt.Errorf("warp: width must be positive, got %d", width)
	}
	n := len(t.Threads)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}

	switch f {
	case RoundRobin:
		// ids already in order.
	case Strided:
		numWarps := (n + width - 1) / width
		strided := make([]int, 0, n)
		for w := 0; w < numWarps; w++ {
			for i := w; i < n; i += numWarps {
				strided = append(strided, i)
			}
		}
		ids = strided
	case GreedyEntry:
		keys := make([]uint64, n)
		for i, th := range t.Threads {
			keys[i] = entryKey(th)
		}
		sort.SliceStable(ids, func(a, b int) bool { return keys[ids[a]] < keys[ids[b]] })
	default:
		return nil, fmt.Errorf("warp: unknown formation %d", f)
	}

	warps := make([]Warp, 0, (n+width-1)/width)
	for start := 0; start < n; start += width {
		end := start + width
		if end > n {
			end = n
		}
		warps = append(warps, Warp(ids[start:end:end]))
	}
	return warps, nil
}

// CheckPartition verifies that warps form an exact partition of thread ids
// 0..threads-1: every id appears exactly once and no warp exceeds the width.
// Every Formation must satisfy this; the verification engine
// (internal/check) asserts it as a standing property.
func CheckPartition(warps []Warp, threads, width int) error {
	seen := make([]bool, threads)
	total := 0
	for wi, w := range warps {
		if len(w) == 0 {
			return fmt.Errorf("warp: warp %d is empty", wi)
		}
		if len(w) > width {
			return fmt.Errorf("warp: warp %d has %d threads > width %d", wi, len(w), width)
		}
		for _, tid := range w {
			if tid < 0 || tid >= threads {
				return fmt.Errorf("warp: warp %d references thread %d outside [0,%d)", wi, tid, threads)
			}
			if seen[tid] {
				return fmt.Errorf("warp: thread %d appears in more than one warp", tid)
			}
			seen[tid] = true
			total++
		}
	}
	if total != threads {
		return fmt.Errorf("warp: %d of %d threads batched", total, threads)
	}
	return nil
}

// entryKey identifies the first executed basic block of a thread trace.
func entryKey(th *trace.ThreadTrace) uint64 {
	for i := range th.Records {
		if r := &th.Records[i]; r.Kind == trace.KindBBL {
			return uint64(r.Func)<<32 | uint64(r.Block)
		}
	}
	return ^uint64(0) // empty trace sorts last
}
