package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"threadfuser/internal/analysis"
	"threadfuser/internal/core"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
	"threadfuser/internal/workloads"
)

// fuzzSeedTrace is a small, fully valid two-thread trace exercising every
// record kind, so mutations of its encodings explore the interesting paths.
func fuzzSeedTrace() *trace.Trace {
	t := &trace.Trace{
		Program: "fuzzseed",
		Funcs: []trace.FuncInfo{
			{Name: "main", Blocks: []trace.BlockInfo{{NInstr: 3}, {NInstr: 2}}},
			{Name: "leaf", Blocks: []trace.BlockInfo{{NInstr: 4}}},
		},
	}
	for tid := 0; tid < 2; tid++ {
		t.Threads = append(t.Threads, &trace.ThreadTrace{TID: tid, Records: []trace.Record{
			{Kind: trace.KindCall, Callee: 0},
			{Kind: trace.KindBBL, Func: 0, Block: 0, N: 3, Mem: []trace.MemAccess{
				{Instr: 1, Addr: vm.GlobalBase + 8*uint64(tid), Size: 8, Store: true},
			}},
			{Kind: trace.KindCall, Callee: 1},
			{Kind: trace.KindBBL, Func: 1, Block: 0, N: 4, Locks: []trace.LockOp{
				{Instr: 0, Addr: vm.GlobalBase + 64},
				{Instr: 3, Addr: vm.GlobalBase + 64, Release: true},
			}},
			{Kind: trace.KindRet},
			{Kind: trace.KindSkip, N: 5, SkipKind: trace.SkipIO},
			{Kind: trace.KindBBL, Func: 0, Block: 1, N: 2},
			{Kind: trace.KindRet},
		}})
	}
	return t
}

// lockSeedTrace is a valid two-thread trace whose lock events hit the
// deadlock and lockset passes' hard cases: a tid-flipped two-lock inversion
// (the classic order cycle), a recursive re-acquire of the inner lock, and a
// release of a word that was never acquired. Mutating its encodings explores
// the lock-op decode paths that the plain fuzzSeedTrace's single balanced
// pair never reaches.
func lockSeedTrace() *trace.Trace {
	t := &trace.Trace{
		Program: "lockseed",
		Funcs: []trace.FuncInfo{
			{Name: "worker", Blocks: []trace.BlockInfo{{NInstr: 8}}},
		},
	}
	const (
		lockA = vm.GlobalBase + 1024
		lockB = vm.GlobalBase + 1088
		stray = vm.GlobalBase + 1152
	)
	for tid := 0; tid < 2; tid++ {
		a, b := uint64(lockA), uint64(lockB)
		if tid == 1 {
			a, b = b, a // inverted nesting order: the seeded cycle
		}
		t.Threads = append(t.Threads, &trace.ThreadTrace{TID: tid, Records: []trace.Record{
			{Kind: trace.KindBBL, Func: 0, Block: 0, N: 8, Locks: []trace.LockOp{
				{Instr: 0, Addr: a},
				{Instr: 1, Addr: b},
				{Instr: 2, Addr: b}, // recursive re-acquire
				{Instr: 4, Addr: b, Release: true},
				{Instr: 5, Addr: b, Release: true},
				{Instr: 6, Addr: a, Release: true},
				{Instr: 7, Addr: stray, Release: true}, // bare release
			}, Mem: []trace.MemAccess{
				{Instr: 3, Addr: vm.GlobalBase + 2048, Size: 8, Store: true},
			}},
		}})
	}
	return t
}

// stridedSeedTrace is a valid four-thread trace whose heap addresses stride
// by thread id — the shape the per-site coalescing histograms (and the static
// memory oracle's dynamic cross-check) aggregate. Each thread replays the
// same block three times: one load site stays tid-contiguous (coalescing into
// few transactions) while one store site scatters by 4 KiB per lane, so the
// same static site observes different per-execution transaction counts and
// fills distinct histogram buckets. Mutations of its encodings explore the
// warp-memory decode and accounting paths with realistic strided traffic.
func stridedSeedTrace() *trace.Trace {
	t := &trace.Trace{
		Program: "strideseed",
		Funcs: []trace.FuncInfo{
			{Name: "stride", Blocks: []trace.BlockInfo{{NInstr: 4}}},
		},
	}
	for tid := 0; tid < 4; tid++ {
		th := &trace.ThreadTrace{TID: tid}
		th.Records = append(th.Records, trace.Record{Kind: trace.KindCall, Callee: 0})
		for iter := 0; iter < 3; iter++ {
			th.Records = append(th.Records, trace.Record{
				Kind: trace.KindBBL, Func: 0, Block: 0, N: 4,
				Mem: []trace.MemAccess{
					{Instr: 1, Addr: vm.HeapBase + 8*uint64(tid) + 64*uint64(iter), Size: 8},
					{Instr: 2, Addr: vm.HeapBase + 4096*uint64(tid) + 32*uint64(iter), Size: 8, Store: true},
				},
			})
		}
		th.Records = append(th.Records, trace.Record{Kind: trace.KindRet})
		t.Threads = append(t.Threads, th)
	}
	return t
}

// TestStridedSeedExercisesSiteHistograms pins what stridedSeedTrace is for:
// the unmutated seed must be valid (the clean side of the sanitizer
// contract), and replaying it must aggregate per-site transaction histograms
// — repeated executions of the coalesced load landing in the 1-transaction
// bucket, the scattered store in the one-per-lane bucket.
func TestStridedSeedExercisesSiteHistograms(t *testing.T) {
	tr := stridedSeedTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("seed trace invalid: %v", err)
	}
	rep, err := analysis.Run(tr, analysis.Options{WarpSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("sanitizer reported %d error(s) on the valid seed", rep.Errors)
	}
	opts := core.Defaults()
	opts.WarpSize = 4
	crep, err := core.Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(crep.MemSites) != 2 {
		t.Fatalf("replay aggregated %d memory sites, want 2", len(crep.MemSites))
	}
	for _, s := range crep.MemSites {
		switch s.Instr {
		case 1: // coalesced load: 4 lanes × 8 bytes, 32-byte aligned
			if s.Execs != 3 || s.MaxTx != 1 || s.Hist[0] != 3 {
				t.Errorf("load site = execs %d maxTx %d hist %v, want 3 executions all in the 1-tx bucket",
					s.Execs, s.MaxTx, s.Hist)
			}
		case 2: // scattered store: one 4 KiB-distant sector per lane
			if s.Execs != 3 || s.MaxTx != 4 || s.Hist[3] != 3 {
				t.Errorf("store site = execs %d maxTx %d hist %v, want 3 executions all in the 4-tx bucket",
					s.Execs, s.MaxTx, s.Hist)
			}
		default:
			t.Errorf("unexpected site at instr %d", s.Instr)
		}
	}
}

// FuzzDecode asserts the contract the tflint sanitizer depends on: arbitrary
// bytes never panic or exhaust memory in the decoder, and any trace the
// decoder does accept is either valid or diagnosed by the sanitize pass —
// never silently consumed by the structural passes.
func FuzzDecode(f *testing.F) {
	for _, seed := range []*trace.Trace{fuzzSeedTrace(), lockSeedTrace(), stridedSeedTrace()} {
		var v1, v2, v3 bytes.Buffer
		if err := trace.Encode(&v1, seed); err != nil {
			f.Fatal(err)
		}
		if err := trace.EncodeCompact(&v2, seed); err != nil {
			f.Fatal(err)
		}
		if err := trace.EncodeIndexed(&v3, seed); err != nil {
			f.Fatal(err)
		}
		for _, b := range [][]byte{v1.Bytes(), v2.Bytes(), v3.Bytes()} {
			f.Add(b)
			f.Add(b[:len(b)/2])
			if len(b) > 12 {
				mut := append([]byte(nil), b...)
				mut[8] ^= 0xff
				mut[len(mut)-4] ^= 0x40
				f.Add(mut)
			}
		}
	}
	// Arena section-size edge cases (empty threads, single-record threads,
	// maximal same-block runs) in the indexed container, plus a variant with
	// a corrupted footer so the index-vs-stream reconciliation paths run.
	for _, tr := range arenaEdgeSeedTraces() {
		var v3e bytes.Buffer
		if err := trace.EncodeIndexed(&v3e, tr); err != nil {
			f.Fatal(err)
		}
		b := v3e.Bytes()
		f.Add(b)
		if len(b) > 20 {
			mut := append([]byte(nil), b...)
			mut[len(mut)-16] ^= 0x11
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("TFT\x02garbage"))
	// Implausible declared counts: a huge thread count, and a single thread
	// declaring a huge record count. Both must hit the count caps, not drive
	// pathological decode loops.
	f.Add(append([]byte("TFTR\x01\x00\x00\x00"), 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Add(append([]byte("TFTR\x01\x00\x00\x00\x01\x00"), 0xff, 0xff, 0xff, 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected outright: fine
		}
		rep, err := analysis.Run(tr, analysis.Options{WarpSize: 4})
		if err != nil {
			t.Fatalf("lint engine errored on decoded trace: %v", err)
		}
		if verr := tr.Validate(); verr != nil && rep.Errors == 0 {
			t.Fatalf("sanitizer reported no errors for invalid trace (%v)", verr)
		}
	})
}

// arenaEdgeSeedTraces are valid traces hitting the arena decoder's
// section-size edge cases: empty threads between populated ones,
// single-record threads, and a long run of identical blocks (maximal
// same-block run length for the batched replay).
func arenaEdgeSeedTraces() []*trace.Trace {
	funcs := []trace.FuncInfo{{Name: "f", Blocks: []trace.BlockInfo{{NInstr: 2}}}}
	longRun := &trace.ThreadTrace{TID: 1}
	for i := 0; i < 300; i++ {
		longRun.Records = append(longRun.Records, trace.Record{Kind: trace.KindBBL, N: 2})
	}
	return []*trace.Trace{
		{Program: "edge-empty", Funcs: funcs, Threads: []*trace.ThreadTrace{
			{TID: 0, Records: []trace.Record{}},
			{TID: 1, Records: []trace.Record{{Kind: trace.KindBBL, N: 2}}},
			{TID: 2, Records: []trace.Record{}},
		}},
		{Program: "edge-single", Funcs: funcs, Threads: []*trace.ThreadTrace{
			{TID: 0, Records: []trace.Record{{Kind: trace.KindBBL, N: 2,
				Mem: []trace.MemAccess{{Instr: 1, Addr: vm.GlobalBase, Size: 8}}}}},
			{TID: 1, Records: []trace.Record{{Kind: trace.KindSkip, SkipKind: trace.SkipIO, N: 3}}},
		}},
		{Program: "edge-run", Funcs: funcs, Threads: []*trace.ThreadTrace{longRun}},
	}
}

// roundTripCorpus seeds the round-trip fuzzer with encodings of real traces:
// the synthetic every-record-kind seed plus the arena edge-case traces and
// two small built-in workloads (one memory-heavy, one lock-heavy), in both
// codec versions.
func roundTripCorpus(f *testing.F) [][]byte {
	traces := []*trace.Trace{fuzzSeedTrace(), lockSeedTrace(), stridedSeedTrace()}
	traces = append(traces, arenaEdgeSeedTraces()...)
	for _, name := range []string{"vectoradd", "seededrace"} {
		w, err := workloads.ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		inst, err := w.Instantiate(workloads.Config{Threads: 4, Seed: 1})
		if err != nil {
			f.Fatal(err)
		}
		tr, err := inst.Trace()
		if err != nil {
			f.Fatal(err)
		}
		traces = append(traces, tr)
	}
	var out [][]byte
	for _, tr := range traces {
		var v1, v2, v3 bytes.Buffer
		if err := trace.Encode(&v1, tr); err != nil {
			f.Fatal(err)
		}
		if err := trace.EncodeCompact(&v2, tr); err != nil {
			f.Fatal(err)
		}
		if err := trace.EncodeIndexed(&v3, tr); err != nil {
			f.Fatal(err)
		}
		out = append(out, v1.Bytes(), v2.Bytes(), v3.Bytes())
	}
	return out
}

// FuzzRoundTrip asserts the codec contract the check engine's codec property
// relies on: for any trace the decoder accepts and Validate passes,
// decode(encode(tr)) == tr under BOTH codec versions, and re-encoding the
// decoded trace reproduces the bytes (encode∘decode is a fixed point).
func FuzzRoundTrip(f *testing.F) {
	for _, b := range roundTripCorpus(f) {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(bytes.NewReader(data))
		if err != nil || tr.Validate() != nil {
			return // not a valid trace: out of the round-trip contract
		}
		type codec struct {
			name   string
			encode func(*bytes.Buffer, *trace.Trace) error
		}
		codecs := []codec{
			{"v1", func(b *bytes.Buffer, tr *trace.Trace) error { return trace.Encode(b, tr) }},
			{"v2", func(b *bytes.Buffer, tr *trace.Trace) error { return trace.EncodeCompact(b, tr) }},
			{"v3", func(b *bytes.Buffer, tr *trace.Trace) error { return trace.EncodeIndexed(b, tr) }},
		}
		for _, c := range codecs {
			var enc bytes.Buffer
			if err := c.encode(&enc, tr); err != nil {
				t.Fatalf("%s: encoding a valid trace failed: %v", c.name, err)
			}
			got, err := trace.Decode(bytes.NewReader(enc.Bytes()))
			if err != nil {
				t.Fatalf("%s: decoding our own encoding failed: %v", c.name, err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Fatalf("%s: decode(encode(tr)) != tr", c.name)
			}
			var re bytes.Buffer
			if err := c.encode(&re, got); err != nil {
				t.Fatalf("%s: re-encoding failed: %v", c.name, err)
			}
			if !bytes.Equal(re.Bytes(), enc.Bytes()) {
				t.Fatalf("%s: encode∘decode is not a fixed point (%d vs %d bytes)",
					c.name, re.Len(), enc.Len())
			}
		}
	})
}
