package trace_test

import (
	"bytes"
	"testing"

	"threadfuser/internal/analysis"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// fuzzSeedTrace is a small, fully valid two-thread trace exercising every
// record kind, so mutations of its encodings explore the interesting paths.
func fuzzSeedTrace() *trace.Trace {
	t := &trace.Trace{
		Program: "fuzzseed",
		Funcs: []trace.FuncInfo{
			{Name: "main", Blocks: []trace.BlockInfo{{NInstr: 3}, {NInstr: 2}}},
			{Name: "leaf", Blocks: []trace.BlockInfo{{NInstr: 4}}},
		},
	}
	for tid := 0; tid < 2; tid++ {
		t.Threads = append(t.Threads, &trace.ThreadTrace{TID: tid, Records: []trace.Record{
			{Kind: trace.KindCall, Callee: 0},
			{Kind: trace.KindBBL, Func: 0, Block: 0, N: 3, Mem: []trace.MemAccess{
				{Instr: 1, Addr: vm.GlobalBase + 8*uint64(tid), Size: 8, Store: true},
			}},
			{Kind: trace.KindCall, Callee: 1},
			{Kind: trace.KindBBL, Func: 1, Block: 0, N: 4, Locks: []trace.LockOp{
				{Instr: 0, Addr: vm.GlobalBase + 64},
				{Instr: 3, Addr: vm.GlobalBase + 64, Release: true},
			}},
			{Kind: trace.KindRet},
			{Kind: trace.KindSkip, N: 5, SkipKind: trace.SkipIO},
			{Kind: trace.KindBBL, Func: 0, Block: 1, N: 2},
			{Kind: trace.KindRet},
		}})
	}
	return t
}

// FuzzDecode asserts the contract the tflint sanitizer depends on: arbitrary
// bytes never panic or exhaust memory in the decoder, and any trace the
// decoder does accept is either valid or diagnosed by the sanitize pass —
// never silently consumed by the structural passes.
func FuzzDecode(f *testing.F) {
	seed := fuzzSeedTrace()
	var v1, v2 bytes.Buffer
	if err := trace.Encode(&v1, seed); err != nil {
		f.Fatal(err)
	}
	if err := trace.EncodeCompact(&v2, seed); err != nil {
		f.Fatal(err)
	}
	for _, b := range [][]byte{v1.Bytes(), v2.Bytes()} {
		f.Add(b)
		f.Add(b[:len(b)/2])
		if len(b) > 12 {
			mut := append([]byte(nil), b...)
			mut[8] ^= 0xff
			mut[len(mut)-4] ^= 0x40
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("TFT\x02garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected outright: fine
		}
		rep, err := analysis.Run(tr, analysis.Options{WarpSize: 4})
		if err != nil {
			t.Fatalf("lint engine errored on decoded trace: %v", err)
		}
		if verr := tr.Validate(); verr != nil && rep.Errors == 0 {
			t.Fatalf("sanitizer reported no errors for invalid trace (%v)", verr)
		}
	})
}
