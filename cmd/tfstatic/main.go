// Command tfstatic is the static SIMT oracle: it runs the interprocedural
// uniformity dataflow of internal/staticsimt over built-in workloads'
// programs — no tracing, no replay — and reports, per function, which
// branches are provably warp-uniform, which may diverge (with the taint
// chain that makes them so), where each divergent region reconverges, and
// which diamond arms are meldable (isomorphic modulo register renaming, or
// if-convertible beyond the optimizer's O3 budget).
//
// Usage:
//
//	tfstatic -workload vectoradd
//	tfstatic -workload other.pigz -opt O3 -v
//	tfstatic -all -json
//
// The exit status is 2 for usage errors, 1 if any workload fails to load or
// analyze, and 0 otherwise; divergent classifications are reports, not
// failures. -json emits an array of staticsimt.Result values with a
// deterministic field and finding order, so byte-identical inputs produce
// byte-identical output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"threadfuser/internal/opt"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/workloads"
)

func main() {
	var (
		wlNames = flag.String("workload", "", "comma-separated built-in workloads to analyze")
		all     = flag.Bool("all", false, "analyze every registered workload")
		threads = flag.Int("threads", 0, "thread count for workload instantiation (0 = workload default)")
		seed    = flag.Int64("seed", 7, "input-generator seed for workload instantiation")
		level   = flag.String("opt", "O1", "optimization level to analyze at (O0, O1, O2, O3)")
		budget  = flag.Int("budget", 0, "meld budget separating optimizer-handled from over-budget diamonds (0 = O3 budget)")
		asJSON  = flag.Bool("json", false, "emit results as a JSON array")
		verbose = flag.Bool("v", false, "list every branch, not just the divergent ones")
		quiet   = flag.Bool("q", false, "one summary line per workload")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tfstatic [flags] -workload name[,name...] | -all\n")
		fmt.Fprintf(os.Stderr, "static uniformity analysis of built-in workloads (no tracing)\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tfstatic: unexpected argument %q (inputs are workloads, not files)\n", flag.Arg(0))
		os.Exit(2)
	}
	lvl, ok := parseLevel(*level)
	if !ok {
		fmt.Fprintf(os.Stderr, "tfstatic: unknown optimization level %q\n", *level)
		os.Exit(2)
	}
	if *verbose && *quiet {
		fmt.Fprintln(os.Stderr, "tfstatic: -v and -q are mutually exclusive")
		os.Exit(2)
	}

	var list []*workloads.Workload
	if *all {
		list = workloads.All()
	} else if *wlNames != "" {
		for _, name := range strings.Split(*wlNames, ",") {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tfstatic:", err)
				os.Exit(2)
			}
			list = append(list, w)
		}
	}
	if len(list) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	var results []*staticsimt.Result
	for _, w := range list {
		inst, err := w.Instantiate(workloads.Config{Threads: *threads, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfstatic: %s: %v\n", w.Name, err)
			failed = true
			continue
		}
		prog := inst.Prog
		if lvl != opt.O1 {
			prog = opt.Apply(prog, lvl)
		}
		res := staticsimt.Analyze(prog, staticsimt.Options{MeldBudget: *budget})
		switch {
		case *asJSON:
			results = append(results, res)
		case *quiet:
			fmt.Printf("%-28s %3d uniform / %3d divergent branch(es), %d meldable\n",
				w.Name, res.UniformBranches, res.DivergentBranches, res.Meldable)
		default:
			res.Render(os.Stdout, *verbose)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "tfstatic:", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func parseLevel(s string) (opt.Level, bool) {
	for _, l := range opt.Levels {
		if l.String() == s {
			return l, true
		}
	}
	return 0, false
}
