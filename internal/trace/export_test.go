package trace

import "io"

// Test-only exports: the legacy streaming decoder stays unexported (it is a
// reference implementation, not API), but the differential tests in the
// external trace_test package compare it against the arena decoder.

// DecodeStream runs the legacy record-at-a-time streaming decoder.
func DecodeStream(r io.Reader) (*Trace, error) { return decodeStream(r) }

// DecodeArena decodes data and returns the backing arena alongside the
// trace view, so tests can check arena invariants directly.
func DecodeArena(data []byte) (*Trace, *Arena, error) { return decodeArena(data) }
