package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// TestIndexedCodecRoundTrip: Decode(EncodeIndexed(t)) == t for arbitrary
// valid traces — the v3 stream is readable front to back without the index.
func TestIndexedCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := EncodeIndexed(&buf, tr); err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Logf("decode v3: %v", err)
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDecodeParallelMatchesDecode: indexed parallel decode assembles the
// exact same trace as the sequential stream decode, at several worker counts.
func TestDecodeParallelMatchesDecode(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := EncodeIndexed(&buf, tr); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		for _, par := range []int{1, 4, 0} {
			got, err := DecodeParallel(bytes.NewReader(data), int64(len(data)), par)
			if err != nil {
				t.Fatalf("seed %d par %d: %v", seed, par, err)
			}
			if !reflect.DeepEqual(tr, got) {
				t.Fatalf("seed %d par %d: parallel decode mismatch", seed, par)
			}
		}
	}
}

// TestDecodeParallelFallsBackWithoutIndex: v1 and v2 inputs have no index
// and must degrade to the sequential path, never to an error.
func TestDecodeParallelFallsBackWithoutIndex(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(7)))
	for name, encode := range map[string]func(io.Writer, *Trace) error{
		"v1": Encode, "v2": EncodeCompact,
	} {
		var buf bytes.Buffer
		if err := encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		if _, err := NewReader(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrNoIndex) {
			t.Errorf("%s: NewReader error = %v, want ErrNoIndex", name, err)
		}
		got, err := DecodeParallel(bytes.NewReader(data), int64(len(data)), 4)
		if err != nil {
			t.Fatalf("%s: fallback decode: %v", name, err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Errorf("%s: fallback decode mismatch", name)
		}
	}
}

// TestReadHeaderAllVersions: ReadHeader returns the same metadata from all
// three encodings and never needs the thread data.
func TestReadHeaderAllVersions(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)))
	for name, encode := range map[string]func(io.Writer, *Trace) error{
		"v1": Encode, "v2": EncodeCompact, "v3": EncodeIndexed,
	} {
		var buf bytes.Buffer
		if err := encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		h, err := ReadHeader(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.Program != tr.Program || h.Entry != tr.Entry || h.NumThreads != len(tr.Threads) {
			t.Errorf("%s: header = %q/%d/%d threads, want %q/%d/%d",
				name, h.Program, h.Entry, h.NumThreads, tr.Program, tr.Entry, len(tr.Threads))
		}
		if !reflect.DeepEqual(h.Funcs, tr.Funcs) {
			t.Errorf("%s: function table mismatch", name)
		}
	}
}

// TestReaderThreadsAndIter: per-thread random access and the iterator both
// reproduce the encoded streams, in file order, without a whole-trace decode.
func TestReaderThreadsAndIter(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(11)))
	var buf bytes.Buffer
	if err := EncodeIndexed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumThreads() != len(tr.Threads) {
		t.Fatalf("NumThreads = %d, want %d", r.NumThreads(), len(tr.Threads))
	}
	// Random access, deliberately out of order.
	for i := r.NumThreads() - 1; i >= 0; i-- {
		if r.TID(i) != tr.Threads[i].TID {
			t.Fatalf("TID(%d) = %d, want %d", i, r.TID(i), tr.Threads[i].TID)
		}
		th, err := r.Thread(i)
		if err != nil {
			t.Fatalf("Thread(%d): %v", i, err)
		}
		if !reflect.DeepEqual(th, tr.Threads[i]) {
			t.Fatalf("Thread(%d) mismatch", i)
		}
	}
	if _, err := r.Thread(r.NumThreads()); err == nil {
		t.Error("Thread(out of range) succeeded")
	}
	// Iterator, in order, ending with io.EOF.
	it := r.Iter()
	for i := 0; ; i++ {
		th, err := it.Next()
		if err == io.EOF {
			if i != len(tr.Threads) {
				t.Fatalf("iterator stopped after %d threads, want %d", i, len(tr.Threads))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(th, tr.Threads[i]) {
			t.Fatalf("iterated thread %d mismatch", i)
		}
	}
}

func TestOpenFileAndReadFileParallel(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(5)))
	dir := t.TempDir()
	indexed := filepath.Join(dir, "indexed.tft")
	if err := WriteFileIndexed(indexed, tr); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(indexed)
	if err != nil {
		t.Fatal(err)
	}
	th, err := r.Thread(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(th, tr.Threads[0]) {
		t.Error("Thread(0) mismatch")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileParallel(indexed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("ReadFileParallel mismatch on indexed file")
	}
	// And the plain ReadFile still understands v3.
	got, err = ReadFile(indexed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("ReadFile mismatch on indexed file")
	}
	// Unindexed files take the fallback path.
	plain := filepath.Join(dir, "plain.tft")
	if err := WriteFileCompact(plain, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(plain); !errors.Is(err, ErrNoIndex) {
		t.Errorf("OpenFile(v2) error = %v, want ErrNoIndex", err)
	}
	got, err = ReadFileParallel(plain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("ReadFileParallel mismatch on v2 file")
	}
}

// indexedParts splits a v3 encoding into (body, footer, trailer) so tests
// can corrupt each region independently.
func indexedParts(t *testing.T, tr *Trace) (body, footer, trailer []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeIndexed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < trailerSize {
		t.Fatalf("encoding too short: %d bytes", len(b))
	}
	trailer = b[len(b)-trailerSize:]
	fl := int(binary.LittleEndian.Uint64(trailer[:8]))
	footer = b[len(b)-trailerSize-fl : len(b)-trailerSize]
	return b[:len(b)-trailerSize-fl], footer, trailer
}

// TestTruncatedFooterDegrades: cutting anywhere inside the footer/trailer
// yields ErrNoIndex from NewReader, and DecodeParallel still succeeds via
// the sequential path (the thread data is intact).
func TestTruncatedFooterDegrades(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(13)))
	body, footer, trailer := indexedParts(t, tr)
	full := append(append(append([]byte(nil), body...), footer...), trailer...)
	for _, cut := range []int{1, trailerSize - 1, trailerSize, trailerSize + len(footer)/2, trailerSize + len(footer)} {
		data := full[:len(full)-cut]
		if _, err := NewReader(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrNoIndex) {
			t.Errorf("cut %d: NewReader error = %v, want ErrNoIndex", cut, err)
		}
		got, err := DecodeParallel(bytes.NewReader(data), int64(len(data)), 2)
		if err != nil {
			t.Errorf("cut %d: DecodeParallel: %v", cut, err)
			continue
		}
		if !reflect.DeepEqual(tr, got) {
			t.Errorf("cut %d: fallback decode mismatch", cut)
		}
	}
}

// TestIndexOffsetsPastEOFDegrade: a footer whose offsets point outside the
// data region is rejected as ErrNoIndex, and DecodeParallel falls back to
// the stream decode rather than erroring.
func TestIndexOffsetsPastEOFDegrade(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(17)))
	body, _, _ := indexedParts(t, tr)

	uv := func(buf []byte, v uint64) []byte {
		var tmp [binary.MaxVarintLen64]byte
		return append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	bogus := []struct {
		name     string
		off, len uint64
	}{
		{"offset past EOF", uint64(len(body)) + 1000, 10},
		{"length past EOF", uint64(len(body)) - 1, 1 << 30},
		{"offset inside header", 1, 10},
	}
	for _, c := range bogus {
		var footer []byte
		footer = uv(footer, 10)                      // headerLen
		footer = uv(footer, uint64(len(tr.Threads))) // nthreads
		for range tr.Threads {
			footer = uv(footer, 0) // tid
			footer = uv(footer, c.off)
			footer = uv(footer, c.len)
		}
		data := append(append([]byte(nil), body...), footer...)
		var trailer [trailerSize]byte
		binary.LittleEndian.PutUint64(trailer[:8], uint64(len(footer)))
		copy(trailer[8:], indexMagic)
		data = append(data, trailer[:]...)

		if _, err := NewReader(bytes.NewReader(data), int64(len(data))); !errors.Is(err, ErrNoIndex) {
			t.Errorf("%s: NewReader error = %v, want ErrNoIndex", c.name, err)
		}
		got, err := DecodeParallel(bytes.NewReader(data), int64(len(data)), 2)
		if err != nil {
			t.Errorf("%s: DecodeParallel: %v", c.name, err)
			continue
		}
		if !reflect.DeepEqual(tr, got) {
			t.Errorf("%s: fallback decode mismatch", c.name)
		}
	}
}

// TestDecodeCapsThreadAndRecordCounts: the count caps cover the thread count
// and the per-thread record count, so a corrupt header cannot drive
// pathological decode loops (the counts the fuzz-hardening pass previously
// left unchecked).
func TestDecodeCapsThreadAndRecordCounts(t *testing.T) {
	// v1 header: program "", entry 0, 0 funcs, then an absurd thread count.
	hugeThreads := append([]byte("TFTR\x01\x00\x00\x00"), 0xff, 0xff, 0xff, 0xff, 0x7f)
	// Same header, 1 thread with tid 0 and an absurd record count.
	hugeRecords := append([]byte("TFTR\x01\x00\x00\x00\x01\x00"), 0xff, 0xff, 0xff, 0xff, 0x7f)
	for name, data := range map[string][]byte{
		"thread count": hugeThreads,
		"record count": hugeRecords,
	} {
		_, err := Decode(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: implausible count decoded successfully", name)
			continue
		}
		if want := "implausible"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("%s: error %q does not mention %q", name, err, want)
		}
	}
}
