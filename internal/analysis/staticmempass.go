package analysis

import (
	"fmt"

	"threadfuser/internal/staticmem"
	"threadfuser/internal/warp"
)

// staticMemPass cross-checks the static memory oracle (internal/staticmem)
// against the per-site coalescing histograms the replay aggregates. Like the
// other static passes it needs Options.Prog; trace-only inputs skip it. The
// two disagreement directions carry opposite meanings:
//
//   - a site whose observed transactions exceed its static bound, or whose
//     observed segment contradicts the static segment claim (a "stack" site
//     touching the heap), is a soundness bug in the oracle (SevError —
//     internal/check's "staticcoalesce" invariant enforces that this never
//     happens);
//   - a site classified scattered whose replay executions all stayed within
//     the fully-coalesced envelope is a precision gap (SevInfo), the
//     expected cost of a conservative dataflow.
type staticMemPass struct{}

func (staticMemPass) ID() string { return "staticmem" }
func (staticMemPass) Desc() string {
	return "static memory oracle vs dynamic replay: per-site transaction-bound soundness and scattered-prediction precision gaps"
}

func (staticMemPass) Run(ctx *Context) error {
	prog := ctx.Opts.Prog
	if prog == nil {
		return nil // gated in RunSession; defensive
	}
	if mismatch := progTraceMismatch(prog, ctx.Trace); mismatch != "" {
		f := finding("staticmem", SevWarning)
		f.Message = fmt.Sprintf("attached program does not match the trace symbol table (%s); static comparison skipped", mismatch)
		ctx.add(f)
		return nil
	}

	sm := staticmem.Analyze(prog)
	rep, err := ctx.Report(false)
	if err != nil {
		return err
	}
	contiguous := ctx.Opts.Formation == warp.RoundRobin

	// Soundness direction: no replayed execution of a site may exceed its
	// static transactions-per-warp bound, and segment claims must hold.
	soundness := 0
	executed := map[int]*struct{ maxTx uint64 }{} // static site -> worst observation
	for i := range rep.MemSites {
		d := &rep.MemSites[i]
		si, ok := sm.SiteAt(d.FuncID, d.Block, d.Instr)
		if !ok {
			soundness++
			f := finding("staticmem", SevError)
			f.Function = d.Func
			f.Block = int32(d.Block)
			f.Message = fmt.Sprintf("oracle soundness bug: replay accessed memory at instr %d but the static site table has no entry", d.Instr)
			ctx.add(f)
			continue
		}
		s := &sm.Sites[si]
		executed[si] = &struct{ maxTx uint64 }{d.MaxTx}
		bound := s.TxBound(rep.WarpSize, contiguous)
		if d.MaxTx > uint64(bound) {
			soundness++
			f := finding("staticmem", SevError)
			f.Function = d.Func
			f.Block = int32(d.Block)
			f.Message = fmt.Sprintf("oracle soundness bug: site i%d classified %s (stride %+d, addr %s) is bounded at %d tx/warp%d but a replay execution needed %d",
				d.Instr, s.Class, s.Stride, s.Shape, bound, rep.WarpSize, d.MaxTx)
			f.Details = map[string]string{"class": s.Class, "shape": s.Shape}
			ctx.add(f)
		}
		switch {
		case s.Segment == staticmem.SegmentStack && d.HeapTx > 0:
			soundness++
			f := finding("staticmem", SevError)
			f.Function = d.Func
			f.Block = int32(d.Block)
			f.Message = fmt.Sprintf("oracle soundness bug: site i%d claimed stack-segment (addr %s) but the replay observed %d heap transaction(s)",
				d.Instr, s.Shape, d.HeapTx)
			ctx.add(f)
		case s.Segment == staticmem.SegmentOther && d.StackTx > 0:
			soundness++
			f := finding("staticmem", SevError)
			f.Function = d.Func
			f.Block = int32(d.Block)
			f.Message = fmt.Sprintf("oracle soundness bug: site i%d claimed heap/global-segment (addr %s) but the replay observed %d stack transaction(s)",
				d.Instr, s.Shape, d.StackTx)
			ctx.add(f)
		}
	}

	// Precision direction: scattered predictions the replay never confirmed —
	// every observed execution stayed within what a fully-coalesced
	// classification (stride == access size, no divergence widening) would
	// have bounded.
	gaps := 0
	precision := func(msg string) {
		gaps++
		if gaps > maxPrecisionReports {
			return
		}
		f := finding("staticmem", SevInfo)
		f.Message = msg
		ctx.add(f)
	}
	for si := range sm.Sites {
		s := &sm.Sites[si]
		obs, ran := executed[si]
		if s.Class != staticmem.ClassScattered || s.Unreachable || !ran {
			continue
		}
		hyp := *s
		hyp.Class = staticmem.ClassCoalesced
		hyp.StrideKnown = true
		hyp.Stride = int64(s.Size)
		hyp.Divergent = false
		if obs.maxTx <= uint64(hyp.TxBound(rep.WarpSize, contiguous)) {
			precision(fmt.Sprintf("precision gap: %s b%d i%d classified scattered (addr %s) but every replay execution stayed within the coalesced envelope (worst %d tx)",
				s.FuncName, s.Block, s.Instr, s.Shape, obs.maxTx))
		}
	}
	if gaps > maxPrecisionReports {
		f := finding("staticmem", SevInfo)
		f.Message = fmt.Sprintf("%d further precision gap(s) suppressed", gaps-maxPrecisionReports)
		ctx.add(f)
	}

	f := finding("staticmem", SevInfo)
	f.Message = fmt.Sprintf("static memory oracle: %d site(s): %d broadcast, %d coalesced, %d strided, %d scattered (%d divergent); %d meld(s) vetoed; %d executed dynamically, %d soundness violation(s), %d precision gap(s)",
		len(sm.Sites), sm.Broadcast, sm.Coalesced, sm.Strided, sm.Scattered, sm.DivergentSites, sm.MeldsRejectedMem, len(rep.MemSites), soundness, gaps)
	ctx.add(f)
	return nil
}
