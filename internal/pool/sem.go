package pool

import "context"

// Sem is a counting semaphore with non-blocking and context-aware acquire
// paths. The Group above throttles homogeneous task fan-out; Sem is the
// admission-control primitive the analysis service layers on top: engine
// slots, the bounded admission queue, and per-tenant concurrency budgets are
// all Sems, differing only in capacity and in whether exhaustion sheds
// (TryAcquire) or waits (Acquire).
type Sem struct {
	ch chan struct{}
}

// NewSem returns a semaphore with n slots. A non-positive n is clamped to 1
// so a zero-valued configuration degrades to full serialization, never to a
// semaphore that can't be acquired at all.
func NewSem(n int) *Sem {
	if n < 1 {
		n = 1
	}
	return &Sem{ch: make(chan struct{}, n)}
}

// TryAcquire takes a slot if one is free and reports whether it did. It
// never blocks — this is the load-shedding path: a full semaphore means the
// caller should turn the request away, not queue behind it.
func (s *Sem) TryAcquire() bool {
	select {
	case s.ch <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire blocks until a slot frees up or ctx is done, returning ctx.Err()
// in the latter case.
func (s *Sem) Acquire(ctx context.Context) error {
	select {
	case s.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot. Releasing more than was acquired is a programming
// error and panics rather than silently inflating capacity.
func (s *Sem) Release() {
	select {
	case <-s.ch:
	default:
		panic("pool: Sem.Release without a matching Acquire")
	}
}

// InUse returns the number of currently held slots. It is inherently racy
// under concurrent traffic and meant for stats reporting and for tests
// asserting a drained semaphore returns to zero.
func (s *Sem) InUse() int { return len(s.ch) }

// Cap returns the semaphore's slot count.
func (s *Sem) Cap() int { return cap(s.ch) }
