package simtrace

import (
	"threadfuser/internal/core"
	"threadfuser/internal/hwsim"
	"threadfuser/internal/simt"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// analyzeWithListener drives the analyzer pipeline with the collector
// attached, using the paper's default configuration at the given warp size.
func analyzeWithListener(tr *trace.Trace, warpSize int, l simt.Listener) (*core.Report, error) {
	opts := core.Defaults()
	opts.WarpSize = warpSize
	opts.Listener = l
	return core.Analyze(tr, opts)
}

// hwRun drives the lockstep oracle with the collector attached.
func hwRun(p *vm.Process, threads, warpSize int, l simt.Listener, args func(int, *vm.Thread)) (*simt.Result, error) {
	return hwsim.Run(p, threads, hwsim.Options{WarpSize: warpSize, Listener: l}, args)
}
