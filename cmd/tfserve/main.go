// Command tfserve runs the ThreadFuser analysis service: a long-running
// multi-tenant HTTP server that accepts streamed .tft uploads and serves
// the analyzer, lint, check, and static oracles as JSON, with admission
// control, per-tenant budgets, in-flight dedup, and a bounded on-disk
// report cache. The one-shot CLIs gain a -server flag that routes through
// it, so a team shares one warm cache and one replay budget.
//
// Usage:
//
//	tfserve [-addr :8787] [-concurrency N] [-queue N] [-tenant-budget N]
//	        [-max-upload-mb N] [-timeout D] [-cache] [-cache-dir DIR]
//	        [-cache-max-mb N] [-replay-parallel N]
//
// SIGINT/SIGTERM triggers a graceful shutdown: new work is shed with 503,
// admitted work drains, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"threadfuser/internal/core"
	"threadfuser/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8787", "listen address")
		concurrency  = flag.Int("concurrency", 0, "max simultaneously executing analyses (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue depth; beyond it requests get 429 (0 = 4x concurrency)")
		tenantBudget = flag.Int("tenant-budget", 0, "per-tenant concurrent request budget (0 = concurrency)")
		maxUploadMB  = flag.Int64("max-upload-mb", 1024, "largest accepted .tft upload, in MiB")
		timeout      = flag.Duration("timeout", 2*time.Minute, "per-request deadline, queueing included")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		replayPar    = flag.Int("replay-parallel", 1, "worker count inside one replay (throughput vs latency)")
		decodePar    = flag.Int("decode-parallel", 0, "worker count decoding one indexed upload (0 = one per core)")
		cacheOn      = flag.Bool("cache", true, "serve repeat analyses from the on-disk report cache")
		cacheDir     = flag.String("cache-dir", "", "cache directory (default: user cache dir/threadfuser)")
		cacheMaxMB   = flag.Int64("cache-max-mb", 512, "cache size cap in MiB; LRU-evicted past it (0 = unbounded)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight work on shutdown")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "tfserve: unexpected arguments", flag.Args())
		os.Exit(2)
	}

	cache := core.OpenFlagCache(*cacheOn, *cacheDir)
	if cache != nil && *cacheMaxMB > 0 {
		cache.SetMaxBytes(*cacheMaxMB << 20)
	}
	dp := *decodePar
	if dp == 0 {
		dp = runtime.GOMAXPROCS(0)
	}
	srv := serve.New(serve.Config{
		MaxConcurrent:     *concurrency,
		QueueDepth:        *queue,
		TenantBudget:      *tenantBudget,
		MaxUploadBytes:    *maxUploadMB << 20,
		RequestTimeout:    *timeout,
		RetryAfter:        *retryAfter,
		ReplayParallelism: *replayPar,
		DecodeParallelism: dp,
		Cache:             cache,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The pprof endpoints live on their own listener, never the service one:
	// profiles expose internals no tenant should reach, so the operator binds
	// -debug-addr to localhost (or a firewalled port) and the main address
	// stays clean. The debug server's lifetime is the process's — profiling a
	// draining server is exactly the use case.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("tfserve: pprof on %s", *debugAddr)
			ds := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			if err := ds.ListenAndServe(); err != nil {
				log.Printf("tfserve: pprof server: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("tfserve: listening on %s", *addr)
		if cache != nil {
			log.Printf("tfserve: report cache at %s (cap %d MiB)", cache.Dir(), *cacheMaxMB)
		}
		errc <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("tfserve: %v", err)
	case s := <-sig:
		log.Printf("tfserve: %v: draining", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("tfserve: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("tfserve: shutdown: %v", err)
	}
	log.Printf("tfserve: stopped")
}
