// A/B equivalence suite for the lockstep-fusion fast path: every workload,
// every warp width × formation cell, replayed fused (with the static uniform
// oracle feeding window proposals) and with DisableLockstepFusion, must give
// reflect.DeepEqual Results — including the MemSites transaction histograms,
// the metric most sensitive to the fused coalescing math.
//
// The file lives in the external test package because workloads imports simt;
// it builds its own vm programs for the fusion edge cases rather than sharing
// the in-package helpers.
package simt_test

import (
	"reflect"
	"testing"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/ir"
	"threadfuser/internal/simt"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
	"threadfuser/internal/warp"
	"threadfuser/internal/workloads"
)

// fusionWidths is the full warp-width axis; -short trims it to the three
// regimes (degenerate, partial-warp, full-warp) to keep the suite quick.
func fusionWidths(t *testing.T) []int {
	if testing.Short() {
		return []int{1, 4, 32}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

var fusionFormations = []warp.Formation{warp.RoundRobin, warp.Strided, warp.GreedyEntry}

// assertFusionAB replays one (trace, warps, opts) cell fused and per-block
// and fails unless the Results are bit-identical.
func assertFusionAB(t *testing.T, tr *trace.Trace, graphs map[uint32]*cfg.DCFG, pdoms map[uint32]*ipdom.PostDom, warps []warp.Warp, opts simt.Options) {
	t.Helper()
	fused, err := simt.Replay(tr, graphs, pdoms, warps, opts)
	if err != nil {
		t.Fatalf("fused replay (%+v): %v", opts, err)
	}
	off := opts
	off.DisableLockstepFusion = true
	stepped, err := simt.Replay(tr, graphs, pdoms, warps, off)
	if err != nil {
		t.Fatalf("per-block replay (%+v): %v", off, err)
	}
	if !reflect.DeepEqual(fused, stepped) {
		t.Errorf("warp=%d locks=%v: fused and per-block Results differ\nfused total:   %+v\nstepped total: %+v",
			opts.WarpSize, opts.EmulateLocks, fused.Total(), stepped.Total())
		return
	}
	// DeepEqual already covers MemSites; assert the map is populated when the
	// trace has memory so equality can't pass vacuously on both being empty.
	if len(fused.MemSites) == 0 {
		for _, th := range tr.Threads {
			for _, r := range th.Records {
				if len(r.Mem) > 0 {
					t.Errorf("warp=%d: trace has memory accesses but MemSites is empty", opts.WarpSize)
					return
				}
			}
		}
	}
}

// TestFusionMatchesSteppedAllWorkloads sweeps every registered workload at
// its reduced default scale through the full width × formation matrix, plus
// a locks cell at full warp width, comparing fused vs per-block replay.
func TestFusionMatchesSteppedAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := w.Instantiate(workloads.Config{})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := inst.Trace()
			if err != nil {
				t.Fatal(err)
			}
			graphs, err := cfg.Build(tr)
			if err != nil {
				t.Fatal(err)
			}
			pdoms := ipdom.ComputeAll(graphs)
			uniform := staticsimt.UniformBlocks(inst.Prog,
				staticsimt.Analyze(inst.Prog, staticsimt.Options{AssumeUniformEntry: true}))
			for _, width := range fusionWidths(t) {
				for _, form := range fusionFormations {
					warps, err := warp.Form(tr, width, form)
					if err != nil {
						t.Fatal(err)
					}
					assertFusionAB(t, tr, graphs, pdoms, warps,
						simt.Options{WarpSize: width, UniformBranches: uniform})
				}
			}
			// Lock emulation changes the replay's control flow (serialization
			// splits); one full-width cell bounds the cost of the dimension.
			warps, err := warp.Form(tr, 32, warp.RoundRobin)
			if err != nil {
				t.Fatal(err)
			}
			assertFusionAB(t, tr, graphs, pdoms, warps,
				simt.Options{WarpSize: 32, EmulateLocks: true, UniformBranches: uniform})
		})
	}
}

// fusionEdgeProgram is the parametric program behind the fusion edge-case
// seeds and fuzzer. Shape:
//
//	entry:  parity-branch on r2 (per-thread) — warps split before the call
//	odd:    nops, call worker        ┐ function entered with a divergent
//	even:   nop,  call worker        ┘ context (split mask, two call sites)
//	worker: head → body loop (store through a TID-indexed table, trip count
//	        in r1, per-thread) → cs (lock r3 / nops / unlock mid-function,
//	        breaking uniform runs at the acquire) → ret
//	join/tail: reconverge, trailing nops
//
// Per-thread trip counts drive mask narrowing (a lone lane looping after the
// rest exit), and the lock-address table drives contention.
func fusionEdgeProgram(t testing.TB) *ir.Program {
	t.Helper()
	pb := ir.NewBuilder("fusionedge")
	mainf := pb.NewFunc("main")
	workf := pb.NewFunc("worker")

	entry := mainf.NewBlock("entry")
	odd := mainf.NewBlock("odd")
	even := mainf.NewBlock("even")
	joinO := mainf.NewBlock("join_odd")
	joinE := mainf.NewBlock("join_even")
	tail := mainf.NewBlock("tail")
	entry.Test(ir.Rg(ir.R(2)), ir.Imm(1)).Jcc(ir.CondNE, odd, even)
	odd.Nop(3).Call(workf, joinO)
	even.Nop(1).Call(workf, joinE)
	joinO.Jmp(tail)
	joinE.Jmp(tail)
	tail.Nop(4).Ret()

	head := workf.NewBlock("head")
	body := workf.NewBlock("body")
	cs := workf.NewBlock("cs")
	done := workf.NewBlock("done")
	head.Nop(1).Jmp(body)
	body.Mov(ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8), ir.Rg(ir.R(1))).
		Sub(ir.Rg(ir.R(1)), ir.Imm(1)).
		Cmp(ir.Rg(ir.R(1)), ir.Imm(0)).
		Jcc(ir.CondGT, body, cs)
	// The acquire sits mid-block after plain work: a warp-uniform run reaches
	// it inside a fused window and must fall back to stepped execution there.
	cs.Nop(2).Lock(ir.Rg(ir.R(3))).Nop(3).Unlock(ir.Rg(ir.R(3))).Nop(1).Jmp(done)
	done.Ret()
	return pb.MustBuild()
}

// traceFusionEdge instantiates fusionEdgeProgram for nthreads with trip
// counts drawn from tripBits (3 bits per thread, +1) and locks shared
// distinct-ways, then traces it.
func traceFusionEdge(t testing.TB, nthreads int, tripOf func(tid int) int64, distinct int) (*trace.Trace, *ir.Program) {
	t.Helper()
	prog := fusionEdgeProgram(t)
	p := vm.NewProcess(prog)
	table := p.AllocGlobal(uint64(8 * nthreads))
	lockWords := p.AllocGlobal(uint64(8 * distinct))
	tr, err := vm.TraceAll(p, nthreads, vm.RunConfig{}, func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(0), int64(table))
		th.SetReg(ir.R(1), tripOf(tid))
		th.SetReg(ir.R(2), int64(tid))
		th.SetReg(ir.R(3), int64(lockWords+uint64(8*(tid%distinct))))
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, prog
}

// fusionEdgeAB runs the shared fuzz/seed body: trace the parametric edge
// program and assert fused == per-block at the given width, with and without
// the uniform oracle, with and without lock emulation.
func fusionEdgeAB(t *testing.T, width uint8, tripBits uint64, distinct uint8) {
	t.Helper()
	w := int(width)
	if w < 1 {
		w = 1
	}
	if w > simt.MaxWarpSize {
		w = simt.MaxWarpSize
	}
	d := int(distinct)%4 + 1
	const nthreads = 16
	tripOf := func(tid int) int64 { return int64((tripBits>>(uint(tid%16)*3))&7) + 1 }
	tr, prog := traceFusionEdge(t, nthreads, tripOf, d)
	graphs, err := cfg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	pdoms := ipdom.ComputeAll(graphs)
	uniform := staticsimt.UniformBlocks(prog,
		staticsimt.Analyze(prog, staticsimt.Options{AssumeUniformEntry: true}))
	warps, err := warp.Form(tr, w, warp.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for _, locks := range []bool{false, true} {
		for _, oracle := range [][][]bool{nil, uniform} {
			assertFusionAB(t, tr, graphs, pdoms, warps, simt.Options{
				WarpSize:        w,
				EmulateLocks:    locks,
				UniformBranches: oracle,
			})
		}
	}
}

// fusionEdgeSeeds are the three hand-picked fusion edge cases from the
// fast path's fallback analysis; they run as deterministic tests and seed
// FuzzFusionReplay.
var fusionEdgeSeeds = []struct {
	name     string
	width    uint8
	tripBits uint64
	distinct uint8
}{
	// Every thread loops identically and contends on ONE lock: the uniform
	// run is broken mid-block by the acquire in cs.
	{"uniform-run-broken-by-lock", 8, 0x2492492492492492, 0},
	// Thread 0 gets trip count 8, the rest 1: after one iteration the loop
	// mask narrows to a single lane, the regime where fused accumulator
	// scaling must agree with lone-lane stepped execution.
	{"mask-narrows-to-one-lane", 8, 0x7, 3},
	// Odd/even parity split before the call: worker is entered with a
	// divergent context from two call sites, so fused windows start under a
	// partial mask inside a callee.
	{"divergent-context-function-entry", 4, 0x1249249249249249, 1},
}

func TestFusionEdgeCases(t *testing.T) {
	for _, s := range fusionEdgeSeeds {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			fusionEdgeAB(t, s.width, s.tripBits, s.distinct)
		})
	}
}

// FuzzFusionReplay fuzzes the fusion fast path's fallback boundaries: warp
// width, the per-thread loop trip counts, and lock sharing all come from the
// fuzzer, and any divergence between fused and per-block Results fails.
func FuzzFusionReplay(f *testing.F) {
	for _, s := range fusionEdgeSeeds {
		f.Add(s.width, s.tripBits, s.distinct)
	}
	f.Fuzz(func(t *testing.T, width uint8, tripBits uint64, distinct uint8) {
		fusionEdgeAB(t, width, tripBits, distinct)
	})
}
