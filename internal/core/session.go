package core

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
)

// Session memoizes the trace-derived analysis products — validation,
// cfg.Build, ipdom.ComputeAll, and warp formation — keyed by trace identity,
// so sweeps that analyze one trace under many configurations (warp widths,
// formations, lock policies: figure 1, the extension studies,
// examples/warpwidthstudy) pay for the preparation exactly once. A Session
// is safe for concurrent use: concurrent Analyze calls on the same trace
// share one preparation, with duplicate work suppressed by sync.Once.
//
// Cache entries are keyed by *trace.Trace pointer identity. Mutating a trace
// after analyzing it through a Session yields stale results; build a new
// trace (or a new Session) instead.
type Session struct {
	mu      sync.Mutex
	preps   map[*trace.Trace]*prepEntry
	warps   map[warpKey]*warpsEntry
	digests map[*trace.Trace]*digestEntry
	cache   *Cache
}

type prepEntry struct {
	once sync.Once
	p    *prep
	err  error
}

type digestEntry struct {
	once sync.Once
	sum  [sha256.Size]byte
	err  error
}

type warpKey struct {
	t         *trace.Trace
	width     int
	formation warp.Formation
}

type warpsEntry struct {
	once  sync.Once
	warps []warp.Warp
	err   error
}

// NewSession returns an empty Session.
func NewSession() *Session {
	return &Session{
		preps:   make(map[*trace.Trace]*prepEntry),
		warps:   make(map[warpKey]*warpsEntry),
		digests: make(map[*trace.Trace]*digestEntry),
	}
}

// SetCache attaches an on-disk report cache to the session. Subsequent
// Analyze calls consult it first; a hit skips preparation and replay
// entirely. Passing nil detaches the cache. The trace content digest the key
// needs is memoized per trace, so a sweep over many configurations hashes
// each trace once.
func (s *Session) SetCache(c *Cache) {
	s.mu.Lock()
	s.cache = c
	s.mu.Unlock()
}

// Analyze is equivalent to the package-level Analyze but reuses the
// session's cached DCFG/IPDOM products and warp formations for traces it
// has seen before, and consults the attached report cache (if any) first.
func (s *Session) Analyze(t *trace.Trace, opts Options) (*Report, error) {
	if opts.WarpSize == 0 {
		return nil, fmt.Errorf("core: WarpSize must be set (use core.Defaults)")
	}
	if opts.Context != nil && opts.Context.Err() != nil {
		return nil, fmt.Errorf("core: analysis canceled: %w", opts.Context.Err())
	}
	s.mu.Lock()
	c := s.cache
	s.mu.Unlock()
	key := ""
	if c != nil && opts.Listener == nil {
		if sum, err := s.digest(t); err == nil {
			key = cacheKeyFromDigest(sum, opts)
			if r, ok := c.get(key); ok {
				return r, nil
			}
		}
	}
	p, err := s.prep(t)
	if err != nil {
		return nil, err
	}
	warps, err := s.form(t, opts.WarpSize, opts.Formation)
	if err != nil {
		return nil, err
	}
	r, err := analyzeWith(t, p, warps, opts)
	if err == nil && key != "" {
		c.put(key, r)
	}
	return r, err
}

// Ingest decodes an indexed trace through the streaming pipeline
// (prepareStream: per-section decode, validation, and column building fused
// in the decode workers, DCFG construction chasing them in trace order) and
// seeds the session's preparation memo with the result. The returned trace
// is what subsequent Analyze calls should be handed: sweeps over warp
// widths, formations, and lock policies then start replaying immediately,
// having paid the ingest exactly once — and never serially.
func (s *Session) Ingest(r *trace.Reader, parallelism int) (*trace.Trace, error) {
	t, p, err := prepareStream(r, parallelism)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	e := s.preps[t]
	if e == nil {
		e = &prepEntry{}
		s.preps[t] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.p = p })
	return t, nil
}

// digest returns the trace's memoized content digest.
func (s *Session) digest(t *trace.Trace) ([sha256.Size]byte, error) {
	s.mu.Lock()
	e := s.digests[t]
	if e == nil {
		e = &digestEntry{}
		s.digests[t] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.sum, e.err = traceDigest(t) })
	return e.sum, e.err
}

// Prepared returns the trace's memoized DCFGs and post-dominator trees,
// validating the trace and building them on first use. Analysis passes that
// walk graph structure (divergence lint, static lock-leak paths) share the
// same preparation the replay consumes; both maps are read-only.
func (s *Session) Prepared(t *trace.Trace) (map[uint32]*cfg.DCFG, map[uint32]*ipdom.PostDom, error) {
	p, err := s.prep(t)
	if err != nil {
		return nil, nil, err
	}
	return p.graphs, p.pdoms, nil
}

// prep returns the trace's cached preparation, computing it on first use.
func (s *Session) prep(t *trace.Trace) (*prep, error) {
	s.mu.Lock()
	e := s.preps[t]
	if e == nil {
		e = &prepEntry{}
		s.preps[t] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.p, e.err = prepare(t) })
	return e.p, e.err
}

// form returns the trace's cached warp formation for one width and
// formation algorithm. Formed warps are read-only during replay, so sharing
// them between configurations is safe.
func (s *Session) form(t *trace.Trace, width int, f warp.Formation) ([]warp.Warp, error) {
	key := warpKey{t: t, width: width, formation: f}
	s.mu.Lock()
	e := s.warps[key]
	if e == nil {
		e = &warpsEntry{}
		s.warps[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.warps, e.err = warp.Form(t, width, f)
		if e.err != nil {
			e.err = fmt.Errorf("core: forming warps: %w", e.err)
		}
	})
	return e.warps, e.err
}
