// Package staticlock is ThreadFuser's static concurrency oracle: an
// interprocedural forward dataflow over the IR that predicts, before any
// trace exists, the concurrency facts the dynamic passes measure — must-hold
// locksets at every memory access, a static lock-order graph with cycle
// candidates (the static twin of the deadlock pass), an escape/sharedness
// classification feeding static race candidates (the static twin of the
// Eraser lockset pass), and the cross-product finding only the combination
// with the SIMT oracle can make: lock acquires reachable under divergent
// control flow, which an SIMT execution serializes (and, for self-looping
// critical sections, can livelock).
//
// The contract mirrors staticsimt's: the static view over-approximates the
// dynamic one. Every dynamic lockset race maps into a static race-candidate
// class, and every dynamic lock-order cycle maps into a static cycle
// candidate (internal/analysis' "staticlock" pass and internal/check's
// "staticlockset" invariant enforce this); static-only candidates are the
// precision gap. Two assumptions scope the soundness claim and are checked
// dynamically rather than assumed silently: shared-world (entry arguments
// are identical across threads) and allocation-distinctness (addresses built
// from distinct argument roots do not alias). See DESIGN.md §13.
package staticlock

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"threadfuser/internal/graph"
	"threadfuser/internal/ir"
	"threadfuser/internal/staticsimt"
)

// Site is one static lock-op instruction with its converged symbolic lock
// address. Sites appear in program order; their index is the witness id used
// by Edges.
type Site struct {
	Func     uint32 `json:"func"`
	FuncName string `json:"func_name"`
	Block    uint32 `json:"block"`
	Instr    uint16 `json:"instr"`
	Release  bool   `json:"release,omitempty"`
	// Shape is the canonical symbolic address ("arg0+8*tid+16", "0x7f10",
	// or "?" for unknown).
	Shape string `json:"shape"`
	// Class indexes Result.LockClasses; -1 for sites in unreached blocks.
	Class int `json:"class"`
	// Divergent marks acquires reachable under divergent control: inside a
	// divergent branch's influence region, or anywhere in a function callable
	// with an already-split warp. SIMT execution serializes them; a
	// self-looping critical section under divergence is the PR 2 livelock
	// shape.
	Divergent bool `json:"divergent,omitempty"`
	// Unreachable marks sites in phantom functions or unreached blocks.
	Unreachable bool `json:"unreachable,omitempty"`
}

// Class is one alias class of symbolic lock addresses: shapes that may
// denote the same concrete lock word in some run.
type Class struct {
	Shapes []string `json:"shapes"`
	// Kind is "named" (one concrete address shared by all threads),
	// "tid-indexed" (a per-thread family that can still collide across
	// threads), "stack" (sp-rooted), or "unknown" (contains "?").
	Kind string `json:"kind"`
}

// Edge is one static lock-order edge: some path acquires To while From may
// be held. FromSite/ToSite index Result.Sites (the witness acquires).
type Edge struct {
	From     string `json:"from"`
	To       string `json:"to"`
	FromSite int    `json:"from_site"`
	ToSite   int    `json:"to_site"`
}

// Cycle is one static deadlock candidate: a strongly connected set of lock
// classes in the static lock-order graph.
type Cycle struct {
	Classes []int    `json:"classes"` // sorted LockClasses indices
	Shapes  []string `json:"shapes"`  // member shapes, for display
}

// Access is one static memory operand with its symbolic address and the
// must-hold lockset at that point.
type Access struct {
	Func     uint32 `json:"func"`
	FuncName string `json:"func_name"`
	Block    uint32 `json:"block"`
	Instr    uint16 `json:"instr"`
	Store    bool   `json:"store,omitempty"`
	Size     uint8  `json:"size"`
	Shape    string `json:"shape"`
	// Kind is "stack" (sp-rooted: thread-private), "lock-word" (the address
	// of a lock, excluded like the dynamic pass excludes lock words),
	// "thread-private" (tid-strided with stride >= access size), or
	// "shared".
	Kind string `json:"kind"`
	// Class indexes Result.AccessClasses; -1 for stack/lock-word accesses.
	Class int `json:"class"`
	// MustLocks is the sorted set of lock shapes certainly held here.
	MustLocks []string `json:"must_locks,omitempty"`
	// Candidate marks members of a race-candidate class: shareable,
	// written somewhere, and with no named lock held in common.
	Candidate   bool `json:"candidate,omitempty"`
	Divergent   bool `json:"divergent,omitempty"`
	Unreachable bool `json:"unreachable,omitempty"`
}

// AccessClass is one alias class of data addresses with its race verdict.
type AccessClass struct {
	Shapes []string `json:"shapes"`
	Kind   string   `json:"kind"` // as Class.Kind, plus "private" for non-colliding singletons
	// Candidate: some member is written and no named lock protects every
	// member — the static race candidate the dynamic Eraser pass refines.
	Candidate bool `json:"candidate,omitempty"`
	// CommonLocks is the named must-lockset shared by every member access
	// (empty for candidates).
	CommonLocks []string `json:"common_locks,omitempty"`
}

// Result is the static concurrency oracle's projection for one program.
type Result struct {
	Program       string        `json:"program"`
	Sites         []Site        `json:"sites,omitempty"`
	LockClasses   []Class       `json:"lock_classes,omitempty"`
	Edges         []Edge        `json:"edges,omitempty"`
	Cycles        []Cycle       `json:"cycles,omitempty"`
	Recursions    []int         `json:"recursions,omitempty"`    // acquire sites already possibly held
	BareReleases  []int         `json:"bare_releases,omitempty"` // releases of shapes not possibly held
	Accesses      []Access      `json:"accesses,omitempty"`
	AccessClasses []AccessClass `json:"access_classes,omitempty"`

	// Summary totals.
	Acquires          int `json:"acquires"`
	DivergentAcquires int `json:"divergent_acquires"`
	RaceCandidates    int `json:"race_candidates"`  // candidate access classes
	CycleCandidates   int `json:"cycle_candidates"` // == len(Cycles)

	siteIdx map[siteKey]int
	accIdx  map[siteKey]int
	lockCls map[string]int
	edgeSet map[[2]string]bool
}

// Analyze runs the static concurrency oracle over a program: the symbolic
// address fixpoint, the lockset fixpoint over the discovered shapes, the
// SIMT uniformity oracle for divergence context, then one profiling replay
// per reached block to assemble the report. The program must be valid
// (ir.Validate); workloads only produce valid programs.
func Analyze(p *ir.Program) *Result {
	sym := newAnalysis(p)
	sym.run()
	la := newLockAnalysis(sym)
	la.run()
	ssr := staticsimt.Analyze(p, staticsimt.Options{})

	// Divergence context per function/block from the SIMT oracle.
	divCtx := make([]bool, len(p.Funcs))
	influenced := make([]map[uint32]bool, len(p.Funcs))
	for fi := range ssr.Funcs {
		fr := &ssr.Funcs[fi]
		if int(fr.ID) >= len(p.Funcs) {
			continue
		}
		divCtx[fr.ID] = fr.DivergentContext
		m := make(map[uint32]bool, len(fr.Influenced))
		for _, b := range fr.Influenced {
			m[b] = true
		}
		influenced[fr.ID] = m
	}

	r := &Result{
		Program: p.Name,
		siteIdx: map[siteKey]int{},
		accIdx:  map[siteKey]int{},
		lockCls: map[string]int{},
		edgeSet: map[[2]string]bool{},
	}

	edgeWit := map[[2]string]edgeWitness{}
	lockShapes := map[string]symval{} // reached lock-site shapes
	accShapes := map[string]symval{}

	for fi, sfs := range sym.fns {
		lfs := la.fns[fi]
		fid := uint32(sfs.f.ID)
		fname := sfs.f.Name
		for bi, b := range sfs.f.Blocks {
			reached := sfs.inSeen[bi] && lfs.inSeen[bi]
			divB := divCtx[fi] || (influenced[fi] != nil && influenced[fi][uint32(b.ID)])
			if !reached {
				// Keep the Sites table aligned with the witness numbering:
				// every lock op gets an entry, unreached ones with "?".
				for ii := range b.Instrs {
					in := &b.Instrs[ii]
					if _, rel, ok := in.LockOperand(); ok {
						r.siteIdx[siteKey{fid, uint32(b.ID), uint16(ii)}] = len(r.Sites)
						r.Sites = append(r.Sites, Site{
							Func: fid, FuncName: fname, Block: uint32(b.ID), Instr: uint16(ii),
							Release: rel, Shape: TopShape, Class: -1, Unreachable: true,
						})
					}
				}
				continue
			}
			symst := sfs.in[bi]
			lst := lfs.in[bi].clone()
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if o, rel, ok := in.LockOperand(); ok {
					v := lockShape(&symst, o)
					shape := v.shape()
					key := siteKey{fid, uint32(b.ID), uint16(ii)}
					siteI := len(r.Sites)
					r.siteIdx[key] = siteI
					r.Sites = append(r.Sites, Site{
						Func: fid, FuncName: fname, Block: uint32(b.ID), Instr: uint16(ii),
						Release: rel, Shape: shape, Divergent: divB, Unreachable: sfs.phantom,
					})
					lockShapes[shape] = v
					if !rel {
						r.Acquires++
						if divB {
							r.DivergentAcquires++
						}
						for fromShape, e := range lst.may {
							if fromShape == shape && v.precise() {
								continue // same precise shape = recursion, not an order edge
							}
							ek := [2]string{fromShape, shape}
							w := edgeWitness{fromSite: e.witness, toSite: la.siteIdx[key]}
							if old, ok := edgeWit[ek]; !ok || w.fromSite < old.fromSite ||
								(w.fromSite == old.fromSite && w.toSite < old.toSite) {
								edgeWit[ek] = w
							}
						}
						if _, held := lst.may[shape]; held {
							r.Recursions = append(r.Recursions, siteI)
						}
						lst.acquire(shape, la.siteIdx[key])
					} else {
						if _, held := lst.may[shape]; v.precise() && !held {
							r.BareReleases = append(r.BareReleases, siteI)
						}
						lst.release(v, shape)
					}
				}
				if m, load, store := in.MemOperand(); load || store {
					av := addrOf(&symst, m)
					shape := av.shape()
					acc := Access{
						Func: fid, FuncName: fname, Block: uint32(b.ID), Instr: uint16(ii),
						Store: store, Size: m.Size, Shape: shape, Class: -1,
						MustLocks: sortedShapeKeys(lst.must),
						Divergent: divB, Unreachable: sfs.phantom,
					}
					r.accIdx[siteKey{fid, uint32(b.ID), uint16(ii)}] = len(r.Accesses)
					r.Accesses = append(r.Accesses, acc)
					accShapes[shape] = av
				}
				if !in.Op.IsTerminator() {
					transferInstr(&symst, in)
				}
			}
		}
	}

	r.buildLockClasses(lockShapes)
	r.buildEdges(edgeWit)
	r.buildCycles()
	r.buildAccessClasses(lockShapes, accShapes)
	return r
}

func sortedShapeKeys(m map[string]int8) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// aliasable is the class-merge rule: two symbolic addresses may denote the
// same concrete word in some run. Unknown merges with everything. Two
// precise shapes alias only when their difference is a pure tid expression:
// a tid term (thread t's address equals thread t”s base), or a constant
// offset over a common nonzero tid stride (thread t's element equals thread
// t”s neighbor). Differences involving argument or sp roots are assumed
// distinct allocations (allocation-distinctness), and named shapes with
// distinct constants are distinct words (shared-world).
func aliasable(a, b symval) bool {
	if !a.precise() || !b.precise() {
		return true
	}
	d := symSub(a, b)
	for _, t := range d.terms {
		if t.root.kind != rootTID {
			return false
		}
	}
	if d.coeffOf(rootTID) != 0 {
		return true
	}
	if d.c == 0 {
		return true
	}
	return a.tidCoeff() != 0
}

// unionFind groups a sorted shape universe into alias classes. It returns
// the classes (each a sorted shape list, ordered by first member) and the
// shape→class index map.
func unionFind(shapes []string, vals map[string]symval) ([][]string, map[string]int) {
	parent := make([]int, len(shapes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			if ry < rx {
				rx, ry = ry, rx
			}
			parent[ry] = rx
		}
	}
	for i := 0; i < len(shapes); i++ {
		for j := i + 1; j < len(shapes); j++ {
			if aliasable(vals[shapes[i]], vals[shapes[j]]) {
				union(i, j)
			}
		}
	}
	groups := map[int][]string{}
	for i, s := range shapes {
		root := find(i)
		groups[root] = append(groups[root], s)
	}
	roots := make([]int, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	classes := make([][]string, 0, len(roots))
	idx := map[string]int{}
	for ci, root := range roots {
		members := groups[root]
		sort.Strings(members)
		classes = append(classes, members)
		for _, s := range members {
			idx[s] = ci
		}
	}
	return classes, idx
}

func classKind(members []string, vals map[string]symval) string {
	named := true
	tid := false
	stack := false
	for _, s := range members {
		v := vals[s]
		if !v.precise() {
			return "unknown"
		}
		if !v.named() {
			named = false
		}
		if v.tidCoeff() != 0 {
			tid = true
		}
		if v.spRooted() {
			stack = true
		}
	}
	switch {
	case named:
		return "named"
	case tid:
		return "tid-indexed"
	case stack:
		return "stack"
	default:
		return "tid-indexed"
	}
}

func (r *Result) buildLockClasses(vals map[string]symval) {
	shapes := make([]string, 0, len(vals))
	for s := range vals {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	classes, idx := unionFind(shapes, vals)
	r.lockCls = idx
	for _, members := range classes {
		r.LockClasses = append(r.LockClasses, Class{Shapes: members, Kind: classKind(members, vals)})
	}
	for i := range r.Sites {
		s := &r.Sites[i]
		if ci, ok := idx[s.Shape]; ok {
			s.Class = ci
		} else {
			s.Class = -1 // unreached blocks: shape never entered the universe
		}
	}
}

// edgeWitness is the lexicographically-smallest (acquire-site, acquire-site)
// pair witnessing one shape edge.
type edgeWitness struct{ fromSite, toSite int32 }

func (r *Result) buildEdges(wit map[[2]string]edgeWitness) {
	keys := make([][2]string, 0, len(wit))
	for k := range wit {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		w := wit[k]
		r.edgeSet[k] = true
		r.Edges = append(r.Edges, Edge{From: k[0], To: k[1], FromSite: int(w.fromSite), ToSite: int(w.toSite)})
	}
}

func (r *Result) buildCycles() {
	n := len(r.LockClasses)
	if n == 0 || len(r.Edges) == 0 {
		return
	}
	succSet := make([]map[int]bool, n)
	selfEdge := make([]bool, n)
	for _, e := range r.Edges {
		cf, okF := r.lockCls[e.From]
		ct, okT := r.lockCls[e.To]
		if !okF || !okT {
			continue
		}
		if cf == ct {
			selfEdge[cf] = true
		}
		if succSet[cf] == nil {
			succSet[cf] = map[int]bool{}
		}
		succSet[cf][ct] = true
	}
	succs := make([][]int, n)
	for i, set := range succSet {
		for t := range set {
			succs[i] = append(succs[i], t)
		}
		sort.Ints(succs[i])
	}
	for _, scc := range graph.SCCs(succs) {
		sort.Ints(scc)
		if len(scc) < 2 {
			ci := scc[0]
			// A self-edge on a named class is recursion on one concrete
			// lock, not an order cycle; on any other class the members can
			// be distinct words acquired in opposite orders across threads.
			if !selfEdge[ci] || r.LockClasses[ci].Kind == "named" {
				continue
			}
		}
		c := Cycle{Classes: scc}
		for _, ci := range scc {
			c.Shapes = append(c.Shapes, r.LockClasses[ci].Shapes...)
		}
		sort.Strings(c.Shapes)
		r.Cycles = append(r.Cycles, c)
	}
	sort.Slice(r.Cycles, func(i, j int) bool {
		a, b := r.Cycles[i].Classes, r.Cycles[j].Classes
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	r.CycleCandidates = len(r.Cycles)
}

func (r *Result) buildAccessClasses(lockVals, accVals map[string]symval) {
	// Precise lock shapes, for the lock-word exclusion.
	preciseLock := map[string]bool{}
	for s, v := range lockVals {
		if v.precise() {
			preciseLock[s] = true
		}
	}

	// Classify each access; only "shared"-eligible shapes enter the class
	// universe (stack and lock-word accesses are excluded exactly like the
	// dynamic pass excludes SegStack and lock words).
	inUniverse := map[string]bool{}
	for i := range r.Accesses {
		a := &r.Accesses[i]
		v := accVals[a.Shape]
		switch {
		case v.precise() && v.spRooted():
			a.Kind = "stack"
		case v.precise() && preciseLock[a.Shape]:
			a.Kind = "lock-word"
		default:
			a.Kind = "shared"
			inUniverse[a.Shape] = true
		}
	}
	shapes := make([]string, 0, len(inUniverse))
	for s := range inUniverse {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	classes, idx := unionFind(shapes, accVals)

	// Per-class facts: max access size, any store, named must-lock
	// intersection over every member access.
	type classFacts struct {
		maxSize  uint8
		anyStore bool
		common   map[string]bool
		seen     bool
	}
	facts := make([]classFacts, len(classes))
	for i := range r.Accesses {
		a := &r.Accesses[i]
		ci, ok := idx[a.Shape]
		if !ok {
			continue
		}
		a.Class = ci
		f := &facts[ci]
		if a.Size > f.maxSize {
			f.maxSize = a.Size
		}
		if a.Store {
			f.anyStore = true
		}
		named := map[string]bool{}
		for _, ls := range a.MustLocks {
			if lv, ok := lockVals[ls]; ok && lv.named() {
				named[ls] = true
			}
		}
		if !f.seen {
			f.common = named
			f.seen = true
		} else {
			for ls := range f.common {
				if !named[ls] {
					delete(f.common, ls)
				}
			}
		}
	}

	for ci, members := range classes {
		f := &facts[ci]
		kind := classKind(members, accVals)
		// Shareable: two threads can reach the same word through this
		// class. A singleton precise shape with a tid stride covering its
		// widest access partitions the address space per thread.
		private := false
		if len(members) == 1 {
			v := accVals[members[0]]
			if v.precise() {
				if k := v.tidCoeff(); k != 0 && abs64(k) >= int64(f.maxSize) {
					private = true
				}
			}
		}
		ac := AccessClass{Shapes: members, Kind: kind}
		if private {
			ac.Kind = "private"
		} else {
			ac.CommonLocks = sortedSet(f.common)
			ac.Candidate = f.anyStore && len(ac.CommonLocks) == 0
		}
		if ac.Candidate {
			r.RaceCandidates++
		}
		r.AccessClasses = append(r.AccessClasses, ac)
	}
	for i := range r.Accesses {
		a := &r.Accesses[i]
		if a.Class >= 0 {
			ac := &r.AccessClasses[a.Class]
			a.Candidate = ac.Candidate
			if ac.Kind == "private" {
				a.Kind = "thread-private"
			}
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SiteAt returns the index of the lock site at (fn, block, instr) and
// whether one exists.
func (r *Result) SiteAt(fn, block uint32, instr uint16) (int, bool) {
	i, ok := r.siteIdx[siteKey{fn, block, instr}]
	return i, ok
}

// AccessAt returns the index of the memory access at (fn, block, instr) and
// whether one exists.
func (r *Result) AccessAt(fn, block uint32, instr uint16) (int, bool) {
	i, ok := r.accIdx[siteKey{fn, block, instr}]
	return i, ok
}

// HasEdge reports whether the static lock-order graph contains the shape
// edge from→to.
func (r *Result) HasEdge(from, to string) bool { return r.edgeSet[[2]string{from, to}] }

// LockClassOf returns the lock alias class of a shape.
func (r *Result) LockClassOf(shape string) (int, bool) {
	ci, ok := r.lockCls[shape]
	return ci, ok
}

// CycleCovering reports whether some static cycle candidate's class set
// contains every given class.
func (r *Result) CycleCovering(classes []int) bool {
	for _, c := range r.Cycles {
		set := make(map[int]bool, len(c.Classes))
		for _, ci := range c.Classes {
			set[ci] = true
		}
		all := true
		for _, ci := range classes {
			if !set[ci] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// Render writes the human-readable report. Verbose additionally lists every
// site and access class.
func (r *Result) Render(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "%s: %d acquire(s) (%d divergent), %d lock class(es), %d order edge(s), %d cycle candidate(s), %d race-candidate class(es)\n",
		r.Program, r.Acquires, r.DivergentAcquires, len(r.LockClasses), len(r.Edges), len(r.Cycles), r.RaceCandidates)
	for i := range r.Sites {
		s := &r.Sites[i]
		if s.Release || s.Unreachable {
			continue
		}
		if s.Divergent {
			fmt.Fprintf(w, "  divergent acquire: %s b%d i%d lock %s — serialized under SIMT; livelock hazard if the critical section spins\n",
				s.FuncName, s.Block, s.Instr, s.Shape)
		} else if verbose {
			fmt.Fprintf(w, "  acquire: %s b%d i%d lock %s\n", s.FuncName, s.Block, s.Instr, s.Shape)
		}
	}
	for _, idx := range r.Recursions {
		s := &r.Sites[idx]
		fmt.Fprintf(w, "  recursive acquire: %s b%d i%d lock %s may already be held\n", s.FuncName, s.Block, s.Instr, s.Shape)
	}
	for _, idx := range r.BareReleases {
		s := &r.Sites[idx]
		fmt.Fprintf(w, "  release without acquire: %s b%d i%d lock %s\n", s.FuncName, s.Block, s.Instr, s.Shape)
	}
	for ci := range r.Cycles {
		c := &r.Cycles[ci]
		fmt.Fprintf(w, "  cycle candidate: classes %v over {%s}\n", c.Classes, strings.Join(c.Shapes, ", "))
	}
	for ci := range r.AccessClasses {
		ac := &r.AccessClasses[ci]
		if ac.Candidate {
			fmt.Fprintf(w, "  race candidate: class %d {%s} written with no common named lock\n", ci, strings.Join(ac.Shapes, ", "))
		} else if verbose {
			note := ac.Kind
			if len(ac.CommonLocks) > 0 {
				note = "protected by " + strings.Join(ac.CommonLocks, ", ")
			}
			fmt.Fprintf(w, "  class %d {%s}: %s\n", ci, strings.Join(ac.Shapes, ", "), note)
		}
	}
	if verbose {
		for i := range r.Edges {
			e := &r.Edges[i]
			fmt.Fprintf(w, "  order edge: %s -> %s\n", e.From, e.To)
		}
	}
}
