package opt

import (
	"sort"

	"threadfuser/internal/ir"
)

// IfConvert flattens branch diamonds into straight-line cmov code, the
// divergence-removing transform the paper blames for the analyzer's O3
// optimism. A diamond
//
//	A: ... ; jcc c, T, F
//	T: t1..tn ; jmp J
//	F: f1..fm ; jmp J
//
// becomes
//
//	A: ... ; t1'..tn' ; f1'..fm' ; cmov(c) selects ; jmp J
//
// where both sides' instructions are renamed to write scratch registers and
// cmovs merge the results by the branch condition. Conversion requires both
// sides to be speculation-safe: register/load-only (no stores, calls, locks,
// I/O), no flag writers (the selects need A's flags), and within the size
// budget. Loads are speculated, as compilers do — the converted code issues
// both sides' loads, which is visible in the memory metrics.
//
// It returns the number of diamonds converted.
func IfConvert(p *ir.Program, budget int) int {
	return ifConvert(p, budget, false)
}

// IfConvertStores is the -O3 aggressive variant: branch sides may contain
// plain stores, which become conditional (cmov-to-memory) stores. The
// untaken path still touches the address (reading and rewriting the old
// value), the observable cost of select/masked-store if-conversion — extra
// memory traffic on the CPU binary that the GPU build does not have, one of
// the reasons the paper's O3 memory estimates drift.
func IfConvertStores(p *ir.Program, budget int) int {
	return ifConvert(p, budget, true)
}

// IfConvertReport runs the same sweep as IfConvert/IfConvertStores but also
// returns a DiamondReport for every candidate diamond it examined — converted
// or skipped, with the reasons for each skip — so downstream consumers (the
// static melding matcher in internal/staticsimt, examples/portingadvisor)
// can explain *why* a divergent diamond survives the optimizer. Reports are
// in program order (function id, then block id). Like IfConvert, it mutates
// the program; use Examine for a read-only view of a single diamond.
func IfConvertReport(p *ir.Program, budget int, stores bool) (int, []DiamondReport) {
	converted := 0
	var reps []DiamondReport
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			rep, ok := examineDiamond(f, b, budget, stores)
			if !ok {
				continue
			}
			if rep.Convertible && convertDiamond(f, b, budget, stores) {
				rep.Converted = true
				converted++
			}
			reps = append(reps, rep)
		}
	}
	return converted, reps
}

func ifConvert(p *ir.Program, budget int, stores bool) int {
	converted := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if convertDiamond(f, b, budget, stores) {
				converted++
			}
		}
	}
	return converted
}

// Reason explains why if-conversion skipped a candidate diamond.
type Reason string

// Skip reasons, in the vocabulary portingadvisor and the static melding
// matcher present to users.
const (
	// ReasonShape: a branch side has internal control flow — it does not end
	// in an unconditional jump to a join block.
	ReasonShape Reason = "shape"
	// ReasonCalls: a branch side ends in a call; speculating calls is unsafe.
	ReasonCalls Reason = "calls"
	// ReasonBudget: a side exceeds the per-side instruction budget.
	ReasonBudget Reason = "budget"
	// ReasonFlags: a side reads or writes the flags (cmp/test/fcmp/cmov);
	// the selects need the branch condition's flags intact.
	ReasonFlags Reason = "flags"
	// ReasonSideEffects: a side contains lock/unlock/io/spin.
	ReasonSideEffects Reason = "side-effects"
	// ReasonStores: a side contains a plain store and the sweep is not in
	// aggressive (-O3) conditional-store mode.
	ReasonStores Reason = "stores"
	// ReasonRMWStore: a side read-modify-writes memory, which even the
	// aggressive mode cannot predicate.
	ReasonRMWStore Reason = "rmw-store"
	// ReasonReserved: a side writes SP or TID.
	ReasonReserved Reason = "reserved-regs"
	// ReasonJoin: the two sides do not rejoin at a common block.
	ReasonJoin Reason = "join-mismatch"
	// ReasonScratch: the renamed temporaries would exhaust the scratch
	// register file.
	ReasonScratch Reason = "scratch"
	// ReasonMemCoalesce: a memory oracle (ExamineMeld's MeldMemCheck) judged
	// that flattening would break a coalesced access pattern — the melded
	// straight-line code would issue both arms' memory traffic on every lane.
	ReasonMemCoalesce Reason = "mem-coalesce"
)

// DiamondReport describes one examined if-conversion candidate: a block
// ending in a two-way conditional branch with distinct, non-self targets.
type DiamondReport struct {
	Func     ir.FuncID  `json:"func"`
	FuncName string     `json:"func_name"`
	Block    ir.BlockID `json:"block"`
	// Kind is "diamond", "hammock" (taken side rejoins at the fall-through)
	// or "inverted-hammock" (fall-through side rejoins at the taken target).
	Kind string `json:"kind"`
	// Convertible reports whether the sweep would flatten this candidate;
	// Converted whether a mutating sweep actually did.
	Convertible bool `json:"convertible"`
	Converted   bool `json:"converted,omitempty"`
	// Reasons lists why the candidate was skipped (empty iff Convertible),
	// deduplicated and sorted.
	Reasons []Reason `json:"reasons,omitempty"`
	// ThenInstrs/ElseInstrs are the side body sizes excluding terminators
	// (a hammock has one side in the branch and zero in the fall-through).
	ThenInstrs int `json:"then_instrs"`
	ElseInstrs int `json:"else_instrs"`
}

// Examine is the read-only view of one candidate: it reports whether block b
// of f is an if-conversion candidate (a two-way Jcc diamond or hammock) and,
// if so, whether the given budget and store mode would convert it and why
// not otherwise. It never mutates the program.
func Examine(f *ir.Function, b *ir.Block, budget int, stores bool) (DiamondReport, bool) {
	return examineDiamond(f, b, budget, stores)
}

// MeldMemCheck judges whether flattening a candidate is legal from a memory
// oracle's point of view. It receives the real arm blocks of the candidate —
// for a hammock only thenSide is set, for an inverted hammock only elseSide,
// for a full diamond both — never the join block. Returning false vetoes the
// meld (ReasonMemCoalesce).
type MeldMemCheck func(thenSide, elseSide *ir.Block) bool

// ExamineMeld is Examine with an additional memory-legality input: after the
// structural checks, mem (if non-nil) is consulted with the candidate's arm
// blocks, and a veto appends ReasonMemCoalesce and clears Convertible. Which
// blocks are arms depends on the candidate's kind, so the dispatch lives here
// rather than in callers: passing Target/Fall blindly would hand a hammock's
// join block to the oracle as if it were an arm.
func ExamineMeld(f *ir.Function, b *ir.Block, budget int, stores bool, mem MeldMemCheck) (DiamondReport, bool) {
	rep, ok := examineDiamond(f, b, budget, stores)
	if !ok || mem == nil {
		return rep, ok
	}
	term := b.Terminator()
	var thenSide, elseSide *ir.Block
	switch rep.Kind {
	case "hammock":
		thenSide = f.Blocks[term.Target]
	case "inverted-hammock":
		elseSide = f.Blocks[term.Fall]
	default:
		thenSide, elseSide = f.Blocks[term.Target], f.Blocks[term.Fall]
	}
	if !mem(thenSide, elseSide) {
		rep.Reasons = dedupeReasons(append(rep.Reasons, ReasonMemCoalesce))
		rep.Convertible = false
	}
	return rep, true
}

// maxScratch is how many distinct renamed destinations the scratch file
// r16..r29 can hold.
const maxScratch = int(ir.TID - scratchBase)

func examineDiamond(f *ir.Function, b *ir.Block, budget int, stores bool) (DiamondReport, bool) {
	term := b.Terminator()
	if term.Op != ir.OpJcc || term.Target == term.Fall ||
		term.Target == b.ID || term.Fall == b.ID {
		return DiamondReport{}, false
	}
	t := f.Blocks[term.Target]
	fb := f.Blocks[term.Fall]
	tJoin, tJoinOK, tReasons := examineSide(t, budget, stores)
	fJoin, fJoinOK, fReasons := examineSide(fb, budget, stores)
	tOK, fOK := len(tReasons) == 0, len(fReasons) == 0

	rep := DiamondReport{
		Func: f.ID, FuncName: f.Name, Block: b.ID,
		ThenInstrs: len(t.Instrs) - 1, ElseInstrs: len(fb.Instrs) - 1,
	}
	finish := func(reasons ...Reason) (DiamondReport, bool) {
		rep.Reasons = dedupeReasons(reasons)
		rep.Convertible = len(rep.Reasons) == 0
		return rep, true
	}

	// One-sided hammock "if (c) { T }": the taken side rejoins at the
	// fall-through block. Mirrors convertDiamond's dispatch order exactly.
	if tOK && tJoin == term.Fall {
		rep.Kind = "hammock"
		rep.ElseInstrs = 0
		if distinctDefs(t) > maxScratch {
			return finish(ReasonScratch)
		}
		return finish()
	}
	// Inverted hammock "if (!c) { F }".
	if fOK && fJoin == term.Target {
		rep.Kind = "inverted-hammock"
		rep.ThenInstrs = 0
		rep.ElseInstrs = len(fb.Instrs) - 1
		if distinctDefs(fb) > maxScratch {
			return finish(ReasonScratch)
		}
		return finish()
	}

	rep.Kind = "diamond"
	reasons := append(append([]Reason(nil), tReasons...), fReasons...)
	if tJoinOK && fJoinOK && tJoin != fJoin {
		reasons = append(reasons, ReasonJoin)
	}
	if len(reasons) == 0 && distinctDefs(t)+distinctDefs(fb) > maxScratch {
		reasons = append(reasons, ReasonScratch)
	}
	return finish(reasons...)
}

// examineSide is diamondSide with full reason accounting: it checks every
// instruction instead of stopping at the first violation, and reports the
// join target whenever the side at least ends in an unconditional jump
// (joinOK), even if its body disqualifies it.
func examineSide(b *ir.Block, budget int, stores bool) (join ir.BlockID, joinOK bool, reasons []Reason) {
	switch b.Terminator().Op {
	case ir.OpJmp:
		join, joinOK = b.Terminator().Target, true
	case ir.OpCall, ir.OpCallR:
		return 0, false, []Reason{ReasonCalls}
	default:
		return 0, false, []Reason{ReasonShape}
	}
	body := b.Instrs[: len(b.Instrs)-1 : len(b.Instrs)-1]
	if len(body) > budget {
		reasons = append(reasons, ReasonBudget)
	}
	for i := range body {
		in := &body[i]
		switch in.Op {
		case ir.OpCmp, ir.OpTest, ir.OpFCmp, ir.OpCmov:
			reasons = append(reasons, ReasonFlags)
			continue
		case ir.OpLock, ir.OpUnlock, ir.OpIO, ir.OpSpin:
			reasons = append(reasons, ReasonSideEffects)
			continue
		}
		if in.Dst.IsMem() {
			switch {
			case in.Op != ir.OpMov:
				reasons = append(reasons, ReasonRMWStore)
			case !stores:
				reasons = append(reasons, ReasonStores)
			}
			continue
		}
		if in.Dst.Kind == ir.OpndReg && (in.Dst.Reg == ir.SP || in.Dst.Reg == ir.TID) {
			reasons = append(reasons, ReasonReserved)
		}
		if in.Dst.Kind == ir.OpndImm {
			reasons = append(reasons, ReasonShape) // malformed destination
		}
	}
	return join, joinOK, reasons
}

// distinctDefs counts the distinct register destinations a side body writes —
// each costs one scratch temporary in renameSide.
func distinctDefs(b *ir.Block) int {
	var seen [ir.NumRegs]bool
	n := 0
	for i := range b.Instrs[:len(b.Instrs)-1] {
		in := &b.Instrs[i]
		if in.Dst.Kind == ir.OpndReg && !seen[in.Dst.Reg] {
			seen[in.Dst.Reg] = true
			n++
		}
	}
	return n
}

func dedupeReasons(rs []Reason) []Reason {
	if len(rs) == 0 {
		return nil
	}
	seen := map[Reason]bool{}
	out := rs[:0]
	for _, r := range rs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scratchBase..NumRegs-3 are the temporaries the renamer may allocate; the
// workload register conventions leave r16..r29 unused.
const scratchBase = ir.Reg(16)

func convertDiamond(f *ir.Function, b *ir.Block, budget int, stores bool) bool {
	rep, ok := examineDiamond(f, b, budget, stores)
	if !ok || !rep.Convertible {
		return false
	}
	term := b.Terminator()
	switch rep.Kind {
	case "hammock":
		return convertHammock(b, f.Blocks[term.Target], term.Cond, term.Fall, stores)
	case "inverted-hammock":
		return convertHammock(b, f.Blocks[term.Fall], negate(term.Cond), term.Target, stores)
	}
	t := f.Blocks[term.Target]
	fb := f.Blocks[term.Fall]
	join := t.Terminator().Target

	nextScratch := scratchBase
	alloc := func() (ir.Reg, bool) {
		if nextScratch >= ir.TID {
			return 0, false
		}
		r := nextScratch
		nextScratch++
		return r, true
	}

	// Rename both sides; collect (original, temp) pairs for the selects.
	tInstrs, tSel, ok := renameSide(t, alloc, term.Cond, stores)
	if !ok {
		return false
	}
	fInstrs, fSel, ok := renameSide(fb, alloc, negate(term.Cond), stores)
	if !ok {
		return false
	}

	out := append([]ir.Instr{}, b.Instrs[:len(b.Instrs)-1]...)
	out = append(out, tInstrs...)
	out = append(out, fInstrs...)
	for _, s := range tSel {
		out = append(out, ir.Instr{Op: ir.OpCmov, Cond: term.Cond, Dst: ir.Rg(s.orig), Src: ir.Rg(s.temp)})
	}
	notC := negate(term.Cond)
	for _, s := range fSel {
		out = append(out, ir.Instr{Op: ir.OpCmov, Cond: notC, Dst: ir.Rg(s.orig), Src: ir.Rg(s.temp)})
	}
	out = append(out, ir.Instr{Op: ir.OpJmp, Target: join})
	b.Instrs = out
	return true
}

// convertHammock flattens a one-sided diamond: side executes speculatively
// into temps and cmov(cond) commits it; control falls through to join.
func convertHammock(b, side *ir.Block, cond ir.Cond, join ir.BlockID, stores bool) bool {
	nextScratch := scratchBase
	alloc := func() (ir.Reg, bool) {
		if nextScratch >= ir.TID {
			return 0, false
		}
		r := nextScratch
		nextScratch++
		return r, true
	}
	instrs, sels, ok := renameSide(side, alloc, cond, stores)
	if !ok {
		return false
	}
	out := append([]ir.Instr{}, b.Instrs[:len(b.Instrs)-1]...)
	out = append(out, instrs...)
	for _, s := range sels {
		out = append(out, ir.Instr{Op: ir.OpCmov, Cond: cond, Dst: ir.Rg(s.orig), Src: ir.Rg(s.temp)})
	}
	out = append(out, ir.Instr{Op: ir.OpJmp, Target: join})
	b.Instrs = out
	return true
}

type sel struct{ orig, temp ir.Reg }

// renameSide rewrites a side's instructions so every register it defines is
// replaced by a fresh scratch register (reads of a renamed register within
// the side follow the rename; reads of untouched registers see the original
// values). It returns the rewritten instructions and the select list.
func renameSide(b *ir.Block, alloc func() (ir.Reg, bool), storeCond ir.Cond, stores bool) ([]ir.Instr, []sel, bool) {
	body := b.Instrs[:len(b.Instrs)-1]
	rename := map[ir.Reg]ir.Reg{}
	var sels []sel
	out := make([]ir.Instr, 0, len(body)+2)

	mapReg := func(r ir.Reg) ir.Reg {
		if nr, ok := rename[r]; ok {
			return nr
		}
		return r
	}
	mapOperandRead := func(o ir.Operand) ir.Operand {
		switch o.Kind {
		case ir.OpndReg:
			o.Reg = mapReg(o.Reg)
		case ir.OpndMem:
			o.Mem.Base = mapReg(o.Mem.Base)
			if o.Mem.HasIndex {
				o.Mem.Index = mapReg(o.Mem.Index)
			}
		}
		return o
	}

	for _, in := range body {
		in.Src = mapOperandRead(in.Src)
		if in.Dst.IsMem() {
			// Aggressive mode: a plain store becomes a conditional store
			// (cmov to memory) guarded by the side's condition. The
			// address registers are reads and follow the renaming.
			if !stores || in.Op != ir.OpMov {
				return nil, nil, false
			}
			in.Op = ir.OpCmov
			in.Cond = storeCond
			in.Dst = mapOperandRead(in.Dst)
			out = append(out, in)
			continue
		}
		if in.Dst.Kind != ir.OpndReg {
			// Only register destinations survive diamondSide, plus
			// OpndNone for Nop.
			if in.Dst.Kind != ir.OpndNone {
				return nil, nil, false
			}
			out = append(out, in)
			continue
		}
		orig := in.Dst.Reg
		readsDst := in.Op != ir.OpMov && in.Op != ir.OpLea
		cur := mapReg(orig)
		temp, known := rename[orig]
		if !known {
			var ok bool
			temp, ok = alloc()
			if !ok {
				return nil, nil, false
			}
			if readsDst {
				// Seed the temp with the original value so RMW ops see it.
				out = append(out, ir.Instr{Op: ir.OpMov, Dst: ir.Rg(temp), Src: ir.Rg(cur)})
			}
			rename[orig] = temp
			sels = append(sels, sel{orig: orig, temp: temp})
		}
		in.Dst = ir.Rg(temp)
		out = append(out, in)
	}
	return out, sels, true
}

// negate returns the complementary condition.
func negate(c ir.Cond) ir.Cond {
	switch c {
	case ir.CondEQ:
		return ir.CondNE
	case ir.CondNE:
		return ir.CondEQ
	case ir.CondLT:
		return ir.CondGE
	case ir.CondGE:
		return ir.CondLT
	case ir.CondLE:
		return ir.CondGT
	case ir.CondGT:
		return ir.CondLE
	case ir.CondULT:
		return ir.CondUGE
	case ir.CondUGE:
		return ir.CondULT
	}
	return c
}
