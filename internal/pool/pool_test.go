package pool

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunsEverySubmittedTask(t *testing.T) {
	g := New(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(func() error {
			n.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestConcurrencyBounded(t *testing.T) {
	const limit = 3
	g := New(limit)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, limit)
	}
}

func TestFirstErrorRetained(t *testing.T) {
	g := New(1) // serial: submission order == execution order
	boom := errors.New("boom")
	g.Go(func() error { return nil })
	g.Go(func() error { return boom })
	g.Go(func() error { return errors.New("later") })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want first error %v", err, boom)
	}
}

func TestZeroLimitDefaultsToCores(t *testing.T) {
	g := New(0)
	done := false
	g.Go(func() error { done = true; return nil })
	if err := g.Wait(); err != nil || !done {
		t.Fatalf("Wait = %v, done = %v", err, done)
	}
}

// TestWorkers pins the shared "not worth parallelizing" policy both the SIMT
// replay pool (warps) and the indexed trace decoder (thread sections) resolve
// through: below MinParallelItems the sequential path wins outright, a
// non-positive limit means one worker per core, and the count never exceeds
// the item count.
func TestWorkers(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	cases := []struct {
		name         string
		limit, items int
		want         int
	}{
		{"zero items", 4, 0, 1},
		{"one item", 4, 1, 1},
		{"below threshold", 4, MinParallelItems - 1, 1},
		{"at threshold", 4, MinParallelItems, 4},
		{"limit one stays serial", 1, 100, 1},
		{"limit capped by items", 64, MinParallelItems, MinParallelItems},
		{"default limit is cores", 0, 10 * cores, cores},
		{"negative limit is cores", -3, 10 * cores, cores},
		{"plenty of items", 4, 1000, 4},
	}
	for _, tc := range cases {
		if got := Workers(tc.limit, tc.items); got != tc.want {
			t.Errorf("%s: Workers(%d, %d) = %d, want %d", tc.name, tc.limit, tc.items, got, tc.want)
		}
	}
}

func TestForEachVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		const items = 200
		var visits [items]atomic.Int64
		workerSeen := make(map[int]bool)
		var mu sync.Mutex
		ForEach(workers, items, func(w, i int) bool {
			visits[i].Add(1)
			mu.Lock()
			workerSeen[w] = true
			mu.Unlock()
			return false
		})
		for i := range visits {
			if n := visits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, n)
			}
		}
		max := workers
		if max < 1 {
			max = 1
		}
		if len(workerSeen) > max {
			t.Fatalf("workers=%d: %d distinct worker ids", workers, len(workerSeen))
		}
		for w := range workerSeen {
			if w < 0 || w >= max {
				t.Fatalf("workers=%d: worker id %d out of range", workers, w)
			}
		}
	}
}

func TestForEachStopsOnTrue(t *testing.T) {
	// Serial path: stop after item 10, items 11+ never run.
	var ran atomic.Int64
	ForEach(1, 100, func(_, i int) bool {
		ran.Add(1)
		return i == 10
	})
	if ran.Load() != 11 {
		t.Fatalf("serial ForEach ran %d items after stop at 10, want 11", ran.Load())
	}
	// Parallel path: no NEW items are claimed after a stop; already-claimed
	// ones may finish, so the bound is ran <= stop-point + workers.
	const workers = 4
	ran.Store(0)
	ForEach(workers, 10_000, func(_, i int) bool {
		return ran.Add(1) >= 50
	})
	if n := ran.Load(); n < 50 || n > 50+workers {
		t.Fatalf("parallel ForEach ran %d items, want within [50, %d]", n, 50+workers)
	}
}
