// Command tfanalyze is the ThreadFuser analyzer front-end: it reads a .tft
// MIMD trace (produced by cmd/tftrace) and prints the SIMT projection — the
// program's SIMT efficiency per equation 1, the per-function breakdown that
// pinpoints divergence bottlenecks (figure 7), the memory-divergence
// profile (figure 10) and the synchronization/skipped-instruction summary
// (figures 8 and 9).
//
// Usage:
//
//	tfanalyze -trace pigz.tft
//	tfanalyze -trace pigz.tft -warp 8 -funcs 10
//	tfanalyze -trace svc.tft -locks -formation greedy
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"

	"threadfuser/internal/core"
	"threadfuser/internal/prof"
	"threadfuser/internal/serve"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
)

// stopProfiles finishes any active -cpuprofile/-memprofile collection; fatal
// calls it so error exits still flush profiles.
var stopProfiles = func() {}

func main() {
	var (
		path      = flag.String("trace", "", "input .tft trace (required)")
		warpSize  = flag.Int("warp", 32, "warp width to model (1..64)")
		locks     = flag.Bool("locks", false, "emulate intra-warp lock serialization (figure 9)")
		formation = flag.String("formation", "round-robin", "warp batching: round-robin, strided or greedy")
		nfuncs    = flag.Int("funcs", 8, "per-function rows to print (0 = all)")
		warps     = flag.Bool("warps", false, "print per-warp efficiencies")
		exclude   = flag.String("exclude", "", "comma-separated functions to exclude from analysis (with their callees)")
		only      = flag.String("only", "", "comma-separated functions to restrict the analysis to (with their callees)")
		dump      = flag.Int("dump", -1, "dump this thread's event stream instead of analyzing")
		dumpMax   = flag.Int("dump-max", 200, "max records to dump")
		asJSON    = flag.Bool("json", false, "emit the full report as JSON")
		sweep     = flag.Bool("sweep", false, "print an efficiency sweep over warp sizes 4..64 and exit")
		branches  = flag.Int("branches", 5, "divergent-branch rows to print (0 = none)")
		parallel  = flag.Int("parallel", 0, "replay worker count (0 = all cores, 1 = serial; results are identical)")
		useCache  = flag.Bool("cache", false, "serve identical (trace, options) analyses from the on-disk report cache")
		cacheDir  = flag.String("cache-dir", "", "report cache directory (implies -cache; default $XDG_CACHE_HOME/threadfuser)")
		server    = flag.String("server", "", "analyze via a running tfserve instance at this URL instead of locally")
		tenant    = flag.String("tenant", "", "tenant identity sent with -server requests")
		noFusion  = flag.Bool("no-fusion", false, "disable the lockstep-fusion replay fast path (A/B verification; results are identical)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tfanalyze -trace file.tft [flags]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tfanalyze: unexpected argument %q (traces are passed with -trace)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "tfanalyze: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()

	if *server != "" {
		// Server mode streams the file as-is: the service decodes, dedups
		// against identical in-flight uploads, and replays. Local-only
		// transforms have no server-side equivalent.
		if *exclude != "" || *only != "" || *dump >= 0 || *sweep {
			fatal(fmt.Errorf("-server mode does not support -exclude, -only, -dump or -sweep"))
		}
		f, err := os.Open(*path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		q := url.Values{"warp": {strconv.Itoa(*warpSize)}, "formation": {*formation}}
		if *locks {
			q.Set("locks", "true")
		}
		c := serve.Client{BaseURL: *server, Tenant: *tenant}
		rep, err := c.Analyze(context.Background(), f, q)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fatal(err)
			}
			return
		}
		printReport(rep, *nfuncs, *warps, *branches)
		return
	}

	// Indexed (v3) traces take the streaming ingest path: section decode,
	// validation, and replay-column building ride the same worker pass, with
	// DCFG construction chasing them, so replay starts the moment the last
	// section lands. Trace-rewriting flags (-exclude/-only/-dump) and
	// unindexed v1/v2 files need the whole trace in hand first and fall back
	// to the batch decoder.
	var (
		tr *trace.Trace
		rd *trace.Reader
	)
	if *exclude == "" && *only == "" && *dump < 0 {
		r, oerr := trace.OpenFile(*path)
		switch {
		case oerr == nil:
			rd = r
			defer r.Close()
		case !errors.Is(oerr, trace.ErrNoIndex):
			fatal(oerr)
		}
	}
	if rd == nil {
		tr, err = trace.ReadFileParallel(*path, *parallel)
		if err != nil {
			fatal(err)
		}
	}
	cache := core.OpenFlagCache(*useCache, *cacheDir)
	if *exclude != "" {
		tr, err = trace.ExcludeFunctions(tr, strings.Split(*exclude, ",")...)
		if err != nil {
			fatal(err)
		}
	}
	if *only != "" {
		tr, err = trace.OnlyFunctions(tr, strings.Split(*only, ",")...)
		if err != nil {
			fatal(err)
		}
	}
	if *dump >= 0 {
		if err := trace.Dump(os.Stdout, tr, *dump, *dumpMax); err != nil {
			fatal(err)
		}
		return
	}
	opts := core.Defaults()
	opts.WarpSize = *warpSize
	opts.EmulateLocks = *locks
	opts.Parallelism = *parallel
	opts.DisableLockstepFusion = *noFusion
	switch *formation {
	case "round-robin":
		opts.Formation = warp.RoundRobin
	case "strided":
		opts.Formation = warp.Strided
	case "greedy":
		opts.Formation = warp.GreedyEntry
	default:
		fatal(fmt.Errorf("unknown formation %q", *formation))
	}

	if *sweep {
		// A session validates the trace and builds DCFG+IPDOM once for all
		// five warp-width points; an indexed file streams into it.
		sess := core.NewSession()
		sess.SetCache(cache)
		if rd != nil {
			if tr, err = sess.Ingest(rd, *parallel); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%-10s %s\n", "warp size", "SIMT efficiency")
		for _, ws := range []int{4, 8, 16, 32, 64} {
			o := opts
			o.WarpSize = ws
			rep, err := sess.Analyze(tr, o)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-10d %5.1f%%\n", ws, rep.Efficiency*100)
		}
		return
	}
	var rep *core.Report
	if rd != nil {
		rep, _, err = core.AnalyzeStreamCached(cache, rd, opts)
	} else {
		rep, _, err = core.AnalyzeCached(cache, tr, opts)
	}
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printReport(rep, *nfuncs, *warps, *branches)
}

func printReport(rep *core.Report, nfuncs int, perWarp bool, nbranches int) {
	fmt.Printf("program            %s\n", rep.Program)
	fmt.Printf("threads/warps      %d / %d (warp size %d)\n", rep.Threads, rep.Warps, rep.WarpSize)
	fmt.Printf("SIMT efficiency    %.1f%%  (instruction-weighted %.1f%%)\n",
		rep.Efficiency*100, rep.WeightedEfficiency*100)
	fmt.Printf("instructions       %d by threads, %d lockstep issues\n", rep.TotalInstrs, rep.LockstepInstrs)
	fmt.Printf("memory divergence  %.2f heap tx/instr, %.2f stack tx/instr (%d mem instrs)\n",
		rep.HeapTxPerInstr, rep.StackTxPerInstr, rep.MemInstrs)
	fmt.Printf("synchronization    %d serializations, %d serialized lanes\n",
		rep.LockSerializations, rep.SerializedLanes)
	fmt.Printf("traced             %.1f%% (skipped: %d I/O, %d spin)\n",
		rep.TracedPercent, rep.SkippedIO, rep.SkippedSpin)

	if nfuncs != 0 {
		fmt.Printf("\n%-24s %12s %12s %12s\n", "FUNCTION", "INSTR SHARE", "EFFICIENCY", "INVOCATIONS")
		for i, f := range rep.PerFunction {
			if nfuncs > 0 && i >= nfuncs {
				fmt.Printf("... %d more\n", len(rep.PerFunction)-i)
				break
			}
			fmt.Printf("%-24s %11.1f%% %11.1f%% %12d\n",
				f.Name, f.InstrShare*100, f.Efficiency*100, f.Invocations)
		}
	}
	if nbranches > 0 && len(rep.Branches) > 0 {
		fmt.Printf("\n%-24s %12s %10s %10s\n", "DIVERGENT BRANCH", "LANES IDLED", "SPLITS", "AVG PATHS")
		for i, br := range rep.Branches {
			if i >= nbranches {
				fmt.Printf("... %d more\n", len(rep.Branches)-i)
				break
			}
			fmt.Printf("%-24s %12d %10d %10.2f\n",
				fmt.Sprintf("%s.b%d", br.Func, br.Block), br.LanesOff, br.Divergences, br.AvgPaths)
		}
	}

	// Occupancy histogram: top contributors only.
	type bucket struct {
		lanes int
		n     uint64
	}
	var total uint64
	var buckets []bucket
	for k, n := range rep.LaneHistogram {
		if n > 0 {
			buckets = append(buckets, bucket{k, n})
			total += n
		}
	}
	if total > 0 {
		fmt.Printf("\nactive-lane occupancy (warp instructions by lane count):\n")
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].n > buckets[j].n })
		for i, b := range buckets {
			if i >= 6 {
				fmt.Printf("  ... %d more buckets\n", len(buckets)-i)
				break
			}
			fmt.Printf("  %2d lanes: %5.1f%%\n", b.lanes, 100*float64(b.n)/float64(total))
		}
	}

	if perWarp {
		fmt.Printf("\nper-warp efficiency:")
		for i, e := range rep.PerWarpEfficiency {
			if i%8 == 0 {
				fmt.Printf("\n  ")
			}
			fmt.Printf("w%-3d %5.1f%%  ", i, e*100)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "tfanalyze:", err)
	os.Exit(1)
}
