package analysis

import (
	"fmt"
	"strings"

	"threadfuser/internal/ir"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/trace"
)

// progTraceMismatch checks an attached program against a trace's symbol
// table and describes the first disagreement ("" when they match). Shared by
// every pass that correlates static IR positions with trace positions.
func progTraceMismatch(prog *ir.Program, t *trace.Trace) string {
	if len(prog.Funcs) != len(t.Funcs) {
		return fmt.Sprintf("program has %d function(s), trace has %d", len(prog.Funcs), len(t.Funcs))
	}
	for id, f := range prog.Funcs {
		if f.Name != t.Funcs[id].Name {
			return fmt.Sprintf("function %d is %q in the program but %q in the trace", id, f.Name, t.Funcs[id].Name)
		}
		if len(f.Blocks) != len(t.Funcs[id].Blocks) {
			return fmt.Sprintf("function %q has %d block(s) in the program but %d in the trace", f.Name, len(f.Blocks), len(t.Funcs[id].Blocks))
		}
		for bi, b := range f.Blocks {
			if len(b.Instrs) != int(t.Funcs[id].Blocks[bi].NInstr) {
				return fmt.Sprintf("%s.b%d has %d instruction(s) in the program but %d in the trace", f.Name, bi, len(b.Instrs), t.Funcs[id].Blocks[bi].NInstr)
			}
		}
	}
	return ""
}

// staticPass cross-checks the static SIMT oracle (internal/staticsimt)
// against the dynamic replay. It needs the program attached to the run
// (Options.Prog); trace-only inputs skip it. Two disagreement directions,
// two meanings:
//
//   - a branch the oracle called uniform that split a warp at runtime is a
//     soundness bug in the oracle (SevError — this should never happen and
//     internal/check's "staticuniform" invariant enforces it);
//   - a branch the oracle called divergent that stayed uniform through the
//     whole replay is a precision gap (SevInfo), the expected cost of a
//     conservative dataflow.
type staticPass struct{}

func (staticPass) ID() string { return "static" }
func (staticPass) Desc() string {
	return "static uniformity oracle vs dynamic replay: soundness violations and precision gaps"
}

// maxPrecisionReports bounds the per-run precision-gap findings; the rest
// fold into the summary count.
const maxPrecisionReports = 20

func (staticPass) Run(ctx *Context) error {
	prog := ctx.Opts.Prog
	if prog == nil {
		return nil // gated in RunSession; defensive
	}

	// Symbol-table guard: the attached program must describe the traced
	// binary, or every block id the comparison uses is meaningless.
	if mismatch := progTraceMismatch(prog, ctx.Trace); mismatch != "" {
		f := finding("static", SevWarning)
		f.Message = fmt.Sprintf("attached program does not match the trace symbol table (%s); static comparison skipped", mismatch)
		ctx.add(f)
		return nil
	}

	res := staticsimt.Analyze(prog, staticsimt.Options{})
	rep, err := ctx.Report(false)
	if err != nil {
		return err
	}

	// Soundness direction: every dynamic divergence site must have been
	// classified divergent (or at least classified — a block the oracle
	// never saw as a branch would be a structural disagreement).
	type key struct {
		fn    uint32
		block uint32
	}
	diverged := map[key]bool{}
	for _, br := range rep.Branches {
		if br.Divergences == 0 {
			continue
		}
		fn, ok := ctx.funcID(br.Func)
		if !ok {
			continue
		}
		diverged[key{fn, br.Block}] = true
		cls, ok := res.Class(fn, br.Block)
		if !ok {
			f := finding("static", SevError)
			f.Function = br.Func
			f.Block = int32(br.Block)
			f.Message = fmt.Sprintf("oracle soundness bug: branch diverged %d time(s) at runtime but has no static classification", br.Divergences)
			ctx.add(f)
			continue
		}
		if cls.Uniform {
			f := finding("static", SevError)
			f.Function = br.Func
			f.Block = int32(br.Block)
			f.Message = fmt.Sprintf("oracle soundness bug: branch classified warp-uniform but diverged %d time(s) at runtime (%d lane(s) idled)", br.Divergences, br.LanesOff)
			f.Details = map[string]string{"divergences": fmt.Sprintf("%d", br.Divergences)}
			ctx.add(f)
		}
	}

	// Precision direction: statically-divergent branches the replay executed
	// without ever splitting a warp.
	gaps := 0
	for fi := range res.Funcs {
		fr := &res.Funcs[fi]
		g := ctx.Graphs[fr.ID]
		if g == nil {
			continue
		}
		for bi := range fr.Branches {
			b := &fr.Branches[bi]
			if b.Uniform || diverged[key{fr.ID, b.Block}] {
				continue
			}
			if int(b.Block) >= g.NBlocks || len(g.Succs(int32(b.Block))) == 0 {
				continue // never executed; no dynamic evidence either way
			}
			gaps++
			if gaps > maxPrecisionReports {
				continue
			}
			f := finding("static", SevInfo)
			f.Function = fr.Name
			f.Block = int32(b.Block)
			f.Message = fmt.Sprintf("precision gap: %s classified divergent (%s) but never split a warp in this replay", b.Kind, strings.Join(b.Causes, "|"))
			f.Details = map[string]string{"causes": strings.Join(b.Causes, "|")}
			ctx.add(f)
		}
	}
	if gaps > maxPrecisionReports {
		f := finding("static", SevInfo)
		f.Message = fmt.Sprintf("%d further precision gap(s) suppressed", gaps-maxPrecisionReports)
		ctx.add(f)
	}

	f := finding("static", SevInfo)
	f.Message = fmt.Sprintf("static oracle: %d uniform / %d divergent branch(es), %d meld candidate(s), %d precision gap(s) in this replay",
		res.UniformBranches, res.DivergentBranches, res.Meldable, gaps)
	ctx.add(f)
	return nil
}
