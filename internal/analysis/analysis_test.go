package analysis_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"threadfuser/internal/analysis"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

func traceFor(t *testing.T, name string) *trace.Trace {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func lint(t *testing.T, name string, opts analysis.Options) *analysis.Report {
	t.Helper()
	rep, err := analysis.Run(traceFor(t, name), opts)
	if err != nil {
		t.Fatalf("lint %s: %v", name, err)
	}
	return rep
}

func countPass(rep *analysis.Report, pass string, min analysis.Severity) int {
	n := 0
	for i := range rep.Findings {
		if f := &rep.Findings[i]; f.Pass == pass && f.Severity >= min {
			n++
		}
	}
	return n
}

func hasMessage(rep *analysis.Report, pass, substr string) bool {
	for i := range rep.Findings {
		if f := &rep.Findings[i]; f.Pass == pass && strings.Contains(f.Message, substr) {
			return true
		}
	}
	return false
}

func TestSeededRaceIsDetected(t *testing.T) {
	rep := lint(t, "seededrace", analysis.Options{})
	if n := countPass(rep, "lockset", analysis.SevError); n < 1 {
		rep.Render(testWriter{t})
		t.Fatalf("seededrace: want >=1 lockset error, got %d", n)
	}
	if !hasMessage(rep, "lockset", "candidate lockset is empty") {
		t.Error("race finding lacks the lockset message")
	}
	// The locked counter updates must NOT be reported: exactly one racy
	// static site exists.
	if n := countPass(rep, "lockset", analysis.SevInfo); n != 1 {
		rep.Render(testWriter{t})
		t.Errorf("seededrace: want exactly 1 lockset finding, got %d", n)
	}
}

func TestLeakedLockIsDetected(t *testing.T) {
	rep := lint(t, "leakedlock", analysis.Options{})
	if n := countPass(rep, "locks", analysis.SevError); n < 1 {
		rep.Render(testWriter{t})
		t.Fatalf("leakedlock: want >=1 locks error, got %d", n)
	}
	if !hasMessage(rep, "locks", "never released") {
		t.Error("missing runtime leak finding")
	}
	if !hasMessage(rep, "locks", "release-free path") {
		t.Error("missing static leak-path finding")
	}
	if !hasMessage(rep, "divergence", "meldable divergent diamond") {
		rep.Render(testWriter{t})
		t.Error("parity branch should be flagged as a DARM meldable diamond")
	}
	// Nothing races: the only shared words are the per-thread lock words.
	if n := countPass(rep, "lockset", analysis.SevInfo); n != 0 {
		t.Errorf("leakedlock: want no lockset findings, got %d", n)
	}
}

func TestCleanWorkloadsHaveNoFindings(t *testing.T) {
	for _, name := range []string{"vectoradd", "uncoalesced"} {
		rep := lint(t, name, analysis.Options{})
		if len(rep.Findings) != 0 {
			rep.Render(testWriter{t})
			t.Errorf("%s: want zero findings, got %d", name, len(rep.Findings))
		}
		if len(rep.SkippedPasses) != 0 {
			t.Errorf("%s: unexpected skipped passes %v", name, rep.SkippedPasses)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep := lint(t, "leakedlock", analysis.Options{})
	if len(rep.Findings) == 0 {
		t.Fatal("need findings to round-trip")
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back analysis.Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Errorf("report changed across JSON round-trip:\n%s", b)
	}
}

func TestFindingsDeterministicAcrossParallelism(t *testing.T) {
	for _, name := range []string{"seededrace", "leakedlock"} {
		tr := traceFor(t, name)
		var base *analysis.Report
		for _, par := range []int{1, 2, 8, 0} {
			rep, err := analysis.Run(tr, analysis.Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = rep
				continue
			}
			if !reflect.DeepEqual(base, rep) {
				t.Errorf("%s: report differs between parallelism 1 and %d", name, par)
			}
		}
	}
}

func TestSeverityFilter(t *testing.T) {
	all := lint(t, "leakedlock", analysis.Options{})
	errsOnly := lint(t, "leakedlock", analysis.Options{MinSeverity: analysis.SevError})
	if len(errsOnly.Findings) >= len(all.Findings) {
		t.Fatalf("filter dropped nothing: %d vs %d", len(errsOnly.Findings), len(all.Findings))
	}
	for i := range errsOnly.Findings {
		if errsOnly.Findings[i].Severity < analysis.SevError {
			t.Errorf("finding below threshold survived: %+v", errsOnly.Findings[i])
		}
	}
	if errsOnly.Errors != all.Errors {
		t.Errorf("error count changed under filtering: %d vs %d", errsOnly.Errors, all.Errors)
	}
	if errsOnly.Warnings != 0 || errsOnly.Infos != 0 {
		t.Errorf("filtered report still counts %d warnings, %d infos", errsOnly.Warnings, errsOnly.Infos)
	}
}

func TestPassSelection(t *testing.T) {
	rep := lint(t, "seededrace", analysis.Options{Passes: []string{"lockset"}})
	for i := range rep.Findings {
		if rep.Findings[i].Pass != "lockset" {
			t.Errorf("unselected pass reported: %+v", rep.Findings[i])
		}
	}
	if rep.CountAtLeast(analysis.SevError) == 0 {
		t.Error("lockset-only run lost the race finding")
	}
	if _, err := analysis.Run(traceFor(t, "vectoradd"), analysis.Options{Passes: []string{"nosuch"}}); err == nil {
		t.Error("unknown pass id accepted")
	}
}

func TestBadWarpSizeRejected(t *testing.T) {
	if _, err := analysis.Run(traceFor(t, "vectoradd"), analysis.Options{WarpSize: 1 << 20}); err == nil {
		t.Error("absurd warp size accepted")
	}
}

func TestMalformedTraceGatesStructuralPasses(t *testing.T) {
	tr := traceFor(t, "seededrace")
	// Corrupt one record: a block id far outside the function.
	for _, th := range tr.Threads {
		for ri := range th.Records {
			if th.Records[ri].Kind == trace.KindBBL {
				th.Records[ri].Block = 9999
				break
			}
		}
		break
	}
	rep, err := analysis.Run(tr, analysis.Options{})
	if err != nil {
		t.Fatalf("malformed trace must yield findings, not an error: %v", err)
	}
	if rep.Errors == 0 {
		t.Fatal("sanitizer missed the corrupted record")
	}
	if !hasMessage(rep, "sanitize", "outside") {
		t.Error("missing out-of-range block finding")
	}
	if len(rep.SkippedPasses) == 0 {
		t.Error("structural passes ran over a broken trace")
	}
	for i := range rep.Findings {
		if p := rep.Findings[i].Pass; p != "sanitize" {
			t.Errorf("pass %s produced findings on a broken trace", p)
		}
	}
}

func TestFindingsAreSorted(t *testing.T) {
	rep := lint(t, "leakedlock", analysis.Options{})
	for i := 1; i < len(rep.Findings); i++ {
		if rep.Findings[i].Severity > rep.Findings[i-1].Severity {
			t.Fatalf("findings not sorted by severity at %d", i)
		}
	}
}

func TestRenderMentionsCounts(t *testing.T) {
	rep := lint(t, "leakedlock", analysis.Options{})
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "leakedlock") || !strings.Contains(out, "error(s)") {
		t.Errorf("render output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "ERROR") {
		t.Errorf("render lacks severity tags:\n%s", out)
	}
}

// testWriter adapts t.Logf for Report.Render in failure paths.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
