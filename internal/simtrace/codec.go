package simtrace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"threadfuser/internal/ir"
)

// Text format (".wtr", warp trace), one record per line, in the spirit of
// Accel-Sim's kernel traces:
//
//	TFWT 1 <program> <warpsize> <numwarps>
//	warp <index> <numinstrs>
//	<pc> <class> <op> <dst> <src1> <src2> <mask> [<L|S> <space> <size> <addr>...]
//
// Registers print as decimal (255 = none); pc, mask and addresses as hex.

// WriteText serializes a kernel trace.
func WriteText(w io.Writer, kt *KernelTrace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "TFWT 1 %s %d %d\n", kt.Program, kt.WarpSize, len(kt.Warps)); err != nil {
		return err
	}
	for _, ws := range kt.Warps {
		fmt.Fprintf(bw, "warp %d %d\n", ws.Warp, len(ws.Instrs))
		for i := range ws.Instrs {
			in := &ws.Instrs[i]
			fmt.Fprintf(bw, "%x %d %d %d %d %d %x", in.PC, in.Class, in.Op, in.Dst, in.Srcs[0], in.Srcs[1], in.Mask)
			if in.Class == ir.ClassMem {
				ls := "S"
				if in.Load {
					ls = "L"
				}
				fmt.Fprintf(bw, " %s %d %d", ls, in.Space, in.Size)
				for _, a := range in.Addrs {
					fmt.Fprintf(bw, " %x", a)
				}
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteFile serializes the kernel trace to the named file.
func WriteFile(path string, kt *KernelTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteText(f, kt); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadText parses a kernel trace in the .wtr format.
func ReadText(r io.Reader) (*KernelTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("simtrace: empty warp trace")
	}
	head := strings.Fields(sc.Text())
	if len(head) != 5 || head[0] != "TFWT" || head[1] != "1" {
		return nil, fmt.Errorf("simtrace: bad header %q", sc.Text())
	}
	warpSize, err := strconv.Atoi(head[3])
	if err != nil {
		return nil, fmt.Errorf("simtrace: bad warp size: %v", err)
	}
	nwarps, err := strconv.Atoi(head[4])
	if err != nil {
		return nil, fmt.Errorf("simtrace: bad warp count: %v", err)
	}
	kt := &KernelTrace{Program: head[2], WarpSize: warpSize}

	for w := 0; w < nwarps; w++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("simtrace: truncated at warp %d", w)
		}
		wh := strings.Fields(sc.Text())
		if len(wh) != 3 || wh[0] != "warp" {
			return nil, fmt.Errorf("simtrace: bad warp header %q", sc.Text())
		}
		idx, err1 := strconv.Atoi(wh[1])
		n, err2 := strconv.Atoi(wh[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("simtrace: bad warp header %q", sc.Text())
		}
		ws := &WarpStream{Warp: idx, Instrs: make([]WInstr, 0, n)}
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("simtrace: truncated in warp %d", idx)
			}
			in, err := parseInstr(sc.Text())
			if err != nil {
				return nil, fmt.Errorf("simtrace: warp %d instr %d: %v", idx, i, err)
			}
			ws.Instrs = append(ws.Instrs, in)
		}
		kt.Warps = append(kt.Warps, ws)
	}
	return kt, sc.Err()
}

// ReadFile parses the named .wtr file.
func ReadFile(path string) (*KernelTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadText(f)
}

func parseInstr(line string) (WInstr, error) {
	fs := strings.Fields(line)
	if len(fs) < 7 {
		return WInstr{}, fmt.Errorf("short record %q", line)
	}
	var in WInstr
	var err error
	if in.PC, err = strconv.ParseUint(fs[0], 16, 64); err != nil {
		return in, err
	}
	cls, err := strconv.Atoi(fs[1])
	if err != nil {
		return in, err
	}
	in.Class = ir.Class(cls)
	op, err := strconv.Atoi(fs[2])
	if err != nil {
		return in, err
	}
	in.Op = ir.Opcode(op)
	regs := [3]uint8{}
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseUint(fs[3+i], 10, 8)
		if err != nil {
			return in, err
		}
		regs[i] = uint8(v)
	}
	in.Dst, in.Srcs[0], in.Srcs[1] = regs[0], regs[1], regs[2]
	if in.Mask, err = strconv.ParseUint(fs[6], 16, 64); err != nil {
		return in, err
	}
	if in.Class == ir.ClassMem {
		if len(fs) < 10 {
			return in, fmt.Errorf("memory record missing fields %q", line)
		}
		in.Load = fs[7] == "L"
		sp, err := strconv.Atoi(fs[8])
		if err != nil {
			return in, err
		}
		in.Space = Space(sp)
		sz, err := strconv.ParseUint(fs[9], 10, 8)
		if err != nil {
			return in, err
		}
		in.Size = uint8(sz)
		for _, a := range fs[10:] {
			v, err := strconv.ParseUint(a, 16, 64)
			if err != nil {
				return in, err
			}
			in.Addrs = append(in.Addrs, v)
		}
	}
	return in, nil
}
