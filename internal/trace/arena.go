package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// This file implements the columnar trace arena: the decoded form of a trace
// as three flat tables — records, memory accesses, lock operations — plus a
// per-thread span header, instead of per-thread record slices with
// per-record access slices. The arena is what makes decode run at memory
// bandwidth: one large allocation per table (near-zero per-record
// allocation), filled by a byte-slice decoder with no reader interface calls
// on the hot path, and filled in disjoint sub-ranges by parallel workers when
// the v3 index carries per-thread table sizes.
//
// The public Trace/Record API is preserved as a zero-copy view: every
// ThreadTrace.Records is a sub-slice of the arena's record table, and every
// Record.Mem/Record.Locks is a sub-slice of the shared access/lock tables.
// Nothing a consumer can observe distinguishes an arena-backed trace from
// one built record by record (reflect.DeepEqual included), which is what the
// differential tests against the legacy streaming decoder assert.

// Arena is the columnar backing store of a decoded trace. All threads'
// records live contiguously in Records (thread sections in file order), all
// memory accesses in Mem, and all lock operations in Locks, each in record
// order. MemOff and LockOff are prefix-offset columns of length
// len(Records)+1: record i's accesses are Mem[MemOff[i]:MemOff[i+1]], its
// lock operations Locks[LockOff[i]:LockOff[i+1]]. Spans maps each thread to
// its record range.
type Arena struct {
	Spans   []Span
	Records []Record
	Mem     []MemAccess
	Locks   []LockOp
	MemOff  []uint32
	LockOff []uint32
}

// Span locates one thread's records inside the arena's record table.
type Span struct {
	TID    int
	Lo, Hi int // record index range [Lo,Hi)
}

// NewArena flattens an existing trace into columnar form, copying its
// records and access/lock entries into freshly allocated tables. It is the
// adapter in the opposite direction from decode: workload generators build
// traces record by record, and NewArena gives tests (and anything that wants
// contiguous tables) the arena view of them.
func NewArena(t *Trace) *Arena {
	var nrec, nmem, nlock int
	for _, th := range t.Threads {
		nrec += len(th.Records)
		for i := range th.Records {
			nmem += len(th.Records[i].Mem)
			nlock += len(th.Records[i].Locks)
		}
	}
	a := &Arena{
		Spans:   make([]Span, 0, len(t.Threads)),
		Records: make([]Record, 0, nrec),
		Mem:     make([]MemAccess, 0, nmem),
		Locks:   make([]LockOp, 0, nlock),
		MemOff:  make([]uint32, 1, nrec+1),
		LockOff: make([]uint32, 1, nrec+1),
	}
	for _, th := range t.Threads {
		lo := len(a.Records)
		for i := range th.Records {
			r := th.Records[i] // copy; the arena owns its own entries
			a.Mem = append(a.Mem, r.Mem...)
			a.Locks = append(a.Locks, r.Locks...)
			r.Mem, r.Locks = nil, nil
			a.Records = append(a.Records, r)
			a.MemOff = append(a.MemOff, uint32(len(a.Mem)))
			a.LockOff = append(a.LockOff, uint32(len(a.Locks)))
		}
		a.Spans = append(a.Spans, Span{TID: th.TID, Lo: lo, Hi: len(a.Records)})
	}
	a.fixup(0, len(a.Records))
	return a
}

// Trace materializes the view adapter: a Trace whose thread record slices
// and per-record access/lock slices alias the arena's tables. The arena must
// not be mutated afterwards.
func (a *Arena) Trace(program string, entry uint32, funcs []FuncInfo) *Trace {
	t := &Trace{Program: program, Entry: entry, Funcs: funcs}
	if len(a.Spans) == 0 {
		return t
	}
	// One block allocation for all ThreadTrace headers.
	block := make([]ThreadTrace, len(a.Spans))
	t.Threads = make([]*ThreadTrace, len(a.Spans))
	for i, sp := range a.Spans {
		block[i] = ThreadTrace{TID: sp.TID, Records: a.Records[sp.Lo:sp.Hi]}
		t.Threads[i] = &block[i]
	}
	return t
}

// fixup points the Mem/Locks view slices of records [lo,hi) at their
// sections of the shared tables. It must run only after the tables' backing
// arrays are final (no further appends), or the views would alias stale
// copies.
func (a *Arena) fixup(lo, hi int) {
	for i := lo; i < hi; i++ {
		if s, e := a.MemOff[i], a.MemOff[i+1]; e > s {
			a.Records[i].Mem = a.Mem[s:e]
		}
		if s, e := a.LockOff[i], a.LockOff[i+1]; e > s {
			a.Records[i].Locks = a.Locks[s:e]
		}
	}
}

// bdec decodes .tft structures from an in-memory byte slice. Unlike the
// stream decoder it makes no reader interface calls: the single-byte varint
// fast path is a bounds check and an increment, which is where the decode
// MB/s comes from.
type bdec struct {
	data []byte
	off  int
	err  error
}

func (d *bdec) uvarint() uint64 {
	if off := d.off; off < len(d.data) {
		if b := d.data[off]; b < 0x80 {
			d.off = off + 1
			return uint64(b)
		}
	}
	return d.uvarintSlow()
}

// uvarintSlow handles multi-byte varints (raw v1 addresses are routinely 5+
// bytes) with a manual loop: one pass, no interface or stdlib call overhead.
func (d *bdec) uvarintSlow() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	var s uint
	for i := d.off; i < len(d.data); i++ {
		b := d.data[i]
		if b < 0x80 {
			if s >= 63 && (s > 63 || b > 1) {
				d.err = fmt.Errorf("varint overflows uint64")
				return 0
			}
			d.off = i + 1
			return v | uint64(b)<<s
		}
		v |= uint64(b&0x7f) << s
		s += 7
		if s >= 70 {
			d.err = fmt.Errorf("varint overflows uint64")
			return 0
		}
	}
	d.err = io.ErrUnexpectedEOF
	return 0
}

// skipUvarint advances past one varint without decoding its value — the
// measuring pass cares only about structure.
func (d *bdec) skipUvarint() {
	for i := d.off; i < len(d.data); i++ {
		if d.data[i] < 0x80 {
			d.off = i + 1
			return
		}
	}
	d.err = io.ErrUnexpectedEOF
}

// skip advances past n raw bytes.
func (d *bdec) skip(n int) {
	if len(d.data)-d.off < n {
		d.off = len(d.data)
		d.err = io.ErrUnexpectedEOF
		return
	}
	d.off += n
}

func (d *bdec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *bdec) bool() bool { return d.byte() != 0 }

func (d *bdec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	if uint64(len(d.data)-d.off) < n {
		d.err = io.ErrUnexpectedEOF
		return ""
	}
	s := string(d.data[d.off : d.off+uint64asInt(n)])
	d.off += uint64asInt(n)
	return s
}

// uint64asInt converts a value already validated to fit.
func uint64asInt(v uint64) int { return int(v) }

// count mirrors decoder.count: declared element counts are
// attacker-controlled, so implausible ones are rejected outright.
func (d *bdec) count(what string, n uint64) uint64 {
	if d.err == nil && n > maxCount {
		d.err = fmt.Errorf("implausible %s count %d", what, n)
	}
	return n
}

// header decodes the version-independent metadata section, mirroring
// decoder.header byte for byte (including prealloc clamps), so the arena and
// stream decoders accept and reject exactly the same inputs.
func (d *bdec) header() *Header {
	if len(d.data)-d.off < len(magic) {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	m := d.data[d.off : d.off+len(magic)]
	d.off += len(magic)
	if string(m) != magic {
		d.err = fmt.Errorf("bad magic %q", m)
		return nil
	}
	v := d.uvarint()
	if d.err == nil && v != version && v != version2 && v != version3 {
		d.err = fmt.Errorf("unsupported version %d", v)
		return nil
	}
	h := &Header{Version: int(v), Program: d.str()}
	h.Entry = uint32(d.uvarint())
	nf := d.count("function", d.uvarint())
	if d.err != nil {
		return nil
	}
	h.Funcs = make([]FuncInfo, 0, preallocCap(nf))
	for i := uint64(0); i < nf && d.err == nil; i++ {
		fi := FuncInfo{Name: d.str()}
		nb := d.count("block", d.uvarint())
		fi.Blocks = make([]BlockInfo, 0, preallocCap(nb))
		for j := uint64(0); j < nb && d.err == nil; j++ {
			fi.Blocks = append(fi.Blocks, BlockInfo{NInstr: uint32(d.uvarint())})
		}
		h.Funcs = append(h.Funcs, fi)
	}
	h.NumThreads = int(d.count("thread", d.uvarint()))
	if d.err != nil {
		return nil
	}
	return h
}

// DecodeBytes decodes a complete in-memory .tft encoding (any version) into
// an arena-backed trace. It is the fast path behind Decode and ReadFile;
// trailing bytes past the last thread section (a v3 index footer) are
// ignored, exactly as the stream decoder never reads them.
func DecodeBytes(data []byte) (*Trace, error) {
	t, _, err := decodeArena(data)
	return t, err
}

// DecodeInto decodes like DecodeBytes but reuses a's tables as the backing
// store, growing them only when this trace needs more capacity than the
// arena already has. Steady-state decoding of similarly sized traces — the
// scan-many-files loop — allocates almost nothing per decode and never
// re-zeroes the tables. The returned Trace aliases the arena: the next
// DecodeInto on the same arena overwrites it.
func DecodeInto(data []byte, a *Arena) (*Trace, error) {
	t, _, err := decodeArenaInto(data, a)
	return t, err
}

// decodeArena is DecodeBytes exposing the arena, for tests and internal
// callers that want the columnar form.
func decodeArena(data []byte) (*Trace, *Arena, error) {
	return decodeArenaInto(data, nil)
}

func decodeArenaInto(data []byte, a *Arena) (*Trace, *Arena, error) {
	return decodeArenaStream(data, a, false)
}

// decodeArenaStream is the shared decode body. In strict mode the input
// must be fully accounted for: either the index footer validates, or the
// bare stream ends exactly at the last byte — leftover bytes (a truncated
// footer or trailer) are an error instead of being silently ignored.
func decodeArenaStream(data []byte, a *Arena, strict bool) (*Trace, *Arena, error) {
	if a == nil {
		a = &Arena{}
	}
	// Indexed inputs carry exact per-thread table sizes in the footer: skip
	// the measuring pass and fill exactly-sized tables straight from each
	// section. Anything without a usable index — or an index the stream
	// contradicts — takes the measure-then-fill path below, which trusts
	// only the stream.
	if t, err := decodeArenaIndexed(data, a); err == nil {
		return t, a, nil
	}
	d := &bdec{data: data}
	h := d.header()
	if d.err != nil {
		return nil, nil, fmt.Errorf("trace: decode: %w", d.err)
	}
	// Measure pass: walk the thread sections once without decoding values
	// to learn the exact table sizes. The second pass then performs one
	// exact allocation per column and never reallocates, so decode memory
	// equals decoded size (entries are only counted after their bytes are
	// verified present, so a lying count cannot inflate the allocation).
	nrec, nmem, nlock := measureStream(data, d.off, h.NumThreads)
	a.Spans = growEmpty(a.Spans, h.NumThreads)
	a.Records = growEmpty(a.Records, nrec)
	a.Mem = growEmpty(a.Mem, nmem)
	a.Locks = growEmpty(a.Locks, nlock)
	a.MemOff = append(growEmpty(a.MemOff, nrec+1), 0)
	a.LockOff = append(growEmpty(a.LockOff, nrec+1), 0)
	for i := 0; i < h.NumThreads && d.err == nil; i++ {
		a.appendThread(d, h.Version)
	}
	if d.err != nil {
		return nil, nil, fmt.Errorf("trace: decode: %w", d.err)
	}
	if strict && d.off != len(data) {
		return nil, nil, fmt.Errorf("trace: decode: %d trailing bytes after the last thread section (truncated or damaged index?)", len(data)-d.off)
	}
	a.fixup(0, len(a.Records))
	return a.Trace(h.Program, h.Entry, h.Funcs), a, nil
}

// DecodeStrict decodes an untrusted upload, refusing inputs the lenient
// readers would quietly truncate. A v3 container whose footer or trailer
// was cut off still decodes under Decode/DecodeParallel — every record
// precedes the index, so the lenient path sees a complete stream and
// ignores the damaged tail. For ingestion that leniency masks data loss:
// the uploader meant to send an index, so unaccounted-for trailing bytes
// mean the transfer was damaged. Inputs with a valid index decode through
// DecodeParallel at the given parallelism; bare v1/v2 streams must end
// exactly at the last thread section.
func DecodeStrict(ra io.ReaderAt, size int64, parallelism int) (*Trace, error) {
	data, err := readAllAt(ra, size)
	if err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if _, err := NewReader(bytes.NewReader(data), size); err == nil {
		return DecodeParallel(bytes.NewReader(data), size, parallelism)
	}
	t, _, err := decodeArenaStream(data, nil, true)
	return t, err
}

// decodeArenaIndexed decodes a v3 input through its index footer into a:
// exact per-section table sizes, serial section fills. It fails (for the
// caller to fall back) on any input without a valid index or whose stream
// disagrees with it.
func decodeArenaIndexed(data []byte, a *Arena) (*Trace, error) {
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	if err := a.sizeFromIndex(r); err != nil {
		return nil, err
	}
	ri, mi, li := 0, 0, 0
	for i, en := range r.index {
		if err := a.fillSection(data[en.off:en.off+en.len], en, i, ri, mi, li); err != nil {
			return nil, err
		}
		ri += int(en.nrec)
		mi += int(en.nmem)
		li += int(en.nlock)
	}
	return a.Trace(r.hdr.Program, r.hdr.Entry, r.hdr.Funcs), nil
}

// sizeFromIndex sizes the arena tables exactly from an index's per-thread
// counts, reusing existing backing arrays when they are large enough.
// Reused tables are NOT re-zeroed: fillSection stores every field of every
// entry it covers, and the index's counts are exactly the entries filled.
func (a *Arena) sizeFromIndex(r *Reader) error {
	var nrec, nmem, nlock int64
	for _, en := range r.index {
		nrec += en.nrec
		nmem += en.nmem
		nlock += en.nlock
	}
	if nmem > math.MaxUint32 || nlock > math.MaxUint32 {
		return fmt.Errorf("trace: decode: implausible table size")
	}
	a.Spans = resize(a.Spans, len(r.index))
	a.Records = resize(a.Records, int(nrec))
	a.Mem = resize(a.Mem, int(nmem))
	a.Locks = resize(a.Locks, int(nlock))
	a.MemOff = resize(a.MemOff, int(nrec)+1)
	a.LockOff = resize(a.LockOff, int(nrec)+1)
	a.MemOff[0], a.LockOff[0] = 0, 0
	return nil
}

// resize returns s with length n, reusing the backing array when its
// capacity allows. Surviving contents are unspecified; callers overwrite
// every element.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// growEmpty returns s emptied, with capacity at least n.
func growEmpty[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:0]
	}
	return make([]T, 0, n)
}

// measureStream walks every thread section from off, returning the exact
// table sizes a fill pass will produce. Values are skipped, not decoded;
// entries count only once their bytes are verified present, so adversarial
// counts cannot inflate the subsequent allocation. The walk is
// version-independent: v1 and v2 records have identical field structure
// (only the address encoding differs, invisible to a skip).
func measureStream(data []byte, off, nthreads int) (nrec, nmem, nlock int) {
	d := &bdec{data: data, off: off}
	for t := 0; t < nthreads && d.err == nil; t++ {
		d.skipUvarint() // tid
		nr := d.count("record", d.uvarint())
		for j := uint64(0); j < nr && d.err == nil; j++ {
			switch Kind(d.byte()) {
			case KindBBL:
				d.skipUvarint() // func
				d.skipUvarint() // block
				d.skipUvarint() // n
				nm := d.count("mem access", d.uvarint())
				for i := uint64(0); i < nm && d.err == nil; i++ {
					d.skipUvarint()
					d.skipUvarint()
					d.skip(2)
					if d.err == nil {
						nmem++
					}
				}
				nl := d.count("lock op", d.uvarint())
				for i := uint64(0); i < nl && d.err == nil; i++ {
					d.skipUvarint()
					d.skipUvarint()
					d.skip(1)
					if d.err == nil {
						nlock++
					}
				}
			case KindCall:
				d.skipUvarint()
			case KindRet:
			case KindSkip:
				d.skip(1)
				d.skipUvarint()
			default:
				return nrec, nmem, nlock
			}
			if d.err == nil {
				nrec++
			}
		}
	}
	return nrec, nmem, nlock
}

// appendThread decodes one thread section from d onto the end of the arena,
// recording its span. Address deltas reset at the section start in every
// versioned encoding, so sections decode independently.
func (a *Arena) appendThread(d *bdec, version int) {
	tid := int(d.uvarint())
	nr := d.count("record", d.uvarint())
	lo := len(a.Records)
	var prevAddr uint64
	for j := uint64(0); j < nr && d.err == nil; j++ {
		if version >= version2 {
			prevAddr = a.appendRecord2(d, prevAddr)
		} else {
			a.appendRecord1(d)
		}
	}
	// The offset columns are uint32; a single thread cannot legally push the
	// tables past 4G entries (each entry consumes input bytes), but guard
	// the invariant rather than assume it.
	if d.err == nil && (len(a.Mem) > math.MaxUint32 || len(a.Locks) > math.MaxUint32) {
		d.err = fmt.Errorf("implausible table size")
		return
	}
	a.Spans = append(a.Spans, Span{TID: tid, Lo: lo, Hi: len(a.Records)})
}

// appendRecord1 decodes one v1 (raw-address) record onto the arena.
func (a *Arena) appendRecord1(d *bdec) {
	r := Record{Kind: Kind(d.byte())}
	switch r.Kind {
	case KindBBL:
		r.Func = uint32(d.uvarint())
		r.Block = uint32(d.uvarint())
		r.N = d.uvarint()
		nm := d.count("mem access", d.uvarint())
		for i := uint64(0); i < nm && d.err == nil; i++ {
			a.Mem = append(a.Mem, MemAccess{
				Instr: uint16(d.uvarint()),
				Addr:  d.uvarint(),
				Size:  d.byte(),
				Store: d.bool(),
			})
		}
		nl := d.count("lock op", d.uvarint())
		for i := uint64(0); i < nl && d.err == nil; i++ {
			a.Locks = append(a.Locks, LockOp{
				Instr:   uint16(d.uvarint()),
				Addr:    d.uvarint(),
				Release: d.bool(),
			})
		}
	case KindCall:
		r.Callee = uint32(d.uvarint())
	case KindRet:
	case KindSkip:
		r.SkipKind = SkipKind(d.byte())
		r.N = d.uvarint()
	default:
		if d.err == nil {
			d.err = fmt.Errorf("unknown record kind %d", r.Kind)
		}
	}
	a.Records = append(a.Records, r)
	a.MemOff = append(a.MemOff, uint32(len(a.Mem)))
	a.LockOff = append(a.LockOff, uint32(len(a.Locks)))
}

// appendRecord2 decodes one v2/v3 (delta-address) record onto the arena.
func (a *Arena) appendRecord2(d *bdec, prevAddr uint64) uint64 {
	r := Record{Kind: Kind(d.byte())}
	switch r.Kind {
	case KindBBL:
		r.Func = uint32(d.uvarint())
		r.Block = uint32(d.uvarint())
		r.N = d.uvarint()
		nm := d.count("mem access", d.uvarint())
		for i := uint64(0); i < nm && d.err == nil; i++ {
			instr := uint16(d.uvarint())
			addr := prevAddr + uint64(unzigzag(d.uvarint()))
			prevAddr = addr
			a.Mem = append(a.Mem, MemAccess{
				Instr: instr,
				Addr:  addr,
				Size:  d.byte(),
				Store: d.bool(),
			})
		}
		nl := d.count("lock op", d.uvarint())
		for i := uint64(0); i < nl && d.err == nil; i++ {
			instr := uint16(d.uvarint())
			addr := prevAddr + uint64(unzigzag(d.uvarint()))
			prevAddr = addr
			a.Locks = append(a.Locks, LockOp{
				Instr:   instr,
				Addr:    addr,
				Release: d.bool(),
			})
		}
	case KindCall:
		r.Callee = uint32(d.uvarint())
	case KindRet:
	case KindSkip:
		r.SkipKind = SkipKind(d.byte())
		r.N = d.uvarint()
	default:
		if d.err == nil {
			d.err = fmt.Errorf("unknown record kind %d", r.Kind)
		}
	}
	a.Records = append(a.Records, r)
	a.MemOff = append(a.MemOff, uint32(len(a.Mem)))
	a.LockOff = append(a.LockOff, uint32(len(a.Locks)))
	return prevAddr
}

// uvarint2 is the manually inlined varint fast path for the section fill
// loop: one- and two-byte varints (the overwhelming majority — record fields,
// counts, instruction offsets, and small address deltas) decode with two
// bounds checks and no call. (*bdec).uvarint cannot serve here: its slow-path
// call pushes it past the inliner budget, and this loop reads on the order of
// ten varints per record. Returns ok=false without consuming anything when
// the varint is longer than two bytes or the buffer is nearly exhausted;
// uvarintAt finishes those.
func uvarint2(data []byte, off int) (uint64, int, bool) {
	if off+1 < len(data) {
		b0 := data[off]
		if b0 < 0x80 {
			return uint64(b0), off + 1, true
		}
		if b1 := data[off+1]; b1 < 0x80 {
			return uint64(b0&0x7f) | uint64(b1)<<7, off + 2, true
		}
	}
	return 0, off, false
}

// uvarintAt is the arbitrary-length companion to uvarint2. Varints of up to
// eight bytes decode branch-lean from one 64-bit load: the terminator byte
// is found with a trailing-zeros count over the inverted continuation bits,
// and the 7-bit groups are compacted with a fixed shift cascade (an 8-byte
// varint carries at most 56 bits, so the fast path cannot overflow uint64).
// Longer varints and varints within eight bytes of the buffer end take the
// byte loop, which mirrors uvarintSlow's overflow limits. ok=false means
// truncated or overflowing.
func uvarintAt(data []byte, off int) (uint64, int, bool) {
	if off+8 <= len(data) {
		x := binary.LittleEndian.Uint64(data[off:])
		if stop := ^x & 0x8080808080808080; stop != 0 {
			n := bits.TrailingZeros64(stop) >> 3 // terminator byte index
			x &= ^uint64(0) >> (56 - 8*uint(n))
			v := x&0x7f |
				x>>1&(0x7f<<7) |
				x>>2&(0x7f<<14) |
				x>>3&(0x7f<<21) |
				x>>4&(0x7f<<28) |
				x>>5&(0x7f<<35) |
				x>>6&(0x7f<<42) |
				x>>7&(0x7f<<49)
			return v, off + n + 1, true
		}
	}
	var v uint64
	var s uint
	for i := off; i < len(data); i++ {
		b := data[i]
		if b < 0x80 {
			if s >= 63 && (s > 63 || b > 1) {
				return 0, off, false
			}
			return v | uint64(b)<<s, i + 1, true
		}
		v |= uint64(b&0x7f) << s
		s += 7
		if s >= 70 {
			return 0, off, false
		}
	}
	return 0, off, false
}

// fillSection decodes one indexed thread section directly into the arena's
// preallocated tables at the given base offsets. Every caller owns a disjoint
// sub-range of the same backing arrays (the index footer's per-thread table
// sizes are the partition), so section fills allocate nothing and may run in
// parallel. Any disagreement between the stream and the index is an error;
// the caller falls back to the sequential decode, which trusts only the
// stream.
//
// This is the decode hot loop: records are written field by field through a
// pointer into the record table (no build-then-copy, no bulk write barrier),
// every field is stored on every path (the tables may be reused across
// decodes and carry stale values), and varints go through the inlined
// uvarint2 fast path. The section is fully validated against the index
// before returning: record/access/lock counts and the section byte length
// must all match exactly.
func (a *Arena) fillSection(data []byte, en indexEntry, span, recLo, memLo, lockLo int) error {
	d := &bdec{data: data}
	tid := int(d.uvarint())
	nr := d.uvarint()
	if d.err != nil {
		return fmt.Errorf("trace: thread section %d (tid %d): %w", span, en.tid, d.err)
	}
	if tid != en.tid || nr != uint64(en.nrec) {
		return fmt.Errorf("trace: thread section %d: stream declares tid %d with %d records, index says tid %d with %d",
			span, tid, nr, en.tid, en.nrec)
	}
	ri, mi, li := recLo, memLo, lockLo
	memEnd, lockEnd := memLo+int(en.nmem), lockLo+int(en.nlock)
	off := d.off
	var prevAddr uint64
	var ok bool
	for j := int64(0); j < en.nrec; j++ {
		if off >= len(data) {
			return fmt.Errorf("trace: thread section %d (tid %d): %w", span, en.tid, io.ErrUnexpectedEOF)
		}
		kind := Kind(data[off])
		off++
		r := &a.Records[ri]
		r.Kind = kind
		switch kind {
		case KindBBL:
			// Fused header read: func/block/n/nmem are almost always one
			// byte each, so one 32-bit load plus a continuation-bit test
			// replaces four varint reads.
			var fn, blk, n, cnt uint64
			fused := false
			if off+4 <= len(data) {
				if x := binary.LittleEndian.Uint32(data[off:]); x&0x80808080 == 0 {
					fn, blk, n, cnt = uint64(x&0xff), uint64(x>>8&0xff), uint64(x>>16&0xff), uint64(x>>24)
					off += 4
					fused = true
				}
			}
			if !fused {
				if fn, off, ok = uvarint2(data, off); !ok {
					if fn, off, ok = uvarintAt(data, off); !ok {
						return a.badVarint(span, en)
					}
				}
				if blk, off, ok = uvarint2(data, off); !ok {
					if blk, off, ok = uvarintAt(data, off); !ok {
						return a.badVarint(span, en)
					}
				}
				if n, off, ok = uvarint2(data, off); !ok {
					if n, off, ok = uvarintAt(data, off); !ok {
						return a.badVarint(span, en)
					}
				}
				if cnt, off, ok = uvarint2(data, off); !ok {
					if cnt, off, ok = uvarintAt(data, off); !ok {
						return a.badVarint(span, en)
					}
				}
			}
			r.Func, r.Block, r.N = uint32(fn), uint32(blk), n
			r.SkipKind, r.Callee = 0, 0
			if cnt > maxCount || cnt > uint64(memEnd-mi) {
				return fmt.Errorf("trace: thread section %d: stream carries more accesses than the index declares", span)
			}
			m0 := mi
			for i := uint64(0); i < cnt; i++ {
				var instr uint64
				if instr, off, ok = uvarint2(data, off); !ok {
					if instr, off, ok = uvarintAt(data, off); !ok {
						return a.badVarint(span, en)
					}
				}
				// Address deltas are the one routinely multi-byte varint, so
				// the 64-bit-load cascade (see uvarintAt) is written out here
				// rather than called: this line runs once per access and the
				// call overhead alone was a measurable slice of decode time.
				var delta uint64
				if off+8 <= len(data) {
					x := binary.LittleEndian.Uint64(data[off:])
					if stop := ^x & 0x8080808080808080; stop != 0 {
						nb := bits.TrailingZeros64(stop) >> 3
						x &= ^uint64(0) >> (56 - 8*uint(nb))
						delta = x&0x7f |
							x>>1&(0x7f<<7) |
							x>>2&(0x7f<<14) |
							x>>3&(0x7f<<21) |
							x>>4&(0x7f<<28) |
							x>>5&(0x7f<<35) |
							x>>6&(0x7f<<42) |
							x>>7&(0x7f<<49)
						off += nb + 1
					} else if delta, off, ok = uvarintAt(data, off); !ok {
						return a.badVarint(span, en)
					}
				} else if delta, off, ok = uvarintAt(data, off); !ok {
					return a.badVarint(span, en)
				}
				if off+1 >= len(data) {
					return fmt.Errorf("trace: thread section %d (tid %d): %w", span, en.tid, io.ErrUnexpectedEOF)
				}
				addr := prevAddr + uint64(unzigzag(delta))
				prevAddr = addr
				a.Mem[mi] = MemAccess{Instr: uint16(instr), Addr: addr, Size: data[off], Store: data[off+1] != 0}
				off += 2
				mi++
			}
			// Conditional nil store: on arena reuse the field is usually
			// already nil, and skipping the store skips its write barrier.
			if mi > m0 {
				r.Mem = a.Mem[m0:mi]
			} else if r.Mem != nil {
				r.Mem = nil
			}
			if cnt, off, ok = uvarint2(data, off); !ok {
				if cnt, off, ok = uvarintAt(data, off); !ok {
					return a.badVarint(span, en)
				}
			}
			if cnt > maxCount || cnt > uint64(lockEnd-li) {
				return fmt.Errorf("trace: thread section %d: stream carries more lock ops than the index declares", span)
			}
			l0 := li
			for i := uint64(0); i < cnt; i++ {
				var instr, delta uint64
				if instr, off, ok = uvarint2(data, off); !ok {
					if instr, off, ok = uvarintAt(data, off); !ok {
						return a.badVarint(span, en)
					}
				}
				if delta, off, ok = uvarint2(data, off); !ok {
					if delta, off, ok = uvarintAt(data, off); !ok {
						return a.badVarint(span, en)
					}
				}
				if off >= len(data) {
					return fmt.Errorf("trace: thread section %d (tid %d): %w", span, en.tid, io.ErrUnexpectedEOF)
				}
				addr := prevAddr + uint64(unzigzag(delta))
				prevAddr = addr
				a.Locks[li] = LockOp{Instr: uint16(instr), Addr: addr, Release: data[off] != 0}
				off++
				li++
			}
			if li > l0 {
				r.Locks = a.Locks[l0:li]
			} else if r.Locks != nil {
				r.Locks = nil
			}
		case KindCall:
			var callee uint64
			if callee, off, ok = uvarint2(data, off); !ok {
				if callee, off, ok = uvarintAt(data, off); !ok {
					return a.badVarint(span, en)
				}
			}
			r.Func, r.Block, r.N = 0, 0, 0
			r.SkipKind, r.Callee = 0, uint32(callee)
			r.clearViews()
		case KindRet:
			r.Func, r.Block, r.N = 0, 0, 0
			r.SkipKind, r.Callee = 0, 0
			r.clearViews()
		case KindSkip:
			if off >= len(data) {
				return fmt.Errorf("trace: thread section %d (tid %d): %w", span, en.tid, io.ErrUnexpectedEOF)
			}
			sk := SkipKind(data[off])
			off++
			var n uint64
			if n, off, ok = uvarint2(data, off); !ok {
				if n, off, ok = uvarintAt(data, off); !ok {
					return a.badVarint(span, en)
				}
			}
			r.Func, r.Block, r.N = 0, 0, n
			r.SkipKind, r.Callee = sk, 0
			r.clearViews()
		default:
			return fmt.Errorf("trace: thread section %d (tid %d): unknown record kind %d", span, en.tid, kind)
		}
		a.MemOff[ri+1] = uint32(mi)
		a.LockOff[ri+1] = uint32(li)
		ri++
	}
	if off != len(data) || mi != memEnd || li != lockEnd {
		return fmt.Errorf("trace: thread section %d (tid %d): stream and index disagree on section contents", span, en.tid)
	}
	a.Spans[span] = Span{TID: tid, Lo: recLo, Hi: ri}
	return nil
}

// clearViews nils a record's Mem/Locks view slices, skipping the store (and
// its write barrier) when they already are — the common case when the arena
// is reused across decodes of similar traces.
func (r *Record) clearViews() {
	if r.Mem != nil {
		r.Mem = nil
	}
	if r.Locks != nil {
		r.Locks = nil
	}
}

// badVarint is fillSection's shared truncated/overflowing-varint error.
func (a *Arena) badVarint(span int, en indexEntry) error {
	return fmt.Errorf("trace: thread section %d (tid %d): truncated or overflowing varint", span, en.tid)
}
