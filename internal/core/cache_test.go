package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"threadfuser/internal/simt"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
	"threadfuser/internal/warp"
)

// cacheTestTrace builds a small two-thread trace with a divergent branch and
// memory traffic, so the cached Report has non-trivial content to compare.
func cacheTestTrace() *trace.Trace {
	t := &trace.Trace{
		Program: "cachetest",
		Funcs: []trace.FuncInfo{
			{Name: "main", Blocks: []trace.BlockInfo{{NInstr: 2}, {NInstr: 3}, {NInstr: 1}}},
		},
	}
	for tid := 0; tid < 2; tid++ {
		recs := []trace.Record{
			{Kind: trace.KindCall, Callee: 0},
			{Kind: trace.KindBBL, Func: 0, Block: 0, N: 2, Mem: []trace.MemAccess{
				{Instr: 0, Addr: vm.GlobalBase + 256*uint64(tid), Size: 8},
			}},
		}
		if tid == 0 {
			recs = append(recs, trace.Record{Kind: trace.KindBBL, Func: 0, Block: 1, N: 3})
		}
		recs = append(recs,
			trace.Record{Kind: trace.KindBBL, Func: 0, Block: 2, N: 1},
			trace.Record{Kind: trace.KindRet},
		)
		t.Threads = append(t.Threads, &trace.ThreadTrace{TID: tid, Records: recs})
	}
	return t
}

// reportJSON canonicalizes a report for comparison.
func reportJSON(t *testing.T, r *Report) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// nopListener satisfies simt.Listener without observing anything.
type nopListener struct{}

func (nopListener) OnBlock(*simt.BlockExec) {}

// countReplays installs the replay hook for the duration of the test and
// returns a pointer to the invocation counter.
func countReplays(t *testing.T) *int {
	t.Helper()
	n := 0
	testHookReplay = func() { n++ }
	t.Cleanup(func() { testHookReplay = nil })
	return &n
}

func testOpts() Options {
	o := Defaults()
	o.WarpSize = 2
	return o
}

// TestCacheHitSkipsReplay is the headline acceptance test: the second
// identical analysis must be served from the cache with zero replay
// invocations, and return a report identical to the computed one.
func TestCacheHitSkipsReplay(t *testing.T) {
	c := NewCache(t.TempDir())
	tr := cacheTestTrace()
	replays := countReplays(t)

	first, hit, err := AnalyzeCached(c, tr, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first analysis reported a cache hit")
	}
	if *replays != 1 {
		t.Fatalf("first analysis ran %d replays, want 1", *replays)
	}

	second, hit, err := AnalyzeCached(c, tr, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second identical analysis missed the cache")
	}
	if *replays != 1 {
		t.Fatalf("cache hit ran a replay (%d total, want 1)", *replays)
	}
	aj, bj := reportJSON(t, first), reportJSON(t, second)
	if aj != bj {
		t.Errorf("cached report differs from computed report:\n%s\nvs\n%s", aj, bj)
	}
}

// TestCacheKeyDependsOnContentNotPointer: re-decoding the same trace into a
// fresh value (new pointers throughout) must still hit.
func TestCacheKeyDependsOnContentNotPointer(t *testing.T) {
	c := NewCache(t.TempDir())
	tr := cacheTestTrace()
	if _, _, err := AnalyzeCached(c, tr, testOpts()); err != nil {
		t.Fatal(err)
	}
	clone := cacheTestTrace()
	_, hit, err := AnalyzeCached(c, clone, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("structurally identical trace missed the cache")
	}
}

// TestCacheKeyDistinguishesOptions: any semantic option change must miss.
func TestCacheKeyDistinguishesOptions(t *testing.T) {
	c := NewCache(t.TempDir())
	tr := cacheTestTrace()
	if _, _, err := AnalyzeCached(c, tr, testOpts()); err != nil {
		t.Fatal(err)
	}
	variants := []func(*Options){
		func(o *Options) { o.WarpSize = 4 },
		func(o *Options) { o.Formation = warp.Strided },
		func(o *Options) { o.EmulateLocks = true },
		func(o *Options) { o.EmulateLocks = true; o.LockReconvergence = simt.ReconvergeAtFunctionExit },
	}
	for i, mutate := range variants {
		o := testOpts()
		mutate(&o)
		_, hit, err := AnalyzeCached(c, tr, o)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if hit {
			t.Errorf("variant %d: option change hit the cache", i)
		}
	}
}

// TestCacheKeyIgnoresParallelism: serial and parallel replay are
// bit-identical (a tfcheck invariant), so Parallelism must not split keys.
func TestCacheKeyIgnoresParallelism(t *testing.T) {
	c := NewCache(t.TempDir())
	tr := cacheTestTrace()
	o := testOpts()
	o.Parallelism = 1
	if _, _, err := AnalyzeCached(c, tr, o); err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 4
	_, hit, err := AnalyzeCached(c, tr, o)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("changing only Parallelism missed the cache")
	}
}

// TestCacheListenerBypass: a listener must observe a real replay, so
// listener runs neither read nor populate the cache.
func TestCacheListenerBypass(t *testing.T) {
	c := NewCache(t.TempDir())
	tr := cacheTestTrace()
	if _, _, err := AnalyzeCached(c, tr, testOpts()); err != nil {
		t.Fatal(err)
	}
	replays := countReplays(t)
	o := testOpts()
	o.Listener = nopListener{}
	_, hit, err := AnalyzeCached(c, tr, o)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("listener run reported a cache hit")
	}
	if *replays != 1 {
		t.Errorf("listener run performed %d replays, want 1", *replays)
	}
}

// TestCacheCorruptionRecomputes: garbage entries, wrong schema tags, and
// truncated files are silent misses, never errors.
func TestCacheCorruptionRecomputes(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	tr := cacheTestTrace()
	want, _, err := AnalyzeCached(c, tr, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one cache entry, got %v (err %v)", entries, err)
	}
	path := entries[0]
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, body := range map[string][]byte{
		"garbage":      []byte("not json at all \x00\xff"),
		"empty":        {},
		"truncated":    good[:len(good)/3],
		"wrong-schema": []byte(`{"schema":999,"report":{"Program":"evil"}}`),
		"null-report":  []byte(`{"schema":1,"report":null}`),
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, body, 0o644); err != nil {
				t.Fatal(err)
			}
			got, hit, err := AnalyzeCached(c, tr, testOpts())
			if err != nil {
				t.Fatalf("corrupt cache entry surfaced an error: %v", err)
			}
			if hit {
				t.Fatal("corrupt cache entry reported a hit")
			}
			if reportJSON(t, got) != reportJSON(t, want) {
				t.Error("recomputed report differs from original")
			}
		})
	}
	// The last recompute must have healed the entry.
	if _, hit, err := AnalyzeCached(c, tr, testOpts()); err != nil || !hit {
		t.Errorf("entry not healed after recompute: hit=%v err=%v", hit, err)
	}
}

// TestCacheUnwritableDirDegrades: a cache rooted somewhere unusable still
// analyzes correctly — it just never hits.
func TestCacheUnwritableDirDegrades(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache(filepath.Join(file, "sub")) // parent is a file: MkdirAll fails
	tr := cacheTestTrace()
	for i := 0; i < 2; i++ {
		_, hit, err := AnalyzeCached(c, tr, testOpts())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if hit {
			t.Fatalf("run %d: impossible hit from unwritable cache", i)
		}
	}
}

// TestSessionCacheHitSkipsPrepAndReplay: the Session path must consult the
// cache before doing any preparation work at all.
func TestSessionCacheHitSkipsPrepAndReplay(t *testing.T) {
	c := NewCache(t.TempDir())
	tr := cacheTestTrace()
	if _, _, err := AnalyzeCached(c, tr, testOpts()); err != nil {
		t.Fatal(err)
	}
	replays := countReplays(t)
	sess := NewSession()
	sess.SetCache(c)
	r, err := sess.Analyze(cacheTestTrace(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if *replays != 0 {
		t.Errorf("session cache hit performed %d replays, want 0", *replays)
	}
	// The hit must not even have prepared the trace.
	if len(sess.preps) != 0 {
		t.Errorf("session cache hit prepared %d traces, want 0", len(sess.preps))
	}
	want, err := Analyze(cacheTestTrace(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if reportJSON(t, r) != reportJSON(t, want) {
		t.Error("session cache hit returned a different report")
	}
}

// TestSessionCachePopulates: a session miss stores the entry, so a later
// plain AnalyzeCached hits.
func TestSessionCachePopulates(t *testing.T) {
	c := NewCache(t.TempDir())
	sess := NewSession()
	sess.SetCache(c)
	if _, err := sess.Analyze(cacheTestTrace(), testOpts()); err != nil {
		t.Fatal(err)
	}
	_, hit, err := AnalyzeCached(c, cacheTestTrace(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("session miss did not populate the cache")
	}
}

// TestOpenFlagCache covers the shared CLI flag convention.
func TestOpenFlagCache(t *testing.T) {
	if c := OpenFlagCache(false, ""); c != nil {
		t.Error("cache open despite both flags unset")
	}
	if c := OpenFlagCache(true, ""); c == nil || c.Dir() != DefaultCacheDir() {
		t.Errorf("OpenFlagCache(true, \"\") = %+v, want default dir", c)
	}
	if c := OpenFlagCache(false, "/tmp/x"); c == nil || c.Dir() != "/tmp/x" {
		t.Errorf("OpenFlagCache(false, /tmp/x) = %+v, want /tmp/x", c)
	}
	if c := OpenFlagCache(true, "/tmp/y"); c == nil || c.Dir() != "/tmp/y" {
		t.Errorf("explicit dir lost: %+v", c)
	}
}

// TestNilCachePassthrough: AnalyzeCached with a nil cache is plain Analyze.
func TestNilCachePassthrough(t *testing.T) {
	tr := cacheTestTrace()
	got, hit, err := AnalyzeCached(nil, tr, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("nil cache reported a hit")
	}
	want, err := Analyze(tr, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.PerFunction, want.PerFunction) || got.Efficiency != want.Efficiency {
		t.Error("nil-cache AnalyzeCached differs from Analyze")
	}
}
