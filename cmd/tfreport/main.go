// Command tfreport regenerates the paper's evaluation artifacts: every
// figure and table has an experiment id, and -exp all runs the whole
// evaluation. By default the experiments run at reduced thread counts so
// the full set completes in seconds; -full uses the paper's Table-I counts.
//
// Usage:
//
//	tfreport -exp fig1
//	tfreport -exp fig5a -seed 7
//	tfreport -exp all
//	tfreport -exp fig6 -threads 512
package main

import (
	"flag"
	"fmt"
	"os"

	"threadfuser/internal/core"
	"threadfuser/internal/prof"
	"threadfuser/internal/report"
)

// experiments maps ids to runners, in the paper's presentation order.
var experiments = []struct {
	id   string
	desc string
	run  func(report.Scale) (fmt.Stringer, error)
}{
	{"fig1", "SIMT efficiency of the 36 workloads at warp 8/16/32", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Fig1(s))
	}},
	{"table1", "the workload catalog", func(s report.Scale) (fmt.Stringer, error) {
		return renderer{report.Table1().Render()}, nil
	}},
	{"fig5a", "SIMT-efficiency correlation vs the hardware oracle, O0-O3", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Fig5a(s))
	}},
	{"fig5b", "heap-transaction correlation vs the hardware oracle, O0-O3", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Fig5b(s))
	}},
	{"fig6", "projected speedups vs the multicore CPU baseline", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Fig6(s))
	}},
	{"fig7", "HDSearch-Midtier per-function case study and fix", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Fig7(s))
	}},
	{"fig8", "traced vs skipped instructions (microservices)", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Fig8(s))
	}},
	{"fig9", "warp efficiency with intra-warp locking emulated", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Fig9(s))
	}},
	{"fig10", "memory transactions per load/store, heap and stack", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Fig10(s))
	}},
	{"table2", "accuracy summary vs XAPP", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Table2(s))
	}},
	{"ext1", "extension: active-lane occupancy distributions", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Ext1(s))
	}},
	{"ext2", "extension: SM-count scaling sweep", func(s report.Scale) (fmt.Stringer, error) {
		return wrap(report.Ext2(s))
	}},
}

// renderable is any experiment dataset with a Render method.
type renderable interface{ Render() string }

type renderer struct{ s string }

func (r renderer) String() string { return r.s }

func wrap[T renderable](d T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return renderer{d.Render()}, nil
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig1, table1, fig5a, fig5b, fig6, fig7, fig8, fig9, fig10, table2, ext1, ext2, all)")
		threads  = flag.Int("threads", 0, "override every workload's thread count")
		full     = flag.Bool("full", false, "run at the paper's Table-I thread counts (slow)")
		seed     = flag.Int64("seed", 1, "input-generation seed")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 0, "worker count for experiment cells and replay (0 = all cores, 1 = serial; results are identical)")
		useCache = flag.Bool("cache", false, "serve identical (trace, options) analyses from the on-disk report cache")
		cacheDir = flag.String("cache-dir", "", "report cache directory (implies -cache; default $XDG_CACHE_HOME/threadfuser)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tfreport: unexpected argument %q (experiments are selected with -exp)\n", flag.Arg(0))
		os.Exit(2)
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.id, e.desc)
		}
		fmt.Println("  all      every experiment above, in order")
		if *exp == "" {
			os.Exit(2)
		}
		return
	}

	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tfreport:", err)
		os.Exit(1)
	}
	defer stop()

	scale := report.Scale{
		Threads:  *threads,
		Full:     *full,
		Seed:     *seed,
		Parallel: *parallel,
		Cache:    core.OpenFlagCache(*useCache, *cacheDir),
	}
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran = true
		out, err := e.run(scale)
		if err != nil {
			stop()
			fmt.Fprintf(os.Stderr, "tfreport: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "tfreport: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
}
