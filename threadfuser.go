// Package threadfuser is a SIMT analysis framework for MIMD programs: a Go
// reproduction of "ThreadFuser: A SIMT Analysis Framework for MIMD
// Programs" (MICRO 2024).
//
// ThreadFuser predicts how a multi-threaded CPU program would behave on
// SIMT hardware (a GPU, or a CPU-adjacent SIMT design) without porting it:
// it collects dynamic per-thread traces, reconstructs per-function dynamic
// control-flow graphs, computes immediate post-dominators, batches threads
// into warps, and replays the traces under SIMT-stack semantics. The result
// is the program's projected SIMT efficiency, a per-function breakdown that
// pinpoints divergence bottlenecks, a 32-byte-transaction memory-divergence
// profile, and — through the warp-trace generator and the bundled SIMT
// timing simulator — cycle-level speedup projections against a multicore
// CPU baseline.
//
// The facade in this package covers the common paths:
//
//	w, _ := threadfuser.Workload("other.pigz")
//	res, _ := threadfuser.AnalyzeWorkload(w, threadfuser.Options{WarpSize: 32})
//	fmt.Printf("SIMT efficiency: %.1f%%\n", res.Efficiency*100)
//
// Deeper control lives in the internal packages: internal/core (the
// analyzer), internal/vm (the tracer), internal/hwsim (the lockstep
// hardware oracle), internal/simtrace + internal/gpusim (warp traces and
// timing simulation), and internal/workloads (the 36 Table-I workloads).
package threadfuser

import (
	"fmt"

	"threadfuser/internal/analysis"
	"threadfuser/internal/check"
	"threadfuser/internal/core"
	"threadfuser/internal/cpusim"
	"threadfuser/internal/gpusim"
	"threadfuser/internal/simtrace"
	"threadfuser/internal/staticlock"
	"threadfuser/internal/staticmem"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
	"threadfuser/internal/workloads"
)

// Options configure an analysis.
type Options struct {
	// WarpSize is the modelled SIMD width (default 32, the paper's).
	WarpSize int
	// Threads overrides the workload's default thread count.
	Threads int
	// Seed drives deterministic input generation.
	Seed int64
	// EmulateLocks serializes contended intra-warp critical sections
	// (figure 9); by default fine-grain locking is assumed.
	EmulateLocks bool
	// Strided / GreedyBatching select alternative warp formations.
	Strided        bool
	GreedyBatching bool
	// Parallelism bounds the replay worker pool: 0 uses one worker per
	// core, 1 forces serial replay. Parallel and serial replay produce
	// bit-identical reports.
	Parallelism int
	// Cache, if set, is consulted before analyzing and populated after: a
	// hit returns the stored report without replaying the trace. Use
	// OpenCache or WithCache. Parallelism does not affect cache keys
	// (serial and parallel replay are bit-identical).
	Cache *Cache
}

// Cache is a content-addressed on-disk report cache keyed by trace content
// and analysis options (see internal/core). Corrupt or stale entries degrade
// to recomputation, never errors.
type Cache = core.Cache

// OpenCache returns a report cache rooted at dir; an empty dir selects the
// per-user default (os.UserCacheDir()/threadfuser).
func OpenCache(dir string) *Cache {
	if dir == "" {
		dir = core.DefaultCacheDir()
	}
	return core.NewCache(dir)
}

// WithCache returns a copy of the options that routes analyses through c.
func (o Options) WithCache(c *Cache) Options {
	o.Cache = c
	return o
}

func (o Options) coreOptions() core.Options {
	opts := core.Defaults()
	if o.WarpSize != 0 {
		opts.WarpSize = o.WarpSize
	}
	opts.EmulateLocks = o.EmulateLocks
	if o.Strided {
		opts.Formation = warp.Strided
	}
	if o.GreedyBatching {
		opts.Formation = warp.GreedyEntry
	}
	opts.Parallelism = o.Parallelism
	return opts
}

// Report is the analyzer's projection for one program (see
// internal/core.Report for the full field documentation).
type Report = core.Report

// FuncReport is one row of the per-function breakdown.
type FuncReport = core.FuncReport

// ExcludeFunctions returns a copy of the trace with every invocation of the
// named functions (and their callees) removed and accounted as skipped —
// the tracer's selective-exclusion capability from the paper's section III.
func ExcludeFunctions(tr *trace.Trace, names ...string) (*trace.Trace, error) {
	return trace.ExcludeFunctions(tr, names...)
}

// OnlyFunctions returns a copy of the trace restricted to the named
// functions and their callees.
func OnlyFunctions(tr *trace.Trace, names ...string) (*trace.Trace, error) {
	return trace.OnlyFunctions(tr, names...)
}

// Workload looks up one of the bundled Table-I workloads by name, e.g.
// "other.pigz", "paropoly.nbody" or "usuite.hdsearch.mid". Workloads lists
// them all.
func Workload(name string) (*workloads.Workload, error) {
	return workloads.ByName(name)
}

// Workloads returns the full bundled catalog in Table-I order.
func Workloads() []*workloads.Workload {
	return workloads.All()
}

// Trace runs the tracer over a workload and returns the MIMD trace, the
// input the analyzer (and the .tft file format) consume.
func Trace(w *workloads.Workload, o Options) (*trace.Trace, error) {
	inst, err := w.Instantiate(workloads.Config{Seed: o.Seed, Threads: o.Threads})
	if err != nil {
		return nil, err
	}
	return inst.Trace()
}

// Analyze runs the ThreadFuser analyzer over a previously collected trace,
// consulting the configured report cache first if one is set.
func Analyze(tr *trace.Trace, o Options) (*Report, error) {
	r, _, err := core.AnalyzeCached(o.Cache, tr, o.coreOptions())
	return r, err
}

// AnalyzeWorkload traces and analyzes a bundled workload in one step.
func AnalyzeWorkload(w *workloads.Workload, o Options) (*Report, error) {
	tr, err := Trace(w, o)
	if err != nil {
		return nil, err
	}
	return Analyze(tr, o)
}

// LintReport is the lint engine's output for one trace: structured findings
// sorted by severity, plus per-severity counts (see internal/analysis).
type LintReport = analysis.Report

// LintFinding is one diagnostic from the lint engine.
type LintFinding = analysis.Finding

// Severity ranks lint findings.
type Severity = analysis.Severity

// Lint finding severities, ascending.
const (
	SevInfo    = analysis.SevInfo
	SevWarning = analysis.SevWarning
	SevError   = analysis.SevError
)

func (o Options) analysisOptions() analysis.Options {
	opts := analysis.Options{WarpSize: o.WarpSize, Parallelism: o.Parallelism, Cache: o.Cache}
	if o.Strided {
		opts.Formation = warp.Strided
	}
	if o.GreedyBatching {
		opts.Formation = warp.GreedyEntry
	}
	return opts
}

// Lint runs the multi-pass analysis engine (trace sanitizer, lockset race
// detector, divergence lint and lock lint) over a previously collected
// trace. Problems with the trace become findings, not errors; the returned
// error covers only invalid options.
func Lint(tr *trace.Trace, o Options) (*LintReport, error) {
	return analysis.Run(tr, o.analysisOptions())
}

// LintWorkload traces and lints a bundled workload in one step. Unlike Lint
// on a bare trace, the workload's IR is available, so the static
// oracle-vs-replay pass runs too.
func LintWorkload(w *workloads.Workload, o Options) (*LintReport, error) {
	inst, err := w.Instantiate(workloads.Config{Seed: o.Seed, Threads: o.Threads})
	if err != nil {
		return nil, err
	}
	tr, err := inst.Trace()
	if err != nil {
		return nil, err
	}
	opts := o.analysisOptions()
	opts.Prog = inst.Prog
	return analysis.Run(tr, opts)
}

// StaticReport is the static SIMT oracle's projection for one program:
// per-branch uniformity classifications with divergence causes, divergent
// reconvergence regions, and DARM-style melding opportunities (see
// internal/staticsimt).
type StaticReport = staticsimt.Result

// StaticWorkload runs the static SIMT oracle over a bundled workload's IR.
// No trace is collected — the oracle predicts divergence from the program
// text alone, soundly: a branch it classifies uniform never splits a warp
// in any replay (the "staticuniform" check invariant).
func StaticWorkload(w *workloads.Workload, o Options) (*StaticReport, error) {
	inst, err := w.Instantiate(workloads.Config{Seed: o.Seed, Threads: o.Threads})
	if err != nil {
		return nil, err
	}
	return staticsimt.Analyze(inst.Prog, staticsimt.Options{}), nil
}

// StaticLockReport is the static concurrency oracle's projection for one
// program: must-hold locksets at every memory access, the static lock-order
// graph with deadlock-cycle candidates, race-candidate address classes, and
// acquires under divergent control (see internal/staticlock).
type StaticLockReport = staticlock.Result

// StaticLockWorkload runs the static concurrency oracle over a bundled
// workload's IR. No trace is collected — the oracle over-approximates the
// dynamic lockset and lock-order passes: every dynamic race and deadlock
// cycle lands in a static candidate (the "staticlockset" check invariant),
// and static-only candidates are the precision gap.
func StaticLockWorkload(w *workloads.Workload, o Options) (*StaticLockReport, error) {
	inst, err := w.Instantiate(workloads.Config{Seed: o.Seed, Threads: o.Threads})
	if err != nil {
		return nil, err
	}
	return staticlock.Analyze(inst.Prog), nil
}

// StaticMemReport is the static memory oracle's projection for one program:
// every load/store site classified by per-lane tid-stride (broadcast,
// coalesced, strided, scattered) with its static transactions-per-warp bound
// and segment claim (see internal/staticmem).
type StaticMemReport = staticmem.Result

// StaticMemWorkload runs the static memory oracle over a bundled workload's
// IR. No trace is collected — the oracle over-approximates the replay's
// 32-byte-sector coalescing: no warp execution of a site ever exceeds its
// static transaction bound (the "staticcoalesce" check invariant), and
// scattered classifications the replay observes coalesced are the precision
// gap.
func StaticMemWorkload(w *workloads.Workload, o Options) (*StaticMemReport, error) {
	inst, err := w.Instantiate(workloads.Config{Seed: o.Seed, Threads: o.Threads})
	if err != nil {
		return nil, err
	}
	return staticmem.Analyze(inst.Prog), nil
}

// CheckReport is the verification engine's outcome for one trace: the
// properties that ran, the number of assertions evaluated, and every failed
// invariant (see internal/check).
type CheckReport = check.Report

// CheckViolation is one failed analyzer invariant.
type CheckViolation = check.Violation

func (o Options) checkOptions() check.Options {
	opts := check.Options{Cache: o.Cache}
	if o.WarpSize != 0 {
		opts.WarpSizes = []int{o.WarpSize}
	}
	if o.Parallelism > 1 {
		opts.Parallelism = []int{1, o.Parallelism}
	}
	if o.Strided {
		opts.Formations = []warp.Formation{warp.Strided}
	}
	if o.GreedyBatching {
		opts.Formations = []warp.Formation{warp.GreedyEntry}
	}
	return opts
}

// Check runs the verification engine over a previously collected trace:
// every invariant of the catalog (replay determinism, width-1 efficiency,
// instruction conservation, lock monotonicity, coalescing bounds, codec
// round trips, equation-1 recombination, formation partitioning) across the
// configuration matrix. A zero Options checks the default matrix (warp
// widths 1/4/32 × serial and parallel replay); setting WarpSize or
// Parallelism narrows the matrix to those points. Failed invariants are
// violations in the report; the returned error covers only invalid options.
func Check(name string, tr *trace.Trace, o Options) (*CheckReport, error) {
	return check.Run(name, tr, o.checkOptions())
}

// CheckWorkload traces and verifies a bundled workload in one step. The
// workload's IR is attached, so the "staticuniform" invariant (static
// oracle soundness) is enforced in addition to the trace-only catalog.
func CheckWorkload(w *workloads.Workload, o Options) (*CheckReport, error) {
	inst, err := w.Instantiate(workloads.Config{Seed: o.Seed, Threads: o.Threads})
	if err != nil {
		return nil, err
	}
	tr, err := inst.Trace()
	if err != nil {
		return nil, err
	}
	opts := o.checkOptions()
	opts.Prog = inst.Prog
	return check.Run(w.Name, tr, opts)
}

// Projection is a cycle-level speedup projection from the simulator path.
type Projection struct {
	// GPUCycles and CPUCycles are the simulated execution times on the
	// RTX-3070-like SIMT machine and the multicore CPU baseline.
	GPUCycles uint64
	CPUCycles uint64
	// Speedup is CPUCycles/GPUCycles.
	Speedup float64
	// GPUIPC is lane-instructions per cycle on the SIMT machine.
	GPUIPC float64
	// L1HitRate / L2HitRate come from the SIMT memory hierarchy.
	L1HitRate float64
	L2HitRate float64
}

// Project generates warp-based instruction traces for a workload, runs them
// through the SIMT timing simulator, runs the same MIMD trace through the
// CPU baseline, and returns the projected speedup (the figure-6 pipeline).
func Project(w *workloads.Workload, o Options) (*Projection, error) {
	inst, err := w.Instantiate(workloads.Config{Seed: o.Seed, Threads: o.Threads})
	if err != nil {
		return nil, err
	}
	tr, err := inst.Trace()
	if err != nil {
		return nil, err
	}
	warpSize := o.WarpSize
	if warpSize == 0 {
		warpSize = 32
	}
	kt, err := simtrace.Generate(inst.Prog, tr, warpSize)
	if err != nil {
		return nil, err
	}
	g, err := gpusim.Run(kt, gpusim.RTX3070())
	if err != nil {
		return nil, err
	}
	c, err := cpusim.Run(tr, cpusim.Xeon20())
	if err != nil {
		return nil, err
	}
	if g.Cycles == 0 {
		return nil, fmt.Errorf("threadfuser: degenerate simulation (0 cycles)")
	}
	return &Projection{
		GPUCycles: g.Cycles,
		CPUCycles: c.Cycles,
		Speedup:   float64(c.Cycles) / float64(g.Cycles),
		GPUIPC:    g.IPC,
		L1HitRate: g.L1HitRate,
		L2HitRate: g.L2HitRate,
	}, nil
}
