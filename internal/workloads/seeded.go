package workloads

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// Seeded-defect workloads for the tflint analysis engine. They are not
// Table-I entries (PaperThreads 0): each plants one specific synchronization
// bug so the lockset and lock-lint passes have a known-dirty target, while
// staying deterministic enough for the semantics-preservation tests.

// buildSeededRace updates counters[k&3] under locks[k&3] — properly
// synchronized — and then bumps racy[k&3] with no lock held at all, the
// textbook empty-lockset data race.
func buildSeededRace(cfg Config) (*ir.Program, SetupFn, error) {
	iters := cfg.scale(16)

	pb := ir.NewBuilder("seededrace")
	w := pb.NewFunc("worker")
	pre := w.NewBlock("pre")
	// Args: r0=locks, r1=counters, r2=racy (4 slots each).
	// r3 = loop counter, r4 = slot index, r5 = &locks[slot], r6/r7 = values.
	l := loopN(w, pre, "mix", 3, 0, im(int64(iters)))
	l.Body.Mov(rg(4), rg(3)).
		And(rg(4), im(3)).
		Mov(rg(5), rg(4)).
		Mul(rg(5), im(8)).
		Add(rg(5), rg(0)).
		Lock(mem8(5, 0)).
		Mov(rg(6), idx8(1, 4, 8, 0)). // counters[slot]
		Add(rg(6), tid()).
		Mov(idx8(1, 4, 8, 0), rg(6)).
		Unlock(mem8(5, 0)).
		Mov(rg(7), idx8(2, 4, 8, 0)). // racy[slot], no lock held
		Add(rg(7), im(1)).
		Mov(idx8(2, 4, 8, 0), rg(7))
	l.Next(l.Body)
	l.Exit.Ret()
	prog, err := pb.Build()
	if err != nil {
		return nil, nil, err
	}

	setup := func(p *vm.Process) (ArgFn, error) {
		locks := p.AllocGlobal(8 * 4)
		counters := p.AllocGlobal(8 * 4)
		racy := p.AllocGlobal(8 * 4)
		return func(tid int, th *vm.Thread) {
			th.SetReg(ir.R(0), int64(locks))
			th.SetReg(ir.R(1), int64(counters))
			th.SetReg(ir.R(2), int64(racy))
		}, nil
	}
	return prog, setup, nil
}

var wlSeededRace = register(&Workload{
	Name:           "seededrace",
	Suite:          SuiteMicro,
	Desc:           "locked counter updates plus an unprotected shared increment (seeded data race)",
	DefaultThreads: 64,
	Build:          buildSeededRace,
})

// buildLeakedLock has every thread take its own per-thread lock, do some
// work, and release it only on the even-tid arm of a parity branch: odd
// threads leave the function still holding the lock. The two arms are padded
// to the same size, so the branch is also a DARM-meldable diamond.
func buildLeakedLock(cfg Config) (*ir.Program, SetupFn, error) {
	iters := cfg.scale(8)

	pb := ir.NewBuilder("leakedlock")
	w := pb.NewFunc("worker")
	pre := w.NewBlock("pre")
	// Args: r0=locks (one 8-byte word per thread). r1 = &locks[tid],
	// r2 = parity, r3 = loop counter.
	pre.Mov(rg(1), tid()).
		Mul(rg(1), im(8)).
		Add(rg(1), rg(0)).
		Lock(mem8(1, 0))
	l := loopN(w, pre, "work", 3, 0, im(int64(iters)))
	l.Body.Nop(2)
	l.Next(l.Body)
	branch := l.Exit
	even := w.NewBlock("even")
	odd := w.NewBlock("odd")
	done := w.NewBlock("done")
	branch.Mov(rg(2), tid()).
		And(rg(2), im(1)).
		Cmp(rg(2), im(0)).
		Jcc(ir.CondEQ, even, odd)
	even.Unlock(mem8(1, 0)).
		Nop(2).
		Jmp(done)
	odd.Nop(3). // keeps the lock: the seeded leak
			Jmp(done)
	done.Ret()
	prog, err := pb.Build()
	if err != nil {
		return nil, nil, err
	}

	setup := func(p *vm.Process) (ArgFn, error) {
		locks := p.AllocGlobal(uint64(8 * cfg.Threads))
		return func(tid int, th *vm.Thread) {
			th.SetReg(ir.R(0), int64(locks))
		}, nil
	}
	return prog, setup, nil
}

var wlLeakedLock = register(&Workload{
	Name:           "leakedlock",
	Suite:          SuiteMicro,
	Desc:           "per-thread lock released only on the even-tid branch arm (seeded lock leak)",
	DefaultThreads: 64,
	Build:          buildLeakedLock,
})

// buildSeededCycle nests two global locks in tid-parity order: even threads
// take A then B, odd threads B then A — the classic two-lock inversion. The
// deadlock pass certifies the dynamic cycle and the static oracle must
// predict it (one two-class cycle candidate over the two named lock words).
func buildSeededCycle(cfg Config) (*ir.Program, SetupFn, error) {
	iters := cfg.scale(8)

	pb := ir.NewBuilder("seededcycle")
	w := pb.NewFunc("worker")
	pre := w.NewBlock("pre")
	// Args: r0=lock pair (A at +0, B at +8), r1=counter word.
	// r2 = parity, r3 = loop counter, r4 = scratch.
	l := loopN(w, pre, "rounds", 3, 0, im(int64(iters)))
	ab := w.NewBlock("ab")
	ba := w.NewBlock("ba")
	join := w.NewBlock("join")
	l.Body.Mov(rg(2), tid()).
		And(rg(2), im(1)).
		Cmp(rg(2), im(0)).
		Jcc(ir.CondEQ, ab, ba)
	ab.Lock(mem8(0, 0)).
		Lock(mem8(0, 8)).
		Mov(rg(4), mem8(1, 0)).
		Add(rg(4), im(1)).
		Mov(mem8(1, 0), rg(4)).
		Unlock(mem8(0, 8)).
		Unlock(mem8(0, 0)).
		Jmp(join)
	ba.Lock(mem8(0, 8)).
		Lock(mem8(0, 0)).
		Mov(rg(4), mem8(1, 0)).
		Add(rg(4), im(1)).
		Mov(mem8(1, 0), rg(4)).
		Unlock(mem8(0, 0)).
		Unlock(mem8(0, 8)).
		Jmp(join)
	l.Next(join)
	l.Exit.Ret()
	prog, err := pb.Build()
	if err != nil {
		return nil, nil, err
	}

	setup := func(p *vm.Process) (ArgFn, error) {
		locks := p.AllocGlobal(8 * 2)
		counter := p.AllocGlobal(8)
		return func(tid int, th *vm.Thread) {
			th.SetReg(ir.R(0), int64(locks))
			th.SetReg(ir.R(1), int64(counter))
		}, nil
	}
	return prog, setup, nil
}

var wlSeededCycle = register(&Workload{
	Name:           "seededcycle",
	Suite:          SuiteMicro,
	Desc:           "two global locks nested in tid-parity order (seeded lock-order cycle)",
	DefaultThreads: 64,
	Build:          buildSeededCycle,
})

// buildSeededSpin re-enters a single-block critical section (tid&3)+1 times:
// the trip count diverges across the warp, so every lock acquire happens
// under divergent control — the shape the static oracle must flag as a
// guaranteed SIMT serialization / livelock hazard (tfstatic -locks).
func buildSeededSpin(cfg Config) (*ir.Program, SetupFn, error) {
	pb := ir.NewBuilder("seededspin")
	w := pb.NewFunc("worker")
	pre := w.NewBlock("pre")
	cs := w.NewBlock("cs")
	done := w.NewBlock("done")
	// Args: r0=lock word, r1=shared counter. r2 = tid-derived trip count,
	// r3 = scratch.
	pre.Mov(rg(2), tid()).
		And(rg(2), im(3)).
		Add(rg(2), im(1)).
		Jmp(cs)
	cs.Lock(mem8(0, 0)).
		Mov(rg(3), mem8(1, 0)).
		Add(rg(3), im(1)).
		Mov(mem8(1, 0), rg(3)).
		Unlock(mem8(0, 0)).
		Sub(rg(2), im(1)).
		Cmp(rg(2), im(0)).
		Jcc(ir.CondNE, cs, done)
	done.Ret()
	prog, err := pb.Build()
	if err != nil {
		return nil, nil, err
	}

	setup := func(p *vm.Process) (ArgFn, error) {
		lock := p.AllocGlobal(8)
		counter := p.AllocGlobal(8)
		return func(tid int, th *vm.Thread) {
			th.SetReg(ir.R(0), int64(lock))
			th.SetReg(ir.R(1), int64(counter))
		}, nil
	}
	return prog, setup, nil
}

var wlSeededSpin = register(&Workload{
	Name:           "seededspin",
	Suite:          SuiteMicro,
	Desc:           "self-looping critical section with a tid-derived trip count (divergent-region locking)",
	DefaultThreads: 64,
	Build:          buildSeededSpin,
})
