// Command tfsim drives the SIMT timing simulator (the reproduction's
// Accel-Sim stand-in). It accepts either a warp trace (.wtr, produced by
// -emit below or by the library) or a MIMD trace (.tft), in which case it
// first runs the ThreadFuser warp-trace generator. With -cpu it also runs
// the multicore CPU baseline on the MIMD trace and reports the projected
// speedup (the figure-6 pipeline).
//
// Usage:
//
//	tftrace -workload paropoly.nbody -threads 512 -o nbody.tft
//	tfsim -trace nbody.tft -cpu
//	tfsim -trace nbody.tft -emit nbody.wtr    # write the warp trace
//	tfsim -trace nbody.wtr -config small      # rerun on another machine
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"threadfuser/internal/cpusim"
	"threadfuser/internal/gpusim"
	"threadfuser/internal/simtrace"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

func main() {
	var (
		path     = flag.String("trace", "", "input trace: .tft (MIMD) or .wtr (warp) (required)")
		warpSize = flag.Int("warp", 32, "warp width when generating from a .tft trace")
		config   = flag.String("config", "rtx3070", "SIMT machine: rtx3070 or small")
		sched    = flag.String("scheduler", "gto", "warp scheduler: gto or lrr")
		cpu      = flag.Bool("cpu", false, "also run the multicore CPU baseline (.tft input only)")
		emit     = flag.String("emit", "", "write the generated warp trace to this .wtr path and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tfsim -trace input.tft|input.wtr [flags]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tfsim: unexpected argument %q (the trace is given with -trace)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "tfsim: -trace is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		kt  *simtrace.KernelTrace
		mim *trace.Trace
		err error
	)
	if strings.HasSuffix(*path, ".wtr") {
		kt, err = simtrace.ReadFile(*path)
		if err != nil {
			fatal(err)
		}
	} else {
		mim, err = trace.ReadFile(*path)
		if err != nil {
			fatal(err)
		}
		w, werr := workloads.ByName(mim.Program)
		if werr != nil {
			fatal(fmt.Errorf("trace program %q is not a bundled workload: %w", mim.Program, werr))
		}
		inst, ierr := w.Instantiate(workloads.Config{Seed: 1, Threads: len(mim.Threads)})
		if ierr != nil {
			fatal(ierr)
		}
		kt, err = simtrace.Generate(inst.Prog, mim, *warpSize)
		if err != nil {
			fatal(err)
		}
	}

	if *emit != "" {
		if err := simtrace.WriteFile(*emit, kt); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d warps, %d micro-ops -> %s\n", len(kt.Warps), kt.TotalInstrs(), *emit)
		return
	}

	cfg := gpusim.RTX3070()
	if *config == "small" {
		cfg = gpusim.SmallSIMT()
	} else if *config != "rtx3070" {
		fatal(fmt.Errorf("unknown config %q", *config))
	}
	switch *sched {
	case "gto":
		cfg.Scheduler = gpusim.GTO
	case "lrr":
		cfg.Scheduler = gpusim.LRR
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *sched))
	}

	res, err := gpusim.Run(kt, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("machine      %s (%s scheduler)\n", res.Config, cfg.Scheduler)
	fmt.Printf("kernel       %s: %d warps, %d micro-ops (%d lane instrs)\n",
		kt.Program, len(kt.Warps), res.WarpInstrs, res.LaneInstrs)
	fmt.Printf("cycles       %d (IPC %.2f)\n", res.Cycles, res.IPC)
	fmt.Printf("memory       %d tx, L1 %.1f%%, L2 %.1f%%, %d DRAM bytes\n",
		res.MemTx, res.L1HitRate*100, res.L2HitRate*100, res.DRAMBytes)
	fmt.Printf("stalls       %d scoreboard, %d MSHR\n", res.DataStalls, res.MemStalls)

	if *cpu {
		if mim == nil {
			fatal(fmt.Errorf("-cpu requires a .tft input (the CPU baseline executes the MIMD trace)"))
		}
		c, err := cpusim.Run(mim, cpusim.Xeon20())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cpu baseline %s: %d cycles (L1 %.1f%%, L2 %.1f%%)\n",
			c.Config, c.Cycles, c.L1HitRate*100, c.L2HitRate*100)
		fmt.Printf("speedup      %.2fx\n", float64(c.Cycles)/float64(res.Cycles))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tfsim:", err)
	os.Exit(1)
}
