package ipdom

import (
	"math/rand"
	"testing"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ir"
)

// buildGraph constructs a DCFG via a throwaway IR function whose blocks
// encode the requested successor lists, so the tests exercise the same
// construction path as production code.
func buildGraph(t *testing.T, succs [][]int) *cfg.DCFG {
	t.Helper()
	pb := ir.NewBuilder("g")
	f := pb.NewFunc("f")
	blocks := make([]*ir.BlockBuilder, len(succs))
	for i := range succs {
		blocks[i] = f.NewBlock("b")
	}
	for i, ss := range succs {
		b := blocks[i]
		switch len(ss) {
		case 0:
			b.Ret()
		case 1:
			b.Jmp(blocks[ss[0]])
		case 2:
			b.Cmp(ir.Rg(ir.R(0)), ir.Imm(0))
			b.Jcc(ir.CondEQ, blocks[ss[0]], blocks[ss[1]])
		default:
			targets := make([]*ir.BlockBuilder, len(ss))
			for j, s := range ss {
				targets[j] = blocks[s]
			}
			b.Switch(ir.Rg(ir.R(0)), targets...)
		}
	}
	prog := pb.MustBuild()
	return cfg.FromFunction(prog.Funcs[0])
}

func TestDiamondIPDOM(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//     \ /
	//      3 -> exit
	g := buildGraph(t, [][]int{{1, 2}, {3}, {3}, {}})
	pd := Compute(g)
	if got := pd.IPDom(0); got != 3 {
		t.Errorf("ipdom(0) = %d, want 3", got)
	}
	if got := pd.IPDom(1); got != 3 {
		t.Errorf("ipdom(1) = %d, want 3", got)
	}
	if got := pd.IPDom(3); got != g.ExitNode() {
		t.Errorf("ipdom(3) = %d, want exit %d", got, g.ExitNode())
	}
}

func TestNestedDiamonds(t *testing.T) {
	//      0
	//     / \
	//    1   6
	//   / \  |
	//  2   3 |
	//   \ /  |
	//    4   |
	//     \ /
	//      5 -> exit
	g := buildGraph(t, [][]int{{1, 6}, {2, 3}, {4}, {4}, {5}, {}, {5}})
	pd := Compute(g)
	if got := pd.IPDom(1); got != 4 {
		t.Errorf("ipdom(1) = %d, want 4 (inner join)", got)
	}
	if got := pd.IPDom(0); got != 5 {
		t.Errorf("ipdom(0) = %d, want 5 (outer join)", got)
	}
}

func TestLoopIPDOM(t *testing.T) {
	// 0 -> 1 (loop: 1->1 or 1->2), 2 -> exit.
	g := buildGraph(t, [][]int{{1}, {1, 2}, {}})
	pd := Compute(g)
	if got := pd.IPDom(1); got != 2 {
		t.Errorf("ipdom(loop header) = %d, want 2", got)
	}
	if !pd.PostDominates(2, 0) {
		t.Error("loop exit must post-dominate the entry")
	}
}

func TestDivergentReturnPathsReconvergeAtExit(t *testing.T) {
	// 0 branches to 1 and 2, both of which return.
	g := buildGraph(t, [][]int{{1, 2}, {}, {}})
	pd := Compute(g)
	if got := pd.IPDom(0); got != g.ExitNode() {
		t.Errorf("ipdom(0) = %d, want virtual exit %d", got, g.ExitNode())
	}
}

func TestPostDominatesReflexiveAndExit(t *testing.T) {
	g := buildGraph(t, [][]int{{1, 2}, {3}, {3}, {}})
	pd := Compute(g)
	for b := int32(0); b <= 3; b++ {
		if !pd.PostDominates(b, b) {
			t.Errorf("PostDominates(%d,%d) = false", b, b)
		}
		if !pd.PostDominates(g.ExitNode(), b) {
			t.Errorf("exit must post-dominate %d", b)
		}
	}
	if pd.PostDominates(1, 2) {
		t.Error("sibling branches must not post-dominate each other")
	}
}

// TestIPDOMProperties checks the defining invariants on random CFGs:
// the immediate post-dominator strictly post-dominates its block, and every
// path simulated from a block hits its ipdom before exiting.
func TestIPDOMProperties(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(10)
		succs := make([][]int, n)
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				succs[i] = nil // return
			case 1:
				succs[i] = []int{r.Intn(n)}
			default:
				succs[i] = []int{r.Intn(n), r.Intn(n)}
			}
		}
		succs[n-1] = nil // guarantee at least one return
		g := buildGraph(t, succs)
		pd := Compute(g)
		exit := g.ExitNode()

		for b := int32(0); b < int32(n); b++ {
			ip := pd.IPDom(b)
			if ip == b {
				t.Fatalf("seed %d: ipdom(%d) = itself", seed, b)
			}
			if !pd.PostDominates(ip, b) {
				t.Fatalf("seed %d: ipdom(%d)=%d does not post-dominate it", seed, b, ip)
			}
			// Random walks from b must pass through ip before exit.
			for walk := 0; walk < 20; walk++ {
				cur := b
				hit := false
				for step := 0; step < 200; step++ {
					if cur == ip {
						hit = true
						break
					}
					ss := g.Succs(cur)
					if len(ss) == 0 || cur == exit {
						break
					}
					cur = ss[r.Intn(len(ss))]
				}
				// Walks that loop forever (no exit reached in 200 steps)
				// are inconclusive; walks that reached exit must have hit.
				if cur == exit && !hit && ip != exit {
					t.Fatalf("seed %d: walk from %d reached exit bypassing ipdom %d", seed, b, ip)
				}
			}
		}
	}
}

func TestComputeAll(t *testing.T) {
	g1 := buildGraph(t, [][]int{{1, 2}, {3}, {3}, {}})
	g2 := buildGraph(t, [][]int{{}})
	m := map[uint32]*cfg.DCFG{0: g1, 1: g2}
	pds := ComputeAll(m)
	if len(pds) != 2 {
		t.Fatalf("ComputeAll returned %d entries", len(pds))
	}
	if pds[0].IPDom(0) != 3 {
		t.Error("ComputeAll result differs from Compute")
	}
}
