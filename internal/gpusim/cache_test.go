package gpusim

import (
	"testing"

	"threadfuser/internal/ir"
	"threadfuser/internal/simtrace"
)

func TestCacheHitMissLRU(t *testing.T) {
	c := newCache(CacheConfig{Sets: 1, Ways: 2, Latency: 1})
	if c.access(0) {
		t.Error("cold access hit")
	}
	if !c.access(0) {
		t.Error("warm access missed")
	}
	c.access(32)      // fills way 2
	if !c.access(0) { // 0 still resident
		t.Error("LRU evicted the wrong line")
	}
	c.access(64)      // evicts 32 (LRU)
	if c.access(32) { // 32 gone; this miss refills it, evicting 0
		t.Error("LRU kept the least-recently-used line")
	}
	if c.access(0) {
		t.Error("line 0 should have been evicted by the refill of 32")
	}
	if !c.access(32) {
		t.Error("refilled line evicted prematurely")
	}
	if c.Hits == 0 || c.Misses == 0 {
		t.Error("stats not tracked")
	}
	if hr := c.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate %v out of range", hr)
	}
}

func TestCacheSetIndexing(t *testing.T) {
	c := newCache(CacheConfig{Sets: 4, Ways: 1, Latency: 1})
	// Lines 0..3 map to distinct sets; all stay resident.
	for line := uint64(0); line < 4; line++ {
		c.access(line * lineSize)
	}
	for line := uint64(0); line < 4; line++ {
		if !c.access(line * lineSize) {
			t.Errorf("line %d evicted despite distinct sets", line)
		}
	}
}

func TestDRAMBandwidthSerializes(t *testing.T) {
	d := &dram{latency: 100, bytesClk: 1} // 32 cycles per 32B transaction
	first := d.access(0, 32)
	second := d.access(0, 32)
	if first != 100 {
		t.Errorf("first transaction done at %d, want 100", first)
	}
	if second != 132 {
		t.Errorf("second transaction done at %d, want 132 (bandwidth queued)", second)
	}
	if d.Bytes != 64 {
		t.Errorf("bytes = %d, want 64", d.Bytes)
	}
	// A transaction issued after the queue drains starts fresh.
	late := d.access(1000, 32)
	if late != 1100 {
		t.Errorf("late transaction done at %d, want 1100", late)
	}
}

// TestScoreboardBlocksDependents: a dependent ALU op cannot issue until its
// producing load completes.
func TestScoreboardBlocksDependents(t *testing.T) {
	mkKernel := func(dependent bool) *simtrace.KernelTrace {
		src := uint8(simtrace.TmpLoad)
		if !dependent {
			src = 5 // unrelated register
		}
		return &simtrace.KernelTrace{
			Program:  "k",
			WarpSize: 32,
			Warps: []*simtrace.WarpStream{{Warp: 0, Instrs: []simtrace.WInstr{
				{PC: 0, Class: ir.ClassMem, Op: ir.OpMov, Dst: simtrace.TmpLoad,
					Srcs: [2]uint8{simtrace.NoReg, simtrace.NoReg}, Mask: 1, Load: true,
					Space: simtrace.SpaceGlobal, Size: 8, Addrs: []uint64{1 << 40}},
				{PC: 1, Class: ir.ClassALU, Op: ir.OpAdd, Dst: 1,
					Srcs: [2]uint8{src, simtrace.NoReg}, Mask: 1},
			}}},
		}
	}
	cfg := RTX3070()
	cfg.NumSMs = 1
	dep, err := Run(mkKernel(true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := Run(mkKernel(false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Cycles <= indep.Cycles {
		t.Errorf("dependent kernel (%d cycles) not slower than independent (%d)", dep.Cycles, indep.Cycles)
	}
	if dep.DataStalls == 0 {
		t.Error("no scoreboard stalls recorded for a load-use dependency")
	}
}

// TestMSHRPressure: more outstanding transactions than MSHRs must cause
// structural stalls.
func TestMSHRPressure(t *testing.T) {
	// One warp issuing a 32-lane fully scattered load: 32 transactions
	// against 4 MSHRs.
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i) * 1 << 20
	}
	var mask uint64 = (1 << 32) - 1
	kt := &simtrace.KernelTrace{
		Program:  "k",
		WarpSize: 32,
		Warps: []*simtrace.WarpStream{
			{Warp: 0, Instrs: []simtrace.WInstr{
				{PC: 0, Class: ir.ClassMem, Op: ir.OpMov, Dst: simtrace.TmpLoad,
					Srcs: [2]uint8{simtrace.NoReg, simtrace.NoReg}, Mask: mask, Load: true,
					Space: simtrace.SpaceGlobal, Size: 8, Addrs: addrs},
			}},
			{Warp: 1, Instrs: []simtrace.WInstr{
				{PC: 0, Class: ir.ClassMem, Op: ir.OpMov, Dst: simtrace.TmpLoad,
					Srcs: [2]uint8{simtrace.NoReg, simtrace.NoReg}, Mask: mask, Load: true,
					Space: simtrace.SpaceGlobal, Size: 8, Addrs: addrs},
			}},
		},
	}
	cfg := RTX3070()
	cfg.NumSMs = 1
	cfg.MSHRsPerSM = 33 // warp 0 fits; warp 1 must wait for releases
	res, err := Run(kt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemStalls == 0 {
		t.Error("no MSHR stalls under deliberate pressure")
	}
	if res.MemTx != 64 {
		t.Errorf("transactions = %d, want 64", res.MemTx)
	}
}

// TestLocalSpaceCoalesces: local (stack) accesses are lane-interleaved on
// hardware, so a full warp's 8-byte accesses cost 8 transactions even
// though the raw per-thread stack addresses are megabytes apart.
func TestLocalSpaceCoalesces(t *testing.T) {
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = 0x70_0000_0000 + uint64(i)*(1<<20)
	}
	var mask uint64 = (1 << 32) - 1
	mk := func(space simtrace.Space) *simtrace.KernelTrace {
		return &simtrace.KernelTrace{
			Program: "k", WarpSize: 32,
			Warps: []*simtrace.WarpStream{{Warp: 0, Instrs: []simtrace.WInstr{
				{PC: 0, Class: ir.ClassMem, Op: ir.OpMov, Dst: simtrace.TmpLoad,
					Srcs: [2]uint8{simtrace.NoReg, simtrace.NoReg}, Mask: mask, Load: true,
					Space: space, Size: 8, Addrs: addrs},
			}}},
		}
	}
	cfg := RTX3070()
	local, err := Run(mk(simtrace.SpaceLocal), cfg)
	if err != nil {
		t.Fatal(err)
	}
	global, err := Run(mk(simtrace.SpaceGlobal), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if local.MemTx != 8 {
		t.Errorf("local-space transactions = %d, want 8 (interleaved)", local.MemTx)
	}
	if global.MemTx != 32 {
		t.Errorf("global-space transactions = %d, want 32 (scattered)", global.MemTx)
	}
}

func TestOccupancyWaves(t *testing.T) {
	// More warps than resident slots: all must still complete.
	var instrs []simtrace.WInstr
	for i := 0; i < 10; i++ {
		instrs = append(instrs, simtrace.WInstr{
			PC: uint64(i), Class: ir.ClassALU, Op: ir.OpAdd, Dst: 1,
			Srcs: [2]uint8{simtrace.NoReg, simtrace.NoReg}, Mask: 3,
		})
	}
	kt := &simtrace.KernelTrace{Program: "k", WarpSize: 32}
	for w := 0; w < 12; w++ {
		ws := &simtrace.WarpStream{Warp: w, Instrs: instrs}
		kt.Warps = append(kt.Warps, ws)
	}
	cfg := RTX3070()
	cfg.NumSMs = 1
	cfg.WarpsPerSM = 3
	res, err := Run(kt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarpInstrs != 120 {
		t.Errorf("executed %d warp instrs, want 120 (all waves)", res.WarpInstrs)
	}
}
