// Package pool provides a bounded, errgroup-style worker pool built only on
// the standard library (sync.WaitGroup plus a channel semaphore). The
// analyzer pipeline uses it to run independent workload×configuration cells
// of an experiment concurrently while keeping the goroutine count bounded by
// the machine's core count.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MinParallelItems is the shared "not worth parallelizing" threshold: below
// this many independent work items the fan-out overhead (goroutines,
// per-worker state, cache traffic) exceeds what extra cores win back, so
// callers should take their sequential path outright. Both the SIMT replay
// worker pool (per warp) and the trace decoder (per thread section) resolve
// their worker counts through Workers, which applies it.
const MinParallelItems = 8

// Workers resolves an effective worker count for `items` independent work
// units under a requested limit: a limit ≤ 0 means one worker per core
// (runtime.GOMAXPROCS(0), the convention shared with core.Options
// .Parallelism), the count never exceeds the item count, and item counts
// below MinParallelItems resolve to 1 — the sequential path.
func Workers(limit, items int) int {
	if items < MinParallelItems {
		return 1
	}
	n := limit
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach runs fn(worker, item) for every item in [0, items), distributing
// items over `workers` goroutines through an atomic claim counter — work
// stealing, in contrast to Group's static submission order: a worker that
// finishes its item early claims the next unclaimed one instead of idling,
// so unevenly sized items cannot strand the pool behind one slow worker.
// The worker index is stable per goroutine, letting callers keep per-worker
// state (accumulators, scratch buffers) without locks. fn returning true
// stops the whole loop: no further items are claimed by any worker, though
// items already claimed still finish. ForEach returns when every claimed
// item is done. With workers ≤ 1 it degenerates to a plain sequential loop.
func ForEach(workers, items int, fn func(worker, item int) (stop bool)) {
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		for i := 0; i < items; i++ {
			if fn(0, i) {
				return
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= items {
					return
				}
				if fn(k, i) {
					next.Store(int64(items))
					return
				}
			}
		}(k)
	}
	wg.Wait()
}

// Group runs tasks concurrently, at most limit at a time, and retains the
// first error. The zero value is not usable; call New.
type Group struct {
	sem     chan struct{}
	wg      sync.WaitGroup
	errOnce sync.Once
	err     error
}

// New returns a Group that runs at most limit tasks concurrently. A limit
// of 0 (or negative) uses runtime.GOMAXPROCS(0), the convention shared with
// core.Options.Parallelism; a limit of 1 degenerates to serial execution in
// submission order.
func New(limit int) *Group {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &Group{sem: make(chan struct{}, limit)}
}

// Go submits one task. It blocks while the group is at its concurrency
// limit, so a producer loop is naturally throttled and never builds an
// unbounded goroutine backlog. Tasks submitted after a failure still run;
// callers that want early exit should check their own cancellation state.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	g.sem <- struct{}{}
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.errOnce.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every submitted task has finished and returns the first
// error any of them produced, if any.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}
