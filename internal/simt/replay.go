package simt

import (
	"context"
	"fmt"
	"math/bits"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/pool"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
)

// MaxWarpSize bounds the warp width (lane masks are 64-bit words).
const MaxWarpSize = 64

// Options configure a replay.
type Options struct {
	// WarpSize is the SIMD width being modelled (paper explores 8..32).
	WarpSize int
	// EmulateLocks enables intra-warp critical-section serialization
	// (paper section III and figure 9). When disabled, lock operations
	// are traced but do not perturb control flow, modelling the paper's
	// fine-grain-locking assumption.
	EmulateLocks bool
	// LockReconvergence selects where serialized critical sections
	// reconverge. The paper picks the matching release of one contender
	// and explicitly defers studying alternatives ("different choices of
	// reconvergence points may have varying effects on the control flow
	// efficiency, but we defer this investigation to future research");
	// this knob implements that study.
	LockReconvergence LockReconvergence
	// Listener, if non-nil, observes every lockstep block execution; the
	// warp-trace generator uses it. A listener forces serial replay so
	// callbacks arrive in warp order.
	Listener Listener
	// Parallelism bounds the replay worker pool: warps are independent
	// units of work and fan out over this many workers. 0 means
	// runtime.GOMAXPROCS(0); 1 forces the serial path. The parallel path
	// produces bit-identical Results to the serial one: every metric is a
	// per-warp or commutative uint64 sum, merged deterministically.
	Parallelism int

	// Context, if non-nil, cancels an in-progress replay: the loop polls it
	// at every warp boundary and every few thousand SIMT-stack steps inside
	// a warp, so even a single enormous warp aborts promptly. The returned
	// error wraps the context's error (errors.Is-matchable against
	// context.Canceled / DeadlineExceeded). Like Parallelism and Listener,
	// Context is a control knob, not a semantic one: it can only stop a
	// replay, never change the metrics of one that completes.
	Context context.Context

	// UniformBranches, when non-nil, is the static oracle's exported
	// uniform-region table (staticsimt.UniformBlocks): UniformBranches[fn]
	// [block] reports that fn's block ends in a terminator the oracle proved
	// can never split a warp. The lockstep-fusion fast path uses it to shape
	// fused-window proposals — a window extends across a block boundary only
	// through a terminator the table clears, so proposals end exactly where a
	// split is statically possible. The table is a performance hint, never a
	// semantic input: every proposed record is still verified against every
	// active lane before fused execution, so a missing, partial, or even
	// wrong table cannot change any metric. When nil, fusion runs in pure
	// runtime-detection mode and extends through every agreeing boundary.
	UniformBranches [][]bool

	// DisableLockstepFusion turns off the lockstep-fusion fast path, forcing
	// the per-block engine. It exists as the A/B verification hook: the
	// equivalence suite and the check catalog's "fusion" invariant replay
	// every workload both ways and assert bit-identical Results.
	DisableLockstepFusion bool

	// disableRunBatch turns off same-block run batching in the replay inner
	// loop, forcing one group-formation step per block execution. Only the
	// batched/stepped equivalence test sets it. It implies
	// DisableLockstepFusion: the fused window is a superset of run batching.
	disableRunBatch bool
}

// workers resolves the effective worker count for a warp count. Warps are
// the unit of parallel work, so the shared pool.Workers threshold decides
// when a replay is worth fanning out at all; a Listener forces one worker
// regardless (callbacks must arrive in warp order).
func (o Options) workers(nwarps int) int {
	if o.Listener != nil {
		return 1
	}
	return pool.Workers(o.Parallelism, nwarps)
}

// LockReconvergence enumerates critical-section reconvergence policies.
type LockReconvergence uint8

const (
	// ReconvergeAtRelease reconverges just past the matching release in
	// the first contender's trace — the paper's policy. Tight sections
	// resume lockstep as soon as possible.
	ReconvergeAtRelease LockReconvergence = iota
	// ReconvergeAtFunctionExit reconverges at the virtual exit of the
	// function containing the acquire — the conservative choice: the
	// whole remainder of the function serializes, but mismatched
	// lock/unlock paths can never strand a lane.
	ReconvergeAtFunctionExit
)

func (l LockReconvergence) String() string {
	if l == ReconvergeAtFunctionExit {
		return "function-exit"
	}
	return "release"
}

// BlockExec describes one lockstep execution of a basic block, delivered to
// a Listener.
type BlockExec struct {
	Warp        int
	Func, Block uint32
	Depth       int32
	// Lanes lists the active lane indices; Threads the corresponding
	// global thread ids; Records each active lane's trace record for this
	// block (carrying its memory accesses). The three slices are parallel
	// and only valid for the duration of the callback.
	Lanes   []int
	Threads []int
	Records []*trace.Record
	// NumLanes is the warp's configured width.
	NumLanes int
}

// Listener observes block executions during replay.
type Listener interface {
	OnBlock(*BlockExec)
}

// branchLayout maps every (func, block) pair of a trace's symbol table onto
// a dense index, so branch-divergence accounting is a slice index instead of
// a map lookup on the replay hot path.
type branchLayout struct {
	off   []int // per function id: offset into the flat block index space
	total int
}

func newBranchLayout(t *trace.Trace) *branchLayout {
	l := &branchLayout{off: make([]int, len(t.Funcs))}
	for i, f := range t.Funcs {
		l.off[i] = l.total
		l.total += len(f.Blocks)
	}
	return l
}

// index returns the flat slot for (fn, block), or -1 when the pair is
// outside the symbol table (possible only for traces that skip Validate).
func (l *branchLayout) index(fn, block uint32) int {
	if int(fn) >= len(l.off) {
		return -1
	}
	base := l.off[fn]
	end := l.total
	if int(fn)+1 < len(l.off) {
		end = l.off[fn+1]
	}
	if base+int(block) >= end {
		return -1
	}
	return base + int(block)
}

// accumulator collects the shared (non-per-warp) metrics of one replay
// worker: per-function totals, per-branch divergence stats, and skipped
// instruction counters. Workers accumulate locally — plain slice-indexed
// adds, no locks, no map lookups — and Replay merges the accumulators after
// all warps finish. Every field is a commutative sum, so the merged totals
// are identical no matter how warps were partitioned.
type accumulator struct {
	lay      *branchLayout
	funcs    []FuncMetrics
	touched  []bool
	branches []BranchStats
	// extra catches branch sites outside the symbol-table layout, which
	// only unvalidated traces can produce.
	extra map[BranchKey]*BranchStats
	// memSites holds this worker's per-site coalescing histograms; like all
	// other fields they are commutative sums/maxes, merged after all warps.
	memSites         map[MemSiteKey]*MemSiteStats
	skipIO, skipSpin uint64
	// siteCache is a tiny direct-mapped cache in front of the memSites map:
	// fused runs charge the same one or two memory instructions thousands of
	// times in a row, and the map hash would otherwise dominate the charge.
	siteCache [4]struct {
		key MemSiteKey
		ms  *MemSiteStats
	}
}

func newAccumulator(t *trace.Trace, lay *branchLayout) *accumulator {
	return &accumulator{
		lay:      lay,
		funcs:    make([]FuncMetrics, len(t.Funcs)),
		touched:  make([]bool, len(t.Funcs)),
		branches: make([]BranchStats, lay.total),
	}
}

// funcMetrics returns the accumulator slot for a function id, growing the
// table for ids beyond the symbol table (unvalidated traces).
func (a *accumulator) funcMetrics(fn uint32) *FuncMetrics {
	for int(fn) >= len(a.funcs) {
		a.funcs = append(a.funcs, FuncMetrics{})
		a.touched = append(a.touched, false)
	}
	a.touched[fn] = true
	return &a.funcs[fn]
}

// branchStats returns the accumulator slot for a divergence site.
func (a *accumulator) branchStats(fn, block uint32) *BranchStats {
	if i := a.lay.index(fn, block); i >= 0 {
		return &a.branches[i]
	}
	if a.extra == nil {
		a.extra = map[BranchKey]*BranchStats{}
	}
	key := BranchKey{Func: fn, Block: block}
	bs := a.extra[key]
	if bs == nil {
		bs = &BranchStats{}
		a.extra[key] = bs
	}
	return bs
}

// memSite returns the accumulator slot for one memory instruction.
func (a *accumulator) memSite(fn, block uint32, instr uint16) *MemSiteStats {
	key := MemSiteKey{Func: fn, Block: block, Instr: instr}
	slot := &a.siteCache[instr&3]
	if slot.ms != nil && slot.key == key {
		return slot.ms
	}
	if a.memSites == nil {
		a.memSites = map[MemSiteKey]*MemSiteStats{}
	}
	ms := a.memSites[key]
	if ms == nil {
		ms = &MemSiteStats{}
		a.memSites[key] = ms
	}
	slot.key, slot.ms = key, ms
	return ms
}

// mergeInto folds the accumulator into a Result. Only touched functions and
// branches with at least one divergence materialize map entries, matching
// the serial path's lazy map population exactly.
func (a *accumulator) mergeInto(res *Result) {
	res.SkippedIO += a.skipIO
	res.SkippedSpin += a.skipSpin
	for fn := range a.funcs {
		if !a.touched[fn] {
			continue
		}
		src := &a.funcs[fn]
		fm := res.Funcs[uint32(fn)]
		if fm == nil {
			fm = &FuncMetrics{}
			res.Funcs[uint32(fn)] = fm
		}
		fm.Lockstep += src.Lockstep
		fm.ThreadInstrs += src.ThreadInstrs
		fm.Invocations += src.Invocations
		fm.MemInstrs += src.MemInstrs
		fm.HeapTx += src.HeapTx
		fm.StackTx += src.StackTx
		fm.LockSerializations += src.LockSerializations
		fm.SerializedLanes += src.SerializedLanes
	}
	fn := 0
	for i := range a.branches {
		src := &a.branches[i]
		if src.Divergences == 0 {
			continue
		}
		for fn+1 < len(a.lay.off) && a.lay.off[fn+1] <= i {
			fn++
		}
		key := BranchKey{Func: uint32(fn), Block: uint32(i - a.lay.off[fn])}
		mergeBranch(res, key, src)
	}
	for key, src := range a.extra {
		if src.Divergences != 0 {
			mergeBranch(res, key, src)
		}
	}
	for key, src := range a.memSites {
		dst := res.MemSites[key]
		if dst == nil {
			dst = &MemSiteStats{}
			res.MemSites[key] = dst
		}
		dst.merge(src)
	}
}

func mergeBranch(res *Result, key BranchKey, src *BranchStats) {
	bs := res.Branches[key]
	if bs == nil {
		bs = &BranchStats{}
		res.Branches[key] = bs
	}
	bs.Divergences += src.Divergences
	bs.Paths += src.Paths
	bs.LanesOff += src.LanesOff
	bs.RegionLockstep += src.RegionLockstep
	bs.RegionThreadInstrs += src.RegionThreadInstrs
}

// Replay runs the SIMT-stack emulation over all warps and returns the
// aggregated metrics. Warps are independent: with Options.Parallelism != 1
// (and no Listener) they fan out over a worker pool, each worker replaying
// its share with worker-local accumulators that are merged afterwards. The
// result is bit-identical to the serial path regardless of worker count.
func Replay(t *trace.Trace, graphs map[uint32]*cfg.DCFG, pdoms map[uint32]*ipdom.PostDom, warps []warp.Warp, opts Options) (*Result, error) {
	if opts.WarpSize <= 0 || opts.WarpSize > MaxWarpSize {
		return nil, fmt.Errorf("simt: warp size %d out of range [1,%d]", opts.WarpSize, MaxWarpSize)
	}
	// Validate warp shapes up front so malformed inputs produce the same
	// deterministic error no matter how the warps would be partitioned.
	for wi, w := range warps {
		if len(w) > opts.WarpSize {
			return nil, fmt.Errorf("simt: warp %d has %d threads > warp size %d", wi, len(w), opts.WarpSize)
		}
		for _, tid := range w {
			if tid < 0 || tid >= len(t.Threads) {
				return nil, fmt.Errorf("simt: warp %d references thread %d outside trace", wi, tid)
			}
		}
	}
	res := &Result{
		WarpSize: opts.WarpSize,
		Warps:    make([]WarpMetrics, len(warps)),
		Funcs:    make(map[uint32]*FuncMetrics),
		Branches: make(map[BranchKey]*BranchStats),
		MemSites: make(map[MemSiteKey]*MemSiteStats),
	}
	lay := newBranchLayout(t)
	nw := opts.workers(len(warps))

	// The fusion fast path runs off the trace's packed SoA columns. Use the
	// trace's cached view when a pipeline already built one (core's analyzer,
	// the bench setup); otherwise derive it here — one streaming pass, shared
	// read-only by all workers. A nil cols disables fusion outright.
	var cols *trace.Cols
	if !opts.DisableLockstepFusion && !opts.disableRunBatch && opts.Listener == nil {
		cols = t.Cols
		if cols == nil {
			cols = trace.BuildCols(t)
		}
	}

	// Replay internals panic on structurally impossible record streams (a
	// block cursor landing on a return, a reconvergence stack underflow).
	// Traces that reach this point passed trace.Validate, but that check is
	// per-record, not whole-stream, so a corrupted or hand-edited .tft file
	// can still trip them. Surface those as errors — with parallel replay a
	// worker panic would otherwise kill the whole process.
	safeReplay := func(wr *warpReplay, wi int, w warp.Warp, m *WarpMetrics) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("simt: replaying warp %d: %v", wi, r)
			}
		}()
		return wr.replayWarp(t, wi, w, m)
	}

	accs := make([]*accumulator, nw)
	if nw == 1 {
		acc := newAccumulator(t, lay)
		accs[0] = acc
		wr := newWarpReplay(graphs, pdoms, opts, acc, cols)
		for wi := range warps {
			if err := cancelErr(opts.Context); err != nil {
				return nil, err
			}
			if err := safeReplay(wr, wi, warps[wi], &res.Warps[wi]); err != nil {
				return nil, err
			}
		}
	} else {
		// Warps are claimed dynamically (work stealing): a worker that
		// finishes a short warp takes the next unclaimed one instead of
		// idling behind a statically dealt long one, so skewed warp sizes
		// cannot flatten the parallel speedup. The claim order cannot leak
		// into the result: each warp writes an exclusive Result slot, and
		// every accumulator field is a commutative sum merged afterwards.
		errWarp := make([]int, nw)
		errs := make([]error, nw)
		wrs := make([]*warpReplay, nw)
		for k := 0; k < nw; k++ {
			accs[k] = newAccumulator(t, lay)
			wrs[k] = newWarpReplay(graphs, pdoms, opts, accs[k], cols)
			errWarp[k] = -1
		}
		pool.ForEach(nw, len(warps), func(k, wi int) bool {
			if err := cancelErr(opts.Context); err != nil {
				errWarp[k], errs[k] = wi, err
				return true
			}
			if err := safeReplay(wrs[k], wi, warps[wi], &res.Warps[wi]); err != nil {
				errWarp[k], errs[k] = wi, err
				return true
			}
			return false
		})
		// Surface the failure of the lowest-numbered warp that hit one,
		// matching what the serial path would have reported first.
		first := -1
		for k := 0; k < nw; k++ {
			if errs[k] != nil && (first == -1 || errWarp[k] < errWarp[first]) {
				first = k
			}
		}
		if first >= 0 {
			return nil, errs[first]
		}
	}
	for _, acc := range accs {
		acc.mergeInto(res)
	}
	return res, nil
}

// entry is one SIMT-stack entry.
type entry struct {
	mask    uint64
	rpc     position // reconvergence position
	hasRPC  bool
	last    position // most recently executed position (for IPDOM lookup)
	hasLast bool
	// brFn/brBlock name the branch whose divergence pushed this entry, so
	// block executions inside the divergent region can be attributed to it
	// (BranchStats.RegionLockstep / RegionThreadInstrs). Entries pushed by
	// critical-section serialization carry no branch tag.
	brFn      uint32
	brBlock   uint32
	hasBranch bool
	// mustExec forces at least one block execution before the reconvergence
	// check. Serialization rounds whose critical section begins and ends in
	// one self-looping block get an rpc equal to their current position;
	// without this they would pop with zero progress and re-serialize
	// forever.
	mustExec bool
}

// group is a set of lanes sharing the same next position.
type group struct {
	pos  position
	mask uint64
}

// warpReplay replays warps one at a time for a single worker, reusing its
// stack, cursor, group and lane buffers across warps so the steady-state
// inner loop allocates nothing.
type warpReplay struct {
	warpIndex int
	wm        *WarpMetrics
	acc       *accumulator
	graphs    map[uint32]*cfg.DCFG
	pdoms     map[uint32]*ipdom.PostDom
	opts      Options
	tids      []int
	cursors   []cursor
	done      uint64
	stack     []entry

	groupBuf  []group
	laneBuf   []int
	recBuf    []*trace.Record
	threadBuf []int
	// Lane-indexed full SoA columns of the warp's threads, set once per warp
	// (replayWarp); fused windows index them as col[lane][cursorIdx+k], so
	// per-window setup writes only the plain-integer idxBuf — no
	// pointer-bearing slice headers, no write barriers on the hot path.
	warpCtl [][]uint64
	idxBuf  []int32
	fview   fusedView
	cols    *trace.Cols
	mem     MemCharger
	exec    BlockExec
	// fuse enables the lockstep-fusion fast path; resolved once per worker
	// (off when a Listener needs per-block callbacks or the A/B hooks say so).
	fuse bool
	// curFn/curBlock name the block execBlock is currently charging, so the
	// MemCharger.Site sink can attribute per-instruction outcomes without a
	// per-block closure.
	curFn, curBlock uint32
}

func newWarpReplay(graphs map[uint32]*cfg.DCFG, pdoms map[uint32]*ipdom.PostDom, opts Options, acc *accumulator, cols *trace.Cols) *warpReplay {
	wr := &warpReplay{
		graphs: graphs,
		pdoms:  pdoms,
		opts:   opts,
		acc:    acc,
		cols:   cols,
		stack:  make([]entry, 0, 16),
	}
	// One bound-method value per worker; the per-block hot path only writes
	// curFn/curBlock.
	wr.mem.Site = wr.noteSite
	wr.fuse = cols != nil
	return wr
}

// noteSite is the MemCharger.Site sink: it attributes one per-instruction
// coalescing outcome to the block execBlock is charging.
func (wr *warpReplay) noteSite(instr uint16, stackTx, heapTx int) {
	wr.acc.memSite(wr.curFn, wr.curBlock, instr).note(stackTx, heapTx)
}

// replayWarp runs one warp to completion, writing its per-warp metrics into
// wm (an exclusive slot of the shared Result) and its shared metrics into
// the worker's accumulator.
func (wr *warpReplay) replayWarp(t *trace.Trace, wi int, w warp.Warp, wm *WarpMetrics) error {
	wr.warpIndex = wi
	wr.wm = wm
	wr.tids = w
	if cap(wr.cursors) < len(w) {
		wr.cursors = make([]cursor, len(w))
	} else {
		wr.cursors = wr.cursors[:len(w)]
	}
	for i, tid := range w {
		wr.cursors[i].reset(t.Threads[tid])
	}
	if wr.fuse {
		wctl := wr.warpCtl[:0]
		woff := wr.fview.off[:0]
		waddr := wr.fview.addr[:0]
		wmeta := wr.fview.meta[:0]
		for _, tid := range w {
			wctl = append(wctl, wr.cols.Ctl[tid])
			woff = append(woff, wr.cols.MemOff[tid])
			waddr = append(waddr, wr.cols.MemAddr[tid])
			wmeta = append(wmeta, wr.cols.MemMeta[tid])
		}
		wr.warpCtl = wctl
		wr.fview.off, wr.fview.addr, wr.fview.meta = woff, waddr, wmeta
	}
	wr.done = 0
	wr.stack = wr.stack[:0]
	if err := wr.run(); err != nil {
		return fmt.Errorf("simt: warp %d: %w", wi, err)
	}
	for i := range wr.cursors {
		wr.acc.skipIO += wr.cursors[i].skipIO
		wr.acc.skipSpin += wr.cursors[i].skipSpin
	}
	return nil
}

func (wr *warpReplay) run() error {
	all := uint64(0)
	for i := range wr.cursors {
		all |= 1 << uint(i)
	}
	wr.stack = append(wr.stack, entry{mask: all})

	var maxSteps uint64 = 1024
	for i := range wr.cursors {
		maxSteps += uint64(len(wr.cursors[i].recs)) * 8
	}

	for steps := uint64(0); len(wr.stack) > 0; steps++ {
		// Poll cancellation every 4096 steps: cheap enough to vanish in the
		// loop (one masked branch), frequent enough that a request abort or
		// deadline stops even a single warp with millions of records.
		if steps&4095 == 0 {
			if err := cancelErr(wr.opts.Context); err != nil {
				return err
			}
		}
		if steps > maxSteps {
			var desc string
			for i := range wr.stack {
				e := &wr.stack[i]
				desc += fmt.Sprintf("\n  entry %d: mask=%x rpc=%v(hasRPC=%v) last=%v", i, e.mask, e.rpc, e.hasRPC, e.last)
			}
			top := &wr.stack[len(wr.stack)-1]
			for _, g := range wr.group(top.mask &^ wr.done) {
				desc += fmt.Sprintf("\n  top group: pos=%v mask=%x", g.pos, g.mask)
			}
			return fmt.Errorf("replay exceeded %d steps: SIMT stack livelock (stack depth %d)%s", maxSteps, len(wr.stack), desc)
		}
		e := &wr.stack[len(wr.stack)-1]
		active := e.mask &^ wr.done
		groups := wr.group(active)

		if len(groups) == 0 {
			wr.pop()
			continue
		}
		if e.hasRPC && (!e.mustExec || e.hasLast) && allAtOrPast(e, groups) {
			wr.pop()
			continue
		}
		if len(groups) == 1 {
			g := groups[0]
			// Converged warps spend most of their time in runs of agreeing
			// block records (loops): the fused path executes the whole run as
			// verified windows with scaled accounting, subsuming the stepped
			// execGroup entirely. It consumes nothing when the next element
			// is not provably fusible — a skip/call prefix before the block
			// record, a lock operation, the entry's reconvergence position —
			// and the stepped execGroup then takes exactly one step.
			if g.pos.kind == posBlock && wr.fuse {
				n, err := wr.execRunFused(e, g.pos, g.mask)
				if err != nil {
					return err
				}
				if n > 0 {
					continue
				}
			}
			if err := wr.execGroup(e, g.pos, g.mask); err != nil {
				return err
			}
			// Batch the rest of the run without re-forming groups each
			// iteration; with fusion on, the fused window above already did,
			// so the stepped execRun remains as the listener/A-B path.
			if g.pos.kind == posBlock && !wr.opts.disableRunBatch && !wr.fuse {
				if err := wr.execRun(e, g.pos, g.mask); err != nil {
					return err
				}
			}
			continue
		}
		wr.diverge(e, groups)
	}
	for i := range wr.cursors {
		wr.cursors[i].drainTrailingSkips()
	}
	return nil
}

func (wr *warpReplay) pop() {
	wr.stack = wr.stack[:len(wr.stack)-1]
}

// cancelErr translates a done context into a replay error; a nil context
// never cancels.
func cancelErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("simt: replay canceled: %w", err)
	}
	return nil
}

// allAtOrPast reports whether every group has reached the entry's
// reconvergence position. A group counts as "past" it only when the entry
// has already executed at or inside the reconvergence frame and the group
// has since returned below it — the escape hatch for the approximate
// critical-section reconvergence points. Lanes that have merely not yet
// descended to the reconvergence depth must keep executing, or serialized
// entries would pop before doing any work and re-serialize forever.
func allAtOrPast(e *entry, groups []group) bool {
	escaped := e.hasLast && e.last.depth >= e.rpc.depth
	for _, g := range groups {
		if g.pos == e.rpc {
			continue
		}
		if escaped && g.pos.depth < e.rpc.depth {
			continue
		}
		return false
	}
	return true
}

// group partitions the active lanes by their next position, dropping lanes
// whose traces are exhausted (and recording them as done). Groups are sorted
// by position key for determinism. The returned slice aliases the replay's
// reusable buffer and is only valid until the next call.
func (wr *warpReplay) group(active uint64) []group {
	groups := wr.groupBuf[:0]
	for m := active; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		pos := wr.cursors[lane].peek()
		if pos.kind == posDone {
			wr.cursors[lane].drainTrailingSkips()
			wr.done |= 1 << uint(lane)
			continue
		}
		found := false
		for i := range groups {
			if groups[i].pos == pos {
				groups[i].mask |= 1 << uint(lane)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, group{pos: pos, mask: 1 << uint(lane)})
		}
	}
	// Insertion sort by position key: group counts are tiny (bounded by the
	// warp width) and this avoids sort.Slice allocations in the inner loop.
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j].pos.key() < groups[j-1].pos.key(); j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
	wr.groupBuf = groups
	return groups
}

// diverge handles multiple distinct next positions within one entry: the
// divergent branch's IPDOM becomes the reconvergence point and one stack
// entry per distinct target is pushed (paper figure 2).
func (wr *warpReplay) diverge(e *entry, groups []group) {
	rpc := wr.reconvergencePoint(e, groups)
	wr.recordDivergence(e, groups)
	tagged := e.hasLast && e.last.kind == posBlock
	brFn, brBlock := e.last.fn, e.last.block
	// Lanes already at the reconvergence point wait in the parent entry.
	for i := len(groups) - 1; i >= 0; i-- { // reverse so the lowest key ends on top
		g := groups[i]
		if g.pos == rpc {
			continue
		}
		ne := entry{mask: g.mask, rpc: rpc, hasRPC: true}
		if tagged {
			ne.brFn, ne.brBlock, ne.hasBranch = brFn, brBlock, true
		}
		wr.stack = append(wr.stack, ne)
	}
	// At least one group differs from rpc (groups have pairwise-distinct
	// positions and at most one can equal it), so progress is guaranteed.
}

// recordDivergence attributes a warp split to the block whose terminator
// caused it (the entry's most recently executed block).
func (wr *warpReplay) recordDivergence(e *entry, groups []group) {
	if !e.hasLast || e.last.kind != posBlock {
		return
	}
	bs := wr.acc.branchStats(e.last.fn, e.last.block)
	bs.Divergences++
	bs.Paths += uint64(len(groups))
	var total, largest int
	for _, g := range groups {
		n := bits.OnesCount64(g.mask)
		total += n
		if n > largest {
			largest = n
		}
	}
	bs.LanesOff += uint64(total - largest)
}

// reconvergencePoint picks the RPC for a divergence. The normal case uses
// the IPDOM of the block the entry just executed. If any group already sits
// at the entry's own reconvergence position (loop-exit divergence), that
// position is reused. Pathological mixes (differing depths after approximate
// critical-section reconvergence) fall back to the virtual exit of the
// shallowest group's function.
func (wr *warpReplay) reconvergencePoint(e *entry, groups []group) position {
	if e.hasRPC {
		for _, g := range groups {
			if g.pos == e.rpc {
				return e.rpc
			}
		}
	}
	minDepth := groups[0].pos.depth
	for _, g := range groups[1:] {
		if g.pos.depth < minDepth {
			minDepth = g.pos.depth
		}
	}
	// Whenever every group sits at or below (deeper than) the frame of the
	// block that just executed, its IPDOM is the reconvergence point. This
	// covers ordinary branch divergence (groups at the same depth) and
	// divergent indirect calls (every lane entered a different callee, one
	// frame deeper): the lanes rejoin at the caller's join block after
	// their callees return.
	if e.hasLast && e.last.kind == posBlock && minDepth >= e.last.depth {
		return wr.ipdomPos(e.last.fn, e.last.block, e.last.depth)
	}
	// Fallback for depth mixes left behind by approximate critical-section
	// reconvergence: the virtual exit of the shallowest group's function.
	min := groups[0]
	for _, g := range groups[1:] {
		if g.pos.depth < min.pos.depth {
			min = g
		}
	}
	return position{kind: posExit, fn: min.pos.fn, depth: min.pos.depth}
}

// ipdomPos maps a block's immediate post-dominator to a replay position.
func (wr *warpReplay) ipdomPos(fn, block uint32, depth int32) position {
	g := wr.graphs[fn]
	pd := wr.pdoms[fn]
	if g == nil || pd == nil {
		return position{kind: posExit, fn: fn, depth: depth}
	}
	ip := pd.IPDom(int32(block))
	if ip == g.ExitNode() {
		return position{kind: posExit, fn: fn, depth: depth}
	}
	return position{kind: posBlock, fn: fn, block: uint32(ip), depth: depth}
}

// execGroup executes one lockstep step (a basic block or a function exit)
// for the given lanes.
func (wr *warpReplay) execGroup(e *entry, pos position, mask uint64) error {
	switch pos.kind {
	case posExit:
		for m := mask; m != 0; m &= m - 1 {
			wr.cursors[bits.TrailingZeros64(m)].consumeExit()
		}
		e.last, e.hasLast = pos, true
		return nil
	case posBlock:
		if wr.opts.EmulateLocks && wr.maybeSerialize(e, pos, mask) {
			return nil
		}
		return wr.execBlock(e, pos, mask)
	}
	return fmt.Errorf("execGroup on %v", pos)
}

// execRun executes the tail of a run of identical block records in one
// batch: as long as every lane's immediate next record is another execution
// of pos's block (and carries no lock operations when locks are emulated),
// stepping the main loop would deterministically produce the same
// single-group execution again, so the loop's group formation, sorting, and
// reconvergence checks are skipped wholesale. The batch is exact, not an
// approximation: each iteration reuses execBlock, so instruction charging,
// branch-region accounting, memory coalescing, and listener callbacks are
// bit-identical to the stepped replay (the equivalence test pins this down).
func (wr *warpReplay) execRun(e *entry, pos position, mask uint64) error {
	// At the entry's reconvergence position the stepped loop pops instead of
	// executing again (e.hasLast is set after the block above); any other
	// pop condition needs pos.depth both >= and < the RPC depth at once,
	// which cannot happen, so this is the only exit the batch must respect.
	if e.hasRPC && e.rpc == pos {
		return nil
	}
	for wr.sameBlockRunNext(pos, mask) {
		if err := wr.execBlock(e, pos, mask); err != nil {
			return err
		}
	}
	return nil
}

// sameBlockRunNext reports whether every lane in mask has, as its immediate
// next record, another execution of pos's basic block with no lock
// operations to serialize — the condition under which one more stepped
// iteration is guaranteed to re-form exactly this group and execute it.
func (wr *warpReplay) sameBlockRunNext(pos position, mask uint64) bool {
	for m := mask; m != 0; m &= m - 1 {
		c := &wr.cursors[bits.TrailingZeros64(m)]
		if c.idx >= len(c.recs) {
			return false
		}
		r := &c.recs[c.idx]
		if r.Kind != trace.KindBBL || r.Func != pos.fn || r.Block != pos.block {
			return false
		}
		if wr.opts.EmulateLocks && len(r.Locks) > 0 {
			return false
		}
	}
	return true
}

// maxWindow bounds how many records one execRunFused call consumes, keeping
// the cancellation poll (every 4096 main-loop steps) reasonably prompt even
// for million-record converged phases; the main loop re-enters the fused
// path immediately, so the cap costs one group formation per maxWindow
// records.
const maxWindow = 8192

// uniformAt reports whether the static table clears fn's block for window
// extension (its terminator can never split a warp).
func uniformAt(uni [][]bool, fn, block uint32) bool {
	return int(fn) < len(uni) && int(block) < len(uni[fn]) && uni[fn][block]
}

// execRunFused executes the tail of a converged run as a fused window off
// the trace's packed SoA columns, in three passes. Pass 1 scans lane 0's
// control column for the longest window proposal the stepped loop would
// provably run as single full-mask groups: KindBBL words at constant call
// depth, no lock operations when locks are emulated, never the entry's
// reconvergence position, and (with a static table) no extension across a
// terminator the oracle did not prove warp-uniform. Pass 2 trims the
// proposal to the lanes' actual agreement: each other lane's control column
// is compared to lane 0's as two contiguous arrays — one 8-byte compare per
// element covering kind, function, block, size, lock presence, and
// access-list length at once — shrinking the window to the first
// disagreement. Pass 3 charges the surviving elements, re-reading lane 0's
// (now cache-hot) words: run-length-scaled instruction accounting (flushed
// when the (func, block, size) run breaks) and closed-form memory
// coalescing over the flat access columns. The stepped loop resumes at the
// first rejected element.
//
// Exactness does not rest on the static table: an element executes fused
// only after every active lane's control word was checked to be the same
// lock-free block execution, which is precisely the condition under which
// one more stepped iteration would re-form this single group and execute it
// (see execRun for why no pop condition can fire mid-run at constant depth).
// The UniformBranches table only shapes lane 0's proposal: with a table,
// windows stop at statically divergence-capable terminators, so fusion never
// speculates past a point where a warp split is possible; without one,
// windows extend through every same-function boundary and per-lane
// verification alone trims them. Control words marked CtlInvalid (packed
// field overflow) break the window like any disagreement, handing the
// element to the stepped engine, which reads full records.
func (wr *warpReplay) execRunFused(e *entry, pos position, mask uint64) (int, error) {
	// At the entry's reconvergence position the stepped loop either pops or
	// — under a mustExec entry that has not yet executed — must take a
	// stepped step with its serialization checks; never fuse it.
	if e.hasRPC && e.rpc == pos {
		return 0, nil
	}
	lanes := wr.laneBuf[:0]
	for m := mask; m != 0; m &= m - 1 {
		lanes = append(lanes, bits.TrailingZeros64(m))
	}
	wr.laneBuf = lanes
	active := len(lanes)
	idxs := wr.idxBuf[:0]
	maxK := maxWindow
	for _, l := range lanes {
		c := &wr.cursors[l]
		idxs = append(idxs, int32(c.idx))
		if rem := len(c.recs) - c.idx; rem < maxK {
			maxK = rem
		}
	}
	wr.idxBuf = idxs
	wr.fview.lanes, wr.fview.idxs = lanes, idxs
	ctls := wr.warpCtl
	ctl0 := ctls[lanes[0]][idxs[0]:]
	uni := wr.opts.UniformBranches
	// KindBBL packs to zero kind bits, so one mask test rejects every
	// non-block kind, invalid words, and (when emulating) lock carriers.
	reject := trace.CtlInvalid | trace.CtlKindMask
	if wr.opts.EmulateLocks {
		reject |= trace.CtlLocksBit
	}
	depth := pos.depth
	curBlock := pos.block // block of the latest proposed element
	curKey := trace.PackFnBlock(pos.fn, pos.block)
	fnKey := curKey & trace.CtlFuncMask
	// rpcKey is the entry's reconvergence position as a masked (fn, block)
	// key when it could appear inside this window, else a value no valid
	// word's key can equal.
	rpcKey := ^uint64(0)
	if e.hasRPC && e.rpc.kind == posBlock && e.rpc.depth == depth {
		rpcKey = trace.PackFnBlock(e.rpc.fn, e.rpc.block)
	}

	// Pass 1: lane 0's proposal.
	n := 0
	for ; n < maxK; n++ {
		c0 := ctl0[n]
		if c0&reject != 0 {
			break
		}
		key := c0 & trace.CtlFnBlockMask
		if key != curKey {
			// Interprocedural boundaries always end a window (well-formed
			// traces mark them with call/return records anyway); block
			// boundaries pass when the oracle cleared the terminator, or
			// unconditionally in runtime-detection mode (no table).
			if key&trace.CtlFuncMask != fnKey ||
				(uni != nil && !uniformAt(uni, pos.fn, curBlock)) {
				break
			}
		}
		// Never take the entry's reconvergence position into the window: the
		// stepped loop pops there instead of executing.
		if key == rpcKey {
			break
		}
		if key != curKey {
			curKey = key
			curBlock = trace.CtlBlock(key)
		}
	}
	// Pass 2: trim to the lanes' agreement — contiguous pairwise column
	// compares, shrinking n to the earliest disagreement.
	for li := 1; li < active && n > 0; li++ {
		col := ctls[lanes[li]]
		base := int(idxs[li])
		lane := col[base : base+n]
		for j := 0; j < len(lane); j++ {
			if lane[j] != ctl0[j] {
				n = j
				break
			}
		}
	}
	if n == 0 {
		return 0, nil
	}

	// Pass 3: charge the survivors. Scaled instruction charging accumulates
	// per run of identical (func, block, size) elements — one masked control
	// word — and flushes on run breaks, hoisting the per-function,
	// entry-block, and branch-region lookups out of the loop.
	wm := wr.wm
	var fm *FuncMetrics
	var runKey, runCnt uint64
	for k := 0; k < n; k++ {
		c0 := ctl0[k]
		if rk := c0 & trace.CtlRunMask; rk != runKey || runCnt == 0 {
			wr.flushRunKey(e, runKey, runCnt, active)
			runKey, runCnt = rk, 0
			// The window never leaves pos's function; only the block changes.
			wr.curFn, wr.curBlock = pos.fn, trace.CtlBlock(c0)
		}
		runCnt++
		if m := int(c0 >> trace.CtlMemShift & 7); m != 0 {
			if fm == nil {
				fm = wr.acc.funcMetrics(pos.fn)
			}
			if m == trace.CtlMemOverflow || !wr.mem.chargeFused(wm, fm, &wr.fview, k, m, active) {
				// Oversized or non-walkable access lists: gather the lanes'
				// records and charge through the stepped engine's path.
				recs := wr.recBuf[:0]
				for _, l := range lanes {
					c := &wr.cursors[l]
					recs = append(recs, &c.recs[c.idx+k])
				}
				wr.recBuf = recs
				wr.mem.Charge(wm, fm, recs)
			}
		}
	}
	wr.flushRunKey(e, runKey, runCnt, active)
	for _, l := range lanes {
		wr.cursors[l].advance(n)
	}
	e.last, e.hasLast = position{kind: posBlock, fn: pos.fn, block: trace.CtlBlock(ctl0[n-1]), depth: depth}, true
	return n, nil
}

// flushRunKey decodes one run's packed (func, block, N) identity and charges
// it; a zero count is a no-op.
func (wr *warpReplay) flushRunKey(e *entry, key, cnt uint64, active int) {
	if cnt == 0 {
		return
	}
	wr.flushRun(e, trace.CtlFunc(key), trace.CtlBlock(key), key&trace.CtlNMask, cnt, active)
}

// flushRun charges one run of cnt identical lockstep executions of an
// n-instruction block by active lanes — ChargeInstrs, entry-block
// invocation counting, and branch-region accounting scaled by the run
// length. A zero cnt is a no-op.
func (wr *warpReplay) flushRun(e *entry, fn, block uint32, n, cnt uint64, active int) {
	if cnt == 0 {
		return
	}
	total := n * cnt
	wm := wr.wm
	wm.Lockstep += total
	wm.ThreadInstrs += total * uint64(active)
	if active >= 0 && active <= MaxWarpSize {
		wm.LaneHistogram[active] += total
	}
	fm := wr.acc.funcMetrics(fn)
	fm.Lockstep += total
	fm.ThreadInstrs += total * uint64(active)
	if g := wr.graphs[fn]; g != nil && int32(block) == g.Entry() {
		fm.Invocations += cnt
	}
	if e.hasBranch {
		bs := wr.acc.branchStats(e.brFn, e.brBlock)
		bs.RegionLockstep += total
		bs.RegionThreadInstrs += total * uint64(active)
	}
}

// execBlock performs the lockstep execution of one basic block: advances
// every active lane's cursor, charges equation-1 instruction counts, and
// coalesces the block's memory accesses instruction by instruction.
func (wr *warpReplay) execBlock(e *entry, pos position, mask uint64) error {
	lanes := wr.laneBuf[:0]
	recs := wr.recBuf[:0]
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		r := wr.cursors[lane].consumeBlock()
		if r.Func != pos.fn || r.Block != pos.block {
			wr.laneBuf, wr.recBuf = lanes, recs
			return fmt.Errorf("lane %d consumed f%d.b%d, expected %v", lane, r.Func, r.Block, pos)
		}
		lanes = append(lanes, lane)
		recs = append(recs, r)
	}
	wr.laneBuf, wr.recBuf = lanes, recs
	fm := wr.acc.funcMetrics(pos.fn)
	ChargeInstrs(wr.wm, fm, recs[0].N, len(lanes))
	if g := wr.graphs[pos.fn]; g != nil && int32(pos.block) == g.Entry() {
		fm.Invocations++
	}
	if e.hasBranch {
		bs := wr.acc.branchStats(e.brFn, e.brBlock)
		bs.RegionLockstep += recs[0].N
		bs.RegionThreadInstrs += recs[0].N * uint64(len(lanes))
	}

	wr.curFn, wr.curBlock = pos.fn, pos.block
	wr.mem.Charge(wr.wm, fm, recs)

	if wr.opts.Listener != nil {
		threads := wr.threadBuf[:0]
		for _, l := range lanes {
			threads = append(threads, wr.tids[l])
		}
		wr.threadBuf = threads
		wr.exec = BlockExec{
			Warp:     wr.warpIndex,
			Func:     pos.fn,
			Block:    pos.block,
			Depth:    pos.depth,
			Lanes:    lanes,
			Threads:  threads,
			Records:  recs,
			NumLanes: wr.opts.WarpSize,
		}
		wr.opts.Listener.OnBlock(&wr.exec)
	}
	e.last, e.hasLast = pos, true
	return nil
}

// maybeSerialize inspects the block about to execute for contended lock
// acquisitions and, when at least two active lanes acquire the same address,
// rebuilds the schedule per the paper: same-lock lanes execute their
// critical sections serially while different-lock lanes proceed in parallel,
// all reconverging at the position following the matching release in the
// first contending lane's trace. Returns true if the stack was changed.
func (wr *warpReplay) maybeSerialize(e *entry, pos position, mask uint64) bool {
	if bits.OnesCount64(mask) < 2 {
		return false
	}
	// First acquire address per lane, if any.
	type laneAcq struct {
		lane int
		addr uint64
	}
	var acqs []laneAcq
	noAcq := uint64(0)
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		r := wr.cursors[lane].peekBlockRecord()
		addr, ok := firstAcquire(r)
		if !ok {
			noAcq |= 1 << uint(lane)
			continue
		}
		acqs = append(acqs, laneAcq{lane: lane, addr: addr})
	}
	if len(acqs) < 2 {
		return false
	}
	// Group lanes by lock address. Lanes acquiring different locks execute
	// in parallel (the paper's fine-grain-locking behaviour); lanes
	// contending for the same address serialize. The schedule is built in
	// rounds: round i holds the i-th contender of every distinct lock (all
	// distinct addresses, so a round never re-serializes), and round 0
	// additionally carries the lanes that acquire nothing.
	order := make([]uint64, 0, len(acqs))
	locks := make(map[uint64][]int, len(acqs))
	for _, a := range acqs {
		if _, seen := locks[a.addr]; !seen {
			order = append(order, a.addr)
		}
		locks[a.addr] = append(locks[a.addr], a.lane)
	}
	rounds := 0
	contended := false
	var firstSerial laneAcq
	for _, addr := range order {
		lanes := locks[addr]
		if len(lanes) > rounds {
			rounds = len(lanes)
		}
		if len(lanes) >= 2 && !contended {
			contended = true
			firstSerial = laneAcq{lane: lanes[0], addr: addr}
		}
	}
	if !contended {
		return false
	}

	var rpc position
	if wr.opts.LockReconvergence == ReconvergeAtRelease {
		var ok bool
		rpc, ok = wr.cursors[firstSerial.lane].releasePosition(firstSerial.addr)
		if !ok {
			rpc = position{kind: posExit, fn: pos.fn, depth: pos.depth}
		}
	} else {
		rpc = position{kind: posExit, fn: pos.fn, depth: pos.depth}
	}

	roundMasks := make([]uint64, rounds)
	var serialized uint64
	for _, addr := range order {
		for i, lane := range locks[addr] {
			roundMasks[i] |= 1 << uint(lane)
			if i > 0 {
				wr.wm.SerializedLanes++
				serialized++
			}
		}
	}
	roundMasks[0] |= noAcq
	wr.wm.LockSerializations++
	fm := wr.acc.funcMetrics(pos.fn)
	fm.LockSerializations++
	fm.SerializedLanes += serialized

	// Parent waits at the reconvergence point; push later rounds first so
	// round 0 ends on top of the stack and executes first. When the critical
	// section is one self-looping block, rpc equals the current position and
	// each round must execute its block before the reconvergence check.
	mustExec := rpc == pos
	for i := rounds - 1; i >= 0; i-- {
		wr.stack = append(wr.stack, entry{mask: roundMasks[i], rpc: rpc, hasRPC: true, mustExec: mustExec})
	}
	return true
}

// firstAcquire returns the address of the first lock-acquire operation in a
// block record.
func firstAcquire(r *trace.Record) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	for _, l := range r.Locks {
		if !l.Release {
			return l.Addr, true
		}
	}
	return 0, false
}
