package check

import (
	"fmt"
	"math/rand"

	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// Generate builds a random, always-valid multi-threaded trace from a seed.
// The same seed yields the same trace on every run, so tfcheck failures are
// reproducible from the seed alone. Generated traces exercise every record
// kind: nested calls, data-dependent block walks, per-instruction memory
// accesses across all three segments, balanced and deliberately unbalanced
// lock pairs, and skip records.
func Generate(seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &trace.Trace{Program: fmt.Sprintf("gen-%d", seed)}

	nf := 1 + rng.Intn(3)
	for f := 0; f < nf; f++ {
		nb := 1 + rng.Intn(4)
		fi := trace.FuncInfo{Name: fmt.Sprintf("g%d", f)}
		for b := 0; b < nb; b++ {
			fi.Blocks = append(fi.Blocks, trace.BlockInfo{NInstr: uint32(1 + rng.Intn(6))})
		}
		t.Funcs = append(t.Funcs, fi)
	}

	nthreads := 1 + rng.Intn(5)
	for tid := 0; tid < nthreads; tid++ {
		g := &genThread{rng: rng, funcs: t.Funcs, tid: tid}
		g.invoke(0, 0)
		t.Threads = append(t.Threads, &trace.ThreadTrace{TID: tid, Records: g.recs})
	}
	if err := t.Validate(); err != nil {
		// The generator's contract is validity; a failure here is a bug in
		// the generator itself, not in the system under test.
		panic(fmt.Sprintf("check: generated trace invalid (seed %d): %v", seed, err))
	}
	return t
}

type genThread struct {
	rng   *rand.Rand
	funcs []trace.FuncInfo
	tid   int
	recs  []trace.Record
}

// invoke emits one balanced call..ret invocation of fn, with random block
// executions, nested calls, memory, locks and skips in between.
func (g *genThread) invoke(fn uint32, depth int) {
	g.recs = append(g.recs, trace.Record{Kind: trace.KindCall, Callee: fn})
	blocks := g.funcs[fn].Blocks
	steps := 1 + g.rng.Intn(4)
	for s := 0; s < steps; s++ {
		b := uint32(g.rng.Intn(len(blocks)))
		n := uint64(blocks[b].NInstr)
		r := trace.Record{Kind: trace.KindBBL, Func: fn, Block: b, N: n}
		if g.rng.Intn(2) == 0 {
			r.Mem = g.mem(n)
		}
		if g.rng.Intn(4) == 0 {
			r.Locks = g.locks(n)
		}
		g.recs = append(g.recs, r)
		if depth < 2 && g.rng.Intn(4) == 0 {
			g.invoke(uint32(g.rng.Intn(len(g.funcs))), depth+1)
		}
		if g.rng.Intn(8) == 0 {
			kind := trace.SkipIO
			if g.rng.Intn(2) == 0 {
				kind = trace.SkipSpin
			}
			g.recs = append(g.recs, trace.Record{Kind: trace.KindSkip, SkipKind: kind, N: uint64(1 + g.rng.Intn(20))})
		}
	}
	g.recs = append(g.recs, trace.Record{Kind: trace.KindRet})
}

// mem emits 1-3 accesses at random instruction indices of an n-instruction
// block, mixing segments, sizes and strides (including per-thread stack
// addresses and deliberately unaligned sector-crossing accesses).
func (g *genThread) mem(n uint64) []trace.MemAccess {
	count := 1 + g.rng.Intn(3)
	out := make([]trace.MemAccess, 0, count)
	sizes := []uint8{1, 2, 4, 8}
	for i := 0; i < count; i++ {
		var base uint64
		switch g.rng.Intn(3) {
		case 0:
			base = vm.GlobalBase
		case 1:
			base = vm.HeapBase
		default:
			base = vm.StackBase + uint64(g.tid)*4096
		}
		out = append(out, trace.MemAccess{
			Instr: uint16(g.rng.Int63n(int64(n))),
			Addr:  base + uint64(g.rng.Intn(512)),
			Size:  sizes[g.rng.Intn(len(sizes))],
			Store: g.rng.Intn(2) == 0,
		})
	}
	return out
}

// locks emits a lock pattern within one block: usually a balanced
// acquire/release of a shared address, occasionally an unbalanced acquire, a
// bare release, a recursive double-acquire, or a two-lock nesting whose
// order flips with the thread id — the seed shapes the lock-order and
// "staticlockset" checks (and their delta-debug shrinks) need to see.
func (g *genThread) locks(n uint64) []trace.LockOp {
	addr := vm.GlobalBase + 1024 + 64*uint64(g.rng.Intn(3))
	acq := uint16(g.rng.Int63n(int64(n)))
	switch g.rng.Intn(10) {
	case 0: // acquire without release (leak)
		return []trace.LockOp{{Instr: acq, Addr: addr}}
	case 1: // bare release
		return []trace.LockOp{{Instr: acq, Addr: addr, Release: true}}
	case 2: // recursive: acquire twice, release twice (depth bookkeeping)
		return []trace.LockOp{
			{Instr: acq, Addr: addr},
			{Instr: acq, Addr: addr},
			{Instr: acq, Addr: addr, Release: true},
			{Instr: acq, Addr: addr, Release: true},
		}
	case 3: // tid-flipped nesting of two fixed words: seeds order cycles
		a := vm.GlobalBase + 1024
		b := vm.GlobalBase + 1088
		if g.tid%2 == 1 {
			a, b = b, a
		}
		return []trace.LockOp{
			{Instr: acq, Addr: a},
			{Instr: acq, Addr: b},
			{Instr: acq, Addr: b, Release: true},
			{Instr: acq, Addr: a, Release: true},
		}
	default:
		rel := acq
		if uint64(acq)+1 < n {
			rel = acq + uint16(1+g.rng.Int63n(int64(n-uint64(acq)-1)))
		}
		return []trace.LockOp{{Instr: acq, Addr: addr}, {Instr: rel, Addr: addr, Release: true}}
	}
}
