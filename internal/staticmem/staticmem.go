// Package staticmem is ThreadFuser's static memory oracle: an
// interprocedural analysis over the IR that predicts, before any trace
// exists, the coalescing behaviour the dynamic replay measures with the
// 32-byte-sector model (internal/coalesce, paper section III). It completes
// the static trilogy: staticsimt predicts branch divergence, staticlock
// predicts concurrency facts, and this package predicts memory divergence.
//
// The analysis reuses staticlock's symbolic linear-address machinery — the
// converged interprocedural `c + Σcoeff·root` states over arg/tid/sp roots —
// so the memory and lock oracles can never disagree about what an address
// expression is. Every load/store site is classified by its effective
// per-lane tid-stride k = tidCoeff + spCoeff·vm.StackSize (the entry stack
// pointer itself strides by StackSize per thread):
//
//	broadcast   k == 0                 every lane reads the same address
//	coalesced   0 < |k| ≤ access size  lanes touch adjacent/overlapping bytes
//	strided     |k| > access size      lanes touch disjoint strided words
//	scattered   address not linear     loads, joins of unequal paths, unknown
//
// From the classification the coalesce sector math is evaluated
// symbolically into a per-site static transactions-per-warp bound
// (Site.TxBound): a warp of W contiguous tids accessing base+k·tid spans at
// most |k|·(W−1)+size bytes, hence maxSectors of that extent, and never more
// than W·maxSectors(size) however the lanes scatter. Sites reachable with a
// split warp (staticsimt influence regions and divergent-context functions)
// are widened to the scatter bound — an active-mask-dependent address can
// lose the contiguity argument even when each path's expression is linear.
//
// The contract mirrors the other two oracles: the static view
// over-approximates the dynamic one. No replayed warp execution of a site
// may exceed its static bound (internal/check's "staticcoalesce" invariant),
// and a site claimed stack-segment must never observe heap transactions
// (internal/analysis' "staticmem" pass cross-checks both against the per-site
// histograms the replay aggregates); static scattered classifications that
// replay observes fully coalesced are the precision gap. See DESIGN.md §15.
package staticmem

import (
	"fmt"
	"io"
	"sort"

	"threadfuser/internal/coalesce"
	"threadfuser/internal/ir"
	"threadfuser/internal/opt"
	"threadfuser/internal/staticlock"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/vm"
)

// Stride classes, from tightest to loosest.
const (
	ClassBroadcast = "broadcast"
	ClassCoalesced = "coalesced"
	ClassStrided   = "strided"
	ClassScattered = "scattered"
)

// Static segment claims.
const (
	SegmentStack   = "stack"   // sp-rooted: every access lands in a thread stack
	SegmentOther   = "other"   // precise, not sp-rooted: heap/global under shared-world
	SegmentUnknown = "unknown" // imprecise address: no segment claim
)

// Site is one static load/store instruction with its converged symbolic
// address classification. Sites appear in program order (function id, block
// id, instruction index), one entry per memory operand, aligned with the
// dynamic per-site histograms keyed the same way.
type Site struct {
	Func     uint32 `json:"func"`
	FuncName string `json:"func_name"`
	Block    uint32 `json:"block"`
	Instr    uint16 `json:"instr"`
	Load     bool   `json:"load,omitempty"`
	Store    bool   `json:"store,omitempty"`
	Size     uint8  `json:"size"`
	// Shape is the canonical symbolic address ("arg0+8*tid+16", "?" when
	// unknown), staticlock's identity rendering.
	Shape string `json:"shape"`
	// Class is the stride classification: broadcast, coalesced, strided or
	// scattered.
	Class string `json:"class"`
	// Stride is the effective per-lane stride in bytes (tid coefficient plus
	// sp coefficient times vm.StackSize), valid when StrideKnown.
	StrideKnown bool  `json:"stride_known,omitempty"`
	Stride      int64 `json:"stride,omitempty"`
	// Segment is the static segment claim: stack, other, or unknown.
	Segment string `json:"segment"`
	// Divergent marks sites reachable with a split warp: inside a divergent
	// branch's influence region, or anywhere in a function callable under
	// divergent control. Their warp-span bound is widened to the scatter
	// bound.
	Divergent bool `json:"divergent,omitempty"`
	// Unreachable marks sites in phantom functions or unreached blocks; they
	// carry the worst-case bound.
	Unreachable bool `json:"unreachable,omitempty"`
	// Warp32Bound is TxBound(32, true), the headline transactions-per-warp
	// bound at the paper's warp width, precomputed for display and JSON.
	Warp32Bound int `json:"warp32_bound"`
}

// maxSectors returns the worst-alignment number of TransactionSize-byte
// sectors one contiguous l-byte extent can span: ceil((l-1)/32)+1, the
// symbolic evaluation of coalesce.Count's first/last-sector arithmetic.
func maxSectors(l int64) int {
	if l <= 0 {
		return 0
	}
	return int((l+coalesce.TransactionSize-2)/coalesce.TransactionSize) + 1
}

// TxBound returns the static transactions-per-warp bound for the site: the
// most 32-byte transactions any single warp-level execution of this
// instruction can require at the given warp width, summed over the site's
// load and store directions (an RMW charges both, exactly as the dynamic
// MemCharger does). contiguous states that warp lanes hold consecutive
// thread ids (round-robin formation); other formations scatter a linear
// stride across the address space, so only the per-lane bound holds. The
// bound is subset-closed: any active-mask subset of a warp touches a subset
// of the full warp's extent, so it holds under divergence and lock
// serialization too.
func (s *Site) TxBound(warpSize int, contiguous bool) int {
	dirs := 0
	if s.Load {
		dirs++
	}
	if s.Store {
		dirs++
	}
	return dirs * s.dirBound(warpSize, contiguous)
}

func (s *Site) dirBound(warpSize int, contiguous bool) int {
	lane := warpSize * maxSectors(int64(s.Size))
	switch s.Class {
	case ClassBroadcast:
		// Every lane issues the same address: one access's worth of sectors
		// regardless of the active mask or formation.
		return maxSectors(int64(s.Size))
	case ClassCoalesced, ClassStrided:
		if !contiguous || s.Divergent {
			return lane
		}
		k := s.Stride
		if k < 0 {
			k = -k
		}
		span := maxSectors(k*int64(warpSize-1) + int64(s.Size))
		if span < lane {
			return span
		}
		return lane
	default:
		return lane
	}
}

// Result is the static memory oracle's projection for one program.
type Result struct {
	Program string `json:"program"`
	Sites   []Site `json:"sites,omitempty"`

	// Summary totals over reachable sites.
	Broadcast int `json:"broadcast"`
	Coalesced int `json:"coalesced"`
	Strided   int `json:"strided"`
	Scattered int `json:"scattered"`
	// DivergentSites counts sites reachable with a split warp.
	DivergentSites int `json:"divergent_sites,omitempty"`
	// UnreachableSites counts placeholder entries for unreached code.
	UnreachableSites int `json:"unreachable_sites,omitempty"`
	// MeldsRejectedMem counts DARM meld candidates this oracle vetoed in the
	// staticsimt matcher because an arm holds a broadcast or coalesced site
	// that melding would force onto every lane.
	MeldsRejectedMem int `json:"melds_rejected_mem,omitempty"`

	idx map[siteKey]int
}

type siteKey struct {
	fn    uint32
	block uint32
	instr uint16
}

// SiteAt returns the index of the memory site at (fn, block, instr) and
// whether one exists.
func (r *Result) SiteAt(fn, block uint32, instr uint16) (int, bool) {
	i, ok := r.idx[siteKey{fn, block, instr}]
	return i, ok
}

// Analyze runs the static memory oracle over a program: the shared symbolic
// address fixpoint, one classification replay per reached block, then the
// SIMT uniformity oracle — with this oracle plugged into its meld matcher as
// the memory-legality input — for divergence widening. The program must be
// valid (ir.Validate); workloads and opt transforms only produce valid
// programs.
func Analyze(p *ir.Program) *Result {
	sym := staticlock.AnalyzeSymbolic(p)
	r := &Result{Program: p.Name, idx: map[siteKey]int{}}

	// Classify every memory operand over the converged block-entry states.
	// Unreached blocks still get (worst-case) entries so the site table stays
	// aligned with the dynamic histogram keying, mirroring staticlock's
	// Sites-table convention.
	byBlock := map[siteKey][]int{} // (fn, block, 0) -> site indices, for the meld check
	for fi, f := range p.Funcs {
		fid := uint32(f.ID)
		phantom := sym.Phantom(fi)
		for bi, b := range f.Blocks {
			bid := uint32(b.ID)
			reached := sym.BlockReached(fi, bi)
			st := sym.BlockState(fi, bi)
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if m, load, store := in.MemOperand(); load || store {
					s := Site{
						Func: fid, FuncName: f.Name, Block: bid, Instr: uint16(ii),
						Load: load, Store: store, Size: m.Size,
						Shape: staticlock.TopShape, Class: ClassScattered, Segment: SegmentUnknown,
						Unreachable: phantom || !reached,
					}
					if reached {
						classify(&s, st.Addr(m), m.Size)
					}
					key := siteKey{fid, bid, uint16(ii)}
					r.idx[key] = len(r.Sites)
					bk := siteKey{fid, bid, 0}
					byBlock[bk] = append(byBlock[bk], len(r.Sites))
					r.Sites = append(r.Sites, s)
				}
				if reached {
					st.Step(in)
				}
			}
		}
	}

	// Run the SIMT oracle with this analysis as the meld matcher's
	// memory-legality input: melding is vetoed when an arm holds a broadcast
	// or coalesced site, since the flattened code would issue that arm's
	// accesses on every lane of every traversal.
	meldMem := func(fn uint32) opt.MeldMemCheck {
		return func(thenSide, elseSide *ir.Block) bool {
			for _, arm := range [2]*ir.Block{thenSide, elseSide} {
				if arm == nil {
					continue
				}
				for _, si := range byBlock[siteKey{fn, uint32(arm.ID), 0}] {
					switch r.Sites[si].Class {
					case ClassBroadcast, ClassCoalesced:
						return false
					}
				}
			}
			return true
		}
	}
	ssr := staticsimt.Analyze(p, staticsimt.Options{MeldMem: meldMem})
	r.MeldsRejectedMem = ssr.MeldsRejectedMem

	// Divergence widening: any site inside an influence region or in a
	// divergent-context function may execute with a split warp.
	for fi := range ssr.Funcs {
		fr := &ssr.Funcs[fi]
		if fr.DivergentContext {
			for i := range r.Sites {
				if r.Sites[i].Func == fr.ID {
					r.Sites[i].Divergent = true
				}
			}
			continue
		}
		for _, bid := range fr.Influenced {
			for _, si := range byBlock[siteKey{fr.ID, bid, 0}] {
				r.Sites[si].Divergent = true
			}
		}
	}

	// Totals and headline bounds (after widening: Warp32Bound depends on
	// Divergent).
	for i := range r.Sites {
		s := &r.Sites[i]
		s.Warp32Bound = s.TxBound(32, true)
		if s.Unreachable {
			r.UnreachableSites++
			continue
		}
		if s.Divergent {
			r.DivergentSites++
		}
		switch s.Class {
		case ClassBroadcast:
			r.Broadcast++
		case ClassCoalesced:
			r.Coalesced++
		case ClassStrided:
			r.Strided++
		default:
			r.Scattered++
		}
	}
	sortSites(r)
	return r
}

// classify fills the stride class and segment claim of one reachable site
// from its symbolic effective address.
func classify(s *Site, a staticlock.SymAddr, size uint8) {
	s.Shape = a.Shape()
	if !a.Precise() {
		s.Class = ClassScattered
		s.Segment = SegmentUnknown
		return
	}
	// The entry stack pointer is StackBase+(tid+1)·StackSize, so sp
	// contributes StackSize per thread on top of any explicit tid term.
	k := a.TIDCoeff() + a.SPCoeff()*int64(vm.StackSize)
	s.StrideKnown = true
	s.Stride = k
	ak := k
	if ak < 0 {
		ak = -ak
	}
	switch {
	case k == 0:
		s.Class = ClassBroadcast
	case ak <= int64(size):
		s.Class = ClassCoalesced
	default:
		s.Class = ClassStrided
	}
	if a.SPRooted() {
		s.Segment = SegmentStack
	} else {
		s.Segment = SegmentOther
	}
}

// sortSites imposes the deterministic program order (the construction order
// already is program order; the sort makes the invariant explicit and keeps
// JSON byte-stable under any future construction change).
func sortSites(r *Result) {
	sort.SliceStable(r.Sites, func(i, j int) bool {
		a, b := &r.Sites[i], &r.Sites[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Instr < b.Instr
	})
	for i := range r.Sites {
		s := &r.Sites[i]
		r.idx[siteKey{s.Func, s.Block, s.Instr}] = i
	}
}

// Render writes the human-readable report. Verbose lists every site; the
// default lists only strided and scattered sites (the memory-divergence
// hotspots) plus meld vetoes.
func (r *Result) Render(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "%s: %d mem site(s): %d broadcast, %d coalesced, %d strided, %d scattered (%d divergent, %d unreachable)\n",
		r.Program, len(r.Sites), r.Broadcast, r.Coalesced, r.Strided, r.Scattered, r.DivergentSites, r.UnreachableSites)
	if r.MeldsRejectedMem > 0 {
		fmt.Fprintf(w, "  %d meld candidate(s) vetoed: melding would break a coalesced arm\n", r.MeldsRejectedMem)
	}
	for i := range r.Sites {
		s := &r.Sites[i]
		if s.Unreachable {
			continue
		}
		if !verbose && s.Class != ClassStrided && s.Class != ClassScattered {
			continue
		}
		stride := "?"
		if s.StrideKnown {
			stride = fmt.Sprintf("%+d", s.Stride)
		}
		div := ""
		if s.Divergent {
			div = " divergent"
		}
		fmt.Fprintf(w, "  %s b%d i%d: %-9s stride %s size %d seg %s addr %s ≤%d tx/warp32%s\n",
			s.FuncName, s.Block, s.Instr, s.Class, stride, s.Size, s.Segment, s.Shape, s.Warp32Bound, div)
	}
}
