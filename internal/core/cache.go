package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"threadfuser/internal/trace"
)

// Cache is a content-addressed on-disk report cache: every tfreport, tflint,
// and tfcheck invocation re-pays full replay even for a trace it analyzed
// seconds ago, and on paper-scale traces that preparation dominates. Entries
// are keyed by a SHA-256 over the trace content (its canonical v2 encoding,
// so the same trace hits regardless of which container version it travelled
// through) combined with the canonicalized analysis options and a schema
// tag that self-invalidates every entry when the Report format changes.
//
// The cache is strictly best-effort: writes are atomic (temp file + rename)
// so readers never see a torn entry, and any unreadable, corrupt, or
// schema-mismatched entry is treated as a miss and recomputed — corruption
// never surfaces as an error. A Cache is safe for concurrent use, including
// by multiple processes sharing one directory.
type Cache struct {
	dir string
}

// cacheSchema versions the on-disk entry layout AND the semantics of the
// cached computation. Bump it whenever Report gains fields or replay
// semantics change, so stale entries self-invalidate.
const cacheSchema = 1

// cacheEntry is the stored JSON envelope.
type cacheEntry struct {
	Schema int     `json:"schema"`
	Report *Report `json:"report"`
}

// NewCache returns a cache rooted at dir. The directory is created lazily on
// first store, so pointing at a read-only or nonexistent location merely
// disables storing.
func NewCache(dir string) *Cache {
	return &Cache{dir: dir}
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// DefaultCacheDir is the per-user default cache location the CLI front-ends
// share (-cache with no -cache-dir).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ".tfcache"
	}
	return filepath.Join(base, "threadfuser")
}

// OpenFlagCache resolves the -cache/-cache-dir CLI convention the front-ends
// share: nil (caching disabled) unless either flag is set, the default
// per-user directory when only -cache is given.
func OpenFlagCache(enabled bool, dir string) *Cache {
	if !enabled && dir == "" {
		return nil
	}
	if dir == "" {
		dir = DefaultCacheDir()
	}
	return NewCache(dir)
}

// traceDigest hashes the trace content by streaming its canonical (v2)
// encoding through SHA-256; no intermediate buffer is materialized.
func traceDigest(t *trace.Trace) ([sha256.Size]byte, error) {
	h := sha256.New()
	if err := trace.EncodeCompact(h, t); err != nil {
		return [sha256.Size]byte{}, err
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// cacheKeyFromDigest mixes the canonicalized options into the trace digest.
// Parallelism is deliberately excluded (parallel and serial replay are
// bit-identical — a standing tfcheck invariant), as is Listener (a listener
// observes replay, so listener runs bypass the cache entirely).
func cacheKeyFromDigest(sum [sha256.Size]byte, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "threadfuser report schema %d\n", cacheSchema)
	h.Write(sum[:])
	fmt.Fprintf(h, "\nwarp=%d formation=%s locks=%t lockreconv=%s\n",
		opts.WarpSize, opts.Formation, opts.EmulateLocks, opts.LockReconvergence)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheKey computes the full content-addressed key for one analysis.
func cacheKey(t *trace.Trace, opts Options) (string, error) {
	sum, err := traceDigest(t)
	if err != nil {
		return "", err
	}
	return cacheKeyFromDigest(sum, opts), nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// get loads the entry for key. Every failure mode — missing file, torn or
// truncated JSON, schema mismatch — is a miss, never an error.
func (c *Cache) get(key string) (*Report, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil || e.Schema != cacheSchema || e.Report == nil {
		return nil, false
	}
	// Rebuild the lazily-built name index eagerly so a cached report is
	// indistinguishable (reflect.DeepEqual) from a freshly computed one —
	// the verification engine compares reports across matrix cells.
	e.Report.funcIndex = buildFuncIndex(e.Report.PerFunction)
	return e.Report, true
}

// put stores the report under key, atomically: the entry is written to a
// temp file in the same directory and renamed into place, so a concurrent
// reader (or a crashed writer) can never observe a partial entry. Failures
// are swallowed — a cache that cannot store is just a cache that misses.
func (c *Cache) put(key string, r *Report) {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	b, err := json.Marshal(cacheEntry{Schema: cacheSchema, Report: r})
	if err != nil {
		return
	}
	f, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return
	}
	_, werr := f.Write(b)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(f.Name())
		return
	}
	if err := os.Rename(f.Name(), c.path(key)); err != nil {
		os.Remove(f.Name())
	}
}

// AnalyzeCached runs the full analyzer pipeline through the cache: a hit
// returns the stored report without validating, preparing, or replaying the
// trace; a miss computes and stores. A nil cache, or options carrying a
// Listener (which must observe a real replay), degrade to a plain Analyze.
// The boolean reports whether the result came from the cache.
func AnalyzeCached(c *Cache, t *trace.Trace, opts Options) (*Report, bool, error) {
	if c == nil || opts.Listener != nil {
		r, err := Analyze(t, opts)
		return r, false, err
	}
	key, kerr := cacheKey(t, opts)
	if kerr == nil {
		if r, ok := c.get(key); ok {
			return r, true, nil
		}
	}
	r, err := Analyze(t, opts)
	if err != nil {
		return nil, false, err
	}
	if kerr == nil {
		c.put(key, r)
	}
	return r, false, nil
}
