package core

import (
	"context"
	"errors"
	"testing"
)

// TestAnalyzeCanceledBeforeStart: a context that is already done fails the
// analysis immediately with an errors.Is-matchable context error.
func TestAnalyzeCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Defaults()
	opts.Context = ctx
	if _, err := Analyze(cacheTestTrace(), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze error = %v, want context.Canceled", err)
	}
	if _, err := NewSession().Analyze(cacheTestTrace(), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("Session.Analyze error = %v, want context.Canceled", err)
	}
}

// TestAnalyzeCanceledMidReplay: cancellation raised once replay has begun
// (via the replay hook, which runs just before the SIMT loop) aborts the
// replay through the loop's periodic context poll.
func TestAnalyzeCanceledMidReplay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	restore := SetReplayTestHook(cancel)
	defer restore()
	opts := Defaults()
	opts.Context = ctx
	_, err := Analyze(cacheTestTrace(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze error = %v, want context.Canceled", err)
	}
}

// TestAnalyzeCanceledParallelReplay: the parallel replay path polls the
// context too.
func TestAnalyzeCanceledParallelReplay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	restore := SetReplayTestHook(cancel)
	defer restore()
	opts := Defaults()
	opts.Context = ctx
	opts.Parallelism = 4
	opts.WarpSize = 1 // two single-thread warps, so the pool path engages
	_, err := Analyze(cacheTestTrace(), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze error = %v, want context.Canceled", err)
	}
}

// TestContextDoesNotAffectCacheKey: Context, like Parallelism, is a control
// knob — the same trace and semantic options must produce the same key with
// and without one.
func TestContextDoesNotAffectCacheKey(t *testing.T) {
	tr := cacheTestTrace()
	a := Defaults()
	b := Defaults()
	b.Context = context.Background()
	ka, err := CacheKey(tr, a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := CacheKey(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("cache key differs with Context set: %s vs %s", ka[:12], kb[:12])
	}
}
