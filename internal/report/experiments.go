package report

import (
	"fmt"
	"math"

	"threadfuser/internal/core"
	"threadfuser/internal/cpusim"
	"threadfuser/internal/gpusim"
	"threadfuser/internal/opt"
	"threadfuser/internal/pool"
	"threadfuser/internal/simtrace"
	"threadfuser/internal/stats"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

// Scale configures experiment sizes. The zero value uses each workload's
// reduced default; Full uses the paper's Table-I thread counts.
type Scale struct {
	// Threads overrides every workload's thread count when non-zero.
	Threads int
	// Full runs each workload at its Table-I thread count.
	Full bool
	// Seed drives input generation.
	Seed int64
	// Parallel bounds both the per-experiment cell pool (independent
	// workload×configuration cells run concurrently) and each replay's
	// worker count. 0 means one worker per core; 1 runs everything
	// serially. Results are identical at any setting: cells write into
	// index-addressed slots and cross-cell statistics are aggregated
	// serially in the original order.
	Parallel int
	// Cache, if set, serves replay reports for (trace, options) pairs the
	// cache has seen before and stores new ones. Tracing and the hardware
	// oracle still run; only analyzer replays are skipped.
	Cache *core.Cache
}

func (s Scale) config(w *workloads.Workload) workloads.Config {
	cfg := workloads.Config{Seed: s.Seed, Threads: s.Threads}
	if s.Full && w.PaperThreads > 0 {
		cfg.Threads = w.PaperThreads
	}
	return cfg
}

// options builds the analyzer options for one experiment cell.
func (s Scale) options(warpSize int, locks bool) core.Options {
	opts := core.Defaults()
	opts.WarpSize = warpSize
	opts.EmulateLocks = locks
	opts.Parallelism = s.Parallel
	return opts
}

// pool returns the bounded worker pool experiments fan their cells over.
func (s Scale) pool() *pool.Group {
	return pool.New(s.Parallel)
}

// analyze traces and analyzes one workload.
func analyze(w *workloads.Workload, s Scale, warpSize int, locks bool) (*core.Report, *trace.Trace, *workloads.Instance, error) {
	inst, err := w.Instantiate(s.config(w))
	if err != nil {
		return nil, nil, nil, err
	}
	tr, err := inst.Trace()
	if err != nil {
		return nil, nil, nil, err
	}
	rep, _, err := core.AnalyzeCached(s.Cache, tr, s.options(warpSize, locks))
	return rep, tr, inst, err
}

// session returns a fresh analysis session wired to the scale's cache.
func (s Scale) session() *core.Session {
	sess := core.NewSession()
	if s.Cache != nil {
		sess.SetCache(s.Cache)
	}
	return sess
}

// ---------------------------------------------------------------- Figure 1

// Fig1Row is one workload's efficiency at the three warp widths.
type Fig1Row struct {
	Workload string
	Suite    string
	Eff8     float64
	Eff16    float64
	Eff32    float64
}

// Fig1Data is the figure-1 dataset.
type Fig1Data struct {
	Rows []Fig1Row
}

// Fig1 estimates SIMT efficiency for the 36 MIMD applications at warp
// sizes 8, 16 and 32 (the paper's headline figure). Workload rows run
// concurrently; within one row a core.Session traces the workload once and
// shares the DCFG/IPDOM products across the three warp-width points.
func Fig1(s Scale) (*Fig1Data, error) {
	ws := workloads.TableI()
	d := &Fig1Data{Rows: make([]Fig1Row, len(ws))}
	g := s.pool()
	for i, w := range ws {
		i, w := i, w
		g.Go(func() error {
			row := Fig1Row{Workload: w.Name, Suite: w.Suite}
			inst, err := w.Instantiate(s.config(w))
			if err != nil {
				return err
			}
			tr, err := inst.Trace()
			if err != nil {
				return err
			}
			sess := s.session()
			for _, width := range []int{8, 16, 32} {
				rep, err := sess.Analyze(tr, s.options(width, false))
				if err != nil {
					return err
				}
				switch width {
				case 8:
					row.Eff8 = rep.Efficiency
				case 16:
					row.Eff16 = rep.Efficiency
				case 32:
					row.Eff32 = rep.Efficiency
				}
			}
			d.Rows[i] = row
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return d, nil
}

// Render formats the figure-1 series.
func (d *Fig1Data) Render() string {
	t := newTable("workload", "suite", "eff@8", "eff@16", "eff@32")
	for _, r := range d.Rows {
		t.add(r.Workload, r.Suite, pct(r.Eff8), pct(r.Eff16), pct(r.Eff32))
	}
	return "Figure 1: Estimated SIMT efficiency, warp sizes 8/16/32\n" + t.String()
}

// ---------------------------------------------------------------- Table I

// Table1Row is one catalog entry.
type Table1Row struct {
	Workload     string
	Suite        string
	SIMTThreads  int
	GPUTwin      bool
	Microservice bool
	Desc         string
}

// Table1Data is the workload catalog.
type Table1Data struct {
	Rows []Table1Row
}

// Table1 reproduces the paper's Table I.
func Table1() *Table1Data {
	d := &Table1Data{}
	for _, w := range workloads.TableI() {
		d.Rows = append(d.Rows, Table1Row{
			Workload:     w.Name,
			Suite:        w.Suite,
			SIMTThreads:  w.PaperThreads,
			GPUTwin:      w.HasGPUImpl,
			Microservice: w.Microservice,
			Desc:         w.Desc,
		})
	}
	return d
}

// Render formats Table I.
func (d *Table1Data) Render() string {
	t := newTable("workload", "suite", "#SIMT threads", "GPU twin", "usvc")
	for _, r := range d.Rows {
		twin, usvc := "", ""
		if r.GPUTwin {
			twin = "yes"
		}
		if r.Microservice {
			usvc = "yes"
		}
		t.add(r.Workload, r.Suite, fmt.Sprintf("%d", r.SIMTThreads), twin, usvc)
	}
	return "Table I: Studied workloads\n" + t.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Point is one (workload, optimization level) sample.
type Fig5Point struct {
	Workload  string
	Level     opt.Level
	Predicted float64
	Hardware  float64
}

// Fig5LevelStats summarizes one optimization level's agreement.
type Fig5LevelStats struct {
	Level   opt.Level
	Pearson float64
	MAE     float64
}

// Fig5Data holds either the efficiency (5a) or memory (5b) correlation.
type Fig5Data struct {
	Metric string // "SIMT efficiency" or "heap transactions"
	Points []Fig5Point
	Levels []Fig5LevelStats
	// ErrStdDev and WithinOneSD mirror the paper's consistency stats
	// ("std value is approximately 6% ... 83% within one standard
	// deviation").
	ErrStdDev   float64
	WithinOneSD float64
}

// Fig5a correlates analyzer-predicted SIMT efficiency against the lockstep
// hardware oracle across gcc-style optimization levels, for the 11
// correlation workloads (paper figure 5a).
func Fig5a(s Scale) (*Fig5Data, error) {
	return fig5(s, "SIMT efficiency", func(rep *core.Report) float64 {
		return rep.Efficiency
	}, func(hw *hwMeasurement) float64 {
		return hw.efficiency
	}, false)
}

// Fig5b correlates predicted total 32-byte heap transactions against the
// oracle (paper figure 5b; the paper's plot is log-log, so the Pearson
// coefficient is computed on log10 values).
func Fig5b(s Scale) (*Fig5Data, error) {
	return fig5(s, "heap transactions", func(rep *core.Report) float64 {
		return float64(rep.HeapTx)
	}, func(hw *hwMeasurement) float64 {
		return float64(hw.heapTx)
	}, true)
}

type hwMeasurement struct {
	efficiency float64
	heapTx     uint64
}

func fig5(s Scale, metric string, pred func(*core.Report) float64, ref func(*hwMeasurement) float64, logScale bool) (*Fig5Data, error) {
	d := &Fig5Data{Metric: metric}
	perLevel := map[opt.Level][2][]float64{}
	var allErrs []float64

	// Each workload's cell (hardware oracle + one analysis per optimization
	// level) is independent: run them concurrently into index-addressed
	// slots, then aggregate serially in workload order so the statistics
	// see samples in exactly the serial order.
	ws := workloads.Correlation()
	cells := make([][]Fig5Point, len(ws))
	g := s.pool()
	for i, w := range ws {
		i, w := i, w
		g.Go(func() error {
			inst, err := w.Instantiate(s.config(w))
			if err != nil {
				return err
			}
			// Hardware oracle: lockstep execution of the nvcc-like build.
			hwInst := inst.WithProgram(opt.HardwareBuild(inst.Prog))
			hwRes, err := hwInst.RunHardware(32, nil)
			if err != nil {
				return fmt.Errorf("report: %s oracle: %w", w.Name, err)
			}
			hw := &hwMeasurement{
				efficiency: hwRes.Efficiency(),
				heapTx:     hwRes.Total().HeapTx,
			}
			pts := make([]Fig5Point, 0, len(opt.Levels))
			for _, lvl := range opt.Levels {
				tr, err := inst.WithProgram(opt.Apply(inst.Prog, lvl)).Trace()
				if err != nil {
					return err
				}
				rep, _, err := core.AnalyzeCached(s.Cache, tr, s.options(32, false))
				if err != nil {
					return err
				}
				pts = append(pts, Fig5Point{
					Workload:  w.Name,
					Level:     lvl,
					Predicted: pred(rep),
					Hardware:  ref(hw),
				})
			}
			cells[i] = pts
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for _, pts := range cells {
		for _, p := range pts {
			d.Points = append(d.Points, p)
			pair := perLevel[p.Level]
			x, y := p.Predicted, p.Hardware
			if logScale {
				x, y = math.Log10(math.Max(x, 1)), math.Log10(math.Max(y, 1))
			}
			pair[0] = append(pair[0], x)
			pair[1] = append(pair[1], y)
			perLevel[p.Level] = pair
			if p.Hardware != 0 {
				allErrs = append(allErrs, math.Abs(p.Predicted-p.Hardware)/p.Hardware)
			}
		}
	}
	for _, lvl := range opt.Levels {
		pair := perLevel[lvl]
		r, err := stats.Pearson(pair[0], pair[1])
		if err != nil {
			return nil, err
		}
		var mae float64
		if logScale {
			// Relative error on the raw metric, like the paper's 17%.
			var preds, refs []float64
			for _, p := range d.Points {
				if p.Level == lvl {
					preds = append(preds, p.Predicted)
					refs = append(refs, p.Hardware)
				}
			}
			mae, _ = stats.MAE(preds, refs)
		} else {
			var preds, refs []float64
			for _, p := range d.Points {
				if p.Level == lvl {
					preds = append(preds, p.Predicted)
					refs = append(refs, p.Hardware)
				}
			}
			mae, _ = stats.MAEAbs(preds, refs)
		}
		d.Levels = append(d.Levels, Fig5LevelStats{Level: lvl, Pearson: r, MAE: mae})
	}
	d.ErrStdDev = stats.StdDev(allErrs)
	d.WithinOneSD = stats.WithinOneStdDev(allErrs)
	return d, nil
}

// Render formats a figure-5 dataset.
func (d *Fig5Data) Render() string {
	t := newTable("level", "Pearson corr", "MAE")
	for _, l := range d.Levels {
		t.add(l.Level.String(), f3(l.Pearson), pct(l.MAE))
	}
	pts := newTable("workload", "level", "predicted", "hardware")
	for _, p := range d.Points {
		pts.add(p.Workload, p.Level.String(), f3(p.Predicted), f3(p.Hardware))
	}
	return fmt.Sprintf("Figure 5 (%s) correlation vs hardware oracle\n%s\nerror std dev %s, %s of samples within one std dev\n\n%s",
		d.Metric, t.String(), pct(d.ErrStdDev), pct(d.WithinOneSD), pts.String())
}

// ---------------------------------------------------------------- Figure 6

// Fig6Row is one workload's projected speedup.
type Fig6Row struct {
	Workload string
	// TFSpeedup is the CPU-trace path (ThreadFuser warp traces through
	// the SIMT simulator, normalized to the multicore CPU model).
	TFSpeedup float64
	// CUDASpeedup is the native-GPU-trace path, present for the 11
	// correlation workloads (0 otherwise).
	CUDASpeedup float64
	GPUCycles   uint64
	CPUCycles   uint64
}

// Fig6Data is the speedup projection dataset.
type Fig6Data struct {
	Rows []Fig6Row
	// Correlation between the two series over the workloads that have
	// both (the paper quotes 0.97).
	SpeedupCorrelation float64
	// ExecTimeMAE is the relative cycle error between the ThreadFuser and
	// native paths (the paper quotes 33% execution-time error).
	ExecTimeMAE float64
}

// Fig6 projects speedups for the Table-I workloads using the SIMT timing
// simulator with the RTX-3070-like configuration, normalized to the
// multicore CPU baseline; the 11 correlation workloads also run the
// native-trace path (paper figure 6). Following the paper's methodology,
// the CPU side is the -O3 build ("compilation is carried out using gcc with
// the -O3 optimization"), while the native path runs the GPU-toolchain
// build — the toolchain gap is what separates the two series.
func Fig6(s Scale) (*Fig6Data, error) {
	gcfg := gpusim.RTX3070()
	ccfg := cpusim.Xeon20()
	var tfS, cuS, tfC, cuC []float64

	// Workload cells are independent (trace, warp-trace generation, timing
	// simulation): run them concurrently into index-addressed rows, then
	// build the correlation series serially in workload order.
	ws := workloads.TableI()
	d := &Fig6Data{Rows: make([]Fig6Row, len(ws))}
	natives := make([]uint64, len(ws)) // native-path GPU cycles, GPU twins only
	g := s.pool()
	for i, w := range ws {
		i, w := i, w
		g.Go(func() error {
			inst, err := w.Instantiate(s.config(w))
			if err != nil {
				return err
			}
			cpuInst := inst.WithProgram(opt.Apply(inst.Prog, opt.O3))
			tr, err := cpuInst.Trace()
			if err != nil {
				return err
			}
			kt, err := simtrace.Generate(cpuInst.Prog, tr, 32)
			if err != nil {
				return err
			}
			gr, err := gpusim.Run(kt, gcfg)
			if err != nil {
				return fmt.Errorf("report: %s gpusim: %w", w.Name, err)
			}
			c, err := cpusim.Run(tr, ccfg)
			if err != nil {
				return err
			}
			row := Fig6Row{
				Workload:  w.Name,
				GPUCycles: gr.Cycles,
				CPUCycles: c.Cycles,
				TFSpeedup: float64(c.Cycles) / float64(gr.Cycles),
			}
			if w.HasGPUImpl {
				// Native path: lockstep-collected ("nvbit") trace of the
				// nvcc-like hardware build.
				hwInst := inst.WithProgram(opt.HardwareBuild(inst.Prog))
				p2, args2, err := hwInst.NewProcess()
				if err != nil {
					return err
				}
				nkt, err := simtrace.FromHardware(p2, hwInst.Threads(), 32, args2)
				if err != nil {
					return err
				}
				ng, err := gpusim.Run(nkt, gcfg)
				if err != nil {
					return err
				}
				row.CUDASpeedup = float64(c.Cycles) / float64(ng.Cycles)
				natives[i] = ng.Cycles
			}
			d.Rows[i] = row
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for i, w := range ws {
		if w.HasGPUImpl {
			tfS = append(tfS, d.Rows[i].TFSpeedup)
			cuS = append(cuS, d.Rows[i].CUDASpeedup)
			tfC = append(tfC, float64(d.Rows[i].GPUCycles))
			cuC = append(cuC, float64(natives[i]))
		}
	}
	var err error
	if d.SpeedupCorrelation, err = stats.Pearson(tfS, cuS); err != nil {
		return nil, err
	}
	if d.ExecTimeMAE, err = stats.MAE(tfC, cuC); err != nil {
		return nil, err
	}
	return d, nil
}

// Render formats the figure-6 series.
func (d *Fig6Data) Render() string {
	t := newTable("workload", "TF speedup", "CUDA speedup", "gpu cycles", "cpu cycles")
	for _, r := range d.Rows {
		cuda := ""
		if r.CUDASpeedup != 0 {
			cuda = f2(r.CUDASpeedup)
		}
		t.add(r.Workload, f2(r.TFSpeedup), cuda, count(r.GPUCycles), count(r.CPUCycles))
	}
	return fmt.Sprintf("Figure 6: Projected speedup vs multicore CPU (RTX-3070-like config)\n%s\nspeedup correlation (11 GPU twins): %s   exec-time MAE: %s\n",
		t.String(), f3(d.SpeedupCorrelation), pct(d.ExecTimeMAE))
}
