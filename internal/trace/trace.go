// Package trace defines the dynamic-trace format exchanged between the
// ThreadFuser tracer (internal/vm, the stand-in for the paper's PIN tool)
// and the ThreadFuser analyzer (internal/core).
//
// A trace carries, per CPU thread, exactly the information the paper's
// tracer records (section III):
//
//   - the sequence of executed basic blocks with their instruction counts,
//   - per-instruction memory accesses (address, width, load/store),
//   - function call and return points with callee identity,
//   - the addresses of acquired and released locks, positioned within their
//     basic block, and
//   - counters of skipped instructions (I/O regions and lock spinning),
//     which figure 8 of the paper reports.
//
// The format is self-describing: a function table with names and static
// block instruction counts accompanies the per-thread event streams, so the
// analyzer needs no access to the original program (closed-source binaries
// are in scope for the paper).
package trace

import "fmt"

// Kind discriminates Record.
type Kind uint8

const (
	// KindBBL records execution of one basic block.
	KindBBL Kind = iota
	// KindCall records entry into a function (emitted before the callee's
	// first block).
	KindCall
	// KindRet records return from the current function.
	KindRet
	// KindSkip records instructions executed but not traced (I/O, spinning).
	KindSkip
)

func (k Kind) String() string {
	switch k {
	case KindBBL:
		return "BBL"
	case KindCall:
		return "CALL"
	case KindRet:
		return "RET"
	case KindSkip:
		return "SKIP"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// SkipKind classifies skipped instruction regions.
type SkipKind uint8

const (
	// SkipIO marks instructions inside I/O or system-call regions.
	SkipIO SkipKind = iota
	// SkipSpin marks lock busy-wait instructions.
	SkipSpin
)

func (s SkipKind) String() string {
	if s == SkipSpin {
		return "spin"
	}
	return "io"
}

// MemAccess is one memory access initiated by the instruction at index
// Instr within its basic block. A read-modify-write x86 instruction emits
// two accesses with the same index.
type MemAccess struct {
	Addr  uint64
	Instr uint16 // instruction index within the block
	Size  uint8
	Store bool
}

// LockOp is a lock acquire or release performed by the instruction at index
// Instr within its basic block.
type LockOp struct {
	Instr   uint16
	Addr    uint64
	Release bool
}

// Record is one trace event.
//
//   - KindBBL: Func/Block identify the block, N its instruction count, and
//     Mem/Locks its per-instruction memory and lock activity.
//   - KindCall: Callee identifies the function being entered.
//   - KindRet: no fields.
//   - KindSkip: N instructions of SkipKind were executed untraced.
type Record struct {
	N        uint64
	Func     uint32
	Block    uint32
	Kind     Kind
	SkipKind SkipKind
	Callee   uint32
	Mem      []MemAccess
	Locks    []LockOp
}

// ThreadTrace is the complete event stream of one CPU thread.
type ThreadTrace struct {
	TID     int
	Records []Record
}

// Instructions returns the number of traced (non-skipped) dynamic
// instructions in the thread's stream.
func (t *ThreadTrace) Instructions() uint64 {
	var n uint64
	for i := range t.Records {
		if t.Records[i].Kind == KindBBL {
			n += t.Records[i].N
		}
	}
	return n
}

// Skipped returns the number of skipped instructions by kind.
func (t *ThreadTrace) Skipped() (io, spin uint64) {
	for i := range t.Records {
		if r := &t.Records[i]; r.Kind == KindSkip {
			if r.SkipKind == SkipSpin {
				spin += r.N
			} else {
				io += r.N
			}
		}
	}
	return io, spin
}

// BlockInfo is static metadata about one basic block of a traced function.
type BlockInfo struct {
	NInstr uint32
}

// FuncInfo is the per-function entry of the trace's symbol table.
type FuncInfo struct {
	Name   string
	Blocks []BlockInfo
}

// Trace is a complete multi-threaded program trace.
type Trace struct {
	Program string
	Entry   uint32 // entry function id of the traced workload
	Funcs   []FuncInfo
	Threads []*ThreadTrace

	// Cols caches the packed SoA view replay's fusion fast path walks (see
	// cols.go). It is derived state — never serialized, never compared —
	// populated by EnsureCols and invalidated by mutating Records.
	Cols *Cols `json:"-"`
}

// FuncName returns the symbol-table name for a function id.
func (t *Trace) FuncName(id uint32) string {
	if int(id) < len(t.Funcs) {
		return t.Funcs[id].Name
	}
	return fmt.Sprintf("f%d", id)
}

// TotalInstructions returns the traced dynamic instruction count over all
// threads.
func (t *Trace) TotalInstructions() uint64 {
	var n uint64
	for _, th := range t.Threads {
		n += th.Instructions()
	}
	return n
}

// TotalSkipped returns the skipped instruction counts over all threads.
func (t *Trace) TotalSkipped() (io, spin uint64) {
	for _, th := range t.Threads {
		i, s := th.Skipped()
		io += i
		spin += s
	}
	return io, spin
}

// Validate checks internal consistency: record function/block ids resolve in
// the symbol table, BBL instruction counts match the static table, call/ret
// nesting is balanced, and memory/lock instruction indices are in range.
func (t *Trace) Validate() error {
	for _, th := range t.Threads {
		if err := t.ValidateThread(th); err != nil {
			return err
		}
	}
	return nil
}

// ValidateThread checks one thread's records against the trace's symbol
// table. Threads validate independently, which is what lets the streaming
// analyzer pipeline validation into the per-section decode workers instead
// of paying a separate whole-trace pass.
func (t *Trace) ValidateThread(th *ThreadTrace) error {
	depth := 0
	for i := range th.Records {
		r := &th.Records[i]
		switch r.Kind {
		case KindBBL:
			if int(r.Func) >= len(t.Funcs) {
				return fmt.Errorf("trace: thread %d record %d: func %d out of range", th.TID, i, r.Func)
			}
			blocks := t.Funcs[r.Func].Blocks
			if int(r.Block) >= len(blocks) {
				return fmt.Errorf("trace: thread %d record %d: block %d out of range in %s",
					th.TID, i, r.Block, t.Funcs[r.Func].Name)
			}
			if want := uint64(blocks[r.Block].NInstr); r.N != want {
				return fmt.Errorf("trace: thread %d record %d: %s block %d has %d instrs, static table says %d",
					th.TID, i, t.Funcs[r.Func].Name, r.Block, r.N, want)
			}
			for _, m := range r.Mem {
				if uint64(m.Instr) >= r.N {
					return fmt.Errorf("trace: thread %d record %d: mem access at instr %d >= block size %d",
						th.TID, i, m.Instr, r.N)
				}
			}
			for _, l := range r.Locks {
				if uint64(l.Instr) >= r.N {
					return fmt.Errorf("trace: thread %d record %d: lock op at instr %d >= block size %d",
						th.TID, i, l.Instr, r.N)
				}
			}
		case KindCall:
			if int(r.Callee) >= len(t.Funcs) {
				return fmt.Errorf("trace: thread %d record %d: callee %d out of range", th.TID, i, r.Callee)
			}
			depth++
		case KindRet:
			depth--
			if depth < 0 {
				return fmt.Errorf("trace: thread %d record %d: return below entry", th.TID, i)
			}
		case KindSkip:
		default:
			return fmt.Errorf("trace: thread %d record %d: unknown kind %d", th.TID, i, r.Kind)
		}
	}
	if depth != 0 {
		return fmt.Errorf("trace: thread %d: unbalanced call depth %d at end of stream", th.TID, depth)
	}
	return nil
}
