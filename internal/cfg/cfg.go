// Package cfg builds per-function Dynamic Control Flow Graphs (DCFGs) from
// ThreadFuser traces.
//
// As the paper describes (section III), building one DCFG over the whole
// trace would let a function's return instruction point at many blocks and
// force the IPDOM analysis toward overly conservative, distant reconvergence
// points. ThreadFuser instead builds one DCFG per function and appends a
// virtual exit block to each, compelling divergent threads to reconverge at
// function end — mirroring how GPUs reconverge at the end of a called
// function. Each thread's DCFG is derived from its dynamic block stream and
// the per-thread graphs are merged into one unified graph per function.
package cfg

import (
	"fmt"
	"sort"

	"threadfuser/internal/trace"
)

// VirtualExit is the block id used for a function's synthetic exit node in
// its DCFG: it equals the number of static blocks, so block ids 0..NBlocks-1
// are real and NBlocks is the exit.
//
// Exit(nblocks) returns that id for clarity at call sites.
func Exit(nblocks int) int32 { return int32(nblocks) }

// DCFG is the merged dynamic control flow graph of one function. Node ids
// are block ids; node Exit(NBlocks) is the virtual exit.
type DCFG struct {
	Func    uint32
	NBlocks int // static block count (excludes the virtual exit)

	succs [][]int32
	preds [][]int32

	entrySeen bool
	entry     int32
}

// NumNodes returns the node count including the virtual exit.
func (g *DCFG) NumNodes() int { return g.NBlocks + 1 }

// ExitNode returns the virtual exit node id.
func (g *DCFG) ExitNode() int32 { return Exit(g.NBlocks) }

// Entry returns the observed entry block (the first block executed on any
// invocation of the function). Functions are entered at block 0 by
// construction, but the DCFG records what the trace shows.
func (g *DCFG) Entry() int32 { return g.entry }

// Succs returns the successor list of node b.
func (g *DCFG) Succs(b int32) []int32 { return g.succs[b] }

// Preds returns the predecessor list of node b.
func (g *DCFG) Preds(b int32) []int32 { return g.preds[b] }

// HasEdge reports whether the edge from→to was observed.
func (g *DCFG) HasEdge(from, to int32) bool {
	for _, s := range g.succs[from] {
		if s == to {
			return true
		}
	}
	return false
}

// NumEdges returns the total observed edge count.
func (g *DCFG) NumEdges() int {
	n := 0
	for _, s := range g.succs {
		n += len(s)
	}
	return n
}

func newDCFG(fn uint32, nblocks int) *DCFG {
	return &DCFG{
		Func:    fn,
		NBlocks: nblocks,
		succs:   make([][]int32, nblocks+1),
		preds:   make([][]int32, nblocks+1),
	}
}

func (g *DCFG) addEdge(from, to int32) {
	if g.HasEdge(from, to) {
		return
	}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

func (g *DCFG) observeEntry(b int32) {
	if !g.entrySeen {
		g.entry, g.entrySeen = b, true
	}
}

// sortEdges makes edge order deterministic regardless of trace thread order.
func (g *DCFG) sortEdges() {
	for _, s := range g.succs {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	for _, p := range g.preds {
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	}
}

// Build constructs the merged per-function DCFGs for every function that
// appears in the trace. The map is keyed by function id.
func Build(t *trace.Trace) (map[uint32]*DCFG, error) {
	b := NewBuilder(t.Funcs)
	for _, th := range t.Threads {
		if err := b.AddThread(th); err != nil {
			return nil, err
		}
	}
	return b.Finish(), nil
}

// walkFrame tracks the last executed block of one in-flight function
// invocation while scanning a thread's record stream.
type walkFrame struct {
	fn   uint32
	last int32 // -1 until the first block of the invocation executes
}

// Builder accumulates merged per-function DCFGs one thread at a time. It
// exists for the streaming analyzer: threads can be walked as their sections
// come off the decoder, in section order, while later sections are still
// decoding — the graph construction then costs no wall-clock of its own.
// Feeding threads in trace order makes the result identical to Build
// (including which block Entry reports when threads disagree). A Builder is
// not safe for concurrent use; one consumer walks, many decoders feed it.
type Builder struct {
	funcs  []trace.FuncInfo
	graphs map[uint32]*DCFG
	stack  []walkFrame // reused across AddThread calls
}

// NewBuilder returns a Builder resolving block counts against funcs, which
// must be the symbol table of every trace whose threads are added.
func NewBuilder(funcs []trace.FuncInfo) *Builder {
	return &Builder{funcs: funcs, graphs: make(map[uint32]*DCFG)}
}

func (bl *Builder) graphFor(fn uint32) *DCFG {
	g := bl.graphs[fn]
	if g == nil {
		g = newDCFG(fn, len(bl.funcs[fn].Blocks))
		bl.graphs[fn] = g
	}
	return g
}

// AddThread merges one thread's observed control flow into the graphs.
func (bl *Builder) AddThread(th *trace.ThreadTrace) error {
	stack := bl.stack[:0]
	for i := range th.Records {
		r := &th.Records[i]
		switch r.Kind {
		case trace.KindCall:
			stack = append(stack, walkFrame{fn: r.Callee, last: -1})
		case trace.KindBBL:
			if len(stack) == 0 {
				bl.stack = stack
				return fmt.Errorf("cfg: thread %d record %d: block outside any function", th.TID, i)
			}
			top := &stack[len(stack)-1]
			if top.fn != r.Func {
				bl.stack = stack
				return fmt.Errorf("cfg: thread %d record %d: block of f%d inside invocation of f%d",
					th.TID, i, r.Func, top.fn)
			}
			g := bl.graphFor(r.Func)
			b := int32(r.Block)
			if top.last < 0 {
				g.observeEntry(b)
			} else {
				g.addEdge(top.last, b)
			}
			top.last = b
		case trace.KindRet:
			if len(stack) == 0 {
				bl.stack = stack
				return fmt.Errorf("cfg: thread %d record %d: return below entry", th.TID, i)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g := bl.graphFor(top.fn)
			if top.last >= 0 {
				g.addEdge(top.last, g.ExitNode())
			}
		case trace.KindSkip:
			// Skipped regions carry no control-flow information.
		}
	}
	bl.stack = stack[:0]
	if len(stack) != 0 {
		return fmt.Errorf("cfg: thread %d: %d unterminated function invocations", th.TID, len(stack))
	}
	return nil
}

// Finish seals and returns the merged graphs. The Builder must not be used
// afterwards.
func (bl *Builder) Finish() map[uint32]*DCFG {
	for _, g := range bl.graphs {
		// Robustness: any observed block with no successors (possible only
		// with truncated traces) flows to the virtual exit so the
		// post-dominator analysis stays well-defined.
		for b := int32(0); b < int32(g.NBlocks); b++ {
			if (len(g.succs[b]) > 0 || len(g.preds[b]) > 0) && len(g.succs[b]) == 0 {
				g.addEdge(b, g.ExitNode())
			}
		}
		g.sortEdges()
	}
	return bl.graphs
}
