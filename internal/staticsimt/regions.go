package staticsimt

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/opt"
)

// result builds the public Result from the converged fixpoint: branch
// classifications, divergent-region extents, meld findings, and the static
// memory-address uniformity counts.
func (a *analysis) result() *Result {
	r := &Result{Program: a.prog.Name, StackEscapes: a.stackEscapes}
	a.meldsRejectedMem = 0
	divCtx := a.divergentContexts()
	for _, fs := range a.fns {
		fr := FuncResult{ID: uint32(fs.f.ID), Name: fs.f.Name, Unreachable: fs.phantom}
		g := a.graphs[fr.ID]
		pd := a.pdoms[fr.ID]
		for bi, b := range fs.f.Blocks {
			term := b.Terminator()
			var kind string
			switch term.Op {
			case ir.OpJcc:
				kind = "jcc"
			case ir.OpSwitch:
				kind = "switch"
			case ir.OpCallR:
				kind = "callr"
			}
			if kind == "" {
				continue
			}
			bid := uint32(b.ID)
			br := Branch{Block: bid, Kind: kind, Reconverge: pd.IPDom(int32(bid))}
			if !fs.inSeen[bi] {
				br.Uniform = true
				br.Unreachable = true
			} else {
				u := fs.branch[bid]
				br.Uniform = !u.Divergent()
				br.Causes = u.Causes()
				if !br.Uniform && kind != "callr" {
					br.RegionBlocks = a.regionBlocks(g, pd, int32(bid))
					for _, rb := range br.RegionBlocks {
						br.RegionInstrs += fs.f.Blocks[rb].NumInstrs()
					}
					if m, ok := a.meldAt(fs, b); ok {
						m.Reconverge = br.Reconverge
						fr.Melds = append(fr.Melds, m)
					}
				}
			}
			if br.Uniform {
				r.UniformBranches++
			} else {
				r.DivergentBranches++
			}
			fr.Branches = append(fr.Branches, br)
		}
		for bid, infl := range fs.influenced {
			if infl {
				fr.Influenced = append(fr.Influenced, uint32(bid))
			}
		}
		fr.DivergentContext = divCtx[fs.f.ID]
		fr.MemUniform, fr.MemDivergent = a.memProfile(fs)
		r.Meldable += len(fr.Melds)
		r.Funcs = append(r.Funcs, fr)
	}
	r.MeldsRejectedMem = a.meldsRejectedMem
	sortResult(r)
	return r
}

// divergentContexts computes, per function, whether some call path can enter
// it with an already-split warp: a direct call from an influenced block, an
// indirect call with a divergent selector (threads fan out across callees),
// or any call made by a function that is itself in divergent context. The
// closure is a plain reachability worklist over the converged fixpoint.
func (a *analysis) divergentContexts() []bool {
	divCtx := make([]bool, len(a.fns))
	var queue []int
	mark := func(fi int) {
		if fi >= 0 && fi < len(divCtx) && !divCtx[fi] {
			divCtx[fi] = true
			queue = append(queue, fi)
		}
	}
	markAll := func() {
		for fi := range divCtx {
			mark(fi)
		}
	}
	// forEachCall visits the reached call terminators of one function.
	forEachCall := func(fs *funcState, visit func(term *ir.Instr, influenced bool, selDivergent bool)) {
		for bi, b := range fs.f.Blocks {
			if !fs.inSeen[bi] {
				continue
			}
			term := b.Terminator()
			if term.Op != ir.OpCall && term.Op != ir.OpCallR {
				continue
			}
			visit(term, fs.influenced[b.ID], fs.branch[uint32(b.ID)].Divergent())
		}
	}
	// Seed: calls made under divergent control in any reached function.
	for _, fs := range a.fns {
		if fs.phantom {
			continue
		}
		forEachCall(fs, func(term *ir.Instr, influenced, selDivergent bool) {
			switch term.Op {
			case ir.OpCall:
				if influenced {
					mark(int(term.Callee))
				}
			case ir.OpCallR:
				if influenced || selDivergent {
					markAll()
				}
			}
		})
	}
	// Closure: everything a divergent-context function calls inherits it.
	for len(queue) > 0 {
		fi := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		fs := a.fns[fi]
		if fs.phantom {
			continue
		}
		forEachCall(fs, func(term *ir.Instr, _, _ bool) {
			if term.Op == ir.OpCall {
				mark(int(term.Callee))
			} else {
				markAll()
			}
		})
	}
	return divCtx
}

// memProfile counts the function's static memory operands by effective-
// address uniformity, replaying each reached block over its converged entry
// fact so address registers reflect the state at the access.
func (a *analysis) memProfile(fs *funcState) (uniform, divergent int) {
	for bi, b := range fs.f.Blocks {
		if !fs.inSeen[bi] {
			continue
		}
		st := fs.in[bi].clone()
		var ctl Uniformity
		if fs.influenced[b.ID] {
			ctl = FromControl
		}
		count := func(o ir.Operand) {
			if !o.IsMem() {
				return
			}
			if addrUnif(&st, o.Mem).Divergent() {
				divergent++
			} else {
				uniform++
			}
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpLea { // lea computes an address, never accesses it
				count(in.Src)
			}
			count(in.Dst)
			if !in.Op.IsTerminator() {
				a.transferInstr(fs, &st, in, ctl)
			}
		}
	}
	return uniform, divergent
}

// meldAt runs the DARM-style matcher at one divergent jcc: isomorphic arms
// first (meldable as one region with lane-select operands), then
// opt.Examine for diamonds rejected purely on the if-conversion budget.
func (a *analysis) meldAt(fs *funcState, b *ir.Block) (Meld, bool) {
	term := b.Terminator()
	if term.Op != ir.OpJcc || term.Target == term.Fall {
		return Meld{}, false
	}
	blocks := fs.f.Blocks
	if int(term.Target) >= len(blocks) || int(term.Fall) >= len(blocks) {
		return Meld{}, false
	}
	tb, eb := blocks[term.Target], blocks[term.Fall]
	if tb.ID == b.ID || eb.ID == b.ID {
		return Meld{}, false
	}
	var mem opt.MeldMemCheck
	if a.opts.MeldMem != nil {
		mem = a.opts.MeldMem(uint32(fs.f.ID))
	}
	tt, et := tb.Terminator(), eb.Terminator()
	if tt.Op == ir.OpJmp && et.Op == ir.OpJmp && tt.Target == et.Target &&
		tt.Target != tb.ID && tt.Target != eb.ID && isomorphicArms(tb, eb) {
		if mem != nil && !mem(tb, eb) {
			a.meldsRejectedMem++
			return Meld{}, false
		}
		n := tb.NumInstrs() - 1
		m := eb.NumInstrs() - 1
		return Meld{
			Block:       uint32(b.ID),
			Kind:        "isomorphic-arms",
			ThenBlock:   uint32(tb.ID),
			ElseBlock:   uint32(eb.ID),
			ThenInstrs:  n,
			ElseInstrs:  m,
			SavedIssues: min(n, m),
		}, true
	}
	rep, ok := opt.ExamineMeld(fs.f, b, a.opts.MeldBudget, true, mem)
	if !ok || rep.Convertible {
		return Meld{}, false
	}
	// Keep only budget-pure rejections; a memory veto among otherwise
	// budget-only reasons means the candidate would have been reported (or
	// even flattened at a larger budget) but the oracle forbids it.
	memVeto := false
	for _, reason := range rep.Reasons {
		switch reason {
		case opt.ReasonBudget:
		case opt.ReasonMemCoalesce:
			memVeto = true
		default:
			return Meld{}, false
		}
	}
	if memVeto {
		a.meldsRejectedMem++
		return Meld{}, false
	}
	return Meld{
		Block:       uint32(b.ID),
		Kind:        "if-convertible-over-budget",
		ThenBlock:   uint32(term.Target),
		ElseBlock:   uint32(term.Fall),
		ThenInstrs:  rep.ThenInstrs,
		ElseInstrs:  rep.ElseInstrs,
		SavedIssues: min(rep.ThenInstrs, rep.ElseInstrs),
		NeedBudget:  max(rep.ThenInstrs, rep.ElseInstrs),
	}, true
}

// isomorphicArms reports whether two single-block arms run the same
// instruction sequence modulo a consistent register renaming — DARM's
// melding precondition. Immediates, displacements, scales, access sizes and
// conditions must match exactly; registers must map one-to-one.
func isomorphicArms(x, y *ir.Block) bool {
	if len(x.Instrs) != len(y.Instrs) {
		return false
	}
	fwd := map[ir.Reg]ir.Reg{}
	rev := map[ir.Reg]ir.Reg{}
	mapReg := func(a, b ir.Reg) bool {
		if m, ok := fwd[a]; ok {
			return m == b
		}
		if m, ok := rev[b]; ok {
			return m == a
		}
		fwd[a] = b
		rev[b] = a
		return true
	}
	isoOperand := func(p, q ir.Operand) bool {
		if p.Kind != q.Kind {
			return false
		}
		switch p.Kind {
		case ir.OpndReg:
			return mapReg(p.Reg, q.Reg)
		case ir.OpndImm:
			return p.Imm == q.Imm
		case ir.OpndMem:
			pm, qm := p.Mem, q.Mem
			if pm.HasIndex != qm.HasIndex || pm.Scale != qm.Scale ||
				pm.Disp != qm.Disp || pm.Size != qm.Size {
				return false
			}
			if !mapReg(pm.Base, qm.Base) {
				return false
			}
			if pm.HasIndex && !mapReg(pm.Index, qm.Index) {
				return false
			}
			return true
		}
		return true
	}
	for i := 0; i < len(x.Instrs)-1; i++ {
		p, q := &x.Instrs[i], &y.Instrs[i]
		if p.Op != q.Op || p.Cond != q.Cond {
			return false
		}
		if !isoOperand(p.Dst, q.Dst) || !isoOperand(p.Src, q.Src) {
			return false
		}
	}
	return true
}
