package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// arenaEdgeTraces are hand-built traces hitting the arena section-size edge
// cases: no threads at all, empty threads between populated ones,
// single-record threads, and a maximal run of identical blocks (the shape
// the batched replay and run-length-friendly layouts care about).
func arenaEdgeTraces() map[string]*Trace {
	funcs := []FuncInfo{{Name: "f", Blocks: []BlockInfo{{NInstr: 2}, {NInstr: 3}}}}
	longRun := &ThreadTrace{TID: 2}
	for i := 0; i < 5000; i++ {
		longRun.Records = append(longRun.Records, Record{Kind: KindBBL, Func: 0, Block: 0, N: 2})
	}
	return map[string]*Trace{
		"no-threads": {Program: "edge", Funcs: funcs},
		"empty-threads": {Program: "edge", Funcs: funcs, Threads: []*ThreadTrace{
			{TID: 0, Records: []Record{}},
			{TID: 1, Records: []Record{{Kind: KindBBL, Func: 0, Block: 1, N: 3}}},
			{TID: 2, Records: []Record{}},
		}},
		"single-record-threads": {Program: "edge", Funcs: funcs, Threads: []*ThreadTrace{
			{TID: 0, Records: []Record{{Kind: KindBBL, Func: 0, Block: 0, N: 2,
				Mem: []MemAccess{{Instr: 1, Addr: 1 << 32, Size: 8, Store: true}}}}},
			{TID: 1, Records: []Record{{Kind: KindRet}}},
			{TID: 2, Records: []Record{{Kind: KindSkip, SkipKind: SkipSpin, N: 9}}},
		}},
		"max-run-length": {Program: "edge", Funcs: funcs, Threads: []*ThreadTrace{
			longRun,
			{TID: 7, Records: []Record{{Kind: KindBBL, Func: 0, Block: 0, N: 2,
				Locks: []LockOp{{Instr: 0, Addr: 64}, {Instr: 1, Addr: 64, Release: true}}}}},
		}},
	}
}

// TestArenaDecodeMatchesLegacy differentially tests the arena decoder
// against the retained streaming decoder: for random and edge-case traces in
// every container version, both must produce deeply-equal results, as must
// the parallel fill path.
func TestArenaDecodeMatchesLegacy(t *testing.T) {
	encoders := []struct {
		name string
		enc  func(io.Writer, *Trace) error
	}{
		{"v1", Encode},
		{"v2", EncodeCompact},
		{"v3", EncodeIndexed},
	}
	traces := arenaEdgeTraces()
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 12; i++ {
		traces[string(rune('a'+i))+"-random"] = randomTrace(r)
	}
	for name, tr := range traces {
		for _, e := range encoders {
			var buf bytes.Buffer
			if err := e.enc(&buf, tr); err != nil {
				t.Fatalf("%s/%s: encode: %v", name, e.name, err)
			}
			legacy, err := decodeStream(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s/%s: legacy decode: %v", name, e.name, err)
			}
			arena, err := DecodeBytes(buf.Bytes())
			if err != nil {
				t.Fatalf("%s/%s: arena decode: %v", name, e.name, err)
			}
			if !reflect.DeepEqual(legacy, arena) {
				t.Fatalf("%s/%s: arena decode differs from legacy decode", name, e.name)
			}
			for _, par := range []int{1, 4, 0} {
				got, err := DecodeParallel(bytes.NewReader(buf.Bytes()), int64(buf.Len()), par)
				if err != nil {
					t.Fatalf("%s/%s: parallel decode (par=%d): %v", name, e.name, par, err)
				}
				if !reflect.DeepEqual(legacy, got) {
					t.Fatalf("%s/%s: parallel decode (par=%d) differs from legacy decode", name, e.name, par)
				}
			}
		}
	}
}

// TestArenaInvariants checks the columnar layout contract: offset columns
// are monotone prefix sums closing at the table lengths, spans partition the
// record table in file order, and the Trace view's slices are zero-copy
// aliases of the arena tables (not copies).
func TestArenaInvariants(t *testing.T) {
	for name, tr := range arenaEdgeTraces() {
		var buf bytes.Buffer
		if err := EncodeIndexed(&buf, tr); err != nil {
			t.Fatal(err)
		}
		view, a, err := decodeArena(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.MemOff) != len(a.Records)+1 || len(a.LockOff) != len(a.Records)+1 {
			t.Fatalf("%s: offset columns have %d/%d entries for %d records",
				name, len(a.MemOff), len(a.LockOff), len(a.Records))
		}
		if a.MemOff[0] != 0 || a.LockOff[0] != 0 {
			t.Fatalf("%s: offset columns do not start at 0", name)
		}
		for i := 0; i < len(a.Records); i++ {
			if a.MemOff[i] > a.MemOff[i+1] || a.LockOff[i] > a.LockOff[i+1] {
				t.Fatalf("%s: offset column decreases at record %d", name, i)
			}
		}
		if int(a.MemOff[len(a.Records)]) != len(a.Mem) || int(a.LockOff[len(a.Records)]) != len(a.Locks) {
			t.Fatalf("%s: offset columns do not close at the table lengths", name)
		}
		prev := 0
		for i, sp := range a.Spans {
			if sp.Lo != prev || sp.Hi < sp.Lo {
				t.Fatalf("%s: span %d = %+v does not continue the partition at %d", name, i, sp, prev)
			}
			prev = sp.Hi
		}
		if prev != len(a.Records) {
			t.Fatalf("%s: spans cover %d of %d records", name, prev, len(a.Records))
		}
		if len(view.Threads) != len(a.Spans) {
			t.Fatalf("%s: %d threads for %d spans", name, len(view.Threads), len(a.Spans))
		}
		for i, th := range view.Threads {
			sp := a.Spans[i]
			if th.TID != sp.TID {
				t.Fatalf("%s: thread %d tid %d, span tid %d", name, i, th.TID, sp.TID)
			}
			if len(th.Records) > 0 && &th.Records[0] != &a.Records[sp.Lo] {
				t.Fatalf("%s: thread %d records are not a view into the arena", name, i)
			}
		}
		ri := 0
		for _, th := range view.Threads {
			for j := range th.Records {
				r := &th.Records[j]
				if len(r.Mem) > 0 && &r.Mem[0] != &a.Mem[a.MemOff[ri]] {
					t.Fatalf("%s: record %d Mem is not a view into the arena", name, ri)
				}
				if len(r.Locks) > 0 && &r.Locks[0] != &a.Locks[a.LockOff[ri]] {
					t.Fatalf("%s: record %d Locks is not a view into the arena", name, ri)
				}
				ri++
			}
		}
	}
}

// TestNewArenaRoundTrip flattens traces into arenas and materializes them
// back, requiring a deeply-equal trace with zero-copy views.
func TestNewArenaRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	traces := arenaEdgeTraces()
	for i := 0; i < 6; i++ {
		traces[string(rune('a'+i))+"-random"] = randomTrace(r)
	}
	for name, tr := range traces {
		a := NewArena(tr)
		got := a.Trace(tr.Program, tr.Entry, tr.Funcs)
		if !reflect.DeepEqual(tr, got) {
			t.Fatalf("%s: NewArena->Trace round trip differs", name)
		}
		var total int
		for _, sp := range a.Spans {
			total += sp.Hi - sp.Lo
		}
		if total != len(a.Records) {
			t.Fatalf("%s: spans cover %d of %d records", name, total, len(a.Records))
		}
	}
}

// TestReadHeaderStopsAtHeader pins the satellite fix: ReadHeader must not
// consume bytes past the header block, even on v1 files with no index. The
// byte left under the cursor must be the first thread section's tid varint.
func TestReadHeaderStopsAtHeader(t *testing.T) {
	tr := &Trace{
		Program: "hdr",
		Funcs:   []FuncInfo{{Name: "f", Blocks: []BlockInfo{{NInstr: 1}}}},
		Threads: []*ThreadTrace{{TID: 7, Records: []Record{{Kind: KindRet}}}},
	}
	for name, enc := range map[string]func(io.Writer, *Trace) error{
		"v1": Encode, "v2": EncodeCompact, "v3": EncodeIndexed,
	} {
		var buf bytes.Buffer
		if err := enc(&buf, tr); err != nil {
			t.Fatal(err)
		}
		r := bytes.NewReader(buf.Bytes())
		h, err := ReadHeader(r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.NumThreads != 1 {
			t.Fatalf("%s: NumThreads = %d, want 1", name, h.NumThreads)
		}
		b, err := r.ReadByte()
		if err != nil {
			t.Fatalf("%s: reading byte after header: %v", name, err)
		}
		if b != 7 {
			t.Fatalf("%s: byte after ReadHeader = %#x, want the tid varint 0x07 (header overread)", name, b)
		}
	}
}

// TestDecodeIntoReuse pins the arena-reuse contract: decoding different
// traces through one arena — shrinking, growing, switching container
// versions — always produces exactly what a fresh decode produces, with no
// stale state bleeding through reused (not re-zeroed) tables.
func TestDecodeIntoReuse(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var seq []*Trace
	for name, tr := range arenaEdgeTraces() {
		_ = name
		seq = append(seq, tr)
	}
	for i := 0; i < 8; i++ {
		seq = append(seq, randomTrace(r))
	}
	encoders := []func(io.Writer, *Trace) error{Encode, EncodeCompact, EncodeIndexed}
	var arena Arena
	for i, tr := range seq {
		enc := encoders[i%len(encoders)]
		var buf bytes.Buffer
		if err := enc(&buf, tr); err != nil {
			t.Fatal(err)
		}
		fresh, err := DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("trace %d: fresh decode: %v", i, err)
		}
		reused, err := DecodeInto(buf.Bytes(), &arena)
		if err != nil {
			t.Fatalf("trace %d: reuse decode: %v", i, err)
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("trace %d (encoder %d): reuse decode differs from fresh decode", i, i%len(encoders))
		}
	}
	// Same bytes twice through one arena: second decode must not allocate
	// new tables (capacity is already exact) and must still be equal.
	var buf bytes.Buffer
	if err := EncodeIndexed(&buf, seq[len(seq)-1]); err != nil {
		t.Fatal(err)
	}
	first, err := DecodeInto(buf.Bytes(), &arena)
	if err != nil {
		t.Fatal(err)
	}
	back := &arena.Records[0]
	second, err := DecodeInto(buf.Bytes(), &arena)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeat decode into the same arena differs")
	}
	if &arena.Records[0] != back {
		t.Fatal("repeat decode reallocated the record table despite sufficient capacity")
	}
}
