#!/bin/sh
# Runs the analyzer's key benchmarks and writes BENCH_analyzer.json so
# future changes have a perf trajectory to regress against. The speedup
# field is BenchmarkReplaySerial ns/op over BenchmarkReplayParallel ns/op;
# on a single-core runner it hovers around 1.0 by construction.
set -e
cd "$(dirname "$0")/.."

# Verify before measuring: benchmark numbers from a tree that fails the
# lint or invariant checks (make check runs build/vet/test/race/lint plus
# tfcheck over every workload and the golden-snapshot comparison) are not
# worth recording.
make check

out=BENCH_analyzer.json
raw=$(go test -run '^$' -bench 'BenchmarkReplay(Serial|Parallel|Allocs)$' \
	-benchmem -count=1 .)
echo "$raw"

cores=$(nproc 2>/dev/null || echo 1)
echo "$raw" | awk -v cores="$cores" '
/^BenchmarkReplaySerial/   { serial_ns = $3 }
/^BenchmarkReplayParallel/ { parallel_ns = $3 }
/^BenchmarkReplayAllocs/   { allocs_ns = $3; bytes = $(NF-3); allocs = $(NF-1) }
END {
	if (serial_ns == "" || parallel_ns == "" || allocs_ns == "") {
		print "bench.sh: missing benchmark rows" > "/dev/stderr"; exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"simt replay, parsec.vips, 64 threads, warp 32\",\n"
	printf "  \"cpus\": %d,\n", cores
	printf "  \"serial_ns_per_op\": %s,\n", serial_ns
	printf "  \"parallel_ns_per_op\": %s,\n", parallel_ns
	printf "  \"serial_vs_parallel_speedup\": %.2f,\n", serial_ns / parallel_ns
	printf "  \"bytes_per_op\": %s,\n", bytes
	printf "  \"allocs_per_op\": %s\n", allocs
	printf "}\n"
}' > "$out"

echo "wrote $out:"
cat "$out"
