package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// File format (".tft", ThreadFuser trace):
//
//	magic "TFTR" | version uvarint | program string | entry uvarint
//	nfuncs uvarint { name string, nblocks uvarint { ninstr uvarint } }
//	nthreads uvarint { tid uvarint, nrecords uvarint { record } }
//
// record:
//
//	kind byte, then per kind:
//	  BBL : func uvarint, block uvarint, n uvarint,
//	        nmem uvarint { instr uvarint, addr uvarint, size byte, store byte },
//	        nlocks uvarint { instr uvarint, addr uvarint, release byte }
//	  CALL: callee uvarint
//	  RET : -
//	  SKIP: skipkind byte, n uvarint
//
// Strings are uvarint length + bytes. All integers are unsigned varints;
// addresses are stored raw (they are large but compress well as deltas are
// not needed for the reduced-scale workloads this reproduction runs).

const (
	magic   = "TFTR"
	version = 1
)

// Encode writes the trace to w in the .tft binary format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	e := &encoder{w: bw}
	e.bytes([]byte(magic))
	e.uvarint(version)
	e.str(t.Program)
	e.uvarint(uint64(t.Entry))
	e.uvarint(uint64(len(t.Funcs)))
	for _, f := range t.Funcs {
		e.str(f.Name)
		e.uvarint(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			e.uvarint(uint64(b.NInstr))
		}
	}
	e.uvarint(uint64(len(t.Threads)))
	for _, th := range t.Threads {
		e.uvarint(uint64(th.TID))
		e.uvarint(uint64(len(th.Records)))
		for i := range th.Records {
			e.record(&th.Records[i])
		}
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// WriteFile encodes the trace to the named file.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	n   int64 // bytes written so far (byte offsets for the v3 index)
	err error
}

func (e *encoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
		e.n += int64(len(b))
	}
}

func (e *encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
		e.n++
	}
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.bytes([]byte(s))
}

func (e *encoder) record(r *Record) {
	e.byte(byte(r.Kind))
	switch r.Kind {
	case KindBBL:
		e.uvarint(uint64(r.Func))
		e.uvarint(uint64(r.Block))
		e.uvarint(r.N)
		e.uvarint(uint64(len(r.Mem)))
		for _, m := range r.Mem {
			e.uvarint(uint64(m.Instr))
			e.uvarint(m.Addr)
			e.byte(m.Size)
			e.bool(m.Store)
		}
		e.uvarint(uint64(len(r.Locks)))
		for _, l := range r.Locks {
			e.uvarint(uint64(l.Instr))
			e.uvarint(l.Addr)
			e.bool(l.Release)
		}
	case KindCall:
		e.uvarint(uint64(r.Callee))
	case KindRet:
	case KindSkip:
		e.byte(byte(r.SkipKind))
		e.uvarint(r.N)
	default:
		if e.err == nil {
			e.err = fmt.Errorf("trace: encode: unknown record kind %d", r.Kind)
		}
	}
}

func (e *encoder) bool(b bool) {
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

// Decode reads a trace in the .tft binary format. All format versions are
// accepted transparently: v1 (raw addresses), v2 (delta-encoded addresses),
// and v3 (delta-encoded with an index footer, which a pure stream decode
// simply never reads). The input is slurped and decoded in memory by the
// columnar arena decoder (see arena.go); a decoded trace occupies several
// times its encoding anyway, so the extra resident bytes are bounded while
// the byte-slice hot path runs several times faster than stream decoding.
func Decode(r io.Reader) (*Trace, error) {
	data, err := readAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return DecodeBytes(data)
}

// readAll slurps r, preallocating exactly when the reader can report its
// unread size (bytes.Reader, bytes.Buffer, strings.Reader).
func readAll(r io.Reader) ([]byte, error) {
	if l, ok := r.(interface{ Len() int }); ok {
		data := make([]byte, l.Len())
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	return io.ReadAll(r)
}

// decodeStream is the legacy record-at-a-time streaming decoder. It is kept
// as the reference implementation the arena decoder is differentially tested
// against: both must accept and reject exactly the same inputs and produce
// deeply-equal traces.
func decodeStream(r io.Reader) (*Trace, error) {
	d := &decoder{r: bufio.NewReaderSize(r, 1<<16)}
	h := d.header()
	if d.err != nil {
		return nil, fmt.Errorf("trace: decode: %w", d.err)
	}
	t := &Trace{Program: h.Program, Entry: h.Entry, Funcs: h.Funcs}
	for i := 0; i < h.NumThreads && d.err == nil; i++ {
		t.Threads = append(t.Threads, d.thread(h.Version))
	}
	if d.err != nil {
		return nil, fmt.Errorf("trace: decode: %w", d.err)
	}
	return t, nil
}

// header decodes the version-independent header section: magic, version,
// program name, entry function, the function table, and the thread count.
func (d *decoder) header() *Header {
	var m [4]byte
	if d.err == nil {
		_, d.err = io.ReadFull(d.r, m[:])
	}
	if d.err != nil {
		return nil
	}
	if string(m[:]) != magic {
		d.err = fmt.Errorf("bad magic %q", m[:])
		return nil
	}
	v := d.uvarint()
	if d.err == nil && v != version && v != version2 && v != version3 {
		d.err = fmt.Errorf("unsupported version %d", v)
		return nil
	}
	h := &Header{Version: int(v), Program: d.str()}
	h.Entry = uint32(d.uvarint())
	nf := d.count("function", d.uvarint())
	h.Funcs = make([]FuncInfo, 0, preallocCap(nf))
	for i := uint64(0); i < nf && d.err == nil; i++ {
		fi := FuncInfo{Name: d.str()}
		nb := d.count("block", d.uvarint())
		fi.Blocks = make([]BlockInfo, 0, preallocCap(nb))
		for j := uint64(0); j < nb && d.err == nil; j++ {
			fi.Blocks = append(fi.Blocks, BlockInfo{NInstr: uint32(d.uvarint())})
		}
		h.Funcs = append(h.Funcs, fi)
	}
	h.NumThreads = int(d.count("thread", d.uvarint()))
	if d.err != nil {
		return nil
	}
	return h
}

// thread decodes one thread section. Counts are attacker-controlled like any
// other declared count, so the record count goes through the same cap the
// function/block/access counts use. Address deltas reset at the start of each
// thread in every versioned encoding, so sections decode independently.
func (d *decoder) thread(version int) *ThreadTrace {
	th := &ThreadTrace{TID: int(d.uvarint())}
	nr := d.count("record", d.uvarint())
	th.Records = make([]Record, 0, preallocCap(nr))
	var prevAddr uint64
	for j := uint64(0); j < nr && d.err == nil; j++ {
		if version >= version2 {
			var r Record
			r, prevAddr = d.record2(prevAddr)
			th.Records = append(th.Records, r)
		} else {
			th.Records = append(th.Records, d.record())
		}
	}
	return th
}

// ReadFile decodes the named .tft file.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBytes(data)
}

// byteReader is what the stream decoder needs from its input: bulk reads for
// strings plus single-byte reads for varints. bufio.Reader satisfies it; so
// does the unbuffered one-byte wrapper ReadHeader uses to avoid overreading.
type byteReader interface {
	io.Reader
	io.ByteReader
}

type decoder struct {
	r   byteReader
	err error
}

// maxCount bounds the element counts a .tft stream may declare. Counts are
// attacker-controlled on untrusted input (the fuzz target feeds arbitrary
// bytes), so the decoder both rejects absurd declarations and caps slice
// preallocation, growing by append so memory tracks bytes actually read.
const maxCount = 1 << 20

// count passes n through, recording an error if it exceeds maxCount.
func (d *decoder) count(what string, n uint64) uint64 {
	if d.err == nil && n > maxCount {
		d.err = fmt.Errorf("implausible %s count %d", what, n)
	}
	return n
}

// preallocCap clamps a declared count to a safe initial slice capacity.
func preallocCap(n uint64) int {
	const lim = 1 << 12
	if n > lim {
		return lim
	}
	return int(n)
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
	}
	return b
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

func (d *decoder) record() Record {
	r := Record{Kind: Kind(d.byte())}
	switch r.Kind {
	case KindBBL:
		r.Func = uint32(d.uvarint())
		r.Block = uint32(d.uvarint())
		r.N = d.uvarint()
		nm := d.count("mem access", d.uvarint())
		if nm > 0 && d.err == nil {
			r.Mem = make([]MemAccess, 0, preallocCap(nm))
			for i := uint64(0); i < nm && d.err == nil; i++ {
				r.Mem = append(r.Mem, MemAccess{
					Instr: uint16(d.uvarint()),
					Addr:  d.uvarint(),
					Size:  d.byte(),
					Store: d.bool(),
				})
			}
		}
		nl := d.count("lock op", d.uvarint())
		if nl > 0 && d.err == nil {
			r.Locks = make([]LockOp, 0, preallocCap(nl))
			for i := uint64(0); i < nl && d.err == nil; i++ {
				r.Locks = append(r.Locks, LockOp{
					Instr:   uint16(d.uvarint()),
					Addr:    d.uvarint(),
					Release: d.bool(),
				})
			}
		}
	case KindCall:
		r.Callee = uint32(d.uvarint())
	case KindRet:
	case KindSkip:
		r.SkipKind = SkipKind(d.byte())
		r.N = d.uvarint()
	default:
		if d.err == nil {
			d.err = fmt.Errorf("unknown record kind %d", r.Kind)
		}
	}
	return r
}
