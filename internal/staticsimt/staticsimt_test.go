package staticsimt_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"threadfuser/internal/core"
	"threadfuser/internal/ir"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/workloads"
)

// branchOf fetches a classification the test requires to exist.
func branchOf(t *testing.T, r *staticsimt.Result, fn, block uint32) *staticsimt.Branch {
	t.Helper()
	b, ok := r.Class(fn, block)
	if !ok {
		t.Fatalf("no classification for fn %d block %d", fn, block)
	}
	return b
}

func TestTIDBranchDivergent(t *testing.T) {
	pb := ir.NewBuilder("tid-branch")
	f := pb.NewFunc("main")
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	entry.Cmp(ir.Rg(ir.TID), ir.Imm(2))
	entry.Jcc(ir.CondLT, then, els)
	then.Add(ir.Rg(ir.R(0)), ir.Imm(1))
	then.Jmp(join)
	els.Add(ir.Rg(ir.R(0)), ir.Imm(2))
	els.Jmp(join)
	join.Ret()
	p := pb.MustBuild()

	r := staticsimt.Analyze(p, staticsimt.Options{})
	br := branchOf(t, r, 0, 0)
	if br.Uniform {
		t.Fatalf("tid compare classified uniform: %+v", br)
	}
	if len(br.Causes) != 1 || br.Causes[0] != "tid" {
		t.Fatalf("causes = %v, want [tid]", br.Causes)
	}
	if got, want := br.Reconverge, int32(join.ID()); got != want {
		t.Fatalf("reconverge = b%d, want b%d", got, want)
	}
	if len(br.RegionBlocks) != 2 {
		t.Fatalf("region = %v, want the two arms", br.RegionBlocks)
	}
}

func TestImmediateBranchUniform(t *testing.T) {
	pb := ir.NewBuilder("imm-branch")
	f := pb.NewFunc("main")
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	done := f.NewBlock("done")
	entry.Mov(ir.Rg(ir.R(0)), ir.Imm(5))
	entry.Cmp(ir.Rg(ir.R(0)), ir.Imm(3))
	entry.Jcc(ir.CondGT, then, done)
	then.Add(ir.Rg(ir.R(1)), ir.Imm(1))
	then.Jmp(done)
	done.Ret()
	p := pb.MustBuild()

	r := staticsimt.Analyze(p, staticsimt.Options{})
	if br := branchOf(t, r, 0, 0); !br.Uniform {
		t.Fatalf("immediate-only compare classified divergent: %+v", br)
	}
	if r.UniformBranches != 1 || r.DivergentBranches != 0 {
		t.Fatalf("totals = %d/%d, want 1/0", r.UniformBranches, r.DivergentBranches)
	}
}

// A value that is uniform on both arms of a divergent diamond still differs
// across threads after the merge; the control taint must catch it.
func TestControlTaintAtMerge(t *testing.T) {
	pb := ir.NewBuilder("ctl-merge")
	f := pb.NewFunc("main")
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	tail := f.NewBlock("tail")
	done := f.NewBlock("done")
	entry.Cmp(ir.Rg(ir.TID), ir.Imm(2))
	entry.Jcc(ir.CondLT, then, els)
	then.Mov(ir.Rg(ir.R(1)), ir.Imm(10)) // uniform value, divergent definition site
	then.Jmp(join)
	els.Mov(ir.Rg(ir.R(1)), ir.Imm(20))
	els.Jmp(join)
	join.Cmp(ir.Rg(ir.R(1)), ir.Imm(15))
	join.Jcc(ir.CondLT, tail, done)
	tail.Jmp(done)
	done.Ret()
	p := pb.MustBuild()

	r := staticsimt.Analyze(p, staticsimt.Options{})
	br := branchOf(t, r, 0, uint32(join.ID()))
	if br.Uniform {
		t.Fatalf("merge of divergent definitions classified uniform: %+v", br)
	}
	found := false
	for _, c := range br.Causes {
		if c == "control" {
			found = true
		}
	}
	if !found {
		t.Fatalf("causes = %v, want control taint", br.Causes)
	}
}

func TestStackSlotTracking(t *testing.T) {
	build := func(invalidate bool) *ir.Program {
		pb := ir.NewBuilder("slots")
		f := pb.NewFunc("main")
		entry := f.NewBlock("entry")
		then := f.NewBlock("then")
		done := f.NewBlock("done")
		entry.Mov(ir.Mem(ir.SP, -8, 8), ir.Imm(7)) // uniform spill
		if invalidate {
			// A store at an unknown frame offset wipes slot tracking.
			entry.Mov(ir.MemIdx(ir.SP, ir.R(0), 1, -64, 8), ir.Imm(0))
		}
		entry.Mov(ir.Rg(ir.R(2)), ir.Mem(ir.SP, -8, 8)) // reload
		entry.Cmp(ir.Rg(ir.R(2)), ir.Imm(0))
		entry.Jcc(ir.CondEQ, then, done)
		then.Jmp(done)
		done.Ret()
		return pb.MustBuild()
	}

	r := staticsimt.Analyze(build(false), staticsimt.Options{})
	if br := branchOf(t, r, 0, 0); !br.Uniform {
		t.Fatalf("tracked-slot reload classified divergent: %+v", br)
	}
	r = staticsimt.Analyze(build(true), staticsimt.Options{})
	br := branchOf(t, r, 0, 0)
	if br.Uniform {
		t.Fatalf("reload after indexed frame store stayed uniform: %+v", br)
	}
	if len(br.Causes) != 1 || br.Causes[0] != "memory" {
		t.Fatalf("causes = %v, want [memory]", br.Causes)
	}
}

func TestCallPropagation(t *testing.T) {
	// main moves a value into r0 and calls leaf, which branches on r0;
	// leaf also returns TID in r1, which main then branches on.
	build := func(arg ir.Operand) *ir.Program {
		pb := ir.NewBuilder("calls")
		mainF := pb.NewFunc("main")
		leafF := pb.NewFunc("leaf")

		entry := mainF.NewBlock("entry")
		cont := mainF.NewBlock("cont")
		tail := mainF.NewBlock("tail")
		done := mainF.NewBlock("done")
		entry.Mov(ir.Rg(ir.R(0)), arg)
		entry.Call(leafF, cont)
		cont.Cmp(ir.Rg(ir.R(1)), ir.Imm(0)) // r1 set by leaf
		cont.Jcc(ir.CondEQ, tail, done)
		tail.Jmp(done)
		done.Ret()

		lentry := leafF.NewBlock("entry")
		lthen := leafF.NewBlock("then")
		lret := leafF.NewBlock("ret")
		lentry.Cmp(ir.Rg(ir.R(0)), ir.Imm(1))
		lentry.Jcc(ir.CondEQ, lthen, lret)
		lthen.Jmp(lret)
		lret.Mov(ir.Rg(ir.R(1)), ir.Rg(ir.TID))
		lret.Ret()
		return pb.MustBuild()
	}

	r := staticsimt.Analyze(build(ir.Imm(1)), staticsimt.Options{})
	if br := branchOf(t, r, 1, 0); !br.Uniform {
		t.Fatalf("leaf branch on uniform argument classified divergent: %+v", br)
	}
	if br := branchOf(t, r, 0, 1); br.Uniform {
		t.Fatalf("caller branch on callee's TID result classified uniform: %+v", br)
	}

	r = staticsimt.Analyze(build(ir.Rg(ir.TID)), staticsimt.Options{})
	if br := branchOf(t, r, 1, 0); br.Uniform {
		t.Fatalf("leaf branch on TID argument classified uniform: %+v", br)
	}
}

func TestIsomorphicArmsMeld(t *testing.T) {
	pb := ir.NewBuilder("meld-iso")
	f := pb.NewFunc("main")
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	entry.Cmp(ir.Rg(ir.TID), ir.Imm(2))
	entry.Jcc(ir.CondLT, then, els)
	then.Add(ir.Rg(ir.R(1)), ir.Imm(3))
	then.Mul(ir.Rg(ir.R(1)), ir.Rg(ir.R(4)))
	then.Jmp(join)
	els.Add(ir.Rg(ir.R(2)), ir.Imm(3)) // same code modulo r1→r2
	els.Mul(ir.Rg(ir.R(2)), ir.Rg(ir.R(4)))
	els.Jmp(join)
	join.Ret()
	p := pb.MustBuild()

	r := staticsimt.Analyze(p, staticsimt.Options{})
	if r.Meldable != 1 {
		t.Fatalf("meldable = %d, want 1\nfuncs: %+v", r.Meldable, r.Funcs)
	}
	m := r.Funcs[0].Melds[0]
	if m.Kind != "isomorphic-arms" || m.ThenInstrs != 2 || m.SavedIssues != 2 {
		t.Fatalf("meld = %+v", m)
	}
}

func TestOverBudgetMeld(t *testing.T) {
	pb := ir.NewBuilder("meld-budget")
	f := pb.NewFunc("main")
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	entry.Cmp(ir.Rg(ir.TID), ir.Imm(2))
	entry.Jcc(ir.CondLT, then, els)
	for i := 0; i < 13; i++ { // over the O3 budget of 12, but speculation-safe
		then.Add(ir.Rg(ir.R(1)), ir.Imm(1))
		els.Add(ir.Rg(ir.R(2)), ir.Imm(2)) // not isomorphic: different imm
	}
	then.Jmp(join)
	els.Jmp(join)
	join.Ret()
	p := pb.MustBuild()

	r := staticsimt.Analyze(p, staticsimt.Options{})
	if r.Meldable != 1 {
		t.Fatalf("meldable = %d, want 1\nfuncs: %+v", r.Meldable, r.Funcs)
	}
	m := r.Funcs[0].Melds[0]
	if m.Kind != "if-convertible-over-budget" || m.NeedBudget != 13 {
		t.Fatalf("meld = %+v", m)
	}
}

func TestUnreachableFunctionMarked(t *testing.T) {
	pb := ir.NewBuilder("phantom")
	mainF := pb.NewFunc("main")
	deadF := pb.NewFunc("dead")
	entry := mainF.NewBlock("entry")
	entry.Ret()
	dentry := deadF.NewBlock("entry")
	dthen := deadF.NewBlock("then")
	dret := deadF.NewBlock("ret")
	dentry.Cmp(ir.Rg(ir.R(0)), ir.Imm(0))
	dentry.Jcc(ir.CondEQ, dthen, dret)
	dthen.Jmp(dret)
	dret.Ret()
	p := pb.MustBuild()

	r := staticsimt.Analyze(p, staticsimt.Options{})
	if len(r.Funcs) != 2 || !r.Funcs[1].Unreachable {
		t.Fatalf("dead function not marked unreachable: %+v", r.Funcs)
	}
	// Worst-case entry: the branch on r0 must be divergent, not uniform.
	if br := branchOf(t, r, 1, 0); br.Uniform {
		t.Fatalf("phantom branch on unknown register classified uniform: %+v", br)
	}
}

// TestOracleSoundOnAllWorkloads is the ground-truth validation the issue
// demands: no branch the oracle calls uniform may record a divergence during
// dynamic replay, on any built-in workload, at two warp sizes.
func TestOracleSoundOnAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := w.Instantiate(workloads.Config{})
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			static := staticsimt.Analyze(inst.Prog, staticsimt.Options{})
			tr, err := inst.Trace()
			if err != nil {
				t.Fatalf("trace: %v", err)
			}
			for _, warpSize := range []int{8, 32} {
				opts := core.Defaults()
				opts.WarpSize = warpSize
				rep, err := core.Analyze(tr, opts)
				if err != nil {
					t.Fatalf("analyze (warp %d): %v", warpSize, err)
				}
				for _, br := range rep.Branches {
					if br.Divergences == 0 {
						continue
					}
					fn := inst.Prog.FuncByName(br.Func)
					if fn == nil {
						t.Fatalf("warp %d: report names unknown function %q", warpSize, br.Func)
					}
					cls, ok := static.Class(uint32(fn.ID), br.Block)
					if !ok {
						t.Errorf("warp %d: %s b%d diverged but has no static classification",
							warpSize, br.Func, br.Block)
						continue
					}
					if cls.Uniform {
						t.Errorf("warp %d: %s b%d diverged %d times but was classified uniform (soundness bug)",
							warpSize, br.Func, br.Block, br.Divergences)
					}
				}
			}
		})
	}
}

// The JSON projection must be byte-for-byte deterministic and round-trip.
func TestJSONDeterministicRoundTrip(t *testing.T) {
	w, err := workloads.ByName("bfs")
	if err != nil {
		// Name set may evolve; fall back to the first registered workload.
		w = workloads.All()[0]
	}
	inst, err := w.Instantiate(workloads.Config{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	enc := func() []byte {
		r := staticsimt.Analyze(inst.Prog, staticsimt.Options{})
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := enc(), enc()
	if !bytes.Equal(a, b) {
		t.Fatalf("two runs produced different JSON")
	}
	var back staticsimt.Result
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	c, err := json.MarshalIndent(&back, "", "  ")
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("JSON did not round-trip")
	}
}
