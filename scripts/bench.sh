#!/bin/sh
# Runs the analyzer's key benchmarks and writes BENCH_analyzer.json — a JSON
# ARRAY with one row per benchmark — so future changes have a perf trajectory
# to regress against. Two derived fields carry the headline claims:
#   replay_parallel.speedup_vs_serial        (replay scaling)
#   decode_v3_parallel.speedup_vs_v1_serial  (indexed-decode scaling)
# Each row records the GOMAXPROCS the run actually used (go test suffixes
# benchmark names with -N when N > 1); on a single-core runner both speedups
# hover around 1.0 by construction and only materialize at >= 8 cores.
#
# Environment:
#   BENCH_SKIP_CHECK=1  skip the `make check` gate (CI smoke runs)
#   BENCHTIME=1x        forwarded to -benchtime (default 1s)
set -e
cd "$(dirname "$0")/.."

# Verify before measuring: benchmark numbers from a tree that fails the
# lint or invariant checks (make check runs build/vet/test/race/lint plus
# tfcheck over every workload and the golden-snapshot comparison) are not
# worth recording.
if [ "${BENCH_SKIP_CHECK:-0}" != "1" ]; then
	make check
fi

out=BENCH_analyzer.json
raw=$(go test -run '^$' \
	-bench 'BenchmarkReplay(Serial|Parallel|Allocs)$|BenchmarkDecodeV(1Serial|2Serial|3Serial|3Parallel)$' \
	-benchmem -benchtime "${BENCHTIME:-1s}" -count=1 .)
echo "$raw"

cores=$(nproc 2>/dev/null || echo 1)
echo "$raw" | awk -v cores="$cores" '
/^Benchmark/ {
	# Field 1 is "BenchmarkName-N"; N is the GOMAXPROCS used (absent when 1).
	name = $1
	procs = 1
	if (match(name, /-[0-9]+$/)) {
		procs = substr(name, RSTART + 1) + 0
		name = substr(name, 1, RSTART - 1)
	}
	sub(/^Benchmark/, "", name)
	# Scan value/unit pairs; units anchor the values, field positions vary.
	ns[name] = ""; mbs[name] = ""; bpo[name] = ""; apo[name] = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns[name] = $i
		else if ($(i + 1) == "MB/s") mbs[name] = $i
		else if ($(i + 1) == "B/op") bpo[name] = $i
		else if ($(i + 1) == "allocs/op") apo[name] = $i
	}
	gomax[name] = procs
	seen[name] = 1
}
function key(name) {
	# ReplaySerial -> replay_serial, DecodeV3Parallel -> decode_v3_parallel
	out = ""
	for (j = 1; j <= length(name); j++) {
		ch = substr(name, j, 1)
		if (ch >= "A" && ch <= "Z") {
			if (out != "") out = out "_"
			out = out tolower(ch)
		} else out = out ch
	}
	gsub(/v_([0-9])/, "v\\1", out)
	return out
}
function row(name, extra,    s) {
	s = sprintf("  {\"name\": \"%s\", \"gomaxprocs\": %d, \"ns_per_op\": %s", \
		key(name), gomax[name], ns[name])
	if (mbs[name] != "") s = s sprintf(", \"mb_per_s\": %s", mbs[name])
	if (bpo[name] != "") s = s sprintf(", \"bytes_per_op\": %s", bpo[name])
	if (apo[name] != "") s = s sprintf(", \"allocs_per_op\": %s", apo[name])
	if (extra != "")     s = s ", " extra
	return s "}"
}
END {
	n = split("ReplaySerial ReplayParallel ReplayAllocs " \
		"DecodeV1Serial DecodeV2Serial DecodeV3Serial DecodeV3Parallel", want, " ")
	missing = ""
	for (i = 1; i <= n; i++)
		if (!(want[i] in seen) || ns[want[i]] == "")
			missing = missing " " want[i]
	if (missing != "") {
		print "bench.sh: missing benchmark rows:" missing > "/dev/stderr"
		exit 1
	}
	print "["
	print "  {\"benchmark\": \"parsec.vips, 64 threads, warp 32\", \"cpus\": " cores "},"
	print row("ReplaySerial") ","
	print row("ReplayParallel", \
		sprintf("\"speedup_vs_serial\": %.2f", ns["ReplaySerial"] / ns["ReplayParallel"])) ","
	print row("ReplayAllocs") ","
	print row("DecodeV1Serial") ","
	print row("DecodeV2Serial") ","
	print row("DecodeV3Serial") ","
	print row("DecodeV3Parallel", \
		sprintf("\"speedup_vs_v1_serial\": %.2f", ns["DecodeV1Serial"] / ns["DecodeV3Parallel"]))
	print "]"
}' > "$out"

echo "wrote $out:"
cat "$out"
