package core

import (
	"fmt"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/pool"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
)

// This file is the analyzer's streaming ingest path. The batch path
// (Analyze) runs in strict stages — decode the whole trace, validate it,
// build columns, build DCFGs — each a full pass over every record, and
// replay cannot start until the last one finishes. With an indexed v3 trace
// none of that serialization is necessary: thread sections decode
// independently, so the per-thread work (validation, packed SoA columns) can
// ride inside the decode worker while the section is cache-hot, and the one
// stage that is inherently ordered — the merged DCFG walk — runs on a
// consumer goroutine that chases the decoders section by section. By the
// time the last section lands, validation, columns, and graphs are already
// done, and the warps fan straight out over the replay workers'
// work-stealing pool. Results are bit-identical to the batch path at every
// parallelism.

// AnalyzeStream runs the full analyzer over an indexed trace with decode,
// validation, column building, and DCFG construction pipelined per thread
// section. The returned report is identical to decoding the trace and
// calling Analyze.
func AnalyzeStream(r *trace.Reader, opts Options) (*Report, error) {
	if opts.WarpSize == 0 {
		return nil, fmt.Errorf("core: WarpSize must be set (use core.Defaults)")
	}
	if opts.Context != nil && opts.Context.Err() != nil {
		return nil, fmt.Errorf("core: analysis canceled: %w", opts.Context.Err())
	}
	t, p, err := prepareStream(r, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	warps, err := warp.Form(t, opts.WarpSize, opts.Formation)
	if err != nil {
		return nil, fmt.Errorf("core: forming warps: %w", err)
	}
	return analyzeWith(t, p, warps, opts)
}

// AnalyzeStreamCached is AnalyzeStream through the report cache. The trace
// must be ingested either way (the cache key hashes record content), so the
// pipelined decode always runs; a hit then skips only the replay, exactly
// like AnalyzeCached.
func AnalyzeStreamCached(c *Cache, r *trace.Reader, opts Options) (*Report, bool, error) {
	if c == nil || opts.Listener != nil {
		rep, err := AnalyzeStream(r, opts)
		return rep, false, err
	}
	if opts.WarpSize == 0 {
		return nil, false, fmt.Errorf("core: WarpSize must be set (use core.Defaults)")
	}
	if opts.Context != nil && opts.Context.Err() != nil {
		return nil, false, fmt.Errorf("core: analysis canceled: %w", opts.Context.Err())
	}
	t, p, err := prepareStream(r, opts.Parallelism)
	if err != nil {
		return nil, false, err
	}
	key, kerr := cacheKey(t, opts)
	if kerr == nil {
		if rep, ok := c.get(key); ok {
			return rep, true, nil
		}
	}
	warps, err := warp.Form(t, opts.WarpSize, opts.Formation)
	if err != nil {
		return nil, false, fmt.Errorf("core: forming warps: %w", err)
	}
	rep, err := analyzeWith(t, p, warps, opts)
	if err != nil {
		return nil, false, err
	}
	if kerr == nil {
		c.put(key, rep)
	}
	return rep, false, nil
}

// prepareStream ingests every thread section of r and returns the decoded
// trace plus its prepared analysis products. Decode workers (work-stealing
// over sections, bounded by pool.Workers) each decode a section, validate
// it, and derive its packed SoA columns in one cache-hot pass; a consumer
// goroutine walks completed sections in trace order to build the merged
// DCFGs, so graph construction overlaps the remaining decodes. The ordered
// walk is what keeps the result — including DCFG entry observation order —
// identical to the batch path's.
func prepareStream(r *trace.Reader, parallelism int) (*trace.Trace, *prep, error) {
	hdr := r.Header()
	n := r.NumThreads()
	t := &trace.Trace{
		Program: hdr.Program,
		Entry:   hdr.Entry,
		Funcs:   hdr.Funcs,
		Threads: make([]*trace.ThreadTrace, n),
	}
	cols := trace.NewCols(n)
	t.Cols = cols

	// ready[i] is closed once section i is decoded (or failed); errs[i]
	// holds its error. The channel close publishes the worker's writes to
	// t.Threads[i], the column slots, and errs[i] to the consumer.
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	errs := make([]error, n)

	b := cfg.NewBuilder(t.Funcs)
	var walkErr error
	walked := make(chan struct{})
	go func() {
		defer close(walked)
		for i := 0; i < n; i++ {
			<-ready[i]
			if errs[i] != nil {
				// First failing section in trace order wins, matching the
				// deterministic error the batch stages would surface.
				walkErr = errs[i]
				return
			}
			if walkErr = b.AddThread(t.Threads[i]); walkErr != nil {
				return
			}
		}
	}()

	pool.ForEach(pool.Workers(parallelism, n), n, func(_, i int) bool {
		th, err := r.Thread(i)
		if err == nil {
			err = t.ValidateThread(th)
		}
		if err == nil {
			t.Threads[i] = th
			cols.SetThread(i, th)
		}
		errs[i] = err
		close(ready[i])
		return false
	})
	<-walked
	if walkErr != nil {
		return nil, nil, fmt.Errorf("core: streaming ingest: %w", walkErr)
	}
	graphs := b.Finish()
	return t, &prep{graphs: graphs, pdoms: ipdom.ComputeAll(graphs)}, nil
}
