package serve

import (
	"bytes"
	"context"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"threadfuser/internal/core"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// testTrace builds a small two-thread trace with a divergent branch and
// memory traffic — enough structure that reports are non-trivial.
func testTrace() *trace.Trace {
	t := &trace.Trace{
		Program: "servetest",
		Funcs: []trace.FuncInfo{
			{Name: "main", Blocks: []trace.BlockInfo{{NInstr: 2}, {NInstr: 3}, {NInstr: 1}}},
		},
	}
	for tid := 0; tid < 2; tid++ {
		recs := []trace.Record{
			{Kind: trace.KindCall, Callee: 0},
			{Kind: trace.KindBBL, Func: 0, Block: 0, N: 2, Mem: []trace.MemAccess{
				{Instr: 0, Addr: vm.GlobalBase + 256*uint64(tid), Size: 8},
			}},
		}
		if tid == 0 {
			recs = append(recs, trace.Record{Kind: trace.KindBBL, Func: 0, Block: 1, N: 3})
		}
		recs = append(recs,
			trace.Record{Kind: trace.KindBBL, Func: 0, Block: 2, N: 1},
			trace.Record{Kind: trace.KindRet},
		)
		t.Threads = append(t.Threads, &trace.ThreadTrace{TID: tid, Records: recs})
	}
	return t
}

// tftBytes encodes the trace as an uploadable stream.
func tftBytes(t testing.TB, tr *trace.Trace, indexed bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if indexed {
		err = trace.EncodeIndexed(&buf, tr)
	} else {
		err = trace.Encode(&buf, tr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer mounts a Server on an httptest listener. Cleanup drains
// the server first: abandoned flight goroutines must finish before other
// cleanups (notably replay-hook restores) mutate state they read.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("draining test server: %v", err)
		}
		ts.Close()
	})
	return srv, ts
}

// countReplays installs a replay counter for the test's duration.
func countReplays(t *testing.T) *atomic.Int64 {
	t.Helper()
	var n atomic.Int64
	restore := core.SetReplayTestHook(func() { n.Add(1) })
	t.Cleanup(restore)
	return &n
}

// gateReplays blocks every replay on the returned gate (and counts them).
// Closing the gate releases all current and future replays.
func gateReplays(t *testing.T) (release func(), count *atomic.Int64) {
	t.Helper()
	gate := make(chan struct{})
	var n atomic.Int64
	restore := core.SetReplayTestHook(func() {
		n.Add(1)
		<-gate
	})
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	// LIFO: the gate must open before the hook is restored.
	t.Cleanup(restore)
	t.Cleanup(release)
	return release, &n
}

// waitFor polls cond until it holds or the suite's patience runs out.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

type clientResult struct {
	body []byte
	role string
	err  error
}

// TestAnalyzeDedupExactlyOnce is the headline concurrency property: N
// clients POST the same trace with the same options concurrently; the
// replay engine runs exactly once, every response is 200, and every body is
// byte-identical to the leader's.
func TestAnalyzeDedupExactlyOnce(t *testing.T) {
	release, replays := gateReplays(t)
	srv, ts := newTestServer(t, Config{
		MaxConcurrent: 4,
		QueueDepth:    64,
		TenantBudget:  64,
	})
	tft := tftBytes(t, testTrace(), true)

	const n = 16
	results := make([]clientResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/analyze?warp=4", "application/octet-stream", bytes.NewReader(tft))
			if err != nil {
				results[i] = clientResult{err: err}
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				results[i] = clientResult{err: err}
				return
			}
			if resp.StatusCode != 200 {
				t.Errorf("request %d: status %d body %s", i, resp.StatusCode, buf.String())
			}
			results[i] = clientResult{body: buf.Bytes(), role: resp.Header.Get("X-Tfserve-Dedup")}
		}(i)
	}

	// Hold the single replay open until every other request has joined the
	// flight as a follower — the strongest possible overlap.
	waitFor(t, func() bool { return srv.Snapshot().DedupFollowers == n-1 }, "all followers to join")
	release()
	wg.Wait()

	if got := replays.Load(); got != 1 {
		t.Fatalf("replay engine ran %d times for %d identical concurrent requests, want exactly 1", got, n)
	}
	var leaders, followers int
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d failed: %v", i, r.err)
		}
		switch r.role {
		case "leader":
			leaders++
		case "follower":
			followers++
		default:
			t.Errorf("request %d: unexpected dedup role %q", i, r.role)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Errorf("request %d body differs from request 0:\n%s\nvs\n%s", i, r.body, results[0].body)
		}
	}
	if leaders != 1 || followers != n-1 {
		t.Errorf("roles: %d leaders / %d followers, want 1 / %d", leaders, followers, n-1)
	}
	if q := srv.QueueInFlight(); q != 0 {
		t.Errorf("queue holds %d slots after all requests completed", q)
	}
}

// TestAnalyzeDistinctOptionsDoNotDedup: the same trace at different warp
// sizes is different work — both replays run.
func TestAnalyzeDistinctOptionsDoNotDedup(t *testing.T) {
	replays := countReplays(t)
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	tft := tftBytes(t, testTrace(), false)
	for _, q := range []string{"warp=4", "warp=8"} {
		resp, err := ts.Client().Post(ts.URL+"/v1/analyze?"+q, "application/octet-stream", bytes.NewReader(tft))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", q, resp.StatusCode)
		}
	}
	if got := replays.Load(); got != 2 {
		t.Fatalf("%d replays for two distinct configurations, want 2", got)
	}
}

// TestServeCacheHit: with a report cache attached, a repeat of a completed
// request is served from disk (X-Tfserve-Cache: hit) without replaying,
// and the body matches the original byte for byte.
func TestServeCacheHit(t *testing.T) {
	replays := countReplays(t)
	cache := core.NewCache(t.TempDir())
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, Cache: cache})
	tft := tftBytes(t, testTrace(), true)

	post := func() (int, string, []byte) {
		resp, err := ts.Client().Post(ts.URL+"/v1/analyze?warp=8", "application/octet-stream", bytes.NewReader(tft))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, resp.Header.Get("X-Tfserve-Cache"), buf.Bytes()
	}

	st1, c1, b1 := post()
	if st1 != 200 || c1 != "miss" {
		t.Fatalf("first request: status %d cache %q", st1, c1)
	}
	st2, c2, b2 := post()
	if st2 != 200 || c2 != "hit" {
		t.Fatalf("second request: status %d cache %q, want 200/hit", st2, c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cache hit body differs from computed body")
	}
	if got := replays.Load(); got != 1 {
		t.Fatalf("%d replays across a miss and a hit, want 1", got)
	}
}

// TestServeCacheCorruptionDegrades: truncating every cached entry on disk
// must not surface as a 5xx — the service re-replays and repairs.
func TestServeCacheCorruptionDegrades(t *testing.T) {
	replays := countReplays(t)
	dir := t.TempDir()
	cache := core.NewCache(dir)
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, Cache: cache})
	tft := tftBytes(t, testTrace(), true)

	post := func() (int, string) {
		resp, err := ts.Client().Post(ts.URL+"/v1/analyze?warp=8", "application/octet-stream", bytes.NewReader(tft))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, resp.Header.Get("X-Tfserve-Cache")
	}
	if st, _ := post(); st != 200 {
		t.Fatalf("first request: status %d", st)
	}
	// Corrupt every stored entry the way a torn write would.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var truncated int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			if err := os.Truncate(filepath.Join(dir, e.Name()), 7); err != nil {
				t.Fatal(err)
			}
			truncated++
		}
	}
	if truncated == 0 {
		t.Fatal("no cache entries written by first request")
	}
	st, c := post()
	if st != 200 {
		t.Fatalf("request over corrupt cache: status %d, want 200 (degrade to replay)", st)
	}
	if c != "miss" {
		t.Fatalf("request over corrupt cache reported %q, want miss", c)
	}
	if got := replays.Load(); got != 2 {
		t.Fatalf("%d replays, want 2 (original + degraded re-replay)", got)
	}
}

// TestLintAndCheckEndpoints: the other two trace-upload endpoints round-trip
// through the typed client.
func TestLintAndCheckEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	c := Client{BaseURL: ts.URL}
	tft := tftBytes(t, testTrace(), true)

	lint, err := c.Lint(context.Background(), bytes.NewReader(tft), url.Values{"warp": {"4"}})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if lint.Program != "servetest" || lint.WarpSize != 4 {
		t.Fatalf("lint report: program %q warp %d", lint.Program, lint.WarpSize)
	}
	chk, err := c.Check(context.Background(), bytes.NewReader(tft),
		url.Values{"warps": {"1,4"}, "parallel": {"1"}, "name": {"servetest"}})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if chk.Checks == 0 {
		t.Fatal("check ran zero property checks")
	}
	if !chk.OK() {
		t.Fatalf("check violations on a well-formed trace: %+v", chk.Violations)
	}
}

// TestStaticEndpoint: static oracles run over bundled workloads by name;
// unknown names are 404, a missing name is 400 listing the choices.
func TestStaticEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	c := Client{BaseURL: ts.URL}

	rep, err := c.Static(context.Background(), url.Values{"workload": {"vectoradd"}})
	if err != nil {
		t.Fatalf("static: %v", err)
	}
	if rep.SIMT == nil || rep.Workload != "vectoradd" {
		t.Fatalf("static report: %+v", rep)
	}
	locks, err := c.Static(context.Background(), url.Values{"workload": {"vectoradd"}, "mode": {"locks"}})
	if err != nil {
		t.Fatalf("static locks: %v", err)
	}
	if locks.Locks == nil {
		t.Fatal("locks mode returned no lock result")
	}

	_, err = c.Static(context.Background(), url.Values{"workload": {"no-such-workload"}})
	var re *RemoteError
	if !asRemote(err, &re) || re.Status != 404 {
		t.Fatalf("unknown workload: %v, want 404", err)
	}
	_, err = c.Static(context.Background(), nil)
	if !asRemote(err, &re) || re.Status != 400 || !strings.Contains(re.Message, "vectoradd") {
		t.Fatalf("missing workload param: %v, want 400 listing workloads", err)
	}
}

func asRemote(err error, out **RemoteError) bool {
	re, ok := err.(*RemoteError)
	if ok {
		*out = re
	}
	return ok
}
