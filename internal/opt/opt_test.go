package opt

import (
	"testing"

	"threadfuser/internal/core"
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
	"threadfuser/internal/workloads"
)

// TestTransformsPreserveSemantics runs every Table-I workload at every
// optimization level and checks the global+heap memory image is identical
// to the canonical build's — the transforms may change instruction streams
// and stack traffic but never results.
func TestTransformsPreserveSemantics(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst, err := w.Instantiate(workloads.Config{Seed: 3, Threads: 16})
			if err != nil {
				t.Fatal(err)
			}
			run := func(prog *ir.Program) uint64 {
				p, args, err := inst.WithProgram(prog).NewProcess()
				if err != nil {
					t.Fatal(err)
				}
				for tid := 0; tid < 16; tid++ {
					th := p.NewThread(tid)
					if args != nil {
						args(tid, th)
					}
					if _, err := th.Run(vm.RunConfig{}); err != nil {
						t.Fatalf("%s: %v", prog.Name, err)
					}
				}
				return p.Mem.HashBelow(vm.StackBase)
			}
			want := run(inst.Prog)
			for _, lvl := range Levels {
				if got := run(Apply(inst.Prog, lvl)); got != want {
					t.Errorf("%s build changed global/heap results", lvl)
				}
			}
			if got := run(HardwareBuild(inst.Prog)); got != want {
				t.Errorf("hardware build changed global/heap results")
			}
		})
	}
}

// TestIfConvertFiresOnWorkloads guards against the transform silently
// matching nothing (which would flatten the figure-5 scatter to a line).
func TestIfConvertFiresOnWorkloads(t *testing.T) {
	total := 0
	for _, name := range []string{"rodinia.sc", "parsec.bodytrack", "dsb.text", "parsec.blackscholes"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := w.Instantiate(workloads.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		p := ir.Clone(inst.Prog)
		n := IfConvert(p, ifBudgetO3)
		if n == 0 {
			t.Errorf("%s: O3 if-conversion found no diamonds", name)
		}
		total += n
	}
	if total < 4 {
		t.Errorf("if-conversion fired only %d times across four branchy workloads", total)
	}
}

// TestOptLevelEfficiencyOrdering pins the figure-5a direction: higher
// optimization levels flatten divergence, so predicted efficiency is
// non-decreasing from O1 to O3 and O0 matches O1 (same control flow).
func TestOptLevelEfficiencyOrdering(t *testing.T) {
	for _, name := range []string{"rodinia.sc", "parsec.bodytrack", "dsb.text"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := w.Instantiate(workloads.Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		eff := map[Level]float64{}
		for _, lvl := range Levels {
			tr, err := inst.WithProgram(Apply(inst.Prog, lvl)).Trace()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Analyze(tr, core.Defaults())
			if err != nil {
				t.Fatal(err)
			}
			eff[lvl] = rep.Efficiency
		}
		// O0 keeps the control-flow graph but dilutes blocks with spill
		// code, so efficiency shifts only slightly.
		if diff := eff[O0] - eff[O1]; diff > 0.07 || diff < -0.07 {
			t.Errorf("%s: O0 efficiency %.3f far from O1 %.3f (same control flow expected)", name, eff[O0], eff[O1])
		}
		if eff[O2] < eff[O1]-1e-9 {
			t.Errorf("%s: O2 efficiency %.3f below O1 %.3f", name, eff[O2], eff[O1])
		}
		if eff[O3] < eff[O2]-1e-9 {
			t.Errorf("%s: O3 efficiency %.3f below O2 %.3f", name, eff[O3], eff[O2])
		}
		if eff[O3] <= eff[O1]+1e-9 {
			t.Errorf("%s: O3 efficiency %.3f does not exceed O1 %.3f; if-conversion had no effect", name, eff[O3], eff[O1])
		}
	}
}

// TestO0InflatesMemoryTraffic pins the figure-5b direction: the O0 build
// issues strictly more memory transactions (stack spills plus redundant
// reloads) than the canonical build.
func TestO0InflatesMemoryTraffic(t *testing.T) {
	w, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	analyze := func(prog *ir.Program) *core.Report {
		tr, err := inst.WithProgram(prog).Trace()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Analyze(tr, core.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	o0 := analyze(Apply(inst.Prog, O0))
	o1 := analyze(inst.Prog)
	if o0.HeapTx <= o1.HeapTx {
		t.Errorf("O0 heap transactions %d not above O1's %d (redundant reloads missing)", o0.HeapTx, o1.HeapTx)
	}
	if o0.StackTx <= o1.StackTx {
		t.Errorf("O0 stack transactions %d not above O1's %d (spills missing)", o0.StackTx, o1.StackTx)
	}
	if o0.TotalInstrs <= o1.TotalInstrs {
		t.Errorf("O0 executed %d instructions, want more than O1's %d", o0.TotalInstrs, o1.TotalInstrs)
	}
}
