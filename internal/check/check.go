// Package check is the ThreadFuser verification engine: a property- and
// differential-testing layer that runs traces through configuration matrices
// and asserts the analyzer's algebraic invariants across them.
//
// The analyzer's headline numbers (SIMT efficiency per equation 1, memory
// divergence, lock serialization) are only trustworthy if the replay engine
// is self-consistent across configurations: serial and parallel replay must
// be bit-identical, warp width 1 must give efficiency exactly 1.0, lock
// emulation may add serialization but never create or destroy thread
// instructions, coalescing transaction counts must obey per-access bounds,
// and the per-function breakdown must recombine into the whole-program
// equation-1 value. Each of those statements is a Property here; cmd/tfcheck
// runs them over the built-in workloads, .tft files, and randomized
// generated traces (with shrinking to minimal reproducers), and every future
// performance PR must keep them green.
package check

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"threadfuser/internal/core"
	"threadfuser/internal/ir"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
)

// AnalyzeFunc runs the analyzer over a trace at one configuration. The
// engine's default is a memoized core.Session; tests substitute a mutated
// analyzer to prove the properties actually catch broken replays.
type AnalyzeFunc func(*trace.Trace, core.Options) (*core.Report, error)

// Options configure a verification run. The zero value checks the default
// matrix (warp widths 1/4/32 × parallelism 1/4, round-robin formation) with
// every property.
type Options struct {
	// Props selects property ids to run (default: all). See Properties.
	Props []string
	// WarpSizes is the warp-width axis of the matrix (default {1, 4, 32}).
	WarpSizes []int
	// Parallelism is the replay worker-count axis (default {1, 4}).
	// Level 1 is always checked; the determinism property compares every
	// other level against it.
	Parallelism []int
	// Formations is the warp-batching axis (default {RoundRobin}).
	Formations []warp.Formation
	// Analyze overrides the analyzer under test (fault injection for the
	// engine's own tests). Nil uses a memoized core.Session.
	Analyze AnalyzeFunc
	// Prog attaches the traced program's IR, enabling the "staticuniform"
	// and "staticlockset" properties (static-oracle soundness against
	// replay). Nil leaves them vacuously true: trace-only inputs have no IR.
	Prog *ir.Program
	// Cache, if set, is attached to the default session, so matrix cells
	// already analyzed in an earlier run skip replay. Ignored when Analyze
	// is overridden (fault-injected analyzers must actually run).
	Cache *core.Cache
	// Context, if non-nil, cancels the matrix's replays; the analysis
	// service threads request timeouts through it. A canceled cell surfaces
	// as that cell's analysis error, not a partial verdict.
	Context context.Context
}

func (o Options) withDefaults() Options {
	if len(o.WarpSizes) == 0 {
		o.WarpSizes = []int{1, 4, 32}
	}
	if len(o.Parallelism) == 0 {
		o.Parallelism = []int{1, 4}
	}
	if len(o.Formations) == 0 {
		o.Formations = []warp.Formation{warp.RoundRobin}
	}
	return o
}

// Cell is one point of the configuration matrix a property evaluated.
type Cell struct {
	WarpSize    int
	Parallelism int
	Formation   warp.Formation
	Locks       bool
	// NoFusion runs the cell with the lockstep-fusion fast path disabled —
	// the per-block replay engine. The "fusion" property compares every base
	// cell against its NoFusion twin.
	NoFusion bool
}

func (c Cell) String() string {
	s := fmt.Sprintf("warp=%d par=%d %s", c.WarpSize, c.Parallelism, c.Formation)
	if c.Locks {
		s += " locks"
	}
	if c.NoFusion {
		s += " nofusion"
	}
	return s
}

// Violation is one failed invariant: which property, on which input, at
// which matrix cell, and what went wrong.
type Violation struct {
	Prop   string `json:"prop"`
	Input  string `json:"input"`
	Config string `json:"config"`
	Msg    string `json:"msg"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: [%s] %s: %s", v.Input, v.Prop, v.Config, v.Msg)
}

// Report is the verification outcome for one input.
type Report struct {
	Input string `json:"input"`
	// Props lists the property ids that ran, in execution order.
	Props []string `json:"props"`
	// Checks counts individual assertions evaluated.
	Checks int `json:"checks"`
	// Violations lists every failed assertion, in a deterministic order.
	Violations []Violation `json:"violations,omitempty"`
}

// OK reports whether every assertion held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Render writes the report in tfcheck's text format.
func (r *Report) Render(w io.Writer) {
	status := "ok"
	if !r.OK() {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	fmt.Fprintf(w, "%-28s %6d checks  [%s]  %s\n", r.Input, r.Checks, strings.Join(r.Props, ","), status)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  %s: %s: %s\n", v.Prop, v.Config, v.Msg)
	}
}

// Property is one machine-checked invariant of the analyzer.
type Property struct {
	id, desc string
	check    func(*ctx)
}

// ID returns the property's selector id (the -props name).
func (p Property) ID() string { return p.id }

// Desc returns the one-line description shown by tfcheck -list.
func (p Property) Desc() string { return p.desc }

// Properties returns the full catalog in execution order.
func Properties() []Property { return properties }

// selectProps resolves the ids in order, defaulting to all.
func selectProps(ids []string) ([]Property, error) {
	if len(ids) == 0 {
		return properties, nil
	}
	var out []Property
	for _, id := range ids {
		id = strings.TrimSpace(id)
		found := false
		for _, p := range properties {
			if p.id == id {
				out = append(out, p)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("check: unknown property %q (see Properties)", id)
		}
	}
	return out, nil
}

// ctx carries one input through a verification run: the trace, the resolved
// options, a memoized report per matrix cell, and the violation sink.
type ctx struct {
	name    string
	tr      *trace.Trace
	opts    Options
	analyze AnalyzeFunc
	reports map[Cell]*core.Report
	rerrs   map[Cell]error
	rep     *Report
	prop    string
}

// report returns the analyzer's output for one matrix cell, computing and
// memoizing it on first use so properties share cells.
func (c *ctx) report(cl Cell) (*core.Report, error) {
	if r, ok := c.reports[cl]; ok {
		return r, c.rerrs[cl]
	}
	opts := core.Options{
		WarpSize:              cl.WarpSize,
		Formation:             cl.Formation,
		EmulateLocks:          cl.Locks,
		Parallelism:           cl.Parallelism,
		DisableLockstepFusion: cl.NoFusion,
	}
	r, err := c.analyze(c.tr, opts)
	c.reports[cl] = r
	c.rerrs[cl] = err
	return r, err
}

// mustReport is report with analyzer failures converted into violations;
// the bool reports usability.
func (c *ctx) mustReport(cl Cell) (*core.Report, bool) {
	r, err := c.report(cl)
	c.check()
	if err != nil {
		c.violatef(cl, "analyze failed: %v", err)
		return nil, false
	}
	return r, true
}

// check counts one evaluated assertion.
func (c *ctx) check() { c.rep.Checks++ }

// assert counts an assertion and records a violation when cond is false.
func (c *ctx) assert(cl Cell, cond bool, format string, args ...any) {
	c.check()
	if !cond {
		c.violatef(cl, format, args...)
	}
}

func (c *ctx) violatef(cl Cell, format string, args ...any) {
	c.rep.Violations = append(c.rep.Violations, Violation{
		Prop:   c.prop,
		Input:  c.name,
		Config: cl.String(),
		Msg:    fmt.Sprintf(format, args...),
	})
}

// baseCells enumerates the serial (parallelism 1) matrix cells: every warp
// width × formation × lock mode.
func (c *ctx) baseCells() []Cell {
	var out []Cell
	for _, w := range c.opts.WarpSizes {
		for _, f := range c.opts.Formations {
			for _, locks := range []bool{false, true} {
				out = append(out, Cell{WarpSize: w, Parallelism: 1, Formation: f, Locks: locks})
			}
		}
	}
	return out
}

// Run verifies one trace under the options' configuration matrix. The
// returned error covers only invalid options; failed invariants are
// violations in the Report.
func Run(name string, tr *trace.Trace, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	props, err := selectProps(opts.Props)
	if err != nil {
		return nil, err
	}
	for _, w := range opts.WarpSizes {
		if w < 1 || w > 64 {
			return nil, fmt.Errorf("check: warp size %d out of range [1,64]", w)
		}
	}
	for _, p := range opts.Parallelism {
		if p < 0 {
			return nil, fmt.Errorf("check: negative parallelism %d", p)
		}
	}
	analyze := opts.Analyze
	if analyze == nil {
		sess := core.NewSession()
		if opts.Cache != nil {
			sess.SetCache(opts.Cache)
		}
		analyze = sess.Analyze
	}
	if opts.Context != nil {
		// Inject cancellation at the single point every matrix cell passes
		// through, so no cell-construction site needs to know about it.
		inner := analyze
		cctx := opts.Context
		analyze = func(tr *trace.Trace, o core.Options) (*core.Report, error) {
			o.Context = cctx
			return inner(tr, o)
		}
	}
	c := &ctx{
		name:    name,
		tr:      tr,
		opts:    opts,
		analyze: analyze,
		reports: make(map[Cell]*core.Report),
		rerrs:   make(map[Cell]error),
		rep:     &Report{Input: name},
	}
	for _, p := range props {
		c.prop = p.id
		c.rep.Props = append(c.rep.Props, p.id)
		p.check(c)
	}
	sortViolations(c.rep.Violations)
	return c.rep, nil
}

// sortViolations imposes the deterministic report order: property (catalog
// order), then config, then message.
func sortViolations(vs []Violation) {
	rank := make(map[string]int, len(properties))
	for i, p := range properties {
		rank[p.id] = i
	}
	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].Prop != vs[j].Prop {
			return rank[vs[i].Prop] < rank[vs[j].Prop]
		}
		if vs[i].Config != vs[j].Config {
			return vs[i].Config < vs[j].Config
		}
		return vs[i].Msg < vs[j].Msg
	})
}
