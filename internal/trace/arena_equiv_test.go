package trace_test

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"testing"

	"threadfuser/internal/core"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

// TestArenaWorkloadEquivalence is the arena-vs-legacy property test over
// real inputs: for every built-in workload and all three container versions,
// the arena-backed decode (Decode/DecodeBytes, plus the parallel fill path)
// and the legacy streaming decode produce deeply-equal traces, and the
// analyzer produces bit-identical reports from either — so switching the
// decode path can never change an analysis result.
func TestArenaWorkloadEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("traces and analyzes every workload")
	}
	encoders := []struct {
		name string
		enc  func(io.Writer, *trace.Trace) error
	}{
		{"v1", trace.Encode},
		{"v2", trace.EncodeCompact},
		{"v3", trace.EncodeIndexed},
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := w.Instantiate(workloads.Config{Threads: 8, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := inst.Trace()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range encoders {
				var buf bytes.Buffer
				if err := e.enc(&buf, tr); err != nil {
					t.Fatalf("%s encode: %v", e.name, err)
				}
				legacy, err := trace.DecodeStream(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("%s legacy decode: %v", e.name, err)
				}
				arena, err := trace.Decode(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("%s arena decode: %v", e.name, err)
				}
				if !reflect.DeepEqual(legacy, arena) {
					t.Fatalf("%s: arena decode differs from legacy decode", e.name)
				}
				par, err := trace.DecodeParallel(bytes.NewReader(buf.Bytes()), int64(buf.Len()), 4)
				if err != nil {
					t.Fatalf("%s parallel decode: %v", e.name, err)
				}
				if !reflect.DeepEqual(legacy, par) {
					t.Fatalf("%s: parallel decode differs from legacy decode", e.name)
				}
				legacyRep, err := core.Analyze(legacy, core.Defaults())
				if err != nil {
					t.Fatalf("%s analyze legacy: %v", e.name, err)
				}
				arenaRep, err := core.Analyze(arena, core.Defaults())
				if err != nil {
					t.Fatalf("%s analyze arena: %v", e.name, err)
				}
				lj, err := json.Marshal(legacyRep)
				if err != nil {
					t.Fatal(err)
				}
				aj, err := json.Marshal(arenaRep)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(lj, aj) {
					t.Fatalf("%s: analyzer report differs between legacy and arena decode", e.name)
				}
			}
		})
	}
}
