// Package ipdom computes immediate post-dominators over the per-function
// dynamic control flow graphs built by internal/cfg.
//
// The immediate post-dominator of a basic block is the first block
// guaranteed to execute on every path from the block to the function exit;
// SIMT hardware (and GPGPU-Sim, which the paper follows) uses it as the
// reconvergence point pushed with divergent SIMT-stack entries. The
// implementation is the iterative dataflow algorithm of Cooper, Harvey and
// Kennedy run on the reverse graph rooted at the function's virtual exit
// node, which is the formulation GPU simulators use in practice.
package ipdom

import "threadfuser/internal/cfg"

// PostDom holds the immediate post-dominator tree of one function's DCFG.
type PostDom struct {
	g     *cfg.DCFG
	ipdom []int32 // immediate post-dominator per node; -1 for nodes that never reach exit
}

// Compute runs the analysis for one DCFG.
func Compute(g *cfg.DCFG) *PostDom {
	n := g.NumNodes()
	exit := g.ExitNode()

	// Reverse post-order of the reverse CFG (DFS from exit along preds).
	rpo := make([]int32, 0, n)
	seen := make([]bool, n)
	var dfs func(v int32)
	dfs = func(v int32) {
		seen[v] = true
		for _, p := range g.Preds(v) {
			if !seen[p] {
				dfs(p)
			}
		}
		rpo = append(rpo, v) // postorder; reversed below
	}
	dfs(exit)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	rpoNum := make([]int32, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, v := range rpo {
		rpoNum[v] = int32(i)
	}

	ipd := make([]int32, n)
	for i := range ipd {
		ipd[i] = -1
	}
	ipd[exit] = exit

	intersect := func(a, b int32) int32 {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = ipd[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = ipd[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, v := range rpo {
			if v == exit {
				continue
			}
			// In the reverse graph the "predecessors" of v are its CFG
			// successors; only those already processed participate.
			var newIdom int32 = -1
			for _, s := range g.Succs(v) {
				if rpoNum[s] < 0 || ipd[s] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom >= 0 && ipd[v] != newIdom {
				ipd[v] = newIdom
				changed = true
			}
		}
	}

	return &PostDom{g: g, ipdom: ipd}
}

// IPDom returns the immediate post-dominator of block b. Blocks from which
// the exit was never observed reachable fall back to the virtual exit,
// keeping reconvergence conservative rather than undefined.
func (p *PostDom) IPDom(b int32) int32 {
	if int(b) >= len(p.ipdom) || p.ipdom[b] < 0 {
		return p.g.ExitNode()
	}
	return p.ipdom[b]
}

// PostDominates reports whether a post-dominates b, by walking b's
// post-dominator chain. Every node is post-dominated by itself and by the
// virtual exit.
func (p *PostDom) PostDominates(a, b int32) bool {
	exit := p.g.ExitNode()
	for {
		if b == a {
			return true
		}
		if b == exit {
			return a == exit
		}
		nb := p.IPDom(b)
		if nb == b {
			return false
		}
		b = nb
	}
}

// ComputeAll runs the analysis for every function in the DCFG map.
func ComputeAll(graphs map[uint32]*cfg.DCFG) map[uint32]*PostDom {
	out := make(map[uint32]*PostDom, len(graphs))
	for fn, g := range graphs {
		out[fn] = Compute(g)
	}
	return out
}
