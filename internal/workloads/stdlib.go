package workloads

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// stdlib builds the small synthetic C-library the workloads call into. The
// paper's microservices "leverage a spectrum of libraries, including C++
// stdlib, Intel MKL, gRPC, and FLANN"; the pieces that matter to SIMT
// analysis are the ones that allocate (lock serialization) and the ones that
// copy or hash (memory traffic), so those are modelled as real traced
// functions rather than intrinsics.
type stdlib struct {
	// Malloc is the arena allocator: 8 independent bump pointers, each
	// behind its own lock, chosen by tid%8 — the paper's assumed
	// "high-throughput concurrent memory manager". Argument: r10 = size.
	// Returns r10 = pointer. Clobbers r11-r13.
	Malloc *ir.FuncBuilder
	// GlibcMalloc is the single-mutex allocator glibc uses; every call
	// contends on one global lock, the serialization the paper found in
	// HDSearch-Midtier. Same calling convention as Malloc.
	GlibcMalloc *ir.FuncBuilder
	// Memcpy copies r11 bytes (8 at a time; r11 must be a multiple of 8)
	// from [r12] to [r10]. Clobbers r11-r14.
	Memcpy *ir.FuncBuilder
	// Hash computes a FNV-style hash of r10 over r11 rounds into r10.
	// Register-only: models hashing library code. Clobbers r12.
	Hash *ir.FuncBuilder
}

// addStdlib registers the stdlib functions with a program builder.
func addStdlib(pb *ir.Builder) *stdlib {
	s := &stdlib{}

	// malloc: arena = tid % NumArenas; lock arena; bump; unlock.
	s.Malloc = pb.NewFunc("malloc")
	mb := s.Malloc.NewBlock("malloc")
	mb.Mov(rg(11), tid()).
		Rem(rg(11), im(vm.NumArenas)).
		Mul(rg(11), im(vm.ArenaStateStride)).
		Add(rg(11), im(int64(vm.ArenaStateBase))). // r11 = &arena state
		Lock(ir.Mem(ir.R(11), 8, 8)).
		Spin(4). // brief contended-lock spinning, recorded as skipped
		Add(rg(10), im(15)).
		And(rg(10), im(^int64(15))).         // align size
		Mov(rg(12), ir.Mem(ir.R(11), 0, 8)). // old bump
		Mov(rg(13), rg(12)).
		Add(rg(13), rg(10)).
		Mov(ir.Mem(ir.R(11), 0, 8), rg(13)). // store new bump
		Unlock(ir.Mem(ir.R(11), 8, 8)).
		Mov(rg(10), rg(12)). // return old bump
		Ret()

	// glibc malloc: one shared lock and bump pointer.
	s.GlibcMalloc = pb.NewFunc("glibc_malloc")
	gb := s.GlibcMalloc.NewBlock("glibc_malloc")
	gb.Mov(rg(11), im(int64(vm.GlibcNextAddr))).
		Lock(im(int64(vm.GlibcLockAddr))).
		Spin(12). // the shared mutex spins longer under contention
		Add(rg(10), im(15)).
		And(rg(10), im(^int64(15))).
		Mov(rg(12), ir.Mem(ir.R(11), 0, 8)).
		Mov(rg(13), rg(12)).
		Add(rg(13), rg(10)).
		Mov(ir.Mem(ir.R(11), 0, 8), rg(13)).
		Unlock(im(int64(vm.GlibcLockAddr))).
		Mov(rg(10), rg(12)).
		Ret()

	// memcpy(dst=r10, src=r12, n=r11): 8-byte chunks.
	s.Memcpy = pb.NewFunc("memcpy")
	pre := s.Memcpy.NewBlock("memcpy_pre")
	pre.Shr(rg(11), im(3)) // words
	l := loopN(s.Memcpy, pre, "memcpy", 14, 0, rg(11))
	l.Body.Mov(rg(13), idx8(12, 14, 8, 0)).
		Mov(idx8(10, 14, 8, 0), rg(13))
	l.Next(l.Body)
	l.Exit.Ret()

	// hash(v=r10, rounds=r11) -> r10: FNV-ish mixing, pure ALU.
	s.Hash = pb.NewFunc("hash")
	hpre := s.Hash.NewBlock("hash_pre")
	hl := loopN(s.Hash, hpre, "hash", 12, 0, rg(11))
	hl.Body.Mul(rg(10), im(0x100000001b3)).
		Xor(rg(10), im(-0x61C8864680B583EB)). // 0x9E3779B97F4A7C15 as int64
		Shr(rg(10), im(1))
	hl.Next(hl.Body)
	hl.Exit.Ret()

	return s
}
