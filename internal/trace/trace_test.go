package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomTrace builds a structurally valid random trace: balanced call/ret
// nesting, block ids within the symbol table, in-range access indices.
func randomTrace(r *rand.Rand) *Trace {
	t := &Trace{Program: "rnd", Entry: 0}
	nf := 1 + r.Intn(4)
	for f := 0; f < nf; f++ {
		fi := FuncInfo{Name: "f" + string(rune('a'+f))}
		nb := 1 + r.Intn(5)
		for b := 0; b < nb; b++ {
			fi.Blocks = append(fi.Blocks, BlockInfo{NInstr: uint32(1 + r.Intn(12))})
		}
		t.Funcs = append(t.Funcs, fi)
	}
	nthreads := 1 + r.Intn(4)
	for tid := 0; tid < nthreads; tid++ {
		th := &ThreadTrace{TID: tid}
		depth := 0
		push := func(fn int) {
			th.Records = append(th.Records, Record{Kind: KindCall, Callee: uint32(fn)})
			depth++
		}
		push(0)
		steps := r.Intn(30)
		curFn := []int{0}
		for s := 0; s < steps; s++ {
			fn := curFn[len(curFn)-1]
			blocks := t.Funcs[fn].Blocks
			bi := r.Intn(len(blocks))
			rec := Record{
				Kind:  KindBBL,
				Func:  uint32(fn),
				Block: uint32(bi),
				N:     uint64(blocks[bi].NInstr),
			}
			for m := 0; m < r.Intn(3); m++ {
				rec.Mem = append(rec.Mem, MemAccess{
					Instr: uint16(r.Intn(int(blocks[bi].NInstr))),
					Addr:  r.Uint64() >> 8,
					Size:  []uint8{1, 2, 4, 8}[r.Intn(4)],
					Store: r.Intn(2) == 0,
				})
			}
			if r.Intn(8) == 0 {
				rec.Locks = append(rec.Locks, LockOp{
					Instr:   uint16(r.Intn(int(blocks[bi].NInstr))),
					Addr:    r.Uint64() >> 16,
					Release: r.Intn(2) == 0,
				})
			}
			th.Records = append(th.Records, rec)
			switch {
			case r.Intn(6) == 0 && depth < 4:
				push(r.Intn(len(t.Funcs)))
				curFn = append(curFn, int(th.Records[len(th.Records)-1].Callee))
			case r.Intn(6) == 0 && depth > 1:
				th.Records = append(th.Records, Record{Kind: KindRet})
				depth--
				curFn = curFn[:len(curFn)-1]
			case r.Intn(10) == 0:
				th.Records = append(th.Records, Record{Kind: KindSkip, SkipKind: SkipKind(r.Intn(2)), N: uint64(r.Intn(500))})
			}
		}
		for depth > 0 {
			// Close each open invocation with a block so Validate's CFG
			// consumers see well-formed streams, then return.
			fn := curFn[len(curFn)-1]
			th.Records = append(th.Records, Record{
				Kind: KindBBL, Func: uint32(fn), Block: 0,
				N: uint64(t.Funcs[fn].Blocks[0].NInstr),
			})
			th.Records = append(th.Records, Record{Kind: KindRet})
			depth--
			curFn = curFn[:len(curFn)-1]
		}
		t.Threads = append(t.Threads, th)
	}
	return t
}

// TestCodecRoundTrip is the property test: Decode(Encode(t)) == t for
// arbitrary valid traces.
func TestCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCodecFileRoundTrip(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(42)))
	path := filepath.Join(t.TempDir(), "x.tft")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("file round trip mismatch")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("TFTR"),             // truncated after magic
		[]byte("TFTR\x63"),         // wrong version
		[]byte("TFTR\x01\xff\xff"), // implausible string length
	}
	for i, c := range cases {
		if _, err := Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage decoded successfully", i)
		}
	}
}

func TestValidateAcceptsRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := func() *Trace {
		return &Trace{
			Program: "p",
			Funcs:   []FuncInfo{{Name: "f", Blocks: []BlockInfo{{NInstr: 4}}}},
			Threads: []*ThreadTrace{{TID: 0, Records: []Record{
				{Kind: KindCall, Callee: 0},
				{Kind: KindBBL, Func: 0, Block: 0, N: 4},
				{Kind: KindRet},
			}}},
		}
	}
	corrupt := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"func out of range", func(tr *Trace) { tr.Threads[0].Records[1].Func = 9 }, "out of range"},
		{"block out of range", func(tr *Trace) { tr.Threads[0].Records[1].Block = 9 }, "out of range"},
		{"instr count mismatch", func(tr *Trace) { tr.Threads[0].Records[1].N = 3 }, "static table"},
		{"mem index out of block", func(tr *Trace) {
			tr.Threads[0].Records[1].Mem = []MemAccess{{Instr: 8, Addr: 1, Size: 8}}
		}, "instr 8"},
		{"lock index out of block", func(tr *Trace) {
			tr.Threads[0].Records[1].Locks = []LockOp{{Instr: 9, Addr: 1}}
		}, "instr 9"},
		{"unbalanced ret", func(tr *Trace) {
			tr.Threads[0].Records = append(tr.Threads[0].Records, Record{Kind: KindRet})
		}, "below entry"},
		{"unterminated call", func(tr *Trace) {
			tr.Threads[0].Records = tr.Threads[0].Records[:2]
		}, "unbalanced"},
		{"bad callee", func(tr *Trace) { tr.Threads[0].Records[0].Callee = 7 }, "callee"},
	}
	for _, c := range corrupt {
		tr := base()
		c.mutate(tr)
		err := tr.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
}

func TestCountingHelpers(t *testing.T) {
	tr := &Trace{
		Program: "p",
		Funcs:   []FuncInfo{{Name: "f", Blocks: []BlockInfo{{NInstr: 4}}}},
		Threads: []*ThreadTrace{
			{TID: 0, Records: []Record{
				{Kind: KindCall},
				{Kind: KindBBL, N: 4},
				{Kind: KindSkip, SkipKind: SkipIO, N: 10},
				{Kind: KindSkip, SkipKind: SkipSpin, N: 3},
				{Kind: KindRet},
			}},
			{TID: 1, Records: []Record{
				{Kind: KindCall},
				{Kind: KindBBL, N: 4},
				{Kind: KindBBL, N: 4},
				{Kind: KindRet},
			}},
		},
	}
	if got := tr.TotalInstructions(); got != 12 {
		t.Errorf("TotalInstructions = %d, want 12", got)
	}
	io, spin := tr.TotalSkipped()
	if io != 10 || spin != 3 {
		t.Errorf("TotalSkipped = %d/%d, want 10/3", io, spin)
	}
	if tr.FuncName(0) != "f" || tr.FuncName(9) != "f9" {
		t.Errorf("FuncName lookup wrong: %q %q", tr.FuncName(0), tr.FuncName(9))
	}
}

// TestCompactCodecRoundTrip: the v2 delta-encoded format round-trips
// exactly and Decode auto-detects the version.
func TestCompactCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := EncodeCompact(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Logf("decode v2: %v", err)
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCompactCodecShrinksRealTraces: the v2 format must beat v1 on a trace
// with realistic (spatially local) addresses.
func TestCompactCodecShrinksRealTraces(t *testing.T) {
	tr := &Trace{
		Program: "walk",
		Funcs:   []FuncInfo{{Name: "f", Blocks: []BlockInfo{{NInstr: 4}}}},
	}
	th := &ThreadTrace{TID: 0}
	th.Records = append(th.Records, Record{Kind: KindCall, Callee: 0})
	base := uint64(0x40_0000_0000)
	for i := 0; i < 500; i++ {
		th.Records = append(th.Records, Record{
			Kind: KindBBL, Func: 0, Block: 0, N: 4,
			Mem: []MemAccess{{Instr: 1, Addr: base + uint64(8*i), Size: 8}},
		})
	}
	th.Records = append(th.Records, Record{Kind: KindRet})
	tr.Threads = []*ThreadTrace{th}

	var v1, v2 bytes.Buffer
	if err := Encode(&v1, tr); err != nil {
		t.Fatal(err)
	}
	if err := EncodeCompact(&v2, tr); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len()*3/4 {
		t.Errorf("v2 size %d not well below v1 size %d for an array walk", v2.Len(), v1.Len())
	}
	got, err := Decode(&v2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("compact round trip mismatch")
	}
}
