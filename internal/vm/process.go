// Package vm executes mini-ISA programs (internal/ir) one thread at a time,
// emitting the dynamic traces the ThreadFuser analyzer consumes. It is the
// reproduction's stand-in for the paper's Intel-PIN tracing tool: instead of
// instrumenting an x86 binary, it interprets the synthetic binary directly,
// producing the identical event stream (basic blocks, per-instruction memory
// accesses, call/return points, lock addresses, skipped-instruction counts).
//
// Threads are traced sequentially and to completion, which mirrors the
// paper's tracing assumptions: lock acquisitions never block during tracing
// (fine-grain locking is assumed; spinning is recorded as skipped
// instructions rather than traced), and each thread corresponds to one unit
// of SIMT work (one OpenMP iteration or pthread worker invocation).
package vm

import (
	"fmt"

	"threadfuser/internal/ir"
	"threadfuser/internal/trace"
)

// Reserved global slots (addresses relative to GlobalBase) used by the
// synthetic runtime's allocators. Two allocator models exist, matching the
// paper's discussion of synchronization in microservices (section V-B):
//
//   - an arena allocator ("high-throughput concurrent memory manager"):
//     NumArenas independent bump pointers, each guarded by its own lock, so
//     threads in a warp mostly allocate in parallel; and
//   - a glibc-style allocator: one shared bump pointer behind one shared
//     mutex, the serialization source the paper identifies in
//     HDSearch-Midtier's ProcessRequest/vector methods.
const (
	// NumArenas is the arena count of the concurrent allocator.
	NumArenas = 8
	// ArenaStateStride separates per-arena state records.
	ArenaStateStride = 32
	// ArenaStateBase is the address of arena 0's state: the bump pointer
	// at +0 and the arena lock word at +8.
	ArenaStateBase = GlobalBase + 0
	// GlibcNextAddr / GlibcLockAddr are the single-mutex allocator's bump
	// pointer and lock word. Setup-time AllocHeap shares this bump pointer.
	GlibcNextAddr = GlobalBase + 256
	GlibcLockAddr = GlobalBase + 264
	// ArenaSpan is the heap carved out per arena.
	ArenaSpan uint64 = 16 << 30
	// globalsStart is the first address handed out for setup-time globals.
	globalsStart = GlobalBase + 1024
)

// Process is one traced program instance: the program, its shared address
// space, and allocation state. All threads of the process share the memory.
type Process struct {
	Prog *ir.Program
	Mem  *Memory

	globalNext uint64

	// Stats accumulated across all threads.
	DivByZero uint64 // integer divisions by zero (defined to yield 0)
}

// NewProcess creates a process with an initialized address space: each
// allocator arena's bump pointer points at its heap span, and the
// glibc-style/setup-time bump pointer at the span past the arenas.
func NewProcess(prog *ir.Program) *Process {
	p := &Process{
		Prog:       prog,
		Mem:        NewMemory(),
		globalNext: globalsStart,
	}
	for i := uint64(0); i < NumArenas; i++ {
		p.Mem.Write(ArenaStateBase+i*ArenaStateStride, 8, HeapBase+i*ArenaSpan)
	}
	p.Mem.Write(GlibcNextAddr, 8, HeapBase+NumArenas*ArenaSpan)
	return p
}

// AllocGlobal reserves n bytes in the global segment (16-byte aligned) and
// returns the base address. Used by workload Setup functions for inputs that
// model static/global CPU data.
func (p *Process) AllocGlobal(n uint64) uint64 {
	addr := p.globalNext
	p.globalNext += (n + 15) &^ 15
	if p.globalNext >= HeapBase {
		panic(fmt.Sprintf("vm: global segment overflow (%d bytes requested)", n))
	}
	return addr
}

// AllocHeap reserves n bytes on the shared heap (16-byte aligned) via the
// same bump pointer the IR-level glibc-style malloc uses, so setup-time
// allocations and runtime allocations interleave realistically.
func (p *Process) AllocHeap(n uint64) uint64 {
	addr := p.Mem.Read(GlibcNextAddr, 8)
	next := addr + ((n + 15) &^ 15)
	if next >= StackBase {
		panic(fmt.Sprintf("vm: heap overflow (%d bytes requested)", n))
	}
	p.Mem.Write(GlibcNextAddr, 8, next)
	return addr
}

// WriteI64 stores a 64-bit integer at addr.
func (p *Process) WriteI64(addr uint64, v int64) { p.Mem.Write(addr, 8, uint64(v)) }

// ReadI64 loads a 64-bit integer from addr.
func (p *Process) ReadI64(addr uint64) int64 { return int64(p.Mem.Read(addr, 8)) }

// WriteF64 stores a float64 at addr.
func (p *Process) WriteF64(addr uint64, v float64) { p.Mem.Write(addr, 8, f2b(v)) }

// ReadF64 loads a float64 from addr.
func (p *Process) ReadF64(addr uint64) float64 { return b2f(p.Mem.Read(addr, 8)) }

// WriteI32 stores a 32-bit integer at addr.
func (p *Process) WriteI32(addr uint64, v int32) { p.Mem.Write(addr, 4, uint64(uint32(v))) }

// ReadI32 loads a sign-extended 32-bit integer from addr.
func (p *Process) ReadI32(addr uint64) int32 { return int32(p.Mem.Read(addr, 4)) }

// SymbolTable builds the trace symbol table (function names and static block
// instruction counts) for the process's program.
func SymbolTable(prog *ir.Program) []trace.FuncInfo {
	funcs := make([]trace.FuncInfo, len(prog.Funcs))
	for i, f := range prog.Funcs {
		fi := trace.FuncInfo{Name: f.Name, Blocks: make([]trace.BlockInfo, len(f.Blocks))}
		for j, b := range f.Blocks {
			fi.Blocks[j] = trace.BlockInfo{NInstr: uint32(b.NumInstrs())}
		}
		funcs[i] = fi
	}
	return funcs
}

// RunConfig bounds a traced thread.
type RunConfig struct {
	// MaxInstrs aborts the thread after this many traced instructions,
	// guarding against divergent synthetic workloads. Zero means the
	// default of 20M.
	MaxInstrs uint64
}

const defaultMaxInstrs = 20_000_000

// TraceAll traces nthreads executions of the program's entry function and
// assembles a complete trace. args, if non-nil, is called with each new
// thread before it runs so the caller can set initial registers.
func TraceAll(p *Process, nthreads int, cfg RunConfig, args func(tid int, th *Thread)) (*trace.Trace, error) {
	t := &trace.Trace{
		Program: p.Prog.Name,
		Entry:   uint32(p.Prog.Entry),
		Funcs:   SymbolTable(p.Prog),
	}
	for tid := 0; tid < nthreads; tid++ {
		th := p.NewThread(tid)
		if args != nil {
			args(tid, th)
		}
		tt, err := th.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("vm: thread %d: %w", tid, err)
		}
		t.Threads = append(t.Threads, tt)
	}
	return t, nil
}
