package workloads

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// Rodinia 3.1 workloads (Table I): BFS, Nearest Neighbors, Stream Cluster,
// b+tree, Particle Filter. These have OpenMP implementations identical to
// their CUDA twins, so they anchor the section-IV correlation study. Each
// thread models one OpenMP loop iteration, matching the paper's equal-work
// trace partitioning.

var wlRodiniaBFS = register(&Workload{
	Name:           "rodinia.bfs",
	Suite:          SuiteRodinia,
	Desc:           "frontier-based BFS step: early-exit on non-frontier nodes plus degree-divergent neighbour loops",
	DefaultThreads: 64,
	PaperThreads:   4096,
	HasGPUImpl:     true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		degree := cfg.scale(8)
		pb := ir.NewBuilder("rodinia.bfs")
		w := pb.NewFunc("worker")
		// Args: r0=offsets, r1=edges, r2=frontier mask, r3=visited, r4=cost.
		check := w.NewBlock("check")
		skip := w.NewBlock("skip")
		expand := w.NewBlock("expand")
		// Non-frontier threads return immediately (the paper's BFS
		// divergence source: most threads idle while frontier threads
		// expand).
		check.Mov(rg(5), idx8(2, int(ir.TID), 8, 0)).
			Cmp(rg(5), im(0)).
			Jcc(ir.CondEQ, skip, expand)
		skip.Ret()

		// Frontier thread: iterate neighbours [offsets[tid], offsets[tid+1]).
		expand.Mov(rg(6), idx8(0, int(ir.TID), 8, 0)). // start
								Mov(rg(7), idx8(0, int(ir.TID), 8, 8)) // end
		visit := w.NewBlock("visit")
		touch := w.NewBlock("touch")
		update := w.NewBlock("update")
		next := w.NewBlock("next")
		done := w.NewBlock("done")
		expand.Jmp(visit)
		// visit: if start >= end -> done; else examine edge.
		visit.Cmp(rg(6), rg(7)).Jcc(ir.CondGE, done, touch)
		touch.Mov(rg(8), idx8(1, 6, 8, 0)). // v = edges[start]
							Mov(rg(9), idx8(3, 8, 8, 0)). // visited[v]
							Cmp(rg(9), im(0)).
							Jcc(ir.CondNE, next, update)
		update.Mov(rg(5), idx8(4, int(ir.TID), 8, 0)). // my cost
								Add(rg(5), im(1)).
								Mov(idx8(4, 8, 8, 0), rg(5)). // cost[v] = cost+1
								Mov(idx8(3, 8, 8, 0), im(1)). // visited[v] = 1
								Jmp(next)
		next.Add(rg(6), im(1)).Jmp(visit)
		done.Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			g := randGraph(r, cfg.Threads, degree)
			offsets, edges := g.store(p)
			frontier := p.AllocGlobal(uint64(8 * cfg.Threads))
			visited := p.AllocGlobal(uint64(8 * cfg.Threads))
			cost := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < cfg.Threads; i++ {
				inFrontier := int64(0)
				if r.Intn(100) < 30 { // mid-BFS frontier occupancy
					inFrontier = 1
				}
				p.WriteI64(frontier+uint64(8*i), inFrontier)
				if r.Intn(100) < 40 {
					p.WriteI64(visited+uint64(8*i), 1)
				}
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(offsets))
				th.SetReg(ir.R(1), int64(edges))
				th.SetReg(ir.R(2), int64(frontier))
				th.SetReg(ir.R(3), int64(visited))
				th.SetReg(ir.R(4), int64(cost))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlRodiniaNN = register(&Workload{
	Name:           "rodinia.nn",
	Suite:          SuiteRodinia,
	Desc:           "nearest neighbors: one distance evaluation per record, fully convergent",
	DefaultThreads: 64,
	PaperThreads:   42 * 1024,
	HasGPUImpl:     true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("rodinia.nn")
		w := pb.NewFunc("worker")
		pre := w.NewBlock("pre")
		// Args: r0=records (lat,lng pairs), r1=out, r2..r3 target packed in
		// registers by setup. Distance over 4 coordinate pairs.
		pre.Mov(rg(4), tid()).
			Mul(rg(4), im(64)). // record stride: 8 f64 fields
			Add(rg(4), rg(0)).
			Mov(rg(9), im(0)) // acc bits = +0.0
		l := loopN(w, pre, "dims", 5, 0, im(4))
		l.Body.Mov(rg(6), idx8(4, 5, 8, 0)). // rec[k] (lat)
							FSub(rg(6), rg(2)).
							FMul(rg(6), rg(6)).
							Mov(rg(7), idx8(4, 5, 8, 32)). // rec[k+4] (lng)
							FSub(rg(7), rg(3)).
							FMul(rg(7), rg(7)).
							FAdd(rg(6), rg(7)).
							FAdd(rg(9), rg(6))
		l.Next(l.Body)
		l.Exit.FSqrt(rg(9)).
			Mov(idx8(1, int(ir.TID), 8, 0), rg(9)).
			Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			records := p.AllocGlobal(uint64(64 * cfg.Threads))
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < 8*cfg.Threads; i++ {
				p.WriteF64(records+uint64(8*i), r.Float64()*180-90)
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(records))
				th.SetReg(ir.R(1), int64(out))
				th.SetRegF(ir.R(2), 42.3601)
				th.SetRegF(ir.R(3), -71.0589)
			}, nil
		}
		return prog, setup, nil
	},
})

var wlRodiniaSC = register(&Workload{
	Name:           "rodinia.sc",
	Suite:          SuiteRodinia,
	Desc:           "stream cluster: per-point distance to k medians with conditional reassignment",
	DefaultThreads: 64,
	PaperThreads:   16 * 1024,
	HasGPUImpl:     true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		return buildClusterKernel("rodinia.sc", cfg, cfg.scale(8), 8)
	},
})

// buildClusterKernel is the shared streamcluster kernel: every thread owns
// one point and scans k candidate centers of the given dimensionality,
// conditionally updating its best assignment. rodinia.sc and
// parsec.streamcluster instantiate it at different operating points.
func buildClusterKernel(name string, cfg Config, k, dims int) (*ir.Program, SetupFn, error) {
	pb := ir.NewBuilder(name)
	w := pb.NewFunc("worker")
	pb.SetEntry(w)
	pre := w.NewBlock("pre")
	// Args: r0=points, r1=centers, r2=assign, r3=best (f64 out).
	pre.Mov(rg(4), tid()).
		Mul(rg(4), im(int64(8*dims))).
		Add(rg(4), rg(0)).               // r4 = &point
		Mov(rg(9), im(0)).               // best center
		Mov(rg(8), ir.Imm(int64(1)<<62)) // best dist (huge f64 bit pattern)
	centers := loopN(w, pre, "centers", 5, 0, im(int64(k)))
	centers.Body.Mov(rg(6), rg(5)).
		Mul(rg(6), im(int64(8*dims))).
		Add(rg(6), rg(1)). // r6 = &center
		Mov(rg(7), im(0))  // dist acc
	dl := loopN(w, centers.Body, "dims", 14, 0, im(int64(dims)))
	dl.Body.Mov(rg(15), idx8(4, 14, 8, 0)).
		FSub(rg(15), idx8(6, 14, 8, 0)).
		FMul(rg(15), rg(15)).
		FAdd(rg(7), rg(15))
	dl.Next(dl.Body)
	better := w.NewBlock("better")
	worse := w.NewBlock("worse")
	dl.Exit.FCmp(rg(7), rg(8)).Jcc(ir.CondLT, better, worse)
	better.Mov(rg(8), rg(7)).Mov(rg(9), rg(5)).Jmp(worse)
	tail := centers.Next(worse)
	tail.Mov(idx8(2, int(ir.TID), 8, 0), rg(9)).
		Mov(idx8(3, int(ir.TID), 8, 0), rg(8)).
		Ret()
	prog, err := pb.Build()
	if err != nil {
		return nil, nil, err
	}
	setup := func(p *vm.Process) (ArgFn, error) {
		r := cfg.rng()
		points := p.AllocGlobal(uint64(8 * dims * cfg.Threads))
		cents := p.AllocGlobal(uint64(8 * dims * k))
		assign := p.AllocGlobal(uint64(8 * cfg.Threads))
		best := p.AllocGlobal(uint64(8 * cfg.Threads))
		for i := 0; i < dims*cfg.Threads; i++ {
			p.WriteF64(points+uint64(8*i), r.Float64())
		}
		for i := 0; i < dims*k; i++ {
			p.WriteF64(cents+uint64(8*i), r.Float64())
		}
		return func(tid int, th *vm.Thread) {
			th.SetReg(ir.R(0), int64(points))
			th.SetReg(ir.R(1), int64(cents))
			th.SetReg(ir.R(2), int64(assign))
			th.SetReg(ir.R(3), int64(best))
		}, nil
	}
	return prog, setup, nil
}

var wlRodiniaBTree = register(&Workload{
	Name:           "rodinia.btree",
	Suite:          SuiteRodinia,
	Desc:           "b+tree point queries: per-level key scans with data-dependent trip counts",
	DefaultThreads: 64,
	PaperThreads:   4096,
	HasGPUImpl:     true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		const fanout = 8
		levels := cfg.scale(4)
		pb := ir.NewBuilder("rodinia.btree")
		w := pb.NewFunc("worker")
		// Node layout: fanout keys (8B each) then fanout child pointers.
		// Args: r0=root, r1=queries, r2=out.
		pre := w.NewBlock("pre")
		pre.Mov(rg(3), idx8(1, int(ir.TID), 8, 0)). // key = queries[tid]
								Mov(rg(4), rg(0)) // node = root
		lv := loopN(w, pre, "level", 5, 0, im(int64(levels)))
		// Scan keys within the node until key < node.key[i].
		scan := w.NewBlock("scan")
		scanNext := w.NewBlock("scan_next")
		advance := w.NewBlock("advance")
		descend := w.NewBlock("descend")
		ltail := w.NewBlock("ltail")
		lv.Body.Mov(rg(6), im(0)).Jmp(scan)
		scan.Cmp(rg(6), im(fanout-1)).Jcc(ir.CondGE, descend, scanNext)
		scanNext.Mov(rg(7), idx8(4, 6, 8, 0)). // node.key[i]
							Cmp(rg(3), rg(7)).
							Jcc(ir.CondLT, descend, advance)
		advance.Add(rg(6), im(1)).Jmp(scan)
		// child = node.child[i]
		descend.Mov(rg(4), idx8(4, 6, 8, 8*fanout)).Jmp(ltail)
		out := lv.Next(ltail)
		out.Mov(rg(8), mem8(4, 0)). // leaf payload
						Mov(idx8(2, int(ir.TID), 8, 0), rg(8)).
						Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			// Build a full tree of `levels` levels on the heap so pointer
			// chasing hits scattered allocator addresses.
			nodeSize := uint64(8 * (fanout * 2))
			var build func(level int) uint64
			build = func(level int) uint64 {
				n := p.AllocHeap(nodeSize)
				for i := 0; i < fanout; i++ {
					p.WriteI64(n+uint64(8*i), int64(r.Intn(1000)*(i+1)))
				}
				if level > 0 {
					for i := 0; i < fanout; i++ {
						// Share subtrees to keep the tree small; sharing
						// also creates the cross-thread access overlap a
						// cached b+tree shows.
						if i%2 == 0 || level == 1 {
							p.WriteI64(n+uint64(8*(fanout+i)), int64(build(level-1)))
						} else {
							p.WriteI64(n+uint64(8*(fanout+i)), p.ReadI64(n+uint64(8*(fanout+i-1))))
						}
					}
				}
				return n
			}
			root := build(levels)
			queries := p.AllocGlobal(uint64(8 * cfg.Threads))
			outArr := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(queries+uint64(8*i), int64(r.Intn(8000)))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(root))
				th.SetReg(ir.R(1), int64(queries))
				th.SetReg(ir.R(2), int64(outArr))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlRodiniaPF = register(&Workload{
	Name:           "rodinia.pf",
	Suite:          SuiteRodinia,
	Desc:           "particle filter: convergent likelihood kernel plus divergent CDF resampling walk",
	DefaultThreads: 64,
	PaperThreads:   4096,
	HasGPUImpl:     true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		obs := cfg.scale(12)
		pb := ir.NewBuilder("rodinia.pf")
		w := pb.NewFunc("worker")
		// Args: r0=obsArr, r1=cdf, r2=u, r3=out. n particles = threads.
		pre := w.NewBlock("pre")
		pre.Mov(rg(9), im(0)) // likelihood acc
		l := loopN(w, pre, "obs", 4, 0, im(int64(obs)))
		l.Body.Mov(rg(5), idx8(0, 4, 8, 0)).
			FMul(rg(5), rg(5)).
			FAdd(rg(9), rg(5))
		l.Next(l.Body)
		// Resampling: walk the CDF until cdf[j] >= u[tid].
		l.Exit.Mov(rg(6), idx8(2, int(ir.TID), 8, 0)). // u
								Mov(rg(7), im(0)) // j
		walk := w.NewBlock("walk")
		step := w.NewBlock("step")
		found := w.NewBlock("found")
		l.Exit.Jmp(walk)
		walk.Mov(rg(8), idx8(1, 7, 8, 0)). // cdf[j]
							FCmp(rg(8), rg(6)).
							Jcc(ir.CondGE, found, step)
		step.Add(rg(7), im(1)).Jmp(walk)
		found.Mov(idx8(3, int(ir.TID), 8, 0), rg(7)).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			n := cfg.Threads
			obsArr := p.AllocGlobal(uint64(8 * obs))
			cdf := p.AllocGlobal(uint64(8 * (n + 1)))
			u := p.AllocGlobal(uint64(8 * n))
			out := p.AllocGlobal(uint64(8 * n))
			for i := 0; i < obs; i++ {
				p.WriteF64(obsArr+uint64(8*i), r.NormFloat64())
			}
			// Uniform CDF over n particles; u[i] stratified like the real
			// systematic resampler, so walk lengths differ per thread.
			for i := 0; i <= n; i++ {
				p.WriteF64(cdf+uint64(8*i), float64(i)/float64(n))
			}
			for i := 0; i < n; i++ {
				p.WriteF64(u+uint64(8*i), r.Float64())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(obsArr))
				th.SetReg(ir.R(1), int64(cdf))
				th.SetReg(ir.R(2), int64(u))
				th.SetReg(ir.R(3), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})
