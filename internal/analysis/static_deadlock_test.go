package analysis_test

import (
	"strings"
	"testing"

	"threadfuser/internal/analysis"
	"threadfuser/internal/ir"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
	"threadfuser/internal/workloads"
)

// deadlockTrace runs a 3-thread program where thread t holds lock[t] while
// acquiring lock[(t+1)%3]: a three-lock order cycle no pairwise inversion
// check can see.
func deadlockTrace(t *testing.T) *trace.Trace {
	t.Helper()
	pb := ir.NewBuilder("dining")
	f := pb.NewFunc("philosopher")
	pre := f.NewBlock("pre")
	cs := f.NewBlock("cs")
	// r0 = lock table; r1 = own lock address; r3 = next thread's.
	pre.Mov(ir.Rg(ir.R(1)), ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8)).
		Mov(ir.Rg(ir.R(2)), ir.Rg(ir.TID)).
		Add(ir.Rg(ir.R(2)), ir.Imm(1)).
		Rem(ir.Rg(ir.R(2)), ir.Imm(3)).
		Mov(ir.Rg(ir.R(3)), ir.MemIdx(ir.R(0), ir.R(2), 8, 0, 8)).
		Jmp(cs)
	cs.Lock(ir.Rg(ir.R(1))).
		Lock(ir.Rg(ir.R(3))).
		Nop(2).
		Unlock(ir.Rg(ir.R(3))).
		Unlock(ir.Rg(ir.R(1))).
		Ret()
	prog := pb.MustBuild()

	p := vm.NewProcess(prog)
	table := p.AllocGlobal(8 * 3)
	words := p.AllocGlobal(8 * 3)
	for i := 0; i < 3; i++ {
		p.WriteI64(table+uint64(8*i), int64(words+uint64(8*i)))
	}
	tr, err := vm.TraceAll(p, 3, vm.RunConfig{}, func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(0), int64(table))
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDeadlockCycleIsDetected(t *testing.T) {
	rep, err := analysis.Run(deadlockTrace(t), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := countPass(rep, "deadlock", analysis.SevWarning); n != 1 {
		rep.Render(testWriter{t})
		t.Fatalf("want exactly 1 deadlock warning, got %d", n)
	}
	if !hasMessage(rep, "deadlock", "lock-order cycle over 3 lock(s)") {
		rep.Render(testWriter{t})
		t.Error("cycle finding does not name the 3-lock cycle")
	}
	// The pairwise inversion check in the locks pass must NOT fire: no two
	// locks are taken in both orders.
	if hasMessage(rep, "locks", "lock-order inversion") {
		t.Error("3-cycle misreported as a pairwise inversion")
	}
}

func TestDeadlockSilentOnCleanLocks(t *testing.T) {
	// leakedlock acquires locks but in a consistent order; no cycle.
	rep := lint(t, "leakedlock", analysis.Options{})
	if n := countPass(rep, "deadlock", analysis.SevInfo); n != 0 {
		rep.Render(testWriter{t})
		t.Errorf("deadlock pass fired on acyclic lock orders: %d finding(s)", n)
	}
}

// instanceFor builds a workload instance so tests can attach its program.
func instanceFor(t *testing.T, name string) (*workloads.Instance, *trace.Trace) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return inst, tr
}

func TestStaticPassSoundAndInformative(t *testing.T) {
	for _, name := range []string{"vectoradd", "seededrace"} {
		inst, tr := instanceFor(t, name)
		rep, err := analysis.Run(tr, analysis.Options{Prog: inst.Prog})
		if err != nil {
			t.Fatal(err)
		}
		// Soundness: the oracle must never have called a diverged branch
		// uniform on the built-in workloads.
		if n := countPass(rep, "static", analysis.SevError); n != 0 {
			rep.Render(testWriter{t})
			t.Fatalf("%s: static pass reported %d soundness error(s)", name, n)
		}
		if !hasMessage(rep, "static", "static oracle:") {
			rep.Render(testWriter{t})
			t.Errorf("%s: missing static summary finding", name)
		}
	}
}

func TestStaticPassSkippedWithoutProgram(t *testing.T) {
	_, tr := instanceFor(t, "vectoradd")
	// All-passes run: silently omitted.
	rep, err := analysis.Run(tr, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countPass(rep, "static", analysis.SevInfo) != 0 || len(rep.SkippedPasses) != 0 {
		t.Fatalf("static pass ran (or noisily skipped) without a program: %+v", rep.SkippedPasses)
	}
	// Explicitly requested: the skip is surfaced.
	rep, err = analysis.Run(tr, analysis.Options{Passes: []string{"static"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range rep.SkippedPasses {
		if strings.Contains(s, "static") {
			found = true
		}
	}
	if !found {
		t.Fatalf("explicit static selection without a program not surfaced: %+v", rep.SkippedPasses)
	}
}

func TestStaticPassRejectsMismatchedProgram(t *testing.T) {
	_, tr := instanceFor(t, "vectoradd")
	other, _ := instanceFor(t, "seededrace")
	rep, err := analysis.Run(tr, analysis.Options{Prog: other.Prog, Passes: []string{"static"}})
	if err != nil {
		t.Fatal(err)
	}
	if !hasMessage(rep, "static", "does not match the trace symbol table") {
		rep.Render(testWriter{t})
		t.Fatal("mismatched program accepted for static comparison")
	}
}
