package analysis_test

import (
	"bytes"
	"testing"

	"threadfuser/internal/analysis"
	"threadfuser/internal/ir"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
	"threadfuser/internal/workloads"
)

// runProg traces a small program with nthreads threads; r0 gets base in
// every thread.
func runProg(t *testing.T, prog *ir.Program, nthreads int, global int, setup func(p *vm.Process, base uint64)) *trace.Trace {
	t.Helper()
	p := vm.NewProcess(prog)
	var base uint64
	if global > 0 {
		base = p.AllocGlobal(uint64(global))
	}
	if setup != nil {
		setup(p, base)
	}
	tr, err := vm.TraceAll(p, nthreads, vm.RunConfig{}, func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(0), int64(base))
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestDynamicLockOrderTable drives DynamicLockOrder (and through it the
// deadlock pass) over the tricky shapes: recursive acquires, releases of
// never-acquired locks, and cycles longer than two.
func TestDynamicLockOrderTable(t *testing.T) {
	cases := []struct {
		name       string
		build      func(t *testing.T) *trace.Trace
		edges      int   // site-attributed edge count
		cycles     int   // deadlock certificates
		cycleLocks []int // Addrs length per cycle
	}{
		{
			// lock A; lock A (recursive); lock B; unwind. The re-acquire
			// deepens the hold without an A->A edge; the single A->B edge is
			// attributed to the depth-1 acquire site.
			name: "recursive acquire adds no edge",
			build: func(t *testing.T) *trace.Trace {
				pb := ir.NewBuilder("rec")
				f := pb.NewFunc("main")
				pb.SetEntry(f)
				b := f.NewBlock("entry")
				b.Lock(ir.Imm(0x100)).Lock(ir.Imm(0x100)).Lock(ir.Imm(0x108)).
					Unlock(ir.Imm(0x108)).Unlock(ir.Imm(0x100)).Unlock(ir.Imm(0x100)).
					Ret()
				return runProg(t, pb.MustBuild(), 2, 0, nil)
			},
			edges: 1,
		},
		{
			// The stray release must not corrupt the held set or invent
			// edges: only A->B remains.
			name: "release without acquire is inert",
			build: func(t *testing.T) *trace.Trace {
				pb := ir.NewBuilder("bare")
				f := pb.NewFunc("main")
				pb.SetEntry(f)
				b := f.NewBlock("entry")
				b.Unlock(ir.Imm(0x200)).
					Lock(ir.Imm(0x100)).Lock(ir.Imm(0x108)).
					Unlock(ir.Imm(0x108)).Unlock(ir.Imm(0x100)).
					Ret()
				return runProg(t, pb.MustBuild(), 2, 0, nil)
			},
			edges: 1,
		},
		{
			// Thread t holds lock[t] while acquiring lock[(t+1)%4]: one
			// 4-lock cycle, no pairwise inversion.
			name: "cycle of length four",
			build: func(t *testing.T) *trace.Trace {
				pb := ir.NewBuilder("ring4")
				f := pb.NewFunc("main")
				pb.SetEntry(f)
				b := f.NewBlock("entry")
				b.Mov(ir.Rg(ir.R(2)), ir.Rg(ir.TID)).
					Add(ir.Rg(ir.R(2)), ir.Imm(1)).
					Rem(ir.Rg(ir.R(2)), ir.Imm(4)).
					Lea(ir.R(1), ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8)).
					Lea(ir.R(3), ir.MemIdx(ir.R(0), ir.R(2), 8, 0, 8)).
					Lock(ir.Rg(ir.R(1))).Lock(ir.Rg(ir.R(3))).
					Unlock(ir.Rg(ir.R(3))).Unlock(ir.Rg(ir.R(1))).
					Ret()
				return runProg(t, pb.MustBuild(), 4, 8*4, nil)
			},
			edges:      4,
			cycles:     1,
			cycleLocks: []int{4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.build(t)
			lo := analysis.DynamicLockOrder(tr)
			if len(lo.Edges) != tc.edges {
				t.Fatalf("edges = %d (%+v), want %d", len(lo.Edges), lo.Edges, tc.edges)
			}
			if len(lo.Cycles) != tc.cycles {
				t.Fatalf("cycles = %d (%+v), want %d", len(lo.Cycles), lo.Cycles, tc.cycles)
			}
			for i, want := range tc.cycleLocks {
				if got := len(lo.Cycles[i].Addrs); got != want {
					t.Errorf("cycle %d spans %d lock(s), want %d", i, got, want)
				}
			}
			// The deadlock pass must agree with the raw graph.
			rep, err := analysis.Run(tr, analysis.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if n := countPass(rep, "deadlock", analysis.SevWarning); n != tc.cycles {
				rep.Render(testWriter{t})
				t.Errorf("deadlock warnings = %d, want %d", n, tc.cycles)
			}
		})
	}
}

// TestLockEdgeSiteAttribution pins the FromSite of a recursive hold to the
// depth-1 acquire, not the re-acquire.
func TestLockEdgeSiteAttribution(t *testing.T) {
	pb := ir.NewBuilder("attr")
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	b := f.NewBlock("entry")
	b.Lock(ir.Imm(0x100)). // i0: depth-1 acquire — the witness
				Lock(ir.Imm(0x100)). // i1: recursive
				Lock(ir.Imm(0x108)). // i2: draws the edge
				Unlock(ir.Imm(0x108)).Unlock(ir.Imm(0x100)).Unlock(ir.Imm(0x100)).
				Ret()
	lo := analysis.DynamicLockOrder(runProg(t, pb.MustBuild(), 1, 0, nil))
	if len(lo.Edges) != 1 {
		t.Fatalf("edges = %+v, want 1", lo.Edges)
	}
	e := lo.Edges[0]
	if e.FromSite.Instr != 0 || e.ToSite.Instr != 2 {
		t.Fatalf("edge sites = i%d -> i%d, want i0 -> i2", e.FromSite.Instr, e.ToSite.Instr)
	}
}

// TestLocksetShadowTransitions exercises the Eraser shadow state machine
// through the lockset pass: Exclusive and read-Shared stay silent,
// SharedMod reports only on an empty candidate lockset, and each racy word
// is reported exactly once.
func TestLocksetShadowTransitions(t *testing.T) {
	// Layout at r0: +0 read-shared word, +8 lock word, +16 locked counter,
	// +24 racy word (written by every thread, no lock).
	build := func(locked bool) *ir.Program {
		pb := ir.NewBuilder("shadow")
		f := pb.NewFunc("main")
		pb.SetEntry(f)
		b := f.NewBlock("entry")
		b.Mov(ir.Rg(ir.R(1)), ir.Mem(ir.R(0), 0, 8)) // Exclusive -> Shared
		if locked {
			b.Lock(ir.Mem(ir.R(0), 8, 8))
			b.Add(ir.Mem(ir.R(0), 16, 8), ir.Imm(1)) // SharedMod, lockset {+8}
			b.Unlock(ir.Mem(ir.R(0), 8, 8))
		} else {
			b.Add(ir.Mem(ir.R(0), 16, 8), ir.Imm(1)) // SharedMod, empty lockset
		}
		b.Mov(ir.Mem(ir.R(0), 24, 8), ir.Rg(ir.TID)). // always racy
								Mov(ir.Mem(ir.R(0), 24, 8), ir.Rg(ir.TID)). // second racy access: same finding
								Ret()
		return pb.MustBuild()
	}

	rep, err := analysis.Run(runProg(t, build(true), 4, 32, nil), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := countPass(rep, "lockset", analysis.SevWarning); n != 1 {
		rep.Render(testWriter{t})
		t.Fatalf("locked variant: %d lockset warning(s), want 1 (only the +24 word)", n)
	}

	rep, err = analysis.Run(runProg(t, build(false), 4, 32, nil), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := countPass(rep, "lockset", analysis.SevWarning); n != 2 {
		rep.Render(testWriter{t})
		t.Fatalf("unlocked variant: %d lockset warning(s), want 2 (+16 and +24, deduped per word)", n)
	}
}

// TestDynamicRaceAccessesSites checks the site projection the static
// cross-check consumes: racy words list every accessing site with its
// store/unlocked verdicts.
func TestDynamicRaceAccessesSites(t *testing.T) {
	pb := ir.NewBuilder("sites")
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	b := f.NewBlock("entry")
	b.Mov(ir.Mem(ir.R(0), 0, 8), ir.Rg(ir.TID)). // i0 store, unlocked
							Mov(ir.Rg(ir.R(1)), ir.Mem(ir.R(0), 0, 8)). // i1 load, unlocked
							Ret()
	racy := analysis.DynamicRaceAccesses(runProg(t, pb.MustBuild(), 4, 8, nil))
	if len(racy) != 1 {
		t.Fatalf("racy addrs = %+v, want 1", racy)
	}
	accs := racy[0].Accesses
	if len(accs) != 2 {
		t.Fatalf("accesses = %+v, want 2 sites", accs)
	}
	if !accs[0].Store || accs[0].Instr != 0 || !accs[0].Unlocked {
		t.Errorf("site 0 = %+v, want unlocked store at i0", accs[0])
	}
	if accs[1].Store || accs[1].Instr != 1 || !accs[1].Unlocked {
		t.Errorf("site 1 = %+v, want unlocked load at i1", accs[1])
	}
}

// TestStaticLockSoundOnAllWorkloads is the golden agreement test: on every
// built-in workload the static concurrency oracle must cover every dynamic
// lockset race and lock-order cycle — zero soundness errors — and the
// report must be byte-deterministic across repeated runs.
func TestStaticLockSoundOnAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		inst, err := w.Instantiate(workloads.Config{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		tr, err := inst.Trace()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		var prev []byte
		for round := 0; round < 2; round++ {
			rep, err := analysis.Run(tr, analysis.Options{Prog: inst.Prog, Passes: []string{"staticlock"}})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if n := countPass(rep, "staticlock", analysis.SevError); n != 0 {
				rep.Render(testWriter{t})
				t.Fatalf("%s: static concurrency oracle reported %d soundness error(s)", w.Name, n)
			}
			if !hasMessage(rep, "staticlock", "static concurrency oracle:") {
				t.Fatalf("%s: missing staticlock summary finding", w.Name)
			}
			var buf bytes.Buffer
			rep.Render(&buf)
			if round > 0 && !bytes.Equal(prev, buf.Bytes()) {
				t.Fatalf("%s: staticlock findings not byte-deterministic", w.Name)
			}
			prev = buf.Bytes()
		}
	}
}

// TestStaticLockPassRejectsMismatchedProgram mirrors the static pass guard.
func TestStaticLockPassRejectsMismatchedProgram(t *testing.T) {
	_, tr := instanceFor(t, "vectoradd")
	other, _ := instanceFor(t, "seededrace")
	rep, err := analysis.Run(tr, analysis.Options{Prog: other.Prog, Passes: []string{"staticlock"}})
	if err != nil {
		t.Fatal(err)
	}
	if !hasMessage(rep, "staticlock", "does not match the trace symbol table") {
		rep.Render(testWriter{t})
		t.Fatal("mismatched program accepted for staticlock comparison")
	}
}
