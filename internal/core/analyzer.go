// Package core implements the ThreadFuser analyzer, the paper's primary
// contribution (section III, figure 3b): it parses a MIMD program trace,
// builds per-function dynamic control flow graphs, runs immediate
// post-dominator analysis, batches threads into warps, and replays the
// traces under SIMT-stack semantics to project what lockstep execution would
// do to the program — SIMT efficiency (equation 1), per-function efficiency,
// memory divergence after 32-byte coalescing, synchronization serialization,
// and the traced/skipped instruction split.
package core

import (
	"context"
	"fmt"
	"sort"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/simt"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
)

// Options configure an analysis. The zero value is not valid; use Defaults.
type Options struct {
	// WarpSize is the modelled SIMD width. The paper's default is 32.
	WarpSize int
	// Formation selects the thread-batching algorithm.
	Formation warp.Formation
	// EmulateLocks serializes contended intra-warp critical sections
	// (paper figure 9). The paper's headline efficiency numbers assume
	// fine-grain locking with no intra-warp serialization, so the default
	// leaves this off; the figure-9 experiment turns it on.
	EmulateLocks bool
	// LockReconvergence selects the serialized-section reconvergence
	// policy (the study the paper defers to future work). Default: the
	// paper's release-point policy.
	LockReconvergence simt.LockReconvergence
	// Listener, if set, observes lockstep block executions (used by the
	// warp-trace generator). A listener forces serial replay so callbacks
	// arrive in warp order.
	Listener simt.Listener
	// Parallelism bounds the replay worker pool. 0 means one worker per
	// core (runtime.GOMAXPROCS); 1 forces serial replay. Parallel and
	// serial replay produce bit-identical Reports.
	Parallelism int
	// Context, if non-nil, cancels an in-progress analysis: the replay loop
	// polls it and aborts with an error wrapping the context's error. The
	// analysis service uses this to thread request timeouts and client
	// disconnects down into replay. Like Parallelism, Context is excluded
	// from cache keys — it can stop an analysis, never change its result.
	Context context.Context

	// UniformBranches, when non-nil, is the static oracle's uniform-region
	// table (staticsimt.UniformBlocks) for the traced program, passed down to
	// replay's lockstep-fusion fast path to shape fused-window proposals.
	// Purely a performance hint — replay verifies every fused window against
	// every active lane — so, like Parallelism, it is excluded from cache
	// keys.
	UniformBranches [][]bool

	// DisableLockstepFusion forces the per-block replay engine. It is the
	// A/B verification hook: the equivalence suite and tfcheck's "fusion"
	// invariant analyze every workload both ways and assert identical
	// Reports, which is also why the knob is excluded from cache keys.
	DisableLockstepFusion bool
}

// Defaults returns the paper's default configuration: warp size 32,
// round-robin batching, fine-grain-locking assumption (no intra-warp lock
// serialization).
func Defaults() Options {
	return Options{WarpSize: 32, Formation: warp.RoundRobin}
}

// BranchReport is one row of the per-branch divergence breakdown: the exact
// basic blocks whose terminators split warps, ranked by idled lanes. It
// extends the paper's per-function localization (figure 7) down to the
// branch granularity a fix is actually applied at.
type BranchReport struct {
	Func        string
	Block       uint32
	Divergences uint64
	// AvgPaths is the mean number of distinct successor groups per split.
	AvgPaths float64
	// LanesOff totals the lanes idled by this branch's splits.
	LanesOff uint64
	// RegionLockstep / RegionThreadInstrs total the warp instructions issued
	// while the warp was split by this branch and the thread instructions
	// those issues retired; LostSlots is their gap in issue slots
	// (RegionLockstep×WarpSize − RegionThreadInstrs), the quantity the
	// divergence lint ranks regions by.
	RegionLockstep     uint64
	RegionThreadInstrs uint64
	LostSlots          uint64
}

// MemSiteReport is one executed memory instruction's observed coalescing
// profile: which static site it is (both the function name, for display, and
// the raw ids the static memory oracle keys by) and the per-site histogram
// replay aggregated over every warp-level execution.
type MemSiteReport struct {
	Func   string
	FuncID uint32
	Block  uint32
	Instr  uint16
	// Execs counts warp-level executions that accessed memory here.
	Execs uint64
	// StackTx / HeapTx total the 32-byte transactions by segment;
	// MaxStackTx / MaxHeapTx / MaxTx record the worst single execution.
	StackTx    uint64
	HeapTx     uint64
	MaxStackTx uint64
	MaxHeapTx  uint64
	MaxTx      uint64
	// Hist buckets executions by total transactions:
	// 1, 2, 3, 4, 5-8, 9-16, 17-32, 33+.
	Hist [8]uint64
}

// FuncReport is one row of the per-function breakdown (paper figure 7).
type FuncReport struct {
	Name string
	// Efficiency is the function's own SIMT efficiency, excluding callees.
	Efficiency float64
	// InstrShare is the function's fraction of all executed thread
	// instructions (again excluding callees).
	InstrShare float64
	// ThreadInstrs / Lockstep are the raw equation-1 counts.
	ThreadInstrs uint64
	Lockstep     uint64
	// Invocations counts warp-level entries into the function.
	Invocations uint64
	// HeapTxPerInstr is the function's own memory divergence (figure 10
	// at function granularity).
	HeapTxPerInstr float64
	// LockSerializations / SerializedLanes attribute intra-warp
	// critical-section serialization (EmulateLocks runs only) to the
	// function whose block performed the contended acquire.
	LockSerializations uint64
	SerializedLanes    uint64
}

// Report is the analyzer's output for one trace at one configuration.
type Report struct {
	Program  string
	WarpSize int
	Threads  int
	Warps    int

	// Efficiency is the program SIMT efficiency: the mean of per-warp
	// equation-1 efficiencies.
	Efficiency float64
	// WeightedEfficiency weights warps by instruction count.
	WeightedEfficiency float64

	// TotalInstrs is the traced dynamic instruction count over all threads;
	// LockstepInstrs the warp instructions the SIMT machine would issue.
	TotalInstrs    uint64
	LockstepInstrs uint64

	// Memory divergence: average 32-byte transactions per warp-level
	// memory instruction, split by segment (paper figures 5b and 10).
	HeapTxPerInstr  float64
	StackTxPerInstr float64
	HeapTx          uint64
	StackTx         uint64
	MemInstrs       uint64

	// Synchronization.
	LockSerializations uint64
	SerializedLanes    uint64

	// Traced/skipped split (paper figure 8).
	SkippedIO     uint64
	SkippedSpin   uint64
	TracedPercent float64

	// PerFunction is sorted by descending instruction share.
	PerFunction []FuncReport

	// PerWarpEfficiency lists each warp's equation-1 efficiency.
	PerWarpEfficiency []float64

	// LaneHistogram[k] counts warp instructions issued with exactly k
	// active lanes (k ≤ WarpSize). The distribution separates "uniformly
	// half-full warps" from "full warps plus serialized tails", which
	// equation 1 alone cannot.
	LaneHistogram []uint64

	// Branches lists divergence sites sorted by idled lanes.
	Branches []BranchReport

	// MemSites lists every executed memory instruction's observed coalescing
	// profile, in program order (function id, block, instruction) — the
	// dynamic half of the static-vs-dynamic memory cross-check.
	MemSites []MemSiteReport

	// funcIndex maps function names to PerFunction rows for O(1) lookup.
	// It is rebuilt lazily when absent (e.g. after JSON decoding).
	funcIndex map[string]int
}

// prep holds the trace-derived analysis products that depend only on the
// trace itself (not on warp size, formation, or lock options): the
// per-function dynamic CFGs and their post-dominator trees. Both are
// read-only after construction and safe to share across goroutines.
type prep struct {
	graphs map[uint32]*cfg.DCFG
	pdoms  map[uint32]*ipdom.PostDom
}

// prepare validates a trace and builds its DCFGs and IPDOM trees.
func prepare(t *trace.Trace) (*prep, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid trace: %w", err)
	}
	graphs, err := cfg.Build(t)
	if err != nil {
		return nil, fmt.Errorf("core: building DCFG: %w", err)
	}
	// Build (and cache on the trace) the packed SoA columns replay's fused
	// fast path walks, so repeated analyses of one trace — warp-size sweeps,
	// formation studies — pay the one streaming pass once instead of per
	// replay.
	t.EnsureCols()
	return &prep{graphs: graphs, pdoms: ipdom.ComputeAll(graphs)}, nil
}

// testHookReplay, when non-nil, is called every time a replay actually runs.
// Cache tests use it to prove a hit skips replay entirely.
var testHookReplay func()

// analyzeWith replays a prepared trace under one configuration.
func analyzeWith(t *trace.Trace, p *prep, warps []warp.Warp, opts Options) (*Report, error) {
	if testHookReplay != nil {
		testHookReplay()
	}
	res, err := simt.Replay(t, p.graphs, p.pdoms, warps, simt.Options{
		WarpSize:              opts.WarpSize,
		EmulateLocks:          opts.EmulateLocks,
		LockReconvergence:     opts.LockReconvergence,
		Listener:              opts.Listener,
		Parallelism:           opts.Parallelism,
		Context:               opts.Context,
		UniformBranches:       opts.UniformBranches,
		DisableLockstepFusion: opts.DisableLockstepFusion,
	})
	if err != nil {
		return nil, fmt.Errorf("core: replay: %w", err)
	}
	return buildReport(t, res, len(warps)), nil
}

// Analyze runs the full analyzer pipeline on a trace.
func Analyze(t *trace.Trace, opts Options) (*Report, error) {
	if opts.WarpSize == 0 {
		return nil, fmt.Errorf("core: WarpSize must be set (use core.Defaults)")
	}
	if opts.Context != nil && opts.Context.Err() != nil {
		return nil, fmt.Errorf("core: analysis canceled: %w", opts.Context.Err())
	}
	p, err := prepare(t)
	if err != nil {
		return nil, err
	}
	warps, err := warp.Form(t, opts.WarpSize, opts.Formation)
	if err != nil {
		return nil, fmt.Errorf("core: forming warps: %w", err)
	}
	return analyzeWith(t, p, warps, opts)
}

func buildReport(t *trace.Trace, res *simt.Result, nwarps int) *Report {
	total := res.Total()
	r := &Report{
		Program:            t.Program,
		WarpSize:           res.WarpSize,
		Threads:            len(t.Threads),
		Warps:              nwarps,
		Efficiency:         res.Efficiency(),
		WeightedEfficiency: res.WeightedEfficiency(),
		TotalInstrs:        total.ThreadInstrs,
		LockstepInstrs:     total.Lockstep,
		HeapTxPerInstr:     res.HeapTxPerMemInstr(),
		StackTxPerInstr:    res.StackTxPerMemInstr(),
		HeapTx:             total.HeapTx,
		StackTx:            total.StackTx,
		MemInstrs:          total.MemInstrs,
		LockSerializations: total.LockSerializations,
		SerializedLanes:    total.SerializedLanes,
		SkippedIO:          res.SkippedIO,
		SkippedSpin:        res.SkippedSpin,
		TracedPercent:      res.TracedFraction() * 100,
	}
	r.PerWarpEfficiency = make([]float64, len(res.Warps))
	for i := range res.Warps {
		r.PerWarpEfficiency[i] = res.Warps[i].Efficiency(res.WarpSize)
	}
	r.LaneHistogram = make([]uint64, res.WarpSize+1)
	copy(r.LaneHistogram, total.LaneHistogram[:res.WarpSize+1])
	r.PerFunction = make([]FuncReport, 0, len(res.Funcs))
	r.Branches = make([]BranchReport, 0, len(res.Branches))
	for fn, fm := range res.Funcs {
		fr := FuncReport{
			Name:           t.FuncName(fn),
			Efficiency:     fm.Efficiency(res.WarpSize),
			ThreadInstrs:   fm.ThreadInstrs,
			Lockstep:       fm.Lockstep,
			Invocations:    fm.Invocations,
			HeapTxPerInstr: fm.HeapTxPerMemInstr(),

			LockSerializations: fm.LockSerializations,
			SerializedLanes:    fm.SerializedLanes,
		}
		if total.ThreadInstrs > 0 {
			fr.InstrShare = float64(fm.ThreadInstrs) / float64(total.ThreadInstrs)
		}
		r.PerFunction = append(r.PerFunction, fr)
	}
	for key, bs := range res.Branches {
		br := BranchReport{
			Func:        t.FuncName(key.Func),
			Block:       key.Block,
			Divergences: bs.Divergences,
			LanesOff:    bs.LanesOff,

			RegionLockstep:     bs.RegionLockstep,
			RegionThreadInstrs: bs.RegionThreadInstrs,
			LostSlots:          bs.LostSlots(res.WarpSize),
		}
		if bs.Divergences > 0 {
			br.AvgPaths = float64(bs.Paths) / float64(bs.Divergences)
		}
		r.Branches = append(r.Branches, br)
	}
	r.MemSites = make([]MemSiteReport, 0, len(res.MemSites))
	for key, ms := range res.MemSites {
		r.MemSites = append(r.MemSites, MemSiteReport{
			Func:   t.FuncName(key.Func),
			FuncID: key.Func,
			Block:  key.Block,
			Instr:  key.Instr,
			Execs:  ms.Execs,

			StackTx:    ms.StackTx,
			HeapTx:     ms.HeapTx,
			MaxStackTx: ms.MaxStackTx,
			MaxHeapTx:  ms.MaxHeapTx,
			MaxTx:      ms.MaxTx,
			Hist:       ms.Hist,
		})
	}
	sort.Slice(r.MemSites, func(i, j int) bool {
		a, b := &r.MemSites[i], &r.MemSites[j]
		if a.FuncID != b.FuncID {
			return a.FuncID < b.FuncID
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Instr < b.Instr
	})
	sort.Slice(r.Branches, func(i, j int) bool {
		if r.Branches[i].LanesOff != r.Branches[j].LanesOff {
			return r.Branches[i].LanesOff > r.Branches[j].LanesOff
		}
		if r.Branches[i].Func != r.Branches[j].Func {
			return r.Branches[i].Func < r.Branches[j].Func
		}
		return r.Branches[i].Block < r.Branches[j].Block
	})
	sort.Slice(r.PerFunction, func(i, j int) bool {
		if r.PerFunction[i].InstrShare != r.PerFunction[j].InstrShare {
			return r.PerFunction[i].InstrShare > r.PerFunction[j].InstrShare
		}
		return r.PerFunction[i].Name < r.PerFunction[j].Name
	})
	r.funcIndex = buildFuncIndex(r.PerFunction)
	return r
}

func buildFuncIndex(rows []FuncReport) map[string]int {
	idx := make(map[string]int, len(rows))
	for i := range rows {
		if _, dup := idx[rows[i].Name]; !dup {
			idx[rows[i].Name] = i
		}
	}
	return idx
}

// Function returns the named function's report row, if present, in O(1) via
// a name index built when the report was constructed (and rebuilt on first
// use for reports that arrived without one, e.g. decoded from JSON).
func (r *Report) Function(name string) (FuncReport, bool) {
	if r.funcIndex == nil {
		r.funcIndex = buildFuncIndex(r.PerFunction)
	}
	if i, ok := r.funcIndex[name]; ok && i < len(r.PerFunction) {
		return r.PerFunction[i], true
	}
	return FuncReport{}, false
}
