package core

import (
	"math"
	"testing"

	"threadfuser/internal/ir"
	"threadfuser/internal/irgen"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
	"threadfuser/internal/warp"
)

// buildFig2 reproduces the paper's figure-2 example: a function whose
// control splits at BBL1 into BBL2 (thread 0) and BBL3 (thread 1) and
// reconverges at BBL4, the immediate post-dominator.
func buildFig2(t *testing.T, padding int) *ir.Program {
	t.Helper()
	pb := ir.NewBuilder("fig2")
	f := pb.NewFunc("worker")
	bbl1 := f.NewBlock("BBL1")
	bbl2 := f.NewBlock("BBL2")
	bbl3 := f.NewBlock("BBL3")
	bbl4 := f.NewBlock("BBL4")

	bbl1.Nop(padding).Cmp(ir.Rg(ir.TID), ir.Imm(1)).Jcc(ir.CondEQ, bbl3, bbl2)
	bbl2.Nop(padding + 1).Jmp(bbl4)
	bbl3.Nop(padding + 1).Jmp(bbl4)
	bbl4.Nop(padding + 1).Ret()
	return pb.MustBuild()
}

func analyzeProgram(t *testing.T, prog *ir.Program, threads int, opts Options) *Report {
	t.Helper()
	p := vm.NewProcess(prog)
	tr, err := vm.TraceAll(p, threads, vm.RunConfig{}, nil)
	if err != nil {
		t.Fatalf("tracing: %v", err)
	}
	rep, err := Analyze(tr, opts)
	if err != nil {
		t.Fatalf("analyzing: %v", err)
	}
	return rep
}

func TestSIMTStackPaperExample(t *testing.T) {
	// With equal block sizes k: threads execute 3k instructions each (6k
	// total), the warp issues 4k lockstep instructions (BBL2 and BBL3
	// serialize), so equation 1 gives 6k / (4k*2) = 0.75.
	prog := buildFig2(t, 2) // every block has 4 instructions
	opts := Defaults()
	opts.WarpSize = 2
	rep := analyzeProgram(t, prog, 2, opts)

	if rep.Threads != 2 || rep.Warps != 1 {
		t.Fatalf("got %d threads in %d warps, want 2 in 1", rep.Threads, rep.Warps)
	}
	if rep.TotalInstrs != 24 {
		t.Errorf("TotalInstrs = %d, want 24 (2 threads x 3 blocks x 4 instrs)", rep.TotalInstrs)
	}
	if rep.LockstepInstrs != 16 {
		t.Errorf("LockstepInstrs = %d, want 16 (4 blocks x 4 instrs)", rep.LockstepInstrs)
	}
	if want := 0.75; math.Abs(rep.Efficiency-want) > 1e-9 {
		t.Errorf("Efficiency = %v, want %v", rep.Efficiency, want)
	}
}

func TestConvergentProgramIsFullyEfficient(t *testing.T) {
	// All threads take the same path: efficiency must be exactly 1 for a
	// full warp.
	pb := ir.NewBuilder("conv")
	f := pb.NewFunc("worker")
	b0 := f.NewBlock("b0")
	b1 := f.NewBlock("b1")
	b0.Mov(ir.Rg(ir.R(0)), ir.Imm(7)).Add(ir.Rg(ir.R(0)), ir.Rg(ir.TID)).Jmp(b1)
	b1.Nop(3).Ret()
	prog := pb.MustBuild()

	opts := Defaults()
	opts.WarpSize = 8
	rep := analyzeProgram(t, prog, 16, opts)
	if rep.Warps != 2 {
		t.Fatalf("Warps = %d, want 2", rep.Warps)
	}
	if math.Abs(rep.Efficiency-1.0) > 1e-12 {
		t.Errorf("Efficiency = %v, want exactly 1", rep.Efficiency)
	}
}

func TestPartialWarpEfficiency(t *testing.T) {
	// 4 convergent threads in a warp of 8: equation 1 charges the idle
	// lanes, giving exactly 0.5.
	pb := ir.NewBuilder("partial")
	f := pb.NewFunc("worker")
	b := f.NewBlock("b")
	b.Nop(9).Ret()
	prog := pb.MustBuild()

	opts := Defaults()
	opts.WarpSize = 8
	rep := analyzeProgram(t, prog, 4, opts)
	if math.Abs(rep.Efficiency-0.5) > 1e-12 {
		t.Errorf("Efficiency = %v, want 0.5", rep.Efficiency)
	}
}

func TestLoopTripCountDivergence(t *testing.T) {
	// Thread i iterates i+1 times. In a warp of 4, lockstep iterations =
	// max trip count = 4, thread iterations = 1+2+3+4 = 10.
	pb := ir.NewBuilder("loop")
	f := pb.NewFunc("worker")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	// r0 = tid+1 (trip count), r1 = 0
	head.Mov(ir.Rg(ir.R(0)), ir.Rg(ir.TID)).
		Add(ir.Rg(ir.R(0)), ir.Imm(1)).
		Mov(ir.Rg(ir.R(1)), ir.Imm(0)).
		Jmp(body)
	body.Add(ir.Rg(ir.R(1)), ir.Imm(1)).
		Nop(5).
		Cmp(ir.Rg(ir.R(1)), ir.Rg(ir.R(0))).
		Jcc(ir.CondLT, body, exit)
	exit.Nop(1).Ret()
	prog := pb.MustBuild()

	opts := Defaults()
	opts.WarpSize = 4
	rep := analyzeProgram(t, prog, 4, opts)

	// head: 4 instrs lockstep, 16 thread. body (8 instrs): lockstep 4
	// iterations = 32, thread = 10*8 = 80. exit: 2 lockstep, 8 thread.
	if rep.LockstepInstrs != 4+32+2 {
		t.Errorf("LockstepInstrs = %d, want 38", rep.LockstepInstrs)
	}
	if rep.TotalInstrs != 16+80+8 {
		t.Errorf("TotalInstrs = %d, want 104", rep.TotalInstrs)
	}
	want := 104.0 / (38.0 * 4.0)
	if math.Abs(rep.Efficiency-want) > 1e-9 {
		t.Errorf("Efficiency = %v, want %v", rep.Efficiency, want)
	}
}

func TestPerFunctionExcludesCallees(t *testing.T) {
	// worker calls leaf; leaf diverges, worker does not. worker's own
	// efficiency must be 1.0 and leaf's below 1.
	pb := ir.NewBuilder("perfunc")
	leaf := pb.NewFunc("leaf")
	lb0 := leaf.NewBlock("l0")
	lb1 := leaf.NewBlock("l1")
	lb2 := leaf.NewBlock("l2")
	lb3 := leaf.NewBlock("l3")
	lb0.Rem(ir.Rg(ir.R(0)), ir.Imm(2)).Cmp(ir.Rg(ir.R(0)), ir.Imm(0)).Jcc(ir.CondEQ, lb1, lb2)
	lb1.Nop(4).Jmp(lb3)
	lb2.Nop(4).Jmp(lb3)
	lb3.Ret()

	worker := pb.NewFunc("worker")
	wb0 := worker.NewBlock("w0")
	wb1 := worker.NewBlock("w1")
	wb0.Mov(ir.Rg(ir.R(0)), ir.Rg(ir.TID)).Nop(2).Call(leaf, wb1)
	wb1.Nop(2).Ret()
	pb.SetEntry(worker)
	prog := pb.MustBuild()

	opts := Defaults()
	opts.WarpSize = 4
	rep := analyzeProgram(t, prog, 4, opts)

	w, ok := rep.Function("worker")
	if !ok {
		t.Fatal("worker missing from per-function report")
	}
	if math.Abs(w.Efficiency-1.0) > 1e-12 {
		t.Errorf("worker efficiency = %v, want 1 (callee divergence must not leak)", w.Efficiency)
	}
	l, ok := rep.Function("leaf")
	if !ok {
		t.Fatal("leaf missing from per-function report")
	}
	if l.Efficiency >= 0.99 {
		t.Errorf("leaf efficiency = %v, want < 1 (it diverges)", l.Efficiency)
	}
	// leaf: lb0 lockstep 3 instrs, lb1 5 (2 lanes), lb2 5 (2 lanes), lb3 1.
	// thread instrs: 4*3 + 2*5 + 2*5 + 4*1 = 36; lockstep = 14.
	if l.ThreadInstrs != 36 || l.Lockstep != 14 {
		t.Errorf("leaf counts = %d/%d, want 36/14", l.ThreadInstrs, l.Lockstep)
	}
}

func TestWarpSizeMonotonicity(t *testing.T) {
	// Divergence-prone code: efficiency must not increase with warp size
	// (paper figure 1's consistent trend).
	pb := ir.NewBuilder("mono")
	f := pb.NewFunc("worker")
	b0 := f.NewBlock("b0")
	odd := f.NewBlock("odd")
	even := f.NewBlock("even")
	quad := f.NewBlock("quad")
	join := f.NewBlock("join")
	b0.Mov(ir.Rg(ir.R(0)), ir.Rg(ir.TID)).
		Rem(ir.Rg(ir.R(0)), ir.Imm(4)).
		Cmp(ir.Rg(ir.R(0)), ir.Imm(0)).
		Jcc(ir.CondEQ, quad, even)
	even.Cmp(ir.Rg(ir.R(0)), ir.Imm(2)).Jcc(ir.CondEQ, quad, odd)
	odd.Nop(6).Jmp(join)
	quad.Nop(3).Jmp(join)
	join.Nop(1).Ret()
	prog := pb.MustBuild()

	var prev float64 = 2
	for _, ws := range []int{4, 8, 16, 32} {
		opts := Defaults()
		opts.WarpSize = ws
		rep := analyzeProgram(t, prog, 32, opts)
		if rep.Efficiency > prev+1e-9 {
			t.Errorf("efficiency increased from %v to %v going to warp size %d", prev, rep.Efficiency, ws)
		}
		prev = rep.Efficiency
	}
}

func TestBatchingAlgorithmsAffectEfficiency(t *testing.T) {
	// Threads alternate between two paths by tid parity. Round-robin warps
	// mix both paths (low efficiency); greedy-entry... still mixes because
	// the first block is shared, so instead make the entry block itself
	// differ via a switch in a wrapper that calls one of two workers.
	pb := ir.NewBuilder("batch")
	a := pb.NewFunc("pathA")
	ab := a.NewBlock("a0")
	ab.Nop(20).Ret()
	b := pb.NewFunc("pathB")
	bb := b.NewBlock("b0")
	bb.Nop(20).Ret()
	w := pb.NewFunc("worker")
	w0 := w.NewBlock("w0")
	wA := w.NewBlock("wA")
	wB := w.NewBlock("wB")
	wend := w.NewBlock("wend")
	w0.Mov(ir.Rg(ir.R(0)), ir.Rg(ir.TID)).
		Rem(ir.Rg(ir.R(0)), ir.Imm(2)).
		Cmp(ir.Rg(ir.R(0)), ir.Imm(0)).
		Jcc(ir.CondEQ, wA, wB)
	wA.Call(a, wend)
	wB.Call(b, wend)
	wend.Ret()
	pb.SetEntry(w)
	prog := pb.MustBuild()

	runWith := func(f warp.Formation) float64 {
		opts := Defaults()
		opts.WarpSize = 8
		opts.Formation = f
		return analyzeProgram(t, prog, 32, opts).Efficiency
	}
	rr := runWith(warp.RoundRobin)
	st := runWith(warp.Strided)
	// Round-robin warps mix both parities and serialize the two calls;
	// strided batching (stride = 4 warps) happens to separate the parity
	// classes perfectly, so each warp is fully convergent.
	if rr > 0.75 {
		t.Errorf("mixed-path round-robin warps should lose efficiency, got %v", rr)
	}
	if math.Abs(st-1.0) > 1e-12 {
		t.Errorf("strided batching separates parities, want efficiency 1, got %v", st)
	}
}

// TestAnalyzeFilteredTraces exercises the analyzer on traces produced by
// the tracer's selective-function filters, including the degenerate case
// where some threads become empty.
func TestAnalyzeFilteredTraces(t *testing.T) {
	pb := ir.NewBuilder("filtered")
	lib := pb.NewFunc("lib")
	lb := lib.NewBlock("l")
	lb0 := lib.NewBlock("l0")
	lb1 := lib.NewBlock("l1")
	lend := lib.NewBlock("lend")
	lb.Rem(ir.Rg(ir.R(0)), ir.Imm(2)).Cmp(ir.Rg(ir.R(0)), ir.Imm(0)).Jcc(ir.CondEQ, lb0, lb1)
	lb0.Nop(8).Jmp(lend)
	lb1.Nop(2).Jmp(lend)
	lend.Ret()
	w := pb.NewFunc("worker")
	pb.SetEntry(w)
	w0 := w.NewBlock("w0")
	w1 := w.NewBlock("w1")
	w0.Mov(ir.Rg(ir.R(0)), ir.Rg(ir.TID)).Nop(5).Call(lib, w1)
	w1.Nop(5).Ret()
	prog := pb.MustBuild()

	p := vm.NewProcess(prog)
	tr, err := vm.TraceAll(p, 8, vm.RunConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := Defaults()
	opts.WarpSize = 8 // full warp: partial warps dilute equation 1
	full, err := Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Excluding the divergent library must raise efficiency to 1.
	excl, err := trace.ExcludeFunctions(tr, "lib")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(excl, opts)
	if err != nil {
		t.Fatalf("analyzing filtered trace: %v", err)
	}
	if rep.Efficiency <= full.Efficiency {
		t.Errorf("excluding the divergent lib did not raise efficiency: %v -> %v",
			full.Efficiency, rep.Efficiency)
	}
	if math.Abs(rep.Efficiency-1) > 1e-12 {
		t.Errorf("worker-only efficiency = %v, want 1", rep.Efficiency)
	}
	if _, ok := rep.Function("lib"); ok {
		t.Error("excluded function still in the per-function report")
	}

	// Excluding the entry function leaves empty threads; the analyzer must
	// cope (everything skipped, nothing executed).
	empty, err := trace.ExcludeFunctions(tr, "worker")
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Analyze(empty, opts)
	if err != nil {
		t.Fatalf("analyzing empty-thread trace: %v", err)
	}
	if rep2.TotalInstrs != 0 || rep2.LockstepInstrs != 0 {
		t.Errorf("empty trace executed instructions: %+v", rep2)
	}
	if rep2.TracedPercent > 1 {
		t.Errorf("traced percent = %v, want ~0", rep2.TracedPercent)
	}
}

func TestLaneHistogram(t *testing.T) {
	prog := buildFig2(t, 2) // 4-instruction blocks
	opts := Defaults()
	opts.WarpSize = 2
	rep := analyzeProgram(t, prog, 2, opts)
	if len(rep.LaneHistogram) != 3 {
		t.Fatalf("histogram has %d buckets, want 3 (0..warpSize)", len(rep.LaneHistogram))
	}
	// BBL1 and BBL4 run with 2 lanes (8 instrs); BBL2 and BBL3 with 1 (8).
	if rep.LaneHistogram[2] != 8 || rep.LaneHistogram[1] != 8 {
		t.Errorf("histogram = %v, want [0 8 8]", rep.LaneHistogram)
	}
	var sum uint64
	for _, v := range rep.LaneHistogram {
		sum += v
	}
	if sum != rep.LockstepInstrs {
		t.Errorf("histogram sums to %d, lockstep is %d", sum, rep.LockstepInstrs)
	}
}

func TestBranchReportLocalizesDivergence(t *testing.T) {
	// Figure-2 program: the only divergence site is BBL1 (block 0).
	prog := buildFig2(t, 2)
	opts := Defaults()
	opts.WarpSize = 2
	rep := analyzeProgram(t, prog, 2, opts)
	if len(rep.Branches) != 1 {
		t.Fatalf("branch report has %d rows, want 1: %+v", len(rep.Branches), rep.Branches)
	}
	br := rep.Branches[0]
	if br.Func != "worker" || br.Block != 0 {
		t.Errorf("divergence attributed to %s.b%d, want worker.b0", br.Func, br.Block)
	}
	if br.Divergences != 1 || br.LanesOff != 1 || br.AvgPaths != 2 {
		t.Errorf("branch stats = %+v, want 1 split, 1 lane idled, 2 paths", br)
	}

	// A convergent program must have an empty branch report.
	pb := ir.NewBuilder("conv")
	f := pb.NewFunc("worker")
	f.NewBlock("b").Nop(3).Ret()
	rep2 := analyzeProgram(t, pb.MustBuild(), 4, Defaults())
	if len(rep2.Branches) != 0 {
		t.Errorf("convergent program reported divergences: %+v", rep2.Branches)
	}
}

// TestFormationInvariants checks batching-independent invariants on the
// fuzz corpus: total thread instructions equal the trace's dynamic count
// regardless of how threads are batched, and lockstep issues never exceed
// thread instructions (efficiency ≤ 1) nor drop below instructions of the
// longest thread.
func TestFormationInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		params := irgen.DefaultParams(seed)
		prog := irgen.Random(params)
		p := vm.NewProcess(prog)
		shared := p.AllocGlobal(uint64(8 * params.SharedWords))
		for i := 0; i < params.SharedWords; i++ {
			p.WriteI64(shared+uint64(8*i), int64(i*31%97)-48)
		}
		privSize := uint64(8 * params.PrivateWords)
		priv := p.AllocGlobal(privSize * 64)
		tr, err := vm.TraceAll(p, 12, vm.RunConfig{}, func(tid int, th *vm.Thread) {
			th.SetReg(ir.R(8), int64(priv+uint64(tid)*privSize))
			th.SetReg(ir.R(9), int64(shared))
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := tr.TotalInstructions()
		var longest uint64
		for _, th := range tr.Threads {
			if n := th.Instructions(); n > longest {
				longest = n
			}
		}
		for _, f := range []warp.Formation{warp.RoundRobin, warp.Strided, warp.GreedyEntry} {
			opts := Defaults()
			opts.WarpSize = 4
			opts.Formation = f
			rep, err := Analyze(tr, opts)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, f, err)
			}
			if rep.TotalInstrs != want {
				t.Errorf("seed %d %v: thread instrs %d != trace total %d", seed, f, rep.TotalInstrs, want)
			}
			if rep.LockstepInstrs > rep.TotalInstrs {
				t.Errorf("seed %d %v: lockstep %d exceeds thread instrs %d (efficiency > warp size?)",
					seed, f, rep.LockstepInstrs, rep.TotalInstrs)
			}
			if rep.LockstepInstrs < longest {
				t.Errorf("seed %d %v: lockstep %d below longest thread %d",
					seed, f, rep.LockstepInstrs, longest)
			}
			var histSum uint64
			for _, v := range rep.LaneHistogram {
				histSum += v
			}
			if histSum != rep.LockstepInstrs {
				t.Errorf("seed %d %v: histogram sum %d != lockstep %d", seed, f, histSum, rep.LockstepInstrs)
			}
		}
	}
}

func TestPerFunctionMemoryDivergence(t *testing.T) {
	// worker does coalesced stores; leaf does scattered (tid-strided)
	// loads: the per-function heap tx/instr must separate them.
	pb := ir.NewBuilder("memfuncs")
	leaf := pb.NewFunc("leaf")
	lb := leaf.NewBlock("l")
	// scattered: addr = base + tid*4096
	lb.Mov(ir.Rg(ir.R(2)), ir.Rg(ir.TID)).
		Mul(ir.Rg(ir.R(2)), ir.Imm(4096)).
		Add(ir.Rg(ir.R(2)), ir.Rg(ir.R(0))).
		Mov(ir.Rg(ir.R(3)), ir.Mem(ir.R(2), 0, 8)).
		Ret()
	w := pb.NewFunc("worker")
	pb.SetEntry(w)
	wb0 := w.NewBlock("w0")
	wb1 := w.NewBlock("w1")
	// coalesced: addr = base + tid*8
	wb0.Mov(ir.Rg(ir.R(4)), ir.MemIdx(ir.R(1), ir.TID, 8, 0, 8)).
		Call(leaf, wb1)
	wb1.Ret()
	prog := pb.MustBuild()

	p := vm.NewProcess(prog)
	scattered := p.AllocGlobal(8 * 4096 * 40)
	packed := p.AllocGlobal(8 * 64)
	tr, err := vm.TraceAll(p, 32, vm.RunConfig{}, func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(0), int64(scattered))
		th.SetReg(ir.R(1), int64(packed))
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tr, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := rep.Function("worker")
	lf, _ := rep.Function("leaf")
	if wf.HeapTxPerInstr != 8 {
		t.Errorf("worker heap tx/instr = %v, want 8 (coalesced 8-byte lanes)", wf.HeapTxPerInstr)
	}
	if lf.HeapTxPerInstr != 32 {
		t.Errorf("leaf heap tx/instr = %v, want 32 (one per lane)", lf.HeapTxPerInstr)
	}
}
