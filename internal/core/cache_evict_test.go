package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// evictFixture stores n entries (distinct warp sizes -> distinct keys) and
// returns the cache plus the entries' keys in storage order. mtimes are
// pinned to strictly increasing instants well in the past so eviction order
// is controlled by the test, not by filesystem timestamp granularity.
func evictFixture(t *testing.T, n int) (*Cache, []string) {
	t.Helper()
	c := NewCache(t.TempDir())
	tr := cacheTestTrace()
	keys := make([]string, n)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < n; i++ {
		opts := Defaults()
		opts.WarpSize = 2 + i // distinct key per entry
		rep, err := Analyze(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		key, err := cacheKey(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		c.put(key, rep)
		keys[i] = key
		stamp := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(c.path(key), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	return c, keys
}

func entrySize(t *testing.T, c *Cache, key string) int64 {
	t.Helper()
	info, err := os.Stat(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func present(c *Cache, key string) bool {
	_, err := os.Stat(c.path(key))
	return err == nil
}

// TestCacheEvictsLRUOrder: with a cap that fits only the two newest entries,
// a store evicts the oldest entries first and leaves the rest untouched.
func TestCacheEvictsLRUOrder(t *testing.T) {
	c, keys := evictFixture(t, 4)
	// Cap = sizes of the two newest entries (all entries are equal-sized
	// modulo a few bytes of numeric variation; sum the exact two).
	c.SetMaxBytes(entrySize(t, c, keys[2]) + entrySize(t, c, keys[3]))
	c.evict()
	if present(c, keys[0]) || present(c, keys[1]) {
		t.Fatalf("oldest entries survived eviction: %v %v", present(c, keys[0]), present(c, keys[1]))
	}
	if !present(c, keys[2]) || !present(c, keys[3]) {
		t.Fatalf("newest entries evicted: %v %v", present(c, keys[2]), present(c, keys[3]))
	}
	// The survivors must still be readable hits.
	for _, key := range keys[2:] {
		if _, ok := c.get(key); !ok {
			t.Errorf("surviving entry %s does not hit", key[:12])
		}
	}
}

// TestCacheHitRefreshesRecency: a get on the oldest entry refreshes its
// mtime, so the next eviction removes the second-oldest instead.
func TestCacheHitRefreshesRecency(t *testing.T) {
	c, keys := evictFixture(t, 3)
	c.SetMaxBytes(entrySize(t, c, keys[0]) + entrySize(t, c, keys[2]))
	// Touch the oldest entry via a hit; recency refresh only happens under
	// a size cap, which is already set.
	if _, ok := c.get(keys[0]); !ok {
		t.Fatal("expected a hit on entry 0")
	}
	c.evict()
	if !present(c, keys[0]) {
		t.Fatal("entry 0 evicted despite recency refresh from a hit")
	}
	if present(c, keys[1]) {
		t.Fatal("entry 1 survived; it was the least recently used")
	}
	if !present(c, keys[2]) {
		t.Fatal("newest entry evicted")
	}
}

// TestCachePutEnforcesCap: the eviction runs as part of put, not only when
// called directly.
func TestCachePutEnforcesCap(t *testing.T) {
	c, keys := evictFixture(t, 2)
	c.SetMaxBytes(entrySize(t, c, keys[0]) * 2)
	tr := cacheTestTrace()
	opts := Defaults()
	opts.WarpSize = 16
	rep, err := Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	key, err := cacheKey(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.put(key, rep)
	if !present(c, key) {
		t.Fatal("just-stored entry missing (it is the most recent; eviction must prefer older ones)")
	}
	if present(c, keys[0]) {
		t.Fatal("oldest entry survived a put that exceeded the cap")
	}
}

// TestCacheEvictionSkipsForeignFiles: non-entry files sharing the directory
// (in-flight temp files, stray notes) are never removed and never counted
// against the cap.
func TestCacheEvictionSkipsForeignFiles(t *testing.T) {
	c, keys := evictFixture(t, 2)
	foreign := []string{"put-123.tmp", "README", "sub.json.bak"}
	for _, name := range foreign {
		if err := os.WriteFile(filepath.Join(c.Dir(), name), make([]byte, 1<<16), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Cap fits both entries but not the foreign bytes: nothing may be
	// evicted, because foreign files don't count.
	c.SetMaxBytes(entrySize(t, c, keys[0]) + entrySize(t, c, keys[1]))
	c.evict()
	for _, key := range keys {
		if !present(c, key) {
			t.Errorf("entry %s evicted under a cap that fits all entries", key[:12])
		}
	}
	for _, name := range foreign {
		if _, err := os.Stat(filepath.Join(c.Dir(), name)); err != nil {
			t.Errorf("foreign file %s removed by eviction", name)
		}
	}
}

// TestCacheCorruptedEntryDegradesToReplay: an entry truncated on disk (the
// shape a crashed evictor or torn copy would leave if atomicity ever broke)
// is a miss that recomputes — AnalyzeCached never surfaces it as an error.
func TestCacheCorruptedEntryDegradesToReplay(t *testing.T) {
	c := NewCache(t.TempDir())
	tr := cacheTestTrace()
	opts := Defaults()
	replays := countReplays(t)

	if _, hit, err := AnalyzeCached(c, tr, opts); err != nil || hit {
		t.Fatalf("first analysis: hit=%v err=%v", hit, err)
	}
	key, err := cacheKey(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the entry mid-JSON.
	if err := os.Truncate(c.path(key), 10); err != nil {
		t.Fatal(err)
	}
	rep, hit, err := AnalyzeCached(c, tr, opts)
	if err != nil {
		t.Fatalf("analysis over corrupt entry: %v", err)
	}
	if hit {
		t.Fatal("corrupt entry served as a hit")
	}
	if rep == nil || *replays != 2 {
		t.Fatalf("expected a second replay after corruption, got %d", *replays)
	}
	// The recompute must repair the entry: next call hits.
	if _, hit, err := AnalyzeCached(c, tr, opts); err != nil || !hit {
		t.Fatalf("post-repair analysis: hit=%v err=%v", hit, err)
	}
}
