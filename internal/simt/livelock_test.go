package simt

import (
	"testing"
	"time"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
	"threadfuser/internal/warp"
)

// selfLoopLockProgram builds a critical section that begins and ends inside
// one self-looping block: cs acquires the lock, does work, releases it and
// conditionally branches back to itself. The lock serializer's rounds then
// get a reconvergence point equal to their current position (rpc == pos) —
// the shape that livelocked before entry.mustExec forced one block execution
// per round.
func selfLoopLockProgram(iters int64) *ir.Program {
	pb := ir.NewBuilder("selflock")
	f := pb.NewFunc("worker")
	pre := f.NewBlock("pre")
	cs := f.NewBlock("cs")
	tail := f.NewBlock("tail")
	// r1 = my lock address (from the shared table at r0); r2 = iteration count.
	pre.Mov(ir.Rg(ir.R(1)), ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8)).
		Mov(ir.Rg(ir.R(2)), ir.Imm(iters)).
		Jmp(cs)
	cs.Lock(ir.Rg(ir.R(1))).
		Nop(2).
		Unlock(ir.Rg(ir.R(1))).
		Sub(ir.Rg(ir.R(2)), ir.Imm(1)).
		Cmp(ir.Rg(ir.R(2)), ir.Imm(0))
	cs.Jcc(ir.CondNE, cs, tail)
	tail.Nop(2).Ret()
	return pb.MustBuild()
}

// TestSelfLoopCriticalSectionTerminates is the regression test for the
// mustExec livelock: warp-mates contending on one lock inside a self-looping
// block must serialize and finish, not spin forever popping zero-progress
// reconvergence entries.
func TestSelfLoopCriticalSectionTerminates(t *testing.T) {
	const threads = 4
	prog := selfLoopLockProgram(3)
	p := vm.NewProcess(prog)
	args := lockSetup(p, threads, 1) // all threads share one lock
	tr, err := vm.TraceAll(p, threads, vm.RunConfig{}, args)
	if err != nil {
		t.Fatal(err)
	}
	graphs, err := cfg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	pdoms := ipdom.ComputeAll(graphs)
	warps, err := warp.Form(tr, threads, warp.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Replay(tr, graphs, pdoms, warps, Options{WarpSize: threads, EmulateLocks: true})
		done <- outcome{res, err}
	}()
	var res *Result
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		res = o.res
	case <-time.After(30 * time.Second):
		t.Fatal("replay livelocked on a self-looping critical section (mustExec regression)")
	}
	total := res.Total()
	if total.LockSerializations == 0 {
		t.Error("contended self-loop lock produced no serializations")
	}
	if total.SerializedLanes == 0 {
		t.Error("contended self-loop lock idled no lanes")
	}

	// The emulation must only add serialization, never lose instructions.
	base, err := Replay(tr, graphs, pdoms, warps, Options{WarpSize: threads})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := total.ThreadInstrs, base.Total().ThreadInstrs; got != want {
		t.Errorf("lock emulation changed thread instructions: %d != %d", got, want)
	}
	if total.Lockstep < base.Total().Lockstep {
		t.Errorf("lock emulation reduced lockstep instructions: %d < %d",
			total.Lockstep, base.Total().Lockstep)
	}
}
