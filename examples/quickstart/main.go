// Quickstart: trace a bundled MIMD workload, project its SIMT behaviour,
// and estimate its GPU speedup — the zero-effort estimate the paper offers
// software developers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"threadfuser"
)

func main() {
	// Pick a workload. "other.pigz" is the paper's cautionary tale: a
	// Linux utility whose control flow is intrinsically data-dependent.
	w, err := threadfuser.Workload("other.pigz")
	if err != nil {
		log.Fatal(err)
	}

	// First-order estimate: SIMT efficiency and memory divergence. This
	// is the cheap, porting-free analysis of the paper's figure 1.
	rep, err := threadfuser.AnalyzeWorkload(w, threadfuser.Options{WarpSize: 32, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on a 32-wide SIMT machine:\n", w.Name)
	fmt.Printf("  SIMT efficiency   %5.1f%%\n", rep.Efficiency*100)
	fmt.Printf("  memory divergence %5.2f heap transactions per memory instruction\n", rep.HeapTxPerInstr)
	fmt.Printf("  (an ideally coalesced 8-byte access needs 8)\n\n")

	// The efficiency sweep architects use (figure 1's warp-size story).
	fmt.Println("warp-width sensitivity:")
	for _, ws := range []int{8, 16, 32} {
		r, err := threadfuser.AnalyzeWorkload(w, threadfuser.Options{WarpSize: ws, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  warp %2d -> %5.1f%%\n", ws, r.Efficiency*100)
	}
	fmt.Println()

	// Cycle-level projection through the SIMT timing simulator against
	// the multicore CPU baseline (the figure-6 pipeline), at the paper's
	// Table-I thread counts: GPUs need occupancy to hide latency, so the
	// projection uses each workload's real parallelism.
	for _, tc := range []struct {
		name    string
		threads int
	}{
		{"other.pigz", 128},      // pigz's Table-I thread count
		{"paropoly.nbody", 4096}, // N-body's Table-I thread count
	} {
		wl, err := threadfuser.Workload(tc.name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := threadfuser.Project(wl, threadfuser.Options{Threads: tc.threads, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s (%4d threads) projected speedup %6.2fx  (GPU %8d cycles, CPU %8d cycles)\n",
			tc.name, tc.threads, p.Speedup, p.GPUCycles, p.CPUCycles)
	}
	fmt.Println("\npigz, as written, is a poor SIMT candidate; N-body is a near-perfect one")
	fmt.Println("(~20x, matching the paper's 15-20x for good candidates) — exactly the")
	fmt.Println("contrast the paper's figure 1 opens with.")
}
