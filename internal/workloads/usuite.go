package workloads

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// uSuite microservices (Table I): McRouter (Memcached, Mid, Leaf),
// TextSearch (Mid, Leaf), HDSearch (Mid, Leaf). Each thread services one
// request, which is exactly how the paper batches request-level parallelism
// into warps. All of them perform I/O (receive/respond, recorded as skipped
// instructions, figure 8) and allocate responses through the allocator
// stdlib (figure 9's lock story). HDSearch-Midtier is the figure-7 case
// study: its FLANN getpoint method single-handedly destroys SIMT efficiency
// until its trip counts are pinned.

// ioRecv/ioSend are the skipped-instruction sizes of the request receive and
// response send paths (RPC deserialize/serialize, socket syscalls).
const (
	ioRecv = 30
	ioSend = 15
)

var wlMemcached = register(&Workload{
	Name:           "usuite.mcrouter.memcached",
	Suite:          SuiteUSuite,
	Desc:           "memcached GET: key hash, fine-grain bucket lock, chain walk, value copy",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		const nbuckets = 64
		pb := ir.NewBuilder("usuite.mcrouter.memcached")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		// Args: r0=keys, r1=bucketLocks, r2=chainLens, r3=valueLens, r4=values.
		pre := w.NewBlock("recv")
		hashed := w.NewBlock("hashed")
		pre.IO(ioRecv).
			Mov(rg(10), idx8(0, int(ir.TID), 8, 0)). // key
			Mov(rg(11), im(8)).
			Call(s.Hash, hashed)
		// bucket = h % nbuckets; lock its fine-grain mutex.
		hashed.Mov(rg(5), rg(10)).
			And(rg(5), im(nbuckets-1)).
			Mov(rg(6), rg(5)).
			Shl(rg(6), im(3)).
			Add(rg(6), rg(1)). // &bucketLocks[bucket]
			Lock(ir.Mem(ir.R(6), 0, 8)).
			Mov(rg(7), idx8(2, 5, 8, 0)) // chain length (1..4, request-dep)
		walk := loopN(w, hashed, "chain", 8, 0, rg(7))
		walk.Body.Mov(rg(9), idx8(4, 5, 8, 0)).
			Cmp(rg(9), rg(10))
		walk.Next(walk.Body)
		resp := w.NewBlock("resp")
		walk.Exit.Unlock(ir.Mem(ir.R(6), 0, 8)).
			Mov(rg(9), idx8(3, int(ir.TID), 8, 0)). // value length
			Mov(rg(10), rg(9)).
			Call(s.Malloc, resp)
		// Copy the value into the response buffer.
		sent := w.NewBlock("send")
		resp.Mov(rg(11), rg(9)).
			Mov(rg(12), rg(4)).
			Call(s.Memcpy, sent)
		sent.IO(ioSend).Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			keys := p.AllocGlobal(uint64(8 * cfg.Threads))
			locks := p.AllocGlobal(8 * nbuckets)
			chain := p.AllocGlobal(8 * nbuckets)
			vlens := p.AllocGlobal(uint64(8 * cfg.Threads))
			values := p.AllocHeap(4096)
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(keys+uint64(8*i), r.Int63())
				p.WriteI64(vlens+uint64(8*i), int64(64+8*r.Intn(17))) // 64..192B values
			}
			for b := 0; b < nbuckets; b++ {
				p.WriteI64(chain+uint64(8*b), int64(1+r.Intn(4)))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(keys))
				th.SetReg(ir.R(1), int64(locks))
				th.SetReg(ir.R(2), int64(chain))
				th.SetReg(ir.R(3), int64(vlens))
				th.SetReg(ir.R(4), int64(values))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlMcrouterMid = register(&Workload{
	Name:           "usuite.mcrouter.mid",
	Suite:          SuiteUSuite,
	Desc:           "mcrouter midtier: route selection switch over backends plus shared pre/post processing",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("usuite.mcrouter.mid")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		// Args: r0=keys.
		pre := w.NewBlock("recv")
		hashed := w.NewBlock("hashed")
		pre.IO(ioRecv).
			Mov(rg(10), idx8(0, int(ir.TID), 8, 0)).
			Mov(rg(11), im(16)).
			Call(s.Hash, hashed)
		// Pick one of four backends: a jump table on the key hash. Routes
		// are short relative to the shared code, so the divergence is
		// bounded (the paper's midtiers average ~78% efficiency).
		routes := make([]*ir.BlockBuilder, 4)
		join := w.NewBlock("join")
		for i := range routes {
			routes[i] = w.NewBlock("route")
			routes[i].Mov(rg(5), rg(10)).
				Xor(rg(5), im(int64(0x1111*(i+1)))).
				Mul(rg(5), im(int64(2*i+3))).
				Add(rg(5), im(int64(i))).
				Jmp(join)
		}
		hashed.Mov(rg(6), rg(10)).
			And(rg(6), im(3)).
			Switch(rg(6), routes...)
		done := w.NewBlock("send")
		join.Mov(rg(10), im(64)).Call(s.Malloc, done)
		done.Nop(12).IO(ioSend).Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			keys := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(keys+uint64(8*i), r.Int63())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(keys))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlMcrouterLeaf = register(&Workload{
	Name:           "usuite.mcrouter.leaf",
	Suite:          SuiteUSuite,
	Desc:           "mcrouter leaf: direct slab lookup with fixed-size value copy",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("usuite.mcrouter.leaf")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		pre := w.NewBlock("recv")
		hashed := w.NewBlock("hashed")
		pre.IO(ioRecv).
			Mov(rg(10), idx8(0, int(ir.TID), 8, 0)).
			Mov(rg(11), im(8)).
			Call(s.Hash, hashed)
		alloc := w.NewBlock("alloc")
		hashed.And(rg(10), im(63)).
			Mov(rg(4), idx8(1, 10, 8, 0)). // slab[h]
			Mov(rg(10), im(128)).
			Call(s.Malloc, alloc)
		sent := w.NewBlock("send")
		alloc.Mov(rg(11), im(128)).
			Mov(rg(12), rg(1)).
			Call(s.Memcpy, sent)
		sent.IO(ioSend).Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			keys := p.AllocGlobal(uint64(8 * cfg.Threads))
			slab := p.AllocHeap(8 * 64)
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(keys+uint64(8*i), r.Int63())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(keys))
				th.SetReg(ir.R(1), int64(slab))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlTextSearchLeaf = register(&Workload{
	Name:           "usuite.textsearch.leaf",
	Suite:          SuiteUSuite,
	Desc:           "text search leaf: fixed-shape posting scans, the paper's high-efficiency microservice",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		docs := cfg.scale(16)
		pb := ir.NewBuilder("usuite.textsearch.leaf")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		// Args: r0=terms, r1=index (docs x 8 words).
		pre := w.NewBlock("recv")
		pre.IO(ioRecv).
			Mov(rg(2), idx8(0, int(ir.TID), 8, 0)). // query term
			Mov(rg(9), im(0))                       // match count
		dl := loopN(w, pre, "docs", 3, 0, im(int64(docs)))
		dl.Body.Mov(rg(4), rg(3)).
			Shl(rg(4), im(6)).
			Add(rg(4), rg(1)) // &doc words
		wl := loopN(w, dl.Body, "words", 5, 0, im(8))
		hit := w.NewBlock("hit")
		miss := w.NewBlock("miss")
		wl.Body.Mov(rg(6), idx8(4, 5, 8, 0)).
			Cmp(rg(6), rg(2)).
			Jcc(ir.CondEQ, hit, miss)
		hit.Add(rg(9), im(1)).Jmp(miss)
		wl.Next(miss)
		dl.Next(wl.Exit)
		alloc := w.NewBlock("alloc")
		dl.Exit.Mov(rg(10), im(64)).Call(s.Malloc, alloc)
		alloc.Mov(mem8(10, 0), rg(9)).IO(ioSend).Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			terms := p.AllocGlobal(uint64(8 * cfg.Threads))
			index := p.AllocHeap(uint64(64 * docs))
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(terms+uint64(8*i), int64(r.Intn(32)))
			}
			for i := 0; i < 8*docs; i++ {
				p.WriteI64(index+uint64(8*i), int64(r.Intn(32)))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(terms))
				th.SetReg(ir.R(1), int64(index))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlTextSearchMid = register(&Workload{
	Name:           "usuite.textsearch.mid",
	Suite:          SuiteUSuite,
	Desc:           "text search midtier: fixed-fanout leaf result merge with small rank updates",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		const fanout = 4
		perLeaf := cfg.scale(8)
		pb := ir.NewBuilder("usuite.textsearch.mid")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		// Args: r0=leafResults (threads x fanout x perLeaf scores).
		pre := w.NewBlock("recv")
		pre.IO(ioRecv).
			Mov(rg(2), tid()).
			Mul(rg(2), im(int64(8*fanout*perLeaf))).
			Add(rg(2), rg(0)).
			Mov(rg(9), im(0)) // best score
		ll := loopN(w, pre, "leaves", 3, 0, im(fanout))
		el := loopN(w, ll.Body, "entries", 4, 0, im(int64(perLeaf)))
		better := w.NewBlock("better")
		worse := w.NewBlock("worse")
		el.Body.Mov(rg(5), rg(3)).
			Mul(rg(5), im(int64(perLeaf))).
			Add(rg(5), rg(4)).
			Mov(rg(6), idx8(2, 5, 8, 0)).
			Cmp(rg(6), rg(9)).
			Jcc(ir.CondGT, better, worse)
		better.Mov(rg(9), rg(6)).Jmp(worse)
		el.Next(worse)
		ll.Next(el.Exit)
		alloc := w.NewBlock("alloc")
		ll.Exit.Mov(rg(10), im(64)).Call(s.Malloc, alloc)
		alloc.Mov(mem8(10, 0), rg(9)).IO(ioSend).Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			n := cfg.Threads * fanout * perLeaf
			results := p.AllocGlobal(uint64(8 * n))
			for i := 0; i < n; i++ {
				p.WriteI64(results+uint64(8*i), int64(r.Intn(1000)))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(results))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlHDSearchLeaf = register(&Workload{
	Name:           "usuite.hdsearch.leaf",
	Suite:          SuiteUSuite,
	Desc:           "HDSearch leaf: fixed-dimension distance kernels with a short top-k insertion",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		dims := cfg.scale(16)
		cands := 8
		pb := ir.NewBuilder("usuite.hdsearch.leaf")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		// Args: r0=query vectors, r1=candidate vectors.
		pre := w.NewBlock("recv")
		pre.IO(ioRecv).
			Mov(rg(2), tid()).
			Mul(rg(2), im(int64(8*dims))).
			Add(rg(2), rg(0)).               // &query
			Mov(rg(9), ir.Imm(int64(1)<<62)) // best
		cl := loopN(w, pre, "cands", 3, 0, im(int64(cands)))
		cl.Body.Mov(rg(4), rg(3)).
			Mul(rg(4), im(int64(8*dims))).
			Add(rg(4), rg(1)).
			Mov(rg(8), im(0))
		dl := loopN(w, cl.Body, "dims", 5, 0, im(int64(dims)))
		dl.Body.Mov(rg(6), idx8(2, 5, 8, 0)).
			FSub(rg(6), idx8(4, 5, 8, 0)).
			FMul(rg(6), rg(6)).
			FAdd(rg(8), rg(6))
		dl.Next(dl.Body)
		better := w.NewBlock("better")
		worse := w.NewBlock("worse")
		dl.Exit.FCmp(rg(8), rg(9)).Jcc(ir.CondLT, better, worse)
		better.Mov(rg(9), rg(8)).Jmp(worse)
		cl.Next(worse)
		alloc := w.NewBlock("alloc")
		cl.Exit.Mov(rg(10), im(64)).Call(s.Malloc, alloc)
		alloc.Mov(mem8(10, 0), rg(9)).IO(ioSend).Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			queries := p.AllocGlobal(uint64(8 * dims * cfg.Threads))
			candArr := p.AllocHeap(uint64(8 * dims * cands))
			for i := 0; i < dims*cfg.Threads; i++ {
				p.WriteF64(queries+uint64(8*i), r.Float64())
			}
			for i := 0; i < dims*cands; i++ {
				p.WriteF64(candArr+uint64(8*i), r.Float64())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(queries))
				th.SetReg(ir.R(1), int64(candArr))
			}, nil
		}
		return prog, setup, nil
	},
})

// buildHDSearchMid builds the figure-7 case study. When fixed is true, the
// getpoint trip count is pinned to the top-10 results for every query (the
// paper's SIMT-aware fix, which lifted efficiency from single digits to
// ~90% while keeping 93% search accuracy).
func buildHDSearchMid(name string, fixed bool) func(cfg Config) (*ir.Program, SetupFn, error) {
	return func(cfg Config) (*ir.Program, SetupFn, error) {
		const (
			tables   = 2
			xorMasks = 4
			nbuckets = 256
		)
		pb := ir.NewBuilder(name)
		s := addStdlib(pb)

		// vector: capacity growth via the glibc allocator — the paper found
		// ProcessRequest and vector "faced limitations associated with the
		// serialization from dynamic memory allocation in the C++ glibc".
		// r7 = &vec header {ptr, len, cap} on the thread stack; grows by 64
		// slots per call.
		vecGrow := pb.NewFunc("vector")
		vg0 := vecGrow.NewBlock("grow")
		vg1 := vecGrow.NewBlock("copyback")
		vgDone := vecGrow.NewBlock("done")
		vg0.Mov(rg(10), mem8(7, 16)). // cap
						Add(rg(10), im(64)).
						Mov(mem8(7, 16), rg(10)).
						Shl(rg(10), im(3)).
						Call(s.GlibcMalloc, vg1)
		vg1.Mov(rg(12), mem8(7, 0)). // old ptr
						Mov(rg(11), mem8(7, 8)).
						Shl(rg(11), im(3)).
						Mov(mem8(7, 0), rg(10)). // install new ptr
						Call(s.Memcpy, vgDone)
		vgDone.Ret()

		// getpoint: the FLANN kd/LSH bucket walk of listing 1. Trip counts
		// of the innermost push_back loop come from bucketSizes, which the
		// fixed variant pins to the top-10 results for every query.
		// Args: r1=key, r2=xorMaskTable, r3=bucketSizes, r7=&vec.
		getpoint := pb.NewFunc("getpoint")
		gp0 := getpoint.NewBlock("pre")
		tl := loopN(getpoint, gp0, "tables", 4, 0, im(tables))
		xl := loopN(getpoint, tl.Body, "xors", 5, 0, im(xorMasks))
		xl.Body.Mov(rg(6), idx8(2, 5, 8, 0)).
			Xor(rg(6), rg(1)). // sub_key = key ^ (*xor_mask)
			Add(rg(6), rg(4)).
			And(rg(6), im(nbuckets-1)).
			Mov(rg(8), idx8(3, 6, 8, 0)) // num_point for this bucket
		// for j < num_point: point_id_vec->push_back(point)
		pl := loopN(getpoint, xl.Body, "points", 9, 0, rg(8))
		needGrow := getpoint.NewBlock("needgrow")
		store := getpoint.NewBlock("store")
		pl.Body.Mov(rg(13), mem8(7, 8)). // len
							Cmp(rg(13), mem8(7, 16)). // >= cap?
							Jcc(ir.CondGE, needGrow, store)
		needGrow.Call(vecGrow, store)
		store.Mov(rg(13), mem8(7, 8)).
			Mov(rg(12), mem8(7, 0)).
			Mov(idx8(12, 13, 8, 0), rg(6)). // vec[len] = point id
			Add(rg(13), im(1)).
			Mov(mem8(7, 8), rg(13))
		pl.Next(store)
		xl.Next(pl.Exit)
		tl.Next(xl.Exit)
		tl.Exit.Ret()

		// ProcessRequest: receive, construct the vector, allocate the
		// response through glibc malloc, run getpoint, respond.
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		recv := w.NewBlock("recv")
		allocd := w.NewBlock("allocd")
		after := w.NewBlock("after")
		send := w.NewBlock("send")
		recv.IO(ioRecv).
			Lea(ir.R(7), sp(-32)). // vec header on the stack
			Mov(mem8(7, 0), im(0)).
			Mov(mem8(7, 8), im(0)).
			Mov(mem8(7, 16), im(0)).
			Mov(rg(10), im(128)).
			Call(s.GlibcMalloc, allocd)
		allocd.Mov(rg(1), idx8(0, int(ir.TID), 8, 0)). // key = keys[tid]
								Call(getpoint, after)
		after.Mov(rg(13), mem8(7, 8)). // result count
						Mov(rg(12), rg(13)).
						Jmp(send)
		send.IO(ioSend).Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			keys := p.AllocGlobal(uint64(8 * cfg.Threads))
			xorTable := p.AllocGlobal(8 * xorMasks)
			buckets := p.AllocGlobal(8 * nbuckets)
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(keys+uint64(8*i), r.Int63())
			}
			for i := 0; i < xorMasks; i++ {
				p.WriteI64(xorTable+uint64(8*i), r.Int63())
			}
			for i := 0; i < nbuckets; i++ {
				var n int64
				if fixed {
					// The paper's fix: return the first top-10 results for
					// all queries, making every lane's walk identical.
					n = 10
				} else if r.Intn(10) == 0 {
					n = int64(40 + r.Intn(160)) // hot LSH bucket
				} else {
					n = int64(r.Intn(3)) // typical sparse bucket
				}
				p.WriteI64(buckets+uint64(8*i), n)
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(keys))
				th.SetReg(ir.R(2), int64(xorTable))
				th.SetReg(ir.R(3), int64(buckets))
			}, nil
		}
		return prog, setup, nil
	}
}

var wlHDSearchMid = register(&Workload{
	Name:           "usuite.hdsearch.mid",
	Suite:          SuiteUSuite,
	Desc:           "HDSearch midtier: FLANN getpoint bucket walks with data-dependent trip counts (figure 7)",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build:          buildHDSearchMid("usuite.hdsearch.mid", false),
})

// wlHDSearchMidFixed is the paper's SIMT-aware rewrite of HDSearch-Midtier
// (section V-A): not part of Table I (PaperThreads = 0), used by the
// figure-7 experiment and the microservice-triage example.
var wlHDSearchMidFixed = register(&Workload{
	Name:           "usuite.hdsearch.mid.fixed",
	Suite:          SuiteUSuite,
	Desc:           "HDSearch midtier with getpoint trip counts pinned to top-10 (the figure-7 fix)",
	DefaultThreads: 64,
	PaperThreads:   0,
	Microservice:   false,
	Build:          buildHDSearchMid("usuite.hdsearch.mid.fixed", true),
})
