package check

import "threadfuser/internal/trace"

// Shrink reduces a failing trace to a smaller one that still fails, so a
// property violation on a generated trace arrives as a minimal reproducer
// rather than a thousand-record haystack. fails must report whether a
// candidate trace still exhibits the failure; candidates that do not pass
// trace.Validate are never offered to it. budget caps the number of fails
// evaluations (<=0 means a default of 500). Shrinking is deterministic.
//
// The reduction loop interleaves three strategies until a fixed point or
// budget exhaustion: dropping whole threads, delta-debugging contiguous
// record ranges out of each thread (halving chunk sizes, so balanced
// call..ret spans disappear in one step), and stripping memory/lock payloads
// from individual records.
func Shrink(tr *trace.Trace, fails func(*trace.Trace) bool, budget int) *trace.Trace {
	if budget <= 0 {
		budget = 500
	}
	cur := tr
	attempts := 0
	try := func(cand *trace.Trace) bool {
		if attempts >= budget {
			return false
		}
		if cand.Validate() != nil {
			return false
		}
		attempts++
		if fails(cand) {
			cur = cand
			return true
		}
		return false
	}

	for progress := true; progress && attempts < budget; {
		progress = false

		// Drop whole threads, preferring the largest cut first.
		for i := 0; i < len(cur.Threads); {
			if len(cur.Threads) == 1 {
				break
			}
			if try(dropThread(cur, i)) {
				progress = true
				continue // same index now names the next thread
			}
			i++
		}

		// Delta-debug each thread's record stream.
		for ti := 0; ti < len(cur.Threads); ti++ {
			for size := len(cur.Threads[ti].Records) / 2; size >= 1; size /= 2 {
				for start := 0; start+size <= len(cur.Threads[ti].Records); {
					if try(dropRecords(cur, ti, start, size)) {
						progress = true
						continue // records shifted into place; retry same start
					}
					start += size
				}
			}
		}

		// Strip payloads: memory accesses, then lock ops.
		for ti := 0; ti < len(cur.Threads); ti++ {
			for ri := range cur.Threads[ti].Records {
				r := &cur.Threads[ti].Records[ri]
				if len(r.Mem) > 0 && try(stripPayload(cur, ti, ri, true)) {
					progress = true
				}
				r = &cur.Threads[ti].Records[ri]
				if len(r.Locks) > 0 && try(stripPayload(cur, ti, ri, false)) {
					progress = true
				}
			}
		}
	}
	return cur
}

// dropThread returns a copy of the trace without thread i. Surviving
// ThreadTrace values are shared, never mutated.
func dropThread(t *trace.Trace, i int) *trace.Trace {
	nt := *t
	nt.Threads = make([]*trace.ThreadTrace, 0, len(t.Threads)-1)
	nt.Threads = append(nt.Threads, t.Threads[:i]...)
	nt.Threads = append(nt.Threads, t.Threads[i+1:]...)
	return &nt
}

// dropRecords returns a copy of the trace with records [start, start+size)
// removed from thread ti.
func dropRecords(t *trace.Trace, ti, start, size int) *trace.Trace {
	src := t.Threads[ti]
	recs := make([]trace.Record, 0, len(src.Records)-size)
	recs = append(recs, src.Records[:start]...)
	recs = append(recs, src.Records[start+size:]...)
	return replaceThread(t, ti, recs)
}

// stripPayload returns a copy of the trace with thread ti's record ri
// stripped of its memory accesses (mem=true) or lock ops (mem=false).
func stripPayload(t *trace.Trace, ti, ri int, mem bool) *trace.Trace {
	src := t.Threads[ti]
	recs := make([]trace.Record, len(src.Records))
	copy(recs, src.Records)
	if mem {
		recs[ri].Mem = nil
	} else {
		recs[ri].Locks = nil
	}
	return replaceThread(t, ti, recs)
}

// replaceThread returns a copy of the trace with thread ti's records
// replaced; all other threads are shared.
func replaceThread(t *trace.Trace, ti int, recs []trace.Record) *trace.Trace {
	nt := *t
	nt.Threads = make([]*trace.ThreadTrace, len(t.Threads))
	copy(nt.Threads, t.Threads)
	nth := *t.Threads[ti]
	nth.Records = recs
	nt.Threads[ti] = &nth
	return &nt
}
