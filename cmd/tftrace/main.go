// Command tftrace is the ThreadFuser tracer front-end: it runs one of the
// bundled MIMD workloads through the tracer (the reproduction's stand-in
// for the paper's PIN tool) and writes the per-thread trace to a .tft file
// that cmd/tfanalyze and cmd/tfsim consume.
//
// Usage:
//
//	tftrace -workload other.pigz -threads 128 -o pigz.tft
//	tftrace -workload rodinia.bfs -opt O0 -o bfs-o0.tft
//	tftrace -list
package main

import (
	"flag"
	"fmt"
	"os"

	"threadfuser/internal/ir"
	"threadfuser/internal/opt"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

func main() {
	var (
		name    = flag.String("workload", "", "workload name (see -list)")
		threads = flag.Int("threads", 0, "thread count (0 = workload default; -paper uses Table I counts)")
		paper   = flag.Bool("paper", false, "use the paper's Table-I thread count")
		seed    = flag.Int64("seed", 1, "input-generation seed")
		level   = flag.String("opt", "O1", "compiler optimization level to model: O0, O1, O2 or O3")
		out     = flag.String("o", "", "output .tft path (default <workload>.tft)")
		list    = flag.Bool("list", false, "list available workloads and exit")
		disasm  = flag.Bool("disasm", false, "print the workload's (post-transform) listing instead of tracing")
		compact = flag.Bool("compact", false, "write the delta-compressed v2 trace format")
		index   = flag.Bool("index", false, "write the indexed v3 format (v2 compression plus a per-thread seek index for streaming/parallel readers)")
		quiet   = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-28s %-16s %13s %s\n", "NAME", "SUITE", "#SIMT THREADS", "DESCRIPTION")
		for _, w := range workloads.All() {
			fmt.Printf("%-28s %-16s %13d %s\n", w.Name, w.Suite, w.PaperThreads, w.Desc)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "tftrace: -workload is required (try -list)")
		os.Exit(2)
	}
	w, err := workloads.ByName(*name)
	if err != nil {
		fatal(err)
	}
	lvl, err := parseLevel(*level)
	if err != nil {
		fatal(err)
	}
	cfg := workloads.Config{Seed: *seed, Threads: *threads}
	if *paper {
		cfg.Threads = w.PaperThreads
	}
	inst, err := w.Instantiate(cfg)
	if err != nil {
		fatal(err)
	}
	if lvl != opt.O1 {
		inst = inst.WithProgram(opt.Apply(inst.Prog, lvl))
	}
	if *disasm {
		if err := ir.Disassemble(os.Stdout, inst.Prog); err != nil {
			fatal(err)
		}
		return
	}
	tr, err := inst.Trace()
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *name + ".tft"
	}
	write := trace.WriteFile
	if *compact {
		write = trace.WriteFileCompact
	}
	if *index {
		write = trace.WriteFileIndexed
	}
	if err := write(path, tr); err != nil {
		fatal(err)
	}
	if !*quiet {
		io, spin := tr.TotalSkipped()
		fmt.Printf("traced %s (%s, %d threads, %d instructions, %d skipped I/O, %d skipped spin) -> %s\n",
			w.Name, lvl, len(tr.Threads), tr.TotalInstructions(), io, spin, path)
	}
}

func parseLevel(s string) (opt.Level, error) {
	for _, l := range opt.Levels {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("tftrace: unknown optimization level %q (want O0..O3)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tftrace:", err)
	os.Exit(1)
}
