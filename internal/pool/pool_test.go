package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunsEverySubmittedTask(t *testing.T) {
	g := New(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(func() error {
			n.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestConcurrencyBounded(t *testing.T) {
	const limit = 3
	g := New(limit)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, limit)
	}
}

func TestFirstErrorRetained(t *testing.T) {
	g := New(1) // serial: submission order == execution order
	boom := errors.New("boom")
	g.Go(func() error { return nil })
	g.Go(func() error { return boom })
	g.Go(func() error { return errors.New("later") })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want first error %v", err, boom)
	}
}

func TestZeroLimitDefaultsToCores(t *testing.T) {
	g := New(0)
	done := false
	g.Go(func() error { done = true; return nil })
	if err := g.Wait(); err != nil || !done {
		t.Fatalf("Wait = %v, done = %v", err, done)
	}
}
