package simt

import (
	"math"
	"testing"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/ir"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
	"threadfuser/internal/warp"
)

// replayProgram traces a program and replays it with the given options.
func replayProgram(t *testing.T, prog *ir.Program, threads int, opts Options, args func(int, *vm.Thread)) *Result {
	t.Helper()
	p := vm.NewProcess(prog)
	tr, err := vm.TraceAll(p, threads, vm.RunConfig{}, args)
	if err != nil {
		t.Fatal(err)
	}
	graphs, err := cfg.Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	pdoms := ipdom.ComputeAll(graphs)
	warps, err := warp.Form(tr, opts.WarpSize, warp.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(tr, graphs, pdoms, warps, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// lockProgram builds: lock(lockAddrs[tid]); <body> ; unlock; tail.
// The critical section is `csLen` nops.
func lockProgram(t *testing.T, csLen int) *ir.Program {
	t.Helper()
	pb := ir.NewBuilder("locks")
	f := pb.NewFunc("worker")
	pre := f.NewBlock("pre")
	cs := f.NewBlock("cs")
	tail := f.NewBlock("tail")
	// r0 = &lockAddrs array; r1 = my lock address.
	pre.Mov(ir.Rg(ir.R(1)), ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8)).
		Jmp(cs)
	cs.Lock(ir.Rg(ir.R(1))).
		Nop(csLen).
		Unlock(ir.Rg(ir.R(1))).
		Jmp(tail)
	tail.Nop(4).Ret()
	return pb.MustBuild()
}

// lockSetup seeds per-thread lock addresses: tid -> locks[tid % distinct].
func lockSetup(p *vm.Process, threads, distinct int) func(int, *vm.Thread) {
	table := p.AllocGlobal(uint64(8 * threads))
	lockWords := p.AllocGlobal(uint64(8 * distinct))
	for i := 0; i < threads; i++ {
		p.WriteI64(table+uint64(8*i), int64(lockWords+uint64(8*(i%distinct))))
	}
	return func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(0), int64(table))
	}
}

func TestLockEmulationOffIsFree(t *testing.T) {
	prog := lockProgram(t, 6)
	p := vm.NewProcess(prog)
	args := lockSetup(p, 8, 1)
	tr, err := vm.TraceAll(p, 8, vm.RunConfig{}, args)
	if err != nil {
		t.Fatal(err)
	}
	graphs, _ := cfg.Build(tr)
	pdoms := ipdom.ComputeAll(graphs)
	warps, _ := warp.Form(tr, 8, warp.RoundRobin)
	res, err := Replay(tr, graphs, pdoms, warps, Options{WarpSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Efficiency(); math.Abs(got-1) > 1e-12 {
		t.Errorf("efficiency without emulation = %v, want 1 (convergent code)", got)
	}
	if res.Total().LockSerializations != 0 {
		t.Error("serializations counted with emulation off")
	}
}

func TestSameLockSerializes(t *testing.T) {
	// All 8 threads take the SAME lock: the critical section serializes
	// 8-way.
	const threads, cs = 8, 6
	prog := lockProgram(t, cs)
	p := vm.NewProcess(prog)
	args := lockSetup(p, threads, 1)
	tr, _ := vm.TraceAll(p, threads, vm.RunConfig{}, args)
	graphs, _ := cfg.Build(tr)
	pdoms := ipdom.ComputeAll(graphs)
	warps, _ := warp.Form(tr, threads, warp.RoundRobin)
	res, err := Replay(tr, graphs, pdoms, warps, Options{WarpSize: threads, EmulateLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Total()
	if total.LockSerializations != 1 {
		t.Errorf("serialization events = %d, want 1", total.LockSerializations)
	}
	if total.SerializedLanes != threads-1 {
		t.Errorf("serialized lanes = %d, want %d", total.SerializedLanes, threads-1)
	}
	// The cs block (lock + nops + unlock + jmp = cs+3 instrs) issues once
	// per lane instead of once total: lockstep grows by (threads-1)*(cs+3).
	resOff, _ := Replay(tr, graphs, pdoms, warps, Options{WarpSize: threads})
	wantExtra := uint64((threads - 1) * (cs + 3))
	if got := total.Lockstep - resOff.Total().Lockstep; got != wantExtra {
		t.Errorf("serialization added %d lockstep instrs, want %d", got, wantExtra)
	}
	if res.Efficiency() >= resOff.Efficiency() {
		t.Error("serialization did not reduce efficiency")
	}
}

func TestDistinctLocksStayParallel(t *testing.T) {
	// Every thread takes a different lock: no serialization at all.
	const threads = 8
	prog := lockProgram(t, 6)
	p := vm.NewProcess(prog)
	args := lockSetup(p, threads, threads)
	tr, _ := vm.TraceAll(p, threads, vm.RunConfig{}, args)
	graphs, _ := cfg.Build(tr)
	pdoms := ipdom.ComputeAll(graphs)
	warps, _ := warp.Form(tr, threads, warp.RoundRobin)
	res, err := Replay(tr, graphs, pdoms, warps, Options{WarpSize: threads, EmulateLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total().LockSerializations != 0 {
		t.Errorf("distinct locks serialized: %+v", res.Total())
	}
	if got := res.Efficiency(); math.Abs(got-1) > 1e-12 {
		t.Errorf("efficiency = %v, want 1", got)
	}
}

func TestLockRoundsRunContendersInParallel(t *testing.T) {
	// 8 threads over 4 locks (2 contenders each): the round schedule runs
	// the 4 first-holders together, then the 4 second-holders — the
	// critical section costs 2x, not 8x.
	const threads, cs = 8, 6
	prog := lockProgram(t, cs)
	p := vm.NewProcess(prog)
	args := lockSetup(p, threads, 4)
	tr, _ := vm.TraceAll(p, threads, vm.RunConfig{}, args)
	graphs, _ := cfg.Build(tr)
	pdoms := ipdom.ComputeAll(graphs)
	warps, _ := warp.Form(tr, threads, warp.RoundRobin)
	on, err := Replay(tr, graphs, pdoms, warps, Options{WarpSize: threads, EmulateLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	off, _ := Replay(tr, graphs, pdoms, warps, Options{WarpSize: threads})
	wantExtra := uint64(cs + 3) // one extra round of the cs block
	if got := on.Total().Lockstep - off.Total().Lockstep; got != wantExtra {
		t.Errorf("4-lock/2-contender schedule added %d lockstep instrs, want %d", got, wantExtra)
	}
	if on.Total().SerializedLanes != 4 {
		t.Errorf("serialized lanes = %d, want 4 (one per contended lock)", on.Total().SerializedLanes)
	}
}

func TestReplayRejectsBadWarpSize(t *testing.T) {
	tr := &trace.Trace{Program: "x"}
	if _, err := Replay(tr, nil, nil, nil, Options{WarpSize: 0}); err == nil {
		t.Error("warp size 0 accepted")
	}
	if _, err := Replay(tr, nil, nil, nil, Options{WarpSize: 65}); err == nil {
		t.Error("warp size 65 accepted")
	}
}

func TestResultAggregation(t *testing.T) {
	r := &Result{WarpSize: 4, Warps: []WarpMetrics{
		{Lockstep: 10, ThreadInstrs: 40}, // eff 1.0
		{Lockstep: 10, ThreadInstrs: 20}, // eff 0.5
	}}
	if got := r.Efficiency(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("mean efficiency = %v, want 0.75", got)
	}
	if got := r.WeightedEfficiency(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("weighted efficiency = %v, want 0.75 (equal weights)", got)
	}
	r.Warps[1].Lockstep = 30 // eff 20/120
	wantW := 60.0 / (40 * 4)
	if got := r.WeightedEfficiency(); math.Abs(got-wantW) > 1e-12 {
		t.Errorf("weighted efficiency = %v, want %v", got, wantW)
	}
	if got := r.Efficiency(); math.Abs(got-(1.0+20.0/120)/2) > 1e-12 {
		t.Errorf("mean efficiency = %v", got)
	}
}

func TestTracedFraction(t *testing.T) {
	r := &Result{WarpSize: 4, Warps: []WarpMetrics{{Lockstep: 10, ThreadInstrs: 90}}, SkippedIO: 7, SkippedSpin: 3}
	if got := r.TracedFraction(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("traced fraction = %v, want 0.9", got)
	}
	empty := &Result{WarpSize: 4}
	if got := empty.TracedFraction(); got != 1 {
		t.Errorf("empty traced fraction = %v, want 1", got)
	}
}

func TestFuncMetricsEfficiency(t *testing.T) {
	fm := &FuncMetrics{Lockstep: 10, ThreadInstrs: 25}
	if got := fm.Efficiency(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("func efficiency = %v, want 0.5", got)
	}
	if got := (&FuncMetrics{}).Efficiency(5); got != 0 {
		t.Errorf("empty func efficiency = %v, want 0", got)
	}
}

func TestListenerSeesAllBlocks(t *testing.T) {
	prog := lockProgram(t, 2)
	counter := &countingListener{}
	p := vm.NewProcess(prog)
	args := lockSetup(p, 4, 4)
	tr, _ := vm.TraceAll(p, 4, vm.RunConfig{}, args)
	graphs, _ := cfg.Build(tr)
	pdoms := ipdom.ComputeAll(graphs)
	warps, _ := warp.Form(tr, 4, warp.RoundRobin)
	res, err := Replay(tr, graphs, pdoms, warps, Options{WarpSize: 4, Listener: counter})
	if err != nil {
		t.Fatal(err)
	}
	// Each listener call is one lockstep block execution; the per-block
	// instruction sum must equal the lockstep total.
	if counter.instrs != res.Total().Lockstep {
		t.Errorf("listener saw %d lockstep instrs, metrics say %d", counter.instrs, res.Total().Lockstep)
	}
	if counter.calls == 0 {
		t.Error("listener never called")
	}
}

type countingListener struct {
	calls  int
	instrs uint64
}

func (c *countingListener) OnBlock(be *BlockExec) {
	c.calls++
	c.instrs += be.Records[0].N
}

func TestLockReconvergencePolicies(t *testing.T) {
	// With the release policy, serialization covers only the critical
	// section; with function-exit it covers the rest of the function, so
	// lockstep issues must be strictly higher and efficiency lower.
	const threads, cs = 8, 6
	prog := lockProgram(t, cs)
	p := vm.NewProcess(prog)
	args := lockSetup(p, threads, 1)
	tr, _ := vm.TraceAll(p, threads, vm.RunConfig{}, args)
	graphs, _ := cfg.Build(tr)
	pdoms := ipdom.ComputeAll(graphs)
	warps, _ := warp.Form(tr, threads, warp.RoundRobin)

	release, err := Replay(tr, graphs, pdoms, warps, Options{
		WarpSize: threads, EmulateLocks: true, LockReconvergence: ReconvergeAtRelease,
	})
	if err != nil {
		t.Fatal(err)
	}
	exit, err := Replay(tr, graphs, pdoms, warps, Options{
		WarpSize: threads, EmulateLocks: true, LockReconvergence: ReconvergeAtFunctionExit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exit.Total().Lockstep <= release.Total().Lockstep {
		t.Errorf("function-exit policy lockstep %d not above release policy %d",
			exit.Total().Lockstep, release.Total().Lockstep)
	}
	if exit.Efficiency() >= release.Efficiency() {
		t.Errorf("function-exit efficiency %v not below release %v",
			exit.Efficiency(), release.Efficiency())
	}
	// Function-exit serializes the cs block AND the tail block per lane:
	// extra = (threads-1) * (cs+3 + tail(5)).
	wantExtra := uint64((threads - 1) * (cs + 3 + 5))
	off, _ := Replay(tr, graphs, pdoms, warps, Options{WarpSize: threads})
	if got := exit.Total().Lockstep - off.Total().Lockstep; got != wantExtra {
		t.Errorf("function-exit added %d lockstep instrs, want %d", got, wantExtra)
	}
}
