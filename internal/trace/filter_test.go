package trace

import (
	"testing"
)

// filterFixture: entry "main" calls "lib" (which calls "leaf") then "hot".
func filterFixture() *Trace {
	return &Trace{
		Program: "p",
		Entry:   0,
		Funcs: []FuncInfo{
			{Name: "main", Blocks: []BlockInfo{{NInstr: 2}, {NInstr: 2}, {NInstr: 1}}},
			{Name: "lib", Blocks: []BlockInfo{{NInstr: 5}}},
			{Name: "leaf", Blocks: []BlockInfo{{NInstr: 3}}},
			{Name: "hot", Blocks: []BlockInfo{{NInstr: 7}}},
		},
		Threads: []*ThreadTrace{{TID: 0, Records: []Record{
			{Kind: KindCall, Callee: 0},
			{Kind: KindBBL, Func: 0, Block: 0, N: 2},
			{Kind: KindCall, Callee: 1},
			{Kind: KindBBL, Func: 1, Block: 0, N: 5},
			{Kind: KindCall, Callee: 2},
			{Kind: KindBBL, Func: 2, Block: 0, N: 3},
			{Kind: KindRet},
			{Kind: KindRet},
			{Kind: KindBBL, Func: 0, Block: 1, N: 2},
			{Kind: KindCall, Callee: 3},
			{Kind: KindBBL, Func: 3, Block: 0, N: 7},
			{Kind: KindRet},
			{Kind: KindBBL, Func: 0, Block: 2, N: 1},
			{Kind: KindRet},
		}}},
	}
}

func TestExcludeFunctionsDropsSubtree(t *testing.T) {
	tr := filterFixture()
	out, err := ExcludeFunctions(tr, "lib")
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("filtered trace invalid: %v", err)
	}
	// lib (5) + leaf (3) dropped and accounted as skipped.
	if got := out.TotalInstructions(); got != 12 {
		t.Errorf("instructions = %d, want 12 (2+2+7+1)", got)
	}
	io, _ := out.TotalSkipped()
	if io != 8 {
		t.Errorf("skipped = %d, want 8 (lib subtree)", io)
	}
	// No record of lib or leaf survives.
	for _, r := range out.Threads[0].Records {
		if r.Kind == KindBBL && (r.Func == 1 || r.Func == 2) {
			t.Errorf("excluded function's block survived: %+v", r)
		}
		if r.Kind == KindCall && (r.Callee == 1 || r.Callee == 2) {
			t.Errorf("excluded call survived: %+v", r)
		}
	}
}

func TestExcludeUnknownFunctionErrors(t *testing.T) {
	if _, err := ExcludeFunctions(filterFixture(), "nope"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestExcludeEntryEmptiesThread(t *testing.T) {
	out, err := ExcludeFunctions(filterFixture(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TotalInstructions(); got != 0 {
		t.Errorf("instructions = %d, want 0", got)
	}
	io, _ := out.TotalSkipped()
	if io != 20 {
		t.Errorf("skipped = %d, want 20 (everything)", io)
	}
}

func TestOnlyFunctionsKeepsRegionWithCallees(t *testing.T) {
	out, err := OnlyFunctions(filterFixture(), "lib")
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("filtered trace invalid: %v", err)
	}
	// Only lib (5) and its callee leaf (3) survive.
	if got := out.TotalInstructions(); got != 8 {
		t.Errorf("instructions = %d, want 8", got)
	}
	io, _ := out.TotalSkipped()
	if io != 12 {
		t.Errorf("skipped = %d, want 12 (main + hot)", io)
	}
	for _, r := range out.Threads[0].Records {
		if r.Kind == KindBBL && (r.Func == 0 || r.Func == 3) {
			t.Errorf("unkept block survived: %+v", r)
		}
	}
}

func TestOnlyFunctionsMultipleRegions(t *testing.T) {
	out, err := OnlyFunctions(filterFixture(), "leaf", "hot")
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TotalInstructions(); got != 10 { // leaf 3 + hot 7
		t.Errorf("instructions = %d, want 10", got)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestFiltersPreserveOriginal(t *testing.T) {
	tr := filterFixture()
	before := tr.TotalInstructions()
	if _, err := ExcludeFunctions(tr, "lib"); err != nil {
		t.Fatal(err)
	}
	if _, err := OnlyFunctions(tr, "hot"); err != nil {
		t.Fatal(err)
	}
	if tr.TotalInstructions() != before || len(tr.Threads[0].Records) != 14 {
		t.Error("filters mutated the input trace")
	}
}
