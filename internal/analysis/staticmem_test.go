package analysis_test

import (
	"bytes"
	"testing"

	"threadfuser/internal/analysis"
	"threadfuser/internal/workloads"
)

// TestStaticMemSoundOnAllWorkloads is the golden static-vs-dynamic memory
// agreement test: over every bundled workload the static memory oracle's
// per-site transaction bounds and segment claims must dominate what the
// replay observed (zero soundness findings), and the findings must be
// byte-deterministic across runs.
func TestStaticMemSoundOnAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		inst, err := w.Instantiate(workloads.Config{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		tr, err := inst.Trace()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		var prev []byte
		for round := 0; round < 2; round++ {
			rep, err := analysis.Run(tr, analysis.Options{Prog: inst.Prog, Passes: []string{"staticmem"}})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if n := countPass(rep, "staticmem", analysis.SevError); n != 0 {
				rep.Render(testWriter{t})
				t.Fatalf("%s: static memory oracle reported %d soundness error(s)", w.Name, n)
			}
			if !hasMessage(rep, "staticmem", "static memory oracle:") {
				t.Fatalf("%s: missing staticmem summary finding", w.Name)
			}
			var buf bytes.Buffer
			rep.Render(&buf)
			if round > 0 && !bytes.Equal(prev, buf.Bytes()) {
				t.Fatalf("%s: staticmem findings not byte-deterministic", w.Name)
			}
			prev = buf.Bytes()
		}
	}
}

// TestStaticMemPassRejectsMismatchedProgram mirrors the other static pass
// guards: a program that does not describe the traced binary must be refused
// with a warning, not compared.
func TestStaticMemPassRejectsMismatchedProgram(t *testing.T) {
	_, tr := instanceFor(t, "vectoradd")
	other, _ := instanceFor(t, "seededrace")
	rep, err := analysis.Run(tr, analysis.Options{Prog: other.Prog, Passes: []string{"staticmem"}})
	if err != nil {
		t.Fatal(err)
	}
	if !hasMessage(rep, "staticmem", "does not match the trace symbol table") {
		rep.Render(testWriter{t})
		t.Fatal("mismatched program accepted for staticmem comparison")
	}
}
