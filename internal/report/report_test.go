package report

import (
	"strings"
	"testing"
)

var testScale = Scale{Seed: 1}

func TestFig1(t *testing.T) {
	d, err := Fig1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 36 {
		t.Fatalf("figure 1 has %d rows, want 36", len(d.Rows))
	}
	for _, r := range d.Rows {
		if r.Eff8 < r.Eff16-1e-9 || r.Eff16 < r.Eff32-1e-9 {
			t.Errorf("%s: efficiency not non-increasing with warp size: %v %v %v",
				r.Workload, r.Eff8, r.Eff16, r.Eff32)
		}
	}
	out := d.Render()
	if !strings.Contains(out, "other.pigz") || !strings.Contains(out, "eff@32") {
		t.Error("render missing expected content")
	}
}

func TestTable1(t *testing.T) {
	d := Table1()
	if len(d.Rows) != 36 {
		t.Fatalf("Table I has %d rows, want 36", len(d.Rows))
	}
	twins := 0
	for _, r := range d.Rows {
		if r.GPUTwin {
			twins++
		}
		if r.SIMTThreads <= 0 {
			t.Errorf("%s: non-positive thread count", r.Workload)
		}
	}
	if twins != 11 {
		t.Errorf("%d GPU twins, want 11", twins)
	}
}

func TestFig5aCorrelationShape(t *testing.T) {
	d, err := Fig5a(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 44 {
		t.Fatalf("%d samples, want 44 (11 workloads x 4 levels)", len(d.Points))
	}
	byLevel := map[string]Fig5LevelStats{}
	for _, l := range d.Levels {
		byLevel[l.Level.String()] = l
	}
	// Paper: perfect 1.0 correlation at O0/O1; O1 the closest (3% MAE);
	// O3 overestimates.
	if byLevel["O0"].Pearson < 0.97 || byLevel["O1"].Pearson < 0.97 {
		t.Errorf("O0/O1 correlation %.3f/%.3f, want ~1.0",
			byLevel["O0"].Pearson, byLevel["O1"].Pearson)
	}
	if byLevel["O1"].MAE > 0.06 {
		t.Errorf("O1 efficiency MAE %.3f, want small (paper: 3%%)", byLevel["O1"].MAE)
	}
	if byLevel["O3"].MAE < byLevel["O1"].MAE {
		t.Errorf("O3 MAE %.3f below O1's %.3f; aggressive optimization should hurt",
			byLevel["O3"].MAE, byLevel["O1"].MAE)
	}
	// Direction: O3 predictions overestimate on average.
	var over, under int
	for _, p := range d.Points {
		if p.Level.String() != "O3" {
			continue
		}
		if p.Predicted > p.Hardware+1e-9 {
			over++
		} else if p.Predicted < p.Hardware-1e-9 {
			under++
		}
	}
	if over <= under {
		t.Errorf("O3 overestimates on %d workloads, underestimates on %d; want mostly over", over, under)
	}
}

func TestFig5bMemoryCorrelation(t *testing.T) {
	d, err := Fig5b(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byLevel := map[string]Fig5LevelStats{}
	for _, l := range d.Levels {
		byLevel[l.Level.String()] = l
	}
	// Paper: 0.99/0.98/0.98/0.96 correlations; O0 inflates transactions.
	for _, lvl := range []string{"O0", "O1", "O2", "O3"} {
		if byLevel[lvl].Pearson < 0.90 {
			t.Errorf("%s memory correlation %.3f, want > 0.90", lvl, byLevel[lvl].Pearson)
		}
	}
	if byLevel["O0"].MAE <= byLevel["O1"].MAE {
		t.Errorf("O0 memory MAE %.3f not above O1's %.3f (reload inflation missing)",
			byLevel["O0"].MAE, byLevel["O1"].MAE)
	}
}

func TestFig6SpeedupProjection(t *testing.T) {
	d, err := Fig6(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 36 {
		t.Fatalf("%d rows, want 36", len(d.Rows))
	}
	// Paper: 0.97 speedup correlation between the ThreadFuser and native
	// trace paths. At reduced scale we accept anything strongly positive.
	if d.SpeedupCorrelation < 0.8 {
		t.Errorf("speedup correlation %.3f, want > 0.8 (paper: 0.97)", d.SpeedupCorrelation)
	}
	for _, r := range d.Rows {
		if r.TFSpeedup <= 0 {
			t.Errorf("%s: non-positive speedup", r.Workload)
		}
	}
}

func TestFig7CaseStudy(t *testing.T) {
	d, err := Fig7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if d.OriginalEff > 0.15 {
		t.Errorf("original efficiency %.3f, want single digits (paper: 7%%)", d.OriginalEff)
	}
	if d.FixedEff < 0.8 {
		t.Errorf("fixed efficiency %.3f, want ~0.9 (paper: 90%%)", d.FixedEff)
	}
	if d.GetpointShare < 0.3 {
		t.Errorf("getpoint share %.3f, want dominant (paper: ~half)", d.GetpointShare)
	}
	if d.GetpointEff > 0.15 {
		t.Errorf("getpoint efficiency %.3f, want ~6%%", d.GetpointEff)
	}
}

func TestFig8TracedFraction(t *testing.T) {
	d, err := Fig8(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 13 {
		t.Fatalf("%d microservices, want 13", len(d.Rows))
	}
	if d.GeoMean < 0.80 || d.GeoMean > 0.98 {
		t.Errorf("traced geomean %.3f, want ~0.90 (paper)", d.GeoMean)
	}
	for _, r := range d.Rows {
		if r.TracedPct <= 50 || r.TracedPct > 100 {
			t.Errorf("%s: traced %.1f%% out of plausible range", r.Workload, r.TracedPct)
		}
	}
}

func TestFig9LockEmulation(t *testing.T) {
	d, err := Fig9(testScale)
	if err != nil {
		t.Fatal(err)
	}
	sawDrop := false
	for _, r := range d.Rows {
		if r.EffEmulated > r.EffFineGrain+1e-9 {
			t.Errorf("%s: lock emulation increased efficiency %.3f -> %.3f",
				r.Workload, r.EffFineGrain, r.EffEmulated)
		}
		if r.EffFineGrain-r.EffEmulated > 0.001 {
			sawDrop = true
		}
		// Paper: the decline is "not as substantial" thanks to fine-grain
		// locking — emulation must not collapse efficiency to zero.
		if r.EffFineGrain > 0.3 && r.EffEmulated < r.EffFineGrain/3 {
			t.Errorf("%s: emulation collapsed efficiency %.3f -> %.3f; fine-grain locking should bound the damage",
				r.Workload, r.EffFineGrain, r.EffEmulated)
		}
	}
	if !sawDrop {
		t.Error("no workload showed any lock-serialization cost")
	}
}

func TestFig10MemoryDivergence(t *testing.T) {
	d, err := Fig10(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Rows {
		if r.HeapTxPer < 1 {
			t.Errorf("%s: heap tx/instr %.2f below 1", r.Workload, r.HeapTxPer)
		}
		if r.HeapTxPer > 33 || r.StackTxPer > 33 {
			t.Errorf("%s: tx/instr beyond one per lane: heap %.2f stack %.2f",
				r.Workload, r.HeapTxPer, r.StackTxPer)
		}
	}
}

func TestTable2(t *testing.T) {
	d, err := Table2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	out := d.Render()
	for _, want := range []string{"XAPP", "speedup projection corr", "dynamic CFG"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II render missing %q", want)
		}
	}
	if d.SpeedupCorr == 0 {
		t.Error("speedup correlation not populated")
	}
}

func TestExt1OccupancyShapes(t *testing.T) {
	d, err := Ext1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Ext1Row{}
	for _, r := range d.Rows {
		byName[r.Workload] = r
	}
	nb := byName["paropoly.nbody"]
	if nb.FullPct < 95 {
		t.Errorf("nbody full-warp fraction %.1f%%, want ~100%%", nb.FullPct)
	}
	hd := byName["usuite.hdsearch.mid"]
	if hd.SinglePct < 20 {
		t.Errorf("hdsearch.mid single-lane fraction %.1f%%, want a heavy serialized tail", hd.SinglePct)
	}
	if hd.MedianLanes >= nb.MedianLanes {
		t.Errorf("median lanes: hdsearch %d not below nbody %d", hd.MedianLanes, nb.MedianLanes)
	}
}

func TestExt2Scaling(t *testing.T) {
	d, err := Ext2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SMCounts) == 0 || len(d.Rows) == 0 {
		t.Fatal("empty scaling study")
	}
	for _, r := range d.Rows {
		first := r.Cycles[d.SMCounts[0]]
		last := r.Cycles[d.SMCounts[len(d.SMCounts)-1]]
		if first == 0 || last == 0 {
			t.Fatalf("%s: zero cycles", r.Workload)
		}
		// Scaling may saturate but must never be dramatically negative.
		if float64(last) > 1.25*float64(first) {
			t.Errorf("%s: %d SMs (%d cycles) much slower than 1 SM (%d)",
				r.Workload, d.SMCounts[len(d.SMCounts)-1], last, first)
		}
	}
}
