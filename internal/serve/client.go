package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"threadfuser/internal/analysis"
	"threadfuser/internal/check"
	"threadfuser/internal/core"
)

// Client is a tfserve HTTP client: the CLIs' -server mode speaks through
// it, and the concurrency suite uses it to drive test servers.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8787".
	BaseURL string
	// Tenant, if set, is sent as the X-Tf-Tenant identity.
	Tenant string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

// RemoteError is a non-2xx response from the service, carrying the
// server's decoded error message.
type RemoteError struct {
	Status  int
	Message string
	// RetryAfter echoes the Retry-After header on shedding responses
	// (seconds; 0 when absent).
	RetryAfter int
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, q url.Values, body io.Reader, out any) error {
	u := strings.TrimRight(c.BaseURL, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading server response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		re := &RemoteError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
		var msg struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &msg) == nil && msg.Error != "" {
			re.Message = msg.Error
		}
		fmt.Sscanf(resp.Header.Get("Retry-After"), "%d", &re.RetryAfter)
		return re
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("decoding server response: %w", err)
	}
	return nil
}

// Analyze uploads a .tft stream to POST /v1/analyze. Recognized params:
// warp, formation, locks.
func (c *Client) Analyze(ctx context.Context, tft io.Reader, q url.Values) (*core.Report, error) {
	var rep core.Report
	if err := c.do(ctx, http.MethodPost, "/v1/analyze", q, tft, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Lint uploads a .tft stream to POST /v1/lint. Recognized params: warp,
// formation, min, passes.
func (c *Client) Lint(ctx context.Context, tft io.Reader, q url.Values) (*analysis.Report, error) {
	var rep analysis.Report
	if err := c.do(ctx, http.MethodPost, "/v1/lint", q, tft, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Check uploads a .tft stream to POST /v1/check. Recognized params: warps,
// parallel, formations, props, name.
func (c *Client) Check(ctx context.Context, tft io.Reader, q url.Values) (*check.Report, error) {
	var rep check.Report
	if err := c.do(ctx, http.MethodPost, "/v1/check", q, tft, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Static requests GET /v1/static for a bundled workload. Recognized
// params: workload, mode, opt, threads, seed, budget.
func (c *Client) Static(ctx context.Context, q url.Values) (*StaticReport, error) {
	var rep StaticReport
	if err := c.do(ctx, http.MethodGet, "/v1/static", q, nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, nil)
}
