package threadfuser

import (
	"math"
	"testing"
)

func TestFacadeAnalyzeWorkload(t *testing.T) {
	w, err := Workload("paropoly.nbody")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeWorkload(w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarpSize != 32 {
		t.Errorf("default warp size = %d, want 32", rep.WarpSize)
	}
	if rep.Efficiency < 0.9 {
		t.Errorf("nbody efficiency %.3f, want near 1", rep.Efficiency)
	}
}

func TestFacadeUnknownWorkload(t *testing.T) {
	if _, err := Workload("no-such-workload"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestFacadeCatalog(t *testing.T) {
	all := Workloads()
	if len(all) < 36 {
		t.Fatalf("catalog has %d workloads, want >= 36", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestFacadeTraceThenAnalyze(t *testing.T) {
	w, err := Workload("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Seed: 2, WarpSize: 16}
	tr, err := Trace(w, o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := AnalyzeWorkload(w, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Efficiency != combined.Efficiency || rep.HeapTx != combined.HeapTx {
		t.Error("two-step and one-step paths disagree")
	}
}

func TestFacadeProject(t *testing.T) {
	w, err := Workload("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Project(w, Options{Seed: 1, Threads: 128})
	if err != nil {
		t.Fatal(err)
	}
	if p.GPUCycles == 0 || p.CPUCycles == 0 {
		t.Fatalf("degenerate projection %+v", p)
	}
	if math.Abs(p.Speedup-float64(p.CPUCycles)/float64(p.GPUCycles)) > 1e-9 {
		t.Error("speedup inconsistent with cycle counts")
	}
}

func TestFacadeBatchingOptions(t *testing.T) {
	w, err := Workload("rodinia.sc")
	if err != nil {
		t.Fatal(err)
	}
	base, err := AnalyzeWorkload(w, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	strided, err := AnalyzeWorkload(w, Options{Seed: 3, Strided: true})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := AnalyzeWorkload(w, Options{Seed: 3, GreedyBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []*Report{base, strided, greedy} {
		if rep.Efficiency <= 0 || rep.Efficiency > 1 {
			t.Errorf("efficiency %v out of range", rep.Efficiency)
		}
	}
}

func TestFacadeLint(t *testing.T) {
	clean, err := Workload("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := LintWorkload(clean, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// vectoradd is clean: the only findings allowed are the static oracles'
	// informational summary/precision notes.
	for _, f := range rep.Findings {
		if (f.Pass != "static" && f.Pass != "staticlock" && f.Pass != "staticmem") || f.Severity > SevInfo {
			t.Errorf("vectoradd: unexpected finding [%s/%v] %s", f.Pass, f.Severity, f.Message)
		}
	}

	dirty, err := Workload("seededrace")
	if err != nil {
		t.Fatal(err)
	}
	rep, err = LintWorkload(dirty, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountAtLeast(SevError) == 0 {
		t.Error("seededrace: expected at least one error-severity finding")
	}
	raced := false
	for _, f := range rep.Findings {
		if f.Pass == "lockset" && f.Severity == SevError {
			raced = true
		}
	}
	if !raced {
		t.Error("seededrace: the planted data race was not reported")
	}
}

func TestFacadeStaticLock(t *testing.T) {
	w, err := Workload("seededcycle")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := StaticLockWorkload(w, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CycleCandidates != 1 {
		t.Errorf("seededcycle: %d static cycle candidate(s), want 1", rep.CycleCandidates)
	}

	spin, err := Workload("seededspin")
	if err != nil {
		t.Fatal(err)
	}
	rep, err = StaticLockWorkload(spin, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DivergentAcquires != 1 {
		t.Errorf("seededspin: %d divergent acquire(s), want 1", rep.DivergentAcquires)
	}
	if rep.RaceCandidates != 0 {
		t.Errorf("seededspin: %d race candidate(s), want 0 (the counter is lock-protected)", rep.RaceCandidates)
	}
}

func TestFacadeCheck(t *testing.T) {
	w, err := Workload("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckWorkload(w, Options{Threads: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, v := range rep.Violations {
			t.Errorf("vectoradd: %s", v)
		}
	}
	if rep.Checks == 0 {
		t.Error("verification ran zero assertions")
	}

	// Narrowing the matrix to one warp width still verifies it.
	narrow, err := CheckWorkload(w, Options{Threads: 8, Seed: 1, WarpSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !narrow.OK() {
		t.Errorf("warp-16 matrix: %v", narrow.Violations)
	}
}

func TestFacadeCache(t *testing.T) {
	w, err := Workload("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	cache := OpenCache(t.TempDir())
	o := Options{Threads: 8, Seed: 1, WarpSize: 8}.WithCache(cache)
	tr, err := Trace(w, o)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	if first.Efficiency != second.Efficiency || first.TotalInstrs != second.TotalInstrs {
		t.Errorf("cached analysis differs: %+v vs %+v", first, second)
	}
	// Uncached analysis agrees with both.
	plain, err := Analyze(tr, Options{Threads: 8, Seed: 1, WarpSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Efficiency != second.Efficiency {
		t.Errorf("cache changed the result: %v vs %v", plain.Efficiency, second.Efficiency)
	}
	// The cache also threads through the lint and check paths.
	if _, err := Lint(tr, o); err != nil {
		t.Fatal(err)
	}
	if rep, err := Check("vectoradd", tr, o); err != nil || !rep.OK() {
		t.Fatalf("cached check: err=%v rep=%+v", err, rep)
	}
}
