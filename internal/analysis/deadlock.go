package analysis

import (
	"fmt"
	"sort"
	"strings"

	"threadfuser/internal/trace"
)

// deadlockPass builds the program's lock-order graph — an edge a→b whenever
// some thread acquired lock b while holding lock a — and reports its cycles.
// The locks pass already flags two-lock inversions pairwise; this pass finds
// the general case (cycles of any length across any set of threads), the
// classic deadlock certificate the trace's non-blocking locks hide. It is
// the lock-order complement to the Eraser-style lockset race detector.
type deadlockPass struct{}

func (deadlockPass) ID() string { return "deadlock" }
func (deadlockPass) Desc() string {
	return "lock-order graph cycles: acquisition orders that could deadlock under blocking mutexes"
}

func (deadlockPass) Run(ctx *Context) error {
	t := ctx.Trace

	// Edge set of the lock-order graph, with the threads that created each
	// edge (for attribution in the finding).
	type edge struct{ from, to uint64 }
	edges := map[edge]map[int]bool{}
	nodes := map[uint64]bool{}
	for _, th := range t.Threads {
		held := map[uint64]int{} // lock word -> recursion depth
		for ri := range th.Records {
			r := &th.Records[ri]
			if r.Kind != trace.KindBBL {
				continue
			}
			for li := range r.Locks {
				l := &r.Locks[li]
				if l.Release {
					if d := held[l.Addr]; d > 1 {
						held[l.Addr] = d - 1
					} else {
						delete(held, l.Addr)
					}
					continue
				}
				if held[l.Addr] > 0 {
					held[l.Addr]++ // recursive; no new order edge
					continue
				}
				for other := range held {
					e := edge{other, l.Addr}
					if edges[e] == nil {
						edges[e] = map[int]bool{}
						nodes[other] = true
						nodes[l.Addr] = true
					}
					edges[e][th.TID] = true
				}
				held[l.Addr] = 1
			}
		}
	}
	if len(edges) == 0 {
		return nil
	}

	// Tarjan over the lock-order graph; every SCC with ≥2 locks certifies a
	// set of acquisition orders that can interleave into a deadlock.
	ids := make([]uint64, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	idx := make(map[uint64]int, len(ids))
	for i, n := range ids {
		idx[n] = i
	}
	succs := make([][]int, len(ids))
	for e := range edges {
		succs[idx[e.from]] = append(succs[idx[e.from]], idx[e.to])
	}
	for i := range succs {
		sort.Ints(succs[i])
	}

	sccs := tarjanSCCs(succs)

	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Ints(scc)
		inSCC := make(map[int]bool, len(scc))
		for _, v := range scc {
			inSCC[v] = true
		}
		// Canonical cycle path: from the smallest lock word, repeatedly step
		// to the smallest in-SCC successor not yet visited (closing back to
		// the start when no fresh node remains). Deterministic and readable;
		// it need not visit the whole SCC to certify the cycle.
		path := []int{scc[0]}
		visited := map[int]bool{scc[0]: true}
		for {
			cur := path[len(path)-1]
			next := -1
			for _, s := range succs[cur] {
				if inSCC[s] && !visited[s] {
					next = s
					break
				}
			}
			if next < 0 {
				break
			}
			visited[next] = true
			path = append(path, next)
		}
		words := make([]string, 0, len(path)+1)
		threads := map[int]bool{}
		for i, v := range path {
			words = append(words, fmt.Sprintf("0x%x", ids[v]))
			to := path[0]
			if i+1 < len(path) {
				to = path[i+1]
			}
			for tid := range edges[edge{ids[v], ids[to]}] {
				threads[tid] = true
			}
		}
		words = append(words, words[0])

		f := finding("deadlock", SevWarning)
		f.Addr = ids[scc[0]]
		f.Threads = sortedInts(threads)
		f.Message = fmt.Sprintf("lock-order cycle over %d lock(s): %s (threads %s; would deadlock under blocking mutexes)",
			len(scc), strings.Join(words, " -> "), intsCSV(f.Threads))
		f.Details = map[string]string{"locks": fmt.Sprintf("%d", len(scc))}
		ctx.add(f)
	}
	return nil
}

// tarjanSCCs returns the strongly connected components of a graph given as
// sorted adjacency lists, iteratively (traces can hold many locks).
// Components come out in an order derived from the algorithm; callers
// needing determinism across runs get it because the input ordering is
// deterministic.
func tarjanSCCs(succs [][]int) [][]int {
	n := len(succs)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var sccStack []int
	var sccs [][]int
	next := 0

	type frame struct{ v, si int }
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		callStack := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		sccStack = append(sccStack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.v
			if fr.si < len(succs[v]) {
				w := succs[v][fr.si]
				fr.si++
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
