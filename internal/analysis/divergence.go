package analysis

import (
	"fmt"
	"sort"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/pool"
	"threadfuser/internal/trace"
)

// divergencePass ranks the branches whose divergent regions waste the most
// issue bandwidth before their IPDOM reconvergence point, and flags
// DARM-style meldable diamonds: two-way branches whose arms have similar
// block and instruction profiles, which DARM (Saumya et al.) shows can be
// melded into predicated straight-line code to recover SIMT efficiency.
type divergencePass struct{}

func (divergencePass) ID() string { return "divergence" }
func (divergencePass) Desc() string {
	return "divergent regions ranked by issue slots lost before IPDOM reconvergence; meldable diamonds (DARM)"
}

// Reporting thresholds: the share of the program's total issue slots a
// region must waste to be worth a finding at each severity.
const (
	divInfoShare = 0.02
	divWarnShare = 0.10
	// darmSimilarity is the minimum static-instruction similarity (smaller
	// arm over larger arm) for two branch arms to count as meldable.
	darmSimilarity = 0.75
	// darmMaxArmBlocks bounds the arm size; melding pays off for compact
	// diamonds, not whole subgraphs.
	darmMaxArmBlocks = 4
)

func (divergencePass) Run(ctx *Context) error {
	rep, err := ctx.Report(false)
	if err != nil {
		return err
	}
	warpSize := uint64(ctx.Opts.WarpSize)
	totalSlots := rep.LockstepInstrs * warpSize
	if totalSlots == 0 {
		return nil
	}

	// diverged records the branch sites that split warps at runtime; the
	// DARM check only flags diamonds the replay actually diverged at.
	type branchKey struct {
		fn    uint32
		block int32
	}
	diverged := make(map[branchKey]bool, len(rep.Branches))

	for _, br := range rep.Branches {
		fn, ok := ctx.funcID(br.Func)
		if !ok || br.Divergences == 0 {
			continue
		}
		diverged[branchKey{fn, int32(br.Block)}] = true
		share := float64(br.LostSlots) / float64(totalSlots)
		if share < divInfoShare {
			continue
		}
		sev := SevInfo
		if share >= divWarnShare {
			sev = SevWarning
		}
		f := finding("divergence", sev)
		f.Function = br.Func
		f.Block = int32(br.Block)
		rpc := ctx.PDoms[fn].IPDom(int32(br.Block))
		f.Message = fmt.Sprintf("divergent region loses %.1f%% of the program's issue slots (%d of %d) before reconverging at b%d; %d split(s), avg %.1f paths",
			share*100, br.LostSlots, totalSlots, rpc, br.Divergences, br.AvgPaths)
		f.Details = map[string]string{
			"lost_slots":  fmt.Sprintf("%d", br.LostSlots),
			"reconverge":  fmt.Sprintf("%d", rpc),
			"divergences": fmt.Sprintf("%d", br.Divergences),
		}
		ctx.add(f)
	}

	// Diamond melding is a per-function graph walk; fan the functions out
	// over the worker pool and append results in id order so findings are
	// identical at every parallelism setting.
	fns := make([]uint32, 0, len(ctx.Graphs))
	for fn := range ctx.Graphs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i] < fns[j] })
	results := make([][]Finding, len(fns))
	g := pool.New(ctx.Opts.Parallelism)
	for i, fn := range fns {
		i, fn := i, fn
		g.Go(func() error {
			graph := ctx.Graphs[fn]
			pd := ctx.PDoms[fn]
			for b := int32(0); b < int32(graph.NBlocks); b++ {
				if !diverged[branchKey{fn, b}] {
					continue
				}
				if f, ok := meldableDiamond(ctx, fn, graph, pd, b); ok {
					results[i] = append(results[i], f)
				}
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return err
	}
	for _, fs := range results {
		for _, f := range fs {
			ctx.add(f)
		}
	}
	return nil
}

// meldableDiamond checks whether block b terminates a DARM-meldable
// diamond: exactly two successors, disjoint compact arms that both flow
// only into the branch's reconvergence point, and arms of similar static
// instruction weight.
func meldableDiamond(ctx *Context, fn uint32, g *cfg.DCFG, pd *ipdom.PostDom, b int32) (Finding, bool) {
	succs := g.Succs(b)
	if len(succs) != 2 {
		return Finding{}, false
	}
	rpc := pd.IPDom(b)
	s0, s1 := succs[0], succs[1]
	if s0 == rpc || s1 == rpc || s0 == g.ExitNode() || s1 == g.ExitNode() {
		return Finding{}, false // a triangle or an exit arm, not a diamond
	}
	armA, okA := armBlocks(g, s0, rpc, b)
	armB, okB := armBlocks(g, s1, rpc, b)
	if !okA || !okB || len(armA) > darmMaxArmBlocks || len(armB) > darmMaxArmBlocks {
		return Finding{}, false
	}
	for blk := range armA {
		if armB[blk] {
			return Finding{}, false // arms share blocks; melding would duplicate work
		}
	}
	blocks := ctx.Trace.Funcs[fn].Blocks
	instrsA, instrsB := armInstrs(blocks, armA), armInstrs(blocks, armB)
	if instrsA == 0 || instrsB == 0 {
		return Finding{}, false
	}
	small, large := instrsA, instrsB
	if small > large {
		small, large = large, small
	}
	similarity := float64(small) / float64(large)
	if similarity < darmSimilarity {
		return Finding{}, false
	}
	f := finding("divergence", SevInfo)
	f.Function = ctx.Trace.FuncName(fn)
	f.Block = b
	f.Message = fmt.Sprintf("meldable divergent diamond (DARM): arms of %d/%d block(s) and %d/%d instruction(s) (%.0f%% similar) reconverge at b%d",
		len(armA), len(armB), instrsA, instrsB, similarity*100, rpc)
	f.Details = map[string]string{
		"similarity": fmt.Sprintf("%.2f", similarity),
		"reconverge": fmt.Sprintf("%d", rpc),
	}
	return f, true
}

// armBlocks collects the blocks reachable from start without passing
// through stop (the reconvergence point). It fails when the arm escapes —
// reaching the exit, looping back through the branch, or growing past any
// plausible diamond size.
func armBlocks(g *cfg.DCFG, start, stop, branch int32) (map[int32]bool, bool) {
	const maxArm = 16
	arm := map[int32]bool{}
	work := []int32{start}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		if blk == stop || arm[blk] {
			continue
		}
		if blk == g.ExitNode() || blk == branch || len(arm) >= maxArm {
			return nil, false
		}
		arm[blk] = true
		work = append(work, g.Succs(blk)...)
	}
	return arm, true
}

func armInstrs(blocks []trace.BlockInfo, arm map[int32]bool) uint64 {
	var n uint64
	for blk := range arm {
		n += uint64(blocks[blk].NInstr)
	}
	return n
}
