#!/bin/sh
# Runs the analyzer's key benchmarks and writes BENCH_analyzer.json — a JSON
# ARRAY with one row per benchmark — so future changes have a perf trajectory
# to regress against.
#
# Two sweeps feed the array:
#   1. GOMAXPROCS=1: every benchmark, the stable serial baselines (and the
#      parallel entry points' sequential-fallthrough cost at one core).
#   2. full GOMAXPROCS (skipped when the machine has one core): the parallel
#      benchmarks again, emitted as *_maxprocs rows, so the file actually
#      shows parallel speedups instead of only "cpus: 1" rows.
# Derived fields carry the headline claims:
#   replay_parallel_maxprocs.speedup_vs_serial  (replay scaling, full cores)
#   decode_v3_parallel.speedup_vs_v1_serial     (indexed-decode scaling)
#   decode_v3_parallel_maxprocs.speedup_vs_*    (the same at full GOMAXPROCS)
# The GOMAXPROCS=1 replay_parallel row deliberately carries NO speedup field:
# a one-core "speedup" only measures the sequential fallthrough's overhead
# and has been misread as the scaling claim before. Scaling lives solely on
# the _maxprocs rows, which exist whenever the machine has >1 core.
# Decode rows also carry prev_bytes_per_op/prev_allocs_per_op deltas against
# the BENCH_analyzer.json being replaced, so an allocation regression is
# visible in the diff of the file itself.
#
# Environment:
#   BENCH_SKIP_CHECK=1  skip the `make check` gate (CI smoke runs)
#   BENCHTIME=1x        forwarded to -benchtime (default 1s)
set -e
cd "$(dirname "$0")/.."

# Verify before measuring: benchmark numbers from a tree that fails the
# lint or invariant checks (make check runs build/vet/test/race/lint plus
# tfcheck over every workload and the golden-snapshot comparison) are not
# worth recording.
if [ "${BENCH_SKIP_CHECK:-0}" != "1" ]; then
	make check
fi

out=BENCH_analyzer.json
prev=$(mktemp)
trap 'rm -f "$prev"' EXIT
cp "$out" "$prev" 2>/dev/null || : >"$prev"

cores=$(nproc 2>/dev/null || echo 1)

raw=$(GOMAXPROCS=1 go test -run '^$' \
	-bench 'BenchmarkReplay(Serial|Parallel|Allocs)$|BenchmarkDecodeV(1Serial|2Serial|3Serial|3Parallel)$' \
	-benchmem -benchtime "${BENCHTIME:-1s}" -count=1 .)
echo "$raw"

# Second sweep: the parallel entry points at full GOMAXPROCS. go test
# suffixes benchmark names with -N when N > 1, which is how the awk below
# tells the sweeps apart in the combined stream.
if [ "$cores" -gt 1 ]; then
	raw2=$(GOMAXPROCS="$cores" go test -run '^$' \
		-bench 'BenchmarkReplayParallel$|BenchmarkDecodeV3Parallel$' \
		-benchmem -benchtime "${BENCHTIME:-1s}" -count=1 .)
	echo "$raw2"
	raw=$(printf '%s\n%s' "$raw" "$raw2")
fi

printf '%s\n' "$raw" | awk -v cores="$cores" -v prevfile="$prev" '
BEGIN {
	# Previous run: per-row bytes/op and allocs/op, for delta fields.
	while ((getline line < prevfile) > 0) {
		if (match(line, /"name": "[a-z0-9_]+"/)) {
			pn = substr(line, RSTART + 9, RLENGTH - 10)
			if (match(line, /"bytes_per_op": [0-9]+/))
				pbytes[pn] = substr(line, RSTART + 16, RLENGTH - 16)
			if (match(line, /"allocs_per_op": [0-9]+/))
				pallocs[pn] = substr(line, RSTART + 17, RLENGTH - 17)
		}
	}
	close(prevfile)
}
/^Benchmark/ {
	# Field 1 is "BenchmarkName-N"; N is the GOMAXPROCS used (absent when 1).
	# GOMAXPROCS>1 rows come from the second sweep: keep them under a
	# distinct _maxprocs key so both sweeps coexist in one array.
	name = $1
	procs = 1
	if (match(name, /-[0-9]+$/)) {
		procs = substr(name, RSTART + 1) + 0
		name = substr(name, 1, RSTART - 1)
	}
	sub(/^Benchmark/, "", name)
	if (procs > 1) name = name "MaxProcs"
	# Scan value/unit pairs; units anchor the values, field positions vary.
	ns[name] = ""; mbs[name] = ""; bpo[name] = ""; apo[name] = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns[name] = $i
		else if ($(i + 1) == "MB/s") mbs[name] = $i
		else if ($(i + 1) == "B/op") bpo[name] = $i
		else if ($(i + 1) == "allocs/op") apo[name] = $i
	}
	gomax[name] = procs
	seen[name] = 1
}
function key(name) {
	# ReplaySerial -> replay_serial, DecodeV3Parallel -> decode_v3_parallel
	out = ""
	for (j = 1; j <= length(name); j++) {
		ch = substr(name, j, 1)
		if (ch >= "A" && ch <= "Z") {
			if (out != "") out = out "_"
			out = out tolower(ch)
		} else out = out ch
	}
	gsub(/v_([0-9])/, "v\\1", out)
	gsub(/max_procs/, "maxprocs", out)
	return out
}
function row(name, extra,    s, k) {
	k = key(name)
	s = sprintf("  {\"name\": \"%s\", \"gomaxprocs\": %d, \"ns_per_op\": %s", \
		k, gomax[name], ns[name])
	if (mbs[name] != "") s = s sprintf(", \"mb_per_s\": %s", mbs[name])
	if (bpo[name] != "") s = s sprintf(", \"bytes_per_op\": %s", bpo[name])
	if (apo[name] != "") s = s sprintf(", \"allocs_per_op\": %s", apo[name])
	if (bpo[name] != "" && pbytes[k] != "")
		s = s sprintf(", \"prev_bytes_per_op\": %s, \"bytes_per_op_delta\": %d", \
			pbytes[k], bpo[name] - pbytes[k])
	if (apo[name] != "" && pallocs[k] != "")
		s = s sprintf(", \"prev_allocs_per_op\": %s, \"allocs_per_op_delta\": %d", \
			pallocs[k], apo[name] - pallocs[k])
	if (extra != "") s = s ", " extra
	return s "}"
}
END {
	n = split("ReplaySerial ReplayParallel ReplayAllocs " \
		"DecodeV1Serial DecodeV2Serial DecodeV3Serial DecodeV3Parallel", want, " ")
	# At >1 cores the second sweep must have produced the _maxprocs rows.
	if (cores > 1) {
		want[++n] = "ReplayParallelMaxProcs"
		want[++n] = "DecodeV3ParallelMaxProcs"
	}
	missing = ""
	for (i = 1; i <= n; i++)
		if (!(want[i] in seen) || ns[want[i]] == "")
			missing = missing " " want[i]
	if (missing != "") {
		print "bench.sh: missing benchmark rows:" missing > "/dev/stderr"
		exit 1
	}
	print "["
	print "  {\"benchmark\": \"parsec.vips, 64 threads, warp 32\", \"cpus\": " cores "},"
	print row("ReplaySerial") ","
	print row("ReplayParallel") ","
	print row("ReplayAllocs") ","
	print row("DecodeV1Serial") ","
	print row("DecodeV2Serial") ","
	print row("DecodeV3Serial") ","
	tail = ""
	if (cores > 1) tail = ","
	print row("DecodeV3Parallel", \
		sprintf("\"speedup_vs_v1_serial\": %.2f", ns["DecodeV1Serial"] / ns["DecodeV3Parallel"])) tail
	if (cores > 1) {
		print row("ReplayParallelMaxProcs", \
			sprintf("\"speedup_vs_serial\": %.2f", ns["ReplaySerial"] / ns["ReplayParallelMaxProcs"])) ","
		print row("DecodeV3ParallelMaxProcs", \
			sprintf("\"speedup_vs_v1_serial\": %.2f", ns["DecodeV1Serial"] / ns["DecodeV3ParallelMaxProcs"]))
	}
	print "]"
}' > "$out"

echo "wrote $out:"
cat "$out"
