// Package coalesce implements the memory-coalescing model ThreadFuser uses
// to estimate memory divergence (paper section III, figure 4).
//
// For each warp-level execution of an x86 instruction that initiates memory
// accesses, the byte ranges touched by the active threads are mapped onto
// aligned 32-byte sectors; the number of distinct sectors is the number of
// memory transactions the instruction would require on SIMT hardware. A
// fully coalesced 4-byte-per-lane access by a 32-thread warp therefore costs
// 4 transactions (the paper's stated ideal), while scattered accesses cost
// up to one transaction per active lane.
package coalesce

import "threadfuser/internal/vm"

// TransactionSize is the sector granularity in bytes, matching the 32-byte
// transactions NVIDIA hardware and the paper use.
const TransactionSize = 32

// Access is one lane's contribution to a warp memory instruction.
type Access struct {
	Addr uint64
	Size uint8
}

// sectorCap bounds the linear-probe sector set: 64 lanes × at most 2
// sectors per lane (an unaligned 8-byte access) plus slack. Count saturates
// here, and the sorted fast path caps its exact total at the same value so
// both paths agree on pathological inputs.
const sectorCap = 136

// SectorCap is the saturation bound on any single instruction's transaction
// count, exported so replay's closed-form fused charge path can cap its
// analytic sector counts at exactly the value Count and Walk.Tx saturate to.
const SectorCap = sectorCap

// Count returns the number of TransactionSize-byte transactions needed to
// service the given accesses. The slice may be in any order and may contain
// duplicate or overlapping ranges.
func Count(accs []Access) int {
	if len(accs) == 0 {
		return 0
	}
	// Replay hands accesses over in lane order, which for strided and
	// uniform patterns means non-decreasing addresses: count those with one
	// linear sector walk instead of the quadratic probe set.
	var w Walk
	sorted := true
	for _, a := range accs {
		if !w.Add(a) {
			sorted = false
			break
		}
	}
	if sorted {
		return w.Tx()
	}
	// Warp sizes are small (≤64 lanes, ≤2 sectors per lane for unaligned
	// 8-byte accesses), so a tiny linear-probe set beats a map allocation.
	var sectors [sectorCap]uint64
	n := 0
	add := func(s uint64) {
		for i := 0; i < n; i++ {
			if sectors[i] == s {
				return
			}
		}
		if n < len(sectors) {
			sectors[n] = s
			n++
		}
	}
	for _, a := range accs {
		first := a.Addr / TransactionSize
		last := (a.Addr + uint64(a.Size) - 1) / TransactionSize
		for s := first; s <= last; s++ {
			add(s)
		}
	}
	return n
}

// Walk incrementally counts the distinct TransactionSize-byte sectors of an
// address-sorted access stream — the same quantity Count computes, exposed
// as a streaming accumulator so the replay engine's fused fast path can
// coalesce without first gathering accesses into a slice. The zero value is
// an empty walk.
//
// The walk leans on one invariant: with non-decreasing start addresses, the
// sectors an access adds are exactly those above the running high-water mark
// (every sector below the mark inside the access's span was already covered
// by the access that set the mark, whose own span started no later). maxEnd
// holds the mark as an exclusive sector bound so the zero value — an empty
// walk — needs no separate representation.
type Walk struct {
	prevAddr uint64
	maxEnd   uint64
	n        int
}

// Add feeds one access. It returns false when the stream leaves the
// sorted-walk domain — a start address below its predecessor's, a zero
// size, or span arithmetic that would wrap — in which case the walk's state
// is meaningless and the caller must recount via the gather-and-Count path.
// Add is kept small enough to inline into replay's per-access loops; an
// empty walk is recognized by n == 0 (every accepted access adds at least
// one sector).
func (w *Walk) Add(a Access) bool {
	last := a.Addr + uint64(a.Size) - 1
	if a.Addr < w.prevAddr || a.Size == 0 || last < a.Addr {
		return false
	}
	w.prevAddr = a.Addr
	first := a.Addr / TransactionSize
	last /= TransactionSize
	if first < w.maxEnd {
		first = w.maxEnd
	}
	if last >= first {
		w.n += int(last - first + 1)
		w.maxEnd = last + 1
	}
	return true
}

// Tx returns the transaction count so far, saturated at the same cap as
// Count's probe set.
func (w *Walk) Tx() int {
	if w.n > sectorCap {
		return sectorCap
	}
	return w.n
}

// sectors returns the number of TransactionSize-byte sectors one access
// spans, using the same arithmetic as Count (a zero-size access at a sector
// boundary spans none).
func sectors(a Access) int {
	first := a.Addr / TransactionSize
	last := (a.Addr + uint64(a.Size) - 1) / TransactionSize
	if last < first {
		return 0
	}
	return int(last - first + 1)
}

// Bounds returns the algebraic lower and upper bounds on Count for an access
// set: at least the widest single access's sector span (all of an access's
// sectors are always charged), at most the sum of every access's span
// (nothing need coalesce). The verification engine (internal/check) asserts
// Count stays inside these bounds on every access set it replays.
func Bounds(accs []Access) (lo, hi int) {
	for _, a := range accs {
		s := sectors(a)
		if s > lo {
			lo = s
		}
		hi += s
	}
	return lo, hi
}

// Split partitions accesses by memory segment and returns the transaction
// count for each, the breakdown figure 10 of the paper reports (stack
// accesses come from each thread's private stack; heap and global accesses
// share the process address space).
func Split(accs []Access) (stackTx, heapTx int) {
	var s Scratch
	return s.Split(accs)
}

// Scratch holds the segment-partition buffers Split needs, so replay inner
// loops can coalesce one memory instruction after another without
// re-allocating the sector buffers each time. The zero value is ready to use;
// a Scratch must not be shared between goroutines.
type Scratch struct {
	stack, heap []Access
}

// Split is like the package-level Split but reuses the Scratch's buffers.
// When each segment's sub-stream of accesses arrives with non-decreasing
// addresses (the shape replay's lane-ordered gathering produces for strided
// and uniform patterns), the counts come from two streaming sector walks
// with no partition copies at all; only unsorted streams pay for the
// partition-and-probe path.
func (s *Scratch) Split(accs []Access) (stackTx, heapTx int) {
	var stackW, heapW Walk
	sorted := true
	for _, a := range accs {
		w := &heapW
		if vm.SegmentOf(a.Addr) == vm.SegStack {
			w = &stackW
		}
		if !w.Add(a) {
			sorted = false
			break
		}
	}
	if sorted {
		return stackW.Tx(), heapW.Tx()
	}
	stack, heap := s.stack[:0], s.heap[:0]
	for _, a := range accs {
		if vm.SegmentOf(a.Addr) == vm.SegStack {
			stack = append(stack, a)
		} else {
			heap = append(heap, a)
		}
	}
	s.stack, s.heap = stack, heap
	return Count(stack), Count(heap)
}
