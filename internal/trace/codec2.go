package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Version 2 of the .tft format delta-encodes memory and lock addresses per
// thread as zig-zag varints. Real traces are dominated by address bytes, and
// consecutive accesses are near each other (array walks, stack frames), so
// deltas shrink files severalfold — the difference between "traces fit on a
// laptop" and not, which matters at the paper's 42K-thread scale. Decode
// handles both versions transparently; EncodeCompact emits version 2.

const version2 = 2

// EncodeCompact writes the trace in the delta-encoded v2 format.
func EncodeCompact(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	e := &encoder{w: bw}
	e.bytes([]byte(magic))
	e.uvarint(version2)
	e.str(t.Program)
	e.uvarint(uint64(t.Entry))
	e.uvarint(uint64(len(t.Funcs)))
	for _, f := range t.Funcs {
		e.str(f.Name)
		e.uvarint(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			e.uvarint(uint64(b.NInstr))
		}
	}
	e.uvarint(uint64(len(t.Threads)))
	for _, th := range t.Threads {
		e.uvarint(uint64(th.TID))
		e.uvarint(uint64(len(th.Records)))
		var prevAddr uint64
		for i := range th.Records {
			prevAddr = e.record2(&th.Records[i], prevAddr)
		}
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// WriteFileCompact encodes the trace to the named file in v2 format.
func WriteFileCompact(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeCompact(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

func (e *encoder) record2(r *Record, prevAddr uint64) uint64 {
	e.byte(byte(r.Kind))
	switch r.Kind {
	case KindBBL:
		e.uvarint(uint64(r.Func))
		e.uvarint(uint64(r.Block))
		e.uvarint(r.N)
		e.uvarint(uint64(len(r.Mem)))
		for _, m := range r.Mem {
			e.uvarint(uint64(m.Instr))
			e.uvarint(zigzag(int64(m.Addr - prevAddr)))
			prevAddr = m.Addr
			e.byte(m.Size)
			e.bool(m.Store)
		}
		e.uvarint(uint64(len(r.Locks)))
		for _, l := range r.Locks {
			e.uvarint(uint64(l.Instr))
			e.uvarint(zigzag(int64(l.Addr - prevAddr)))
			prevAddr = l.Addr
			e.bool(l.Release)
		}
	case KindCall:
		e.uvarint(uint64(r.Callee))
	case KindRet:
	case KindSkip:
		e.byte(byte(r.SkipKind))
		e.uvarint(r.N)
	default:
		if e.err == nil {
			e.err = fmt.Errorf("trace: encode: unknown record kind %d", r.Kind)
		}
	}
	return prevAddr
}

func (d *decoder) record2(prevAddr uint64) (Record, uint64) {
	r := Record{Kind: Kind(d.byte())}
	switch r.Kind {
	case KindBBL:
		r.Func = uint32(d.uvarint())
		r.Block = uint32(d.uvarint())
		r.N = d.uvarint()
		nm := d.count("mem access", d.uvarint())
		if nm > 0 && d.err == nil {
			r.Mem = make([]MemAccess, 0, preallocCap(nm))
			for i := uint64(0); i < nm && d.err == nil; i++ {
				instr := uint16(d.uvarint())
				addr := prevAddr + uint64(unzigzag(d.uvarint()))
				prevAddr = addr
				r.Mem = append(r.Mem, MemAccess{
					Instr: instr,
					Addr:  addr,
					Size:  d.byte(),
					Store: d.bool(),
				})
			}
		}
		nl := d.count("lock op", d.uvarint())
		if nl > 0 && d.err == nil {
			r.Locks = make([]LockOp, 0, preallocCap(nl))
			for i := uint64(0); i < nl && d.err == nil; i++ {
				instr := uint16(d.uvarint())
				addr := prevAddr + uint64(unzigzag(d.uvarint()))
				prevAddr = addr
				r.Locks = append(r.Locks, LockOp{
					Instr:   instr,
					Addr:    addr,
					Release: d.bool(),
				})
			}
		}
	case KindCall:
		r.Callee = uint32(d.uvarint())
	case KindRet:
	case KindSkip:
		r.SkipKind = SkipKind(d.byte())
		r.N = d.uvarint()
	default:
		if d.err == nil {
			d.err = fmt.Errorf("unknown record kind %d", r.Kind)
		}
	}
	return r, prevAddr
}
