package threadfuser_test

import (
	"fmt"
	"log"

	"threadfuser"
)

// The zero-effort estimate the paper offers developers: how would this
// multi-threaded program behave on a 32-wide SIMT machine?
func ExampleAnalyzeWorkload() {
	w, err := threadfuser.Workload("paropoly.nbody")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := threadfuser.AnalyzeWorkload(w, threadfuser.Options{WarpSize: 32, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SIMT efficiency: %.0f%%\n", rep.Efficiency*100)
	// Output: SIMT efficiency: 100%
}

// The figure-7 workflow: find the function that destroys SIMT efficiency.
func ExampleReport_perFunction() {
	w, err := threadfuser.Workload("usuite.hdsearch.mid")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := threadfuser.AnalyzeWorkload(w, threadfuser.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	worst := rep.PerFunction[0] // sorted by instruction share
	fmt.Printf("hottest function: %s\n", worst.Name)
	fmt.Printf("bottleneck: %v\n", worst.Efficiency < 0.10)
	// Output:
	// hottest function: getpoint
	// bottleneck: true
}

// Excluding a library function from the analysis, as the paper's
// configurable tracer allows.
func ExampleExcludeFunctions() {
	w, err := threadfuser.Workload("usuite.hdsearch.mid")
	if err != nil {
		log.Fatal(err)
	}
	o := threadfuser.Options{Seed: 1}
	tr, err := threadfuser.Trace(w, o)
	if err != nil {
		log.Fatal(err)
	}
	filtered, err := threadfuser.ExcludeFunctions(tr, "getpoint")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := threadfuser.Analyze(filtered, o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("efficiency without getpoint: %.0f%%\n", rep.Efficiency*100)
	// Output: efficiency without getpoint: 100%
}
