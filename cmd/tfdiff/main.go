// Command tfdiff compares two MIMD traces through the ThreadFuser analyzer
// — the measure/fix/re-measure loop of the paper's HDSearch-Midtier case
// study (section V-A) as a tool. It prints the headline metric deltas and a
// per-function comparison that shows exactly where an optimization moved
// the needle.
//
// Both sides can be served from the on-disk report cache (-cache/-cache-dir)
// or analyzed by a running tfserve instance (-server/-tenant); either route
// produces byte-identical output to a local analysis.
//
// Usage:
//
//	tftrace -workload usuite.hdsearch.mid       -o before.tft
//	tftrace -workload usuite.hdsearch.mid.fixed -o after.tft
//	tfdiff -a before.tft -b after.tft
//	tfdiff -a before.tft -b after.tft -cache
//	tfdiff -a before.tft -b after.tft -server http://localhost:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"sort"
	"strconv"

	"threadfuser/internal/core"
	"threadfuser/internal/serve"
	"threadfuser/internal/trace"
)

func main() {
	var (
		aPath    = flag.String("a", "", "baseline .tft trace (required)")
		bPath    = flag.String("b", "", "comparison .tft trace (required)")
		warpSize = flag.Int("warp", 32, "warp width to model")
		locks    = flag.Bool("locks", false, "emulate intra-warp lock serialization")
		useCache = flag.Bool("cache", false, "serve identical (trace, options) analyses from the on-disk report cache")
		cacheDir = flag.String("cache-dir", "", "report cache directory (implies -cache; default $XDG_CACHE_HOME/threadfuser)")
		server   = flag.String("server", "", "analyze via a running tfserve instance at this URL instead of locally")
		tenant   = flag.String("tenant", "", "tenant identity sent with -server requests")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tfdiff -a before.tft -b after.tft [flags]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tfdiff: unexpected argument %q (traces are given with -a/-b)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *aPath == "" || *bPath == "" {
		fmt.Fprintln(os.Stderr, "tfdiff: both -a and -b are required")
		flag.Usage()
		os.Exit(2)
	}
	if *server != "" && (*useCache || *cacheDir != "") {
		fmt.Fprintln(os.Stderr, "tfdiff: -cache/-cache-dir are local options; the server manages its own cache")
		os.Exit(2)
	}
	opts := core.Defaults()
	opts.WarpSize = *warpSize
	opts.EmulateLocks = *locks
	cache := core.OpenFlagCache(*useCache, *cacheDir)

	a, err := analyzeFile(*aPath, opts, cache, *server, *tenant)
	if err != nil {
		fatal(err)
	}
	b, err := analyzeFile(*bPath, opts, cache, *server, *tenant)
	if err != nil {
		fatal(err)
	}
	writeDiff(os.Stdout, a, b)
}

// analyzeFile produces one side's report: via a tfserve instance when server
// is set (the file streams as-is; the service decodes and replays), otherwise
// locally through the optional report cache.
func analyzeFile(path string, opts core.Options, cache *core.Cache, server, tenant string) (*core.Report, error) {
	if server != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		q := url.Values{"warp": {strconv.Itoa(opts.WarpSize)}, "formation": {opts.Formation.String()}}
		if opts.EmulateLocks {
			q.Set("locks", "true")
		}
		c := serve.Client{BaseURL: server, Tenant: tenant}
		return c.Analyze(context.Background(), f, q)
	}
	tr, err := trace.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, _, err := core.AnalyzeCached(cache, tr, opts)
	return rep, err
}

// writeDiff renders the full comparison: headline metric deltas, then the
// per-function table matched by name (functions present on only one side
// show a dash), ordered by combined instruction share.
func writeDiff(w io.Writer, a, b *core.Report) {
	fmt.Fprintf(w, "baseline    %s (%d threads)\n", a.Program, a.Threads)
	fmt.Fprintf(w, "comparison  %s (%d threads)\n\n", b.Program, b.Threads)

	row := func(name string, av, bv float64, unit string) {
		delta := bv - av
		sign := "+"
		if delta < 0 {
			sign = ""
		}
		fmt.Fprintf(w, "%-22s %10.2f%s %10.2f%s   (%s%.2f%s)\n", name, av, unit, bv, unit, sign, delta, unit)
	}
	row("SIMT efficiency", a.Efficiency*100, b.Efficiency*100, "%")
	row("heap tx/instr", a.HeapTxPerInstr, b.HeapTxPerInstr, "")
	row("stack tx/instr", a.StackTxPerInstr, b.StackTxPerInstr, "")
	row("traced", a.TracedPercent, b.TracedPercent, "%")
	fmt.Fprintf(w, "%-22s %10d  %10d\n", "thread instructions", a.TotalInstrs, b.TotalInstrs)
	fmt.Fprintf(w, "%-22s %10d  %10d\n", "lockstep issues", a.LockstepInstrs, b.LockstepInstrs)

	names := map[string]bool{}
	for _, f := range a.PerFunction {
		names[f.Name] = true
	}
	for _, f := range b.PerFunction {
		names[f.Name] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return shareOf(a, ordered[i])+shareOf(b, ordered[i]) > shareOf(a, ordered[j])+shareOf(b, ordered[j])
	})

	fmt.Fprintf(w, "\n%-22s %22s %22s\n", "FUNCTION", "BASELINE (share@eff)", "COMPARISON (share@eff)")
	for _, n := range ordered {
		fmt.Fprintf(w, "%-22s %22s %22s\n", n, cell(a, n), cell(b, n))
	}
}

func shareOf(r *core.Report, name string) float64 {
	if f, ok := r.Function(name); ok {
		return f.InstrShare
	}
	return 0
}

func cell(r *core.Report, name string) string {
	f, ok := r.Function(name)
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%5.1f%% @ %5.1f%%", f.InstrShare*100, f.Efficiency*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tfdiff:", err)
	os.Exit(1)
}
