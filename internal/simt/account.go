package simt

import (
	"sort"

	"threadfuser/internal/coalesce"
	"threadfuser/internal/trace"
)

// ChargeInstrs adds one lockstep execution of an n-instruction block with
// the given number of active lanes to the warp and function metrics
// (equation 1 numerator and denominator).
func ChargeInstrs(wm *WarpMetrics, fm *FuncMetrics, n uint64, active int) {
	wm.Lockstep += n
	wm.ThreadInstrs += n * uint64(active)
	if active >= 0 && active <= MaxWarpSize {
		wm.LaneHistogram[active] += n
	}
	if fm != nil {
		fm.Lockstep += n
		fm.ThreadInstrs += n * uint64(active)
	}
}

// ChargeMemory coalesces one lockstep block execution's memory accesses.
// recs holds the active lanes' records for the same static block; accesses
// are merged per instruction index, loads and stores coalesce separately
// into 32-byte transactions, and counts are split by stack/heap segment.
// Both the trace-replay engine and the lockstep hardware oracle charge
// memory through this function, so their transaction metrics are directly
// comparable. fm, when non-nil, receives the per-function attribution.
func ChargeMemory(wm *WarpMetrics, fm *FuncMetrics, recs []*trace.Record) {
	var idxs [8]uint16
	idxList := idxs[:0]
	for _, r := range recs {
		for _, m := range r.Mem {
			found := false
			for _, x := range idxList {
				if x == m.Instr {
					found = true
					break
				}
			}
			if !found {
				idxList = append(idxList, m.Instr)
			}
		}
	}
	if len(idxList) == 0 {
		return
	}
	sort.Slice(idxList, func(i, j int) bool { return idxList[i] < idxList[j] })

	var loads, stores []coalesce.Access
	for _, idx := range idxList {
		loads, stores = loads[:0], stores[:0]
		for _, r := range recs {
			for _, m := range r.Mem {
				if m.Instr != idx {
					continue
				}
				a := coalesce.Access{Addr: m.Addr, Size: m.Size}
				if m.Store {
					stores = append(stores, a)
				} else {
					loads = append(loads, a)
				}
			}
		}
		ls, lh := coalesce.Split(loads)
		ss, sh := coalesce.Split(stores)
		wm.MemInstrs++
		if ls+ss > 0 {
			wm.StackMemInstrs++
			wm.StackTx += uint64(ls + ss)
		}
		if lh+sh > 0 {
			wm.HeapMemInstrs++
			wm.HeapTx += uint64(lh + sh)
		}
		if fm != nil {
			fm.MemInstrs++
			fm.HeapTx += uint64(lh + sh)
			fm.StackTx += uint64(ls + ss)
		}
	}
}
