// Command tflint is the ThreadFuser multi-pass lint engine: it runs the
// trace sanitizer, the Eraser-style lockset race detector, the divergence
// lint, the lock-serialization lint, the lock-order deadlock pass, and the
// static oracle passes ("static" for uniformity, "staticlock" for the
// concurrency cross-check) over one or more inputs and reports structured
// findings. Inputs are .tft trace files or built-in workloads traced on the
// fly; the static passes need the workload's IR and skip trace-file inputs.
//
// Usage:
//
//	tflint pigz.tft svc.tft
//	tflint -workload seededrace,leakedlock
//	tflint -all -severity error -json
//	tflint -workload vectoradd -passes lockset,locks
//
// The exit status is 2 for usage errors, 1 if any input fails to load or
// yields a finding at or above -severity, and 0 otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/url"
	"os"
	"strconv"
	"strings"

	"threadfuser/internal/analysis"
	"threadfuser/internal/core"
	"threadfuser/internal/ir"
	"threadfuser/internal/pool"
	"threadfuser/internal/serve"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
	"threadfuser/internal/workloads"
)

func main() {
	var (
		wlNames   = flag.String("workload", "", "comma-separated built-in workloads to trace and lint")
		all       = flag.Bool("all", false, "lint every registered workload")
		threads   = flag.Int("threads", 0, "thread count for workload tracing (0 = workload default)")
		seed      = flag.Int64("seed", 7, "input-generator seed for workload tracing")
		warpSize  = flag.Int("warp", 32, "warp width to model (1..64)")
		formation = flag.String("formation", "round-robin", "warp batching: round-robin, strided or greedy")
		severity  = flag.String("severity", "warning", "exit non-zero at findings of this severity or above (info, warning, error)")
		passNames = flag.String("passes", "", "comma-separated pass ids to run (default all); see -list")
		list      = flag.Bool("list", false, "list the available passes and exit")
		asJSON    = flag.Bool("json", false, "emit reports as a JSON array")
		parallel  = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial; findings are identical)")
		useCache  = flag.Bool("cache", false, "serve identical (trace, options) replay reports from the on-disk report cache")
		cacheDir  = flag.String("cache-dir", "", "report cache directory (implies -cache; default $XDG_CACHE_HOME/threadfuser)")
		server    = flag.String("server", "", "lint via a running tfserve instance at this URL instead of locally")
		tenant    = flag.String("tenant", "", "tenant identity sent with -server requests")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tflint [flags] [trace.tft ...]\n")
		fmt.Fprintf(os.Stderr, "lints .tft traces and/or built-in workloads (-workload, -all)\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, p := range analysis.Passes() {
			fmt.Printf("%-12s %s\n", p.ID(), p.Desc())
		}
		return
	}

	threshold, err := analysis.ParseSeverity(*severity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tflint:", err)
		os.Exit(2)
	}
	opts := analysis.Options{
		WarpSize:    *warpSize,
		Parallelism: *parallel,
		Cache:       core.OpenFlagCache(*useCache, *cacheDir),
	}
	switch *formation {
	case "round-robin":
		opts.Formation = warp.RoundRobin
	case "strided":
		opts.Formation = warp.Strided
	case "greedy":
		opts.Formation = warp.GreedyEntry
	default:
		fmt.Fprintf(os.Stderr, "tflint: unknown formation %q\n", *formation)
		os.Exit(2)
	}
	if *passNames != "" {
		opts.Passes = strings.Split(*passNames, ",")
	}

	// Assemble the input list: files first, then workloads, in argument
	// order. Workload loaders also hand back the program so the static
	// oracle passes can run; .tft files carry no IR and skip them.
	type input struct {
		name string
		load func() (*trace.Trace, *ir.Program, error)
	}
	var inputs []input
	for _, path := range flag.Args() {
		path := path
		inputs = append(inputs, input{name: path, load: func() (*trace.Trace, *ir.Program, error) {
			tr, err := trace.ReadFile(path)
			return tr, nil, err
		}})
	}
	addWorkload := func(w *workloads.Workload) {
		inputs = append(inputs, input{name: w.Name, load: func() (*trace.Trace, *ir.Program, error) {
			inst, err := w.Instantiate(workloads.Config{Threads: *threads, Seed: *seed})
			if err != nil {
				return nil, nil, err
			}
			tr, err := inst.Trace()
			return tr, inst.Prog, err
		}})
	}
	if *all {
		for _, w := range workloads.All() {
			addWorkload(w)
		}
	} else if *wlNames != "" {
		for _, name := range strings.Split(*wlNames, ",") {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tflint:", err)
				os.Exit(2)
			}
			addWorkload(w)
		}
	}
	if len(inputs) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	reports := make([]*analysis.Report, len(inputs))
	errs := make([]error, len(inputs))
	if *server != "" {
		// Server mode uploads each input's trace stream; the static oracle
		// passes skip, exactly as for .tft file inputs locally (the server
		// has no IR for an uploaded trace).
		q := url.Values{"warp": {strconv.Itoa(*warpSize)}, "formation": {*formation}}
		if *passNames != "" {
			q.Set("passes", *passNames)
		}
		c := serve.Client{BaseURL: *server, Tenant: *tenant}
		for i := range inputs {
			tr, _, err := inputs[i].load()
			if err != nil {
				errs[i] = err
				continue
			}
			var buf bytes.Buffer
			if err := trace.EncodeIndexed(&buf, tr); err != nil {
				errs[i] = err
				continue
			}
			reports[i], errs[i] = c.Lint(context.Background(), &buf, q)
		}
	} else {
		// One session shares memoized trace preparation across inputs that
		// reuse a trace; each input's lint runs independently on the pool.
		sess := core.NewSession()
		g := pool.New(*parallel)
		for i := range inputs {
			i := i
			g.Go(func() error {
				tr, prog, err := inputs[i].load()
				if err != nil {
					errs[i] = err
					return nil
				}
				inOpts := opts
				inOpts.Prog = prog
				reports[i], errs[i] = analysis.RunSession(sess, tr, inOpts)
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			fmt.Fprintln(os.Stderr, "tflint:", err)
			os.Exit(1)
		}
	}

	failed := false
	if *asJSON {
		out := make([]*analysis.Report, 0, len(reports))
		for i, rep := range reports {
			if errs[i] != nil {
				fmt.Fprintf(os.Stderr, "tflint: %s: %v\n", inputs[i].name, errs[i])
				failed = true
				continue
			}
			out = append(out, rep)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "tflint:", err)
			os.Exit(1)
		}
	} else {
		for i, rep := range reports {
			if errs[i] != nil {
				fmt.Fprintf(os.Stderr, "tflint: %s: %v\n", inputs[i].name, errs[i])
				failed = true
				continue
			}
			rep.Render(os.Stdout)
		}
	}
	for i, rep := range reports {
		if errs[i] == nil && rep.CountAtLeast(threshold) > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
