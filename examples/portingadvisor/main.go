// Porting advisor: the developer use case of section V-A. The paper argues
// that a zero-effort performance estimate lowers the risk of porting CPU
// code to SIMT hardware. This example sweeps every bundled Table-I workload
// and ranks it into porting tiers by projected SIMT efficiency and memory
// divergence, like a triage report a team would run over its services.
//
// Run with:
//
//	go run ./examples/portingadvisor
package main

import (
	"fmt"
	"log"
	"sort"

	"threadfuser"
	"threadfuser/internal/workloads"
)

type verdict struct {
	name    string
	eff     float64
	heapTx  float64
	speedup float64
	tier    string
}

func main() {
	var results []verdict
	for _, w := range workloads.TableI() {
		rep, err := threadfuser.AnalyzeWorkload(w, threadfuser.Options{Seed: 1})
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		p, err := threadfuser.Project(w, threadfuser.Options{Threads: 256, Seed: 1})
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		results = append(results, verdict{
			name:    w.Name,
			eff:     rep.Efficiency,
			heapTx:  rep.HeapTxPerInstr,
			speedup: p.Speedup,
			tier:    tier(rep.Efficiency, rep.HeapTxPerInstr),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].eff > results[j].eff })

	fmt.Println("SIMT porting advisor (warp 32; reduced-scale inputs)")
	fmt.Printf("%-28s %10s %14s %10s  %s\n", "WORKLOAD", "SIMT EFF", "HEAP TX/INSTR", "SPEEDUP", "ADVICE")
	for _, r := range results {
		fmt.Printf("%-28s %9.1f%% %14.1f %9.2fx  %s\n", r.name, r.eff*100, r.heapTx, r.speedup, r.tier)
	}

	fmt.Println(`
Tiers:
  port as-is      high efficiency and coalesced accesses; expect wins with a direct port
  port + data fix control converges but memory diverges; restructure layouts (AoS->SoA) first
  refactor first  control divergence dominates; use the per-function report to find it
  keep on CPU     both control and memory fight the SIMT model`)
}

// tier buckets a workload the way section V-A reasons about them:
// efficiency is necessary but not sufficient; memory divergence decides
// whether the port needs data-layout work.
func tier(eff, heapTx float64) string {
	const coalesced = 12 // 8 is ideal for 8-byte lanes; allow slack
	switch {
	case eff >= 0.80 && heapTx <= coalesced:
		return "port as-is"
	case eff >= 0.80:
		return "port + data fix"
	case eff >= 0.40:
		return "refactor first"
	default:
		return "keep on CPU"
	}
}
