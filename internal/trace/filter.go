package trace

import "fmt"

// ExcludeFunctions implements the tracer's selective-tracing capability
// (paper section III: "the tool is configurable, allowing programmers to
// selectively choose specific functions for tracing or exclusion"). It
// returns a new trace in which every invocation of the named functions —
// including everything they call — is removed from the instruction stream
// and accounted as skipped I/O instructions, exactly how the paper's tracer
// treats untraced regions. The surrounding control flow stays well-formed:
// the caller's blocks flow directly across the removed call, so DCFG
// construction and replay work unchanged.
//
// Excluding a function that can appear at the top of a thread's stream (the
// entry function) empties that thread's trace, which Analyze tolerates (the
// thread contributes nothing).
func ExcludeFunctions(t *Trace, names ...string) (*Trace, error) {
	excluded := make(map[uint32]bool, len(names))
	for _, name := range names {
		found := false
		for id, fi := range t.Funcs {
			if fi.Name == name {
				excluded[uint32(id)] = true
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("trace: exclude: no function named %q", name)
		}
	}

	out := &Trace{
		Program: t.Program,
		Entry:   t.Entry,
		Funcs:   t.Funcs,
	}
	for _, th := range t.Threads {
		nt := &ThreadTrace{TID: th.TID}
		depth := 0 // >0 while inside an excluded subtree
		var dropped uint64
		flush := func() {
			if dropped > 0 {
				nt.Records = append(nt.Records, Record{Kind: KindSkip, SkipKind: SkipIO, N: dropped})
				dropped = 0
			}
		}
		for i := range th.Records {
			r := &th.Records[i]
			switch r.Kind {
			case KindCall:
				if depth > 0 || excluded[r.Callee] {
					depth++
					continue
				}
				flush()
				nt.Records = append(nt.Records, *r)
			case KindRet:
				if depth > 0 {
					depth--
					if depth == 0 {
						flush()
					}
					continue
				}
				nt.Records = append(nt.Records, *r)
			case KindBBL:
				if depth > 0 {
					dropped += r.N
					continue
				}
				nt.Records = append(nt.Records, *r)
			case KindSkip:
				if depth > 0 {
					dropped += r.N
					continue
				}
				nt.Records = append(nt.Records, *r)
			}
		}
		flush()
		out.Threads = append(out.Threads, nt)
	}
	return out, nil
}

// OnlyFunctions keeps the named functions (and their callees) and excludes
// everything else's own instructions: blocks belonging to un-listed
// functions are dropped (accounted as skipped) unless executed inside a
// kept function's invocation. This is the "focused analysis … of particular
// regions" mode of the paper's tracer.
func OnlyFunctions(t *Trace, names ...string) (*Trace, error) {
	keep := make(map[uint32]bool, len(names))
	for _, name := range names {
		found := false
		for id, fi := range t.Funcs {
			if fi.Name == name {
				keep[uint32(id)] = true
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("trace: only: no function named %q", name)
		}
	}

	out := &Trace{Program: t.Program, Entry: t.Entry, Funcs: t.Funcs}
	for _, th := range t.Threads {
		nt := &ThreadTrace{TID: th.TID}
		// keptDepth > 0 while inside an invocation of a kept function;
		// callStack tracks whether each open frame was emitted.
		var emitted []bool
		keptDepth := 0
		var dropped uint64
		flush := func() {
			if dropped > 0 {
				nt.Records = append(nt.Records, Record{Kind: KindSkip, SkipKind: SkipIO, N: dropped})
				dropped = 0
			}
		}
		for i := range th.Records {
			r := &th.Records[i]
			switch r.Kind {
			case KindCall:
				emit := keptDepth > 0 || keep[r.Callee]
				if keep[r.Callee] || keptDepth > 0 {
					keptDepth++
				}
				emitted = append(emitted, emit)
				if emit {
					flush()
					nt.Records = append(nt.Records, *r)
				}
			case KindRet:
				if len(emitted) == 0 {
					continue
				}
				emit := emitted[len(emitted)-1]
				emitted = emitted[:len(emitted)-1]
				if keptDepth > 0 {
					keptDepth--
					if keptDepth == 0 {
						flush()
					}
				}
				if emit {
					nt.Records = append(nt.Records, *r)
				}
			case KindBBL, KindSkip:
				if keptDepth > 0 {
					nt.Records = append(nt.Records, *r)
				} else {
					dropped += r.N
				}
			}
		}
		flush()
		out.Threads = append(out.Threads, nt)
	}
	return out, nil
}
