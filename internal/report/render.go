// Package report computes and renders every table and figure of the
// paper's evaluation: figure 1 (warp-width efficiency sweep), Table I (the
// workload catalog), figures 5a/5b (correlation against the hardware
// oracle across compiler optimization levels), figure 6 (projected
// speedups), figure 7 (the HDSearch-Midtier per-function case study),
// figure 8 (traced vs skipped instructions), figure 9 (intra-warp lock
// emulation), figure 10 (memory divergence), and Table II (the accuracy
// summary against XAPP).
//
// Each experiment returns a data structure with a Render method producing
// the aligned-text artifact cmd/tfreport prints and the bench harness logs.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// table is a minimal aligned-column text renderer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table {
	return &table{header: cols}
}

func (t *table) add(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func pct(v float64) string  { return fmt.Sprintf("%5.1f%%", v*100) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func count(v uint64) string { return fmt.Sprintf("%d", v) }
func sortKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
