package simtrace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
	"threadfuser/internal/workloads"
)

func kernelFor(t *testing.T, name string, warpSize int) *KernelTrace {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	kt, err := Generate(inst.Prog, tr, warpSize)
	if err != nil {
		t.Fatal(err)
	}
	return kt
}

func TestGenerateProducesStreams(t *testing.T) {
	kt := kernelFor(t, "vectoradd", 32)
	if len(kt.Warps) != 2 {
		t.Fatalf("warps = %d, want 2 (64 threads / 32)", len(kt.Warps))
	}
	if kt.TotalInstrs() == 0 {
		t.Fatal("empty kernel trace")
	}
	// vectoradd is fully convergent: every micro-op has all 32 lanes.
	for _, ws := range kt.Warps {
		for i := range ws.Instrs {
			if ws.Instrs[i].ActiveLanes() != 32 {
				t.Fatalf("warp %d instr %d has %d active lanes, want 32",
					ws.Warp, i, ws.Instrs[i].ActiveLanes())
			}
		}
	}
}

// TestCrackingRMW checks the paper's CISC->RISC example: an ALU op with a
// memory operand becomes load + op (and + store for read-modify-write).
func TestCrackingRMW(t *testing.T) {
	pb := ir.NewBuilder("crack")
	f := pb.NewFunc("worker")
	b := f.NewBlock("b")
	// add [r0], r1  ->  LD tmp; ADD tmp, r1; ST tmp
	b.Add(ir.Mem(ir.R(0), 0, 8), ir.Rg(ir.R(1))).Ret()
	prog := pb.MustBuild()

	p := vm.NewProcess(prog)
	base := p.AllocGlobal(8)
	tr, err := vm.TraceAll(p, 1, vm.RunConfig{}, func(tid int, th *vm.Thread) {
		th.SetReg(ir.R(0), int64(base))
		th.SetReg(ir.R(1), 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	kt, err := Generate(prog, tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	ops := kt.Warps[0].Instrs
	// Expect: LD(mem,load) ADD(alu) ST(mem,store) RET(ctrl).
	if len(ops) != 4 {
		t.Fatalf("got %d micro-ops, want 4: %+v", len(ops), ops)
	}
	if ops[0].Class != ir.ClassMem || !ops[0].Load {
		t.Errorf("op0 = %+v, want load", ops[0])
	}
	if ops[1].Class != ir.ClassALU || ops[1].Op != ir.OpAdd {
		t.Errorf("op1 = %+v, want add", ops[1])
	}
	if ops[2].Class != ir.ClassMem || ops[2].Load {
		t.Errorf("op2 = %+v, want store", ops[2])
	}
	if ops[3].Class != ir.ClassCtrl {
		t.Errorf("op3 = %+v, want control", ops[3])
	}
	// Dependences: the ALU op must read the load temp, the store must
	// read the ALU result.
	if ops[1].Srcs[0] != TmpLoad && ops[1].Srcs[1] != TmpLoad {
		t.Errorf("add does not consume the load temp: %+v", ops[1])
	}
	if ops[1].Dst != TmpStore {
		t.Errorf("add dst = %d, want store temp %d", ops[1].Dst, TmpStore)
	}
	if ops[2].Srcs[0] != TmpStore {
		t.Errorf("store does not consume the ALU result: %+v", ops[2])
	}
	if ops[0].Space != SpaceGlobal {
		t.Errorf("global-segment access classified as %v", ops[0].Space)
	}
}

// TestStackBecomesLocalSpace checks the paper's space mapping: stack
// accesses are emitted as local-memory operations.
func TestStackBecomesLocalSpace(t *testing.T) {
	pb := ir.NewBuilder("local")
	f := pb.NewFunc("worker")
	b := f.NewBlock("b")
	b.Mov(ir.Mem(ir.SP, -8, 8), ir.Imm(7)).
		Mov(ir.Rg(ir.R(0)), ir.Mem(ir.SP, -8, 8)).
		Ret()
	prog := pb.MustBuild()
	tr, err := vm.TraceAll(vm.NewProcess(prog), 4, vm.RunConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	kt, err := Generate(prog, tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, in := range kt.Warps[0].Instrs {
		if in.Class == ir.ClassMem {
			if in.Space != SpaceLocal {
				t.Errorf("stack access classified as %v", in.Space)
			}
			found++
		}
	}
	if found != 2 {
		t.Errorf("found %d memory micro-ops, want 2", found)
	}
}

// TestHardwarePathMatchesAnalyzerPath cross-checks the two trace
// generators: for a lock-free convergent workload, the oracle-collected
// ("nvbit") trace and the analyzer-replay trace must have identical warp
// instruction counts.
func TestHardwarePathMatchesAnalyzerPath(t *testing.T) {
	w, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	analyzed, err := Generate(inst.Prog, tr, 32)
	if err != nil {
		t.Fatal(err)
	}
	p, args, err := inst.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	native, err := FromHardware(p, inst.Threads(), 32, args)
	if err != nil {
		t.Fatal(err)
	}
	if analyzed.TotalInstrs() != native.TotalInstrs() {
		t.Errorf("analyzer trace %d micro-ops, hardware trace %d",
			analyzed.TotalInstrs(), native.TotalInstrs())
	}
	if analyzed.TotalLaneInstrs() != native.TotalLaneInstrs() {
		t.Errorf("analyzer lane instrs %d, hardware %d",
			analyzed.TotalLaneInstrs(), native.TotalLaneInstrs())
	}
}

// TestDivergentMaskssShrink checks masks reflect divergence: hdsearch.mid
// must contain micro-ops with few active lanes.
func TestDivergentMasksShrink(t *testing.T) {
	kt := kernelFor(t, "usuite.hdsearch.mid", 32)
	single := 0
	for _, ws := range kt.Warps {
		for i := range ws.Instrs {
			if ws.Instrs[i].ActiveLanes() == 1 {
				single++
			}
		}
	}
	if single == 0 {
		t.Error("no single-lane micro-ops in a heavily divergent workload")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	kt := kernelFor(t, "rodinia.bfs", 16)
	var buf bytes.Buffer
	if err := WriteText(&buf, kt); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kt, got) {
		t.Fatal("warp-trace text round trip mismatch")
	}
}

func TestCodecFileRoundTrip(t *testing.T) {
	kt := kernelFor(t, "vectoradd", 32)
	path := filepath.Join(t.TempDir(), "k.wtr")
	if err := WriteFile(path, kt); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalInstrs() != kt.TotalInstrs() || got.WarpSize != kt.WarpSize {
		t.Fatal("file round trip mismatch")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	for i, in := range []string{
		"",
		"BOGUS 1 p 32 1\n",
		"TFWT 2 p 32 1\n",
		"TFWT 1 p 32 1\nwarp 0 1\n", // truncated instr
		"TFWT 1 p 32 1\nwarp 0 1\nzz 0 0 0 0 0 0\n", // bad pc
	} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage parsed", i)
		}
	}
}
