// Package hwsim is the reproduction's stand-in for the paper's hardware
// oracle (an NVIDIA H100 measured with Nsight Compute, section IV): a
// lockstep SIMT executor that runs the canonical build of a workload
// *directly* on a modelled SIMT machine and measures ground-truth SIMT
// efficiency and memory transactions.
//
// Unlike the analyzer (internal/core), which predicts SIMT behaviour from
// sequentially-collected MIMD traces and dynamically reconstructed CFGs,
// hwsim executes live: each warp advances its threads basic block by basic
// block under a hardware SIMT stack, with branch outcomes computed during
// the lockstep run and reconvergence points taken from the *static*
// per-function CFG, as a compiler/hardware pair would. The two paths are
// fully independent above the instruction interpreter, which makes their
// agreement a meaningful correlation experiment (paper figure 5) and a
// strong differential test.
package hwsim

import (
	"fmt"
	"math/bits"
	"sort"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/simt"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// Options configure a lockstep run.
type Options struct {
	// WarpSize is the SIMD width (lanes per warp).
	WarpSize int
	// MaxInstrs bounds the per-thread traced instruction count; zero means
	// the VM default.
	MaxInstrs uint64
	// Listener, if non-nil, observes every lockstep block execution; the
	// warp-trace generator uses it to emit "native GPU" (nvbit-style)
	// traces for the correlation workloads.
	Listener simt.Listener
}

// Run executes nthreads instances of the program's entry function in
// lockstep warps and returns the measured metrics. args, if non-nil,
// initializes each thread's registers, exactly as in vm.TraceAll — the
// same workload Setup can drive both paths.
func Run(p *vm.Process, nthreads int, opts Options, args func(tid int, th *vm.Thread)) (*simt.Result, error) {
	if opts.WarpSize <= 0 || opts.WarpSize > simt.MaxWarpSize {
		return nil, fmt.Errorf("hwsim: warp size %d out of range [1,%d]", opts.WarpSize, simt.MaxWarpSize)
	}
	graphs := cfg.FromProgram(p.Prog)
	pdoms := ipdom.ComputeAll(graphs)

	res := &simt.Result{
		WarpSize: opts.WarpSize,
		Funcs:    make(map[uint32]*simt.FuncMetrics),
	}
	maxInstrs := opts.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 20_000_000
	}

	for start := 0; start < nthreads; start += opts.WarpSize {
		end := start + opts.WarpSize
		if end > nthreads {
			end = nthreads
		}
		w := &warpExec{
			index:     len(res.Warps),
			res:       res,
			graphs:    graphs,
			pdoms:     pdoms,
			opts:      opts,
			maxInstrs: maxInstrs,
		}
		for tid := start; tid < end; tid++ {
			th := p.NewThread(tid)
			if args != nil {
				args(tid, th)
			}
			w.threads = append(w.threads, th)
		}
		res.Warps = append(res.Warps, simt.WarpMetrics{})
		w.wm = &res.Warps[len(res.Warps)-1]
		if err := w.run(); err != nil {
			return nil, fmt.Errorf("hwsim: warp %d: %w", w.index, err)
		}
	}
	return res, nil
}

// pos identifies a lane's next block for lockstep comparison; depth
// disambiguates recursive invocations, mirroring internal/simt.
type pos struct {
	kind  uint8 // 0 block, 1 exit-marker (reconvergence only)
	fn    uint32
	block uint32
	depth int32
}

func (p pos) key() uint64 {
	return uint64(p.kind)<<62 | uint64(p.depth&0x3fff)<<48 | uint64(p.fn)<<24 | uint64(p.block)
}

const (
	kindBlock = 0
	kindExit  = 1
)

type hwEntry struct {
	mask   uint64
	rpc    pos
	hasRPC bool
	last   pos
	hasLST bool
}

type hwGroup struct {
	pos  pos
	mask uint64
}

type warpExec struct {
	index     int
	res       *simt.Result
	wm        *simt.WarpMetrics
	graphs    map[uint32]*cfg.DCFG
	pdoms     map[uint32]*ipdom.PostDom
	opts      Options
	maxInstrs uint64
	threads   []*vm.Thread
	done      uint64
	stack     []hwEntry
	mem       simt.MemCharger
}

func (w *warpExec) lanePos(lane int) (pos, bool) {
	th := w.threads[lane]
	if th.Done() {
		return pos{}, false
	}
	fn, b := th.Current()
	return pos{kind: kindBlock, fn: uint32(fn), block: uint32(b), depth: int32(th.Depth())}, true
}

// atOrPast reports whether a lane position has reached the reconvergence
// point: exact match for block points, or having returned below the
// reconvergence frame (which is how function-exit reconvergence manifests in
// live execution — the lane is already in the caller).
func atOrPast(p, rpc pos) bool {
	if rpc.kind == kindExit {
		return p.depth < rpc.depth
	}
	return p == rpc || p.depth < rpc.depth
}

func (w *warpExec) group(active uint64) []hwGroup {
	var groups []hwGroup
	for m := active; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		p, ok := w.lanePos(lane)
		if !ok {
			w.done |= 1 << uint(lane)
			continue
		}
		found := false
		for i := range groups {
			if groups[i].pos == p {
				groups[i].mask |= 1 << uint(lane)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, hwGroup{pos: p, mask: 1 << uint(lane)})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].pos.key() < groups[j].pos.key() })
	return groups
}

func (w *warpExec) run() error {
	all := uint64(0)
	for i := range w.threads {
		all |= 1 << uint(i)
	}
	w.stack = append(w.stack, hwEntry{mask: all})

	for steps := 0; len(w.stack) > 0; steps++ {
		e := &w.stack[len(w.stack)-1]
		active := e.mask &^ w.done
		groups := w.group(active)

		if len(groups) == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if e.hasRPC {
			allReached := true
			for _, g := range groups {
				if !atOrPast(g.pos, e.rpc) {
					allReached = false
					break
				}
			}
			if allReached {
				w.stack = w.stack[:len(w.stack)-1]
				continue
			}
		}
		if len(groups) == 1 {
			if err := w.execGroup(e, groups[0]); err != nil {
				return err
			}
			continue
		}
		w.diverge(e, groups)
	}
	return nil
}

func (w *warpExec) diverge(e *hwEntry, groups []hwGroup) {
	rpc := w.reconvergence(e, groups)
	for i := len(groups) - 1; i >= 0; i-- {
		g := groups[i]
		if atOrPast(g.pos, rpc) {
			continue // waits in the parent entry
		}
		w.stack = append(w.stack, hwEntry{mask: g.mask, rpc: rpc, hasRPC: true})
	}
}

func (w *warpExec) reconvergence(e *hwEntry, groups []hwGroup) pos {
	if e.hasRPC {
		for _, g := range groups {
			if g.pos == e.rpc {
				return e.rpc
			}
		}
	}
	minDepth := groups[0].pos.depth
	for _, g := range groups[1:] {
		if g.pos.depth < minDepth {
			minDepth = g.pos.depth
		}
	}
	// Same rule as the trace-replay engine: when every group is at or
	// below the just-executed block's frame, reconverge at its IPDOM —
	// this covers branch divergence and divergent indirect calls alike.
	if e.hasLST && e.last.kind == kindBlock && minDepth >= e.last.depth {
		return w.ipdomPos(e.last.fn, e.last.block, e.last.depth)
	}
	min := groups[0]
	for _, g := range groups[1:] {
		if g.pos.depth < min.pos.depth {
			min = g
		}
	}
	return pos{kind: kindExit, fn: min.pos.fn, depth: min.pos.depth}
}

func (w *warpExec) ipdomPos(fn, block uint32, depth int32) pos {
	g := w.graphs[fn]
	pd := w.pdoms[fn]
	ip := pd.IPDom(int32(block))
	if ip == g.ExitNode() {
		return pos{kind: kindExit, fn: fn, depth: depth}
	}
	return pos{kind: kindBlock, fn: fn, block: uint32(ip), depth: depth}
}

func (w *warpExec) execGroup(e *hwEntry, g hwGroup) error {
	lanes := make([]int, 0, bits.OnesCount64(g.mask))
	recs := make([]*trace.Record, 0, cap(lanes))
	for m := g.mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		th := w.threads[lane]
		if th.Executed > w.maxInstrs {
			fn, b := th.Current()
			return fmt.Errorf("lane %d exceeded instruction budget in f%d block %d", lane, fn, b)
		}
		sr, err := th.Step()
		if err != nil {
			return err
		}
		for _, s := range sr.Skips {
			if s.SkipKind == trace.SkipSpin {
				w.res.SkippedSpin += s.N
			} else {
				w.res.SkippedIO += s.N
			}
		}
		rec := sr.Rec
		lanes = append(lanes, lane)
		recs = append(recs, &rec)
	}

	fm := w.res.Funcs[g.pos.fn]
	if fm == nil {
		fm = &simt.FuncMetrics{}
		w.res.Funcs[g.pos.fn] = fm
	}
	simt.ChargeInstrs(w.wm, fm, recs[0].N, len(lanes))
	if g.pos.block == 0 {
		fm.Invocations++
	}
	w.mem.Charge(w.wm, fm, recs)

	if w.opts.Listener != nil {
		threads := make([]int, len(lanes))
		for i, l := range lanes {
			threads[i] = w.threads[l].TID()
		}
		w.opts.Listener.OnBlock(&simt.BlockExec{
			Warp:     w.index,
			Func:     g.pos.fn,
			Block:    g.pos.block,
			Depth:    g.pos.depth,
			Lanes:    lanes,
			Threads:  threads,
			Records:  recs,
			NumLanes: w.opts.WarpSize,
		})
	}
	e.last, e.hasLST = g.pos, true
	return nil
}
