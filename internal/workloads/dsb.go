package workloads

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// DeathStarBench microservices (Table I): Post, Text, URLShort, UniqueID,
// UserTag, User. One request per thread; all receive/respond through
// skipped I/O regions and allocate responses through the arena allocator.

var wlDSBUniqueID = register(&Workload{
	Name:           "dsb.uniqueid",
	Suite:          SuiteDSB,
	Desc:           "unique-id generation: pure hashing, the most convergent microservice",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("dsb.uniqueid")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		recv := w.NewBlock("recv")
		hashed := w.NewBlock("hashed")
		send := w.NewBlock("send")
		recv.IO(ioRecv).
			Mov(rg(10), idx8(0, int(ir.TID), 8, 0)).
			Mov(rg(11), im(48)).
			Call(s.Hash, hashed)
		// Compose the 64-bit id: machine bits | timestamp bits | counter.
		hashed.Shl(rg(10), im(16)).
			Or(rg(10), tid()).
			Mov(idx8(1, int(ir.TID), 8, 0), rg(10)).
			Jmp(send)
		send.IO(ioSend).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			in := p.AllocGlobal(uint64(8 * cfg.Threads))
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(in+uint64(8*i), r.Int63())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(in))
				th.SetReg(ir.R(1), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlDSBURLShort = register(&Workload{
	Name:           "dsb.urlshort",
	Suite:          SuiteDSB,
	Desc:           "URL shortener: hash plus fixed 7-digit base-62 encoding",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("dsb.urlshort")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		recv := w.NewBlock("recv")
		hashed := w.NewBlock("hashed")
		recv.IO(ioRecv).
			Mov(rg(10), idx8(0, int(ir.TID), 8, 0)).
			Mov(rg(11), im(16)).
			Call(s.Hash, hashed)
		// Emit 7 base-62 digits into a stack buffer.
		hashed.Mov(rg(2), rg(10))
		l := loopN(w, hashed, "digits", 3, 0, im(7))
		l.Body.Mov(rg(4), rg(2)).
			Rem(rg(4), im(62)).
			Mov(rg(5), idx8(1, 4, 8, 0)). // alphabet lookup
			Mov(ir.MemIdx(ir.SP, ir.R(3), 1, -64, 1), rg(5)).
			Div(rg(2), im(62))
		l.Next(l.Body)
		alloc := w.NewBlock("alloc")
		send := w.NewBlock("send")
		l.Exit.Mov(rg(10), im(64)).Call(s.Malloc, alloc)
		alloc.Mov(mem8(10, 0), rg(2)).Jmp(send)
		send.IO(ioSend).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			urls := p.AllocGlobal(uint64(8 * cfg.Threads))
			alphabet := p.AllocGlobal(8 * 62)
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(urls+uint64(8*i), r.Int63())
			}
			for i := 0; i < 62; i++ {
				p.WriteI64(alphabet+uint64(8*i), int64('0'+i))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(urls))
				th.SetReg(ir.R(1), int64(alphabet))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlDSBText = register(&Workload{
	Name:           "dsb.text",
	Suite:          SuiteDSB,
	Desc:           "text service: per-character tokenization with data-dependent word/space branches",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		chars := cfg.scale(64)
		pb := ir.NewBuilder("dsb.text")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		recv := w.NewBlock("recv")
		recv.IO(ioRecv).
			Mov(rg(2), tid()).
			Mul(rg(2), im(int64(chars))).
			Add(rg(2), rg(0)). // &my text
			Mov(rg(9), im(0))  // word count
		l := loopN(w, recv, "chars", 3, 0, im(int64(chars)))
		word := w.NewBlock("word")
		space := w.NewBlock("space")
		join := w.NewBlock("join")
		l.Body.Mov(rg(4), idx1(2, 3, 0)).
			Cmp(rg(4), im(' ')).
			Jcc(ir.CondEQ, space, word)
		word.Mul(rg(9), im(31)).
			Add(rg(9), rg(4)).
			Jmp(join)
		space.Add(rg(9), im(1)).
			And(rg(9), im(0xffff)).
			Jmp(join)
		l.Next(join)
		alloc := w.NewBlock("alloc")
		send := w.NewBlock("send")
		l.Exit.Mov(rg(10), im(64)).Call(s.Malloc, alloc)
		alloc.Mov(mem8(10, 0), rg(9)).Jmp(send)
		send.IO(ioSend).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			text := p.AllocGlobal(uint64(chars * cfg.Threads))
			buf := make([]byte, chars*cfg.Threads)
			for i := range buf {
				if r.Intn(6) == 0 {
					buf[i] = ' '
				} else {
					buf[i] = byte('a' + r.Intn(26))
				}
			}
			fillBytes(p, text, buf)
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(text))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlDSBPost = register(&Workload{
	Name:           "dsb.post",
	Suite:          SuiteDSB,
	Desc:           "compose-post: tokenization plus rare mention-hashing side paths and response assembly",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		words := cfg.scale(40)
		pb := ir.NewBuilder("dsb.post")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		recv := w.NewBlock("recv")
		recv.IO(ioRecv).
			Mov(rg(2), tid()).
			Mul(rg(2), im(int64(8*words))).
			Add(rg(2), rg(0)).
			Mov(rg(9), im(0))
		l := loopN(w, recv, "words", 3, 0, im(int64(words)))
		mention := w.NewBlock("mention")
		hashedM := w.NewBlock("hashed_mention")
		plain := w.NewBlock("plain")
		join := w.NewBlock("join")
		l.Body.Mov(rg(4), idx8(2, 3, 8, 0)).
			Mov(rg(5), rg(4)).
			And(rg(5), im(31)).
			Cmp(rg(5), im(0)). // ~1/32 of words are @mentions
			Jcc(ir.CondEQ, mention, plain)
		mention.Mov(rg(10), rg(4)).
			Mov(rg(11), im(6)).
			Call(s.Hash, hashedM)
		hashedM.Add(rg(9), rg(10)).Jmp(join)
		plain.Add(rg(9), rg(4)).Jmp(join)
		l.Next(join)
		alloc := w.NewBlock("alloc")
		copied := w.NewBlock("copied")
		send := w.NewBlock("send")
		l.Exit.Mov(rg(10), im(int64(8*words))).Call(s.Malloc, alloc)
		alloc.Mov(rg(11), im(int64(8*words))).
			Mov(rg(12), rg(2)).
			Call(s.Memcpy, copied)
		copied.Mov(mem8(10, 0), rg(9)).Jmp(send)
		send.IO(ioSend).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			text := p.AllocGlobal(uint64(8 * words * cfg.Threads))
			for i := 0; i < words*cfg.Threads; i++ {
				p.WriteI64(text+uint64(8*i), r.Int63())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(text))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlDSBUserTag = register(&Workload{
	Name:           "dsb.usertag",
	Suite:          SuiteDSB,
	Desc:           "user-tag store: fine-grain bucket locks around short chain walks and counter updates",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		const nbuckets = 128
		pb := ir.NewBuilder("dsb.usertag")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		recv := w.NewBlock("recv")
		hashed := w.NewBlock("hashed")
		recv.IO(ioRecv).
			Mov(rg(10), idx8(0, int(ir.TID), 8, 0)).
			Mov(rg(11), im(10)).
			Call(s.Hash, hashed)
		hashed.Mov(rg(5), rg(10)).
			And(rg(5), im(nbuckets-1)).
			Mov(rg(6), rg(5)).
			Shl(rg(6), im(3)).
			Add(rg(6), rg(1)).
			Lock(ir.Mem(ir.R(6), 0, 8)).
			Mov(rg(7), idx8(2, 5, 8, 0)) // chain length
		walk := loopN(w, hashed, "chain", 8, 0, rg(7))
		walk.Body.Mov(rg(9), idx8(3, 5, 8, 0)).
			Add(rg(9), im(1))
		walk.Next(walk.Body)
		walk.Exit.Mov(idx8(3, 5, 8, 0), rg(9)).
			Unlock(ir.Mem(ir.R(6), 0, 8)).
			IO(ioSend).
			Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			users := p.AllocGlobal(uint64(8 * cfg.Threads))
			locks := p.AllocGlobal(8 * nbuckets)
			chains := p.AllocGlobal(8 * nbuckets)
			counters := p.AllocGlobal(8 * nbuckets)
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(users+uint64(8*i), r.Int63())
			}
			for b := 0; b < nbuckets; b++ {
				p.WriteI64(chains+uint64(8*b), int64(1+r.Intn(3)))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(users))
				th.SetReg(ir.R(1), int64(locks))
				th.SetReg(ir.R(2), int64(chains))
				th.SetReg(ir.R(3), int64(counters))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlDSBUser = register(&Workload{
	Name:           "dsb.user",
	Suite:          SuiteDSB,
	Desc:           "user service login: fixed-round credential hashing with a rare miss path",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Microservice:   true,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("dsb.user")
		s := addStdlib(pb)
		w := pb.NewFunc("ProcessRequest")
		pb.SetEntry(w)
		recv := w.NewBlock("recv")
		hashed := w.NewBlock("hashed")
		recv.IO(ioRecv).
			Mov(rg(10), idx8(0, int(ir.TID), 8, 0)).
			Mov(rg(11), im(24)).
			Call(s.Hash, hashed)
		found := w.NewBlock("found")
		missing := w.NewBlock("missing")
		send := w.NewBlock("send")
		hashed.Mov(rg(5), rg(10)).
			And(rg(5), im(63)).
			Mov(rg(6), idx8(1, 5, 8, 0)). // credential slot
			Test(rg(6), im(7)).           // ~1/8 requests miss
			Jcc(ir.CondEQ, missing, found)
		found.Mov(rg(9), im(1)).Nop(6).Jmp(send)
		missing.Mov(rg(9), im(0)).Nop(2).Jmp(send)
		send.Mov(idx8(2, int(ir.TID), 8, 0), rg(9)).
			IO(ioSend).
			Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			creds := p.AllocGlobal(uint64(8 * cfg.Threads))
			table := p.AllocGlobal(8 * 64)
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(creds+uint64(8*i), r.Int63())
			}
			for i := 0; i < 64; i++ {
				p.WriteI64(table+uint64(8*i), r.Int63())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(creds))
				th.SetReg(ir.R(1), int64(table))
				th.SetReg(ir.R(2), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})
