// Package stats provides the statistical measures the paper's correlation
// study reports (section IV): mean absolute error, the Pearson correlation
// coefficient, error standard deviation, and the geometric mean figure 8
// summarizes with.
package stats

import (
	"fmt"
	"math"
)

// MAE returns the mean absolute error between predictions and references,
// as a fraction of the reference magnitude (the paper quotes "3% MAE" for
// SIMT efficiency, which is absolute on a 0..1 metric, and "17% MAE" for
// transaction counts, which is relative). Use MAEAbs for the absolute form.
func MAE(pred, ref []float64) (float64, error) {
	if err := sameLen(pred, ref); err != nil {
		return 0, err
	}
	sum, n := 0.0, 0
	for i := range pred {
		if ref[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-ref[i]) / math.Abs(ref[i])
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// MAEAbs returns the mean absolute error without normalization.
func MAEAbs(pred, ref []float64) (float64, error) {
	if err := sameLen(pred, ref); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - ref[i])
	}
	return sum / float64(len(pred)), nil
}

// Pearson returns the Pearson correlation coefficient of x and y. A perfect
// linear relationship yields ±1. It returns 0 for degenerate inputs (fewer
// than two points or zero variance).
func Pearson(x, y []float64) (float64, error) {
	if err := sameLen(x, y); err != nil {
		return 0, err
	}
	n := float64(len(x))
	if n < 2 {
		return 0, nil
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(x)))
}

// GeoMean returns the geometric mean of positive values; zeros and
// negatives are skipped (matching how benchmark geomeans are reported).
func GeoMean(x []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range x {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// WithinOneStdDev returns the fraction of errors within one standard
// deviation of the mean error, the consistency measure the paper reports
// ("30 out of these 44 samples, or approximately 83%").
func WithinOneStdDev(errs []float64) float64 {
	if len(errs) == 0 {
		return 0
	}
	m, sd := Mean(errs), StdDev(errs)
	n := 0
	for _, e := range errs {
		if math.Abs(e-m) <= sd {
			n++
		}
	}
	return float64(n) / float64(len(errs))
}

func sameLen(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	return nil
}
