package ir

import (
	"fmt"
	"io"
	"strings"
)

// Disassemble writes a human-readable listing of the program — the view a
// developer gets of the "binary" ThreadFuser analyzed. Used by cmd/tftrace's
// -disasm flag and handy when debugging workload constructions or compiler
// transforms.
func Disassemble(w io.Writer, p *Program) error {
	for _, f := range p.Funcs {
		marker := ""
		if f.ID == p.Entry {
			marker = "  ; entry"
		}
		if _, err := fmt.Fprintf(w, "func %s (f%d)%s\n", f.Name, f.ID, marker); err != nil {
			return err
		}
		for _, b := range f.Blocks {
			name := b.Name
			if name != "" {
				name = " (" + name + ")"
			}
			if _, err := fmt.Fprintf(w, "  b%d%s:\n", b.ID, name); err != nil {
				return err
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if _, err := fmt.Fprintf(w, "    %3d  %s\n", i, in.String()); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// DisassembleString returns the listing as a string.
func DisassembleString(p *Program) string {
	var b strings.Builder
	_ = Disassemble(&b, p)
	return b.String()
}
