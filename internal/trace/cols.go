package trace

import "math"

// This file defines the replay-oriented SoA ("structure of arrays") view of
// a trace. The SIMT replay engine's lockstep-fusion fast path verifies, for
// every window element, that all active lanes carry the same upcoming block
// execution — a comparison that only involves a record's control fields
// (kind, function, block, instruction count, lock presence, access-list
// length), never its slice contents. Packing exactly those fields into one
// uint64 per record turns that per-lane check into a single 8-byte compare
// and cuts the verification loop's memory traffic by an order of magnitude
// versus touching ~72-byte Record structs. A parallel prefix-sum column over
// each thread's flattened access list lets the fused memory-charge path
// reach lane accesses without loading Record slice headers at all.
//
// Control-word layout (low to high):
//
//	bits  0..19  N        instruction count (20 bits)
//	bits 20..38  Block    basic-block id (19 bits)
//	bits 39..56  Func     function id (18 bits)
//	bits 57..58  Kind     record kind (KindBBL == 0)
//	bit  59      locks    record carries at least one lock operation
//	bits 60..62  mem      access-list length, saturated at CtlMemOverflow
//	bit  63      invalid  some field overflowed its width; never fuse
//
// Records whose fields do not fit are marked CtlInvalid, which the fused
// path treats exactly like any other window breaker: the stepped engine —
// which reads the full Record — handles them, so packing width limits are a
// performance cliff, never a correctness one.
const (
	ctlNBits     = 20
	ctlBlockBits = 19
	ctlFuncBits  = 18

	// CtlNMask extracts a control word's instruction count.
	CtlNMask = 1<<ctlNBits - 1
	// CtlBlockShift positions the block id field.
	CtlBlockShift = ctlNBits
	// CtlFuncShift positions the function id field.
	CtlFuncShift = ctlNBits + ctlBlockBits
	// CtlKindShift positions the record kind field.
	CtlKindShift = ctlNBits + ctlBlockBits + ctlFuncBits
	// CtlKindMask isolates the kind field; a KindBBL record contributes zero
	// bits here, so `ctl & CtlKindMask != 0` reads "not a block record".
	CtlKindMask = uint64(3) << CtlKindShift
	// CtlLocksBit is set when the record carries lock operations.
	CtlLocksBit = uint64(1) << 59
	// CtlMemShift positions the access-list length field.
	CtlMemShift = 60
	// CtlMemOverflow is the saturated access-list length: the real list is
	// this long or longer and must be read from the Record.
	CtlMemOverflow = 7
	// CtlInvalid marks a record whose fields overflow the packed widths.
	CtlInvalid = uint64(1) << 63

	// CtlFnBlockMask isolates the (function, block) fields — a window's
	// position identity at constant call depth.
	CtlFnBlockMask = uint64(1<<(ctlBlockBits+ctlFuncBits)-1) << CtlBlockShift
	// CtlFuncMask isolates the function field alone.
	CtlFuncMask = uint64(1<<ctlFuncBits-1) << CtlFuncShift
	// CtlRunMask isolates (function, block, N) — the identity of one scaled
	// accounting run inside a fused window.
	CtlRunMask = CtlFnBlockMask | CtlNMask
)

// PackFnBlock packs a (function, block) pair the way control words hold it,
// for masked comparison against `ctl & CtlFnBlockMask`. Ids that overflow
// their field widths spill into higher bits, so the comparison simply fails
// — which is correct, because any record actually carrying such ids was
// marked CtlInvalid at build time.
func PackFnBlock(fn, block uint32) uint64 {
	return uint64(fn)<<CtlFuncShift | uint64(block)<<CtlBlockShift
}

// CtlFunc extracts the function id of a valid control word.
func CtlFunc(ctl uint64) uint32 {
	return uint32(ctl >> CtlFuncShift & (1<<ctlFuncBits - 1))
}

// CtlBlock extracts the block id of a valid control word.
func CtlBlock(ctl uint64) uint32 {
	return uint32(ctl >> CtlBlockShift & (1<<ctlBlockBits - 1))
}

// PackMemMeta packs the non-address fields of one memory access into the
// MemMeta column word: instruction index, size, and the store bit. Equality
// of two meta words is exactly field-wise equality of everything but Addr,
// which is the per-access check the fused charge path performs per lane.
func PackMemMeta(a *MemAccess) uint32 {
	w := uint32(a.Instr)<<16 | uint32(a.Size)<<8
	if a.Store {
		w |= 1
	}
	return w
}

// MetaInstr extracts the instruction index of a MemMeta word.
func MetaInstr(meta uint32) uint16 { return uint16(meta >> 16) }

// MetaSize extracts the access size of a MemMeta word.
func MetaSize(meta uint32) uint8 { return uint8(meta >> 8) }

// MetaStore extracts the store bit of a MemMeta word.
func MetaStore(meta uint32) bool { return meta&1 != 0 }

// Cols is the packed SoA view of a trace's threads: one control word per
// record, plus each thread's memory accesses flattened into per-field
// columns (addresses and packed meta words separately — the fused charge
// path compares meta across lanes with one 4-byte load and never touches
// padding) with a prefix-sum offset table. All outer slices are indexed by
// the thread's position in Trace.Threads; Ctl[i] is parallel to
// Threads[i].Records, MemOff[i] has one extra trailing entry so record j's
// accesses are MemAddr[i][MemOff[i][j]:MemOff[i][j+1]] (and the same range
// of MemMeta[i]). A Cols is a derived, read-only view: it must be rebuilt if
// the underlying records change.
type Cols struct {
	Ctl     [][]uint64
	MemOff  [][]uint32
	MemAddr [][]uint64
	MemMeta [][]uint32
}

// BuildCols derives the packed column view of a trace. One streaming pass
// per thread; the result is safe for concurrent readers.
func BuildCols(t *Trace) *Cols {
	c := NewCols(len(t.Threads))
	for i, th := range t.Threads {
		c.SetThread(i, th)
	}
	return c
}

// NewCols returns an empty column view with room for n threads, for callers
// that fill thread slots out of order via SetThread — the streaming analyzer
// builds each section's columns inside the decode worker that just produced
// it, while the section is still cache-hot.
func NewCols(n int) *Cols {
	return &Cols{
		Ctl:     make([][]uint64, n),
		MemOff:  make([][]uint32, n),
		MemAddr: make([][]uint64, n),
		MemMeta: make([][]uint32, n),
	}
}

// SetThread derives and installs thread i's packed columns. Distinct slots
// may be filled concurrently; the view is safe for readers once every slot a
// reader touches has been set.
func (c *Cols) SetThread(i int, th *ThreadTrace) {
	c.Ctl[i], c.MemOff[i], c.MemAddr[i], c.MemMeta[i] = buildThreadCols(th)
}

func buildThreadCols(th *ThreadTrace) ([]uint64, []uint32, []uint64, []uint32) {
	n := len(th.Records)
	ctl := make([]uint64, n)
	off := make([]uint32, n+1)
	total := 0
	for j := range th.Records {
		total += len(th.Records[j].Mem)
	}
	if total > math.MaxUint32 {
		// Offsets would not fit; leave the thread entirely unfusable.
		for j := range ctl {
			ctl[j] = CtlInvalid
		}
		return ctl, off, nil, nil
	}
	addr := make([]uint64, 0, total)
	meta := make([]uint32, 0, total)
	for j := range th.Records {
		r := &th.Records[j]
		off[j] = uint32(len(addr))
		for i := range r.Mem {
			addr = append(addr, r.Mem[i].Addr)
			meta = append(meta, PackMemMeta(&r.Mem[i]))
		}
		if r.N > CtlNMask || r.Block >= 1<<ctlBlockBits || r.Func >= 1<<ctlFuncBits || r.Kind > KindSkip {
			ctl[j] = CtlInvalid
			continue
		}
		w := r.N | uint64(r.Block)<<CtlBlockShift | uint64(r.Func)<<CtlFuncShift | uint64(r.Kind)<<CtlKindShift
		if len(r.Locks) > 0 {
			w |= CtlLocksBit
		}
		if ml := len(r.Mem); ml >= CtlMemOverflow {
			w |= CtlMemOverflow << CtlMemShift
		} else {
			w |= uint64(ml) << CtlMemShift
		}
		ctl[j] = w
	}
	off[n] = uint32(len(addr))
	return ctl, off, addr, meta
}

// EnsureCols returns the trace's packed column view, building and caching it
// on first use. Not safe for concurrent first calls; pipelines build the
// view once (analyzer setup, bench setup) before fanning out replay workers,
// which then share it read-only.
func (t *Trace) EnsureCols() *Cols {
	if t.Cols == nil {
		t.Cols = BuildCols(t)
	}
	return t.Cols
}
