// Porting advisor: the developer use case of section V-A. The paper argues
// that a zero-effort performance estimate lowers the risk of porting CPU
// code to SIMT hardware. This example sweeps every bundled Table-I workload
// and ranks it into porting tiers by projected SIMT efficiency and memory
// divergence, like a triage report a team would run over its services.
//
// Run with:
//
//	go run ./examples/portingadvisor
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"threadfuser"
	"threadfuser/internal/opt"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/workloads"
)

type verdict struct {
	name    string
	eff     float64
	heapTx  float64
	speedup float64
	tier    string
}

func main() {
	var results []verdict
	for _, w := range workloads.TableI() {
		rep, err := threadfuser.AnalyzeWorkload(w, threadfuser.Options{Seed: 1})
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		p, err := threadfuser.Project(w, threadfuser.Options{Threads: 256, Seed: 1})
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		results = append(results, verdict{
			name:    w.Name,
			eff:     rep.Efficiency,
			heapTx:  rep.HeapTxPerInstr,
			speedup: p.Speedup,
			tier:    tier(rep.Efficiency, rep.HeapTxPerInstr),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].eff > results[j].eff })

	fmt.Println("SIMT porting advisor (warp 32; reduced-scale inputs)")
	fmt.Printf("%-28s %10s %14s %10s  %s\n", "WORKLOAD", "SIMT EFF", "HEAP TX/INSTR", "SPEEDUP", "ADVICE")
	for _, r := range results {
		fmt.Printf("%-28s %9.1f%% %14.1f %9.2fx  %s\n", r.name, r.eff*100, r.heapTx, r.speedup, r.tier)
	}

	fmt.Println(`
Tiers:
  port as-is      high efficiency and coalesced accesses; expect wins with a direct port
  port + data fix control converges but memory diverges; restructure layouts (AoS->SoA) first
  refactor first  control divergence dominates; use the per-function report to find it
  keep on CPU     both control and memory fight the SIMT model`)

	// For the refactor tiers, explain *which* divergent diamonds survive the
	// compiler and why: the static oracle classifies the branches and flags
	// meldable arms, and the if-conversion report names the reason each
	// rejected candidate was skipped (calls, stores, flags, budget, ...) —
	// the difference between "restructure the algorithm" and "raise a knob".
	fmt.Println("\nDivergent diamonds the compiler left behind (refactor tiers):")
	any := false
	for _, r := range results {
		if r.tier == "port as-is" {
			continue
		}
		for _, line := range survivingDiamonds(r.name) {
			fmt.Printf("  %-28s %s\n", r.name, line)
			any = true
		}
	}
	if !any {
		fmt.Println("  (none: every divergent diamond is already if-converted at O3)")
	}
}

// survivingDiamonds reports, for one workload, every statically-divergent
// branch whose diamond the O3 if-converter examined but refused, with the
// refusal reasons, plus the static oracle's meld findings (arms isomorphic
// modulo renaming, or convertible with a bigger budget).
func survivingDiamonds(name string) []string {
	w, err := workloads.ByName(name)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 1})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	res := staticsimt.Analyze(inst.Prog, staticsimt.Options{})
	divergent := map[string]*staticsimt.Branch{}
	var lines []string
	for fi := range res.Funcs {
		fr := &res.Funcs[fi]
		for bi := range fr.Branches {
			b := &fr.Branches[bi]
			if !b.Uniform {
				divergent[fmt.Sprintf("%s.b%d", fr.Name, b.Block)] = b
			}
		}
		for _, m := range fr.Melds {
			lines = append(lines, fmt.Sprintf("%s.b%d: meldable (%s): arms b%d/b%d of %d/%d instr(s), ~%d issue slot(s) reclaimable",
				fr.Name, m.Block, m.Kind, m.ThenBlock, m.ElseBlock, m.ThenInstrs, m.ElseInstrs, m.SavedIssues))
		}
	}
	// A fresh instance: IfConvertReport mutates the program it sweeps.
	scratch, err := w.Instantiate(workloads.Config{Seed: 1})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	_, diamonds := opt.IfConvertReport(scratch.Prog, opt.IfBudget(opt.O3), true)
	for _, d := range diamonds {
		if d.Convertible {
			continue
		}
		key := fmt.Sprintf("%s.b%d", d.FuncName, d.Block)
		b, ok := divergent[key]
		if !ok {
			continue // statically uniform: flattening it buys nothing
		}
		reasons := make([]string, len(d.Reasons))
		for i, rs := range d.Reasons {
			reasons[i] = string(rs)
		}
		lines = append(lines, fmt.Sprintf("%s: divergent (%s), if-conversion skipped it: %s",
			key, strings.Join(b.Causes, "|"), strings.Join(reasons, ", ")))
	}
	return lines
}

// tier buckets a workload the way section V-A reasons about them:
// efficiency is necessary but not sufficient; memory divergence decides
// whether the port needs data-layout work.
func tier(eff, heapTx float64) string {
	const coalesced = 12 // 8 is ideal for 8-byte lanes; allow slack
	switch {
	case eff >= 0.80 && heapTx <= coalesced:
		return "port as-is"
	case eff >= 0.80:
		return "port + data fix"
	case eff >= 0.40:
		return "refactor first"
	default:
		return "keep on CPU"
	}
}
