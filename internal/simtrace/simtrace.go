// Package simtrace generates warp-based instruction traces, the bridge
// between ThreadFuser's analysis and a trace-driven SIMT simulator (the
// paper feeds Accel-Sim; this reproduction feeds internal/gpusim).
//
// As in the paper (section III), x86 CISC instructions are cracked into
// RISC micro-ops — an ALU instruction with a memory source becomes a load
// plus the ALU op, a read-modify-write becomes load/op/store — and memory
// accesses are tagged by space: thread-stack addresses become local-space
// accesses (interleaved per lane on real GPUs), everything else global.
// Each warp instruction carries the active mask and the active lanes'
// addresses so the simulator can coalesce exactly as hardware would.
package simtrace

import (
	"fmt"
	"math/bits"

	"threadfuser/internal/ir"
	"threadfuser/internal/simt"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// Space is a memory space in the generated trace.
type Space uint8

const (
	SpaceNone Space = iota
	// SpaceLocal maps the thread-private stack segment.
	SpaceLocal
	// SpaceGlobal maps heap and global-segment accesses.
	SpaceGlobal
)

func (s Space) String() string {
	switch s {
	case SpaceLocal:
		return "local"
	case SpaceGlobal:
		return "global"
	}
	return "none"
}

// NoReg marks an unused register slot in a micro-op.
const NoReg = 0xFF

// Temporary registers introduced by cracking (beyond the architectural 32).
const (
	TmpLoad = 32 + iota
	TmpStore
	NumTraceRegs
)

// WInstr is one warp-level RISC micro-op.
type WInstr struct {
	// PC is a synthetic program counter: function<<20 | block<<8 | slot.
	PC uint64
	// Class drives the timing model (ALU, FPU, SFU, Mem, Ctrl, Sync).
	Class ir.Class
	// Op is the originating opcode (for dumps and statistics).
	Op ir.Opcode
	// Dst and Srcs are register ids (NoReg when absent) used for
	// dependence tracking in the simulator's scoreboard.
	Dst  uint8
	Srcs [2]uint8
	// Mask is the active-lane mask.
	Mask uint64
	// Memory fields, valid when Class == ir.ClassMem.
	Load  bool
	Space Space
	Size  uint8
	// Addrs holds the active lanes' addresses in ascending lane order.
	Addrs []uint64
}

// ActiveLanes returns the number of active lanes.
func (w *WInstr) ActiveLanes() int { return bits.OnesCount64(w.Mask) }

// WarpStream is the ordered micro-op stream of one warp.
type WarpStream struct {
	Warp   int
	Instrs []WInstr
}

// KernelTrace is a complete warp-trace "kernel" for the simulator.
type KernelTrace struct {
	Program  string
	WarpSize int
	Warps    []*WarpStream
}

// TotalInstrs returns the total warp micro-op count.
func (k *KernelTrace) TotalInstrs() uint64 {
	var n uint64
	for _, w := range k.Warps {
		n += uint64(len(w.Instrs))
	}
	return n
}

// TotalLaneInstrs returns micro-ops summed over active lanes.
func (k *KernelTrace) TotalLaneInstrs() uint64 {
	var n uint64
	for _, w := range k.Warps {
		for i := range w.Instrs {
			n += uint64(w.Instrs[i].ActiveLanes())
		}
	}
	return n
}

// collector implements simt.Listener, cracking each lockstep block
// execution into the warp streams.
type collector struct {
	prog     *ir.Program
	warpSize int
	streams  map[int]*WarpStream
	err      error
}

// Generate replays a MIMD trace under the analyzer's SIMT emulation and
// emits the warp-based instruction trace (the "ThreadFuser trace" path of
// figure 6). The analysis options select warp size and batching.
func Generate(prog *ir.Program, tr *trace.Trace, warpSize int) (*KernelTrace, error) {
	c := &collector{prog: prog, warpSize: warpSize, streams: map[int]*WarpStream{}}
	_, err := analyzeWithListener(tr, warpSize, c)
	if err != nil {
		return nil, err
	}
	if c.err != nil {
		return nil, c.err
	}
	return c.finish(prog.Name, warpSize), nil
}

// FromHardware runs the program live on the lockstep oracle and emits its
// warp trace — the stand-in for nvbit-collected traces of the native CUDA
// twin (figure 6's "CUDA implementation" series).
func FromHardware(p *vm.Process, threads, warpSize int, args func(int, *vm.Thread)) (*KernelTrace, error) {
	c := &collector{prog: p.Prog, warpSize: warpSize, streams: map[int]*WarpStream{}}
	if _, err := hwRun(p, threads, warpSize, c, args); err != nil {
		return nil, err
	}
	if c.err != nil {
		return nil, c.err
	}
	return c.finish(p.Prog.Name, warpSize), nil
}

func (c *collector) finish(name string, warpSize int) *KernelTrace {
	kt := &KernelTrace{Program: name, WarpSize: warpSize}
	maxWarp := -1
	for w := range c.streams {
		if w > maxWarp {
			maxWarp = w
		}
	}
	for w := 0; w <= maxWarp; w++ {
		if s := c.streams[w]; s != nil {
			kt.Warps = append(kt.Warps, s)
		}
	}
	return kt
}

func (c *collector) OnBlock(be *simt.BlockExec) {
	if c.err != nil {
		return
	}
	f := c.prog.Func(ir.FuncID(be.Func))
	if int(be.Block) >= len(f.Blocks) {
		c.err = fmt.Errorf("simtrace: block %d out of range in %s", be.Block, f.Name)
		return
	}
	b := f.Blocks[be.Block]
	stream := c.streams[be.Warp]
	if stream == nil {
		stream = &WarpStream{Warp: be.Warp}
		c.streams[be.Warp] = stream
	}
	var mask uint64
	for _, l := range be.Lanes {
		mask |= 1 << uint(l)
	}
	for i := range b.Instrs {
		c.crack(stream, be, b, uint16(i), mask)
	}
}

// crack emits the micro-ops for one static instruction.
func (c *collector) crack(s *WarpStream, be *simt.BlockExec, b *ir.Block, idx uint16, mask uint64) {
	in := &b.Instrs[idx]
	pc := uint64(be.Func)<<20 | uint64(be.Block)<<8 | uint64(idx)

	switch in.Op {
	case ir.OpIO, ir.OpSpin:
		return // untraced regions never reach the simulator
	case ir.OpLock, ir.OpUnlock:
		s.Instrs = append(s.Instrs, WInstr{
			PC: pc, Class: ir.ClassSync, Op: in.Op, Dst: NoReg,
			Srcs: [2]uint8{NoReg, NoReg}, Mask: mask,
		})
		return
	}

	m, load, store := in.MemOperand()
	if load {
		addrs, size := c.gatherAddrs(be, idx, false)
		s.Instrs = append(s.Instrs, WInstr{
			PC: pc, Class: ir.ClassMem, Op: ir.OpMov,
			Dst: TmpLoad, Srcs: [2]uint8{addrReg(m), addrReg2(m)},
			Mask: mask, Load: true, Space: spaceOf(addrs), Size: size, Addrs: addrs,
		})
	}

	// The compute micro-op (skipped for pure loads/stores via OpMov).
	isPureMove := in.Op == ir.OpMov && (load || store)
	if !isPureMove {
		dst, s1, s2 := regUse(in, load)
		class := in.Op.OpClass()
		if class == ir.ClassNop {
			class = ir.ClassALU
		}
		s.Instrs = append(s.Instrs, WInstr{
			PC: pc, Class: class, Op: in.Op, Dst: dst, Srcs: [2]uint8{s1, s2}, Mask: mask,
		})
	}

	if store {
		addrs, size := c.gatherAddrs(be, idx, true)
		src := uint8(TmpStore)
		if isPureMove {
			if in.Src.Kind == ir.OpndReg {
				src = uint8(in.Src.Reg)
			} else {
				src = NoReg
			}
		}
		s.Instrs = append(s.Instrs, WInstr{
			PC: pc, Class: ir.ClassMem, Op: ir.OpMov,
			Dst: NoReg, Srcs: [2]uint8{src, addrReg(m)},
			Mask: mask, Load: false, Space: spaceOf(addrs), Size: size, Addrs: addrs,
		})
	}
}

// gatherAddrs collects active lanes' addresses for the instruction index,
// in ascending lane order.
func (c *collector) gatherAddrs(be *simt.BlockExec, idx uint16, store bool) ([]uint64, uint8) {
	var addrs []uint64
	var size uint8
	for _, rec := range be.Records {
		for _, m := range rec.Mem {
			if m.Instr == idx && m.Store == store {
				addrs = append(addrs, m.Addr)
				size = m.Size
			}
		}
	}
	return addrs, size
}

// spaceOf classifies by the first address: stack segments become local
// space, everything else global (paper section III).
func spaceOf(addrs []uint64) Space {
	if len(addrs) == 0 {
		return SpaceGlobal
	}
	if vm.SegmentOf(addrs[0]) == vm.SegStack {
		return SpaceLocal
	}
	return SpaceGlobal
}

// regUse extracts the dependence registers of the compute micro-op. When
// the source was a memory operand, the cracked load's temp register feeds
// the op instead.
func regUse(in *ir.Instr, srcWasLoad bool) (dst, s1, s2 uint8) {
	dst, s1, s2 = NoReg, NoReg, NoReg
	if in.Dst.Kind == ir.OpndReg {
		dst = uint8(in.Dst.Reg)
		switch in.Op {
		case ir.OpMov, ir.OpLea:
		default:
			s1 = dst // RMW-style ops read their destination
		}
	} else if in.Dst.IsMem() {
		dst = TmpStore
		s1 = TmpLoad
	}
	switch {
	case in.Src.Kind == ir.OpndReg:
		s2 = uint8(in.Src.Reg)
	case in.Src.IsMem() && srcWasLoad:
		s2 = TmpLoad
	}
	return dst, s1, s2
}

func addrReg(m ir.MemRef) uint8 { return uint8(m.Base) }

func addrReg2(m ir.MemRef) uint8 {
	if m.HasIndex {
		return uint8(m.Index)
	}
	return NoReg
}
