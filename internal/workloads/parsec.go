package workloads

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// PARSEC 3.0 workloads (Table I): blackscholes, streamcluster, bodytrack,
// facesim, fluidanimate, freqmine, swaptions, vips, x264. Each thread models
// one unit of the data partition the pthread/OpenMP version hands a worker.

var wlBlackscholes = register(&Workload{
	Name:           "parsec.blackscholes",
	Suite:          SuiteParsec,
	Desc:           "Black-Scholes pricing: heavy FP pipeline with the CNDF sign branch",
	DefaultThreads: 64,
	PaperThreads:   1024,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		options := cfg.scale(8)
		pb := ir.NewBuilder("parsec.blackscholes")

		// CNDF(x): branch on sign, then a fixed polynomial (both paths run
		// the polynomial; only the prologue differs, like the real code).
		cndf := pb.NewFunc("CNDF")
		c0 := cndf.NewBlock("sign")
		neg := cndf.NewBlock("neg")
		pos := cndf.NewBlock("pos")
		poly := cndf.NewBlock("poly")
		c0.Mov(rg(12), im(0)).
			CvtIF(rg(12), rg(12)).
			FCmp(rg(11), rg(12)).
			Jcc(ir.CondLT, neg, pos)
		neg.FAbs(rg(11)).Mov(rg(13), im(1)).Jmp(poly)
		pos.Mov(rg(13), im(0)).Nop(1).Jmp(poly)
		poly.Mov(rg(12), rg(11)).
			FMul(rg(12), rg(11)).
			FMul(rg(12), rg(14)).
			FAdd(rg(12), rg(11)).
			FSqrt(rg(12)).
			FMul(rg(12), rg(14)).
			FAdd(rg(12), rg(14)).
			Ret()

		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=spot, r1=strike, r2=rate, r3=vol, r4=out.
		pre := w.NewBlock("pre")
		l := loopN(w, pre, "options", 5, 0, im(int64(options)))
		// d1 = (log-ish mix of spot/strike) — modelled with mul/div/sqrt.
		body2 := w.NewBlock("after_cndf")
		l.Body.Mov(rg(6), tid()).
			Mul(rg(6), im(int64(options))).
			Add(rg(6), rg(5)).              // option index
			Mov(rg(11), idx8(0, 6, 8, 0)).  // spot
			FDiv(rg(11), idx8(1, 6, 8, 0)). // / strike
			Mov(rg(14), idx8(3, 6, 8, 0)).  // vol
			FMul(rg(11), rg(14)).
			FAdd(rg(11), idx8(2, 6, 8, 0)). // + rate
			Call(cndf, body2)
		body2.Mov(rg(15), rg(12)).
			FMul(rg(15), idx8(0, 6, 8, 0)).
			Mov(idx8(4, 6, 8, 0), rg(15))
		l.Next(body2)
		l.Exit.Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			n := cfg.Threads * options
			spot := p.AllocGlobal(uint64(8 * n))
			strike := p.AllocGlobal(uint64(8 * n))
			rate := p.AllocGlobal(uint64(8 * n))
			vol := p.AllocGlobal(uint64(8 * n))
			out := p.AllocGlobal(uint64(8 * n))
			for i := 0; i < n; i++ {
				p.WriteF64(spot+uint64(8*i), 20+80*r.Float64())
				p.WriteF64(strike+uint64(8*i), 20+80*r.Float64())
				p.WriteF64(rate+uint64(8*i), r.Float64()-0.5) // signs split CNDF
				p.WriteF64(vol+uint64(8*i), 0.1+0.4*r.Float64())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(spot))
				th.SetReg(ir.R(1), int64(strike))
				th.SetReg(ir.R(2), int64(rate))
				th.SetReg(ir.R(3), int64(vol))
				th.SetReg(ir.R(4), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlParsecSC = register(&Workload{
	Name:           "parsec.streamcluster",
	Suite:          SuiteParsec,
	Desc:           "streamcluster kernel: per-point distances to candidate centers, conditional reassignment",
	DefaultThreads: 64,
	PaperThreads:   8192,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		// Same kernel family as rodinia.sc at a different operating point
		// (more centers, higher dimensionality), as in PARSEC's native input.
		return buildClusterKernel("parsec.streamcluster", cfg, cfg.scale(12), 16)
	},
})

var wlBodytrack = register(&Workload{
	Name:           "parsec.bodytrack",
	Suite:          SuiteParsec,
	Desc:           "bodytrack particle weights: per-part projection with data-dependent visibility paths",
	DefaultThreads: 64,
	PaperThreads:   1024,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		parts := cfg.scale(8)
		pb := ir.NewBuilder("parsec.bodytrack")
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=particles, r1=visibility, r2=out.
		pre := w.NewBlock("pre")
		pre.Mov(rg(9), im(0))
		l := loopN(w, pre, "parts", 3, 0, im(int64(parts)))
		visible := w.NewBlock("visible")
		occluded := w.NewBlock("occluded")
		join := w.NewBlock("join")
		l.Body.Mov(rg(4), tid()).
			Mul(rg(4), im(int64(parts))).
			Add(rg(4), rg(3)).
			Mov(rg(5), idx8(0, 4, 8, 0)). // particle-part state
			Mov(rg(6), idx8(1, 4, 8, 0)). // visibility flag
			Cmp(rg(6), im(0)).
			Jcc(ir.CondEQ, occluded, visible)
		// Visible parts run the full edge-error kernel.
		visible.Mov(rg(7), rg(5)).
			FMul(rg(7), rg(5)).
			FAdd(rg(7), rg(5)).
			FSqrt(rg(7)).
			FMul(rg(7), rg(7)).
			FAdd(rg(9), rg(7)).
			Nop(6).
			Jmp(join)
		occluded.Nop(1).Jmp(join)
		l.Next(join)
		l.Exit.Mov(idx8(2, int(ir.TID), 8, 0), rg(9)).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			n := cfg.Threads * parts
			particles := p.AllocGlobal(uint64(8 * n))
			vis := p.AllocGlobal(uint64(8 * n))
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < n; i++ {
				p.WriteF64(particles+uint64(8*i), r.NormFloat64())
				v := int64(0)
				if r.Intn(100) < 60 {
					v = 1
				}
				p.WriteI64(vis+uint64(8*i), v)
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(particles))
				th.SetReg(ir.R(1), int64(vis))
				th.SetReg(ir.R(2), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlFacesim = register(&Workload{
	Name:           "parsec.facesim",
	Suite:          SuiteParsec,
	Desc:           "facesim node update: fixed 3x3 stiffness products with a rare boundary-node path",
	DefaultThreads: 64,
	PaperThreads:   1024,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("parsec.facesim")
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=nodes (9 f64 each), r1=boundary flags, r2=out.
		pre := w.NewBlock("pre")
		pre.Mov(rg(3), tid()).
			Mul(rg(3), im(72)).
			Add(rg(3), rg(0)).
			Mov(rg(9), im(0))
		rl := loopN(w, pre, "rows", 4, 0, im(3))
		cl := loopN(w, rl.Body, "cols", 5, 0, im(3))
		cl.Body.Mov(rg(6), rg(4)).
			Mul(rg(6), im(3)).
			Add(rg(6), rg(5)).
			Mov(rg(7), idx8(3, 6, 8, 0)).
			FMul(rg(7), rg(7)).
			FAdd(rg(9), rg(7))
		cl.Next(cl.Body)
		rl.Next(cl.Exit)
		boundary := w.NewBlock("boundary")
		interior := w.NewBlock("interior")
		done := w.NewBlock("done")
		rl.Exit.Mov(rg(8), idx8(1, int(ir.TID), 8, 0)).
			Cmp(rg(8), im(0)).
			Jcc(ir.CondNE, boundary, interior)
		boundary.FMul(rg(9), rg(9)).Nop(4).Jmp(done)
		interior.FSqrt(rg(9)).Jmp(done)
		done.Mov(idx8(2, int(ir.TID), 8, 0), rg(9)).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			nodes := p.AllocGlobal(uint64(72 * cfg.Threads))
			bnd := p.AllocGlobal(uint64(8 * cfg.Threads))
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < 9*cfg.Threads; i++ {
				p.WriteF64(nodes+uint64(8*i), r.NormFloat64())
			}
			for i := 0; i < cfg.Threads; i++ {
				if r.Intn(10) == 0 {
					p.WriteI64(bnd+uint64(8*i), 1)
				}
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(nodes))
				th.SetReg(ir.R(1), int64(bnd))
				th.SetReg(ir.R(2), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlFluidanimate = register(&Workload{
	Name:           "parsec.fluidanimate",
	Suite:          SuiteParsec,
	Desc:           "fluidanimate cell update: variable particles-per-cell loops with fine-grain cell locks",
	DefaultThreads: 64,
	PaperThreads:   4096,
	Microservice:   false,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("parsec.fluidanimate")
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=cellCounts, r1=particles, r2=cellLocks, r3=out.
		pre := w.NewBlock("pre")
		pre.Mov(rg(4), idx8(0, int(ir.TID), 8, 0)). // my particle count
								Mov(rg(9), im(0))
		pl := loopN(w, pre, "particles", 5, 0, rg(4))
		nl := loopN(w, pl.Body, "neighbors", 6, 0, im(3))
		nl.Body.Mov(rg(7), tid()).
			Add(rg(7), rg(6)).
			Rem(rg(7), im(int64(cfg.Threads))). // neighbour cell id
			Mov(rg(8), idx8(1, 7, 8, 0)).       // neighbour particle state
			FMul(rg(8), rg(8)).
			FAdd(rg(9), rg(8))
		nl.Next(nl.Body)
		pl.Next(nl.Exit)
		lockB := w.NewBlock("lock")
		pl.Exit.Mov(rg(7), tid()).
			Shl(rg(7), im(3)).
			Add(rg(7), rg(2)).
			Jmp(lockB)
		lockB.Lock(ir.Mem(ir.R(7), 0, 8)).
			Mov(rg(8), idx8(3, int(ir.TID), 8, 0)).
			FAdd(rg(8), rg(9)).
			Mov(idx8(3, int(ir.TID), 8, 0), rg(8)).
			Unlock(ir.Mem(ir.R(7), 0, 8)).
			Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			counts := p.AllocGlobal(uint64(8 * cfg.Threads))
			particles := p.AllocGlobal(uint64(8 * cfg.Threads))
			locks := p.AllocGlobal(uint64(8 * cfg.Threads))
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(counts+uint64(8*i), int64(r.Intn(7)))
				p.WriteF64(particles+uint64(8*i), r.NormFloat64())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(counts))
				th.SetReg(ir.R(1), int64(particles))
				th.SetReg(ir.R(2), int64(locks))
				th.SetReg(ir.R(3), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlFreqmine = register(&Workload{
	Name:           "parsec.freqmine",
	Suite:          SuiteParsec,
	Desc:           "freqmine FP-tree descent: pointer chasing to data-dependent depths",
	DefaultThreads: 64,
	PaperThreads:   2048,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("parsec.freqmine")
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=root, r1=items, r2=out. Node: {item, left, right}.
		pre := w.NewBlock("pre")
		pre.Mov(rg(3), rg(0)).
			Mov(rg(4), idx8(1, int(ir.TID), 8, 0)). // my item
			Mov(rg(9), im(0))
		head := w.NewBlock("head")
		body := w.NewBlock("body")
		left := w.NewBlock("left")
		right := w.NewBlock("right")
		done := w.NewBlock("done")
		pre.Jmp(head)
		head.Cmp(rg(3), im(0)).Jcc(ir.CondEQ, done, body)
		body.Mov(rg(5), mem8(3, 0)). // node.item
						Cmp(rg(4), rg(5)).
						Jcc(ir.CondLT, left, right)
		// Each direction carries the full node bookkeeping (support count
		// update, conditional-pattern mixing), so lane splits are costly.
		left.Add(rg(9), im(1)).
			Mov(rg(6), rg(5)).
			Mul(rg(6), im(31)).
			Xor(rg(6), rg(4)).
			Add(rg(9), rg(6)).
			Shr(rg(6), im(3)).
			Xor(rg(9), rg(6)).
			Mov(rg(3), mem8(3, 8)).
			Jmp(head)
		right.Add(rg(9), im(2)).
			Mov(rg(6), rg(5)).
			Mul(rg(6), im(37)).
			Add(rg(6), rg(4)).
			Xor(rg(9), rg(6)).
			Shl(rg(6), im(2)).
			Add(rg(9), rg(6)).
			Mov(rg(3), mem8(3, 16)).
			Jmp(head)
		done.Mov(idx8(2, int(ir.TID), 8, 0), rg(9)).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			// Random binary tree on the heap; descent depths vary wildly.
			var build func(depth int) uint64
			build = func(depth int) uint64 {
				if depth == 0 || r.Intn(4) == 0 {
					return 0
				}
				n := p.AllocHeap(24)
				p.WriteI64(n, int64(r.Intn(1<<16)))
				p.WriteI64(n+8, int64(build(depth-1)))
				p.WriteI64(n+16, int64(build(depth-1)))
				return n
			}
			root := build(20)
			items := p.AllocGlobal(uint64(8 * cfg.Threads))
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(items+uint64(8*i), int64(r.Intn(1<<16)))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(root))
				th.SetReg(ir.R(1), int64(items))
				th.SetReg(ir.R(2), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlSwaptions = register(&Workload{
	Name:           "parsec.swaptions",
	Suite:          SuiteParsec,
	Desc:           "swaptions HJM Monte Carlo: fixed time-step loops with hash-driven RNG",
	DefaultThreads: 64,
	PaperThreads:   512,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		steps := cfg.scale(16)
		pb := ir.NewBuilder("parsec.swaptions")
		s := addStdlib(pb)
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=seeds, r1=out.
		pre := w.NewBlock("pre")
		pre.Mov(rg(2), idx8(0, int(ir.TID), 8, 0)).
			Mov(rg(9), im(0)).
			CvtIF(rg(9), rg(9))
		l := loopN(w, pre, "steps", 3, 0, im(int64(steps)))
		stepped := w.NewBlock("stepped")
		l.Body.Mov(rg(10), rg(2)).
			Add(rg(10), rg(3)).
			Mov(rg(11), im(4)).
			Call(s.Hash, stepped)
		stepped.Mov(rg(4), rg(10)).
			And(rg(4), im(0xffff)).
			CvtIF(rg(4), rg(4)).
			FMul(rg(4), rg(14)). // * dt-ish scale
			FAdd(rg(9), rg(4)).
			FSqrt(rg(9))
		l.Next(stepped)
		l.Exit.Mov(idx8(1, int(ir.TID), 8, 0), rg(9)).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			seeds := p.AllocGlobal(uint64(8 * cfg.Threads))
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(seeds+uint64(8*i), r.Int63())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(seeds))
				th.SetReg(ir.R(1), int64(out))
				th.SetRegF(ir.R(14), 1.0/65536)
			}, nil
		}
		return prog, setup, nil
	},
})

var wlVips = register(&Workload{
	Name:           "parsec.vips",
	Suite:          SuiteParsec,
	Desc:           "vips convolution: fixed 3x3 kernel over a strided image with a rare clamp path",
	DefaultThreads: 64,
	PaperThreads:   512,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		width := cfg.scale(16)
		pb := ir.NewBuilder("parsec.vips")
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=src image, r1=dst, r2=kernel, r3=row stride (elements).
		pre := w.NewBlock("pre")
		pre.Mov(rg(4), tid()).
			Mul(rg(4), rg(3)) // my row base index
		xl := loopN(w, pre, "cols", 5, 0, im(int64(width)))
		xl.Body.Mov(rg(9), im(0))
		kl := loopN(w, xl.Body, "kernel", 6, 0, im(9))
		kl.Body.Mov(rg(7), rg(4)).
			Add(rg(7), rg(5)).
			Add(rg(7), rg(6)).
			Mov(rg(8), idx8(0, 7, 8, 0)).
			FMul(rg(8), idx8(2, 6, 8, 0)).
			FAdd(rg(9), rg(8))
		kl.Next(kl.Body)
		clamp := w.NewBlock("clamp")
		keep := w.NewBlock("keep")
		stored := w.NewBlock("stored")
		kl.Exit.FCmp(rg(9), rg(14)). // > clamp threshold?
						Jcc(ir.CondGT, clamp, keep)
		clamp.Mov(rg(9), rg(14)).Jmp(stored)
		keep.Nop(1).Jmp(stored)
		stored.Mov(rg(7), rg(4)).
			Add(rg(7), rg(5)).
			Mov(idx8(1, 7, 8, 0), rg(9))
		xl.Next(stored)
		xl.Exit.Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			stride := width + 16
			n := (cfg.Threads + 2) * stride
			src := p.AllocGlobal(uint64(8 * n))
			dst := p.AllocGlobal(uint64(8 * n))
			kern := p.AllocGlobal(8 * 9)
			for i := 0; i < n; i++ {
				p.WriteF64(src+uint64(8*i), r.Float64())
			}
			for i := 0; i < 9; i++ {
				p.WriteF64(kern+uint64(8*i), r.Float64()/9)
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(src))
				th.SetReg(ir.R(1), int64(dst))
				th.SetReg(ir.R(2), int64(kern))
				th.SetReg(ir.R(3), int64(stride))
				th.SetRegF(ir.R(14), 0.30)
			}, nil
		}
		return prog, setup, nil
	},
})

var wlX264 = register(&Workload{
	Name:           "parsec.x264",
	Suite:          SuiteParsec,
	Desc:           "x264 motion search: SAD candidate loops with data-dependent early termination",
	DefaultThreads: 64,
	PaperThreads:   4096,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		cands := cfg.scale(8)
		pb := ir.NewBuilder("parsec.x264")
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=blocks, r1=refs, r2=thresholds, r3=out.
		pre := w.NewBlock("pre")
		pre.Mov(rg(4), tid()).
			Shl(rg(4), im(3)).                      // my block base (8 pixels)
			Mov(rg(9), ir.Imm(int64(1)<<40)).       // best SAD
			Mov(rg(8), idx8(2, int(ir.TID), 8, 0)). // early-exit threshold
			Mov(rg(5), im(0))                       // candidate index
		head := w.NewBlock("head")
		sad := w.NewBlock("sad")
		check := w.NewBlock("check")
		better := w.NewBlock("better")
		cont := w.NewBlock("cont")
		done := w.NewBlock("done")
		pre.Jmp(head)
		head.Cmp(rg(5), im(int64(cands))).Jcc(ir.CondGE, done, sad)
		sad.Mov(rg(6), im(0))
		pxl := loopN(w, sad, "pixels", 7, 0, im(8))
		pxl.Body.Mov(rg(13), rg(4)).
			Add(rg(13), rg(7)).
			Mov(rg(14), idx8(0, 13, 8, 0)).
			Mov(rg(15), rg(5)).
			Shl(rg(15), im(3)).
			Add(rg(15), rg(7)).
			Sub(rg(14), idx8(1, 15, 8, 0)).
			Mov(rg(12), rg(14)).
			Sar(rg(12), im(63)).
			Xor(rg(14), rg(12)).
			Sub(rg(14), rg(12)). // |diff|
			Add(rg(6), rg(14))
		pxl.Next(pxl.Body)
		pxl.Exit.Cmp(rg(6), rg(9)).Jcc(ir.CondLT, better, cont)
		better.Mov(rg(9), rg(6)).Jmp(check)
		// Early termination: good-enough match stops the search at a
		// per-macroblock (data-dependent) candidate count.
		check.Cmp(rg(9), rg(8)).Jcc(ir.CondLT, done, cont)
		cont.Add(rg(5), im(1)).Jmp(head)
		done.Mov(idx8(3, int(ir.TID), 8, 0), rg(9)).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			blocks := p.AllocGlobal(uint64(64 * cfg.Threads))
			refs := p.AllocGlobal(uint64(64 * cands))
			thresh := p.AllocGlobal(uint64(8 * cfg.Threads))
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < 8*cfg.Threads; i++ {
				p.WriteI64(blocks+uint64(8*i), int64(r.Intn(256)))
			}
			for i := 0; i < 8*cands; i++ {
				p.WriteI64(refs+uint64(8*i), int64(r.Intn(256)))
			}
			for i := 0; i < cfg.Threads; i++ {
				p.WriteI64(thresh+uint64(8*i), int64(250+r.Intn(400)))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(blocks))
				th.SetReg(ir.R(1), int64(refs))
				th.SetReg(ir.R(2), int64(thresh))
				th.SetReg(ir.R(3), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})
