package cpusim

import (
	"testing"

	"threadfuser/internal/trace"
)

// mkTrace builds a trace with n threads, each executing `blocks` basic
// blocks of `ninstr` instructions, optionally touching memory.
func mkTrace(n, blocks, ninstr int, memStride uint64) *trace.Trace {
	t := &trace.Trace{
		Program: "t",
		Funcs:   []trace.FuncInfo{{Name: "f", Blocks: []trace.BlockInfo{{NInstr: uint32(ninstr)}}}},
	}
	for tid := 0; tid < n; tid++ {
		th := &trace.ThreadTrace{TID: tid}
		th.Records = append(th.Records, trace.Record{Kind: trace.KindCall, Callee: 0})
		for b := 0; b < blocks; b++ {
			rec := trace.Record{Kind: trace.KindBBL, Func: 0, Block: 0, N: uint64(ninstr)}
			if memStride > 0 {
				rec.Mem = []trace.MemAccess{{
					Instr: 0,
					Addr:  uint64(tid*blocks+b) * memStride,
					Size:  8,
				}}
			}
			th.Records = append(th.Records, rec)
		}
		th.Records = append(th.Records, trace.Record{Kind: trace.KindRet})
		t.Threads = append(t.Threads, th)
	}
	return t
}

func TestComputeBoundScaling(t *testing.T) {
	cfg := Xeon20()
	tr := mkTrace(20, 100, 10, 0) // pure compute, one thread per core
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 20 threads on 20 cores: makespan = one thread's cycles = 1000/IPC.
	want := uint64(100 * 10 / cfg.IPC)
	if res.Cycles != want {
		t.Errorf("cycles = %d, want %d", res.Cycles, want)
	}
	// Double the threads: two per core, double the time.
	res2, err := Run(mkTrace(40, 100, 10, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != 2*want {
		t.Errorf("40-thread cycles = %d, want %d", res2.Cycles, 2*want)
	}
}

func TestMemoryPenalties(t *testing.T) {
	cfg := Xeon20()
	hot := mkTrace(4, 200, 4, 0)     // no memory
	cold := mkTrace(4, 200, 4, 4096) // one cold miss per block
	rh, err := Run(hot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(cold, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cycles <= rh.Cycles {
		t.Errorf("cold-miss trace (%d cycles) not slower than compute trace (%d)", rc.Cycles, rh.Cycles)
	}
	if rc.DRAMBytes == 0 {
		t.Error("cold misses produced no DRAM traffic")
	}
	if rc.L1HitRate > 0.1 {
		t.Errorf("page-strided accesses should miss; L1 hit rate %.2f", rc.L1HitRate)
	}
}

func TestCacheLocality(t *testing.T) {
	cfg := Xeon20()
	// Stride 8 within lines: 4 accesses per 32B line -> 75% hits.
	local := mkTrace(1, 400, 4, 8)
	res, err := Run(local, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.L1HitRate < 0.7 {
		t.Errorf("line-local accesses hit rate %.2f, want ~0.75", res.L1HitRate)
	}
}

func TestBandwidthBound(t *testing.T) {
	cfg := Xeon20()
	cfg.DRAMBytesPerClk = 0.25 // strangle the memory pipe
	tr := mkTrace(20, 100, 2, 4096)
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 20 threads x 100 misses x 32B at 0.25 B/clk = 256000 cycles floor.
	if res.Cycles < 256000 {
		t.Errorf("bandwidth bound not enforced: %d cycles", res.Cycles)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(mkTrace(1, 1, 1, 0), Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestSkippedInstructionsExcluded(t *testing.T) {
	cfg := Xeon20()
	tr := mkTrace(1, 10, 10, 0)
	withSkips := mkTrace(1, 10, 10, 0)
	withSkips.Threads[0].Records = append(withSkips.Threads[0].Records,
		trace.Record{Kind: trace.KindSkip, SkipKind: trace.SkipIO, N: 100000})
	a, _ := Run(tr, cfg)
	b, _ := Run(withSkips, cfg)
	if a.Cycles != b.Cycles {
		t.Errorf("skipped instructions changed CPU time: %d vs %d", a.Cycles, b.Cycles)
	}
}
