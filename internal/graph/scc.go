// Package graph holds small graph algorithms shared by the analyzers: today
// an iterative Tarjan strongly-connected-components pass, used by both the
// dynamic lock-order deadlock pass (internal/analysis) and the static
// lock-order oracle (internal/staticlock).
package graph

// SCCs returns the strongly connected components of a graph given as
// adjacency lists, using Tarjan's algorithm iteratively (inputs can hold
// many nodes; no recursion depth limit). Components come out in an order
// derived from the algorithm; callers needing determinism across runs get it
// because the input ordering is deterministic.
func SCCs(succs [][]int) [][]int {
	n := len(succs)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var sccStack []int
	var sccs [][]int
	next := 0

	type frame struct{ v, si int }
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		callStack := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		sccStack = append(sccStack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.v
			if fr.si < len(succs[v]) {
				w := succs[v][fr.si]
				fr.si++
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
