package gpusim

import (
	"fmt"

	"threadfuser/internal/pool"
	"threadfuser/internal/simtrace"
)

// SweepPoint is one machine configuration plus its simulation result.
type SweepPoint struct {
	Label  string
	Config Config
	Result *Result
}

// Sweep runs the same kernel trace across a set of machine configurations —
// the design-space exploration of the paper's section V-B ("architects can
// … evaluate alternative SIMT accelerator designs"). Points are labelled by
// each configuration's Name. Configurations simulate concurrently (Run only
// reads the shared kernel trace) into index-addressed slots, so the returned
// points are in configuration order regardless of completion order.
func Sweep(kt *simtrace.KernelTrace, cfgs []Config) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(cfgs))
	g := pool.New(0)
	for i, cfg := range cfgs {
		i, cfg := i, cfg
		g.Go(func() error {
			res, err := Run(kt, cfg)
			if err != nil {
				return fmt.Errorf("gpusim: sweep %s: %w", cfg.Name, err)
			}
			out[i] = SweepPoint{Label: cfg.Name, Config: cfg, Result: res}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// ScaleSweep generates a family of configurations scaling the SM count of a
// base machine (1, 2, 4, ... up to maxSMs) — the "how many cores does this
// workload actually need" question for CPU-adjacent SIMT designs.
func ScaleSweep(base Config, maxSMs int) []Config {
	var cfgs []Config
	for n := 1; n <= maxSMs; n *= 2 {
		c := base
		c.NumSMs = n
		c.Name = fmt.Sprintf("%s-%dsm", base.Name, n)
		cfgs = append(cfgs, c)
	}
	return cfgs
}
