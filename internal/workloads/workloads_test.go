package workloads

import (
	"math"
	"testing"

	"threadfuser/internal/core"
	"threadfuser/internal/trace"
)

// analyzeWorkload builds, traces and analyzes one workload at reduced scale.
func analyzeWorkload(t *testing.T, name string, warpSize int, emulateLocks bool) *core.Report {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatalf("%s: trace: %v", name, err)
	}
	opts := core.Defaults()
	opts.WarpSize = warpSize
	opts.EmulateLocks = emulateLocks
	rep, err := core.Analyze(tr, opts)
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	return rep
}

// TestAllWorkloadsTraceAndAnalyze is the suite-wide smoke test: every
// registered workload must build, trace to a valid stream, and analyze to a
// sane efficiency at all three paper warp sizes.
func TestAllWorkloadsTraceAndAnalyze(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst, err := w.Instantiate(Config{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := inst.Trace()
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if got := tr.TotalInstructions(); got < 100 {
				t.Errorf("trace has only %d instructions; workload too trivial", got)
			}
			var prev = 2.0
			for _, ws := range []int{8, 16, 32} {
				opts := core.Defaults()
				opts.WarpSize = ws
				rep, err := core.Analyze(tr, opts)
				if err != nil {
					t.Fatalf("warp %d: %v", ws, err)
				}
				if rep.Efficiency <= 0 || rep.Efficiency > 1+1e-9 {
					t.Errorf("warp %d: efficiency %v out of (0,1]", ws, rep.Efficiency)
				}
				if rep.Efficiency > prev+1e-9 {
					t.Errorf("efficiency rose from %v to %v at warp %d; must be non-increasing", prev, rep.Efficiency, ws)
				}
				prev = rep.Efficiency
			}
		})
	}
}

// TestWorkloadsDeterministic checks that the same seed yields an identical
// trace (byte-for-byte after encoding), which every correlation experiment
// relies on.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range []string{"vectoradd", "rodinia.bfs", "paropoly.nbody"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mk := func() *trace.Trace {
			inst, err := w.Instantiate(Config{Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := inst.Trace()
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}
		a, b := mk(), mk()
		if a.TotalInstructions() != b.TotalInstructions() {
			t.Errorf("%s: instruction counts differ across identical seeds", name)
		}
		ra, rb := mustAnalyze(t, a), mustAnalyze(t, b)
		if ra.Efficiency != rb.Efficiency || ra.HeapTx != rb.HeapTx {
			t.Errorf("%s: reports differ across identical seeds", name)
		}
	}
}

func mustAnalyze(t *testing.T, tr *trace.Trace) *core.Report {
	t.Helper()
	rep, err := core.Analyze(tr, core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestEfficiencyBands pins each workload's warp-32 efficiency to the band
// its real counterpart occupies in the paper's figure 1, so refactors that
// change workload behaviour are caught. Bands are deliberately wide; the
// shape (who is high, who is low) is what matters.
func TestEfficiencyBands(t *testing.T) {
	bands := map[string][2]float64{
		"vectoradd":                 {0.95, 1.0},
		"uncoalesced":               {0.95, 1.0},
		"paropoly.nbody":            {0.90, 1.0},
		"rodinia.nn":                {0.90, 1.0},
		"rodinia.sc":                {0.60, 1.0},
		"rodinia.bfs":               {0.05, 0.50},
		"rodinia.btree":             {0.20, 0.85},
		"rodinia.pf":                {0.30, 0.90},
		"paropoly.bfs":              {0.05, 0.60},
		"paropoly.cc":               {0.15, 0.70},
		"paropoly.pagerank":         {0.20, 0.85},
		"usuite.mcrouter.memcached": {0.55, 0.95},
		"usuite.mcrouter.mid":       {0.65, 0.98},
		"usuite.mcrouter.leaf":      {0.80, 1.0},
		"usuite.textsearch.leaf":    {0.70, 0.99},
		"usuite.textsearch.mid":     {0.70, 0.99},
		"usuite.hdsearch.leaf":      {0.70, 1.0},
		"usuite.hdsearch.mid":       {0.02, 0.15}, // the paper's 7%
		"usuite.hdsearch.mid.fixed": {0.80, 1.0},  // the paper's 90% fix
		"dsb.uniqueid":              {0.90, 1.0},
		"dsb.urlshort":              {0.85, 1.0},
		"dsb.text":                  {0.55, 0.95},
		"dsb.post":                  {0.25, 0.75},
		"dsb.usertag":               {0.70, 1.0},
		"dsb.user":                  {0.80, 1.0},
		"parsec.blackscholes":       {0.75, 0.99},
		"parsec.streamcluster":      {0.60, 1.0},
		"parsec.bodytrack":          {0.45, 0.90},
		"parsec.facesim":            {0.80, 1.0},
		"parsec.fluidanimate":       {0.30, 0.80},
		"parsec.freqmine":           {0.15, 0.60},
		"parsec.swaptions":          {0.85, 1.0},
		"parsec.vips":               {0.85, 1.0},
		"parsec.x264":               {0.05, 0.45},
		"other.pigz":                {0.05, 0.30},
		"other.rotate":              {0.90, 1.0},
		"other.md5":                 {0.90, 1.0},
	}
	for name, band := range bands {
		rep := analyzeWorkload(t, name, 32, false)
		if rep.Efficiency < band[0] || rep.Efficiency > band[1] {
			t.Errorf("%s: warp-32 efficiency %.3f outside paper band [%.2f, %.2f]",
				name, rep.Efficiency, band[0], band[1])
		}
	}
}

// TestTableIComplete checks the catalog matches the paper's Table I: 36
// workloads, 11 of them with GPU twins, and the documented thread counts.
func TestTableIComplete(t *testing.T) {
	if got := len(TableI()); got != 36 {
		t.Errorf("Table I has %d workloads, want 36", got)
	}
	if got := len(Correlation()); got != 11 {
		t.Errorf("correlation set has %d workloads, want 11", got)
	}
	if got := len(Microservices()); got != 13 {
		t.Errorf("microservice set has %d workloads, want 13 (7 uSuite + 6 DSB)", got)
	}
	counts := map[string]int{
		"rodinia.nn":  42 * 1024,
		"rodinia.sc":  16 * 1024,
		"other.pigz":  128,
		"other.md5":   512,
		"dsb.post":    2048,
		"parsec.vips": 512,
	}
	for name, want := range counts {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.PaperThreads != want {
			t.Errorf("%s: PaperThreads = %d, want %d", name, w.PaperThreads, want)
		}
	}
}

// TestHDSearchFixRecoversEfficiency pins the figure-7 narrative end to end:
// the fixed variant must be at least 10x more efficient than the original,
// and the original's getpoint must be the efficiency bottleneck.
func TestHDSearchFixRecoversEfficiency(t *testing.T) {
	orig := analyzeWorkload(t, "usuite.hdsearch.mid", 32, false)
	fixed := analyzeWorkload(t, "usuite.hdsearch.mid.fixed", 32, false)
	if fixed.Efficiency < 10*orig.Efficiency {
		t.Errorf("fix recovered only %.3f -> %.3f; paper reports 7%% -> 90%%",
			orig.Efficiency, fixed.Efficiency)
	}
	gp, ok := orig.Function("getpoint")
	if !ok {
		t.Fatal("getpoint missing from per-function report")
	}
	if gp.Efficiency > 0.15 {
		t.Errorf("getpoint efficiency %.3f, want <= 0.15 (paper: 6%%)", gp.Efficiency)
	}
	if gp.InstrShare < 0.30 {
		t.Errorf("getpoint instruction share %.2f, want the dominant share (paper: ~half)", gp.InstrShare)
	}
}

// TestVectorAddCoalescing pins the coalescing contrast between the two
// micro benchmarks: the grid-stride kernel approaches the 4-transactions
// ideal for 8-byte lanes (8 tx per 32-lane instruction), the chunked kernel
// needs close to one transaction per lane (paper figures 4 and 10).
func TestVectorAddCoalescing(t *testing.T) {
	co := analyzeWorkload(t, "vectoradd", 32, false)
	un := analyzeWorkload(t, "uncoalesced", 32, false)
	if co.HeapTxPerInstr > 9 {
		t.Errorf("vectoradd heap tx/instr = %.2f, want near the 8 ideal for 8-byte lanes", co.HeapTxPerInstr)
	}
	if un.HeapTxPerInstr < 24 {
		t.Errorf("uncoalesced heap tx/instr = %.2f, want near 32 (one per lane)", un.HeapTxPerInstr)
	}
	if un.HeapTxPerInstr < 2.5*co.HeapTxPerInstr {
		t.Errorf("uncoalesced (%.2f) should need several times the transactions of vectoradd (%.2f)",
			un.HeapTxPerInstr, co.HeapTxPerInstr)
	}
	if math.Abs(co.Efficiency-un.Efficiency) > 0.01 {
		t.Errorf("control efficiency should match between the micro kernels: %v vs %v",
			co.Efficiency, un.Efficiency)
	}
}

// TestPaperScaleSmoke traces a few workloads at their Table-I thread counts
// to confirm the full-scale path works (the figure experiments expose it
// via report.Scale{Full: true} and tfreport -full).
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale tracing in -short mode")
	}
	for _, name := range []string{"vectoradd", "other.pigz", "dsb.uniqueid"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := w.Instantiate(Config{Seed: 1, Threads: w.PaperThreads})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := inst.Trace()
		if err != nil {
			t.Fatalf("%s at %d threads: %v", name, w.PaperThreads, err)
		}
		opts := core.Defaults()
		rep, err := core.Analyze(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Threads != w.PaperThreads {
			t.Errorf("%s: analyzed %d threads, want %d", name, rep.Threads, w.PaperThreads)
		}
		// Efficiency at paper scale must sit near the reduced-scale value:
		// the figure-1 numbers are not artifacts of small inputs.
		small, err := w.Instantiate(Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		str, err := small.Trace()
		if err != nil {
			t.Fatal(err)
		}
		srep, err := core.Analyze(str, opts)
		if err != nil {
			t.Fatal(err)
		}
		if diff := rep.Efficiency - srep.Efficiency; diff > 0.12 || diff < -0.12 {
			t.Errorf("%s: paper-scale efficiency %.3f far from reduced-scale %.3f",
				name, rep.Efficiency, srep.Efficiency)
		}
	}
}

// TestScaleKnob checks Config.Scale actually grows per-thread work.
func TestScaleKnob(t *testing.T) {
	w, err := ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	small, _ := w.Instantiate(Config{Seed: 1, Scale: 0.5})
	big, _ := w.Instantiate(Config{Seed: 1, Scale: 2})
	ts, err := small.Trace()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := big.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tb.TotalInstructions() <= 2*ts.TotalInstructions() {
		t.Errorf("Scale=2 trace (%d instrs) not > 2x Scale=0.5 trace (%d)",
			tb.TotalInstructions(), ts.TotalInstructions())
	}
}
