package vm

import (
	"fmt"
	"math"

	"threadfuser/internal/ir"
	"threadfuser/internal/trace"
)

func f2b(f float64) uint64 { return math.Float64bits(f) }
func b2f(b uint64) float64 { return math.Float64frombits(b) }

// flags is the condition state set by compares and consumed by OpJcc.
type flags struct {
	eq  bool // operands equal
	lt  bool // signed less (or float ordered-less)
	ult bool // unsigned less
}

func (f flags) holds(c ir.Cond) bool {
	switch c {
	case ir.CondEQ:
		return f.eq
	case ir.CondNE:
		return !f.eq
	case ir.CondLT:
		return f.lt
	case ir.CondLE:
		return f.lt || f.eq
	case ir.CondGT:
		return !f.lt && !f.eq
	case ir.CondGE:
		return !f.lt
	case ir.CondULT:
		return f.ult
	case ir.CondUGE:
		return !f.ult
	}
	return false
}

// frame is one entry of the thread's call stack.
type frame struct {
	fn   *ir.Function
	cont ir.BlockID // block to resume in the caller after return
}

// Thread interprets the program's entry function for one traced CPU thread.
// It can run to completion (Run, used by the tracer) or be single-stepped a
// basic block at a time (Step, used by the lockstep hardware oracle).
type Thread struct {
	proc *Process
	tid  int
	regs [ir.NumRegs]int64
	fl   flags

	// Execution position.
	fn      *ir.Function
	blockID ir.BlockID
	stack   []frame
	done    bool

	// Executed counts traced instructions, for budget enforcement.
	Executed uint64
}

// NewThread prepares a thread with SP at the top of its private stack, TID
// set to the thread id, and the program counter at the entry function.
func (p *Process) NewThread(tid int) *Thread {
	th := &Thread{proc: p, tid: tid, fn: p.Prog.Func(p.Prog.Entry)}
	th.regs[ir.SP] = int64(StackTop(tid))
	th.regs[ir.TID] = int64(tid)
	return th
}

// SetReg sets an initial register value (thread arguments).
func (th *Thread) SetReg(r ir.Reg, v int64) { th.regs[r] = v }

// SetRegF sets an initial register to a float64 value.
func (th *Thread) SetRegF(r ir.Reg, v float64) { th.regs[r] = int64(f2b(v)) }

// Reg returns a register's current value (useful in tests).
func (th *Thread) Reg(r ir.Reg) int64 { return th.regs[r] }

// TID returns the thread id.
func (th *Thread) TID() int { return th.tid }

// Done reports whether the entry function has returned.
func (th *Thread) Done() bool { return th.done }

// Depth returns the current call depth (1 inside the entry function).
func (th *Thread) Depth() int { return len(th.stack) + 1 }

// Current returns the function and block about to execute.
func (th *Thread) Current() (ir.FuncID, ir.BlockID) { return th.fn.ID, th.blockID }

// StepResult describes one executed basic block.
type StepResult struct {
	// Rec is the block's trace record (function, block, instruction count,
	// memory accesses, lock operations).
	Rec trace.Record
	// Skips holds skip records for OpIO/OpSpin regions inside the block.
	Skips []trace.Record
	// Called is set when the block's terminator entered a function.
	Called   bool
	Callee   ir.FuncID
	Returned bool // the terminator was a return
	Done     bool // the entry function returned: the thread finished
}

// Step executes the current basic block (including its terminator) and
// advances the thread. It must not be called after the thread is done.
func (th *Thread) Step() (StepResult, error) {
	if th.done {
		return StepResult{}, fmt.Errorf("vm: step on finished thread %d", th.tid)
	}
	block := th.fn.Blocks[th.blockID]
	res := StepResult{Rec: trace.Record{
		Kind:  trace.KindBBL,
		Func:  uint32(th.fn.ID),
		Block: uint32(th.blockID),
		N:     uint64(len(block.Instrs)),
	}}
	th.Executed += uint64(len(block.Instrs))

	for i := range block.Instrs {
		in := &block.Instrs[i]
		if in.Op.IsTerminator() {
			break
		}
		if s, ok := th.step(in, uint16(i), &res.Rec); ok {
			res.Skips = append(res.Skips, s)
		}
	}

	term := block.Terminator()
	termIdx := uint16(len(block.Instrs) - 1)
	switch term.Op {
	case ir.OpJmp:
		th.blockID = term.Target
	case ir.OpJcc:
		if th.fl.holds(term.Cond) {
			th.blockID = term.Target
		} else {
			th.blockID = term.Fall
		}
	case ir.OpSwitch:
		idx := th.value(term.Src, termIdx, &res.Rec)
		if idx < 0 {
			idx = 0
		}
		if idx >= int64(len(term.Targets)) {
			idx = int64(len(term.Targets) - 1)
		}
		th.blockID = term.Targets[idx]
	case ir.OpCall, ir.OpCallR:
		callee := term.Callee
		if term.Op == ir.OpCallR {
			v := th.value(term.Src, termIdx, &res.Rec)
			if v < 0 || v >= int64(len(th.proc.Prog.Funcs)) {
				return res, fmt.Errorf("vm: indirect call to invalid function id %d in %s block %d", v, th.fn.Name, th.blockID)
			}
			callee = ir.FuncID(v)
		}
		th.stack = append(th.stack, frame{fn: th.fn, cont: term.Fall})
		if len(th.stack) > 512 {
			return res, fmt.Errorf("vm: call stack overflow in %s", th.fn.Name)
		}
		th.fn = th.proc.Prog.Func(callee)
		th.blockID = 0
		res.Called, res.Callee = true, callee
	case ir.OpRet:
		res.Returned = true
		if len(th.stack) == 0 {
			th.done, res.Done = true, true
		} else {
			top := th.stack[len(th.stack)-1]
			th.stack = th.stack[:len(th.stack)-1]
			th.fn, th.blockID = top.fn, top.cont
		}
	default:
		return res, fmt.Errorf("vm: block %s.%d has non-terminator end %s", th.fn.Name, th.blockID, term.Op)
	}
	return res, nil
}

// Run executes the entry function to completion and returns the thread's
// trace, including the call/return marker records.
func (th *Thread) Run(cfg RunConfig) (*trace.ThreadTrace, error) {
	maxInstrs := cfg.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = defaultMaxInstrs
	}
	tt := &trace.ThreadTrace{TID: th.tid}
	tt.Records = append(tt.Records, trace.Record{Kind: trace.KindCall, Callee: uint32(th.fn.ID)})
	for !th.done {
		if th.Executed > maxInstrs {
			return nil, fmt.Errorf("vm: instruction budget %d exceeded in %s block %d", maxInstrs, th.fn.Name, th.blockID)
		}
		res, err := th.Step()
		if err != nil {
			return nil, err
		}
		tt.Records = append(tt.Records, res.Rec)
		tt.Records = append(tt.Records, res.Skips...)
		if res.Called {
			tt.Records = append(tt.Records, trace.Record{Kind: trace.KindCall, Callee: uint32(res.Callee)})
		}
		if res.Returned {
			tt.Records = append(tt.Records, trace.Record{Kind: trace.KindRet})
		}
	}
	return tt, nil
}

// step executes one non-terminator instruction, appending memory accesses
// and lock operations to rec. It returns a skip record for OpIO/OpSpin.
func (th *Thread) step(in *ir.Instr, idx uint16, rec *trace.Record) (trace.Record, bool) {
	switch in.Op {
	case ir.OpNop:
	case ir.OpMov:
		th.assign(in.Dst, th.value(in.Src, idx, rec), idx, rec)
	case ir.OpLea:
		th.regs[in.Dst.Reg] = int64(th.effAddr(in.Src.Mem))
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar:
		a := th.value(in.Dst, idx, rec)
		b := th.value(in.Src, idx, rec)
		th.assign(in.Dst, intALU(in.Op, a, b, th.proc), idx, rec)
	case ir.OpNeg:
		th.assign(in.Dst, -th.value(in.Dst, idx, rec), idx, rec)
	case ir.OpNot:
		th.assign(in.Dst, ^th.value(in.Dst, idx, rec), idx, rec)
	case ir.OpCmp:
		a, b := th.value(in.Dst, idx, rec), th.value(in.Src, idx, rec)
		th.fl = flags{eq: a == b, lt: a < b, ult: uint64(a) < uint64(b)}
	case ir.OpCmov:
		v := th.value(in.Src, idx, rec)
		if th.fl.holds(in.Cond) {
			th.assign(in.Dst, v, idx, rec)
		} else if in.Dst.IsMem() {
			// x86 cmov with a memory destination still performs the
			// access; mirror that so traces stay address-faithful.
			th.assign(in.Dst, th.value(in.Dst, idx, rec), idx, rec)
		}
	case ir.OpTest:
		v := th.value(in.Dst, idx, rec) & th.value(in.Src, idx, rec)
		th.fl = flags{eq: v == 0, lt: v < 0}
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		a := b2f(uint64(th.value(in.Dst, idx, rec)))
		b := b2f(uint64(th.value(in.Src, idx, rec)))
		th.assign(in.Dst, int64(f2b(fpALU(in.Op, a, b))), idx, rec)
	case ir.OpFSqrt:
		a := b2f(uint64(th.value(in.Dst, idx, rec)))
		th.assign(in.Dst, int64(f2b(math.Sqrt(math.Abs(a)))), idx, rec)
	case ir.OpFAbs:
		a := b2f(uint64(th.value(in.Dst, idx, rec)))
		th.assign(in.Dst, int64(f2b(math.Abs(a))), idx, rec)
	case ir.OpFCmp:
		a := b2f(uint64(th.value(in.Dst, idx, rec)))
		b := b2f(uint64(th.value(in.Src, idx, rec)))
		th.fl = flags{eq: a == b, lt: a < b, ult: a < b}
	case ir.OpCvtIF:
		th.assign(in.Dst, int64(f2b(float64(th.value(in.Src, idx, rec)))), idx, rec)
	case ir.OpCvtFI:
		f := b2f(uint64(th.value(in.Src, idx, rec)))
		th.assign(in.Dst, int64(f), idx, rec)
	case ir.OpLock, ir.OpUnlock:
		addr := th.lockAddr(in.Src)
		rec.Locks = append(rec.Locks, trace.LockOp{
			Instr: idx, Addr: addr, Release: in.Op == ir.OpUnlock,
		})
	case ir.OpIO:
		return trace.Record{Kind: trace.KindSkip, SkipKind: trace.SkipIO, N: uint64(in.Src.Imm)}, true
	case ir.OpSpin:
		return trace.Record{Kind: trace.KindSkip, SkipKind: trace.SkipSpin, N: uint64(in.Src.Imm)}, true
	default:
		panic(fmt.Sprintf("vm: unhandled opcode %s", in.Op))
	}
	return trace.Record{}, false
}

func intALU(op ir.Opcode, a, b int64, p *Process) int64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpDiv:
		if b == 0 {
			p.DivByZero++
			return 0
		}
		return a / b
	case ir.OpRem:
		if b == 0 {
			p.DivByZero++
			return 0
		}
		return a % b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (uint64(b) & 63)
	case ir.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case ir.OpSar:
		return a >> (uint64(b) & 63)
	}
	panic("vm: not an integer ALU op")
}

func fpALU(op ir.Opcode, a, b float64) float64 {
	switch op {
	case ir.OpFAdd:
		return a + b
	case ir.OpFSub:
		return a - b
	case ir.OpFMul:
		return a * b
	case ir.OpFDiv:
		if b == 0 {
			return 0
		}
		return a / b
	}
	panic("vm: not a floating ALU op")
}

// effAddr computes a memory operand's effective address.
func (th *Thread) effAddr(m ir.MemRef) uint64 {
	addr := uint64(th.regs[m.Base]) + uint64(m.Disp)
	if m.HasIndex {
		addr += uint64(th.regs[m.Index]) * uint64(m.Scale)
	}
	return addr
}

// lockAddr resolves the lock address of an OpLock/OpUnlock operand: memory
// operands contribute their effective address (not the loaded value).
func (th *Thread) lockAddr(o ir.Operand) uint64 {
	switch o.Kind {
	case ir.OpndReg:
		return uint64(th.regs[o.Reg])
	case ir.OpndImm:
		return uint64(o.Imm)
	case ir.OpndMem:
		return th.effAddr(o.Mem)
	}
	return 0
}

// value reads an operand, recording a load for memory operands.
func (th *Thread) value(o ir.Operand, idx uint16, rec *trace.Record) int64 {
	switch o.Kind {
	case ir.OpndReg:
		return th.regs[o.Reg]
	case ir.OpndImm:
		return o.Imm
	case ir.OpndMem:
		addr := th.effAddr(o.Mem)
		rec.Mem = append(rec.Mem, trace.MemAccess{Instr: idx, Addr: addr, Size: o.Mem.Size})
		v := th.proc.Mem.Read(addr, o.Mem.Size)
		if o.Mem.Size == 8 {
			return int64(v)
		}
		return signExtend(v, o.Mem.Size)
	}
	panic("vm: read of empty operand")
}

// assign writes an operand, recording a store for memory operands.
func (th *Thread) assign(o ir.Operand, v int64, idx uint16, rec *trace.Record) {
	switch o.Kind {
	case ir.OpndReg:
		th.regs[o.Reg] = v
	case ir.OpndMem:
		addr := th.effAddr(o.Mem)
		rec.Mem = append(rec.Mem, trace.MemAccess{Instr: idx, Addr: addr, Size: o.Mem.Size, Store: true})
		th.proc.Mem.Write(addr, o.Mem.Size, uint64(v))
	default:
		panic("vm: write to non-writable operand")
	}
}
