// Command tfcheck is the ThreadFuser verification engine front-end: it runs
// the analyzer's invariant catalog (internal/check) over .tft traces,
// built-in workloads, and randomized generated traces, across a warp-width ×
// parallelism configuration matrix. It is the standing oracle the analyzer's
// perf work must pass: serial and parallel replay bit-identical, width-1
// efficiency exactly 1.0, instruction conservation, lock-emulation
// monotonicity, coalescing bounds, codec round trips, and equation-1
// recombination.
//
// Usage:
//
//	tfcheck -all
//	tfcheck pigz.tft svc.tft
//	tfcheck -workload other.pigz -warps 1,8,32 -parallel 1,4
//	tfcheck -gen 50 -seed 7
//	tfcheck -all -props determinism,recombine -json
//
// The exit status is 2 for usage errors, 1 if any input fails to load or any
// property is violated, and 0 otherwise. Violations found on generated
// traces are shrunk to minimal reproducers; -repro-dir writes them as .tft
// files for tfanalyze/tflint to chew on.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"threadfuser/internal/check"
	"threadfuser/internal/core"
	"threadfuser/internal/ir"
	"threadfuser/internal/serve"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
	"threadfuser/internal/workloads"
)

func main() {
	var (
		wlNames    = flag.String("workload", "", "comma-separated built-in workloads to trace and check")
		all        = flag.Bool("all", false, "check every registered workload")
		threads    = flag.Int("threads", 0, "thread count for workload tracing (0 = workload default)")
		seed       = flag.Int64("seed", 1, "seed for workload inputs and generated traces")
		runs       = flag.Int("gen", 0, "also check this many generated random traces (seeds seed..seed+n-1)")
		warpsFlag  = flag.String("warps", "1,4,32", "comma-separated warp widths to cross-check")
		parFlag    = flag.String("parallel", "1,4", "comma-separated replay worker counts to cross-check")
		formations = flag.String("formations", "round-robin", "comma-separated warp batchings: round-robin, strided, greedy")
		propNames  = flag.String("props", "", "comma-separated property ids to run (default all); see -list")
		list       = flag.Bool("list", false, "list the available properties and exit")
		asJSON     = flag.Bool("json", false, "emit reports as a JSON array")
		reproDir   = flag.String("repro-dir", "", "write shrunken reproducer traces for generated failures to this directory")
		quiet      = flag.Bool("q", false, "print only failing inputs")
		useCache   = flag.Bool("cache", false, "serve already-verified (trace, options) replays from the on-disk report cache")
		cacheDir   = flag.String("cache-dir", "", "report cache directory (implies -cache; default $XDG_CACHE_HOME/threadfuser)")
		server     = flag.String("server", "", "check via a running tfserve instance at this URL instead of locally")
		tenant     = flag.String("tenant", "", "tenant identity sent with -server requests")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tfcheck [flags] [trace.tft ...]\n")
		fmt.Fprintf(os.Stderr, "verifies analyzer invariants over .tft traces, built-in workloads (-workload, -all),\n")
		fmt.Fprintf(os.Stderr, "and generated random traces (-gen)\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, p := range check.Properties() {
			fmt.Printf("%-14s %s\n", p.ID(), p.Desc())
		}
		return
	}

	opts := check.Options{Cache: core.OpenFlagCache(*useCache, *cacheDir)}
	var err error
	if opts.WarpSizes, err = parseInts(*warpsFlag); err != nil {
		usageError("bad -warps: %v", err)
	}
	if opts.Parallelism, err = parseInts(*parFlag); err != nil {
		usageError("bad -parallel: %v", err)
	}
	for _, f := range strings.Split(*formations, ",") {
		switch strings.TrimSpace(f) {
		case "round-robin":
			opts.Formations = append(opts.Formations, warp.RoundRobin)
		case "strided":
			opts.Formations = append(opts.Formations, warp.Strided)
		case "greedy":
			opts.Formations = append(opts.Formations, warp.GreedyEntry)
		default:
			usageError("unknown formation %q", f)
		}
	}
	if *propNames != "" {
		opts.Props = strings.Split(*propNames, ",")
	}

	// Assemble the input list: files first, then workloads, in argument
	// order. Workload loaders also hand back the program so the
	// "staticuniform" invariant runs; .tft files carry no IR and leave it
	// vacuously true.
	type input struct {
		name string
		load func() (*trace.Trace, *ir.Program, error)
	}
	var inputs []input
	for _, path := range flag.Args() {
		path := path
		inputs = append(inputs, input{name: path, load: func() (*trace.Trace, *ir.Program, error) {
			tr, err := trace.ReadFile(path)
			return tr, nil, err
		}})
	}
	addWorkload := func(w *workloads.Workload) {
		inputs = append(inputs, input{name: w.Name, load: func() (*trace.Trace, *ir.Program, error) {
			inst, err := w.Instantiate(workloads.Config{Threads: *threads, Seed: *seed})
			if err != nil {
				return nil, nil, err
			}
			tr, err := inst.Trace()
			return tr, inst.Prog, err
		}})
	}
	if *all {
		for _, w := range workloads.All() {
			addWorkload(w)
		}
	} else if *wlNames != "" {
		for _, name := range strings.Split(*wlNames, ",") {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				usageError("%v", err)
			}
			addWorkload(w)
		}
	}
	if len(inputs) == 0 && *runs == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *server != "" && *runs > 0 {
		usageError("-server mode does not support -gen (shrinking needs the local engine)")
	}

	failed := false
	var reports []*check.Report
	for _, in := range inputs {
		tr, prog, err := in.load()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tfcheck: %s: %v\n", in.name, err)
			failed = true
			continue
		}
		var rep *check.Report
		if *server != "" {
			// The static-oracle invariants skip server-side, exactly as for
			// .tft file inputs locally (uploads carry no IR).
			q := url.Values{
				"warps":      {*warpsFlag},
				"parallel":   {*parFlag},
				"formations": {*formations},
				"name":       {in.name},
			}
			if *propNames != "" {
				q.Set("props", *propNames)
			}
			var buf bytes.Buffer
			if err := trace.EncodeIndexed(&buf, tr); err != nil {
				fmt.Fprintf(os.Stderr, "tfcheck: %s: %v\n", in.name, err)
				failed = true
				continue
			}
			c := serve.Client{BaseURL: *server, Tenant: *tenant}
			rep, err = c.Check(context.Background(), &buf, q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tfcheck: %s: %v\n", in.name, err)
				failed = true
				continue
			}
		} else {
			inOpts := opts
			inOpts.Prog = prog
			rep, err = check.Run(in.name, tr, inOpts)
			if err != nil {
				usageError("%v", err)
			}
		}
		reports = append(reports, rep)
	}

	var failures []*check.GenFailure
	if *runs > 0 {
		genReports, genFailures, err := check.RunGenerated(opts, *seed, *runs)
		if err != nil {
			usageError("%v", err)
		}
		reports = append(reports, genReports...)
		failures = genFailures
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "tfcheck:", err)
			os.Exit(1)
		}
	} else {
		for _, rep := range reports {
			if *quiet && rep.OK() {
				continue
			}
			rep.Render(os.Stdout)
		}
	}
	for _, rep := range reports {
		if !rep.OK() {
			failed = true
		}
	}
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "tfcheck: seed %d: %d violations, shrunk to %d threads / %d records\n",
			f.Seed, len(f.Report.Violations), f.ReproThreads, f.ReproRecords)
		if *reproDir != "" {
			path := filepath.Join(*reproDir, fmt.Sprintf("tfcheck-repro-%d.tft", f.Seed))
			if err := trace.WriteFile(path, f.Repro); err != nil {
				fmt.Fprintf(os.Stderr, "tfcheck: writing %s: %v\n", path, err)
			} else {
				fmt.Fprintf(os.Stderr, "tfcheck: wrote reproducer %s\n", path)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tfcheck: %s\n", fmt.Sprintf(format, args...))
	os.Exit(2)
}
