package threadfuser

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark runs its
// experiment end to end — tracing, analysis, and (where the artifact needs
// it) lockstep-oracle execution or timing simulation — at reduced scale,
// and reports the headline quantities as custom metrics so `go test
// -bench=. -benchmem` doubles as a results table. The rendered artifact is
// logged once per benchmark; run with -v to see it.
//
// Ablation benchmarks at the bottom cover the design choices DESIGN.md
// calls out: batching policy, warp width, scheduler policy, allocator
// granularity, and lock-emulation cost.

import (
	"bytes"
	"sync"
	"testing"

	"threadfuser/internal/cfg"
	"threadfuser/internal/core"
	"threadfuser/internal/gpusim"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/report"
	"threadfuser/internal/simt"
	"threadfuser/internal/simtrace"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
	"threadfuser/internal/workloads"
)

var benchScale = report.Scale{Seed: 1}

func BenchmarkFig1WarpWidthEfficiency(b *testing.B) {
	var d *report.Fig1Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.Fig1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum8, sum32 float64
	for _, r := range d.Rows {
		sum8 += r.Eff8
		sum32 += r.Eff32
	}
	b.ReportMetric(sum8/float64(len(d.Rows)), "meanEff@8")
	b.ReportMetric(sum32/float64(len(d.Rows)), "meanEff@32")
	b.Log("\n" + d.Render())
}

func BenchmarkTable1Workloads(b *testing.B) {
	var d *report.Table1Data
	for i := 0; i < b.N; i++ {
		d = report.Table1()
	}
	b.ReportMetric(float64(len(d.Rows)), "workloads")
	b.Log("\n" + d.Render())
}

func BenchmarkFig5aEfficiencyCorrelation(b *testing.B) {
	var d *report.Fig5Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.Fig5a(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, l := range d.Levels {
		b.ReportMetric(l.Pearson, "corr"+l.Level.String())
	}
	b.Log("\n" + d.Render())
}

func BenchmarkFig5bMemoryCorrelation(b *testing.B) {
	var d *report.Fig5Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.Fig5b(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, l := range d.Levels {
		b.ReportMetric(l.MAE, "mae"+l.Level.String())
	}
	b.Log("\n" + d.Render())
}

func BenchmarkFig6ProjectedSpeedup(b *testing.B) {
	var d *report.Fig6Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.Fig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.SpeedupCorrelation, "speedupCorr")
	b.ReportMetric(d.ExecTimeMAE, "execTimeMAE")
	b.Log("\n" + d.Render())
}

func BenchmarkFig7PerFunctionAnalysis(b *testing.B) {
	var d *report.Fig7Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.Fig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.OriginalEff, "effBefore")
	b.ReportMetric(d.FixedEff, "effAfter")
	b.ReportMetric(d.GetpointShare, "getpointShare")
	b.Log("\n" + d.Render())
}

func BenchmarkFig8SkippedInstructions(b *testing.B) {
	var d *report.Fig8Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.Fig8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.GeoMean, "tracedGeomean")
	b.Log("\n" + d.Render())
}

func BenchmarkFig9LockingEfficiency(b *testing.B) {
	var d *report.Fig9Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.Fig9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var drop float64
	for _, r := range d.Rows {
		drop += r.EffFineGrain - r.EffEmulated
	}
	b.ReportMetric(drop/float64(len(d.Rows)), "meanEffDrop")
	b.Log("\n" + d.Render())
}

func BenchmarkFig10MemoryDivergence(b *testing.B) {
	var d *report.Fig10Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.Fig10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	var heap float64
	for _, r := range d.Rows {
		heap += r.HeapTxPer
	}
	b.ReportMetric(heap/float64(len(d.Rows)), "meanHeapTxPerInstr")
	b.Log("\n" + d.Render())
}

func BenchmarkTable2Comparison(b *testing.B) {
	var d *report.Table2Data
	var err error
	for i := 0; i < b.N; i++ {
		d, err = report.Table2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.EffMAEO1, "effMAE")
	b.ReportMetric(d.MemMAEO1, "memMAE")
	b.ReportMetric(d.SpeedupCorr, "speedupCorr")
	b.Log("\n" + d.Render())
}

// ----------------------------------------------------------------- ablations

// benchAnalyze is the shared helper for the ablation benchmarks.
func benchAnalyze(b *testing.B, name string, mutate func(*core.Options)) *core.Report {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Defaults()
	if mutate != nil {
		mutate(&opts)
	}
	var rep *core.Report
	for i := 0; i < b.N; i++ {
		rep, err = core.Analyze(tr, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// BenchmarkAblationBatching compares warp-formation policies on a graph
// workload (section III: "different batching algorithms can be explored").
func BenchmarkAblationBatching(b *testing.B) {
	for _, f := range []warp.Formation{warp.RoundRobin, warp.Strided, warp.GreedyEntry} {
		f := f
		b.Run(f.String(), func(b *testing.B) {
			rep := benchAnalyze(b, "rodinia.bfs", func(o *core.Options) { o.Formation = f })
			b.ReportMetric(rep.Efficiency, "efficiency")
		})
	}
}

// BenchmarkAblationWarpWidth sweeps the modelled SIMD width on the paper's
// most width-sensitive workload.
func BenchmarkAblationWarpWidth(b *testing.B) {
	for _, ws := range []int{4, 8, 16, 32, 64} {
		ws := ws
		b.Run(map[bool]string{true: "w"}[true]+itoa(ws), func(b *testing.B) {
			rep := benchAnalyze(b, "other.pigz", func(o *core.Options) { o.WarpSize = ws })
			b.ReportMetric(rep.Efficiency, "efficiency")
		})
	}
}

// BenchmarkAblationLockEmulation measures the analysis-time and efficiency
// cost of intra-warp lock serialization on the lock-heaviest microservice.
func BenchmarkAblationLockEmulation(b *testing.B) {
	for _, locks := range []bool{false, true} {
		locks := locks
		name := "fine-grain-assumed"
		if locks {
			name = "emulated"
		}
		b.Run(name, func(b *testing.B) {
			rep := benchAnalyze(b, "usuite.mcrouter.memcached", func(o *core.Options) { o.EmulateLocks = locks })
			b.ReportMetric(rep.Efficiency, "efficiency")
			b.ReportMetric(float64(rep.LockSerializations), "serializations")
		})
	}
}

// BenchmarkAblationScheduler compares GTO and LRR warp scheduling in the
// timing simulator.
func BenchmarkAblationScheduler(b *testing.B) {
	w, err := workloads.ByName("rodinia.sc")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 1, Threads: 256})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		b.Fatal(err)
	}
	kt, err := simtrace.Generate(inst.Prog, tr, 32)
	if err != nil {
		b.Fatal(err)
	}
	for _, sched := range []gpusim.Scheduler{gpusim.GTO, gpusim.LRR} {
		sched := sched
		b.Run(sched.String(), func(b *testing.B) {
			// Shrink the device so SMs hold several warps each; with one
			// warp per SM the scheduling policy cannot matter.
			cfg := gpusim.RTX3070()
			cfg.NumSMs = 2
			cfg.Scheduler = sched
			var res *gpusim.Result
			for i := 0; i < b.N; i++ {
				res, err = gpusim.Run(kt, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
			b.ReportMetric(res.IPC, "ipc")
		})
	}
}

// BenchmarkAblationMachine runs the same kernel on the GPU-class and
// CPU-adjacent SIMT configurations (the section V-B design space).
func BenchmarkAblationMachine(b *testing.B) {
	w, err := workloads.ByName("usuite.textsearch.mid")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 1, Threads: 256})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		b.Fatal(err)
	}
	kt, err := simtrace.Generate(inst.Prog, tr, 32)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []gpusim.Config{gpusim.RTX3070(), gpusim.SmallSIMT()} {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			var res *gpusim.Result
			for i := 0; i < b.N; i++ {
				res, err = gpusim.Run(kt, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Cycles), "cycles")
		})
	}
}

// BenchmarkAnalyzerThroughput measures raw analyzer speed in traced
// instructions per second — the paper's 2-6x-native tracing overhead claim
// is about the tracer; this is the analysis side.
func BenchmarkAnalyzerThroughput(b *testing.B) {
	w, err := workloads.ByName("parsec.vips")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(tr, core.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(tr.TotalInstructions()))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ------------------------------------------------------- replay benchmarks

// replayBench caches one traced workload plus its prepared analysis
// products, so the replay benchmarks measure the SIMT-stack replay alone —
// not tracing, DCFG construction, or IPDOM analysis.
var replayBench struct {
	once    sync.Once
	tr      *trace.Trace
	graphs  map[uint32]*cfg.DCFG
	pdoms   map[uint32]*ipdom.PostDom
	warps   []warp.Warp
	uniform [][]bool
	err     error
}

func replayBenchSetup(b *testing.B) {
	b.Helper()
	replayBench.once.Do(func() {
		w, err := workloads.ByName("parsec.vips")
		if err != nil {
			replayBench.err = err
			return
		}
		inst, err := w.Instantiate(workloads.Config{Seed: 1, Threads: 64})
		if err != nil {
			replayBench.err = err
			return
		}
		tr, err := inst.Trace()
		if err != nil {
			replayBench.err = err
			return
		}
		graphs, err := cfg.Build(tr)
		if err != nil {
			replayBench.err = err
			return
		}
		warps, err := warp.Form(tr, 32, warp.RoundRobin)
		if err != nil {
			replayBench.err = err
			return
		}
		// Mirror the analyzer pipeline's setup: the packed SoA columns and
		// the static oracle's uniform-region table are built once per trace
		// (core.prepare does the same), so the benchmark measures replay in
		// its steady state rather than re-deriving them per op.
		tr.EnsureCols()
		replayBench.uniform = staticsimt.UniformBlocks(inst.Prog,
			staticsimt.Analyze(inst.Prog, staticsimt.Options{AssumeUniformEntry: true}))
		replayBench.tr = tr
		replayBench.graphs = graphs
		replayBench.pdoms = ipdom.ComputeAll(graphs)
		replayBench.warps = warps
	})
	if replayBench.err != nil {
		b.Fatal(replayBench.err)
	}
}

func benchReplay(b *testing.B, parallelism int) {
	replayBenchSetup(b)
	opts := simt.Options{WarpSize: 32, Parallelism: parallelism, UniformBranches: replayBench.uniform}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simt.Replay(replayBench.tr, replayBench.graphs, replayBench.pdoms, replayBench.warps, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(replayBench.tr.TotalInstructions()))
}

// BenchmarkReplaySerial measures single-worker replay throughput — the
// baseline BENCH_analyzer.json's speedup figure is computed against.
func BenchmarkReplaySerial(b *testing.B) {
	benchReplay(b, 1)
}

// BenchmarkReplayParallel fans warps out over one worker per core. Output is
// bit-identical to the serial path; only wall-clock differs.
func BenchmarkReplayParallel(b *testing.B) {
	benchReplay(b, 0)
}

// BenchmarkReplayAllocs tracks the allocation diet on the replay inner loop:
// reused cursors/stacks/group buffers and the slice-indexed accumulators
// should keep allocs/op low and flat as the trace grows.
func BenchmarkReplayAllocs(b *testing.B) {
	b.ReportAllocs()
	benchReplay(b, 1)
}

// BenchmarkAblationLockReconvergence compares critical-section
// reconvergence policies — the investigation the paper defers to future
// research ("different choices of reconvergence points may have varying
// effects on the control flow efficiency").
func BenchmarkAblationLockReconvergence(b *testing.B) {
	for _, pol := range []simt.LockReconvergence{simt.ReconvergeAtRelease, simt.ReconvergeAtFunctionExit} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			rep := benchAnalyze(b, "usuite.mcrouter.memcached", func(o *core.Options) {
				o.EmulateLocks = true
				o.LockReconvergence = pol
			})
			b.ReportMetric(rep.Efficiency, "efficiency")
		})
	}
}

// ------------------------------------------------------- decode benchmarks

// decodeBench caches the parsec.vips/64-thread trace encoded in all three
// container versions, so the decode benchmarks measure pure decoding.
var decodeBench struct {
	once       sync.Once
	v1, v2, v3 []byte
	err        error
}

func decodeBenchSetup(b *testing.B) {
	b.Helper()
	decodeBench.once.Do(func() {
		w, err := workloads.ByName("parsec.vips")
		if err != nil {
			decodeBench.err = err
			return
		}
		inst, err := w.Instantiate(workloads.Config{Seed: 1, Threads: 64})
		if err != nil {
			decodeBench.err = err
			return
		}
		tr, err := inst.Trace()
		if err != nil {
			decodeBench.err = err
			return
		}
		var v1, v2, v3 bytes.Buffer
		if err := trace.Encode(&v1, tr); err != nil {
			decodeBench.err = err
			return
		}
		if err := trace.EncodeCompact(&v2, tr); err != nil {
			decodeBench.err = err
			return
		}
		if err := trace.EncodeIndexed(&v3, tr); err != nil {
			decodeBench.err = err
			return
		}
		decodeBench.v1 = v1.Bytes()
		decodeBench.v2 = v2.Bytes()
		decodeBench.v3 = v3.Bytes()
	})
	if decodeBench.err != nil {
		b.Fatal(decodeBench.err)
	}
}

func benchDecodeSerial(b *testing.B, data []byte) {
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeV1Serial is the baseline the decode speedup figure in
// BENCH_analyzer.json is computed against.
func BenchmarkDecodeV1Serial(b *testing.B) {
	decodeBenchSetup(b)
	benchDecodeSerial(b, decodeBench.v1)
}

func BenchmarkDecodeV2Serial(b *testing.B) {
	decodeBenchSetup(b)
	benchDecodeSerial(b, decodeBench.v2)
}

// BenchmarkDecodeV3Serial decodes the indexed format serially through the
// arena fast path, reusing one arena across iterations — the steady-state
// cost of the scan-many-trace-files loop, where the PR's decode throughput
// target lives. The first iteration sizes the tables; the rest run with zero
// table allocation.
func BenchmarkDecodeV3Serial(b *testing.B) {
	decodeBenchSetup(b)
	data := decodeBench.v3
	b.SetBytes(int64(len(data)))
	var arena trace.Arena
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.DecodeInto(data, &arena); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeV3Parallel fans per-thread section decoding over one worker
// per core using the v3 index. The decoded trace is identical to the serial
// path; only wall-clock differs.
func BenchmarkDecodeV3Parallel(b *testing.B) {
	decodeBenchSetup(b)
	data := decodeBench.v3
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.DecodeParallel(bytes.NewReader(data), int64(len(data)), 0); err != nil {
			b.Fatal(err)
		}
	}
}
