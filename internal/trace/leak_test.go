package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// countFDs returns the process's open descriptor count via /proc/self/fd,
// or -1 where that interface doesn't exist (the test skips there).
func countFDs(t *testing.T) int {
	t.Helper()
	des, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(des)
}

// TestOpenFileNoFDLeak proves OpenFile's error paths release the file
// handle: a server calls it once per untrusted upload, so even a one-fd
// leak per malformed input exhausts the process's descriptor table under
// sustained traffic. Each failing input is opened 1000 times; the
// descriptor count must be where it started.
func TestOpenFileNoFDLeak(t *testing.T) {
	if countFDs(t) < 0 {
		t.Skip("no /proc/self/fd on this platform")
	}
	dir := t.TempDir()
	tr := randomTrace(rand.New(rand.NewSource(23)))

	// Three early-return shapes: no index at all (v1), a corrupt footer
	// (trailer magic intact, bogus offsets), and a stat-able but truncated
	// trailer.
	v1 := filepath.Join(dir, "v1.tft")
	if err := WriteFile(v1, tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeIndexed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	corrupt := append([]byte(nil), full...)
	// Zero the footer region (keeping the trailer) so index decoding fails.
	for i := len(corrupt) - trailerSize - 8; i < len(corrupt)-trailerSize; i++ {
		corrupt[i] = 0xff
	}
	corruptPath := filepath.Join(dir, "corrupt.tft")
	if err := os.WriteFile(corruptPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	shortPath := filepath.Join(dir, "short.tft")
	if err := os.WriteFile(shortPath, full[:len(full)-trailerSize/2], 0o644); err != nil {
		t.Fatal(err)
	}

	paths := []string{v1, corruptPath, shortPath}
	for _, p := range paths {
		if _, err := OpenFile(p); !errors.Is(err, ErrNoIndex) {
			t.Fatalf("OpenFile(%s) error = %v, want ErrNoIndex", filepath.Base(p), err)
		}
	}

	before := countFDs(t)
	for i := 0; i < 1000; i++ {
		for _, p := range paths {
			if r, err := OpenFile(p); err == nil {
				r.Close()
				t.Fatalf("OpenFile(%s) unexpectedly succeeded", filepath.Base(p))
			}
		}
	}
	// Allow a little slack for runtime-internal descriptors (netpoll etc.)
	// that can appear lazily; a real leak here would be ~3000 fds.
	if after := countFDs(t); after > before+5 {
		t.Fatalf("descriptor count grew %d -> %d across 3000 failed opens", before, after)
	}

	// The success path must keep exactly one handle and release it on Close.
	good := filepath.Join(dir, "good.tft")
	if err := WriteFileIndexed(good, tr); err != nil {
		t.Fatal(err)
	}
	base := countFDs(t)
	r, err := OpenFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if during := countFDs(t); during != base+1 {
		t.Errorf("open reader holds %d new fds, want 1", during-base)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if after := countFDs(t); after != base {
		t.Errorf("descriptor count %d after Close, want %d", after, base)
	}
}
