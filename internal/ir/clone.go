package ir

// Clone deep-copies a program so transformation passes (internal/opt) can
// produce per-optimization-level variants without mutating the canonical
// build shared across experiments.
func Clone(p *Program) *Program {
	out := &Program{
		Name:   p.Name,
		Entry:  p.Entry,
		Funcs:  make([]*Function, len(p.Funcs)),
		byName: make(map[string]*Function, len(p.Funcs)),
	}
	for i, f := range p.Funcs {
		nf := &Function{ID: f.ID, Name: f.Name, Blocks: make([]*Block, len(f.Blocks))}
		for j, b := range f.Blocks {
			nb := &Block{ID: b.ID, Name: b.Name, Instrs: make([]Instr, len(b.Instrs))}
			copy(nb.Instrs, b.Instrs)
			for k := range nb.Instrs {
				if t := nb.Instrs[k].Targets; t != nil {
					nb.Instrs[k].Targets = append([]BlockID(nil), t...)
				}
			}
			nf.Blocks[j] = nb
		}
		out.Funcs[i] = nf
		out.byName[nf.Name] = nf
	}
	return out
}
