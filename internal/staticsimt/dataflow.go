package staticsimt

import (
	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/ir"
)

// slotKey identifies one tracked SP-relative stack slot by its exact
// displacement and access width; overlapping accesses at other keys
// invalidate it rather than alias into it.
type slotKey struct {
	disp int64
	size uint8
}

// state is the dataflow fact at one program point: the uniformity of every
// register, of the flags, and the set of SP-relative slots currently known
// to hold warp-uniform values (absent = divergent).
type state struct {
	regs  [ir.NumRegs]Uniformity
	flags Uniformity
	slots map[slotKey]bool
}

func (s *state) clone() state {
	out := *s
	if s.slots != nil {
		out.slots = make(map[slotKey]bool, len(s.slots))
		for k := range s.slots {
			out.slots[k] = true
		}
	}
	return out
}

// joinInto merges src into dst (register/flag OR, slot intersection) and
// reports whether dst changed.
func joinInto(dst *state, src *state) bool {
	changed := false
	for r := range dst.regs {
		if merged := dst.regs[r] | src.regs[r]; merged != dst.regs[r] {
			dst.regs[r] = merged
			changed = true
		}
	}
	if merged := dst.flags | src.flags; merged != dst.flags {
		dst.flags = merged
		changed = true
	}
	for k := range dst.slots {
		if !src.slots[k] {
			delete(dst.slots, k)
			changed = true
		}
	}
	return changed
}

// worstState is the all-divergent fact used for phantom (unreachable)
// functions and unknown continuations.
func worstState() state {
	var s state
	for r := range s.regs {
		s.regs[r] = FromArgs | FromMemory | FromCall
	}
	s.regs[ir.TID] = FromTID
	s.regs[ir.SP] = FromSP
	s.flags = FromArgs | FromMemory | FromCall
	s.slots = map[slotKey]bool{}
	return s
}

// funcState is the per-function fixpoint state.
type funcState struct {
	f         *ir.Function
	entry     state // join over all call sites (seed for the entry function)
	exit      state // join over all ret points
	in        []state
	entrySeen bool
	exitSeen  bool
	inSeen    []bool
	// writesSP disables slot tracking: a rebased stack pointer makes
	// displacement-keyed slots ambiguous across joins.
	writesSP bool
	// influenced marks blocks inside some divergent branch's influence
	// region; every definition there picks up the FromControl taint.
	influenced []bool
	// branch is the divergence of each jcc/switch/callr terminator's
	// condition/selector, keyed by block.
	branch     map[uint32]Uniformity
	branchKind map[uint32]string
	phantom    bool // analyzed standalone; never contributes to other functions
}

type analysis struct {
	prog   *ir.Program
	opts   Options
	graphs map[uint32]*cfg.DCFG
	pdoms  map[uint32]*ipdom.PostDom
	fns    []*funcState
	// stackEscapes: some stack address was stored to memory, so loads
	// through non-SP pointers may observe (and stores may clobber) any
	// frame slot — slot tracking shuts off program-wide.
	stackEscapes bool
	changed      bool
	// meldsRejectedMem counts meld candidates vetoed by Options.MeldMem
	// during result construction.
	meldsRejectedMem int
}

func newAnalysis(p *ir.Program, opts Options) *analysis {
	graphs := cfg.FromProgram(p)
	a := &analysis{
		prog:   p,
		opts:   opts,
		graphs: graphs,
		pdoms:  ipdom.ComputeAll(graphs),
		fns:    make([]*funcState, len(p.Funcs)),
	}
	for i, f := range p.Funcs {
		fs := &funcState{
			f:          f,
			in:         make([]state, len(f.Blocks)),
			inSeen:     make([]bool, len(f.Blocks)),
			influenced: make([]bool, len(f.Blocks)),
			branch:     make(map[uint32]Uniformity),
			branchKind: make(map[uint32]string),
		}
		for _, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if !in.Op.IsTerminator() && in.Dst.Kind == ir.OpndReg && in.Dst.Reg == ir.SP {
					fs.writesSP = true
				}
			}
		}
		a.fns[i] = fs
	}
	return a
}

// run drives the interprocedural least fixpoint, then classifies functions
// with no call path from the entry under a standalone worst-case entry.
func (a *analysis) run() {
	entry := a.fns[a.prog.Entry]
	var seed state
	if a.opts.AssumeUniformEntry {
		seed.slots = map[slotKey]bool{}
	} else {
		for r := range seed.regs {
			seed.regs[r] = FromArgs
		}
		seed.slots = map[slotKey]bool{}
	}
	seed.regs[ir.TID] = FromTID
	seed.regs[ir.SP] = FromSP
	entry.entry = seed
	entry.entrySeen = true

	for {
		a.changed = false
		for _, fs := range a.fns {
			if fs.entrySeen {
				a.runFunc(fs)
			}
		}
		if !a.changed {
			break
		}
	}

	// Phantom functions: no static call path reaches them (and no indirect
	// call exists to conjure one), so they never execute — but classify them
	// anyway, soundly, under a worst-case entry, without feeding their
	// call-site contributions back into the live program.
	for _, fs := range a.fns {
		if fs.entrySeen {
			continue
		}
		fs.phantom = true
		fs.entry = worstState()
		fs.entrySeen = true
		for {
			a.changed = false
			a.runFunc(fs)
			if !a.changed {
				break
			}
		}
	}
}

// runFunc does one monotone sweep over a function: refresh its influence
// regions from the current divergent-branch set, then transfer every
// reached block in order, propagating to successors, callees and the exit.
func (a *analysis) runFunc(fs *funcState) {
	a.refreshInfluence(fs)
	if !fs.inSeen[0] {
		fs.in[0] = fs.entry.clone()
		fs.inSeen[0] = true
		a.changed = true
	} else if joinInto(&fs.in[0], &fs.entry) {
		a.changed = true
	}
	for bi := range fs.f.Blocks {
		if !fs.inSeen[bi] {
			continue
		}
		st := fs.in[bi].clone()
		a.transferBlock(fs, fs.f.Blocks[bi], &st)
	}
}

// refreshInfluence recomputes the influenced-block set from the currently
// divergent jcc/switch branches. Influence only grows (branch classes are
// monotone), so this is part of the fixpoint.
func (a *analysis) refreshInfluence(fs *funcState) {
	fid := uint32(fs.f.ID)
	g := a.graphs[fid]
	pd := a.pdoms[fid]
	for bid, u := range fs.branch {
		if !u.Divergent() {
			continue
		}
		term := fs.f.Blocks[bid].Terminator()
		if term.Op == ir.OpCallR {
			// A divergent indirect call has one in-function successor; the
			// cross-callee divergence is handled by the continuation taint.
			continue
		}
		for _, blk := range a.regionBlocks(g, pd, int32(bid)) {
			if !fs.influenced[blk] {
				fs.influenced[blk] = true
				a.changed = true
			}
		}
	}
}

// regionBlocks returns the influence region of a divergent branch: every
// block reachable from its successors without passing its static immediate
// post-dominator (the reconvergence point). The branch block itself joins
// the region when a back edge re-enters it (divergent loop trip counts).
func (a *analysis) regionBlocks(g *cfg.DCFG, pd *ipdom.PostDom, branch int32) []uint32 {
	rpc := pd.IPDom(branch)
	exit := g.ExitNode()
	seen := map[int32]bool{}
	var out []uint32
	work := append([]int32(nil), g.Succs(branch)...)
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[v] || v == rpc || v == exit {
			continue
		}
		seen[v] = true
		out = append(out, uint32(v))
		work = append(work, g.Succs(v)...)
	}
	return out
}

// setBranch records (joins) a terminator classification.
func (a *analysis) setBranch(fs *funcState, block uint32, u Uniformity, kind string) {
	if merged := fs.branch[block] | u; merged != fs.branch[block] || fs.branchKind[block] == "" {
		fs.branch[block] = merged
		fs.branchKind[block] = kind
		a.changed = true
	}
}

// flow joins a state into a block's entry fact.
func (a *analysis) flow(fs *funcState, st *state, target ir.BlockID) {
	if int(target) >= len(fs.in) {
		return
	}
	if !fs.inSeen[target] {
		fs.in[target] = st.clone()
		fs.inSeen[target] = true
		a.changed = true
		return
	}
	if joinInto(&fs.in[target], st) {
		a.changed = true
	}
}

// contributeEntry joins a caller's registers and flags into a callee's entry
// fact. Slots never cross the call: the VM shares SP across calls, so the
// callee sees the frame but the analysis conservatively forgets it.
func (a *analysis) contributeEntry(callee *funcState, st *state) {
	contrib := state{regs: st.regs, flags: st.flags, slots: map[slotKey]bool{}}
	if !callee.entrySeen {
		callee.entry = contrib
		callee.entrySeen = true
		a.changed = true
		return
	}
	if joinInto(&callee.entry, &contrib) {
		a.changed = true
	}
}

// joinExit joins a state into the function's exit fact.
func (a *analysis) joinExit(fs *funcState, st *state) {
	contrib := state{regs: st.regs, flags: st.flags, slots: map[slotKey]bool{}}
	if !fs.exitSeen {
		fs.exit = contrib
		fs.exitSeen = true
		a.changed = true
		return
	}
	if joinInto(&fs.exit, &contrib) {
		a.changed = true
	}
}

// taintAll adds a cause to every register and the flags.
func taintAll(st *state, cause Uniformity) {
	for r := range st.regs {
		st.regs[r] |= cause
	}
	st.flags |= cause
}

// transferBlock interprets one block's instructions over st and propagates
// the result to successors / callees / the exit.
func (a *analysis) transferBlock(fs *funcState, b *ir.Block, st *state) {
	infl := fs.influenced[b.ID]
	var ctl Uniformity
	if infl {
		ctl = FromControl
	}
	for ii := 0; ii < len(b.Instrs)-1; ii++ {
		a.transferInstr(fs, st, &b.Instrs[ii], ctl)
	}

	term := b.Terminator()
	bid := uint32(b.ID)
	switch term.Op {
	case ir.OpJmp:
		a.flow(fs, st, term.Target)
	case ir.OpJcc:
		a.setBranch(fs, bid, st.flags, "jcc")
		a.flow(fs, st, term.Target)
		a.flow(fs, st, term.Fall)
	case ir.OpSwitch:
		a.setBranch(fs, bid, a.readOperand(fs, st, term.Src), "switch")
		for _, t := range term.Targets {
			a.flow(fs, st, t)
		}
	case ir.OpRet:
		a.joinExit(fs, st)
	case ir.OpCall:
		if int(term.Callee) >= len(a.fns) {
			return
		}
		callee := a.fns[term.Callee]
		cont := a.callContinuation(fs, st, callee, ctl)
		a.flow(fs, &cont, term.Fall)
	case ir.OpCallR:
		sel := a.readOperand(fs, st, term.Src)
		a.setBranch(fs, bid, sel, "callr")
		cont := worstState()
		if !fs.phantom {
			first := true
			for _, callee := range a.fns {
				a.contributeEntry(callee, st)
				ce := a.calleeExit(callee)
				if first {
					cont = ce
					first = false
				} else {
					joinInto(&cont, &ce)
				}
			}
		}
		if sel.Divergent() {
			// Threads in different callees: every value the calls produce
			// may differ per thread.
			taintAll(&cont, FromCall|sel)
		}
		if infl {
			taintAll(&cont, FromControl)
		}
		a.flow(fs, &cont, term.Fall)
	}
}

// callContinuation computes the state at a direct call's continuation: the
// callee's exit registers/flags, an emptied slot set (the callee shares the
// frame and may have clobbered it), and the control taint when the call
// site itself sits under divergent control.
func (a *analysis) callContinuation(fs *funcState, st *state, callee *funcState, ctl Uniformity) state {
	if fs.phantom {
		return worstState()
	}
	a.contributeEntry(callee, st)
	cont := a.calleeExit(callee)
	if ctl != 0 {
		// The callee ran under divergent control: any value it defines —
		// which, context-insensitively, is any register — is suspect at
		// this continuation.
		taintAll(&cont, FromControl)
	}
	return cont
}

// calleeExit returns a copy of the callee's exit fact with fresh empty
// slots; an exit not yet computed yields the optimistic bottom, which the
// fixpoint corrects on later sweeps.
func (a *analysis) calleeExit(callee *funcState) state {
	var cont state
	if callee.exitSeen {
		cont.regs = callee.exit.regs
		cont.flags = callee.exit.flags
	}
	cont.slots = map[slotKey]bool{}
	return cont
}

// readOperand is the value-uniformity of one source operand.
func (a *analysis) readOperand(fs *funcState, st *state, o ir.Operand) Uniformity {
	switch o.Kind {
	case ir.OpndReg:
		return st.regs[o.Reg]
	case ir.OpndImm:
		return Uniform
	case ir.OpndMem:
		return a.loadUnif(fs, st, o.Mem)
	}
	return Uniform
}

// addrUnif is the uniformity of a memory operand's effective address.
func addrUnif(st *state, m ir.MemRef) Uniformity {
	u := st.regs[m.Base]
	if m.HasIndex {
		u |= st.regs[m.Index]
	}
	return u
}

// loadUnif is the uniformity of a loaded value: uniform only for a tracked
// SP-relative slot, divergent (FromMemory) otherwise — the static view
// cannot prove shared memory holds identical values per thread.
func (a *analysis) loadUnif(fs *funcState, st *state, m ir.MemRef) Uniformity {
	if m.Base == ir.SP && !m.HasIndex && !fs.writesSP && !a.stackEscapes {
		if st.slots[slotKey{m.Disp, m.Size}] {
			return Uniform
		}
	}
	return FromMemory
}

// store updates slot tracking for a stored value and flags stack-address
// escapes. val must already include any control taint.
func (a *analysis) store(fs *funcState, st *state, m ir.MemRef, val Uniformity) {
	if val&FromSP != 0 && !a.stackEscapes {
		// A stack address reached memory: a reloaded copy could alias any
		// frame slot, so slot tracking is no longer sound anywhere.
		a.stackEscapes = true
		a.changed = true
	}
	if fs.writesSP || a.stackEscapes {
		clearSlots(st)
		return
	}
	if m.Base == ir.SP {
		if !m.HasIndex {
			key := slotKey{m.Disp, m.Size}
			clearOverlapping(st, m.Disp, int64(m.Size), key)
			if val == Uniform {
				st.slots[key] = true
			} else {
				delete(st.slots, key)
			}
			return
		}
		clearSlots(st) // indexed frame store: unknown offset
		return
	}
	if st.regs[m.Base]&FromSP != 0 || (m.HasIndex && st.regs[m.Index]&FromSP != 0) {
		clearSlots(st) // store through a frame-derived pointer
	}
}

func clearSlots(st *state) {
	for k := range st.slots {
		delete(st.slots, k)
	}
}

// clearOverlapping drops tracked slots overlapping [disp, disp+size) except
// the exactly-matching key (which the caller re-decides).
func clearOverlapping(st *state, disp, size int64, except slotKey) {
	for k := range st.slots {
		if k == except {
			continue
		}
		if k.disp < disp+size && disp < k.disp+int64(k.size) {
			delete(st.slots, k)
		}
	}
}

// def assigns a value to a destination operand (with control taint already
// folded into val by the caller).
func (a *analysis) def(fs *funcState, st *state, dst ir.Operand, val Uniformity) {
	switch dst.Kind {
	case ir.OpndReg:
		st.regs[dst.Reg] = val
	case ir.OpndMem:
		a.store(fs, st, dst.Mem, val)
	}
}

// transferInstr interprets one non-terminator instruction.
func (a *analysis) transferInstr(fs *funcState, st *state, in *ir.Instr, ctl Uniformity) {
	switch in.Op {
	case ir.OpNop, ir.OpLock, ir.OpUnlock, ir.OpIO, ir.OpSpin:
		// No register, flag, or tracked-slot effect. (Lock/Unlock use their
		// operand's address only.)
	case ir.OpMov:
		a.def(fs, st, in.Dst, a.readOperand(fs, st, in.Src)|ctl)
	case ir.OpLea:
		a.def(fs, st, in.Dst, addrUnif(st, in.Src.Mem)|ctl)
	case ir.OpCmp, ir.OpTest, ir.OpFCmp:
		st.flags = a.readOperand(fs, st, in.Dst) | a.readOperand(fs, st, in.Src) | ctl
	case ir.OpCmov:
		if in.Dst.IsMem() {
			// Conditional store: threads whose condition fails keep the old
			// slot value, so the result joins old, new, and the flags.
			old := a.loadUnif(fs, st, in.Dst.Mem)
			a.store(fs, st, in.Dst.Mem, old|a.readOperand(fs, st, in.Src)|st.flags|ctl)
		} else {
			st.regs[in.Dst.Reg] |= a.readOperand(fs, st, in.Src) | st.flags | ctl
		}
	case ir.OpNeg, ir.OpNot, ir.OpFSqrt, ir.OpFAbs:
		a.def(fs, st, in.Dst, a.readOperand(fs, st, in.Dst)|ctl)
	case ir.OpCvtIF, ir.OpCvtFI:
		a.def(fs, st, in.Dst, a.readOperand(fs, st, in.Src)|ctl)
	default:
		// Binary RMW ALU/FPU: add, sub, mul, div, rem, and, or, xor,
		// shifts, fadd..fdiv.
		a.def(fs, st, in.Dst, a.readOperand(fs, st, in.Dst)|a.readOperand(fs, st, in.Src)|ctl)
	}
}
