package analysis

import (
	"fmt"
	"sort"
	"strings"

	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// locksetPass is an Eraser-style dynamic race detector over the trace's
// per-thread memory and lock events. Each shared address carries a candidate
// lockset — the locks held on every access so far — refined by intersection;
// a read-shared/exclusive state machine suppresses the classic false
// positives (single-owner data and initialize-then-share patterns), so a
// report means some thread wrote the address while the candidate set was
// empty. The SIMT projection makes this worth running before a port: lock
// emulation serializes contended sections, so a racy MIMD program can replay
// with plausible numbers while hiding a correctness bug the GPU port will
// inherit.
//
// Lockset analysis is order-insensitive in the way that matters here: set
// intersection is commutative, so walking threads one after another (rather
// than in a real interleaving) finds exactly the addresses that lack a
// consistent protecting lock.
type locksetPass struct{}

func (locksetPass) ID() string { return "lockset" }
func (locksetPass) Desc() string {
	return "Eraser-style lockset refinement: shared addresses written with an empty candidate lockset"
}

// Shadow-word states, per Eraser's figure 2. Virgin is represented by the
// shadow not existing yet.
const (
	stExclusive = iota // one thread has accessed; no lockset tracked
	stShared           // multiple readers after the owner; refining lockset
	stSharedMod        // some non-first thread wrote; empty lockset = race
)

type shadow struct {
	state   int
	owner   int // first accessing thread
	init    bool
	lockset []uint64 // sorted candidate set; valid once init
	threads []int    // accessing threads, capped for reporting
	report  bool     // race already recorded for this address
}

const maxRaceThreads = 8

func (sh *shadow) note(tid int) {
	for _, t := range sh.threads {
		if t == tid {
			return
		}
	}
	if len(sh.threads) < maxRaceThreads {
		sh.threads = append(sh.threads, tid)
	}
}

// eraserWalk runs the Eraser shadow state machine over every thread's memory
// and lock events, invoking report exactly once per racy address — at the
// first access that left its candidate lockset empty in the SharedMod state.
// Lock words and stack addresses are excluded. It returns the set of lock
// words seen, so callers re-walking the trace can apply the same exclusion.
func eraserWalk(t *trace.Trace, report func(r *trace.Record, m *trace.MemAccess, sh *shadow)) map[uint64]bool {
	// Lock words are synchronization state, not data: accesses to them are
	// excluded, whichever thread or instruction touches them.
	lockWords := make(map[uint64]bool)
	for _, th := range t.Threads {
		for ri := range th.Records {
			for _, l := range th.Records[ri].Locks {
				lockWords[l.Addr] = true
			}
		}
	}

	shadows := make(map[uint64]*shadow)

	for _, th := range t.Threads {
		held := make(map[uint64]int) // lock addr -> acquire depth
		for ri := range th.Records {
			r := &th.Records[ri]
			if r.Kind != trace.KindBBL {
				continue
			}
			li := 0
			for mi := range r.Mem {
				m := &r.Mem[mi]
				// Lock operations take effect in instruction order within
				// the block: an acquire at or before this access protects
				// it, a later release does not.
				for li < len(r.Locks) && r.Locks[li].Instr <= m.Instr {
					applyLockOp(held, &r.Locks[li])
					li++
				}
				if lockWords[m.Addr] || vm.SegmentOf(m.Addr) == vm.SegStack {
					continue
				}
				sh := shadows[m.Addr]
				if sh == nil {
					shadows[m.Addr] = &shadow{state: stExclusive, owner: th.TID, threads: []int{th.TID}}
					continue
				}
				if !sh.init && sh.owner == th.TID {
					continue // still exclusive to the first thread
				}
				sh.note(th.TID)
				if !sh.init {
					sh.lockset = sortedLocks(held)
					sh.init = true
					if m.Store {
						sh.state = stSharedMod
					} else {
						sh.state = stShared
					}
				} else {
					sh.lockset = intersectHeld(sh.lockset, held)
					if m.Store {
						sh.state = stSharedMod
					}
				}
				if sh.state == stSharedMod && len(sh.lockset) == 0 && !sh.report {
					sh.report = true
					report(r, m, sh)
				}
			}
			for ; li < len(r.Locks); li++ {
				applyLockOp(held, &r.Locks[li])
			}
		}
	}
	return lockWords
}

// raceSite aggregates race reports by static location, so one racy store in
// a loop over a thousand addresses yields one finding, not a thousand.
type raceSite struct {
	fn      uint32
	block   uint32
	instr   uint16
	store   bool
	count   int
	minAddr uint64
	threads map[int]bool
}

func (locksetPass) Run(ctx *Context) error {
	t := ctx.Trace
	sites := make(map[[3]uint64]*raceSite)
	eraserWalk(t, func(r *trace.Record, m *trace.MemAccess, sh *shadow) {
		key := [3]uint64{uint64(r.Func), uint64(r.Block), uint64(m.Instr)}
		site := sites[key]
		if site == nil {
			site = &raceSite{fn: r.Func, block: r.Block, instr: m.Instr,
				store: m.Store, minAddr: m.Addr, threads: make(map[int]bool)}
			sites[key] = site
		}
		site.count++
		if m.Addr < site.minAddr {
			site.minAddr = m.Addr
		}
		for _, tid := range sh.threads {
			site.threads[tid] = true
		}
	})

	keys := make([][3]uint64, 0, len(sites))
	for k := range sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for _, k := range keys {
		site := sites[k]
		f := finding("lockset", SevError)
		f.Function = t.FuncName(site.fn)
		f.Block = int32(site.block)
		f.Addr = site.minAddr
		f.Threads = sortedInts(site.threads)
		kind := "access"
		if site.store {
			kind = "write"
		}
		f.Message = fmt.Sprintf("unsynchronized shared %s at instruction %d: candidate lockset is empty for %d address(es) (first 0x%x), threads %s",
			kind, site.instr, site.count, site.minAddr, intsCSV(f.Threads))
		f.Details = map[string]string{
			"instr":     fmt.Sprintf("%d", site.instr),
			"addresses": fmt.Sprintf("%d", site.count),
		}
		ctx.add(f)
	}
	return nil
}

// RaceAccess is one static site observed touching a racy address.
type RaceAccess struct {
	Func  uint32
	Block uint32
	Instr uint16
	// Store reports that some dynamic access at this site stored.
	Store bool
	// Unlocked reports that some dynamic access at this site happened with
	// zero locks held — the strongest form of the race, which the static
	// oracle must flag as a candidate at this very site.
	Unlocked bool
}

// RacyAddr groups the accessing sites of one address the Eraser machine
// reported racy.
type RacyAddr struct {
	Addr     uint64
	Accesses []RaceAccess // deduped by site, deterministically sorted
}

// DynamicRaceAccesses runs the Eraser lockset machine and, for every racy
// address it reports, re-walks the trace collecting the static sites that
// touched that address (with per-site store/unlocked attribution). This is
// the dynamic ground truth the staticlock cross-check pass compares the
// static race candidates against.
func DynamicRaceAccesses(t *trace.Trace) []RacyAddr {
	racy := map[uint64]bool{}
	eraserWalk(t, func(_ *trace.Record, m *trace.MemAccess, _ *shadow) {
		racy[m.Addr] = true
	})
	if len(racy) == 0 {
		return nil
	}

	type key struct {
		addr uint64
		site LockSite
	}
	accs := map[key]*RaceAccess{}
	for _, th := range t.Threads {
		held := make(map[uint64]int)
		for ri := range th.Records {
			r := &th.Records[ri]
			if r.Kind != trace.KindBBL {
				continue
			}
			li := 0
			for mi := range r.Mem {
				m := &r.Mem[mi]
				for li < len(r.Locks) && r.Locks[li].Instr <= m.Instr {
					applyLockOp(held, &r.Locks[li])
					li++
				}
				if !racy[m.Addr] {
					continue
				}
				k := key{m.Addr, LockSite{Func: r.Func, Block: r.Block, Instr: m.Instr}}
				a := accs[k]
				if a == nil {
					a = &RaceAccess{Func: r.Func, Block: r.Block, Instr: m.Instr}
					accs[k] = a
				}
				if m.Store {
					a.Store = true
				}
				if len(held) == 0 {
					a.Unlocked = true
				}
			}
			for ; li < len(r.Locks); li++ {
				applyLockOp(held, &r.Locks[li])
			}
		}
	}

	byAddr := map[uint64][]RaceAccess{}
	for k, a := range accs {
		byAddr[k.addr] = append(byAddr[k.addr], *a)
	}
	out := make([]RacyAddr, 0, len(byAddr))
	for addr, as := range byAddr {
		sort.Slice(as, func(i, j int) bool {
			si := LockSite{as[i].Func, as[i].Block, as[i].Instr}
			sj := LockSite{as[j].Func, as[j].Block, as[j].Instr}
			return si.less(sj)
		})
		out = append(out, RacyAddr{Addr: addr, Accesses: as})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func applyLockOp(held map[uint64]int, l *trace.LockOp) {
	if l.Release {
		if held[l.Addr] > 1 {
			held[l.Addr]--
		} else {
			delete(held, l.Addr)
		}
	} else {
		held[l.Addr]++
	}
}

func sortedLocks(held map[uint64]int) []uint64 {
	out := make([]uint64, 0, len(held))
	for a := range held {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// intersectHeld keeps the candidate locks still held, preserving order.
func intersectHeld(candidates []uint64, held map[uint64]int) []uint64 {
	kept := candidates[:0]
	for _, a := range candidates {
		if held[a] > 0 {
			kept = append(kept, a)
		}
	}
	return kept
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func intsCSV(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	s := strings.Join(parts, ",")
	if len(vs) == maxRaceThreads {
		s += ",..."
	}
	return s
}
