package simt

import (
	"threadfuser/internal/coalesce"
	"threadfuser/internal/trace"
)

// ChargeInstrs adds one lockstep execution of an n-instruction block with
// the given number of active lanes to the warp and function metrics
// (equation 1 numerator and denominator).
func ChargeInstrs(wm *WarpMetrics, fm *FuncMetrics, n uint64, active int) {
	wm.Lockstep += n
	wm.ThreadInstrs += n * uint64(active)
	if active >= 0 && active <= MaxWarpSize {
		wm.LaneHistogram[active] += n
	}
	if fm != nil {
		fm.Lockstep += n
		fm.ThreadInstrs += n * uint64(active)
	}
}

// MemCharger coalesces lockstep block executions' memory accesses while
// reusing its instruction-index and per-segment access buffers across
// blocks, keeping the replay inner loop allocation-free. The zero value is
// ready to use; a MemCharger must not be shared between goroutines — each
// replay worker owns one.
type MemCharger struct {
	idx           []uint16
	loads, stores []coalesce.Access
	scratch       coalesce.Scratch

	// Site, when non-nil, observes each per-instruction coalescing outcome:
	// the instruction index within the block just charged and its combined
	// load+store transaction counts per segment. The replay engine hooks the
	// per-site histograms through it; when nil (the lockstep hardware oracle,
	// throwaway chargers) the accounting path is unchanged.
	Site func(instr uint16, stackTx, heapTx int)
}

// Charge coalesces one lockstep block execution's memory accesses. recs
// holds the active lanes' records for the same static block; accesses are
// merged per instruction index, loads and stores coalesce separately into
// 32-byte transactions, and counts are split by stack/heap segment. Both the
// trace-replay engine and the lockstep hardware oracle charge memory through
// this path, so their transaction metrics are directly comparable. fm, when
// non-nil, receives the per-function attribution.
func (mc *MemCharger) Charge(wm *WarpMetrics, fm *FuncMetrics, recs []*trace.Record) {
	idxList := mc.idx[:0]
	for _, r := range recs {
		for _, m := range r.Mem {
			found := false
			for _, x := range idxList {
				if x == m.Instr {
					found = true
					break
				}
			}
			if !found {
				idxList = append(idxList, m.Instr)
			}
		}
	}
	mc.idx = idxList
	if len(idxList) == 0 {
		return
	}
	// Insertion sort: index lists are tiny (a handful of memory instructions
	// per block) and this avoids sort.Slice's closure allocation on the
	// hottest accounting path.
	for i := 1; i < len(idxList); i++ {
		for j := i; j > 0 && idxList[j] < idxList[j-1]; j-- {
			idxList[j], idxList[j-1] = idxList[j-1], idxList[j]
		}
	}

	for _, idx := range idxList {
		loads, stores := mc.loads[:0], mc.stores[:0]
		for _, r := range recs {
			for _, m := range r.Mem {
				if m.Instr != idx {
					continue
				}
				a := coalesce.Access{Addr: m.Addr, Size: m.Size}
				if m.Store {
					stores = append(stores, a)
				} else {
					loads = append(loads, a)
				}
			}
		}
		mc.loads, mc.stores = loads, stores
		ls, lh := mc.scratch.Split(loads)
		ss, sh := mc.scratch.Split(stores)
		wm.MemInstrs++
		if ls+ss > 0 {
			wm.StackMemInstrs++
			wm.StackTx += uint64(ls + ss)
		}
		if lh+sh > 0 {
			wm.HeapMemInstrs++
			wm.HeapTx += uint64(lh + sh)
		}
		if fm != nil {
			fm.MemInstrs++
			fm.HeapTx += uint64(lh + sh)
			fm.StackTx += uint64(ls + ss)
		}
		if mc.Site != nil {
			mc.Site(idx, ls+ss, lh+sh)
		}
	}
}

// ChargeMemory coalesces one lockstep block execution's memory accesses with
// a throwaway MemCharger. Hot paths should hold a MemCharger and call Charge
// instead.
func ChargeMemory(wm *WarpMetrics, fm *FuncMetrics, recs []*trace.Record) {
	var mc MemCharger
	mc.Charge(wm, fm, recs)
}
