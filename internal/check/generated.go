package check

import (
	"fmt"
	"strings"

	"threadfuser/internal/trace"
)

// GenFailure is one generated trace that violated a property, reduced to a
// minimal reproducer.
type GenFailure struct {
	// Seed regenerates the original failing trace via Generate(Seed).
	Seed int64 `json:"seed"`
	// Report is the verification report for the original generated trace.
	Report *Report `json:"report"`
	// ReproThreads / ReproRecords describe the shrunken reproducer.
	ReproThreads int `json:"repro_threads"`
	ReproRecords int `json:"repro_records"`
	// Repro is the shrunken trace itself (not serialized to JSON; tfcheck
	// writes it to a .tft file instead).
	Repro *trace.Trace `json:"-"`
}

// RunGenerated verifies runs generated traces, seeds seed..seed+runs-1, and
// shrinks every failure to a minimal reproducer. The returned error covers
// only invalid options.
func RunGenerated(opts Options, seed int64, runs int) ([]*Report, []*GenFailure, error) {
	var reports []*Report
	var failures []*GenFailure
	for i := 0; i < runs; i++ {
		s := seed + int64(i)
		tr := Generate(s)
		name := fmt.Sprintf("gen(seed=%d)", s)
		rep, err := Run(name, tr, opts)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, rep)
		if rep.OK() {
			continue
		}
		// A candidate reproduces the failure if it violates one of the
		// originally-violated properties in the same way: an "analyze
		// failed" violation (a trace the replay rejects) never stands in
		// for a genuine invariant violation, or shrinking would wander off
		// to any trace the mutilation happened to corrupt.
		violated := make(map[[2]interface{}]bool, len(rep.Violations))
		key := func(v Violation) [2]interface{} {
			return [2]interface{}{v.Prop, strings.HasPrefix(v.Msg, "analyze failed")}
		}
		for _, v := range rep.Violations {
			violated[key(v)] = true
		}
		repro := Shrink(tr, func(cand *trace.Trace) bool {
			r, err := Run(name, cand, opts)
			if err != nil {
				return false
			}
			for _, v := range r.Violations {
				if violated[key(v)] {
					return true
				}
			}
			return false
		}, 0)
		nrec := 0
		for _, th := range repro.Threads {
			nrec += len(th.Records)
		}
		failures = append(failures, &GenFailure{
			Seed:         s,
			Report:       rep,
			ReproThreads: len(repro.Threads),
			ReproRecords: nrec,
			Repro:        repro,
		})
	}
	return reports, failures, nil
}
