package staticlock

import (
	"bytes"
	"encoding/json"
	"testing"

	"threadfuser/internal/ir"
	"threadfuser/internal/workloads"
)

// TestSymbolicShapes checks the phase-1 address algebra end to end: linear
// register arithmetic over arg/tid roots must surface as canonical shape
// strings at lock sites and memory accesses.
func TestSymbolicShapes(t *testing.T) {
	pb := ir.NewBuilder("shapes")
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	b0 := f.NewBlock("entry")
	b0.Mov(ir.Rg(ir.R(1)), ir.Rg(ir.R(0)))                       // r1 = arg0
	b0.Add(ir.Rg(ir.R(1)), ir.Imm(8))                            // r1 = arg0+8
	b0.Lea(ir.R(3), ir.MemIdx(ir.R(1), ir.TID, 8, 16, 8))        // r3 = arg0+8*tid+24
	b0.Lock(ir.Rg(ir.R(3)))                                      // lock arg0+8*tid+0x18
	b0.Mov(ir.Mem(ir.R(3), 0, 8), ir.Imm(1))                     // store through it
	b0.Mov(ir.MemIdx(ir.R(0), ir.R(9), 1, 0, 8), ir.Rg(ir.R(1))) // r9 is a raw arg root
	b0.Unlock(ir.Rg(ir.R(3)))
	b0.Ret()
	p := pb.MustBuild()

	r := Analyze(p)
	if len(r.Sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(r.Sites))
	}
	const want = "arg0+8*tid+0x18"
	if r.Sites[0].Shape != want || r.Sites[1].Shape != want {
		t.Fatalf("lock shapes = %q/%q, want %q", r.Sites[0].Shape, r.Sites[1].Shape, want)
	}
	if r.Sites[0].Release || !r.Sites[1].Release {
		t.Fatalf("release flags = %v/%v, want false/true", r.Sites[0].Release, r.Sites[1].Release)
	}
	if len(r.Accesses) != 2 {
		t.Fatalf("accesses = %d, want 2", len(r.Accesses))
	}
	if got := r.Accesses[0].Shape; got != want {
		t.Errorf("store shape = %q, want %q", got, want)
	}
	// The store under the lock must carry the lock in its must-lockset.
	if len(r.Accesses[0].MustLocks) != 1 || r.Accesses[0].MustLocks[0] != want {
		t.Errorf("must locks = %v, want [%s]", r.Accesses[0].MustLocks, want)
	}
	if got := r.Accesses[1].Shape; got != "arg0+arg9" {
		t.Errorf("indexed shape = %q, want arg0+arg9", got)
	}
}

func lin(c int64, ts ...term) symval {
	sortTerms(ts)
	return symval{kind: symLin, c: c, terms: ts}
}

func TestAliasable(t *testing.T) {
	arg0 := root{kind: rootArg, reg: 0}
	arg1 := root{kind: rootArg, reg: 1}
	tid := root{kind: rootTID}
	cases := []struct {
		name string
		a, b symval
		want bool
	}{
		{"top merges all", top, lin(0, term{arg0, 1}), true},
		{"named distinct consts", symConst(0x100), symConst(0x108), false},
		{"distinct arg roots", lin(0, term{arg0, 1}), lin(0, term{arg1, 1}), false},
		{"tid diff", lin(0, term{arg0, 1}, term{tid, 8}), lin(0, term{arg0, 1}), true},
		{"const over tid stride", lin(0, term{arg0, 1}, term{tid, 8}), lin(8, term{arg0, 1}, term{tid, 8}), true},
		{"const no stride", lin(0, term{arg0, 1}), lin(8, term{arg0, 1}), false},
		{"stride mismatch", lin(0, term{arg0, 1}, term{tid, 8}), lin(0, term{arg0, 1}, term{tid, 16}), true},
	}
	for _, c := range cases {
		if got := aliasable(c.a, c.b); got != c.want {
			t.Errorf("%s: aliasable(%s, %s) = %v, want %v", c.name, c.a.shape(), c.b.shape(), got, c.want)
		}
		if got := aliasable(c.b, c.a); got != c.want {
			t.Errorf("%s (sym): aliasable(%s, %s) = %v, want %v", c.name, c.b.shape(), c.a.shape(), got, c.want)
		}
	}
}

// abba builds the classic two-lock inversion: one arm takes A then B, the
// other B then A, selected by a tid-dependent branch.
func abba(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewBuilder("abba")
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	entry := f.NewBlock("entry")
	ab := f.NewBlock("ab")
	ba := f.NewBlock("ba")
	tail := f.NewBlock("tail")

	entry.Mov(ir.Rg(ir.R(2)), ir.Rg(ir.TID))
	entry.And(ir.Rg(ir.R(2)), ir.Imm(1))
	entry.Cmp(ir.Rg(ir.R(2)), ir.Imm(0))
	entry.Jcc(ir.CondEQ, ab, ba)

	ab.Lock(ir.Imm(0x100)).Lock(ir.Imm(0x108))
	ab.Unlock(ir.Imm(0x108)).Unlock(ir.Imm(0x100))
	ab.Jmp(tail)

	ba.Lock(ir.Imm(0x108)).Lock(ir.Imm(0x100))
	ba.Unlock(ir.Imm(0x100)).Unlock(ir.Imm(0x108))
	ba.Jmp(tail)

	tail.Ret()
	return pb.MustBuild()
}

func TestCycleCandidate(t *testing.T) {
	r := Analyze(abba(t))
	if !r.HasEdge("0x100", "0x108") || !r.HasEdge("0x108", "0x100") {
		t.Fatalf("missing order edges; edges = %+v", r.Edges)
	}
	if len(r.Cycles) != 1 {
		t.Fatalf("cycles = %d, want 1 (%+v)", len(r.Cycles), r.Cycles)
	}
	if len(r.Cycles[0].Classes) != 2 {
		t.Fatalf("cycle classes = %v, want 2 distinct named classes", r.Cycles[0].Classes)
	}
	// Both lock words are named singleton classes.
	for _, c := range r.LockClasses {
		if c.Kind != "named" || len(c.Shapes) != 1 {
			t.Errorf("lock class %+v, want singleton named", c)
		}
	}
	// The acquires sit under a divergent branch's influence region.
	if r.DivergentAcquires == 0 {
		t.Errorf("divergent acquires = 0, want > 0 (tid-parity branch)")
	}
}

// TestDivergentSelfLoop is the PR 2 livelock shape: a single-block critical
// section whose loop trip count is tid-derived. The acquire must be flagged
// divergent (the block is inside its own branch's influence region).
func TestDivergentSelfLoop(t *testing.T) {
	pb := ir.NewBuilder("selfloop")
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	entry := f.NewBlock("entry")
	cs := f.NewBlock("cs")
	tail := f.NewBlock("tail")

	entry.Mov(ir.Rg(ir.R(2)), ir.Rg(ir.TID))
	entry.And(ir.Rg(ir.R(2)), ir.Imm(3))
	entry.Add(ir.Rg(ir.R(2)), ir.Imm(1))
	entry.Jmp(cs)

	cs.Lock(ir.Imm(0x200))
	cs.Nop(2)
	cs.Unlock(ir.Imm(0x200))
	cs.Sub(ir.Rg(ir.R(2)), ir.Imm(1))
	cs.Cmp(ir.Rg(ir.R(2)), ir.Imm(0))
	cs.Jcc(ir.CondNE, cs, tail)

	tail.Ret()
	p := pb.MustBuild()

	r := Analyze(p)
	var acq *Site
	for i := range r.Sites {
		if !r.Sites[i].Release {
			acq = &r.Sites[i]
		}
	}
	if acq == nil {
		t.Fatal("no acquire site found")
	}
	if !acq.Divergent {
		t.Fatalf("self-looping critical-section acquire not flagged divergent: %+v", *acq)
	}
	if r.DivergentAcquires != 1 {
		t.Errorf("DivergentAcquires = %d, want 1", r.DivergentAcquires)
	}
	// A balanced single-lock loop must not produce cycle or race noise.
	if len(r.Cycles) != 0 {
		t.Errorf("cycles = %+v, want none", r.Cycles)
	}
}

// TestRecursionAndBareRelease covers the acquire-while-held and
// release-without-acquire detectors.
func TestRecursionAndBareRelease(t *testing.T) {
	pb := ir.NewBuilder("recbare")
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	b := f.NewBlock("entry")
	b.Lock(ir.Imm(0x300))
	b.Lock(ir.Imm(0x300)) // recursive
	b.Unlock(ir.Imm(0x300))
	b.Unlock(ir.Imm(0x300))
	b.Unlock(ir.Imm(0x308)) // never acquired
	b.Ret()
	p := pb.MustBuild()

	r := Analyze(p)
	if len(r.Recursions) != 1 {
		t.Fatalf("recursions = %v, want exactly the second acquire", r.Recursions)
	}
	if got := r.Sites[r.Recursions[0]]; got.Instr != 1 {
		t.Errorf("recursion at instr %d, want 1", got.Instr)
	}
	if len(r.BareReleases) != 1 {
		t.Fatalf("bare releases = %v, want exactly the 0x308 release", r.BareReleases)
	}
	if got := r.Sites[r.BareReleases[0]]; got.Shape != "0x308" {
		t.Errorf("bare release shape = %q, want 0x308", got.Shape)
	}
	// Recursion on one named lock is not an order cycle.
	if len(r.Cycles) != 0 {
		t.Errorf("cycles = %+v, want none", r.Cycles)
	}
}

// TestMustLocksetProtection: a store consistently under a named lock is not
// a race candidate; the same store pattern without the lock is.
func TestMustLocksetProtection(t *testing.T) {
	build := func(locked bool) *ir.Program {
		pb := ir.NewBuilder("prot")
		f := pb.NewFunc("main")
		pb.SetEntry(f)
		b := f.NewBlock("entry")
		if locked {
			b.Lock(ir.Imm(0x400))
		}
		b.Mov(ir.Mem(ir.R(0), 0, 8), ir.Imm(1)) // store to arg0: shared
		if locked {
			b.Unlock(ir.Imm(0x400))
		}
		b.Ret()
		return pb.MustBuild()
	}
	if r := Analyze(build(true)); r.RaceCandidates != 0 {
		t.Errorf("locked store: race candidates = %d, want 0 (%+v)", r.RaceCandidates, r.AccessClasses)
	}
	if r := Analyze(build(false)); r.RaceCandidates != 1 {
		t.Errorf("unlocked store: race candidates = %d, want 1 (%+v)", r.RaceCandidates, r.AccessClasses)
	}
}

// TestThreadPrivateNotCandidate: tid-strided stores with stride >= size are
// thread-private, but mixing in a named-address access to the same family
// makes the class shareable again.
func TestThreadPrivateNotCandidate(t *testing.T) {
	pb := ir.NewBuilder("priv")
	f := pb.NewFunc("main")
	pb.SetEntry(f)
	b := f.NewBlock("entry")
	b.Lea(ir.R(1), ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8))
	b.Mov(ir.Mem(ir.R(1), 0, 8), ir.Imm(1)) // arg0+8*tid, private
	b.Ret()
	r := Analyze(pb.MustBuild())
	if r.RaceCandidates != 0 {
		t.Fatalf("tid-strided store: candidates = %d, want 0 (%+v)", r.RaceCandidates, r.AccessClasses)
	}

	pb2 := ir.NewBuilder("priv2")
	f2 := pb2.NewFunc("main")
	pb2.SetEntry(f2)
	b2 := f2.NewBlock("entry")
	b2.Lea(ir.R(1), ir.MemIdx(ir.R(0), ir.TID, 8, 0, 8))
	b2.Mov(ir.Mem(ir.R(1), 0, 8), ir.Imm(1))      // arg0+8*tid
	b2.Mov(ir.Rg(ir.R(3)), ir.Mem(ir.R(0), 0, 8)) // load arg0: same class via tid diff
	b2.Ret()
	r2 := Analyze(pb2.MustBuild())
	if r2.RaceCandidates != 1 {
		t.Fatalf("mixed tid/named class: candidates = %d, want 1 (%+v)", r2.RaceCandidates, r2.AccessClasses)
	}
}

// TestInterproceduralMustLockset: a lock held across a call protects the
// callee's stores (the must set survives contributeEntry / the callee walk).
func TestInterproceduralMustLockset(t *testing.T) {
	pb := ir.NewBuilder("interproc")
	mainF := pb.NewFunc("main")
	leaf := pb.NewFunc("leaf")
	pb.SetEntry(mainF)

	m0 := mainF.NewBlock("entry")
	m1 := mainF.NewBlock("cont")
	m0.Lock(ir.Imm(0x500))
	m0.Call(leaf, m1)
	m1.Unlock(ir.Imm(0x500))
	m1.Ret()

	l0 := leaf.NewBlock("entry")
	l0.Mov(ir.Mem(ir.R(0), 0, 8), ir.Imm(7)) // store in callee, lock held by caller
	l0.Ret()

	r := Analyze(pb.MustBuild())
	ai, ok := r.AccessAt(uint32(leaf.ID()), 0, 0)
	if !ok {
		t.Fatal("callee store not profiled")
	}
	if got := r.Accesses[ai].MustLocks; len(got) != 1 || got[0] != "0x500" {
		t.Fatalf("callee must-lockset = %v, want [0x500]", got)
	}
	if r.RaceCandidates != 0 {
		t.Errorf("race candidates = %d, want 0", r.RaceCandidates)
	}
}

// TestDeterminism: rendered and JSON output must be byte-identical across
// repeated analyses of every built-in workload (satellite: byte-deterministic
// finding order).
func TestDeterminism(t *testing.T) {
	for _, w := range workloads.All() {
		inst, err := w.Instantiate(workloads.Config{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		var prev []byte
		for round := 0; round < 2; round++ {
			r := Analyze(inst.Prog)
			var buf bytes.Buffer
			r.Render(&buf, true)
			js, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("%s: marshal: %v", w.Name, err)
			}
			cur := append(buf.Bytes(), js...)
			if round > 0 && !bytes.Equal(prev, cur) {
				t.Fatalf("%s: non-deterministic output across runs", w.Name)
			}
			prev = cur
		}
	}
}
