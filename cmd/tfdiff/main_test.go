package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"threadfuser/internal/core"
	"threadfuser/internal/serve"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

// writeWorkloadTrace traces a bundled workload to a .tft file and returns
// its path.
func writeWorkloadTrace(t *testing.T, dir, name string) string {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Instantiate(workloads.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".tft")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

// diffVia renders the full tfdiff output for two trace files through one
// analysis route (local, cached, or server).
func diffVia(t *testing.T, aPath, bPath string, opts core.Options, cache *core.Cache, server string) []byte {
	t.Helper()
	a, err := analyzeFile(aPath, opts, cache, server, "difftest")
	if err != nil {
		t.Fatal(err)
	}
	b, err := analyzeFile(bPath, opts, cache, server, "difftest")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	writeDiff(&buf, a, b)
	return buf.Bytes()
}

// TestCacheAndServerMatchLocal is the wiring contract for the -cache and
// -server flags: a cold cache run, a warm cache run, and a tfserve-backed run
// must all render byte-identical output to a plain local analysis.
func TestCacheAndServerMatchLocal(t *testing.T) {
	dir := t.TempDir()
	aPath := writeWorkloadTrace(t, dir, "usuite.hdsearch.mid")
	bPath := writeWorkloadTrace(t, dir, "usuite.hdsearch.mid.fixed")
	opts := core.Defaults()
	opts.WarpSize = 32

	local := diffVia(t, aPath, bPath, opts, nil, "")

	cache := core.NewCache(filepath.Join(dir, "cache"))
	cold := diffVia(t, aPath, bPath, opts, cache, "")
	warm := diffVia(t, aPath, bPath, opts, cache, "")
	if !bytes.Equal(local, cold) {
		t.Errorf("cold-cache output differs from local:\n%s\nvs\n%s", cold, local)
	}
	if !bytes.Equal(local, warm) {
		t.Errorf("warm-cache output differs from local:\n%s\nvs\n%s", warm, local)
	}

	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("draining test server: %v", err)
		}
		ts.Close()
	}()
	remote := diffVia(t, aPath, bPath, opts, nil, ts.URL)
	if !bytes.Equal(local, remote) {
		t.Errorf("server output differs from local:\n%s\nvs\n%s", remote, local)
	}

	// Lock emulation must travel to the server too.
	lopts := opts
	lopts.EmulateLocks = true
	localLocks := diffVia(t, aPath, bPath, lopts, nil, "")
	remoteLocks := diffVia(t, aPath, bPath, lopts, nil, ts.URL)
	if !bytes.Equal(localLocks, remoteLocks) {
		t.Errorf("server -locks output differs from local:\n%s\nvs\n%s", remoteLocks, localLocks)
	}
}
