package check

import (
	"bytes"
	"reflect"
	"sort"

	"threadfuser/internal/analysis"
	"threadfuser/internal/coalesce"
	"threadfuser/internal/staticlock"
	"threadfuser/internal/staticmem"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
)

// properties is the invariant catalog, in execution order. Each entry is an
// algebraic statement about the analyzer that must hold for every valid
// trace; DESIGN.md §9 documents the catalog.
var properties = []Property{
	{
		id:   "determinism",
		desc: "parallel replay is bit-identical to serial at every worker count",
		check: func(c *ctx) {
			for _, base := range c.baseCells() {
				want, ok := c.mustReport(base)
				if !ok {
					continue
				}
				for _, par := range c.opts.Parallelism {
					if par == 1 {
						continue
					}
					cell := base
					cell.Parallelism = par
					got, ok := c.mustReport(cell)
					if !ok {
						continue
					}
					c.assert(cell, reflect.DeepEqual(want, got),
						"report differs from serial replay")
				}
			}
		},
	},
	{
		id:   "width1",
		desc: "warp width 1 gives efficiency exactly 1.0, no divergence, no serialization",
		check: func(c *ctx) {
			for _, f := range c.opts.Formations {
				cell := Cell{WarpSize: 1, Parallelism: 1, Formation: f}
				r, ok := c.mustReport(cell)
				if !ok {
					continue
				}
				c.assert(cell, r.TotalInstrs == r.LockstepInstrs,
					"width-1 lockstep issues (%d) != thread instructions (%d)", r.LockstepInstrs, r.TotalInstrs)
				if r.TotalInstrs > 0 {
					c.assert(cell, r.WeightedEfficiency == 1.0,
						"width-1 weighted efficiency %v != 1.0", r.WeightedEfficiency)
				}
				for i, e := range r.PerWarpEfficiency {
					// A warp whose thread traced nothing reports 0; every
					// other single-lane warp must be exactly 1.0.
					c.assert(cell, e == 1.0 || e == 0,
						"width-1 warp %d efficiency %v (want exactly 1.0)", i, e)
				}
				c.assert(cell, len(r.Branches) == 0,
					"width-1 replay reported %d divergent branches", len(r.Branches))
				for k, n := range r.LaneHistogram {
					c.assert(cell, k == 1 || n == 0,
						"width-1 lane histogram has %d issues at %d lanes", n, k)
				}
				c.assert(cell, r.LockSerializations == 0 && r.SerializedLanes == 0,
					"width-1 replay serialized (%d events, %d lanes)", r.LockSerializations, r.SerializedLanes)

				// A single lane can never contend with itself: lock emulation
				// at width 1 must be a no-op.
				lockCell := cell
				lockCell.Locks = true
				lr, ok := c.mustReport(lockCell)
				if !ok {
					continue
				}
				c.assert(lockCell, reflect.DeepEqual(r, lr),
					"width-1 lock emulation changed the report")
			}
		},
	},
	{
		id:   "conservation",
		desc: "thread instructions and skip counts are invariant across every configuration",
		check: func(c *ctx) {
			wantInstrs := c.tr.TotalInstructions()
			wantIO, wantSpin := c.tr.TotalSkipped()
			for _, cell := range c.baseCells() {
				r, ok := c.mustReport(cell)
				if !ok {
					continue
				}
				c.assert(cell, r.TotalInstrs == wantInstrs,
					"replayed %d thread instructions, trace has %d", r.TotalInstrs, wantInstrs)
				c.assert(cell, r.SkippedIO == wantIO && r.SkippedSpin == wantSpin,
					"skips (%d io, %d spin) differ from trace (%d io, %d spin)",
					r.SkippedIO, r.SkippedSpin, wantIO, wantSpin)
				c.assert(cell, r.Threads == len(c.tr.Threads),
					"report covers %d threads, trace has %d", r.Threads, len(c.tr.Threads))
				wantWarps := (len(c.tr.Threads) + cell.WarpSize - 1) / cell.WarpSize
				c.assert(cell, r.Warps == wantWarps,
					"%d warps formed, want %d", r.Warps, wantWarps)
			}
		},
	},
	{
		id:   "locks",
		desc: "lock emulation only adds serialization: never removes instructions, no-op without contention",
		check: func(c *ctx) {
			for _, w := range c.opts.WarpSizes {
				for _, f := range c.opts.Formations {
					base := Cell{WarpSize: w, Parallelism: 1, Formation: f}
					lock := base
					lock.Locks = true
					br, ok := c.mustReport(base)
					if !ok {
						continue
					}
					lr, ok := c.mustReport(lock)
					if !ok {
						continue
					}
					c.assert(base, br.LockSerializations == 0 && br.SerializedLanes == 0,
						"fine-grain-locking replay reported serialization (%d events)", br.LockSerializations)
					c.assert(lock, lr.TotalInstrs == br.TotalInstrs,
						"lock emulation changed thread instructions: %d -> %d", br.TotalInstrs, lr.TotalInstrs)
					c.assert(lock, lr.LockstepInstrs >= br.LockstepInstrs,
						"lock emulation removed lockstep issues: %d -> %d", br.LockstepInstrs, lr.LockstepInstrs)
					if lr.LockSerializations == 0 {
						c.assert(lock, reflect.DeepEqual(br, lr),
							"no serialization events, yet the report changed")
					}
				}
			}
		},
	},
	{
		id:   "coalesce",
		desc: "transaction counts obey per-access bounds; width-1 counts match direct coalescing",
		check: func(c *ctx) {
			memUpper, txUpper := traceMemBounds(c.tr)
			for _, w := range c.opts.WarpSizes {
				cell := Cell{WarpSize: w, Parallelism: 1, Formation: c.opts.Formations[0]}
				r, ok := c.mustReport(cell)
				if !ok {
					continue
				}
				tx := r.StackTx + r.HeapTx
				c.assert(cell, r.MemInstrs <= memUpper,
					"%d warp memory instructions exceed the trace's %d", r.MemInstrs, memUpper)
				c.assert(cell, tx >= r.MemInstrs,
					"%d transactions for %d memory instructions (each needs >=1)", tx, r.MemInstrs)
				c.assert(cell, tx <= txUpper,
					"%d transactions exceed the uncoalesced per-access total %d", tx, txUpper)
			}
			// Width 1 is exactly computable without the replay engine: each
			// record's accesses coalesce alone, loads and stores separately.
			cell := Cell{WarpSize: 1, Parallelism: 1, Formation: c.opts.Formations[0]}
			if r, ok := c.mustReport(cell); ok {
				mem, stackTx, heapTx := width1MemOracle(c.tr)
				c.assert(cell, r.MemInstrs == mem,
					"width-1 replay counted %d memory instructions, direct count is %d", r.MemInstrs, mem)
				c.assert(cell, r.StackTx == stackTx && r.HeapTx == heapTx,
					"width-1 transactions (%d stack, %d heap) differ from direct coalescing (%d, %d)",
					r.StackTx, r.HeapTx, stackTx, heapTx)
			}
			// Algebra of the coalescer itself on the trace's access sets:
			// counts sit inside coalesce.Bounds, are order-independent, and
			// never decrease when an access is added.
			checkCoalesceAlgebra(c)
		},
	},
	{
		id:   "codec",
		desc: "encode-decode-encode is a fixed point for every codec version",
		check: func(c *ctx) {
			cell := Cell{WarpSize: c.opts.WarpSizes[0], Parallelism: 1, Formation: c.opts.Formations[0]}
			encoders := []struct {
				name string
				enc  func(*bytes.Buffer, *trace.Trace) error
			}{
				{"v1", func(b *bytes.Buffer, t *trace.Trace) error { return trace.Encode(b, t) }},
				{"v2", func(b *bytes.Buffer, t *trace.Trace) error { return trace.EncodeCompact(b, t) }},
				{"v3", func(b *bytes.Buffer, t *trace.Trace) error { return trace.EncodeIndexed(b, t) }},
			}
			var decoded []*trace.Trace
			for _, e := range encoders {
				var first bytes.Buffer
				if err := e.enc(&first, c.tr); err != nil {
					c.check()
					c.violatef(cell, "%s encode: %v", e.name, err)
					continue
				}
				t2, err := trace.Decode(bytes.NewReader(first.Bytes()))
				if err != nil {
					c.check()
					c.violatef(cell, "%s decode of own encoding: %v", e.name, err)
					continue
				}
				var second bytes.Buffer
				if err := e.enc(&second, t2); err != nil {
					c.check()
					c.violatef(cell, "%s re-encode: %v", e.name, err)
					continue
				}
				c.assert(cell, bytes.Equal(first.Bytes(), second.Bytes()),
					"%s encode(decode(encode(t))) differs from encode(t): %d vs %d bytes",
					e.name, second.Len(), first.Len())
				c.assert(cell, (c.tr.Validate() == nil) == (t2.Validate() == nil),
					"%s round trip changed validity", e.name)
				decoded = append(decoded, t2)
			}
			for i := 1; i < len(decoded); i++ {
				c.assert(cell, reflect.DeepEqual(decoded[0], decoded[i]),
					"v1 and %s round trips decode to different traces", encoders[i].name)
			}
		},
	},
	{
		id:   "recombine",
		desc: "per-function and per-warp numbers recombine into the whole-program equation-1 value",
		check: func(c *ctx) {
			for _, w := range c.opts.WarpSizes {
				cell := Cell{WarpSize: w, Parallelism: 1, Formation: c.opts.Formations[0]}
				r, ok := c.mustReport(cell)
				if !ok {
					continue
				}
				var fInstrs, fLockstep uint64
				for _, f := range r.PerFunction {
					fInstrs += f.ThreadInstrs
					fLockstep += f.Lockstep
					want := 0.0
					if f.Lockstep > 0 {
						want = float64(f.ThreadInstrs) / (float64(f.Lockstep) * float64(w))
					}
					c.assert(cell, f.Efficiency == want,
						"function %s efficiency %v, recomputed %v", f.Name, f.Efficiency, want)
					wantShare := 0.0
					if r.TotalInstrs > 0 {
						wantShare = float64(f.ThreadInstrs) / float64(r.TotalInstrs)
					}
					c.assert(cell, f.InstrShare == wantShare,
						"function %s instruction share %v, recomputed %v", f.Name, f.InstrShare, wantShare)
				}
				c.assert(cell, fInstrs == r.TotalInstrs,
					"per-function thread instructions sum to %d, program total is %d", fInstrs, r.TotalInstrs)
				c.assert(cell, fLockstep == r.LockstepInstrs,
					"per-function lockstep issues sum to %d, program total is %d", fLockstep, r.LockstepInstrs)

				wantWeighted := 0.0
				if r.LockstepInstrs > 0 {
					wantWeighted = float64(r.TotalInstrs) / (float64(r.LockstepInstrs) * float64(w))
				}
				c.assert(cell, r.WeightedEfficiency == wantWeighted,
					"weighted efficiency %v, recomputed %v", r.WeightedEfficiency, wantWeighted)

				c.assert(cell, len(r.PerWarpEfficiency) == r.Warps,
					"%d per-warp rows for %d warps", len(r.PerWarpEfficiency), r.Warps)
				wantMean := 0.0
				if len(r.PerWarpEfficiency) > 0 {
					sum := 0.0
					for _, e := range r.PerWarpEfficiency {
						sum += e
					}
					wantMean = sum / float64(len(r.PerWarpEfficiency))
				}
				c.assert(cell, r.Efficiency == wantMean,
					"program efficiency %v is not the mean %v of the per-warp efficiencies", r.Efficiency, wantMean)

				var hist, weighted uint64
				for k, n := range r.LaneHistogram {
					hist += n
					weighted += uint64(k) * n
				}
				c.assert(cell, hist == r.LockstepInstrs,
					"lane histogram mass %d != lockstep issues %d", hist, r.LockstepInstrs)
				c.assert(cell, weighted == r.TotalInstrs,
					"lane-weighted histogram mass %d != thread instructions %d", weighted, r.TotalInstrs)
				if len(r.LaneHistogram) > 0 {
					c.assert(cell, r.LaneHistogram[0] == 0,
						"%d lockstep issues with zero active lanes", r.LaneHistogram[0])
				}
			}
		},
	},
	{
		id:   "staticuniform",
		desc: "no branch the static oracle classifies warp-uniform ever records a divergence",
		check: func(c *ctx) {
			prog := c.opts.Prog
			if prog == nil {
				return // trace-only input: no IR, vacuously true
			}
			cell := Cell{WarpSize: c.opts.WarpSizes[0], Parallelism: 1, Formation: c.opts.Formations[0]}
			if !progMatchesTrace(c, cell) {
				return
			}
			res := staticsimt.Analyze(prog, staticsimt.Options{})
			// Replay reports name branch sites by function name; AND-join the
			// classification over same-named functions so a duplicate name can
			// only make the check more conservative, never less.
			type key struct {
				name  string
				block uint32
			}
			uniform := map[key]bool{}
			for _, fr := range res.Funcs {
				for _, b := range fr.Branches {
					k := key{fr.Name, b.Block}
					u, seen := uniform[k]
					uniform[k] = (!seen || u) && b.Uniform
				}
			}
			for _, cl := range c.baseCells() {
				r, ok := c.mustReport(cl)
				if !ok {
					continue
				}
				for _, br := range r.Branches {
					if br.Divergences == 0 {
						continue
					}
					u, classified := uniform[key{br.Func, br.Block}]
					c.assert(cl, !(classified && u),
						"branch %s.b%d classified warp-uniform statically but diverged %d time(s) (%d lane(s) idled)",
						br.Func, br.Block, br.Divergences, br.LanesOff)
				}
			}
		},
	},
	{
		id:   "staticlockset",
		desc: "every dynamic lockset race and lock-order cycle has a covering static candidate",
		check: func(c *ctx) {
			prog := c.opts.Prog
			if prog == nil {
				return // trace-only input: no IR, vacuously true
			}
			cell := Cell{WarpSize: c.opts.WarpSizes[0], Parallelism: 1, Formation: c.opts.Formations[0]}
			if !progMatchesTrace(c, cell) {
				return
			}
			// The static oracle and the dynamic facts both depend only on the
			// program and the trace; the matrix sweep below re-asserts the
			// coverage contract in every serial cell so a violation names the
			// configuration it was observed under.
			sr := staticlock.Analyze(prog)
			races := analysis.DynamicRaceAccesses(c.tr)
			order := analysis.DynamicLockOrder(c.tr)
			for _, cl := range c.baseCells() {
				for _, ra := range races {
					any := false
					for _, acc := range ra.Accesses {
						ai, ok := sr.AccessAt(acc.Func, acc.Block, acc.Instr)
						if !ok {
							c.check()
							c.violatef(cl, "racy addr 0x%x accessed at f%d.b%d i%d with no static access entry",
								ra.Addr, acc.Func, acc.Block, acc.Instr)
							continue
						}
						sa := &sr.Accesses[ai]
						if sa.Candidate {
							any = true
						}
						c.assert(cl, !acc.Unlocked || sa.Candidate,
							"racy addr 0x%x accessed lock-free at f%d.b%d i%d (shape %s) but its class is not a static race candidate",
							ra.Addr, acc.Func, acc.Block, acc.Instr, sa.Shape)
					}
					c.assert(cl, any, "racy addr 0x%x has no static race-candidate access", ra.Addr)
				}
				for _, e := range order.Edges {
					fi, okF := sr.SiteAt(e.FromSite.Func, e.FromSite.Block, e.FromSite.Instr)
					ti, okT := sr.SiteAt(e.ToSite.Func, e.ToSite.Block, e.ToSite.Instr)
					if !okF || !okT {
						c.check()
						c.violatef(cl, "dynamic lock edge 0x%x->0x%x has sites missing from the static site table", e.From, e.To)
						continue
					}
					c.assert(cl, sr.HasEdge(sr.Sites[fi].Shape, sr.Sites[ti].Shape),
						"dynamic lock edge 0x%x->0x%x (shapes %s -> %s) missing from the static order graph",
						e.From, e.To, sr.Sites[fi].Shape, sr.Sites[ti].Shape)
				}
				for _, cy := range order.Cycles {
					classes, ok := cycleClasses(sr, order, cy)
					c.assert(cl, ok && sr.CycleCovering(classes),
						"dynamic lock-order cycle over %d lock(s) has no covering static cycle candidate (classes %v)",
						len(cy.Addrs), classes)
				}
			}
		},
	},
	{
		id:   "staticcoalesce",
		desc: "no replayed memory site exceeds its static transactions-per-warp bound or contradicts its segment claim",
		check: func(c *ctx) {
			prog := c.opts.Prog
			if prog == nil {
				return // trace-only input: no IR, vacuously true
			}
			cell := Cell{WarpSize: c.opts.WarpSizes[0], Parallelism: 1, Formation: c.opts.Formations[0]}
			if !progMatchesTrace(c, cell) {
				return
			}
			sm := staticmem.Analyze(prog)
			for _, cl := range c.baseCells() {
				r, ok := c.mustReport(cl)
				if !ok {
					continue
				}
				contiguous := cl.Formation == warp.RoundRobin
				for i := range r.MemSites {
					d := &r.MemSites[i]
					si, found := sm.SiteAt(d.FuncID, d.Block, d.Instr)
					if !found {
						c.check()
						c.violatef(cl, "replay touched memory at %s.b%d i%d but the static site table has no entry",
							d.Func, d.Block, d.Instr)
						continue
					}
					s := &sm.Sites[si]
					bound := uint64(s.TxBound(cl.WarpSize, contiguous))
					c.assert(cl, d.MaxTx <= bound,
						"site %s.b%d i%d classified %s (addr %s) is statically bounded at %d tx/warp but a replay execution needed %d",
						d.Func, d.Block, d.Instr, s.Class, s.Shape, bound, d.MaxTx)
					c.assert(cl, s.Segment != staticmem.SegmentStack || d.HeapTx == 0,
						"site %s.b%d i%d claimed stack-segment (addr %s) but replay observed %d heap transaction(s)",
						d.Func, d.Block, d.Instr, s.Shape, d.HeapTx)
					c.assert(cl, s.Segment != staticmem.SegmentOther || d.StackTx == 0,
						"site %s.b%d i%d claimed heap/global-segment (addr %s) but replay observed %d stack transaction(s)",
						d.Func, d.Block, d.Instr, s.Shape, d.StackTx)
				}
			}
		},
	},
	{
		id:   "fusion",
		desc: "lockstep-fusion replay is bit-identical to the per-block engine in every cell",
		check: func(c *ctx) {
			// Deep equality of the whole Report — per-function rows, branch
			// tables, lane histograms, per-site memory histograms — in every
			// base cell implies the strictly stronger statement the catalog
			// needs: no other invariant's verdict can depend on whether the
			// fused fast path or the per-block engine produced the report.
			for _, base := range c.baseCells() {
				want, ok := c.mustReport(base)
				if !ok {
					continue
				}
				cell := base
				cell.NoFusion = true
				got, ok := c.mustReport(cell)
				if !ok {
					continue
				}
				c.assert(cell, reflect.DeepEqual(want, got),
					"fused replay differs from the per-block engine")
			}
		},
	},
	{
		id:   "formation",
		desc: "every warp formation partitions the thread ids exactly once",
		check: func(c *ctx) {
			for _, f := range []warp.Formation{warp.RoundRobin, warp.Strided, warp.GreedyEntry} {
				for _, w := range c.opts.WarpSizes {
					cell := Cell{WarpSize: w, Parallelism: 1, Formation: f}
					warps, err := warp.Form(c.tr, w, f)
					if err != nil {
						c.check()
						c.violatef(cell, "forming warps: %v", err)
						continue
					}
					c.assert(cell, warp.CheckPartition(warps, len(c.tr.Threads), w) == nil,
						"formation does not partition the threads: %v", warp.CheckPartition(warps, len(c.tr.Threads), w))
				}
			}
		},
	},
}

// progMatchesTrace verifies the attached program describes the traced
// binary (same functions, blocks and instruction counts); on a mismatch it
// records a violation against cell and returns false. Shared by every
// property that correlates static IR positions with trace positions.
func progMatchesTrace(c *ctx, cell Cell) bool {
	prog := c.opts.Prog
	if len(prog.Funcs) != len(c.tr.Funcs) {
		c.check()
		c.violatef(cell, "attached program has %d function(s), trace has %d", len(prog.Funcs), len(c.tr.Funcs))
		return false
	}
	for id, f := range prog.Funcs {
		if f.Name != c.tr.Funcs[id].Name {
			c.check()
			c.violatef(cell, "attached program function %d is %q, trace says %q", id, f.Name, c.tr.Funcs[id].Name)
			return false
		}
		if len(f.Blocks) != len(c.tr.Funcs[id].Blocks) {
			c.check()
			c.violatef(cell, "attached program function %q has %d block(s), trace says %d", f.Name, len(f.Blocks), len(c.tr.Funcs[id].Blocks))
			return false
		}
		for bi, b := range f.Blocks {
			if len(b.Instrs) != int(c.tr.Funcs[id].Blocks[bi].NInstr) {
				c.check()
				c.violatef(cell, "attached program block %s.b%d has %d instruction(s), trace says %d", f.Name, bi, len(b.Instrs), c.tr.Funcs[id].Blocks[bi].NInstr)
				return false
			}
		}
	}
	return true
}

// cycleClasses maps one dynamic lock-order cycle to the static lock classes
// of the acquire sites along its in-cycle edges; ok is false when any site
// or shape is missing from the static tables.
func cycleClasses(sr *staticlock.Result, order *analysis.LockOrder, cy analysis.LockCycle) ([]int, bool) {
	in := make(map[uint64]bool, len(cy.Addrs))
	for _, a := range cy.Addrs {
		in[a] = true
	}
	set := map[int]bool{}
	ok := true
	for _, e := range order.Edges {
		if !in[e.From] || !in[e.To] {
			continue
		}
		for _, s := range []analysis.LockSite{e.FromSite, e.ToSite} {
			si, found := sr.SiteAt(s.Func, s.Block, s.Instr)
			if !found {
				ok = false
				continue
			}
			if ci, found := sr.LockClassOf(sr.Sites[si].Shape); found {
				set[ci] = true
			} else {
				ok = false
			}
		}
	}
	classes := make([]int, 0, len(set))
	for ci := range set {
		classes = append(classes, ci)
	}
	sort.Ints(classes)
	return classes, ok
}

// traceMemBounds computes, straight from the trace, the maximum possible
// warp-level memory-instruction count (one per record × distinct instruction
// index, i.e. nothing ever coalesces across lanes) and the uncoalesced
// transaction total (every access pays its full sector span).
func traceMemBounds(t *trace.Trace) (memInstrs, tx uint64) {
	var idx []uint16
	for _, th := range t.Threads {
		for i := range th.Records {
			r := &th.Records[i]
			if r.Kind != trace.KindBBL || len(r.Mem) == 0 {
				continue
			}
			idx = idx[:0]
			for _, m := range r.Mem {
				seen := false
				for _, x := range idx {
					if x == m.Instr {
						seen = true
						break
					}
				}
				if !seen {
					idx = append(idx, m.Instr)
				}
				size := uint64(m.Size)
				if size == 0 {
					size = 1
				}
				first := m.Addr / coalesce.TransactionSize
				last := (m.Addr + size - 1) / coalesce.TransactionSize
				tx += last - first + 1
			}
			memInstrs += uint64(len(idx))
		}
	}
	return memInstrs, tx
}

// width1MemOracle recomputes the width-1 replay's memory metrics without the
// replay engine: each record coalesces alone, loads and stores separately
// per instruction index, split by segment.
func width1MemOracle(t *trace.Trace) (memInstrs, stackTx, heapTx uint64) {
	var wm struct{ loads, stores []coalesce.Access }
	for _, th := range t.Threads {
		for i := range th.Records {
			r := &th.Records[i]
			if r.Kind != trace.KindBBL || len(r.Mem) == 0 {
				continue
			}
			var idx []uint16
			for _, m := range r.Mem {
				seen := false
				for _, x := range idx {
					if x == m.Instr {
						seen = true
						break
					}
				}
				if !seen {
					idx = append(idx, m.Instr)
				}
			}
			for _, id := range idx {
				wm.loads, wm.stores = wm.loads[:0], wm.stores[:0]
				for _, m := range r.Mem {
					if m.Instr != id {
						continue
					}
					a := coalesce.Access{Addr: m.Addr, Size: m.Size}
					if m.Store {
						wm.stores = append(wm.stores, a)
					} else {
						wm.loads = append(wm.loads, a)
					}
				}
				ls, lh := coalesce.Split(wm.loads)
				ss, sh := coalesce.Split(wm.stores)
				memInstrs++
				stackTx += uint64(ls + ss)
				heapTx += uint64(lh + sh)
			}
		}
	}
	return memInstrs, stackTx, heapTx
}

// checkCoalesceAlgebra asserts the coalescer's algebraic laws on access sets
// drawn from the trace: the count sits inside Bounds, is independent of
// access order, and is monotone under adding accesses. Work is capped so
// huge traces stay cheap — the sampled sets are reported in the check count.
func checkCoalesceAlgebra(c *ctx) {
	const maxSets = 256
	cell := Cell{WarpSize: c.opts.WarpSizes[0], Parallelism: 1, Formation: c.opts.Formations[0]}
	sets := 0
	for _, th := range c.tr.Threads {
		for i := range th.Records {
			r := &th.Records[i]
			if r.Kind != trace.KindBBL || len(r.Mem) == 0 {
				continue
			}
			accs := make([]coalesce.Access, 0, len(r.Mem))
			for _, m := range r.Mem {
				accs = append(accs, coalesce.Access{Addr: m.Addr, Size: m.Size})
			}
			n := coalesce.Count(accs)
			lo, hi := coalesce.Bounds(accs)
			c.assert(cell, n >= lo && n <= hi,
				"Count(%d accesses) = %d outside bounds [%d, %d]", len(accs), n, lo, hi)
			rev := make([]coalesce.Access, len(accs))
			for j := range accs {
				rev[len(accs)-1-j] = accs[j]
			}
			c.assert(cell, coalesce.Count(rev) == n,
				"Count depends on access order: %d vs %d", coalesce.Count(rev), n)
			if len(accs) > 1 {
				sub := coalesce.Count(accs[:len(accs)-1])
				c.assert(cell, sub <= n,
					"dropping an access raised the count: %d -> %d", n, sub)
			}
			sets++
			if sets >= maxSets {
				return
			}
		}
	}
}
