package coalesce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threadfuser/internal/vm"
)

// TestCoalescePaperExample reproduces figure 4: 32 lanes accessing 4-byte
// elements 4 bytes apart coalesce into 4 transactions of 32 bytes; fully
// scattered lanes need one transaction each.
func TestCoalescePaperExample(t *testing.T) {
	var coalesced []Access
	base := uint64(0x1000)
	for lane := 0; lane < 32; lane++ {
		coalesced = append(coalesced, Access{Addr: base + uint64(4*lane), Size: 4})
	}
	if got := Count(coalesced); got != 4 {
		t.Errorf("figure-4 coalesced case = %d transactions, want 4", got)
	}

	var scattered []Access
	for lane := 0; lane < 32; lane++ {
		scattered = append(scattered, Access{Addr: base + uint64(4096*lane), Size: 4})
	}
	if got := Count(scattered); got != 32 {
		t.Errorf("scattered case = %d transactions, want 32", got)
	}
}

func TestCountEdgeCases(t *testing.T) {
	if got := Count(nil); got != 0 {
		t.Errorf("Count(nil) = %d", got)
	}
	// Same address from every lane: a broadcast costs one transaction.
	var same []Access
	for i := 0; i < 32; i++ {
		same = append(same, Access{Addr: 0x2000, Size: 8})
	}
	if got := Count(same); got != 1 {
		t.Errorf("broadcast = %d transactions, want 1", got)
	}
	// An 8-byte access straddling a sector boundary costs two.
	if got := Count([]Access{{Addr: TransactionSize - 4, Size: 8}}); got != 2 {
		t.Errorf("straddling access = %d transactions, want 2", got)
	}
	// Aligned 8-byte access costs one.
	if got := Count([]Access{{Addr: TransactionSize, Size: 8}}); got != 1 {
		t.Errorf("aligned access = %d transactions, want 1", got)
	}
}

func TestCountIgnoresOrderAndDuplicates(t *testing.T) {
	a := []Access{{Addr: 0, Size: 8}, {Addr: 64, Size: 8}, {Addr: 32, Size: 8}}
	b := []Access{{Addr: 64, Size: 8}, {Addr: 32, Size: 8}, {Addr: 0, Size: 8}, {Addr: 0, Size: 8}}
	if Count(a) != 3 || Count(b) != 3 {
		t.Errorf("Count not order/duplicate independent: %d vs %d", Count(a), Count(b))
	}
}

func TestSplitBySegment(t *testing.T) {
	accs := []Access{
		{Addr: vm.StackTop(0) - 8, Size: 8}, // stack
		{Addr: vm.HeapBase + 64, Size: 8},   // heap
		{Addr: vm.GlobalBase + 8, Size: 8},  // global counts with heap
	}
	stack, heap := Split(accs)
	if stack != 1 || heap != 2 {
		t.Errorf("Split = (%d stack, %d heap), want (1, 2)", stack, heap)
	}
}

// Properties: the transaction count is bounded below by the footprint bound
// (total bytes / 32, rounded up, when accesses are disjoint) and above by
// sectors-per-access summed; it is invariant under permutation; and it is
// monotone under adding accesses.
func TestCountProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		accs := make([]Access, n)
		for i := range accs {
			accs[i] = Access{
				Addr: uint64(r.Intn(1 << 16)),
				Size: []uint8{1, 2, 4, 8}[r.Intn(4)],
			}
		}
		c := Count(accs)
		if c < 1 {
			return false
		}
		// Upper bound: every access touches at most 2 sectors.
		if c > 2*n {
			return false
		}
		// Permutation invariance.
		perm := make([]Access, n)
		copy(perm, accs)
		r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if Count(perm) != c {
			return false
		}
		// Monotonicity: adding an access never reduces the count.
		extra := append(append([]Access{}, accs...), Access{Addr: uint64(r.Intn(1 << 20)), Size: 8})
		return Count(extra) >= c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
