package vm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"threadfuser/internal/ir"
	"threadfuser/internal/trace"
)

// run executes a single-thread program built by mk and returns the thread
// plus its trace.
func run(t *testing.T, mk func(pb *ir.Builder, f *ir.FuncBuilder)) (*Thread, *trace.ThreadTrace, *Process) {
	t.Helper()
	pb := ir.NewBuilder("t")
	f := pb.NewFunc("worker")
	mk(pb, f)
	p := NewProcess(pb.MustBuild())
	th := p.NewThread(0)
	tt, err := th.Run(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return th, tt, p
}

func TestIntegerALU(t *testing.T) {
	th, _, _ := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
		b := f.NewBlock("b")
		b.Mov(ir.Rg(ir.R(0)), ir.Imm(20)).
			Add(ir.Rg(ir.R(0)), ir.Imm(3)).  // 23
			Mul(ir.Rg(ir.R(0)), ir.Imm(-2)). // -46
			Sub(ir.Rg(ir.R(0)), ir.Imm(4)).  // -50
			Div(ir.Rg(ir.R(0)), ir.Imm(7)).  // -7
			Rem(ir.Rg(ir.R(0)), ir.Imm(4)).  // -3
			Neg(ir.Rg(ir.R(0))).             // 3
			Shl(ir.Rg(ir.R(0)), ir.Imm(4)).  // 48
			Or(ir.Rg(ir.R(0)), ir.Imm(7)).   // 55
			Xor(ir.Rg(ir.R(0)), ir.Imm(5)).  // 50
			And(ir.Rg(ir.R(0)), ir.Imm(56)). // 48
			Sar(ir.Rg(ir.R(0)), ir.Imm(2)).  // 12
			Not(ir.Rg(ir.R(0))).             // -13
			Ret()
	})
	if got := th.Reg(ir.R(0)); got != -13 {
		t.Errorf("ALU chain = %d, want -13", got)
	}
}

func TestDivisionByZeroYieldsZero(t *testing.T) {
	th, _, p := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
		b := f.NewBlock("b")
		b.Mov(ir.Rg(ir.R(0)), ir.Imm(5)).
			Div(ir.Rg(ir.R(0)), ir.Imm(0)).
			Mov(ir.Rg(ir.R(1)), ir.Imm(5)).
			Rem(ir.Rg(ir.R(1)), ir.Imm(0)).
			Ret()
	})
	if th.Reg(ir.R(0)) != 0 || th.Reg(ir.R(1)) != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0", th.Reg(ir.R(0)), th.Reg(ir.R(1)))
	}
	if p.DivByZero != 2 {
		t.Errorf("DivByZero = %d, want 2", p.DivByZero)
	}
}

func TestFloatingPoint(t *testing.T) {
	th, _, _ := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
		b := f.NewBlock("b")
		// r0 = sqrt((3.0*4.0 + 4.0) / 4.0) = 2.0; r1 = int64(r0) = 2
		b.Mov(ir.Rg(ir.R(0)), ir.Imm(3)).
			CvtIF(ir.Rg(ir.R(0)), ir.Rg(ir.R(0))).
			Mov(ir.Rg(ir.R(2)), ir.Imm(4)).
			CvtIF(ir.Rg(ir.R(2)), ir.Rg(ir.R(2))).
			FMul(ir.Rg(ir.R(0)), ir.Rg(ir.R(2))).
			FAdd(ir.Rg(ir.R(0)), ir.Rg(ir.R(2))).
			FDiv(ir.Rg(ir.R(0)), ir.Rg(ir.R(2))).
			FSqrt(ir.Rg(ir.R(0))).
			CvtFI(ir.Rg(ir.R(1)), ir.Rg(ir.R(0))).
			Ret()
	})
	if got := math.Float64frombits(uint64(th.Reg(ir.R(0)))); got != 2.0 {
		t.Errorf("float chain = %v, want 2.0", got)
	}
	if th.Reg(ir.R(1)) != 2 {
		t.Errorf("cvtfi = %d, want 2", th.Reg(ir.R(1)))
	}
}

func TestConditionsAndBranches(t *testing.T) {
	// For each condition, branch with operands that satisfy it and verify
	// the taken side executes.
	cases := []struct {
		cond ir.Cond
		a, b int64
	}{
		{ir.CondEQ, 4, 4}, {ir.CondNE, 4, 5}, {ir.CondLT, -2, 3},
		{ir.CondLE, 3, 3}, {ir.CondGT, 9, 3}, {ir.CondGE, 3, 3},
		{ir.CondULT, 2, 3}, {ir.CondUGE, -1, 1}, // -1 is huge unsigned
	}
	for _, c := range cases {
		c := c
		th, _, _ := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
			b0 := f.NewBlock("b0")
			yes := f.NewBlock("yes")
			no := f.NewBlock("no")
			b0.Mov(ir.Rg(ir.R(1)), ir.Imm(c.a)).
				Cmp(ir.Rg(ir.R(1)), ir.Imm(c.b)).
				Jcc(c.cond, yes, no)
			yes.Mov(ir.Rg(ir.R(0)), ir.Imm(1)).Ret()
			no.Mov(ir.Rg(ir.R(0)), ir.Imm(2)).Ret()
		})
		if th.Reg(ir.R(0)) != 1 {
			t.Errorf("cond %s with (%d,%d): fall-through taken", c.cond, c.a, c.b)
		}
	}
}

func TestMemorySignExtension(t *testing.T) {
	th, _, _ := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
		b := f.NewBlock("b")
		// Store 0xFF as one byte; load it back sign-extended: -1.
		b.Mov(ir.Mem(ir.SP, -8, 1), ir.Imm(0xFF)).
			Mov(ir.Rg(ir.R(0)), ir.Mem(ir.SP, -8, 1)).
			Mov(ir.Mem(ir.SP, -16, 4), ir.Imm(0x80000000)).
			Mov(ir.Rg(ir.R(1)), ir.Mem(ir.SP, -16, 4)).
			Ret()
	})
	if th.Reg(ir.R(0)) != -1 {
		t.Errorf("byte load = %d, want -1", th.Reg(ir.R(0)))
	}
	if th.Reg(ir.R(1)) != math.MinInt32 {
		t.Errorf("dword load = %d, want %d", th.Reg(ir.R(1)), math.MinInt32)
	}
}

func TestSwitchClamping(t *testing.T) {
	for _, tc := range []struct {
		sel  int64
		want int64
	}{{0, 10}, {1, 11}, {2, 12}, {5, 12}, {-3, 10}} {
		tc := tc
		th, _, _ := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
			b0 := f.NewBlock("b0")
			t0 := f.NewBlock("t0")
			t1 := f.NewBlock("t1")
			t2 := f.NewBlock("t2")
			b0.Mov(ir.Rg(ir.R(1)), ir.Imm(tc.sel)).Switch(ir.Rg(ir.R(1)), t0, t1, t2)
			t0.Mov(ir.Rg(ir.R(0)), ir.Imm(10)).Ret()
			t1.Mov(ir.Rg(ir.R(0)), ir.Imm(11)).Ret()
			t2.Mov(ir.Rg(ir.R(0)), ir.Imm(12)).Ret()
		})
		if th.Reg(ir.R(0)) != tc.want {
			t.Errorf("switch(%d) = %d, want %d", tc.sel, th.Reg(ir.R(0)), tc.want)
		}
	}
}

func TestCallsAndIndirectCalls(t *testing.T) {
	th, tt, _ := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
		callee := pb.NewFunc("callee")
		cb := callee.NewBlock("cb")
		cb.Add(ir.Rg(ir.R(0)), ir.Imm(100)).Ret()

		pb.SetEntry(f)
		b0 := f.NewBlock("b0")
		b1 := f.NewBlock("b1")
		b2 := f.NewBlock("b2")
		b0.Mov(ir.Rg(ir.R(0)), ir.Imm(1)).Call(callee, b1)
		b1.Mov(ir.Rg(ir.R(1)), ir.Imm(int64(callee.ID()))).CallReg(ir.Rg(ir.R(1)), b2)
		b2.Ret()
	})
	if th.Reg(ir.R(0)) != 201 {
		t.Errorf("after two calls r0 = %d, want 201", th.Reg(ir.R(0)))
	}
	// Trace must contain matching CALL/RET markers: entry + 2 calls.
	calls, rets := 0, 0
	for _, r := range tt.Records {
		switch r.Kind {
		case trace.KindCall:
			calls++
		case trace.KindRet:
			rets++
		}
	}
	if calls != 3 || rets != 3 {
		t.Errorf("calls/rets = %d/%d, want 3/3", calls, rets)
	}
}

func TestIndirectCallOutOfRangeFails(t *testing.T) {
	pb := ir.NewBuilder("t")
	f := pb.NewFunc("worker")
	b0 := f.NewBlock("b0")
	b1 := f.NewBlock("b1")
	b0.Mov(ir.Rg(ir.R(0)), ir.Imm(99)).CallReg(ir.Rg(ir.R(0)), b1)
	b1.Ret()
	p := NewProcess(pb.MustBuild())
	if _, err := p.NewThread(0).Run(RunConfig{}); err == nil {
		t.Error("indirect call to function 99 succeeded")
	}
}

func TestInstructionBudget(t *testing.T) {
	pb := ir.NewBuilder("spin")
	f := pb.NewFunc("worker")
	b := f.NewBlock("b")
	b.Nop(10).Jmp(b) // infinite loop
	p := NewProcess(pb.MustBuild())
	if _, err := p.NewThread(0).Run(RunConfig{MaxInstrs: 1000}); err == nil {
		t.Error("infinite loop did not hit the budget")
	}
}

func TestLockEventsRecorded(t *testing.T) {
	_, tt, _ := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
		b := f.NewBlock("b")
		b.Mov(ir.Rg(ir.R(0)), ir.Imm(0x5000)).
			Lock(ir.Rg(ir.R(0))).
			Nop(2).
			Unlock(ir.Rg(ir.R(0))).
			Lock(ir.Mem(ir.R(0), 8, 8)). // address-of, not load
			Unlock(ir.Imm(0x5008)).
			Ret()
	})
	var locks []trace.LockOp
	for _, r := range tt.Records {
		locks = append(locks, r.Locks...)
	}
	if len(locks) != 4 {
		t.Fatalf("lock ops = %d, want 4", len(locks))
	}
	if locks[0].Addr != 0x5000 || locks[0].Release {
		t.Errorf("lock[0] = %+v", locks[0])
	}
	if locks[2].Addr != 0x5008 || locks[2].Release {
		t.Errorf("mem-operand lock addr = %#x, want 0x5008", locks[2].Addr)
	}
	if !locks[3].Release {
		t.Errorf("lock[3] should be a release")
	}
	// The memory-operand Lock must not record a memory access.
	for _, r := range tt.Records {
		if len(r.Mem) != 0 {
			t.Errorf("lock instructions generated memory accesses: %+v", r.Mem)
		}
	}
}

func TestSkipRecords(t *testing.T) {
	_, tt, _ := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
		b := f.NewBlock("b")
		b.IO(100).Nop(1).Spin(25).Ret()
	})
	io, spin := tt.Skipped()
	if io != 100 || spin != 25 {
		t.Errorf("skipped = %d io, %d spin; want 100/25", io, spin)
	}
	// Traced instructions include the IO/Spin markers themselves.
	if got := tt.Instructions(); got != 4 {
		t.Errorf("traced instructions = %d, want 4", got)
	}
}

func TestRMWMemoryAccessOrder(t *testing.T) {
	_, tt, p := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
		b := f.NewBlock("b")
		b.Mov(ir.Rg(ir.R(0)), ir.Imm(int64(GlobalBase+0x800))).
			Mov(ir.Mem(ir.R(0), 0, 8), ir.Imm(5)).
			Add(ir.Mem(ir.R(0), 0, 8), ir.Imm(2)).
			Ret()
	})
	if got := p.ReadI64(GlobalBase + 0x800); got != 7 {
		t.Errorf("rmw result = %d, want 7", got)
	}
	// The Add must record a load then a store at the same instruction.
	var accs []trace.MemAccess
	for _, r := range tt.Records {
		accs = append(accs, r.Mem...)
	}
	if len(accs) != 3 {
		t.Fatalf("accesses = %d, want 3 (store, load, store)", len(accs))
	}
	if accs[1].Store || !accs[2].Store || accs[1].Instr != accs[2].Instr {
		t.Errorf("rmw access pattern wrong: %+v", accs[1:])
	}
}

func TestStackIsolationBetweenThreads(t *testing.T) {
	pb := ir.NewBuilder("iso")
	f := pb.NewFunc("worker")
	b := f.NewBlock("b")
	b.Mov(ir.Mem(ir.SP, -8, 8), ir.Rg(ir.TID)).
		Mov(ir.Rg(ir.R(0)), ir.Mem(ir.SP, -8, 8)).
		Ret()
	p := NewProcess(pb.MustBuild())
	for tid := 0; tid < 4; tid++ {
		th := p.NewThread(tid)
		if _, err := th.Run(RunConfig{}); err != nil {
			t.Fatal(err)
		}
		if th.Reg(ir.R(0)) != int64(tid) {
			t.Errorf("thread %d read %d from its stack", tid, th.Reg(ir.R(0)))
		}
	}
}

func TestSegmentOf(t *testing.T) {
	cases := map[uint64]Segment{
		GlobalBase:        SegGlobal,
		GlobalBase + 4096: SegGlobal,
		HeapBase:          SegHeap,
		HeapBase + 1<<30:  SegHeap,
		StackBase:         SegStack,
		StackTop(0) - 8:   SegStack,
		0:                 SegGlobal,
	}
	for addr, want := range cases {
		if got := SegmentOf(addr); got != want {
			t.Errorf("SegmentOf(%#x) = %v, want %v", addr, got, want)
		}
	}
}

// TestMemoryReadWriteProperty: writes followed by reads round-trip for all
// sizes and straddle page boundaries correctly.
func TestMemoryReadWriteProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMemory()
		type wr struct {
			addr uint64
			size uint8
			val  uint64
		}
		var writes []wr
		for i := 0; i < 50; i++ {
			size := []uint8{1, 2, 4, 8}[r.Intn(4)]
			// Cluster near page boundaries to exercise straddles.
			addr := uint64(r.Intn(3)+1)*pageSize - uint64(r.Intn(12))
			val := r.Uint64() & (1<<(8*uint(size)) - 1)
			m.Write(addr, size, val)
			writes = append(writes, wr{addr, size, val})
		}
		// The LAST write to each exact (addr,size) must be readable if no
		// later write overlaps it; simply re-write and check each.
		for _, w := range writes {
			m.Write(w.addr, w.size, w.val)
			if m.Read(w.addr, w.size) != w.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHashBelowIgnoresZeroPagesAndStacks(t *testing.T) {
	m := NewMemory()
	h0 := m.HashBelow(StackBase)
	m.Write(GlobalBase+100, 8, 0) // touch a page with zeros only
	if m.HashBelow(StackBase) != h0 {
		t.Error("zero page changed the hash")
	}
	m.Write(StackBase+100, 8, 42) // stack write outside the range
	if m.HashBelow(StackBase) != h0 {
		t.Error("stack write changed the below-stack hash")
	}
	m.Write(GlobalBase+100, 8, 42)
	if m.HashBelow(StackBase) == h0 {
		t.Error("real write did not change the hash")
	}
}

func TestAllocators(t *testing.T) {
	pb := ir.NewBuilder("alloc")
	f := pb.NewFunc("worker")
	f.NewBlock("b").Ret()
	p := NewProcess(pb.MustBuild())

	g1 := p.AllocGlobal(100)
	g2 := p.AllocGlobal(1)
	if g2 <= g1 || g2-g1 < 100 || g1%16 != 0 {
		t.Errorf("global allocator misbehaved: %#x then %#x", g1, g2)
	}
	h1 := p.AllocHeap(64)
	h2 := p.AllocHeap(64)
	if SegmentOf(h1) != SegHeap || h2 != h1+64 {
		t.Errorf("heap allocator misbehaved: %#x then %#x", h1, h2)
	}
	// Arena bump pointers must be seeded into distinct spans.
	for i := uint64(0); i < NumArenas; i++ {
		next := p.Mem.Read(ArenaStateBase+i*ArenaStateStride, 8)
		if want := HeapBase + i*ArenaSpan; next != want {
			t.Errorf("arena %d bump = %#x, want %#x", i, next, want)
		}
	}
}

func TestTraceAllValidates(t *testing.T) {
	pb := ir.NewBuilder("multi")
	f := pb.NewFunc("worker")
	b0 := f.NewBlock("b0")
	odd := f.NewBlock("odd")
	even := f.NewBlock("even")
	b0.Mov(ir.Rg(ir.R(0)), ir.Rg(ir.TID)).
		And(ir.Rg(ir.R(0)), ir.Imm(1)).
		Cmp(ir.Rg(ir.R(0)), ir.Imm(0)).
		Jcc(ir.CondEQ, even, odd)
	odd.Nop(3).Ret()
	even.Nop(1).Ret()
	p := NewProcess(pb.MustBuild())
	tr, err := TraceAll(p, 8, RunConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Threads) != 8 {
		t.Errorf("threads = %d, want 8", len(tr.Threads))
	}
	// Threads 0,2,4,6 execute 3 instrs (b0:4? no: b0 has 4, even 2) —
	// verify per-parity instruction counts differ as expected.
	if tr.Threads[0].Instructions() == tr.Threads[1].Instructions() {
		t.Error("odd/even paths have identical lengths; test is vacuous")
	}
}

func TestCmovSemantics(t *testing.T) {
	th, _, p := run(t, func(pb *ir.Builder, f *ir.FuncBuilder) {
		b := f.NewBlock("b")
		addr := int64(GlobalBase + 0x900)
		b.Mov(ir.Rg(ir.R(0)), ir.Imm(addr)).
			Mov(ir.Mem(ir.R(0), 0, 8), ir.Imm(11)).
			Mov(ir.Rg(ir.R(1)), ir.Imm(1)).
			Cmp(ir.Rg(ir.R(1)), ir.Imm(1)).
			Cmov(ir.CondEQ, ir.Rg(ir.R(2)), ir.Imm(77)). // taken: eq holds
			Cmov(ir.CondNE, ir.Rg(ir.R(3)), ir.Imm(88)). // not taken
			Ret()
	})
	if th.Reg(ir.R(2)) != 77 {
		t.Errorf("taken cmov = %d, want 77", th.Reg(ir.R(2)))
	}
	if th.Reg(ir.R(3)) != 0 {
		t.Errorf("untaken cmov = %d, want 0", th.Reg(ir.R(3)))
	}
	_ = p
}
