package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

// traceWorkload traces one bundled workload at a fixed size and seed.
func traceWorkload(t *testing.T, name string, threads int) *trace.Trace {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatalf("workload %s: %v", name, err)
	}
	inst, err := w.Instantiate(workloads.Config{Threads: threads, Seed: 1})
	if err != nil {
		t.Fatalf("instantiate %s: %v", name, err)
	}
	tr, err := inst.Trace()
	if err != nil {
		t.Fatalf("trace %s: %v", name, err)
	}
	return tr
}

// TestParallelMatchesSerial is the determinism contract: for every covered
// workload × warp size × lock mode, parallel replay must produce a Report
// deeply equal to the serial one — including Branches ordering, the
// LaneHistogram, and every per-warp and per-function row.
func TestParallelMatchesSerial(t *testing.T) {
	names := []string{
		"rodinia.bfs",
		"other.pigz",
		"paropoly.nbody",
		"usuite.hdsearch.mid",
	}
	for _, name := range names {
		tr := traceWorkload(t, name, 64)
		for _, warpSize := range []int{8, 32} {
			for _, locks := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/w%d/locks=%v", name, warpSize, locks), func(t *testing.T) {
					opts := Defaults()
					opts.WarpSize = warpSize
					opts.EmulateLocks = locks

					serial := opts
					serial.Parallelism = 1
					want, err := Analyze(tr, serial)
					if err != nil {
						t.Fatalf("serial analyze: %v", err)
					}

					parallel := opts
					parallel.Parallelism = 8
					got, err := Analyze(tr, parallel)
					if err != nil {
						t.Fatalf("parallel analyze: %v", err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("parallel report differs from serial\nserial:   %+v\nparallel: %+v", want, got)
					}
				})
			}
		}
	}
}

// TestParallelismExceedsWarps stresses the worker pool with more workers
// than warps (the pool must clamp) and with the auto setting, under -race.
func TestParallelismExceedsWarps(t *testing.T) {
	tr := traceWorkload(t, "rodinia.bfs", 16) // 1 warp at width 32
	for _, par := range []int{0, 4, 64} {
		opts := Defaults()
		opts.Parallelism = par
		rep, err := Analyze(tr, opts)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", par, err)
		}
		if rep.Warps == 0 || rep.TotalInstrs == 0 {
			t.Fatalf("parallelism=%d: degenerate report %+v", par, rep)
		}
	}
}

// TestSessionMatchesAnalyze checks that the memoizing session produces the
// same reports as the one-shot path across a warp-width sweep, and that
// concurrent Analyze calls on one session (the experiment-cell pattern) are
// race-free and agree with each other.
func TestSessionMatchesAnalyze(t *testing.T) {
	tr := traceWorkload(t, "paropoly.nbody", 48)
	sess := NewSession()
	for _, warpSize := range []int{8, 16, 32} {
		opts := Defaults()
		opts.WarpSize = warpSize
		want, err := Analyze(tr, opts)
		if err != nil {
			t.Fatalf("analyze w%d: %v", warpSize, err)
		}
		got, err := sess.Analyze(tr, opts)
		if err != nil {
			t.Fatalf("session analyze w%d: %v", warpSize, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("w%d: session report differs from direct Analyze", warpSize)
		}
	}

	const goroutines = 8
	reps := make([]*Report, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	shared := NewSession()
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := Defaults()
			opts.EmulateLocks = i%2 == 1
			reps[i], errs[i] = shared.Analyze(tr, opts)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(reps[i], reps[i%2]) {
			t.Errorf("goroutine %d: report differs from goroutine %d under a shared session", i, i%2)
		}
	}
}

// TestSessionRejectsZeroWarpSize mirrors Analyze's options validation.
func TestSessionRejectsZeroWarpSize(t *testing.T) {
	tr := traceWorkload(t, "rodinia.bfs", 8)
	if _, err := NewSession().Analyze(tr, Options{}); err == nil {
		t.Fatal("expected an error for WarpSize=0")
	}
}
