package pool

import (
	"context"
	"testing"
	"time"
)

func TestSemTryAcquire(t *testing.T) {
	s := NewSem(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("fresh semaphore refused acquire")
	}
	if s.TryAcquire() {
		t.Fatal("acquired beyond capacity")
	}
	if got := s.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want 2", got)
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestSemAcquireContext(t *testing.T) {
	s := NewSem(1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire on full sem = %v, want DeadlineExceeded", err)
	}
	s.Release()
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after release = %v", err)
	}
}

func TestSemClampsCapacity(t *testing.T) {
	if got := NewSem(0).Cap(); got != 1 {
		t.Fatalf("NewSem(0).Cap() = %d, want 1", got)
	}
	if got := NewSem(-3).Cap(); got != 1 {
		t.Fatalf("NewSem(-3).Cap() = %d, want 1", got)
	}
}

func TestSemReleasePanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release on empty sem did not panic")
		}
	}()
	NewSem(1).Release()
}
