package workloads

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// The "Others" group of Table I: pigz (parallel gzip), rotate and MD5 from
// the Starbench suite. pigz anchors the low-efficiency end of figure 1 (its
// control flow is intrinsically data-dependent), MD5 the high end.

var wlPigz = register(&Workload{
	Name:           "other.pigz",
	Suite:          SuiteOther,
	Desc:           "pigz deflate kernel: data-dependent match extension and literal/match emission",
	DefaultThreads: 64,
	PaperThreads:   128,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		positions := cfg.scale(40)
		const window = 32
		pb := ir.NewBuilder("other.pigz")
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r3=data base, r1=hashTable, r2=out. Each thread deflates
		// its own chunk, as pigz does; chunk entropy varies per thread, so
		// match lengths (and therefore every loop trip count) are
		// intrinsically data-dependent — the property that caps pigz at
		// ~10%% SIMT efficiency in figure 1.
		pre := w.NewBlock("pre")
		pre.Mov(rg(0), tid()).
			Mul(rg(0), im(int64(positions+2*window+8))).
			Add(rg(0), rg(3)). // r0 = &chunk
			Mov(rg(9), im(0))  // emitted symbols
		outer := loopN(w, pre, "positions", 4, 0, im(int64(positions)))
		// Hash the 3-byte window to find a match candidate offset.
		outer.Body.Mov(rg(5), idx1(0, 4, 0)).
			Shl(rg(5), im(5)).
			Xor(rg(5), idx1(0, 4, 1)).
			Shl(rg(5), im(5)).
			Xor(rg(5), idx1(0, 4, 2)).
			And(rg(5), im(63)).
			Mov(rg(6), idx8(1, 5, 8, 0)) // candidate distance (1..window)
		// Match extension: while data[pos+len] == data[pos-dist+len] and
		// len < window.
		matchHead := w.NewBlock("match_head")
		matchTest := w.NewBlock("match_test")
		matchExt := w.NewBlock("match_ext")
		classify := w.NewBlock("classify")
		outer.Body.Mov(rg(7), im(0)).Jmp(matchHead)
		matchHead.Cmp(rg(7), im(window)).Jcc(ir.CondGE, classify, matchTest)
		matchTest.Mov(rg(8), rg(4)).
			Add(rg(8), rg(7)).
			Mov(rg(13), idx1(0, 8, 0)). // data[pos+len]
			Sub(rg(8), rg(6)).
			Mov(rg(14), idx1(0, 8, 0)). // data[pos-dist+len]
			Cmp(rg(13), rg(14)).
			Jcc(ir.CondEQ, matchExt, classify)
		matchExt.Add(rg(7), im(1)).Jmp(matchHead)
		// Emit: literal or a match token stream proportional to the match
		// length (deflate emits length/distance codes bit by bit).
		lit := w.NewBlock("lit")
		match := w.NewBlock("match")
		emitted := w.NewBlock("emitted")
		classify.Cmp(rg(7), im(3)).Jcc(ir.CondLT, lit, match)
		lit.Mov(rg(13), idx1(0, 4, 0)).
			Mul(rg(13), im(31)).
			Add(rg(9), im(1)).
			Mov(idx8(2, int(ir.TID), 8, 0), rg(13)).
			Jmp(emitted)
		match.Mov(rg(8), rg(7)).Shr(rg(8), im(1))
		bits := loopN(w, match, "embits", 15, 0, rg(8))
		bits.Body.Mov(rg(13), rg(6)).
			Shl(rg(13), im(4)).
			Xor(rg(13), rg(7)).
			Mov(idx8(2, int(ir.TID), 8, 0), rg(13)).
			Add(rg(9), im(1))
		bits.Next(bits.Body)
		bits.Exit.Jmp(emitted)
		outer.Next(emitted)
		outer.Exit.Ret()

		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			chunk := positions + 2*window + 8
			data := p.AllocGlobal(uint64(chunk * cfg.Threads))
			table := p.AllocGlobal(8 * 64)
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			buf := make([]byte, chunk*cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				// Per-chunk entropy varies: text-like chunks repeat often
				// (long matches), binary-like chunks rarely do.
				runProb := 30 + r.Intn(65)
				for i := 0; i < chunk; i++ {
					idx := t*chunk + i
					if i > 0 && r.Intn(100) < runProb {
						buf[idx] = buf[idx-1]
					} else {
						buf[idx] = byte('a' + r.Intn(6))
					}
				}
			}
			fillBytes(p, data, buf)
			for i := 0; i < 64; i++ {
				p.WriteI64(table+uint64(8*i), int64(1+r.Intn(window)))
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(3), int64(data)+int64(window)) // history window precedes the chunk
				th.SetReg(ir.R(1), int64(table))
				th.SetReg(ir.R(2), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlRotate = register(&Workload{
	Name:           "other.rotate",
	Suite:          SuiteOther,
	Desc:           "image rotation: convergent per-row loops with transposed (strided) stores",
	DefaultThreads: 64,
	PaperThreads:   1024,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		width := cfg.scale(24)
		pb := ir.NewBuilder("other.rotate")
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=src, r1=dst, r2=height (rows = threads).
		pre := w.NewBlock("pre")
		pre.Mov(rg(3), tid()).
			Mul(rg(3), im(int64(width))) // my row base
		l := loopN(w, pre, "cols", 4, 0, im(int64(width)))
		l.Body.Mov(rg(5), rg(3)).
			Add(rg(5), rg(4)).
			Mov(rg(6), idx8(0, 5, 8, 0)). // src[row*W + x]
			Mov(rg(7), rg(4)).
			Mul(rg(7), rg(2)).
			Add(rg(7), tid()).
			Mov(idx8(1, 7, 8, 0), rg(6)) // dst[x*H + row]
		l.Next(l.Body)
		l.Exit.Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			n := width * cfg.Threads
			src := p.AllocGlobal(uint64(8 * n))
			dst := p.AllocGlobal(uint64(8 * n))
			for i := 0; i < n; i++ {
				p.WriteI64(src+uint64(8*i), r.Int63())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(src))
				th.SetReg(ir.R(1), int64(dst))
				th.SetReg(ir.R(2), int64(cfg.Threads))
			}, nil
		}
		return prog, setup, nil
	},
})

var wlMD5 = register(&Workload{
	Name:           "other.md5",
	Suite:          SuiteOther,
	Desc:           "MD5 digests: 64 rounds of pure ALU mixing with a per-round jump table taken uniformly",
	DefaultThreads: 64,
	PaperThreads:   512,
	Build: func(cfg Config) (*ir.Program, SetupFn, error) {
		pb := ir.NewBuilder("other.md5")
		w := pb.NewFunc("worker")
		pb.SetEntry(w)
		// Args: r0=messages (16 words each), r1=sines table, r2=out.
		pre := w.NewBlock("pre")
		pre.Mov(rg(3), tid()).
			Shl(rg(3), im(7)).
			Add(rg(3), rg(0)).          // &message
			Mov(rg(5), im(0x67452301)). // a
			Mov(rg(6), im(-0x10325477)) // b
		l := loopN(w, pre, "rounds", 4, 0, im(64))
		// The round function is selected by round/16. Every lane is at the
		// same round, so the jump table never diverges — MD5 stays at the
		// top of figure 1.
		f0 := w.NewBlock("f0")
		f1 := w.NewBlock("f1")
		f2 := w.NewBlock("f2")
		f3 := w.NewBlock("f3")
		mix := w.NewBlock("mix")
		l.Body.Mov(rg(7), rg(4)).
			Shr(rg(7), im(4)).
			Switch(rg(7), f0, f1, f2, f3)
		f0.Mov(rg(8), rg(5)).And(rg(8), rg(6)).Jmp(mix)
		f1.Mov(rg(8), rg(5)).Or(rg(8), rg(6)).Jmp(mix)
		f2.Mov(rg(8), rg(5)).Xor(rg(8), rg(6)).Jmp(mix)
		f3.Mov(rg(8), rg(6)).Not(rg(8)).Or(rg(8), rg(5)).Jmp(mix)
		mix.Mov(rg(9), rg(4)).
			And(rg(9), im(15)).
			Mov(rg(13), idx8(3, 9, 8, 0)). // message word
			Add(rg(8), rg(13)).
			Add(rg(8), idx8(1, 4, 8, 0)). // sine constant
			Mov(rg(9), rg(8)).
			Shl(rg(8), im(7)).
			Shr(rg(9), im(57)). // rotate-left by 7, as MD5's <<<s
			Or(rg(8), rg(9)).
			Xor(rg(8), rg(5)).
			Mov(rg(5), rg(6)).
			Mov(rg(6), rg(8))
		l.Next(mix)
		l.Exit.Mov(idx8(2, int(ir.TID), 8, 0), rg(6)).Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}
		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			msgs := p.AllocGlobal(uint64(128 * cfg.Threads))
			sines := p.AllocGlobal(8 * 64)
			out := p.AllocGlobal(uint64(8 * cfg.Threads))
			for i := 0; i < 16*cfg.Threads; i++ {
				p.WriteI64(msgs+uint64(8*i), r.Int63())
			}
			for i := 0; i < 64; i++ {
				p.WriteI64(sines+uint64(8*i), r.Int63())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(msgs))
				th.SetReg(ir.R(1), int64(sines))
				th.SetReg(ir.R(2), int64(out))
			}, nil
		}
		return prog, setup, nil
	},
})
