// Command tfstatic is the static SIMT oracle: it runs the interprocedural
// uniformity dataflow of internal/staticsimt over built-in workloads'
// programs — no tracing, no replay — and reports, per function, which
// branches are provably warp-uniform, which may diverge (with the taint
// chain that makes them so), where each divergent region reconverges, and
// which diamond arms are meldable (isomorphic modulo register renaming, or
// if-convertible beyond the optimizer's O3 budget).
//
// With -locks or -races it instead runs the static concurrency oracle of
// internal/staticlock over the same programs: must-hold locksets, the static
// lock-order graph with deadlock-cycle candidates, race-candidate address
// classes, and acquires under divergent control (guaranteed SIMT
// serialization, the livelock shape when the critical section spins). -verify
// additionally traces the workload and cross-checks the static predictions
// against the dynamic lockset and lock-order passes, exiting nonzero if any
// soundness-class finding survives.
//
// With -mem it runs the static memory oracle of internal/staticmem: every
// load/store site classified by per-lane tid-stride (broadcast, coalesced,
// strided, scattered) with its static transactions-per-warp bound and segment
// claim. -verify cross-checks those bounds against the per-site histograms a
// dynamic replay aggregates.
//
// Usage:
//
//	tfstatic -workload vectoradd
//	tfstatic -workload other.pigz -opt O3 -v
//	tfstatic -workload seededspin -locks
//	tfstatic -workload seededcycle -races -verify
//	tfstatic -workload uncoalesced -mem -verify
//	tfstatic -all -json
//
// The exit status is 2 for usage errors, 1 if any workload fails to load or
// analyze (or, under -verify, if a soundness finding survives), and 0
// otherwise; divergent classifications are reports, not failures. -json
// emits an array of staticsimt.Result (or staticlock.Result) values with a
// deterministic field and finding order, so byte-identical inputs produce
// byte-identical output.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"strconv"
	"strings"

	"threadfuser/internal/analysis"
	"threadfuser/internal/opt"
	"threadfuser/internal/serve"
	"threadfuser/internal/staticlock"
	"threadfuser/internal/staticmem"
	"threadfuser/internal/staticsimt"
	"threadfuser/internal/workloads"
)

func main() {
	var (
		wlNames = flag.String("workload", "", "comma-separated built-in workloads to analyze")
		all     = flag.Bool("all", false, "analyze every registered workload")
		threads = flag.Int("threads", 0, "thread count for workload instantiation (0 = workload default)")
		seed    = flag.Int64("seed", 7, "input-generator seed for workload instantiation")
		level   = flag.String("opt", "O1", "optimization level to analyze at (O0, O1, O2, O3)")
		budget  = flag.Int("budget", 0, "meld budget separating optimizer-handled from over-budget diamonds (0 = O3 budget)")
		asJSON  = flag.Bool("json", false, "emit results as a JSON array")
		verbose = flag.Bool("v", false, "list every branch, not just the divergent ones")
		quiet   = flag.Bool("q", false, "one summary line per workload")
		locks   = flag.Bool("locks", false, "static concurrency oracle: lock-order graph, cycle candidates, divergent-region acquires")
		races   = flag.Bool("races", false, "static concurrency oracle: race-candidate address classes and their locksets")
		mem     = flag.Bool("mem", false, "static memory oracle: per-site stride classes, transaction bounds, segment claims")
		verify  = flag.Bool("verify", false, "trace the workload and cross-check static predictions against dynamic replay (O1 only)")
		server  = flag.String("server", "", "analyze via a running tfserve instance at this URL instead of locally")
		tenant  = flag.String("tenant", "", "tenant identity sent with -server requests")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tfstatic [flags] -workload name[,name...] | -all\n")
		fmt.Fprintf(os.Stderr, "static uniformity analysis of built-in workloads (no tracing)\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tfstatic: unexpected argument %q (inputs are workloads, not files)\n", flag.Arg(0))
		os.Exit(2)
	}
	lvl, ok := parseLevel(*level)
	if !ok {
		fmt.Fprintf(os.Stderr, "tfstatic: unknown optimization level %q\n", *level)
		os.Exit(2)
	}
	if *verbose && *quiet {
		fmt.Fprintln(os.Stderr, "tfstatic: -v and -q are mutually exclusive")
		os.Exit(2)
	}
	if *mem && (*locks || *races) {
		fmt.Fprintln(os.Stderr, "tfstatic: -mem and -locks/-races are mutually exclusive")
		os.Exit(2)
	}
	memMode := *mem
	lockMode := *locks || *races || (*verify && !memMode)
	if *server != "" && *verify {
		// The cross-check replays a freshly traced workload; the service only
		// serves the static oracles.
		fmt.Fprintln(os.Stderr, "tfstatic: -server mode does not support -verify")
		os.Exit(2)
	}
	if *verify && lvl != opt.O1 {
		// The cross-check compares static IR positions against traced ones;
		// tracing always runs the instantiated (O1) program.
		fmt.Fprintln(os.Stderr, "tfstatic: -verify requires -opt O1 (the traced program)")
		os.Exit(2)
	}

	var list []*workloads.Workload
	if *all {
		list = workloads.All()
	} else if *wlNames != "" {
		for _, name := range strings.Split(*wlNames, ",") {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tfstatic:", err)
				os.Exit(2)
			}
			list = append(list, w)
		}
	}
	if len(list) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	var results []*staticsimt.Result
	var lockResults []*staticlock.Result
	var memResults []*staticmem.Result
	for _, w := range list {
		var (
			res     *staticsimt.Result
			lockRes *staticlock.Result
			memRes  *staticmem.Result
		)
		if *server != "" {
			// Server mode: the service instantiates and analyzes the bundled
			// workload itself; only the parameters travel.
			// seed and threads travel unconditionally: the service's own
			// defaults differ from this CLI's.
			q := url.Values{
				"workload": {w.Name},
				"opt":      {*level},
				"threads":  {strconv.Itoa(*threads)},
				"seed":     {strconv.FormatInt(*seed, 10)},
			}
			if lockMode {
				q.Set("mode", "locks")
			}
			if memMode {
				q.Set("mode", "mem")
			}
			if *budget != 0 {
				q.Set("budget", strconv.Itoa(*budget))
			}
			c := serve.Client{BaseURL: *server, Tenant: *tenant}
			rep, err := c.Static(context.Background(), q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tfstatic: %s: %v\n", w.Name, err)
				failed = true
				continue
			}
			res, lockRes, memRes = rep.SIMT, rep.Locks, rep.Mem
			if (lockMode && lockRes == nil) || (memMode && memRes == nil) || (!lockMode && !memMode && res == nil) {
				fmt.Fprintf(os.Stderr, "tfstatic: %s: server response missing the requested report\n", w.Name)
				failed = true
				continue
			}
		} else {
			inst, err := w.Instantiate(workloads.Config{Threads: *threads, Seed: *seed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "tfstatic: %s: %v\n", w.Name, err)
				failed = true
				continue
			}
			prog := inst.Prog
			if lvl != opt.O1 {
				prog = opt.Apply(prog, lvl)
			}
			switch {
			case memMode:
				memRes = staticmem.Analyze(prog)
				if *verify && !verifyWorkload(inst, w.Name, "staticmem",
					"verified against dynamic replay: every per-site transaction bound and segment claim held") {
					failed = true
				}
			case lockMode:
				lockRes = staticlock.Analyze(prog)
				if *verify && !verifyWorkload(inst, w.Name, "staticlock",
					"verified against dynamic replay: every dynamic race and lock-order cycle statically covered") {
					failed = true
				}
			default:
				res = staticsimt.Analyze(prog, staticsimt.Options{MeldBudget: *budget})
			}
		}

		if memMode {
			switch {
			case *asJSON:
				memResults = append(memResults, memRes)
			case *quiet:
				fmt.Printf("%-28s %3d mem site(s): %d broadcast, %d coalesced, %d strided, %d scattered, %d meld veto(es)\n",
					w.Name, len(memRes.Sites), memRes.Broadcast, memRes.Coalesced, memRes.Strided, memRes.Scattered, memRes.MeldsRejectedMem)
			default:
				memRes.Render(os.Stdout, *verbose)
			}
			continue
		}

		if lockMode {
			switch {
			case *asJSON:
				lockResults = append(lockResults, lockRes)
			case *quiet:
				fmt.Printf("%-28s %3d acquire(s) (%d divergent), %d cycle candidate(s), %d race candidate(s)\n",
					w.Name, lockRes.Acquires, lockRes.DivergentAcquires, lockRes.CycleCandidates, lockRes.RaceCandidates)
			default:
				renderConcurrency(os.Stdout, lockRes, *locks || *verify, *races || *verify, *verbose)
			}
			continue
		}

		switch {
		case *asJSON:
			results = append(results, res)
		case *quiet:
			fmt.Printf("%-28s %3d uniform / %3d divergent branch(es), %d meldable\n",
				w.Name, res.UniformBranches, res.DivergentBranches, res.Meldable)
		default:
			res.Render(os.Stdout, *verbose)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		switch {
		case memMode:
			err = enc.Encode(memResults)
		case lockMode:
			err = enc.Encode(lockResults)
		default:
			err = enc.Encode(results)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tfstatic:", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// renderConcurrency writes the lock- and/or race-oriented sections of one
// static concurrency report. Output order is fixed (sites, then classes,
// sorted by function/block/instruction), so repeated runs are byte-identical.
func renderConcurrency(w io.Writer, res *staticlock.Result, showLocks, showRaces, verbose bool) {
	fmt.Fprintf(w, "%s: %d acquire(s) (%d divergent), %d lock class(es), %d order edge(s), %d cycle candidate(s), %d race-candidate class(es)\n",
		res.Program, res.Acquires, res.DivergentAcquires, len(res.LockClasses), len(res.Edges), res.CycleCandidates, res.RaceCandidates)
	if showLocks {
		for i := range res.Sites {
			s := &res.Sites[i]
			if s.Release || s.Unreachable {
				continue
			}
			if s.Divergent {
				fmt.Fprintf(w, "  divergent acquire: %s b%d i%d lock %s — serialized under SIMT; livelock hazard if the critical section spins\n",
					s.FuncName, s.Block, s.Instr, s.Shape)
			} else if verbose {
				fmt.Fprintf(w, "  acquire: %s b%d i%d lock %s\n", s.FuncName, s.Block, s.Instr, s.Shape)
			}
		}
		for _, idx := range res.Recursions {
			s := &res.Sites[idx]
			fmt.Fprintf(w, "  recursive acquire: %s b%d i%d lock %s may already be held\n", s.FuncName, s.Block, s.Instr, s.Shape)
		}
		for _, idx := range res.BareReleases {
			s := &res.Sites[idx]
			fmt.Fprintf(w, "  release without acquire: %s b%d i%d lock %s\n", s.FuncName, s.Block, s.Instr, s.Shape)
		}
		for ci := range res.Cycles {
			c := &res.Cycles[ci]
			fmt.Fprintf(w, "  cycle candidate: classes %v over {%s}\n", c.Classes, strings.Join(c.Shapes, ", "))
		}
		if verbose {
			for i := range res.Edges {
				e := &res.Edges[i]
				fmt.Fprintf(w, "  order edge: %s -> %s\n", e.From, e.To)
			}
		}
	}
	if showRaces {
		for ci := range res.AccessClasses {
			ac := &res.AccessClasses[ci]
			if ac.Candidate {
				fmt.Fprintf(w, "  race candidate: class %d {%s} written with no common named lock\n", ci, strings.Join(ac.Shapes, ", "))
			} else if verbose {
				note := ac.Kind
				if len(ac.CommonLocks) > 0 {
					note = "protected by " + strings.Join(ac.CommonLocks, ", ")
				}
				fmt.Fprintf(w, "  class %d {%s}: %s\n", ci, strings.Join(ac.Shapes, ", "), note)
			}
		}
	}
}

// verifyWorkload traces one workload instance and runs the named static
// cross-check pass over it; it reports the pass' findings and returns false
// when any soundness-class (error-severity) finding survives.
func verifyWorkload(inst *workloads.Instance, name, pass, okMsg string) bool {
	tr, err := inst.Trace()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfstatic: %s: trace: %v\n", name, err)
		return false
	}
	rep, err := analysis.Run(tr, analysis.Options{Prog: inst.Prog, Passes: []string{pass}})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfstatic: %s: verify: %v\n", name, err)
		return false
	}
	for i := range rep.Findings {
		f := &rep.Findings[i]
		if f.Severity != analysis.SevError {
			continue
		}
		fmt.Fprintf(os.Stderr, "tfstatic: %s: SOUNDNESS: %s\n", name, f.Message)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "tfstatic: %s: %d soundness finding(s) survived the dynamic cross-check\n", name, rep.Errors)
		return false
	}
	fmt.Printf("  %s\n", okMsg)
	return true
}

func parseLevel(s string) (opt.Level, bool) {
	for _, l := range opt.Levels {
		if l.String() == s {
			return l, true
		}
	}
	return 0, false
}
