package cfg

import (
	"testing"

	"threadfuser/internal/ir"
	"threadfuser/internal/trace"
	"threadfuser/internal/vm"
)

// mkTrace assembles a minimal trace with one function of nblocks and the
// given per-thread block sequences (call/ret wrapped automatically).
func mkTrace(nblocks int, threads ...[]uint32) *trace.Trace {
	fi := trace.FuncInfo{Name: "f"}
	for i := 0; i < nblocks; i++ {
		fi.Blocks = append(fi.Blocks, trace.BlockInfo{NInstr: 1})
	}
	t := &trace.Trace{Program: "t", Funcs: []trace.FuncInfo{fi}}
	for tid, seq := range threads {
		th := &trace.ThreadTrace{TID: tid}
		th.Records = append(th.Records, trace.Record{Kind: trace.KindCall, Callee: 0})
		for _, b := range seq {
			th.Records = append(th.Records, trace.Record{Kind: trace.KindBBL, Func: 0, Block: b, N: 1})
		}
		th.Records = append(th.Records, trace.Record{Kind: trace.KindRet})
		t.Threads = append(t.Threads, th)
	}
	return t
}

func TestBuildDiamond(t *testing.T) {
	// Thread 0: 0->1->3, thread 1: 0->2->3.
	tr := mkTrace(4, []uint32{0, 1, 3}, []uint32{0, 2, 3})
	gs, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	g := gs[0]
	if g == nil {
		t.Fatal("missing graph for function 0")
	}
	exit := g.ExitNode()
	wantEdges := [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, exit}}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %d->%d", e[0], e[1])
		}
	}
	if g.NumEdges() != len(wantEdges) {
		t.Errorf("edges = %d, want %d", g.NumEdges(), len(wantEdges))
	}
	if g.Entry() != 0 {
		t.Errorf("entry = %d, want 0", g.Entry())
	}
}

func TestBuildMergesThreadsWithoutDuplicates(t *testing.T) {
	tr := mkTrace(2, []uint32{0, 1}, []uint32{0, 1}, []uint32{0, 1})
	gs, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	g := gs[0]
	if g.NumEdges() != 2 { // 0->1, 1->exit
		t.Errorf("edges = %d, want 2 (deduplicated)", g.NumEdges())
	}
}

func TestBuildLoopEdge(t *testing.T) {
	tr := mkTrace(2, []uint32{0, 0, 0, 1})
	gs, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	g := gs[0]
	if !g.HasEdge(0, 0) {
		t.Error("missing self-loop edge")
	}
	if !g.HasEdge(1, g.ExitNode()) {
		t.Error("missing exit edge")
	}
}

func TestBuildPerFunctionGraphsAcrossCalls(t *testing.T) {
	// caller (f0): block 0 calls f1, resumes in block 1.
	t1 := &trace.Trace{
		Program: "t",
		Funcs: []trace.FuncInfo{
			{Name: "caller", Blocks: []trace.BlockInfo{{NInstr: 1}, {NInstr: 1}}},
			{Name: "leaf", Blocks: []trace.BlockInfo{{NInstr: 1}}},
		},
		Threads: []*trace.ThreadTrace{{TID: 0, Records: []trace.Record{
			{Kind: trace.KindCall, Callee: 0},
			{Kind: trace.KindBBL, Func: 0, Block: 0, N: 1},
			{Kind: trace.KindCall, Callee: 1},
			{Kind: trace.KindBBL, Func: 1, Block: 0, N: 1},
			{Kind: trace.KindRet},
			{Kind: trace.KindBBL, Func: 0, Block: 1, N: 1},
			{Kind: trace.KindRet},
		}}},
	}
	gs, err := Build(t1)
	if err != nil {
		t.Fatal(err)
	}
	caller, leaf := gs[0], gs[1]
	// The call is "inlined away": caller block 0 flows to block 1, and the
	// leaf has its own single-block graph.
	if !caller.HasEdge(0, 1) {
		t.Error("caller missing call-continuation edge 0->1")
	}
	if caller.HasEdge(0, caller.ExitNode()) {
		t.Error("caller block 0 wrongly flows to exit")
	}
	if !leaf.HasEdge(0, leaf.ExitNode()) {
		t.Error("leaf missing exit edge")
	}
}

func TestBuildRejectsMalformedStreams(t *testing.T) {
	bad := &trace.Trace{
		Program: "t",
		Funcs:   []trace.FuncInfo{{Name: "f", Blocks: []trace.BlockInfo{{NInstr: 1}}}},
		Threads: []*trace.ThreadTrace{{TID: 0, Records: []trace.Record{
			{Kind: trace.KindBBL, Func: 0, Block: 0, N: 1}, // block before any call
		}}},
	}
	if _, err := Build(bad); err == nil {
		t.Error("block outside function accepted")
	}

	bad2 := &trace.Trace{
		Program: "t",
		Funcs:   []trace.FuncInfo{{Name: "f", Blocks: []trace.BlockInfo{{NInstr: 1}}}},
		Threads: []*trace.ThreadTrace{{TID: 0, Records: []trace.Record{
			{Kind: trace.KindCall, Callee: 0},
			{Kind: trace.KindBBL, Func: 0, Block: 0, N: 1},
		}}},
	}
	if _, err := Build(bad2); err == nil {
		t.Error("unterminated invocation accepted")
	}
}

func TestStaticMatchesDynamicWhenFullyCovered(t *testing.T) {
	// Build a program whose every edge is exercised; the dynamic DCFG must
	// equal the static CFG.
	pb := ir.NewBuilder("cover")
	f := pb.NewFunc("worker")
	b0 := f.NewBlock("b0")
	b1 := f.NewBlock("b1")
	b2 := f.NewBlock("b2")
	b3 := f.NewBlock("b3")
	b0.Mov(ir.Rg(ir.R(0)), ir.Rg(ir.TID)).
		And(ir.Rg(ir.R(0)), ir.Imm(1)).
		Cmp(ir.Rg(ir.R(0)), ir.Imm(0)).
		Jcc(ir.CondEQ, b1, b2)
	b1.Nop(1).Jmp(b3)
	b2.Nop(1).Jmp(b3)
	b3.Ret()
	prog := pb.MustBuild()

	static := FromProgram(prog)[0]
	p := vm.NewProcess(prog)
	tr, err := vm.TraceAll(p, 4, vm.RunConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	g := dyn[0]
	if g.NumEdges() != static.NumEdges() {
		t.Fatalf("dynamic edges %d != static %d", g.NumEdges(), static.NumEdges())
	}
	for b := int32(0); b <= int32(g.NBlocks); b++ {
		for _, s := range static.Succs(b) {
			if !g.HasEdge(b, s) {
				t.Errorf("dynamic graph missing static edge %d->%d", b, s)
			}
		}
	}
}

func TestStaticCFGTerminators(t *testing.T) {
	pb := ir.NewBuilder("term")
	callee := pb.NewFunc("callee")
	callee.NewBlock("c").Ret()
	f := pb.NewFunc("worker")
	pb.SetEntry(f)
	b0 := f.NewBlock("b0")
	b1 := f.NewBlock("b1")
	b2 := f.NewBlock("b2")
	b3 := f.NewBlock("b3")
	b0.Switch(ir.Rg(ir.TID), b1, b2)
	b1.Call(callee, b3)
	b2.Jmp(b3)
	b3.Ret()
	prog := pb.MustBuild()

	g := FromFunction(prog.FuncByName("worker"))
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Error("switch edges missing")
	}
	if !g.HasEdge(1, 3) {
		t.Error("call continuation edge missing")
	}
	if !g.HasEdge(3, g.ExitNode()) {
		t.Error("ret edge missing")
	}
	// The callee's graph is separate.
	cg := FromFunction(prog.FuncByName("callee"))
	if cg.NumNodes() != 2 || !cg.HasEdge(0, cg.ExitNode()) {
		t.Error("callee graph malformed")
	}
}
