package staticlock

import (
	"threadfuser/internal/ir"
)

// state is the phase-1 dataflow fact at one program point: the symbolic
// value of every register.
type state [ir.NumRegs]symval

// joinInto merges src into dst per-register and reports whether dst changed.
func joinInto(dst, src *state) bool {
	changed := false
	for r := range dst {
		merged := symJoin(dst[r], src[r])
		if !symEq(merged, dst[r]) {
			dst[r] = merged
			changed = true
		}
	}
	return changed
}

func topState() state {
	var s state
	for r := range s {
		s[r] = top
	}
	return s
}

// funcState is the per-function fixpoint state, mirroring the staticsimt
// driver: entry/exit facts joined over call sites and returns, per-block
// converged in-states, and seen flags that double as reachability.
type funcState struct {
	f         *ir.Function
	entry     state // join over all call sites (seed for the entry function)
	exit      state // join over all ret points
	in        []state
	entrySeen bool
	exitSeen  bool
	inSeen    []bool
	phantom   bool // no call path from the entry; analyzed standalone
}

type analysis struct {
	prog    *ir.Program
	fns     []*funcState
	changed bool
}

func newAnalysis(p *ir.Program) *analysis {
	a := &analysis{prog: p, fns: make([]*funcState, len(p.Funcs))}
	for i, f := range p.Funcs {
		a.fns[i] = &funcState{
			f:      f,
			in:     make([]state, len(f.Blocks)),
			inSeen: make([]bool, len(f.Blocks)),
		}
	}
	return a
}

// run drives the interprocedural least fixpoint over symbolic register
// values, then analyzes functions with no call path from the entry under an
// all-unknown standalone entry.
func (a *analysis) run() {
	entry := a.fns[a.prog.Entry]
	var seed state
	for r := range seed {
		seed[r] = symRoot(root{kind: rootArg, reg: uint8(r)})
	}
	seed[ir.TID] = symRoot(root{kind: rootTID})
	seed[ir.SP] = symRoot(root{kind: rootSP})
	entry.entry = seed
	entry.entrySeen = true

	for {
		a.changed = false
		for _, fs := range a.fns {
			if fs.entrySeen {
				a.runFunc(fs)
			}
		}
		if !a.changed {
			break
		}
	}

	// Phantom functions: no static call path reaches them, so they never
	// execute — analyze them anyway under an all-Top entry so their lock
	// sites still get (worst-case) shapes, without contributing back into
	// the live program.
	for _, fs := range a.fns {
		if fs.entrySeen {
			continue
		}
		fs.phantom = true
		fs.entry = topState()
		fs.entrySeen = true
		for {
			a.changed = false
			a.runFunc(fs)
			if !a.changed {
				break
			}
		}
	}
}

// runFunc does one monotone sweep over a function: transfer every reached
// block in order, propagating to successors, callees and the exit.
func (a *analysis) runFunc(fs *funcState) {
	if !fs.inSeen[0] {
		fs.in[0] = fs.entry
		fs.inSeen[0] = true
		a.changed = true
	} else if joinInto(&fs.in[0], &fs.entry) {
		a.changed = true
	}
	for bi := range fs.f.Blocks {
		if !fs.inSeen[bi] {
			continue
		}
		st := fs.in[bi]
		a.transferBlock(fs, fs.f.Blocks[bi], &st)
	}
}

// flow joins a state into a block's entry fact.
func (a *analysis) flow(fs *funcState, st *state, target ir.BlockID) {
	if int(target) >= len(fs.in) {
		return
	}
	if !fs.inSeen[target] {
		fs.in[target] = *st
		fs.inSeen[target] = true
		a.changed = true
		return
	}
	if joinInto(&fs.in[target], st) {
		a.changed = true
	}
}

// contributeEntry joins a caller's registers into a callee's entry fact (the
// VM has one register file, so the callee starts from the caller's state).
func (a *analysis) contributeEntry(callee *funcState, st *state) {
	if !callee.entrySeen {
		callee.entry = *st
		callee.entrySeen = true
		a.changed = true
		return
	}
	if joinInto(&callee.entry, st) {
		a.changed = true
	}
}

// joinExit joins a state into the function's exit fact.
func (a *analysis) joinExit(fs *funcState, st *state) {
	if !fs.exitSeen {
		fs.exit = *st
		fs.exitSeen = true
		a.changed = true
		return
	}
	if joinInto(&fs.exit, st) {
		a.changed = true
	}
}

// transferBlock interprets one block's instructions over st and propagates
// the result to successors / callees / the exit. Call continuations only
// flow once the callee's exit fact exists ("skip-if-unseen"): the fixpoint
// revisits when it materializes, and a callee that never returns correctly
// never reaches its continuation.
func (a *analysis) transferBlock(fs *funcState, b *ir.Block, st *state) {
	for ii := 0; ii < len(b.Instrs)-1; ii++ {
		transferInstr(st, &b.Instrs[ii])
	}

	term := b.Terminator()
	switch term.Op {
	case ir.OpJmp:
		a.flow(fs, st, term.Target)
	case ir.OpJcc:
		a.flow(fs, st, term.Target)
		a.flow(fs, st, term.Fall)
	case ir.OpSwitch:
		for _, t := range term.Targets {
			a.flow(fs, st, t)
		}
	case ir.OpRet:
		a.joinExit(fs, st)
	case ir.OpCall:
		if int(term.Callee) >= len(a.fns) {
			return
		}
		if fs.phantom {
			cont := topState()
			a.flow(fs, &cont, term.Fall)
			return
		}
		callee := a.fns[term.Callee]
		a.contributeEntry(callee, st)
		if callee.exitSeen {
			cont := callee.exit
			a.flow(fs, &cont, term.Fall)
		}
	case ir.OpCallR:
		if fs.phantom {
			cont := topState()
			a.flow(fs, &cont, term.Fall)
			return
		}
		var cont state
		seen := false
		for _, callee := range a.fns {
			a.contributeEntry(callee, st)
			if callee.exitSeen {
				if !seen {
					cont = callee.exit
					seen = true
				} else {
					joinInto(&cont, &callee.exit)
				}
			}
		}
		if seen {
			a.flow(fs, &cont, term.Fall)
		}
	}
}

// read is the symbolic value of one source operand. Loads are Top: the
// static view cannot see memory contents.
func read(st *state, o ir.Operand) symval {
	switch o.Kind {
	case ir.OpndReg:
		return st[o.Reg]
	case ir.OpndImm:
		return symConst(o.Imm)
	case ir.OpndMem:
		return top
	}
	return top
}

// addrOf is the symbolic effective address of a memory operand:
// base + scale·index + disp.
func addrOf(st *state, m ir.MemRef) symval {
	v := st[m.Base]
	if m.HasIndex {
		v = symAdd(v, symScale(st[m.Index], int64(m.Scale)))
	}
	return symAdd(v, symConst(m.Disp))
}

// lockShape is the symbolic address a lock operand names: a register's
// value, an immediate, or a memory operand's effective address (address-only
// use, exactly as the VM evaluates it).
func lockShape(st *state, o ir.Operand) symval {
	switch o.Kind {
	case ir.OpndReg:
		return st[o.Reg]
	case ir.OpndImm:
		return symConst(o.Imm)
	case ir.OpndMem:
		return addrOf(st, o.Mem)
	}
	return top
}

// transferInstr interprets one non-terminator instruction over the symbolic
// register state. Memory is untracked: stores have no register effect and
// loads produce Top.
func transferInstr(st *state, in *ir.Instr) {
	def := func(v symval) {
		if in.Dst.Kind == ir.OpndReg {
			st[in.Dst.Reg] = v
		}
	}
	switch in.Op {
	case ir.OpNop, ir.OpLock, ir.OpUnlock, ir.OpIO, ir.OpSpin,
		ir.OpCmp, ir.OpTest, ir.OpFCmp:
		// No register effect (flags are not tracked symbolically).
	case ir.OpMov:
		def(read(st, in.Src))
	case ir.OpLea:
		def(addrOf(st, in.Src.Mem))
	case ir.OpAdd:
		def(symAdd(read(st, in.Dst), read(st, in.Src)))
	case ir.OpSub:
		def(symSub(read(st, in.Dst), read(st, in.Src)))
	case ir.OpMul:
		def(symMul(read(st, in.Dst), read(st, in.Src)))
	case ir.OpShl:
		def(symShl(read(st, in.Dst), read(st, in.Src)))
	case ir.OpNeg:
		def(symNeg(read(st, in.Dst)))
	case ir.OpXor:
		if in.Dst.Kind == ir.OpndReg && in.Src.Kind == ir.OpndReg && in.Dst.Reg == in.Src.Reg {
			def(symConst(0)) // the zeroing idiom stays precise
		} else {
			def(top)
		}
	case ir.OpCmov:
		// dst = cond ? src : dst — the join of both arms.
		def(symJoin(read(st, in.Dst), read(st, in.Src)))
	default:
		// Non-linear or untracked: div, rem, and, or, shr, sar, not,
		// float ops, conversions.
		def(top)
	}
}
