// Package ir defines the x86-flavoured mini instruction set that stands in
// for the CPU binaries ThreadFuser instruments with Intel PIN in the paper.
//
// The ISA is deliberately CISC-shaped: ALU instructions may carry a memory
// operand (base + index*scale + disp), compare instructions set flags that
// conditional jumps consume, and calls/returns manipulate an implicit call
// stack. This preserves the two properties the paper's analysis depends on:
//
//   - dynamic control flow is expressed as a stream of basic blocks whose
//     terminators (conditional jumps, switches, calls, returns) can diverge
//     per thread, and
//   - a single "x86 instruction" can initiate one or more memory accesses,
//     which is what the memory-divergence metric (transactions per memory
//     instruction) and the CISC->RISC cracking in the warp-trace generator
//     both count.
//
// Programs are immutable once built (see Builder) and are executed by
// internal/vm to produce dynamic traces, or in lockstep by internal/hwsim.
package ir

import "fmt"

// Reg names one of the virtual general-purpose registers of a thread.
// Register values are 64-bit; floating-point instructions reinterpret the
// bits as IEEE-754 float64, matching how the tracer treats x86 GPR/XMM state
// as opaque 64-bit quantities.
type Reg uint8

// NumRegs is the size of the architectural register file. SP is reserved as
// the stack pointer and TID is initialized to the thread id by the VM.
const NumRegs = 32

// Reserved registers.
const (
	// SP is the stack pointer. The VM initializes it to the top of the
	// thread's private stack segment; locals are addressed SP-relative.
	SP Reg = NumRegs - 1
	// TID is initialized to the zero-based thread id before the thread's
	// entry function runs. Workloads use it to partition work.
	TID Reg = NumRegs - 2
)

// R returns the i-th general purpose register. It panics if i addresses a
// reserved register so that workload code cannot silently clobber SP/TID.
func R(i int) Reg {
	if i < 0 || Reg(i) >= TID {
		panic(fmt.Sprintf("ir: R(%d) out of general-purpose range [0,%d)", i, int(TID)))
	}
	return Reg(i)
}

// FuncID identifies a function within a Program.
type FuncID uint32

// BlockID identifies a basic block within a Function.
type BlockID uint32

// Opcode enumerates the instruction set.
type Opcode uint8

const (
	// OpNop does nothing; it exists so synthetic workloads can pad blocks
	// to realistic instruction counts.
	OpNop Opcode = iota

	// Data movement and integer ALU. Dst/Src operand rules follow x86: at
	// most one of the two operands may be a memory reference.
	OpMov // dst = src
	OpLea // dst = effective address of src (src must be a memory operand)
	OpAdd // dst += src
	OpSub // dst -= src
	OpMul // dst *= src
	OpDiv // dst /= src (signed; division by zero yields 0, flagged by VM stats)
	OpRem // dst %= src
	OpAnd // dst &= src
	OpOr  // dst |= src
	OpXor // dst ^= src
	OpShl // dst <<= src (mod 64)
	OpShr // dst >>= src (logical, mod 64)
	OpSar // dst >>= src (arithmetic, mod 64)
	OpNeg // dst = -dst
	OpNot // dst = ^dst

	// Flag-setting comparisons consumed by OpJcc.
	OpCmp  // set flags from dst - src (signed and unsigned)
	OpTest // set flags from dst & src

	// OpCmov conditionally moves src into dst when Cond holds over the
	// current flags (x86 cmovcc). Compilers use it for if-conversion,
	// which is how the O2/O3 transforms in internal/opt flatten small
	// branches (paper section IV: aggressive gcc optimization "minimizes
	// code divergence" and makes the analyzer optimistic).
	OpCmov

	// Floating point over float64-interpreted registers.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFSqrt // dst = sqrt(dst)
	OpFAbs  // dst = |dst|
	OpFCmp  // set flags from dst - src, ordered float compare
	OpCvtIF // dst = float64(int64 src)
	OpCvtFI // dst = int64(float64 src), truncating

	// Synchronization intrinsics. The operand's effective address is the
	// lock address; the VM records acquire/release events the analyzer
	// uses for intra-warp serialization (paper section III).
	OpLock
	OpUnlock

	// OpIO models a system call or other I/O region: Src.Imm instructions
	// are recorded as skipped (paper figure 8) and nothing else happens.
	OpIO
	// OpSpin models busy-wait lock spinning: Src.Imm instructions are
	// recorded as skipped with the spin kind.
	OpSpin

	// Terminators. Every basic block ends with exactly one of these.
	OpJmp    // unconditional branch to Target
	OpJcc    // branch to Target if Cond holds over flags, else Fall
	OpSwitch // indirect branch: Targets[clamp(src)] (jump table)
	OpCall   // direct call to Callee; control resumes at Fall on return
	OpCallR  // indirect call: callee FuncID in Src; resumes at Fall
	OpRet    // return from the current function

	numOpcodes
)

// Class buckets opcodes for timing models and trace generation.
type Class uint8

const (
	ClassNop Class = iota
	ClassALU
	ClassFPU
	ClassSFU  // sqrt/div style long-latency
	ClassMem  // set when an instruction carries a memory operand
	ClassCtrl // terminators
	ClassSync // lock/unlock
	ClassSkip // IO/Spin
)

// OpClass returns the base class of an opcode, ignoring memory operands;
// Instr.Class refines it.
func (o Opcode) OpClass() Class {
	switch o {
	case OpNop:
		return ClassNop
	case OpFAdd, OpFSub, OpFMul, OpFAbs, OpFCmp, OpCvtIF, OpCvtFI:
		return ClassFPU
	case OpFDiv, OpFSqrt, OpDiv, OpRem:
		return ClassSFU
	case OpJmp, OpJcc, OpSwitch, OpCall, OpCallR, OpRet:
		return ClassCtrl
	case OpLock, OpUnlock:
		return ClassSync
	case OpIO, OpSpin:
		return ClassSkip
	default:
		return ClassALU
	}
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Opcode) IsTerminator() bool {
	switch o {
	case OpJmp, OpJcc, OpSwitch, OpCall, OpCallR, OpRet:
		return true
	}
	return false
}

var opNames = [numOpcodes]string{
	OpNop: "nop", OpMov: "mov", OpLea: "lea", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSar: "sar", OpNeg: "neg",
	OpNot: "not", OpCmp: "cmp", OpTest: "test",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFSqrt: "fsqrt", OpFAbs: "fabs", OpFCmp: "fcmp",
	OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpCmov: "cmov",
	OpLock: "lock", OpUnlock: "unlock", OpIO: "io", OpSpin: "spin",
	OpJmp: "jmp", OpJcc: "jcc", OpSwitch: "switch", OpCall: "call",
	OpCallR: "callr", OpRet: "ret",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond enumerates branch conditions over the flags set by OpCmp/OpTest/OpFCmp.
type Cond uint8

const (
	CondEQ  Cond = iota // equal
	CondNE              // not equal
	CondLT              // signed less
	CondLE              // signed less-or-equal
	CondGT              // signed greater
	CondGE              // signed greater-or-equal
	CondULT             // unsigned less
	CondUGE             // unsigned greater-or-equal
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge", "ult", "uge"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// OperandKind discriminates Operand.
type OperandKind uint8

const (
	OpndNone OperandKind = iota
	OpndReg
	OpndImm
	OpndMem
)

// MemRef is an x86-style effective address: Base + Index*Scale + Disp,
// accessing Size bytes. Index is only used when HasIndex is set, so that
// register 0 remains usable as an index.
type MemRef struct {
	Base     Reg
	Index    Reg
	HasIndex bool
	Scale    uint8 // 1, 2, 4 or 8
	Disp     int64
	Size     uint8 // access width in bytes: 1, 2, 4 or 8
}

// Operand is a register, immediate, or memory reference.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  MemRef
}

// Rg makes a register operand.
func Rg(r Reg) Operand { return Operand{Kind: OpndReg, Reg: r} }

// Imm makes an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OpndImm, Imm: v} }

// Mem makes a memory operand Base+Disp with the given access size.
func Mem(base Reg, disp int64, size uint8) Operand {
	return Operand{Kind: OpndMem, Mem: MemRef{Base: base, Disp: disp, Size: size}}
}

// MemIdx makes a scaled-index memory operand Base + Index*Scale + Disp.
func MemIdx(base, index Reg, scale uint8, disp int64, size uint8) Operand {
	return Operand{Kind: OpndMem, Mem: MemRef{
		Base: base, Index: index, HasIndex: true, Scale: scale, Disp: disp, Size: size,
	}}
}

// IsMem reports whether the operand is a memory reference.
func (o Operand) IsMem() bool { return o.Kind == OpndMem }

func (o Operand) String() string {
	switch o.Kind {
	case OpndNone:
		return "_"
	case OpndReg:
		switch o.Reg {
		case SP:
			return "sp"
		case TID:
			return "tid"
		}
		return fmt.Sprintf("r%d", o.Reg)
	case OpndImm:
		return fmt.Sprintf("$%d", o.Imm)
	case OpndMem:
		m := o.Mem
		if m.HasIndex {
			return fmt.Sprintf("[r%d+r%d*%d%+d]:%d", m.Base, m.Index, m.Scale, m.Disp, m.Size)
		}
		return fmt.Sprintf("[r%d%+d]:%d", m.Base, m.Disp, m.Size)
	}
	return "?"
}

// Instr is a single instruction. Non-terminators use Dst/Src; terminators
// use the control fields. A block's final instruction must be a terminator.
type Instr struct {
	Op  Opcode
	Dst Operand
	Src Operand

	// Control fields (terminators only).
	Cond    Cond
	Target  BlockID   // OpJmp target, OpJcc taken target
	Fall    BlockID   // OpJcc fall-through; OpCall/OpCallR continuation
	Callee  FuncID    // OpCall
	Targets []BlockID // OpSwitch jump table; Src selects, out-of-range clamps
}

// Class returns the timing class of the instruction, promoting any
// instruction carrying a memory operand to ClassMem.
func (in *Instr) Class() Class {
	if in.Dst.IsMem() || (in.Src.IsMem() && in.Op != OpLea && in.Op != OpLock && in.Op != OpUnlock) {
		return ClassMem
	}
	return in.Op.OpClass()
}

// MemOperand returns the instruction's memory operand, if any, and whether
// the access loads, stores, or both (read-modify-write).
func (in *Instr) MemOperand() (m MemRef, load, store bool) {
	if in.Op == OpLea || in.Op == OpLock || in.Op == OpUnlock {
		return MemRef{}, false, false // address-only uses
	}
	if in.Src.IsMem() {
		return in.Src.Mem, true, false
	}
	if in.Dst.IsMem() {
		switch in.Op {
		case OpMov:
			return in.Dst.Mem, false, true // plain store
		case OpCmp, OpTest, OpFCmp:
			return in.Dst.Mem, true, false // compare reads memory
		default:
			return in.Dst.Mem, true, true // read-modify-write
		}
	}
	return MemRef{}, false, false
}

// LockOperand returns the lock-word operand of an OpLock/OpUnlock and true,
// plus whether the instruction releases. The operand names the lock by
// address: a register operand's value, an immediate's value, or a memory
// operand's *effective address* (the lock word itself is never loaded — the
// memory form is address-only, exactly as the VM evaluates it).
func (in *Instr) LockOperand() (o Operand, release, ok bool) {
	if in.Op != OpLock && in.Op != OpUnlock {
		return Operand{}, false, false
	}
	return in.Src, in.Op == OpUnlock, true
}

func (in *Instr) String() string {
	switch in.Op {
	case OpJmp:
		return fmt.Sprintf("jmp b%d", in.Target)
	case OpJcc:
		return fmt.Sprintf("j%s b%d else b%d", in.Cond, in.Target, in.Fall)
	case OpSwitch:
		return fmt.Sprintf("switch %s %v", in.Src, in.Targets)
	case OpCall:
		return fmt.Sprintf("call f%d cont b%d", in.Callee, in.Fall)
	case OpCallR:
		return fmt.Sprintf("callr %s cont b%d", in.Src, in.Fall)
	case OpRet:
		return "ret"
	case OpNeg, OpNot, OpFSqrt, OpFAbs:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	case OpCmov:
		return fmt.Sprintf("cmov%s %s, %s", in.Cond, in.Dst, in.Src)
	case OpLock, OpUnlock, OpIO, OpSpin:
		return fmt.Sprintf("%s %s", in.Op, in.Src)
	}
	return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
}

// Block is a basic block: straight-line instructions ended by a terminator.
type Block struct {
	ID     BlockID
	Name   string
	Instrs []Instr
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr { return &b.Instrs[len(b.Instrs)-1] }

// NumInstrs returns the instruction count of the block.
func (b *Block) NumInstrs() int { return len(b.Instrs) }

// Function is a named collection of basic blocks; block 0 is the entry.
type Function struct {
	ID     FuncID
	Name   string
	Blocks []*Block
}

// Program is an immutable set of functions with a designated per-thread
// entry function (the "worker" each traced thread runs, mirroring how the
// paper traces one OpenMP iteration / pthread worker invocation per thread).
type Program struct {
	Name  string
	Funcs []*Function
	Entry FuncID

	byName map[string]*Function
}

// Func returns the function with the given id.
func (p *Program) Func(id FuncID) *Function { return p.Funcs[id] }

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Function { return p.byName[name] }

// NumInstrsStatic returns the total static instruction count.
func (p *Program) NumInstrsStatic() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}
