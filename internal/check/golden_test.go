package check

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"threadfuser/internal/core"
	"threadfuser/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot files")

// goldenEntry pins the analyzer's headline numbers for one Table-I workload
// at the snapshot configuration (seed 1, default threads, warp width 32,
// serial replay, locks off). Every field is compared exactly: floats survive
// a JSON round trip bit-for-bit, so any drift is a real behaviour change.
type goldenEntry struct {
	Threads            int     `json:"threads"`
	Warps              int     `json:"warps"`
	Efficiency         float64 `json:"efficiency"`
	WeightedEfficiency float64 `json:"weighted_efficiency"`
	TotalInstrs        uint64  `json:"total_instrs"`
	LockstepInstrs     uint64  `json:"lockstep_instrs"`
	MemInstrs          uint64  `json:"mem_instrs"`
	HeapTx             uint64  `json:"heap_tx"`
	StackTx            uint64  `json:"stack_tx"`
	LockSerializations uint64  `json:"lock_serializations"`
	SkippedIO          uint64  `json:"skipped_io"`
	SkippedSpin        uint64  `json:"skipped_spin"`
}

func snapshotEntry(r *core.Report) goldenEntry {
	return goldenEntry{
		Threads:            r.Threads,
		Warps:              r.Warps,
		Efficiency:         r.Efficiency,
		WeightedEfficiency: r.WeightedEfficiency,
		TotalInstrs:        r.TotalInstrs,
		LockstepInstrs:     r.LockstepInstrs,
		MemInstrs:          r.MemInstrs,
		HeapTx:             r.HeapTx,
		StackTx:            r.StackTx,
		LockSerializations: r.LockSerializations,
		SkippedIO:          r.SkippedIO,
		SkippedSpin:        r.SkippedSpin,
	}
}

// TestGoldenTableI compares every Table-I workload against the committed
// snapshot. Run with -update after an intentional behaviour change:
//
//	go test ./internal/check -run TestGoldenTableI -update
func TestGoldenTableI(t *testing.T) {
	path := filepath.Join("testdata", "golden_table1.json")
	got := make(map[string]goldenEntry)
	for _, w := range workloads.TableI() {
		inst, err := w.Instantiate(workloads.Config{Seed: 1})
		if err != nil {
			t.Fatalf("%s: instantiate: %v", w.Name, err)
		}
		tr, err := inst.Trace()
		if err != nil {
			t.Fatalf("%s: trace: %v", w.Name, err)
		}
		rep, err := core.Analyze(tr, core.Options{WarpSize: 32})
		if err != nil {
			t.Fatalf("%s: analyze: %v", w.Name, err)
		}
		got[w.Name] = snapshotEntry(rep)
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d workloads)", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading snapshot (run with -update to create it): %v", err)
	}
	want := make(map[string]goldenEntry)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: in snapshot but not in workloads.TableI(); run -update if removed intentionally", name)
			continue
		}
		if g != w {
			t.Errorf("%s: drift from golden snapshot\n got: %+v\nwant: %+v\nrun with -update if this change is intentional", name, g, w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: new Table-I workload missing from snapshot; run with -update", name)
		}
	}
}
