package trace_test

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"testing"

	"threadfuser/internal/core"
	"threadfuser/internal/trace"
	"threadfuser/internal/workloads"
)

// TestGoldenCodecEquivalence is the codec-equivalence golden test: for every
// built-in workload, the v1, v2, and v3 encodings decode to deeply-equal
// traces (including the parallel v3 path), and the analyzer produces
// bit-identical Reports from each — so nothing an analysis can observe
// depends on which container version a trace travelled through.
func TestGoldenCodecEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("traces and analyzes every workload")
	}
	encoders := []struct {
		name string
		enc  func(io.Writer, *trace.Trace) error
	}{
		{"v1", trace.Encode},
		{"v2", trace.EncodeCompact},
		{"v3", trace.EncodeIndexed},
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := w.Instantiate(workloads.Config{Threads: 8, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := inst.Trace()
			if err != nil {
				t.Fatal(err)
			}
			var reports [][]byte
			for _, e := range encoders {
				var buf bytes.Buffer
				if err := e.enc(&buf, tr); err != nil {
					t.Fatalf("%s encode: %v", e.name, err)
				}
				got, err := trace.Decode(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("%s decode: %v", e.name, err)
				}
				if !reflect.DeepEqual(tr, got) {
					t.Fatalf("%s: decode(encode(tr)) != tr", e.name)
				}
				if e.name == "v3" {
					par, err := trace.DecodeParallel(bytes.NewReader(buf.Bytes()), int64(buf.Len()), 0)
					if err != nil {
						t.Fatalf("v3 parallel decode: %v", err)
					}
					if !reflect.DeepEqual(tr, par) {
						t.Fatal("v3: DecodeParallel(encode(tr)) != tr")
					}
				}
				rep, err := core.Analyze(got, core.Defaults())
				if err != nil {
					t.Fatalf("%s analyze: %v", e.name, err)
				}
				js, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				reports = append(reports, js)
			}
			for i := 1; i < len(reports); i++ {
				if !bytes.Equal(reports[0], reports[i]) {
					t.Errorf("report from %s-decoded trace differs from v1's", encoders[i].name)
				}
			}
		})
	}
}
