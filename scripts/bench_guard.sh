#!/bin/sh
# bench_guard: run the decode and replay benchmarks and fail loudly if any
# row regresses past the committed limits in scripts/bench_baseline.json:
#   max_allocs_per_op  allocation ceiling. allocs/op is exact at any
#                      benchtime, which is what makes it guardable in CI: the
#                      arena decoder does a fixed handful of allocations per
#                      decode and the fused replay a fixed handful per replay,
#                      so an accidental return to per-record allocation shows
#                      up as a 100x jump no amount of runner noise can hide.
#   min_mb_per_s       throughput floor. This is a *regime* check, not a
#                      perf benchmark: floors carry >2x headroom below
#                      steady-state numbers, so they stay quiet under runner
#                      noise but fail if a row falls back to a slow path
#                      (e.g. the pre-fusion per-record replay at ~145 MB/s
#                      against replay_serial's 250 MB/s floor).
#
# Decode rows run at one iteration (allocs-focused; a single iteration says
# nothing about MB/s, so decode rows carry no floors). Replay rows run a few
# dozen iterations so their MB/s is past cold-cache warmup and meaningfully
# comparable against the floors.
#
# Environment:
#   BENCHTIME         decode -benchtime (default 1x)
#   REPLAY_BENCHTIME  replay -benchtime (default 20x)
set -e
cd "$(dirname "$0")/.."

baseline=scripts/bench_baseline.json

raw=$(go test -run '^$' \
	-bench 'BenchmarkDecodeV(1Serial|2Serial|3Serial|3Parallel)$' \
	-benchmem -benchtime "${BENCHTIME:-1x}" -count=1 .)
echo "$raw"
rawr=$(go test -run '^$' \
	-bench 'BenchmarkReplay(Serial|Parallel|Allocs)$' \
	-benchmem -benchtime "${REPLAY_BENCHTIME:-20x}" -count=1 .)
echo "$rawr"
raw=$(printf '%s\n%s' "$raw" "$rawr")

printf '%s\n' "$raw" | awk -v baseline="$baseline" '
BEGIN {
	while ((getline line < baseline) > 0) {
		if (match(line, /"(decode|replay)_[a-z0-9_]+"/)) {
			name = substr(line, RSTART + 1, RLENGTH - 2)
			if (match(line, /"max_allocs_per_op": [0-9]+/))
				ceil[name] = substr(line, RSTART + 21, RLENGTH - 21)
			if (match(line, /"min_mb_per_s": [0-9]+/))
				floor[name] = substr(line, RSTART + 16, RLENGTH - 16)
			known[name] = 1
		}
	}
	close(baseline)
	if (length(known) == 0) {
		print "bench_guard: no limits parsed from " baseline > "/dev/stderr"
		exit 1
	}
}
/^Benchmark(Decode|Replay)/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	# DecodeV3Serial -> decode_v3_serial (same keying as bench.sh rows)
	key = ""
	for (j = 1; j <= length(name); j++) {
		ch = substr(name, j, 1)
		if (ch >= "A" && ch <= "Z") {
			if (key != "") key = key "_"
			key = key tolower(ch)
		} else key = key ch
	}
	gsub(/v_([0-9])/, "v\\1", key)
	mbs = "n/a"; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "MB/s") mbs = $i
		else if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (allocs == "") {
		print "bench_guard: no allocs/op in row " $1 " (need -benchmem)" > "/dev/stderr"
		exit 1
	}
	seen[key] = 1
	status = "ok"
	if (!(key in known)) {
		status = "NO BASELINE"
		bad = bad " " key
	} else {
		if (key in ceil && allocs + 0 > ceil[key] + 0) {
			status = sprintf("ALLOC REGRESSION (ceiling %d)", ceil[key])
			bad = bad " " key
		}
		if (key in floor && (mbs == "n/a" || mbs + 0 < floor[key] + 0)) {
			status = sprintf("THROUGHPUT REGRESSION (floor %d MB/s)", floor[key])
			bad = bad " " key
		}
	}
	printf "bench_guard: %-20s %8s allocs/op  %10s MB/s  %s\n", key, allocs, mbs, status
}
END {
	for (k in known)
		if (!(k in seen)) {
			print "bench_guard: baseline row " k " missing from bench output" > "/dev/stderr"
			exit 1
		}
	if (bad != "") {
		print "bench_guard: rows past their committed baseline:" bad > "/dev/stderr"
		exit 1
	}
	print "bench_guard: all rows within committed allocs/op ceilings and MB/s floors"
}'
