package workloads

import (
	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// The two micro benchmarks of Table I: "simple vector multiply-add kernels
// with different memory accessing patterns" (section IV). Both are fully
// convergent; they differ only in indexing, which is exactly what separates
// their memory-divergence numbers.

// buildVectorKernel builds c[idx] = a[idx]*b[idx] + c[idx] over iters
// elements per thread. When gridStride is true, thread t touches elements
// t, t+N, t+2N, ... (lane-adjacent, coalesced); otherwise each thread owns a
// contiguous chunk (lane addresses 8*iters bytes apart, uncoalesced).
func buildVectorKernel(name string, gridStride bool) func(cfg Config) (*ir.Program, SetupFn, error) {
	return func(cfg Config) (*ir.Program, SetupFn, error) {
		iters := cfg.scale(32)
		n := cfg.Threads * iters

		pb := ir.NewBuilder(name)
		w := pb.NewFunc("worker")
		pre := w.NewBlock("pre")
		// Args: r0=a, r1=b, r2=c. r3 = loop counter, r4 = idx, r5 = value.
		l := loopN(w, pre, "vec", 3, 0, im(int64(iters)))
		if gridStride {
			// idx = tid + k*threads
			l.Body.Mov(rg(4), rg(3)).
				Mul(rg(4), im(int64(cfg.Threads))).
				Add(rg(4), tid())
		} else {
			// idx = tid*iters + k
			l.Body.Mov(rg(4), tid()).
				Mul(rg(4), im(int64(iters))).
				Add(rg(4), rg(3))
		}
		l.Body.Mov(rg(5), idx8(0, 4, 8, 0)). // a[idx]
							FMul(rg(5), idx8(1, 4, 8, 0)). // * b[idx]
							FAdd(rg(5), idx8(2, 4, 8, 0)). // + c[idx]
							Mov(idx8(2, 4, 8, 0), rg(5))   // c[idx] = ...
		l.Next(l.Body)
		l.Exit.Ret()
		prog, err := pb.Build()
		if err != nil {
			return nil, nil, err
		}

		setup := func(p *vm.Process) (ArgFn, error) {
			r := cfg.rng()
			a := p.AllocGlobal(uint64(8 * n))
			b := p.AllocGlobal(uint64(8 * n))
			c := p.AllocGlobal(uint64(8 * n))
			for i := 0; i < n; i++ {
				p.WriteF64(a+uint64(8*i), r.Float64())
				p.WriteF64(b+uint64(8*i), r.Float64())
			}
			return func(tid int, th *vm.Thread) {
				th.SetReg(ir.R(0), int64(a))
				th.SetReg(ir.R(1), int64(b))
				th.SetReg(ir.R(2), int64(c))
			}, nil
		}
		return prog, setup, nil
	}
}

var wlVectorAdd = register(&Workload{
	Name:           "vectoradd",
	Suite:          SuiteMicro,
	Desc:           "vector multiply-add, grid-stride (coalesced) access",
	DefaultThreads: 64,
	PaperThreads:   1024,
	HasGPUImpl:     true,
	Build:          buildVectorKernel("vectoradd", true),
})

var wlUncoalesced = register(&Workload{
	Name:           "uncoalesced",
	Suite:          SuiteMicro,
	Desc:           "vector multiply-add, per-thread-chunk (uncoalesced) access",
	DefaultThreads: 64,
	PaperThreads:   1024,
	HasGPUImpl:     true,
	Build:          buildVectorKernel("uncoalesced", false),
})
