module threadfuser

go 1.22
