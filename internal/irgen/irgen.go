// Package irgen generates random, structurally valid, terminating mini-ISA
// programs. The differential test suites use it to fuzz the two independent
// SIMT engines against each other (the trace-replay analyzer must agree
// exactly with the live lockstep oracle on lock-free programs) and to check
// that the compiler transforms in internal/opt preserve semantics on
// programs nobody hand-wrote.
//
// Generated programs are guaranteed to terminate: every loop is counter
// bounded and the call graph is acyclic (functions may only call
// lower-indexed functions). Control flow is data-dependent — branch
// conditions read registers derived from the thread id and from loads of a
// caller-provided shared input region — so different threads genuinely
// diverge.
//
// Register discipline:
//
//	r0-r5  data registers (generated instructions)
//	r6,r7  loop counters (one per nesting level; bodies never write them)
//	r8     per-thread private region base (set by the test harness)
//	r9     shared read-only region base (set by the test harness)
package irgen

import (
	"math/rand"

	"threadfuser/internal/ir"
)

// Params bound the generated program.
type Params struct {
	Seed int64
	// Funcs is the number of functions (≥1); function 0 may call nothing,
	// higher functions may call lower ones.
	Funcs int
	// MaxDepth bounds structural nesting (diamonds within loops etc.).
	MaxDepth int
	// MaxBodyLen bounds the number of structural items per body.
	MaxBodyLen int
	// SharedWords / PrivateWords are the sizes (in 8-byte words) of the
	// regions the harness provides in r9 and r8.
	SharedWords  int
	PrivateWords int
	// AllowSharedStores permits stores to the shared region. Differential
	// tests against the lockstep oracle must leave this off: lockstep and
	// sequential executions interleave shared writes differently (as real
	// hardware would), so exact agreement is only defined without them.
	AllowSharedStores bool
}

// DefaultParams returns sensible fuzzing bounds.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:         seed,
		Funcs:        3,
		MaxDepth:     3,
		MaxBodyLen:   5,
		SharedWords:  64,
		PrivateWords: 32,
	}
}

// Random generates a program from the parameters. Besides straight-line
// code, diamonds, counted loops and direct calls, generated programs may
// contain jump tables (switch), indirect calls through a function-id
// computation, and bounded self-recursion — every control construct the
// SIMT engines must handle.
func Random(p Params) *ir.Program {
	if p.Funcs < 1 {
		p.Funcs = 1
	}
	if p.MaxDepth < 1 {
		p.MaxDepth = 1
	}
	if p.MaxBodyLen < 1 {
		p.MaxBodyLen = 1
	}
	if p.SharedWords < 1 {
		p.SharedWords = 1
	}
	if p.PrivateWords < 1 {
		p.PrivateWords = 1
	}
	g := &gen{r: rand.New(rand.NewSource(p.Seed)), p: p, pb: ir.NewBuilder("irgen")}
	for i := 0; i < p.Funcs; i++ {
		f := g.pb.NewFunc(funcName(i))
		g.funcs = append(g.funcs, f)
		var entry *ir.BlockBuilder
		if g.r.Intn(3) == 0 {
			// Bounded self-recursion: r5 counts down across the recursive
			// calls (registers are thread-global, so the countdown spans
			// the whole recursion). Divergent depths come from callers
			// seeding r5 from thread-dependent data.
			guard := f.NewBlock("rec_guard")
			body := f.NewBlock("rec_body")
			leaf := f.NewBlock("rec_leaf")
			cont := f.NewBlock("rec_cont")
			// Clamp the countdown at every entry: callers may have stored
			// anything in r5, and And never increases a clamped value, so
			// the depth of any recursion chain is at most 4.
			guard.And(ir.Rg(ir.Reg(5)), ir.Imm(3)).
				Cmp(ir.Rg(ir.Reg(5)), ir.Imm(0)).
				Jcc(ir.CondLE, leaf, body)
			body.Sub(ir.Rg(ir.Reg(5)), ir.Imm(1)).Call(f, cont)
			leaf.Nop(2).Jmp(cont)
			entry = cont
		} else {
			entry = f.NewBlock("entry")
		}
		tail := g.body(f, entry, i, p.MaxDepth)
		tail.Ret()
	}
	// The highest-indexed function is the entry: it can reach everything.
	g.pb.SetEntry(g.funcs[len(g.funcs)-1])
	return g.pb.MustBuild()
}

func funcName(i int) string { return "fn" + string(rune('A'+i%26)) }

type gen struct {
	r     *rand.Rand
	p     Params
	pb    *ir.Builder
	funcs []*ir.FuncBuilder
}

const (
	privBase = ir.Reg(8)
	shrdBase = ir.Reg(9)
)

// Data register r5 doubles as the recursion countdown; seeding it from the
// thread id in straight-line code keeps recursion depths bounded (≤ a few)
// and thread-divergent.

func dataReg(r *rand.Rand) ir.Operand { return ir.Rg(ir.Reg(r.Intn(6))) }

// body emits a structured body into cur and returns the block where control
// continues. fnIdx limits callees; depth limits nesting.
func (g *gen) body(f *ir.FuncBuilder, cur *ir.BlockBuilder, fnIdx, depth int) *ir.BlockBuilder {
	items := 1 + g.r.Intn(g.p.MaxBodyLen)
	for i := 0; i < items; i++ {
		switch choice := g.r.Intn(12); {
		case choice < 4 || depth == 0:
			g.straightLine(cur)
		case choice < 6:
			cur = g.diamond(f, cur, fnIdx, depth-1)
		case choice < 8:
			cur = g.loop(f, cur, fnIdx, depth-1)
		case choice < 9:
			cur = g.jumpTable(f, cur, fnIdx, depth-1)
		case choice < 10:
			cur = g.indirectCall(f, cur, fnIdx)
		default:
			cur = g.call(f, cur, fnIdx)
		}
	}
	return cur
}

// jumpTable emits a data-dependent switch over 2..4 small arms and returns
// the join block.
func (g *gen) jumpTable(f *ir.FuncBuilder, cur *ir.BlockBuilder, fnIdx, depth int) *ir.BlockBuilder {
	arms := 2 + g.r.Intn(3)
	join := f.NewBlock("swj")
	sel := ir.Reg(g.r.Intn(6))
	cur.Mov(ir.Rg(sel), ir.Rg(ir.TID)).
		Add(ir.Rg(sel), dataReg(g.r)).
		Rem(ir.Rg(sel), ir.Imm(int64(arms)))
	targets := make([]*ir.BlockBuilder, arms)
	for a := 0; a < arms; a++ {
		targets[a] = f.NewBlock("arm")
	}
	cur.Switch(ir.Rg(sel), targets...)
	for a := 0; a < arms; a++ {
		g.body(f, targets[a], fnIdx, depth).Jmp(join)
	}
	join.Nop(1)
	return join
}

// indirectCall emits a call through a computed function id (a jump-table
// of functions), exercising per-lane callee divergence. The callee id is
// derived from the thread id so lanes genuinely split.
func (g *gen) indirectCall(f *ir.FuncBuilder, cur *ir.BlockBuilder, fnIdx int) *ir.BlockBuilder {
	if fnIdx == 0 {
		g.straightLine(cur)
		return cur
	}
	sel := ir.Reg(g.r.Intn(6))
	next := f.NewBlock("icont")
	cur.Mov(ir.Rg(sel), ir.Rg(ir.TID)).
		Rem(ir.Rg(sel), ir.Imm(int64(fnIdx))).
		CallReg(ir.Rg(sel), next)
	return next
}

// straightLine appends a few ALU and memory instructions to cur.
func (g *gen) straightLine(b *ir.BlockBuilder) {
	n := 1 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		switch g.r.Intn(8) {
		case 0:
			b.Mov(dataReg(g.r), ir.Imm(int64(g.r.Intn(1000)-500)))
		case 1:
			b.Add(dataReg(g.r), dataReg(g.r))
		case 2:
			b.Mul(dataReg(g.r), ir.Imm(int64(g.r.Intn(7)+1)))
		case 3:
			b.Xor(dataReg(g.r), dataReg(g.r))
		case 4:
			b.Mov(dataReg(g.r), ir.Rg(ir.TID))
		case 5: // shared load, data-dependent index
			idx := ir.Reg(g.r.Intn(6))
			b.Mov(ir.Rg(idx), ir.Rg(ir.TID)).
				Rem(ir.Rg(idx), ir.Imm(int64(g.p.SharedWords))).
				Mov(dataReg(g.r), ir.MemIdx(shrdBase, idx, 8, 0, 8))
		case 6: // private store
			off := int64(8 * g.r.Intn(g.p.PrivateWords))
			b.Mov(ir.Mem(privBase, off, 8), dataReg(g.r))
		case 7: // private load or RMW
			off := int64(8 * g.r.Intn(g.p.PrivateWords))
			if g.r.Intn(2) == 0 {
				b.Mov(dataReg(g.r), ir.Mem(privBase, off, 8))
			} else {
				b.Add(ir.Mem(privBase, off, 8), dataReg(g.r))
			}
		}
	}
	if g.p.AllowSharedStores && g.r.Intn(4) == 0 {
		idx := ir.Reg(g.r.Intn(6))
		b.Mov(ir.Rg(idx), ir.Rg(ir.TID)).
			Rem(ir.Rg(idx), ir.Imm(int64(g.p.SharedWords))).
			Mov(ir.MemIdx(shrdBase, idx, 8, 0, 8), dataReg(g.r))
	}
}

// diamond emits a two-sided branch (or hammock) on a data-dependent
// condition and returns the join block.
func (g *gen) diamond(f *ir.FuncBuilder, cur *ir.BlockBuilder, fnIdx, depth int) *ir.BlockBuilder {
	taken := f.NewBlock("t")
	fall := f.NewBlock("f")
	join := f.NewBlock("j")
	conds := []ir.Cond{ir.CondEQ, ir.CondNE, ir.CondLT, ir.CondGE, ir.CondGT, ir.CondLE}
	c := conds[g.r.Intn(len(conds))]
	src := dataReg(g.r)
	cur.Cmp(src, ir.Imm(int64(g.r.Intn(9)-4))).Jcc(c, taken, fall)
	g.body(f, taken, fnIdx, depth).Jmp(join)
	if g.r.Intn(3) == 0 { // hammock: empty else side
		fall.Jmp(join)
	} else {
		g.body(f, fall, fnIdx, depth).Jmp(join)
	}
	join.Nop(1)
	return join
}

// loop emits a counter-bounded loop whose trip count may be thread
// dependent (tid%k), and returns the exit block.
func (g *gen) loop(f *ir.FuncBuilder, cur *ir.BlockBuilder, fnIdx, depth int) *ir.BlockBuilder {
	counter := ir.Reg(6 + depth%2) // alternate counters across nesting
	head := f.NewBlock("head")
	exit := f.NewBlock("exit")
	if g.r.Intn(2) == 0 {
		// Thread-dependent trip count: 1 + tid % k.
		cur.Mov(ir.Rg(counter), ir.Rg(ir.TID)).
			Rem(ir.Rg(counter), ir.Imm(int64(1+g.r.Intn(4)))).
			Add(ir.Rg(counter), ir.Imm(1)).
			Neg(ir.Rg(counter))
	} else {
		cur.Mov(ir.Rg(counter), ir.Imm(int64(-(1 + g.r.Intn(4)))))
	}
	cur.Jmp(head)
	// The counter counts up from -trips to 0 so bodies that clobber data
	// registers cannot extend the loop.
	tail := g.body(f, head, fnIdx, depth)
	tail.Add(ir.Rg(counter), ir.Imm(1)).
		Cmp(ir.Rg(counter), ir.Imm(0)).
		Jcc(ir.CondLT, head, exit)
	exit.Nop(1)
	return exit
}

// call emits a call to a strictly lower-indexed function (keeping the call
// graph acyclic), if one exists.
func (g *gen) call(f *ir.FuncBuilder, cur *ir.BlockBuilder, fnIdx int) *ir.BlockBuilder {
	if fnIdx == 0 {
		g.straightLine(cur)
		return cur
	}
	callee := g.funcs[g.r.Intn(fnIdx)]
	next := f.NewBlock("cont")
	cur.Call(callee, next)
	return next
}
