package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || !almost(r, 1) {
		t.Errorf("Pearson = %v, %v; want 1", r, err)
	}
	for i := range y {
		y[i] = -y[i]
	}
	r, _ = Pearson(x, y)
	if !almost(r, -1) {
		t.Errorf("Pearson anti = %v, want -1", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r, _ := Pearson([]float64{1, 1, 1}, []float64{2, 3, 4}); r != 0 {
		t.Errorf("zero-variance Pearson = %v, want 0", r)
	}
	if r, _ := Pearson([]float64{1}, []float64{2}); r != 0 {
		t.Errorf("single-point Pearson = %v, want 0", r)
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not reported")
	}
}

func TestMAE(t *testing.T) {
	m, err := MAE([]float64{1.1, 0.9}, []float64{1, 1})
	if err != nil || !almost(m, 0.1) {
		t.Errorf("MAE = %v, %v; want 0.1", m, err)
	}
	m, _ = MAEAbs([]float64{0.5, 0.7}, []float64{0.4, 0.9})
	if !almost(m, 0.15) {
		t.Errorf("MAEAbs = %v, want 0.15", m)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); !almost(g, 4) {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean([]float64{0, 4, 0, 4}); !almost(g, 4) {
		t.Errorf("GeoMean skips zeros: got %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
}

func TestStdDev(t *testing.T) {
	if sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(sd, 2) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

// Property: Pearson is invariant under positive affine transforms and
// bounded by [-1, 1].
func TestPearsonProperties(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 3 + rr.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rr.NormFloat64()
			y[i] = rr.NormFloat64()
		}
		p1, _ := Pearson(x, y)
		if p1 < -1-1e-9 || p1 > 1+1e-9 {
			return false
		}
		a, b := 1+rr.Float64()*5, rr.NormFloat64()*10
		x2 := make([]float64, n)
		for i := range x {
			x2[i] = a*x[i] + b
		}
		p2, _ := Pearson(x2, y)
		return math.Abs(p1-p2) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MAEAbs is symmetric and zero iff inputs are equal.
func TestMAEProperties(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rr.NormFloat64(), rr.NormFloat64()
		}
		ab, _ := MAEAbs(a, b)
		ba, _ := MAEAbs(b, a)
		aa, _ := MAEAbs(a, a)
		return almost(ab, ba) && aa == 0 && ab >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWithinOneStdDev(t *testing.T) {
	// Normal-ish data: roughly 2/3 within one sigma.
	r := rand.New(rand.NewSource(5))
	errs := make([]float64, 2000)
	for i := range errs {
		errs[i] = r.NormFloat64()
	}
	frac := WithinOneStdDev(errs)
	if frac < 0.6 || frac > 0.76 {
		t.Errorf("WithinOneStdDev of normal data = %v, want ~0.68", frac)
	}
}
