package simt

import (
	"fmt"
	"math/bits"
	"sort"

	"threadfuser/internal/cfg"
	"threadfuser/internal/ipdom"
	"threadfuser/internal/trace"
	"threadfuser/internal/warp"
)

// MaxWarpSize bounds the warp width (lane masks are 64-bit words).
const MaxWarpSize = 64

// Options configure a replay.
type Options struct {
	// WarpSize is the SIMD width being modelled (paper explores 8..32).
	WarpSize int
	// EmulateLocks enables intra-warp critical-section serialization
	// (paper section III and figure 9). When disabled, lock operations
	// are traced but do not perturb control flow, modelling the paper's
	// fine-grain-locking assumption.
	EmulateLocks bool
	// LockReconvergence selects where serialized critical sections
	// reconverge. The paper picks the matching release of one contender
	// and explicitly defers studying alternatives ("different choices of
	// reconvergence points may have varying effects on the control flow
	// efficiency, but we defer this investigation to future research");
	// this knob implements that study.
	LockReconvergence LockReconvergence
	// Listener, if non-nil, observes every lockstep block execution; the
	// warp-trace generator uses it.
	Listener Listener
}

// LockReconvergence enumerates critical-section reconvergence policies.
type LockReconvergence uint8

const (
	// ReconvergeAtRelease reconverges just past the matching release in
	// the first contender's trace — the paper's policy. Tight sections
	// resume lockstep as soon as possible.
	ReconvergeAtRelease LockReconvergence = iota
	// ReconvergeAtFunctionExit reconverges at the virtual exit of the
	// function containing the acquire — the conservative choice: the
	// whole remainder of the function serializes, but mismatched
	// lock/unlock paths can never strand a lane.
	ReconvergeAtFunctionExit
)

func (l LockReconvergence) String() string {
	if l == ReconvergeAtFunctionExit {
		return "function-exit"
	}
	return "release"
}

// BlockExec describes one lockstep execution of a basic block, delivered to
// a Listener.
type BlockExec struct {
	Warp        int
	Func, Block uint32
	Depth       int32
	// Lanes lists the active lane indices; Threads the corresponding
	// global thread ids; Records each active lane's trace record for this
	// block (carrying its memory accesses). The three slices are parallel
	// and only valid for the duration of the callback.
	Lanes   []int
	Threads []int
	Records []*trace.Record
	// NumLanes is the warp's configured width.
	NumLanes int
}

// Listener observes block executions during replay.
type Listener interface {
	OnBlock(*BlockExec)
}

// Replay runs the SIMT-stack emulation over all warps and returns the
// aggregated metrics.
func Replay(t *trace.Trace, graphs map[uint32]*cfg.DCFG, pdoms map[uint32]*ipdom.PostDom, warps []warp.Warp, opts Options) (*Result, error) {
	if opts.WarpSize <= 0 || opts.WarpSize > MaxWarpSize {
		return nil, fmt.Errorf("simt: warp size %d out of range [1,%d]", opts.WarpSize, MaxWarpSize)
	}
	res := &Result{
		WarpSize: opts.WarpSize,
		Warps:    make([]WarpMetrics, len(warps)),
		Funcs:    make(map[uint32]*FuncMetrics),
		Branches: make(map[BranchKey]*BranchStats),
	}
	for wi, w := range warps {
		if len(w) > opts.WarpSize {
			return nil, fmt.Errorf("simt: warp %d has %d threads > warp size %d", wi, len(w), opts.WarpSize)
		}
		wr := &warpReplay{
			warpIndex: wi,
			res:       res,
			wm:        &res.Warps[wi],
			graphs:    graphs,
			pdoms:     pdoms,
			opts:      opts,
			tids:      w,
		}
		for _, tid := range w {
			if tid < 0 || tid >= len(t.Threads) {
				return nil, fmt.Errorf("simt: warp %d references thread %d outside trace", wi, tid)
			}
			wr.cursors = append(wr.cursors, newCursor(t.Threads[tid]))
		}
		if err := wr.run(); err != nil {
			return nil, fmt.Errorf("simt: warp %d: %w", wi, err)
		}
		for _, c := range wr.cursors {
			res.SkippedIO += c.skipIO
			res.SkippedSpin += c.skipSpin
		}
	}
	return res, nil
}

// entry is one SIMT-stack entry.
type entry struct {
	mask    uint64
	rpc     position // reconvergence position
	hasRPC  bool
	last    position // most recently executed position (for IPDOM lookup)
	hasLast bool
}

// group is a set of lanes sharing the same next position.
type group struct {
	pos  position
	mask uint64
}

type warpReplay struct {
	warpIndex int
	res       *Result
	wm        *WarpMetrics
	graphs    map[uint32]*cfg.DCFG
	pdoms     map[uint32]*ipdom.PostDom
	opts      Options
	tids      []int
	cursors   []*cursor
	done      uint64
	stack     []entry
}

func (wr *warpReplay) run() error {
	all := uint64(0)
	for i := range wr.cursors {
		all |= 1 << uint(i)
	}
	wr.stack = append(wr.stack, entry{mask: all})

	var maxSteps uint64 = 1024
	for _, c := range wr.cursors {
		maxSteps += uint64(len(c.recs)) * 8
	}

	for steps := uint64(0); len(wr.stack) > 0; steps++ {
		if steps > maxSteps {
			var desc string
			for i := range wr.stack {
				e := &wr.stack[i]
				desc += fmt.Sprintf("\n  entry %d: mask=%x rpc=%v(hasRPC=%v) last=%v", i, e.mask, e.rpc, e.hasRPC, e.last)
			}
			top := &wr.stack[len(wr.stack)-1]
			for _, g := range wr.group(top.mask &^ wr.done) {
				desc += fmt.Sprintf("\n  top group: pos=%v mask=%x", g.pos, g.mask)
			}
			return fmt.Errorf("replay exceeded %d steps: SIMT stack livelock (stack depth %d)%s", maxSteps, len(wr.stack), desc)
		}
		e := &wr.stack[len(wr.stack)-1]
		active := e.mask &^ wr.done
		groups := wr.group(active)

		if len(groups) == 0 {
			wr.pop()
			continue
		}
		if e.hasRPC && allAtOrPast(e, groups) {
			wr.pop()
			continue
		}
		if len(groups) == 1 {
			if err := wr.execGroup(e, groups[0].pos, groups[0].mask); err != nil {
				return err
			}
			continue
		}
		wr.diverge(e, groups)
	}
	for _, c := range wr.cursors {
		c.drainTrailingSkips()
	}
	return nil
}

func (wr *warpReplay) pop() {
	wr.stack = wr.stack[:len(wr.stack)-1]
}

// allAtOrPast reports whether every group has reached the entry's
// reconvergence position. A group counts as "past" it only when the entry
// has already executed at or inside the reconvergence frame and the group
// has since returned below it — the escape hatch for the approximate
// critical-section reconvergence points. Lanes that have merely not yet
// descended to the reconvergence depth must keep executing, or serialized
// entries would pop before doing any work and re-serialize forever.
func allAtOrPast(e *entry, groups []group) bool {
	escaped := e.hasLast && e.last.depth >= e.rpc.depth
	for _, g := range groups {
		if g.pos == e.rpc {
			continue
		}
		if escaped && g.pos.depth < e.rpc.depth {
			continue
		}
		return false
	}
	return true
}

// group partitions the active lanes by their next position, dropping lanes
// whose traces are exhausted (and recording them as done). Groups are sorted
// by position key for determinism.
func (wr *warpReplay) group(active uint64) []group {
	var groups []group
	for m := active; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		pos := wr.cursors[lane].peek()
		if pos.kind == posDone {
			wr.cursors[lane].drainTrailingSkips()
			wr.done |= 1 << uint(lane)
			continue
		}
		found := false
		for i := range groups {
			if groups[i].pos == pos {
				groups[i].mask |= 1 << uint(lane)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, group{pos: pos, mask: 1 << uint(lane)})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].pos.key() < groups[j].pos.key() })
	return groups
}

// diverge handles multiple distinct next positions within one entry: the
// divergent branch's IPDOM becomes the reconvergence point and one stack
// entry per distinct target is pushed (paper figure 2).
func (wr *warpReplay) diverge(e *entry, groups []group) {
	rpc := wr.reconvergencePoint(e, groups)
	wr.recordDivergence(e, groups)
	// Lanes already at the reconvergence point wait in the parent entry.
	pushed := 0
	for i := len(groups) - 1; i >= 0; i-- { // reverse so the lowest key ends on top
		g := groups[i]
		if g.pos == rpc {
			continue
		}
		wr.stack = append(wr.stack, entry{mask: g.mask, rpc: rpc, hasRPC: true})
		pushed++
	}
	// At least one group differs from rpc (groups have pairwise-distinct
	// positions and at most one can equal it), so progress is guaranteed.
	_ = pushed
}

// recordDivergence attributes a warp split to the block whose terminator
// caused it (the entry's most recently executed block).
func (wr *warpReplay) recordDivergence(e *entry, groups []group) {
	if !e.hasLast || e.last.kind != posBlock {
		return
	}
	key := BranchKey{Func: e.last.fn, Block: e.last.block}
	bs := wr.res.Branches[key]
	if bs == nil {
		bs = &BranchStats{}
		wr.res.Branches[key] = bs
	}
	bs.Divergences++
	bs.Paths += uint64(len(groups))
	var total, largest int
	for _, g := range groups {
		n := bits.OnesCount64(g.mask)
		total += n
		if n > largest {
			largest = n
		}
	}
	bs.LanesOff += uint64(total - largest)
}

// reconvergencePoint picks the RPC for a divergence. The normal case uses
// the IPDOM of the block the entry just executed. If any group already sits
// at the entry's own reconvergence position (loop-exit divergence), that
// position is reused. Pathological mixes (differing depths after approximate
// critical-section reconvergence) fall back to the virtual exit of the
// shallowest group's function.
func (wr *warpReplay) reconvergencePoint(e *entry, groups []group) position {
	if e.hasRPC {
		for _, g := range groups {
			if g.pos == e.rpc {
				return e.rpc
			}
		}
	}
	minDepth := groups[0].pos.depth
	for _, g := range groups[1:] {
		if g.pos.depth < minDepth {
			minDepth = g.pos.depth
		}
	}
	// Whenever every group sits at or below (deeper than) the frame of the
	// block that just executed, its IPDOM is the reconvergence point. This
	// covers ordinary branch divergence (groups at the same depth) and
	// divergent indirect calls (every lane entered a different callee, one
	// frame deeper): the lanes rejoin at the caller's join block after
	// their callees return.
	if e.hasLast && e.last.kind == posBlock && minDepth >= e.last.depth {
		return wr.ipdomPos(e.last.fn, e.last.block, e.last.depth)
	}
	// Fallback for depth mixes left behind by approximate critical-section
	// reconvergence: the virtual exit of the shallowest group's function.
	min := groups[0]
	for _, g := range groups[1:] {
		if g.pos.depth < min.pos.depth {
			min = g
		}
	}
	return position{kind: posExit, fn: min.pos.fn, depth: min.pos.depth}
}

// ipdomPos maps a block's immediate post-dominator to a replay position.
func (wr *warpReplay) ipdomPos(fn, block uint32, depth int32) position {
	g := wr.graphs[fn]
	pd := wr.pdoms[fn]
	if g == nil || pd == nil {
		return position{kind: posExit, fn: fn, depth: depth}
	}
	ip := pd.IPDom(int32(block))
	if ip == g.ExitNode() {
		return position{kind: posExit, fn: fn, depth: depth}
	}
	return position{kind: posBlock, fn: fn, block: uint32(ip), depth: depth}
}

// execGroup executes one lockstep step (a basic block or a function exit)
// for the given lanes.
func (wr *warpReplay) execGroup(e *entry, pos position, mask uint64) error {
	switch pos.kind {
	case posExit:
		for m := mask; m != 0; m &= m - 1 {
			wr.cursors[bits.TrailingZeros64(m)].consumeExit()
		}
		e.last, e.hasLast = pos, true
		return nil
	case posBlock:
		if wr.opts.EmulateLocks && wr.maybeSerialize(e, pos, mask) {
			return nil
		}
		return wr.execBlock(e, pos, mask)
	}
	return fmt.Errorf("execGroup on %v", pos)
}

// execBlock performs the lockstep execution of one basic block: advances
// every active lane's cursor, charges equation-1 instruction counts, and
// coalesces the block's memory accesses instruction by instruction.
func (wr *warpReplay) execBlock(e *entry, pos position, mask uint64) error {
	lanes := make([]int, 0, bits.OnesCount64(mask))
	recs := make([]*trace.Record, 0, cap(lanes))
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		r := wr.cursors[lane].consumeBlock()
		if r.Func != pos.fn || r.Block != pos.block {
			return fmt.Errorf("lane %d consumed f%d.b%d, expected %v", lane, r.Func, r.Block, pos)
		}
		lanes = append(lanes, lane)
		recs = append(recs, r)
	}
	fm := wr.res.Funcs[pos.fn]
	if fm == nil {
		fm = &FuncMetrics{}
		wr.res.Funcs[pos.fn] = fm
	}
	ChargeInstrs(wr.wm, fm, recs[0].N, len(lanes))
	if g := wr.graphs[pos.fn]; g != nil && int32(pos.block) == g.Entry() {
		fm.Invocations++
	}

	ChargeMemory(wr.wm, fm, recs)

	if wr.opts.Listener != nil {
		threads := make([]int, len(lanes))
		for i, l := range lanes {
			threads[i] = wr.tids[l]
		}
		wr.opts.Listener.OnBlock(&BlockExec{
			Warp:     wr.warpIndex,
			Func:     pos.fn,
			Block:    pos.block,
			Depth:    pos.depth,
			Lanes:    lanes,
			Threads:  threads,
			Records:  recs,
			NumLanes: wr.opts.WarpSize,
		})
	}
	e.last, e.hasLast = pos, true
	return nil
}

// maybeSerialize inspects the block about to execute for contended lock
// acquisitions and, when at least two active lanes acquire the same address,
// rebuilds the schedule per the paper: same-lock lanes execute their
// critical sections serially while different-lock lanes proceed in parallel,
// all reconverging at the position following the matching release in the
// first contending lane's trace. Returns true if the stack was changed.
func (wr *warpReplay) maybeSerialize(e *entry, pos position, mask uint64) bool {
	if bits.OnesCount64(mask) < 2 {
		return false
	}
	// First acquire address per lane, if any.
	type laneAcq struct {
		lane int
		addr uint64
	}
	var acqs []laneAcq
	noAcq := uint64(0)
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		r := wr.cursors[lane].peekBlockRecord()
		addr, ok := firstAcquire(r)
		if !ok {
			noAcq |= 1 << uint(lane)
			continue
		}
		acqs = append(acqs, laneAcq{lane: lane, addr: addr})
	}
	if len(acqs) < 2 {
		return false
	}
	// Group lanes by lock address. Lanes acquiring different locks execute
	// in parallel (the paper's fine-grain-locking behaviour); lanes
	// contending for the same address serialize. The schedule is built in
	// rounds: round i holds the i-th contender of every distinct lock (all
	// distinct addresses, so a round never re-serializes), and round 0
	// additionally carries the lanes that acquire nothing.
	order := make([]uint64, 0, len(acqs))
	locks := make(map[uint64][]int, len(acqs))
	for _, a := range acqs {
		if _, seen := locks[a.addr]; !seen {
			order = append(order, a.addr)
		}
		locks[a.addr] = append(locks[a.addr], a.lane)
	}
	rounds := 0
	contended := false
	var firstSerial laneAcq
	for _, addr := range order {
		lanes := locks[addr]
		if len(lanes) > rounds {
			rounds = len(lanes)
		}
		if len(lanes) >= 2 && !contended {
			contended = true
			firstSerial = laneAcq{lane: lanes[0], addr: addr}
		}
	}
	if !contended {
		return false
	}

	var rpc position
	if wr.opts.LockReconvergence == ReconvergeAtRelease {
		var ok bool
		rpc, ok = wr.cursors[firstSerial.lane].releasePosition(firstSerial.addr)
		if !ok {
			rpc = position{kind: posExit, fn: pos.fn, depth: pos.depth}
		}
	} else {
		rpc = position{kind: posExit, fn: pos.fn, depth: pos.depth}
	}

	roundMasks := make([]uint64, rounds)
	for _, addr := range order {
		for i, lane := range locks[addr] {
			roundMasks[i] |= 1 << uint(lane)
			if i > 0 {
				wr.wm.SerializedLanes++
			}
		}
	}
	roundMasks[0] |= noAcq
	wr.wm.LockSerializations++

	// Parent waits at the reconvergence point; push later rounds first so
	// round 0 ends on top of the stack and executes first.
	for i := rounds - 1; i >= 0; i-- {
		wr.stack = append(wr.stack, entry{mask: roundMasks[i], rpc: rpc, hasRPC: true})
	}
	return true
}

// firstAcquire returns the address of the first lock-acquire operation in a
// block record.
func firstAcquire(r *trace.Record) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	for _, l := range r.Locks {
		if !l.Release {
			return l.Addr, true
		}
	}
	return 0, false
}
