package workloads

import (
	"math/rand"

	"threadfuser/internal/ir"
	"threadfuser/internal/vm"
)

// Register conventions for workload programs:
//
//	r0-r9   workload locals
//	r10     stdlib argument/return (malloc size in, pointer out)
//	r11-r13 stdlib scratch (clobbered by stdlib calls)
//	r14-r15 free temporaries for leaf helpers
//
// The builders below keep every workload terse while staying plain IR.

// regOf maps a DSL register number to ir.Reg, admitting the reserved TID
// register (workloads index shared arrays by thread id constantly).
func regOf(i int) ir.Reg {
	if i < 0 || i >= ir.NumRegs {
		panic("workloads: register number out of range")
	}
	return ir.Reg(i)
}

// Shorthand operand constructors.
func rg(i int) ir.Operand   { return ir.Rg(regOf(i)) }
func im(v int64) ir.Operand { return ir.Imm(v) }
func tid() ir.Operand       { return ir.Rg(ir.TID) }
func mem8(b int, d int64) ir.Operand {
	return ir.Mem(regOf(b), d, 8)
}
func idx8(b, i int, scale uint8, d int64) ir.Operand {
	return ir.MemIdx(regOf(b), regOf(i), scale, d, 8)
}
func mem4(b int, d int64) ir.Operand {
	return ir.Mem(regOf(b), d, 4)
}
func idx4(b, i int, scale uint8, d int64) ir.Operand {
	return ir.MemIdx(regOf(b), regOf(i), scale, d, 4)
}
func idx1(b, i int, d int64) ir.Operand {
	return ir.MemIdx(regOf(b), regOf(i), 1, d, 1)
}

// sp returns an SP-relative stack slot (thread-private locals), the access
// pattern that produces the paper's per-thread-stack memory divergence.
func sp(d int64) ir.Operand { return ir.Mem(ir.SP, d, 8) }

// counted wires a counted loop: pre jumps into Body with counter=start; the
// caller fills Body (and any sub-blocks) and finally calls Next on the block
// that ends an iteration, which appends counter++ / compare / back-edge.
type counted struct {
	Body    *ir.BlockBuilder
	Exit    *ir.BlockBuilder
	counter ir.Reg
	limit   ir.Operand
}

// loopN starts a counted while-loop for counter in [start, limit): pre tests
// the bound before the first iteration, so zero-trip loops (empty buckets,
// zero-length copies) fall straight through to Exit.
func loopN(f *ir.FuncBuilder, pre *ir.BlockBuilder, name string, counter int, start int64, limit ir.Operand) *counted {
	body := f.NewBlock(name + "_body")
	exit := f.NewBlock(name + "_exit")
	pre.Mov(rg(counter), im(start)).
		Cmp(rg(counter), limit).
		Jcc(ir.CondLT, body, exit)
	return &counted{Body: body, Exit: exit, counter: regOf(counter), limit: limit}
}

// Next closes one loop iteration at tail: counter++, branch back while
// counter < limit.
func (l *counted) Next(tail *ir.BlockBuilder) *ir.BlockBuilder {
	tail.Add(ir.Rg(l.counter), im(1)).
		Cmp(ir.Rg(l.counter), l.limit).
		Jcc(ir.CondLT, l.Body, l.Exit)
	return l.Exit
}

// rng returns the deterministic generator for a workload configuration.
func (c Config) rng() *rand.Rand {
	return rand.New(rand.NewSource(c.Seed + 0x7f4a7c15))
}

// fillI64 writes vals as consecutive 8-byte slots at base.
func fillI64(p *vm.Process, base uint64, vals []int64) {
	for i, v := range vals {
		p.WriteI64(base+uint64(8*i), v)
	}
}

// fillF64 writes vals as consecutive float64 slots at base.
func fillF64(p *vm.Process, base uint64, vals []float64) {
	for i, v := range vals {
		p.WriteF64(base+uint64(8*i), v)
	}
}

// fillBytes writes raw bytes at base.
func fillBytes(p *vm.Process, base uint64, vals []byte) {
	for i, v := range vals {
		p.Mem.Write(base+uint64(i), 1, uint64(v))
	}
}

// csr is a compressed-sparse-row graph for the BFS/CC/PageRank workloads.
type csr struct {
	n       int
	offsets []int64 // n+1 entries
	edges   []int64
}

// randGraph builds a random graph with n nodes and roughly degree edges per
// node, with a heavy-tailed degree distribution (some nodes have up to 4x
// the mean degree) so neighbour loops diverge like real graph workloads.
func randGraph(r *rand.Rand, n, degree int) csr {
	g := csr{n: n, offsets: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		d := 1 + r.Intn(degree*2)
		if r.Intn(8) == 0 { // heavy tail
			d += degree * 2
		}
		for e := 0; e < d; e++ {
			g.edges = append(g.edges, int64(r.Intn(n)))
		}
		g.offsets[v+1] = int64(len(g.edges))
	}
	return g
}

// store writes the CSR arrays into the process and returns their bases.
func (g csr) store(p *vm.Process) (offsets, edges uint64) {
	offsets = p.AllocGlobal(uint64(8 * len(g.offsets)))
	edges = p.AllocGlobal(uint64(8 * max(1, len(g.edges))))
	fillI64(p, offsets, g.offsets)
	fillI64(p, edges, g.edges)
	return offsets, edges
}
