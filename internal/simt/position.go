// Package simt replays per-thread MIMD traces under SIMT-stack semantics:
// warps execute basic blocks in lockstep, diverge on differing control flow,
// and reconverge at immediate post-dominators, exactly as the paper's
// analyzer emulates contemporary GPU hardware (sections II and III). The
// replay also implements the paper's intra-warp lock serialization: threads
// acquiring the same lock address execute their critical sections serially,
// reconverging after the matching release.
package simt

import (
	"fmt"

	"threadfuser/internal/trace"
)

// posKind discriminates position.
type posKind uint8

const (
	posDone posKind = iota // thread trace exhausted
	posBlock
	posExit // about to return from fn (the function's virtual exit block)
)

// position identifies where a thread stands in its trace for lockstep
// comparison. Depth is the call depth, so the same static block in two
// different (possibly recursive) invocations never spuriously matches.
// Threads within one SIMT-stack entry always share (fn, depth) because they
// execute identical block sequences between divergence points.
type position struct {
	kind  posKind
	fn    uint32
	block uint32
	depth int32
}

var donePos = position{kind: posDone}

func (p position) String() string {
	switch p.kind {
	case posDone:
		return "done"
	case posExit:
		return fmt.Sprintf("exit(f%d)@%d", p.fn, p.depth)
	default:
		return fmt.Sprintf("f%d.b%d@%d", p.fn, p.block, p.depth)
	}
}

// key orders positions deterministically for divergence-group processing.
func (p position) key() uint64 {
	return uint64(p.kind)<<62 | uint64(p.depth&0x3fff)<<48 | uint64(p.fn)<<24 | uint64(p.block)
}

// cursor walks one thread's record stream during replay.
type cursor struct {
	recs  []trace.Record
	idx   int      // next unconsumed record
	depth int32    // current call depth
	funcs []uint32 // function stack (len == depth)

	// peek memo: group formation re-peeks every active lane each SIMT-stack
	// step, but only the lanes that just executed have moved. posOK is
	// cleared by everything that consumes records (consumeBlock, consumeExit,
	// drainTrailingSkips, advance, reset).
	pos   position
	posOK bool

	// Skip counters accumulated as skip records are consumed.
	skipIO   uint64
	skipSpin uint64
}

func newCursor(th *trace.ThreadTrace) *cursor {
	return &cursor{recs: th.Records}
}

// reset points the cursor at a new thread's records, keeping the function
// stack's backing array so replay workers reuse cursors across warps without
// reallocating.
func (c *cursor) reset(th *trace.ThreadTrace) {
	c.recs = th.Records
	c.idx = 0
	c.depth = 0
	c.funcs = c.funcs[:0]
	c.posOK = false
	c.skipIO = 0
	c.skipSpin = 0
}

// advance consumes k records wholesale — the fused window's bulk cursor
// move. The caller (execRunFused) guarantees all k records are basic blocks
// at the current call depth, so depth and the skip counters are unaffected.
func (c *cursor) advance(k int) {
	c.idx += k
	c.posOK = false
}

// peek returns the thread's next position without consuming anything.
func (c *cursor) peek() position {
	if c.posOK {
		return c.pos
	}
	p := c.peekSlow()
	c.pos, c.posOK = p, true
	return p
}

func (c *cursor) peekSlow() position {
	depth := c.depth
	for i := c.idx; i < len(c.recs); i++ {
		switch r := &c.recs[i]; r.Kind {
		case trace.KindSkip:
			continue
		case trace.KindCall:
			depth++
		case trace.KindBBL:
			return position{kind: posBlock, fn: r.Func, block: r.Block, depth: depth}
		case trace.KindRet:
			if depth == c.depth && depth > 0 {
				return position{kind: posExit, fn: c.funcs[depth-1], depth: depth}
			}
			// A RET at increased peek-depth without an intervening block
			// cannot occur in well-formed traces; treat as that frame's
			// exit for robustness.
			if depth > 0 {
				depth--
				continue
			}
			return donePos
		}
	}
	return donePos
}

// consumeBlock advances through skip and call records up to and including
// the next basic-block record, updating depth and skip counters, and returns
// the record. It must only be called when peek().kind == posBlock.
func (c *cursor) consumeBlock() *trace.Record {
	c.posOK = false
	for c.idx < len(c.recs) {
		r := &c.recs[c.idx]
		c.idx++
		switch r.Kind {
		case trace.KindSkip:
			c.addSkip(r)
		case trace.KindCall:
			c.depth++
			c.funcs = append(c.funcs, r.Callee)
		case trace.KindBBL:
			return r
		case trace.KindRet:
			panic("simt: consumeBlock reached a return record")
		}
	}
	panic("simt: consumeBlock ran off the end of the trace")
}

// consumeExit advances through skip records and the return record that ends
// the current function invocation. It must only be called when peek().kind
// == posExit.
func (c *cursor) consumeExit() {
	c.posOK = false
	for c.idx < len(c.recs) {
		r := &c.recs[c.idx]
		c.idx++
		switch r.Kind {
		case trace.KindSkip:
			c.addSkip(r)
		case trace.KindRet:
			c.depth--
			c.funcs = c.funcs[:len(c.funcs)-1]
			return
		default:
			panic(fmt.Sprintf("simt: consumeExit hit %s record", r.Kind))
		}
	}
	panic("simt: consumeExit ran off the end of the trace")
}

func (c *cursor) addSkip(r *trace.Record) {
	if r.SkipKind == trace.SkipSpin {
		c.skipSpin += r.N
	} else {
		c.skipIO += r.N
	}
}

// peekBlockRecord returns the next basic-block record without consuming it,
// or nil if the thread's next position is not a block. The lock-contention
// check inspects the upcoming block's acquire addresses through it.
func (c *cursor) peekBlockRecord() *trace.Record {
	for i := c.idx; i < len(c.recs); i++ {
		switch r := &c.recs[i]; r.Kind {
		case trace.KindSkip, trace.KindCall:
			continue
		case trace.KindBBL:
			return r
		default:
			return nil
		}
	}
	return nil
}

// drainTrailingSkips consumes skip records at the very end of the stream so
// their counts are accounted even after the last block executes.
func (c *cursor) drainTrailingSkips() {
	c.posOK = false
	for c.idx < len(c.recs) && c.recs[c.idx].Kind == trace.KindSkip {
		c.addSkip(&c.recs[c.idx])
		c.idx++
	}
}

// releasePosition scans forward (without consuming) for the release matching
// the acquire of addr that the thread is about to perform, and returns the
// thread's position immediately after the basic block containing that
// release — the paper's "unlock pair of one of the threads" reconvergence
// point for serialized critical sections. ok is false when no matching
// release is found before the trace ends.
func (c *cursor) releasePosition(addr uint64) (position, bool) {
	depth := c.depth
	nest := 0
	releaseFound := false
	var relFn uint32
	var relDepth int32
	for i := c.idx; i < len(c.recs); i++ {
		r := &c.recs[i]
		switch r.Kind {
		case trace.KindCall:
			depth++
		case trace.KindRet:
			if releaseFound {
				// The release block's function returns immediately after
				// the release: reconverge at its virtual exit.
				return position{kind: posExit, fn: relFn, depth: relDepth}, true
			}
			if depth == 0 {
				return donePos, false
			}
			depth--
		case trace.KindBBL:
			if releaseFound {
				return position{kind: posBlock, fn: r.Func, block: r.Block, depth: depth}, true
			}
			for _, l := range r.Locks {
				if l.Addr != addr {
					continue
				}
				if l.Release {
					if nest > 0 {
						nest--
						if nest == 0 {
							releaseFound = true
							relFn, relDepth = r.Func, depth
						}
					}
				} else {
					nest++
				}
			}
		}
	}
	return donePos, false
}
