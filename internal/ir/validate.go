package ir

import "fmt"

// Validate checks the structural invariants the VM and analyzers rely on:
// every block is non-empty and ends with exactly one terminator, all branch
// and call targets are in range, operand shapes are legal (at most one
// memory operand per instruction, correct operand kinds per opcode), and the
// entry function exists.
func Validate(p *Program) error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("ir: program %q has no functions", p.Name)
	}
	if int(p.Entry) >= len(p.Funcs) {
		return fmt.Errorf("ir: program %q entry f%d out of range", p.Name, p.Entry)
	}
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: %s.%s has no blocks", p.Name, f.Name)
		}
		for _, b := range f.Blocks {
			if err := validateBlock(p, f, b); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateBlock(p *Program, f *Function, b *Block) error {
	loc := func(i int) string {
		return fmt.Sprintf("%s.%s block %d (%s) instr %d", p.Name, f.Name, b.ID, b.Name, i)
	}
	if len(b.Instrs) == 0 {
		return fmt.Errorf("%s: empty block", loc(0))
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Op.IsTerminator() != (i == len(b.Instrs)-1) {
			if in.Op.IsTerminator() {
				return fmt.Errorf("%s: terminator %s before end of block", loc(i), in.Op)
			}
			return fmt.Errorf("%s: block does not end with a terminator", loc(i))
		}
		if in.Dst.IsMem() && in.Src.IsMem() {
			return fmt.Errorf("%s: two memory operands", loc(i))
		}
		for _, o := range [2]Operand{in.Dst, in.Src} {
			if err := validateOperand(o); err != nil {
				return fmt.Errorf("%s: %v", loc(i), err)
			}
		}
		switch in.Op {
		case OpJmp:
			if int(in.Target) >= len(f.Blocks) {
				return fmt.Errorf("%s: jmp target b%d out of range", loc(i), in.Target)
			}
		case OpJcc:
			if int(in.Target) >= len(f.Blocks) || int(in.Fall) >= len(f.Blocks) {
				return fmt.Errorf("%s: jcc targets b%d/b%d out of range", loc(i), in.Target, in.Fall)
			}
		case OpSwitch:
			if len(in.Targets) == 0 {
				return fmt.Errorf("%s: switch with no targets", loc(i))
			}
			for _, t := range in.Targets {
				if int(t) >= len(f.Blocks) {
					return fmt.Errorf("%s: switch target b%d out of range", loc(i), t)
				}
			}
		case OpCall:
			if int(in.Callee) >= len(p.Funcs) {
				return fmt.Errorf("%s: callee f%d out of range", loc(i), in.Callee)
			}
			if int(in.Fall) >= len(f.Blocks) {
				return fmt.Errorf("%s: call continuation b%d out of range", loc(i), in.Fall)
			}
		case OpCallR:
			if in.Src.Kind == OpndNone {
				return fmt.Errorf("%s: indirect call without callee operand", loc(i))
			}
			if int(in.Fall) >= len(f.Blocks) {
				return fmt.Errorf("%s: call continuation b%d out of range", loc(i), in.Fall)
			}
		case OpLea:
			if !in.Src.IsMem() {
				return fmt.Errorf("%s: lea requires a memory source", loc(i))
			}
			if in.Dst.Kind != OpndReg {
				return fmt.Errorf("%s: lea requires a register destination", loc(i))
			}
		case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
			OpShl, OpShr, OpSar, OpFAdd, OpFSub, OpFMul, OpFDiv,
			OpCvtIF, OpCvtFI, OpCmov:
			if in.Dst.Kind == OpndImm || in.Dst.Kind == OpndNone {
				return fmt.Errorf("%s: %s requires a writable destination", loc(i), in.Op)
			}
			if in.Src.Kind == OpndNone {
				return fmt.Errorf("%s: %s requires a source", loc(i), in.Op)
			}
		case OpCmp, OpTest, OpFCmp:
			if in.Dst.Kind == OpndNone || in.Src.Kind == OpndNone {
				return fmt.Errorf("%s: %s requires two operands", loc(i), in.Op)
			}
		case OpNeg, OpNot, OpFSqrt, OpFAbs:
			if in.Dst.Kind == OpndImm || in.Dst.Kind == OpndNone {
				return fmt.Errorf("%s: %s requires a writable destination", loc(i), in.Op)
			}
		case OpLock, OpUnlock:
			if in.Src.Kind == OpndNone {
				return fmt.Errorf("%s: %s requires an address operand", loc(i), in.Op)
			}
		case OpIO, OpSpin:
			if in.Src.Kind != OpndImm || in.Src.Imm < 0 {
				return fmt.Errorf("%s: %s requires a non-negative immediate count", loc(i), in.Op)
			}
		}
		if m, _, _ := in.MemOperand(); m.Size != 0 {
			switch m.Size {
			case 1, 2, 4, 8:
			default:
				return fmt.Errorf("%s: invalid memory access size %d", loc(i), m.Size)
			}
			if m.HasIndex {
				switch m.Scale {
				case 1, 2, 4, 8:
				default:
					return fmt.Errorf("%s: invalid scale %d", loc(i), m.Scale)
				}
			}
		}
	}
	return nil
}

func validateOperand(o Operand) error {
	switch o.Kind {
	case OpndNone, OpndImm:
		return nil
	case OpndReg:
		if o.Reg >= NumRegs {
			return fmt.Errorf("register r%d out of range", o.Reg)
		}
	case OpndMem:
		if o.Mem.Base >= NumRegs || (o.Mem.HasIndex && o.Mem.Index >= NumRegs) {
			return fmt.Errorf("memory operand register out of range")
		}
		if o.Mem.Size == 0 {
			return fmt.Errorf("memory operand with zero size")
		}
	default:
		return fmt.Errorf("unknown operand kind %d", o.Kind)
	}
	return nil
}
