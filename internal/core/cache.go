package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"threadfuser/internal/trace"
)

// Cache is a content-addressed on-disk report cache: every tfreport, tflint,
// and tfcheck invocation re-pays full replay even for a trace it analyzed
// seconds ago, and on paper-scale traces that preparation dominates. Entries
// are keyed by a SHA-256 over the trace content (its decoded rows, so the
// same trace hits regardless of which container version it travelled
// through) combined with the canonicalized analysis options and a schema
// tag that self-invalidates every entry when the Report format changes.
//
// The cache is strictly best-effort: writes are atomic (temp file + rename)
// so readers never see a torn entry, and any unreadable, corrupt, or
// schema-mismatched entry is treated as a miss and recomputed — corruption
// never surfaces as an error. A Cache is safe for concurrent use, including
// by multiple processes sharing one directory.
//
// A size cap (SetMaxBytes) turns the cache into an LRU: every store evicts
// least-recently-used entries until the directory fits, and a hit refreshes
// its entry's recency, so a long-running service's cache stays bounded while
// its hot set stays resident. Recency is the entry file's mtime — crude, but
// it survives process restarts and is shared correctly between processes.
type Cache struct {
	dir      string
	maxBytes atomic.Int64
	// evictMu serializes eviction scans so concurrent stores don't race to
	// delete the same entries (deleting an already-deleted file is harmless,
	// but N concurrent directory scans are wasted work).
	evictMu sync.Mutex
}

// cacheSchema versions the on-disk entry layout AND the semantics of the
// cached computation. Bump it whenever Report gains fields or replay
// semantics change, so stale entries self-invalidate.
const cacheSchema = 3 // 3: Report gained per-site memory histograms (MemSites)

// cacheEntry is the stored JSON envelope.
type cacheEntry struct {
	Schema int     `json:"schema"`
	Report *Report `json:"report"`
}

// NewCache returns a cache rooted at dir. The directory is created lazily on
// first store, so pointing at a read-only or nonexistent location merely
// disables storing.
func NewCache(dir string) *Cache {
	return &Cache{dir: dir}
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// SetMaxBytes caps the cache's on-disk size. After every store, entries are
// evicted in least-recently-used order (oldest mtime first; a get refreshes
// its entry's mtime) until the directory's entry bytes fit under n. A
// non-positive n removes the cap. Eviction is best-effort like everything
// else here: a removal that fails is skipped, and a reader that loses the
// race to an evicted entry simply misses and recomputes.
func (c *Cache) SetMaxBytes(n int64) {
	c.maxBytes.Store(n)
}

// DefaultCacheDir is the per-user default cache location the CLI front-ends
// share (-cache with no -cache-dir).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ".tfcache"
	}
	return filepath.Join(base, "threadfuser")
}

// OpenFlagCache resolves the -cache/-cache-dir CLI convention the front-ends
// share: nil (caching disabled) unless either flag is set, the default
// per-user directory when only -cache is given.
func OpenFlagCache(enabled bool, dir string) *Cache {
	if !enabled && dir == "" {
		return nil
	}
	if dir == "" {
		dir = DefaultCacheDir()
	}
	return NewCache(dir)
}

// traceDigest hashes the trace content by streaming its flat rows —
// fixed-width little-endian record, access, and lock tuples plus
// length-prefixed metadata — through SHA-256. Hashing decoded rows instead
// of re-encoding to the canonical v2 container skips all the varint and
// address-delta work (the digest used to cost about as much as a decode),
// and stays construction-independent: an arena-backed decode and a
// record-by-record build of the same trace digest identically, because only
// field values are hashed, never layout. Counts prefix every variable-length
// sequence, so distinct traces cannot collide by reframing.
func traceDigest(t *trace.Trace) ([sha256.Size]byte, error) {
	w := rowHasher{h: sha256.New(), buf: make([]byte, 0, 4096)}
	w.str("threadfuser trace rows v1")
	w.str(t.Program)
	w.u64(uint64(t.Entry))
	w.u64(uint64(len(t.Funcs)))
	for _, f := range t.Funcs {
		w.str(f.Name)
		w.u64(uint64(len(f.Blocks)))
		for _, b := range f.Blocks {
			w.u64(uint64(b.NInstr))
		}
	}
	w.u64(uint64(len(t.Threads)))
	for _, th := range t.Threads {
		w.u64(uint64(th.TID))
		w.u64(uint64(len(th.Records)))
		for i := range th.Records {
			r := &th.Records[i]
			w.u64(uint64(r.Kind))
			switch r.Kind {
			case trace.KindBBL:
				w.u64(uint64(r.Func))
				w.u64(uint64(r.Block))
				w.u64(r.N)
				w.u64(uint64(len(r.Mem)))
				for _, m := range r.Mem {
					w.u64(uint64(m.Instr))
					w.u64(m.Addr)
					w.u64(uint64(m.Size))
					w.bool(m.Store)
				}
				w.u64(uint64(len(r.Locks)))
				for _, l := range r.Locks {
					w.u64(uint64(l.Instr))
					w.u64(l.Addr)
					w.bool(l.Release)
				}
			case trace.KindCall:
				w.u64(uint64(r.Callee))
			case trace.KindSkip:
				w.u64(uint64(r.SkipKind))
				w.u64(r.N)
			}
		}
	}
	w.flush()
	var sum [sha256.Size]byte
	copy(sum[:], w.h.Sum(nil))
	return sum, nil
}

// rowHasher batches fixed-width writes into one buffer between hash calls;
// feeding SHA-256 eight bytes at a time would spend more in call overhead
// than in compression.
type rowHasher struct {
	h   hash.Hash
	buf []byte
}

func (w *rowHasher) flush() {
	if len(w.buf) > 0 {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *rowHasher) u64(v uint64) {
	if len(w.buf)+8 > cap(w.buf) {
		w.flush()
	}
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

func (w *rowHasher) bool(b bool) {
	if b {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *rowHasher) str(s string) {
	w.u64(uint64(len(s)))
	w.flush()
	io.WriteString(w.h, s)
}

// cacheKeyFromDigest mixes the canonicalized options into the trace digest.
// Parallelism is deliberately excluded (parallel and serial replay are
// bit-identical — a standing tfcheck invariant), as is Listener (a listener
// observes replay, so listener runs bypass the cache entirely).
func cacheKeyFromDigest(sum [sha256.Size]byte, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "threadfuser report schema %d\n", cacheSchema)
	h.Write(sum[:])
	fmt.Fprintf(h, "\nwarp=%d formation=%s locks=%t lockreconv=%s\n",
		opts.WarpSize, opts.Formation, opts.EmulateLocks, opts.LockReconvergence)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheKey computes the full content-addressed key for one analysis.
func cacheKey(t *trace.Trace, opts Options) (string, error) {
	sum, err := traceDigest(t)
	if err != nil {
		return "", err
	}
	return cacheKeyFromDigest(sum, opts), nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// get loads the entry for key. Every failure mode — missing file, torn or
// truncated JSON, schema mismatch — is a miss, never an error.
func (c *Cache) get(key string) (*Report, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil || e.Schema != cacheSchema || e.Report == nil {
		return nil, false
	}
	// Under a size cap, a hit refreshes the entry's recency so the LRU
	// eviction order tracks use, not just insertion. Best-effort: a
	// read-only directory merely loses recency tracking.
	if c.maxBytes.Load() > 0 {
		now := time.Now()
		os.Chtimes(c.path(key), now, now)
	}
	// Rebuild the lazily-built name index eagerly so a cached report is
	// indistinguishable (reflect.DeepEqual) from a freshly computed one —
	// the verification engine compares reports across matrix cells.
	e.Report.funcIndex = buildFuncIndex(e.Report.PerFunction)
	return e.Report, true
}

// put stores the report under key, atomically: the entry is written to a
// temp file in the same directory and renamed into place, so a concurrent
// reader (or a crashed writer) can never observe a partial entry. Failures
// are swallowed — a cache that cannot store is just a cache that misses.
func (c *Cache) put(key string, r *Report) {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	b, err := json.Marshal(cacheEntry{Schema: cacheSchema, Report: r})
	if err != nil {
		return
	}
	f, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return
	}
	_, werr := f.Write(b)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(f.Name())
		return
	}
	if err := os.Rename(f.Name(), c.path(key)); err != nil {
		os.Remove(f.Name())
		return
	}
	c.evict()
}

// evict enforces the size cap, removing least-recently-used entries until
// the directory's entry bytes fit. Only entry files (key-named .json) are
// considered; in-flight put-*.tmp files and anything else sharing the
// directory are left alone.
func (c *Cache) evict() {
	max := c.maxBytes.Load()
	if max <= 0 {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	var (
		entries []entry
		total   int64
	)
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, "put-") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		entries = append(entries, entry{name: name, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	if total <= max {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].name < entries[j].name
	})
	for _, e := range entries {
		if total <= max {
			break
		}
		// A failed removal (or one lost to a concurrent evictor) still
		// counts against the running total: the loop is bounded either way,
		// and the next store rescans from truth.
		os.Remove(filepath.Join(c.dir, e.name))
		total -= e.size
	}
}

// AnalyzeCached runs the full analyzer pipeline through the cache: a hit
// returns the stored report without validating, preparing, or replaying the
// trace; a miss computes and stores. A nil cache, or options carrying a
// Listener (which must observe a real replay), degrade to a plain Analyze.
// The boolean reports whether the result came from the cache.
func AnalyzeCached(c *Cache, t *trace.Trace, opts Options) (*Report, bool, error) {
	if c == nil || opts.Listener != nil {
		r, err := Analyze(t, opts)
		return r, false, err
	}
	key, kerr := cacheKey(t, opts)
	if kerr == nil {
		if r, ok := c.get(key); ok {
			return r, true, nil
		}
	}
	r, err := Analyze(t, opts)
	if err != nil {
		return nil, false, err
	}
	if kerr == nil {
		c.put(key, r)
	}
	return r, false, nil
}
